// Package fleet is the sharded impulsed frontend: one router over N
// worker impulsed backends, routing every submission by its canonical
// spec hash with rendezvous (highest-random-weight) hashing. Identical
// submissions arriving at any frontend land on the same shard, so the
// shard's single-flight dedup and persistent result store become
// fleet-wide invariants: one execution and one archived blob per unique
// spec, no matter how many clients or frontends ask.
//
// Routing invariants (documented in docs/FLEET.md):
//
//   - Shard choice is a pure function of (spec hash, healthy shard
//     set). No routing table, no coordination: any number of routers in
//     front of the same shard list agree.
//   - When a shard dies, only the hashes it owned move — each to its
//     next-highest-scoring shard (the rendezvous property); the rest of
//     the fleet's placement is untouched, so caches stay warm.
//   - Twin-eligible submissions (tier=twin, family with an analytical
//     twin) never touch a shard: the router's local service answers
//     them in microseconds, and their job IDs carry no shard prefix.
//   - Shard job IDs are namespaced "s3.j-000042": the prefix before the
//     first dot names the owning shard, and every /v1/jobs/{id} route
//     (status, result, views, counters, trace, manifest, cancel, SSE
//     events) proxies to it with the prefix stripped.
//
// Backpressure: a shard answering 429 (its bounded queue is full) stays
// 429 at the router, but the constant Retry-After is replaced with a
// cost-aware estimate — queue depth × the EWMA of recent submissions'
// estimated execution cost (twin predictions priced in simulated
// cycles, per-kind defaults otherwise) ÷ the shard's executors — so a
// client backing off under a cold-miss storm waits roughly one queue
// drain, not a guess.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"impulse/internal/obs"
	"impulse/internal/service"
	"impulse/internal/twin"
)

// ShardConfig names one backend impulsed.
type ShardConfig struct {
	// Name is the shard's stable identity (job-ID prefix, metric label).
	Name string
	// URL is the shard's base URL, e.g. "http://127.0.0.1:8091".
	URL string
}

// Config sizes a Router.
type Config struct {
	// Shards is the backend list. At least one required.
	Shards []ShardConfig
	// Local answers twin-eligible submissions and /v1/predict at the
	// router without touching a shard. Required; the caller owns its
	// lifecycle.
	Local *service.Service
	// HealthInterval is the /readyz+/healthz poll period (default 500ms).
	HealthInterval time.Duration
	// CyclesPerSecond calibrates twin cost estimates: how many simulated
	// cycles one executor burns per wall second (default 100e6, measured
	// on the sweep families; -fleet-cycles-per-sec overrides).
	CyclesPerSecond float64
	// Client serves proxied requests. Nil gets a transport tuned for
	// many concurrent same-host requests (the saturation harness drives
	// 10k+ req/s through this client).
	Client *http.Client
	// Logger receives routing and health-transition logs; nil discards.
	Logger *slog.Logger
}

// shard is one backend's live state: health from the poller, queue
// geometry from /healthz (feeding Retry-After estimates), and counters.
type shard struct {
	name string
	base *url.URL

	healthy                        atomic.Bool
	queueDepth, queueCap           atomic.Uint64
	executors, running             atomic.Uint64
	routed, proxyErrs, transitions atomic.Uint64
}

// Router is the fleet frontend.
type Router struct {
	shards  []*shard
	byName  map[string]*shard
	local   *service.Service
	localH  http.Handler
	client  *http.Client
	probe   *http.Client
	logger  *slog.Logger
	cyclesS float64

	reg obs.Registry

	cSubmits, cTwinLocal, cRouted      atomic.Uint64
	cRerouted, cBackpressure, cNoShard atomic.Uint64
	hRetryAfter, hSubmitLat            *obs.Histogram

	costMu sync.Mutex
	ewmaUS float64 // EWMA of estimated per-submission execution cost, µs

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over cfg.Shards and starts the health poller
// (after one synchronous poll, so a router is born knowing which shards
// are up). Close stops the poller; the Local service is the caller's.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("fleet: no local service (twin tier needs one)")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.CyclesPerSecond <= 0 {
		cfg.CyclesPerSecond = 100e6
	}
	rt := &Router{
		byName:  make(map[string]*shard, len(cfg.Shards)),
		local:   cfg.Local,
		localH:  cfg.Local.Handler(),
		client:  cfg.Client,
		logger:  cfg.Logger,
		cyclesS: cfg.CyclesPerSecond,
		stop:    make(chan struct{}),
	}
	if rt.logger == nil {
		rt.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if rt.client == nil {
		// The router fans one frontend's load across every shard: idle
		// connections per host must comfortably exceed the per-shard
		// concurrency or the hot path pays a TCP handshake per request.
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 512,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt.probe = &http.Client{Timeout: 2 * time.Second}
	for i, sc := range cfg.Shards {
		name := sc.Name
		if name == "" {
			name = fmt.Sprintf("s%d", i)
		}
		u, err := url.Parse(sc.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: shard %s: bad URL %q", name, sc.URL)
		}
		if _, dup := rt.byName[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", name)
		}
		if strings.ContainsAny(name, "./") {
			return nil, fmt.Errorf("fleet: shard name %q may not contain '.' or '/'", name)
		}
		sh := &shard{name: name, base: u}
		rt.shards = append(rt.shards, sh)
		rt.byName[name] = sh
	}
	rt.registerMetrics()
	rt.pollAll()
	rt.wg.Add(1)
	go rt.healthLoop(cfg.HealthInterval)
	return rt, nil
}

// Close stops the health poller.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// Registry exposes the router's fleet metrics (mounted at /metrics).
func (rt *Router) Registry() *obs.Registry { return &rt.reg }

func (rt *Router) registerMetrics() {
	u := func(c *atomic.Uint64) func() uint64 { return c.Load }
	rt.reg.CounterFunc("fleet.submits", "Submissions arriving at the router.", u(&rt.cSubmits))
	rt.reg.CounterFunc("fleet.submits_twin_local", "Submissions answered by the router's local twin tier (no shard touched).", u(&rt.cTwinLocal))
	rt.reg.CounterFunc("fleet.submits_routed", "Submissions routed to a shard by rendezvous hash.", u(&rt.cRouted))
	rt.reg.CounterFunc("fleet.submits_rerouted", "Submissions re-picked after the first-choice shard failed mid-request.", u(&rt.cRerouted))
	rt.reg.CounterFunc("fleet.backpressure_429", "Shard 429s relayed with a cost-aware Retry-After.", u(&rt.cBackpressure))
	rt.reg.CounterFunc("fleet.no_healthy_shard", "Submissions failed 503 because no shard was healthy.", u(&rt.cNoShard))
	rt.reg.GaugeFunc("fleet.shards", "Configured shard count.", func() uint64 { return uint64(len(rt.shards)) })
	rt.reg.GaugeFunc("fleet.shards_healthy", "Shards currently passing /readyz.", func() uint64 {
		var n uint64
		for _, sh := range rt.shards {
			if sh.healthy.Load() {
				n++
			}
		}
		return n
	})
	rt.hRetryAfter = rt.reg.Histogram("fleet.retry_after_seconds", "Cost-aware Retry-After values attached to relayed 429s.")
	rt.hSubmitLat = rt.reg.Histogram("fleet.submit_duration_us", "Microseconds spent serving routed submissions (proxy round trip included).")
	for _, sh := range rt.shards {
		sh := sh
		rt.reg.LabeledGaugeFunc("fleet.shard_healthy", "1 when the shard passes /readyz.", "shard", sh.name, func() uint64 {
			if sh.healthy.Load() {
				return 1
			}
			return 0
		})
		rt.reg.LabeledCounterFunc("fleet.shard_requests", "Requests proxied to the shard (submissions plus job lookups).", "shard", sh.name, sh.routed.Load)
		rt.reg.LabeledCounterFunc("fleet.shard_proxy_errors", "Proxy round trips to the shard that failed at the transport.", "shard", sh.name, sh.proxyErrs.Load)
		rt.reg.LabeledGaugeFunc("fleet.shard_queue_depth", "The shard's queue depth from its last /healthz poll.", "shard", sh.name, sh.queueDepth.Load)
	}
}

// score is the rendezvous weight of hash on sh: fnv64a(hash|name).
func score(hash, name string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, hash)
	h.Write([]byte{'|'})
	io.WriteString(h, name)
	return h.Sum64()
}

// pick returns the healthy shard with the highest rendezvous score for
// hash, skipping excluded ones. Nil when none qualify.
func (rt *Router) pick(hash string, exclude map[*shard]bool) *shard {
	var best *shard
	var bestScore uint64
	for _, sh := range rt.shards {
		if !sh.healthy.Load() || exclude[sh] {
			continue
		}
		if sc := score(hash, sh.name); best == nil || sc > bestScore ||
			(sc == bestScore && sh.name < best.name) {
			best, bestScore = sh, sc
		}
	}
	return best
}

// Owner reports which shard hash currently routes to ("" when none is
// healthy) — the smoke test uses it to find and SIGTERM a result's home.
func (rt *Router) Owner(hash string) string {
	if sh := rt.pick(hash, nil); sh != nil {
		return sh.name
	}
	return ""
}

// healthLoop polls every shard until Close.
func (rt *Router) healthLoop(interval time.Duration) {
	defer rt.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.pollAll()
		}
	}
}

func (rt *Router) pollAll() {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			rt.pollShard(sh)
		}(sh)
	}
	wg.Wait()
}

// pollShard probes /readyz for health and /healthz for queue geometry
// (depth, capacity, executors — the Retry-After estimator's inputs).
func (rt *Router) pollShard(sh *shard) {
	ready := false
	if resp, err := rt.probe.Get(sh.base.String() + "/readyz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ready = resp.StatusCode == http.StatusOK
	}
	rt.setHealthy(sh, ready)
	if !ready {
		return
	}
	resp, err := rt.probe.Get(sh.base.String() + "/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var hz struct {
		QueueDepth    uint64 `json:"queue_depth"`
		QueueCapacity uint64 `json:"queue_capacity"`
		Running       uint64 `json:"running"`
		Executors     uint64 `json:"executors"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hz) == nil {
		sh.queueDepth.Store(hz.QueueDepth)
		sh.queueCap.Store(hz.QueueCapacity)
		sh.running.Store(hz.Running)
		sh.executors.Store(hz.Executors)
	}
}

func (rt *Router) setHealthy(sh *shard, ok bool) {
	if sh.healthy.Swap(ok) != ok {
		sh.transitions.Add(1)
		rt.logger.Info("shard health changed", "shard", sh.name, "healthy", ok)
	}
}

// estimateCostUS estimates one spec's execution cost in microseconds.
// Sweep specs whose family has an analytical twin are priced from the
// twin itself — total predicted simulated cycles over the calibrated
// simulator throughput — so the admission hint for a heavy sweep scales
// with how heavy the sweep actually is. Everything else gets a per-kind
// default (measured orders of magnitude, not constants pulled from air:
// tables re-simulate a grid, figure1 a page sweep, sim one config).
func (rt *Router) estimateCostUS(spec service.Spec) float64 {
	if spec.Kind == "sweep" {
		if _, ok := twin.Eligible(spec.Family); ok {
			if pred, err := twin.Predict(spec.Family, spec.Fast); err == nil {
				var cycles float64
				for _, row := range pred.Cells {
					for _, c := range row {
						cycles += float64(c.Cycles)
					}
				}
				if cycles > 0 {
					return cycles / rt.cyclesS * 1e6
				}
			}
		}
		return 5e6 // un-twinned sweep: assume seconds, not micros
	}
	switch spec.Kind {
	case "table1", "table2":
		return 2e6
	case "figure1":
		return 1e6
	default: // sim
		return 0.2e6
	}
}

// observeCost folds one submission's estimate into the EWMA the
// Retry-After math uses (α=0.2: a storm of heavy sweeps raises the
// advertised backoff within a few requests).
func (rt *Router) observeCost(us float64) {
	rt.costMu.Lock()
	if rt.ewmaUS == 0 {
		rt.ewmaUS = us
	} else {
		rt.ewmaUS = 0.8*rt.ewmaUS + 0.2*us
	}
	rt.costMu.Unlock()
}

// retryAfterSeconds is the admission hint attached to a relayed 429:
// roughly how long sh's queue takes to drain at the fleet's recent cost
// mix — (depth+1) × EWMA cost ÷ executors — clamped to [1s, 60s].
func (rt *Router) retryAfterSeconds(sh *shard) int {
	rt.costMu.Lock()
	cost := rt.ewmaUS
	rt.costMu.Unlock()
	if cost <= 0 {
		cost = 1e6
	}
	ex := float64(sh.executors.Load())
	if ex == 0 {
		ex = 1
	}
	sec := (float64(sh.queueDepth.Load()) + 1) * cost / ex / 1e6
	return int(math.Min(60, math.Max(1, math.Ceil(sec))))
}

// ownerName splits a namespaced job ID "s3.j-000042" into its shard and
// shard-local halves. ok is false for unprefixed (router-local) IDs.
func (rt *Router) ownerName(id string) (sh *shard, local string, ok bool) {
	i := strings.IndexByte(id, '.')
	if i <= 0 {
		return nil, "", false
	}
	sh = rt.byName[id[:i]]
	if sh == nil {
		return nil, "", false
	}
	return sh, id[i+1:], true
}
