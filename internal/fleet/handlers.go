package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"impulse/internal/obs"
	"impulse/internal/service"
	"impulse/internal/twin"
)

// Handler returns the router's HTTP frontend. It speaks the same API as
// a single impulsed (clients need not know they talk to a fleet), plus
// fleet introspection:
//
//	POST /v1/jobs        route by spec hash (twin-eligible answered locally)
//	POST /v1/predict     local analytical twin, stateless
//	GET  /v1/jobs        merged job list across healthy shards + local
//	     /v1/jobs/{id}/* proxied to the owning shard by ID prefix
//	GET  /fleet/shards   per-shard health, queue geometry, routing counters
//	GET  /healthz        router liveness + healthy-shard count
//	GET  /readyz         ready iff at least one shard is
//	GET  /metrics        fleet metrics (?format=plain for "name value")
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("POST /v1/predict", rt.localH.ServeHTTP)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("/v1/jobs/", rt.handleJob) // any method, any subpath
	mux.HandleFunc("GET /fleet/shards", rt.handleShards)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", obs.MetricsHandler(&rt.reg).ServeHTTP)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit parses and hashes the spec, answers twin-eligible
// submissions from the local service, and routes everything else to its
// rendezvous shard. A shard that dies mid-request is marked unhealthy
// and the submission re-picked among the survivors — the same placement
// every other router would now compute.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.cSubmits.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	norm, err := service.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if norm.Tier == service.TierTwin {
		if _, ok := twin.Eligible(norm.Family); ok {
			// The twin tier is cheaper than the proxy round trip itself:
			// answer at the router. Local job IDs carry no shard prefix,
			// so later lookups route back here too.
			rt.cTwinLocal.Add(1)
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
			rt.localH.ServeHTTP(w, r2)
			return
		}
	}
	rt.observeCost(rt.estimateCostUS(norm))

	hash := norm.Hash()
	exclude := map[*shard]bool{}
	for range rt.shards {
		sh := rt.pick(hash, exclude)
		if sh == nil {
			break
		}
		resp, err := rt.forward(sh, r, "/v1/jobs", bytes.NewReader(body), int64(len(body)))
		if err != nil {
			sh.proxyErrs.Add(1)
			rt.setHealthy(sh, false)
			exclude[sh] = true
			rt.cRerouted.Add(1)
			rt.logger.Warn("shard failed mid-submit; rerouting", "shard", sh.name, "err", err)
			continue
		}
		rt.cRouted.Add(1)
		sh.routed.Add(1)
		rt.relaySubmit(w, resp, sh)
		rt.hSubmitLat.Observe(uint64(time.Since(start).Microseconds()))
		return
	}
	rt.cNoShard.Add(1)
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable, "no healthy shard (of %d) to route to", len(rt.shards))
}

// forward proxies one request body to sh at path, preserving the query.
func (rt *Router) forward(sh *shard, r *http.Request, path string, body io.Reader, length int64) (*http.Response, error) {
	u := *sh.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), body)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if length >= 0 {
		req.ContentLength = length
	}
	return rt.client.Do(req)
}

// relaySubmit rewrites a shard's submission response for the fleet:
// job IDs gain the shard prefix, 429s gain the cost-aware Retry-After,
// and every response names its shard in X-Impulse-Shard.
func (rt *Router) relaySubmit(w http.ResponseWriter, resp *http.Response, sh *shard) {
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadGateway, "reading shard %s response: %v", sh.name, err)
		return
	}
	w.Header().Set("X-Impulse-Shard", sh.name)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Satellite of the twin tier: the shard's constant Retry-After
		// becomes an admission hint derived from its queue and the cost
		// EWMA (heavy sweeps quote honest waits, not "1").
		rt.cBackpressure.Add(1)
		sh.queueDepth.Store(sh.queueCap.Load()) // it just told us it is full
		retry := rt.retryAfterSeconds(sh)
		rt.hRetryAfter.Observe(uint64(retry))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		var m map[string]any
		if json.Unmarshal(payload, &m) == nil && m != nil {
			m["retry_after_s"] = retry
			m["shard"] = sh.name
			writeJSON(w, resp.StatusCode, m)
			return
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(payload)
		return
	}
	var m map[string]any
	if json.Unmarshal(payload, &m) == nil && m != nil {
		if id, ok := m["id"].(string); ok && id != "" {
			m["id"] = sh.name + "." + id
		}
		m["shard"] = sh.name
		writeJSON(w, resp.StatusCode, m)
		return
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(payload)
}

// handleJob routes /v1/jobs/{id}/... by the ID's shard prefix: a
// namespaced ID streams through to its owner (SSE included); an
// unprefixed ID is a router-local (twin) job.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id := rest
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	sh, local, ok := rt.ownerName(id)
	if !ok {
		rt.localH.ServeHTTP(w, r)
		return
	}
	path := "/v1/jobs/" + local + strings.TrimPrefix(rest, id)
	sh.routed.Add(1)
	rt.proxyStream(w, r, sh, path)
}

// proxyStream forwards r to sh at path and streams the response back,
// flushing as bytes arrive so SSE event streams pass through live.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, sh *shard, path string) {
	var body io.Reader
	length := int64(-1)
	if r.Body != nil && r.ContentLength != 0 {
		body = r.Body
		length = r.ContentLength
	}
	resp, err := rt.forward(sh, r, path, body, length)
	if err != nil {
		sh.proxyErrs.Add(1)
		rt.setHealthy(sh, false)
		writeError(w, http.StatusBadGateway, "shard %s unreachable: %v", sh.name, err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Impulse-Shard", sh.name)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	streaming := strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream")
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if streaming && fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleList merges every healthy shard's job list (IDs namespaced)
// with the router-local jobs.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := []any{}
	for _, st := range rt.local.Jobs() {
		jobs = append(jobs, st)
	}
	for _, sh := range rt.shards {
		if !sh.healthy.Load() {
			continue
		}
		resp, err := rt.forward(sh, r, "/v1/jobs", nil, 0)
		if err != nil {
			continue
		}
		var m struct {
			Jobs []map[string]any `json:"jobs"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&m)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, j := range m.Jobs {
			if id, ok := j["id"].(string); ok {
				j["id"] = sh.name + "." + id
			}
			j["shard"] = sh.name
			jobs = append(jobs, j)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// handleShards is the fleet introspection endpoint.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	type view struct {
		Name          string `json:"name"`
		URL           string `json:"url"`
		Healthy       bool   `json:"healthy"`
		QueueDepth    uint64 `json:"queue_depth"`
		QueueCapacity uint64 `json:"queue_capacity"`
		Running       uint64 `json:"running"`
		Executors     uint64 `json:"executors"`
		Requests      uint64 `json:"requests"`
		ProxyErrors   uint64 `json:"proxy_errors"`
		Transitions   uint64 `json:"health_transitions"`
	}
	out := make([]view, 0, len(rt.shards))
	for _, sh := range rt.shards {
		out = append(out, view{
			Name: sh.name, URL: sh.base.String(), Healthy: sh.healthy.Load(),
			QueueDepth: sh.queueDepth.Load(), QueueCapacity: sh.queueCap.Load(),
			Running: sh.running.Load(), Executors: sh.executors.Load(),
			Requests: sh.routed.Load(), ProxyErrors: sh.proxyErrs.Load(),
			Transitions: sh.transitions.Load(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": out})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var healthy int
	for _, sh := range rt.shards {
		if sh.healthy.Load() {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "role": "fleet-router",
		"shards": len(rt.shards), "shards_healthy": healthy,
	})
}

// handleReadyz: a router with at least one healthy shard can route.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var healthy int
	for _, sh := range rt.shards {
		if sh.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "not ready", "shards_healthy": 0})
		return
	}
	writeJSON(w, http.StatusOK,
		map[string]any{"status": "ready", "shards_healthy": healthy})
}
