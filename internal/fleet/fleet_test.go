package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"impulse/internal/service"
)

// fakeShard is a minimal impulsed stand-in: always ready, records
// submissions, and answers with configurable status codes — full
// control for the router-logic tests (the integration tests below use
// real services).
type fakeShard struct {
	srv       *httptest.Server
	submits   atomic.Uint64
	reject429 atomic.Bool
	mu        sync.Mutex
	hashes    []string
}

func newFakeShard(t *testing.T) *fakeShard {
	f := &fakeShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","queue_depth":3,"queue_capacity":8,"running":1,"executors":2}`)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if f.reject429.Load() {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"service: job queue full"}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		norm, err := service.ParseSpec(body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		n := f.submits.Add(1)
		f.mu.Lock()
		f.hashes = append(f.hashes, norm.Hash())
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"j-%06d","state":"queued","hash":%q}`, n, norm.Hash())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"state":"done"}`, r.PathValue("id"))
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newTestRouter(t *testing.T, shards []ShardConfig) (*Router, *service.Service) {
	t.Helper()
	local := service.New(service.Config{Executors: 1})
	t.Cleanup(local.Close)
	rt, err := New(Config{Shards: shards, Local: local, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, local
}

func simSpec(n int) string {
	return fmt.Sprintf(`{"kind":"sim","workload":"diag","n":%d}`, n)
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &m)
	return resp, m
}

// TestRendezvousRouting: identical specs always land on one shard;
// distinct specs spread across shards; job IDs come back namespaced.
func TestRendezvousRouting(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t), newFakeShard(t), newFakeShard(t)}
	rt, _ := newTestRouter(t, []ShardConfig{
		{Name: "s0", URL: fakes[0].srv.URL},
		{Name: "s1", URL: fakes[1].srv.URL},
		{Name: "s2", URL: fakes[2].srv.URL},
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	var firstShard string
	for i := 0; i < 5; i++ {
		resp, m := postJSON(t, ts.URL+"/v1/jobs", simSpec(64))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		shardName := resp.Header.Get("X-Impulse-Shard")
		if i == 0 {
			firstShard = shardName
		} else if shardName != firstShard {
			t.Fatalf("identical spec routed to %s then %s", firstShard, shardName)
		}
		id, _ := m["id"].(string)
		if !strings.HasPrefix(id, shardName+".") {
			t.Fatalf("job id %q not namespaced by shard %s", id, shardName)
		}
	}
	var total uint64
	for _, f := range fakes {
		total += f.submits.Load()
	}
	if total != 5 {
		t.Fatalf("5 identical submissions produced %d shard submits across the fleet", total)
	}

	// Distinct specs spread (deterministic given fixed hashes).
	for n := 100; n < 140; n++ {
		postJSON(t, ts.URL+"/v1/jobs", simSpec(n))
	}
	hit := 0
	for _, f := range fakes {
		if f.submits.Load() > 0 {
			hit++
		}
	}
	if hit < 2 {
		t.Fatalf("40 distinct specs all routed to %d shard(s)", hit)
	}
}

// TestJobProxyByPrefix: a namespaced ID proxies to its owner with the
// prefix stripped; an unknown prefix is treated as router-local (404
// from the local service).
func TestJobProxyByPrefix(t *testing.T) {
	f := newFakeShard(t)
	rt, _ := newTestRouter(t, []ShardConfig{{Name: "s0", URL: f.srv.URL}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/s0.j-000042")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || m["id"] != "j-000042" {
		t.Fatalf("proxied status lookup: %d %v", resp.StatusCode, m)
	}
	if got := resp.Header.Get("X-Impulse-Shard"); got != "s0" {
		t.Fatalf("X-Impulse-Shard %q", got)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j-000001")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unprefixed unknown id: status %d, want 404 from local service", resp.StatusCode)
	}
}

// TestTwinAnsweredLocally: a twin-eligible submission never touches a
// shard; its unprefixed job round-trips through the router to the local
// service, result included.
func TestTwinAnsweredLocally(t *testing.T) {
	f := newFakeShard(t)
	rt, _ := newTestRouter(t, []ShardConfig{{Name: "s0", URL: f.srv.URL}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, m := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"sweep","family":"superpage","fast":true,"tier":"twin"}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("twin submit status %d: %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if strings.Contains(id, ".") {
		t.Fatalf("twin-local job id %q carries a shard prefix", id)
	}
	if f.submits.Load() != 0 {
		t.Fatal("twin-eligible submission touched a shard")
	}
	if got, _ := rt.Registry().Value("fleet.submits_twin_local"); got != 1 {
		t.Fatalf("fleet.submits_twin_local = %d, want 1", got)
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("tier=twin")) {
		t.Fatalf("twin result via router: status %d, %d bytes", res.StatusCode, len(body))
	}

	// An ineligible twin request falls through to a shard (tier cleared
	// by the service; the router routes it like any simulation).
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", `{"kind":"sweep","family":"scheduler","fast":true,"tier":"twin"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ineligible twin submit status %d", resp.StatusCode)
	}
	if f.submits.Load() != 1 {
		t.Fatalf("ineligible twin submission did not route to the shard (submits=%d)", f.submits.Load())
	}
}

// TestRerouteOnShardFailure: a dead shard is excluded at health-poll
// time and its hashes move to survivors; a shard dying mid-request is
// marked unhealthy and the submission retried on another shard.
func TestRerouteOnShardFailure(t *testing.T) {
	alive := newFakeShard(t)
	dead := newFakeShard(t)
	rt, _ := newTestRouter(t, []ShardConfig{
		{Name: "s0", URL: alive.srv.URL},
		{Name: "s1", URL: dead.srv.URL},
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Kill s1 *after* the initial poll marked it healthy: the next
	// submission that rendezvous-picks it must fail over inline.
	dead.srv.Close()
	routed := 0
	for n := 64; n < 96; n++ {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", simSpec(n))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit n=%d status %d during failover", n, resp.StatusCode)
		}
		if resp.Header.Get("X-Impulse-Shard") == "s0" {
			routed++
		}
	}
	if routed != 32 {
		t.Fatalf("%d/32 submissions landed on the survivor", routed)
	}
	if rerouted, _ := rt.Registry().Value("fleet.submits_rerouted"); rerouted == 0 {
		t.Fatal("no submission recorded as rerouted despite a mid-request shard death")
	}
	if healthy, _ := rt.Registry().Value("fleet.shards_healthy"); healthy != 1 {
		t.Fatalf("fleet.shards_healthy = %d, want 1", healthy)
	}
}

// TestBackpressureRetryAfter: a shard's 429 passes through with a
// cost-aware Retry-After computed from its queue geometry, not the
// shard's constant.
func TestBackpressureRetryAfter(t *testing.T) {
	f := newFakeShard(t)
	rt, _ := newTestRouter(t, []ShardConfig{{Name: "s0", URL: f.srv.URL}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Teach the EWMA a heavy cost mix: un-twinned sweeps estimate at 5s.
	f.reject429.Store(true)
	resp, m := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"sweep","family":"scheduler","fast":true}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// queue_capacity=8 (full), executors=2, cost≈5s → (8+1)*5/2 ≈ 23s.
	if retry <= 1 || retry > 60 {
		t.Fatalf("Retry-After %d not cost-derived (want >1, ≤60)", retry)
	}
	if _, ok := m["retry_after_s"]; !ok {
		t.Fatalf("429 body missing retry_after_s: %v", m)
	}
	if got, _ := rt.Registry().Value("fleet.backpressure_429"); got != 1 {
		t.Fatalf("fleet.backpressure_429 = %d, want 1", got)
	}
}

// TestFleetSingleFlight is the integration headline: N concurrent
// identical submissions through the router against *real* impulsed
// services execute exactly once fleet-wide, and the result fetched via
// the namespaced ID matches a direct fetch from the owning shard.
func TestFleetSingleFlight(t *testing.T) {
	var backends []*service.Service
	var shards []ShardConfig
	for i := 0; i < 3; i++ {
		s := service.New(service.Config{Executors: 1})
		t.Cleanup(s.Close)
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		backends = append(backends, s)
		shards = append(shards, ShardConfig{Name: fmt.Sprintf("s%d", i), URL: srv.URL})
	}
	rt, _ := newTestRouter(t, shards)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	const clients = 24
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(simSpec(64)))
			if err != nil {
				t.Error(err)
				return
			}
			var m map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			ids[i], _ = m["id"].(string)
		}(i)
	}
	wg.Wait()

	// Every client got the same namespaced job.
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] || ids[i] == "" {
			t.Fatalf("client %d got job %q, client 0 got %q", i, ids[i], ids[0])
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/result?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	viaRouter, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(viaRouter) == 0 {
		t.Fatalf("result via router: status %d, %d bytes", resp.StatusCode, len(viaRouter))
	}

	// Fleet-wide single flight: summed executions across shards == 1.
	var executed uint64
	for _, b := range backends {
		n, _ := b.Registry().Value("service.jobs_executed")
		executed += n
	}
	if executed != 1 {
		t.Fatalf("%d clients caused %d executions fleet-wide, want exactly 1", clients, executed)
	}
}

// TestShardsAndReadyz: introspection endpoints report per-shard state,
// and readiness follows the healthy-shard count.
func TestShardsAndReadyz(t *testing.T) {
	f := newFakeShard(t)
	rt, _ := newTestRouter(t, []ShardConfig{{Name: "s0", URL: f.srv.URL}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleet/shards")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Shards []struct {
			Name          string `json:"name"`
			Healthy       bool   `json:"healthy"`
			QueueCapacity uint64 `json:"queue_capacity"`
		} `json:"shards"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if len(m.Shards) != 1 || !m.Shards[0].Healthy || m.Shards[0].QueueCapacity != 8 {
		t.Fatalf("/fleet/shards: %+v", m.Shards)
	}

	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a healthy shard: %d", resp.StatusCode)
	}
	f.srv.Close()
	rt.pollAll()
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no healthy shard: %d", resp.StatusCode)
	}
}
