package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRatios(t *testing.T) {
	s := MemStats{
		Loads:      1000,
		L1LoadHits: 646,
		L2LoadHits: 299,
		MemLoads:   55,
		LoadCycles: 4750,
	}
	if err := s.CheckLoadClassification(); err != nil {
		t.Fatal(err)
	}
	if got := s.L1HitRatio(); got != 0.646 {
		t.Errorf("L1HitRatio = %v", got)
	}
	if got := s.L2HitRatio(); got != 0.299 {
		t.Errorf("L2HitRatio = %v", got)
	}
	if got := s.MemHitRatio(); got != 0.055 {
		t.Errorf("MemHitRatio = %v", got)
	}
	if got := s.AvgLoadTime(); got != 4.75 {
		t.Errorf("AvgLoadTime = %v", got)
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	var s MemStats
	if s.L1HitRatio() != 0 || s.AvgLoadTime() != 0 {
		t.Error("empty stats should produce zero ratios")
	}
}

func TestClassificationMismatchDetected(t *testing.T) {
	s := MemStats{Loads: 10, L1LoadHits: 5, L2LoadHits: 2, MemLoads: 2}
	if err := s.CheckLoadClassification(); err == nil {
		t.Error("mismatch not detected")
	}
}

func TestAddAccumulatesEveryField(t *testing.T) {
	// Fill a with 1s via Add of two halves and verify a selection of
	// fields; Add must not drop fields when MemStats grows.
	a := &MemStats{}
	b := &MemStats{
		Instructions: 1, Loads: 2, Stores: 3, L1LoadHits: 4, L2LoadHits: 5,
		MemLoads: 6, LoadCycles: 7, TLBMisses: 8, BusBytes: 9,
		ShadowReads: 10, MCPrefetchHits: 11, DRAMReads: 12, Syscalls: 13,
		FlushedLines: 14, L2Writebacks: 15, SDescPrefHits: 16,
		L1Prefetches: 17, DRAMRowHits: 18, SyscallCycles: 19,
	}
	a.Add(b)
	a.Add(b)
	if a.Loads != 4 || a.BusBytes != 18 || a.SDescPrefHits != 32 ||
		a.L2Writebacks != 30 || a.SyscallCycles != 38 {
		t.Errorf("Add accumulation wrong: %+v", a)
	}
}

func TestRatioProperty(t *testing.T) {
	f := func(n, d uint32) bool {
		r := Ratio(uint64(n), uint64(d))
		if d == 0 {
			return r == 0
		}
		return r >= 0 && r == float64(n)/float64(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Simulated results", "Standard", "Impulse", "L1 cache", "both")
	tb.Section("Conventional memory system")
	tb.AddRow("Time", "2.81G", "2.69G", "2.51G", "2.49G")
	tb.AddPercentRow("L1 hit ratio", 0.646, 0.646, 0.677, 0.677)
	tb.AddRow("avg load time", 4.75, 4.38, 3.56, 3.54)
	out := tb.Render()
	for _, want := range []string{
		"Simulated results", "Conventional memory system",
		"64.6%", "67.7%", "4.75", "2.81G", "Standard", "both",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Data rows (non-section) must all have equal rendered width.
	var width int
	for _, l := range lines[2:] { // skip title + rule
		if strings.HasPrefix(l, "Conventional") || strings.HasPrefix(l, "-") {
			continue
		}
		if width == 0 {
			width = len(l)
		}
	}
	if width == 0 {
		t.Fatal("no data rows rendered")
	}
}

func TestFormatCycles(t *testing.T) {
	cases := []struct {
		c    uint64
		want string
	}{
		{999, "999"}, {12_500, "12.5K"}, {2_810_000, "2.81M"},
		{2_810_000_000, "2.81G"},
	}
	for _, c := range cases {
		if got := FormatCycles(c.c); got != c.want {
			t.Errorf("FormatCycles(%d) = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestTableSectionlessAndMixedCells(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("ints", 1, 2)
	tb.AddRow("mixed", "x", 3.14159)
	out := tb.Render()
	for _, want := range []string{"ints", "3.14", "x", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatCyclesBoundaries(t *testing.T) {
	cases := []struct {
		c    uint64
		want string
	}{
		{0, "0"}, {9999, "9999"}, {10_000, "10.0K"},
		{999_999, "1000.0K"}, {1_000_000, "1.00M"},
		{999_999_999, "1000.00M"}, {1_000_000_000, "1.00G"},
	}
	for _, c := range cases {
		if got := FormatCycles(c.c); got != c.want {
			t.Errorf("FormatCycles(%d) = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	var a MemStats
	a.Loads, a.L1LoadHits, a.MemLoads, a.L2LoadHits = 100, 60, 10, 30
	a.LoadLatency.Observe(5)
	b := a
	b.Loads, b.L1LoadHits = 150, 110
	b.LoadLatency.Observe(7)
	d := Delta(&a, &b)
	if d.Loads != 50 || d.L1LoadHits != 50 || d.MemLoads != 0 {
		t.Errorf("delta: %+v", d)
	}
	if d.LoadLatency.Count != 1 || d.LoadLatency.Total != 7 {
		t.Errorf("latency delta: %+v", d.LoadLatency)
	}
}
