package stats

import (
	"reflect"
	"strings"
	"testing"

	"impulse/internal/obs"
)

// fillDistinct sets every uint64 field of s (including LatencyHist
// scalars and buckets) to a distinct non-zero value derived from seed.
func fillDistinct(s *MemStats, seed uint64) {
	n := seed
	var walk func(v reflect.Value)
	walk = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Uint64:
			n++
			v.SetUint(n)
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i))
			}
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		default:
			// TestMemStatsFieldKinds rejects anything else.
		}
	}
	walk(reflect.ValueOf(s).Elem())
}

// TestMemStatsFieldKinds pins the structural assumption behind the
// hand-maintained Add/Delta lists and the reflective Register walk:
// every MemStats field is a uint64 counter or the LatencyHist.
func TestMemStatsFieldKinds(t *testing.T) {
	t.Parallel()
	histType := reflect.TypeOf(LatencyHist{})
	st := reflect.TypeOf(MemStats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Uint64 && f.Type != histType {
			t.Errorf("MemStats.%s has kind %s; Add/Delta/Register only handle uint64 and LatencyHist",
				f.Name, f.Type)
		}
	}
	ht := reflect.TypeOf(LatencyHist{})
	for i := 0; i < ht.NumField(); i++ {
		f := ht.Field(i)
		k := f.Type.Kind()
		if k != reflect.Uint64 && !(k == reflect.Array && f.Type.Elem().Kind() == reflect.Uint64) {
			t.Errorf("LatencyHist.%s has kind %s; expected uint64 or [N]uint64", f.Name, f.Type)
		}
	}
}

// TestAddCoversEveryField catches the classic drift bug: a new field
// added to MemStats but forgotten in Add. Adding a fully-distinct
// struct to a zero struct must reproduce it exactly (LatencyHist.Max
// uses max, which equals the operand when starting from zero).
func TestAddCoversEveryField(t *testing.T) {
	t.Parallel()
	var src, dst MemStats
	fillDistinct(&src, 100)
	dst.Add(&src)
	if !reflect.DeepEqual(dst, src) {
		t.Errorf("Add from zero does not reproduce the source; some field is missing from Add:\n got %+v\nwant %+v", dst, src)
	}
}

// TestDeltaCoversEveryField: after - before must equal the increment
// that was applied between the two snapshots, for every uint64 field.
// (LatencyHist.Max is documented to keep the 'after' value; it is
// excluded by construction since fillDistinct makes after.Max larger.)
func TestDeltaCoversEveryField(t *testing.T) {
	t.Parallel()
	var before, inc MemStats
	fillDistinct(&before, 1000)
	fillDistinct(&inc, 5000)
	after := before
	after.Add(&inc)
	got := Delta(&before, &after)
	// Delta documents that Max is carried from `after`, not subtracted.
	want := inc
	want.LoadLatency.Max = after.LoadLatency.Max
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Delta(before, before+inc) != inc; some field is missing from Delta:\n got %+v\nwant %+v", got, want)
	}
}

// TestRegisterExposesEveryField checks that the reflective Register
// walk emits one registry entry per uint64 field plus the LoadLatency
// components, and that entries are live pointers.
func TestRegisterExposesEveryField(t *testing.T) {
	t.Parallel()
	var s MemStats
	var r obs.Registry
	s.Register(&r, "stats.")

	st := reflect.TypeOf(MemStats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			continue
		}
		if _, ok := r.Value("stats." + f.Name); !ok {
			t.Errorf("field %s not registered", f.Name)
		}
	}
	for _, name := range []string{
		"stats.LoadLatency.Count", "stats.LoadLatency.Total", "stats.LoadLatency.Max",
		"stats.LoadLatency.P50", "stats.LoadLatency.P95", "stats.LoadLatency.P99",
	} {
		if _, ok := r.Value(name); !ok {
			t.Errorf("%s not registered", name)
		}
	}

	s.Loads = 42
	s.LoadLatency.Observe(7)
	s.LoadLatency.Observe(100)
	if v, _ := r.Value("stats.Loads"); v != 42 {
		t.Errorf("stats.Loads = %d, want 42 (registry must read live state)", v)
	}
	if v, _ := r.Value("stats.LoadLatency.Count"); v != 2 {
		t.Errorf("LoadLatency.Count = %d, want 2", v)
	}
	if v, _ := r.Value("stats.LoadLatency.P99"); v == 0 {
		t.Error("LoadLatency.P99 = 0 after observations")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stats.Loads 42\n") {
		t.Errorf("dump missing live stats.Loads line:\n%s", sb.String())
	}
}
