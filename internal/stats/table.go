package stats

import (
	"fmt"
	"strings"
)

// Table renders rows of labeled values as aligned monospace text, in the
// style of the paper's Tables 1 and 2: one metric per row, one system
// configuration per column.
type Table struct {
	Title   string
	Columns []string   // column headers (configurations)
	rows    []tableRow // metric rows
}

type tableRow struct {
	label string
	cells []string
	rule  bool // horizontal rule / section header row
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Section inserts a full-width section header, like the paper's
// "Conventional memory system" / "Impulse with scatter/gather remapping"
// band rows.
func (t *Table) Section(name string) {
	t.rows = append(t.rows, tableRow{label: name, rule: true})
}

// AddRow appends a metric row. Cells are formatted with %v unless they are
// float64, which use %.2f, or preformatted strings.
func (t *Table) AddRow(label string, cells ...interface{}) {
	r := tableRow{label: label, cells: make([]string, len(cells))}
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			r.cells[i] = fmt.Sprintf("%.2f", v)
		case string:
			r.cells[i] = v
		default:
			r.cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, r)
}

// AddPercentRow appends a row of ratios formatted as percentages with one
// decimal, e.g. 0.646 -> "64.6%".
func (t *Table) AddPercentRow(label string, ratios ...float64) {
	cells := make([]interface{}, len(ratios))
	for i, r := range ratios {
		cells[i] = FormatPercent(r)
	}
	t.AddRow(label, cells...)
}

// FormatPercent renders a ratio the way the percent rows print it
// ("64.6%"). Shared by every text view of a result (harness grids and
// columnar renderings must stay byte-identical).
func FormatPercent(r float64) string {
	return fmt.Sprintf("%.1f%%", r*100)
}

// Render returns the formatted table.
func (t *Table) Render() string {
	ncol := len(t.Columns)
	widths := make([]int, ncol+1)
	for _, c := range append([]string{""}, t.Columns...) {
		_ = c
	}
	widths[0] = 0
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		if r.rule {
			continue
		}
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, c := range r.cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	total := widths[0]
	for _, w := range widths[1:] {
		total += w + 2
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		b.WriteString(strings.Repeat("=", max(total, len(t.Title))))
		b.WriteByte('\n')
	}
	// Header.
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		if r.rule {
			fmt.Fprintf(&b, "%s\n", r.label)
			continue
		}
		fmt.Fprintf(&b, "%-*s", widths[0], r.label)
		for i, c := range r.cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatPercentiles renders a p50/p95/p99 latency triple the way the
// table rows print it ("1/100/100"). Shared by every text view of a
// result (harness grids and columnar renderings must stay
// byte-identical).
func FormatPercentiles(p50, p95, p99 uint64) string {
	return fmt.Sprintf("%d/%d/%d", p50, p95, p99)
}

// FormatCycles renders a cycle count the way the paper does ("Times are in
// billions of cycles") but adaptively: raw counts below a million, then
// millions/billions with two decimals.
func FormatCycles(c uint64) string {
	switch {
	case c >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(c)/1e9)
	case c >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(c)/1e6)
	case c >= 10_000:
		return fmt.Sprintf("%.1fK", float64(c)/1e3)
	default:
		return fmt.Sprintf("%d", c)
	}
}
