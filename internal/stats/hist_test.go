package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistObserve(t *testing.T) {
	var h LatencyHist
	for _, c := range []uint64{1, 1, 1, 7, 40, 40, 500} {
		h.Observe(c)
	}
	if h.Count != 7 || h.Total != 590 || h.Max != 500 {
		t.Fatalf("count=%d total=%d max=%d", h.Count, h.Total, h.Max)
	}
	if h.Buckets[0] != 3 { // [1,2)
		t.Errorf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[2] != 1 { // 7 in [4,8)
		t.Errorf("bucket 2 = %d", h.Buckets[2])
	}
	if h.Buckets[5] != 2 { // 40 in [32,64)
		t.Errorf("bucket 5 = %d", h.Buckets[5])
	}
	if got := h.Mean(); got != 590.0/7 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistPercentiles(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if p := h.Percentile(50); p > 1 {
		t.Errorf("p50 = %d, want <= 1", p)
	}
	if p := h.Percentile(99); p < 100 {
		t.Errorf("p99 = %d, want >= 100", p)
	}
	var empty LatencyHist
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile nonzero")
	}
}

func TestHistOverflowBucket(t *testing.T) {
	var h LatencyHist
	h.Observe(1 << 40) // beyond the last bucket boundary
	if h.Buckets[histBuckets-1] != 1 {
		t.Error("huge latency not in last bucket")
	}
	if h.Percentile(100) != 1<<40 {
		t.Errorf("p100 = %d", h.Percentile(100))
	}
}

func TestHistAddSub(t *testing.T) {
	var a, b LatencyHist
	a.Observe(5)
	a.Observe(50)
	b.Observe(5)
	sum := a
	sum.Add(&b)
	if sum.Count != 3 || sum.Total != 60 {
		t.Fatalf("sum: %+v", sum)
	}
	sum.Sub(&a)
	if sum.Count != 1 || sum.Total != 5 || sum.Buckets[2] != 1 {
		t.Fatalf("after sub: %+v", sum)
	}
}

func TestHistString(t *testing.T) {
	var h LatencyHist
	if !strings.Contains(h.String(), "no observations") {
		t.Error("empty hist string")
	}
	h.Observe(1)
	h.Observe(40)
	out := h.String()
	for _, want := range []string{"count=2", "p50", "max=40", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("hist string missing %q:\n%s", want, out)
		}
	}
}

// Property: percentile is monotone in p, count/total stay consistent.
func TestHistProperties(t *testing.T) {
	f := func(vals []uint16) bool {
		var h LatencyHist
		var total uint64
		for _, v := range vals {
			h.Observe(uint64(v))
			total += uint64(v)
		}
		if h.Count != uint64(len(vals)) || h.Total != total {
			return false
		}
		prev := uint64(0)
		for _, p := range []float64{10, 50, 90, 99, 100} {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
