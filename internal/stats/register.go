package stats

import (
	"reflect"

	"impulse/internal/obs"
)

// Register exposes every MemStats counter in r under prefix. Fields are
// discovered by reflection, so a counter added to the struct shows up in
// the registry dump without touching this file (TestMemStatsFieldKinds
// guards the assumption that every field is a uint64 or a LatencyHist).
// The LoadLatency histogram is exposed as its scalar components plus
// percentile upper bounds, evaluated lazily at dump time.
func (s *MemStats) Register(r *obs.Registry, prefix string) {
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Uint64 {
			r.Counter(prefix+t.Field(i).Name, f.Addr().Interface().(*uint64))
		}
	}
	h := &s.LoadLatency
	r.Counter(prefix+"LoadLatency.Count", &h.Count)
	r.Counter(prefix+"LoadLatency.Total", &h.Total)
	r.Counter(prefix+"LoadLatency.Max", &h.Max)
	r.Gauge(prefix+"LoadLatency.P50", func() uint64 { return h.Percentile(50) })
	r.Gauge(prefix+"LoadLatency.P95", func() uint64 { return h.Percentile(95) })
	r.Gauge(prefix+"LoadLatency.P99", func() uint64 { return h.Percentile(99) })
}
