// Package stats collects the measurements the Impulse paper reports and
// renders them as text tables.
//
// The paper's Tables 1 and 2 report, per memory-system configuration:
// execution time (cycles), L1/L2/memory hit ratios (each *load* classified
// at exactly one level, with total loads as the divisor — see the caption
// of Table 1), average load time in cycles, and speedup versus the
// conventional system without prefetching. MemStats carries everything
// needed to compute those plus the secondary quantities discussed in the
// text (bus traffic, prefetch-buffer effectiveness, DRAM behaviour).
package stats

import "fmt"

// MemStats accumulates event counts for one simulation run. Plain struct,
// no synchronization: the simulated machine is single-threaded (a
// single-issue CPU), as in the paper.
type MemStats struct {
	// CPU activity.
	Instructions uint64 // issued instructions (1 cycle each, single-issue)
	Loads        uint64
	Stores       uint64

	// Per-load classification: exactly one of these is incremented per
	// load. A load that hits a controller prefetch buffer still counts as
	// MemLoads (it went to the memory system), matching the paper.
	L1LoadHits uint64
	L2LoadHits uint64
	MemLoads   uint64

	// LoadCycles is the total cycles from load issue to data return,
	// inclusive of the single issue cycle (an L1 hit contributes 1).
	// AvgLoadTime() = LoadCycles/Loads, the paper's "average load time".
	LoadCycles uint64

	// Store classification (stores are write-around at L1).
	L1StoreHits uint64
	L2StoreHits uint64
	MemStores   uint64
	StoreCycles uint64

	// TLB behaviour.
	TLBMisses   uint64
	TLBWalkCost uint64 // cycles spent in TLB miss handling

	// Bus traffic.
	BusTransactions uint64
	BusBytes        uint64
	BusBusyCycles   uint64

	// Memory-controller activity.
	ShadowReads     uint64 // cache-line fills served from shadow space
	ShadowDRAMReads uint64 // DRAM line accesses performed to build them
	MCTLBMisses     uint64 // controller PgTbl misses
	MCPrefetchHits  uint64 // non-shadow demand fills served by the 2KB SRAM
	MCPrefetches    uint64 // prefetches launched by the controller
	SDescPrefHits   uint64 // shadow fills served by a descriptor buffer
	SDescPrefetches uint64

	// L1 hardware prefetcher.
	L1Prefetches   uint64
	L1PrefetchHits uint64 // demand L1 hits on prefetched-not-yet-used lines

	// DRAM.
	DRAMReads     uint64
	DRAMWrites    uint64
	DRAMRowHits   uint64
	DRAMRowMisses uint64

	// OS / Impulse software interface.
	Syscalls      uint64
	SyscallCycles uint64
	FlushedLines  uint64
	FlushCycles   uint64

	// Cache write-back traffic.
	L1Writebacks uint64
	L2Writebacks uint64

	// LoadLatency is the distribution behind AvgLoadTime.
	LoadLatency LatencyHist
}

// Add accumulates o into s.
func (s *MemStats) Add(o *MemStats) {
	s.Instructions += o.Instructions
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1LoadHits += o.L1LoadHits
	s.L2LoadHits += o.L2LoadHits
	s.MemLoads += o.MemLoads
	s.LoadCycles += o.LoadCycles
	s.L1StoreHits += o.L1StoreHits
	s.L2StoreHits += o.L2StoreHits
	s.MemStores += o.MemStores
	s.StoreCycles += o.StoreCycles
	s.TLBMisses += o.TLBMisses
	s.TLBWalkCost += o.TLBWalkCost
	s.BusTransactions += o.BusTransactions
	s.BusBytes += o.BusBytes
	s.BusBusyCycles += o.BusBusyCycles
	s.ShadowReads += o.ShadowReads
	s.ShadowDRAMReads += o.ShadowDRAMReads
	s.MCTLBMisses += o.MCTLBMisses
	s.MCPrefetchHits += o.MCPrefetchHits
	s.MCPrefetches += o.MCPrefetches
	s.SDescPrefHits += o.SDescPrefHits
	s.SDescPrefetches += o.SDescPrefetches
	s.L1Prefetches += o.L1Prefetches
	s.L1PrefetchHits += o.L1PrefetchHits
	s.DRAMReads += o.DRAMReads
	s.DRAMWrites += o.DRAMWrites
	s.DRAMRowHits += o.DRAMRowHits
	s.DRAMRowMisses += o.DRAMRowMisses
	s.Syscalls += o.Syscalls
	s.SyscallCycles += o.SyscallCycles
	s.FlushedLines += o.FlushedLines
	s.FlushCycles += o.FlushCycles
	s.L1Writebacks += o.L1Writebacks
	s.L2Writebacks += o.L2Writebacks
	s.LoadLatency.Add(&o.LoadLatency)
}

// Delta returns after - before, field-wise. Used to measure a timed
// section of a run (the NPB convention: initialization is not timed).
func Delta(before, after *MemStats) MemStats {
	d := *after
	d.Instructions -= before.Instructions
	d.Loads -= before.Loads
	d.Stores -= before.Stores
	d.L1LoadHits -= before.L1LoadHits
	d.L2LoadHits -= before.L2LoadHits
	d.MemLoads -= before.MemLoads
	d.LoadCycles -= before.LoadCycles
	d.L1StoreHits -= before.L1StoreHits
	d.L2StoreHits -= before.L2StoreHits
	d.MemStores -= before.MemStores
	d.StoreCycles -= before.StoreCycles
	d.TLBMisses -= before.TLBMisses
	d.TLBWalkCost -= before.TLBWalkCost
	d.BusTransactions -= before.BusTransactions
	d.BusBytes -= before.BusBytes
	d.BusBusyCycles -= before.BusBusyCycles
	d.ShadowReads -= before.ShadowReads
	d.ShadowDRAMReads -= before.ShadowDRAMReads
	d.MCTLBMisses -= before.MCTLBMisses
	d.MCPrefetchHits -= before.MCPrefetchHits
	d.MCPrefetches -= before.MCPrefetches
	d.SDescPrefHits -= before.SDescPrefHits
	d.SDescPrefetches -= before.SDescPrefetches
	d.L1Prefetches -= before.L1Prefetches
	d.L1PrefetchHits -= before.L1PrefetchHits
	d.DRAMReads -= before.DRAMReads
	d.DRAMWrites -= before.DRAMWrites
	d.DRAMRowHits -= before.DRAMRowHits
	d.DRAMRowMisses -= before.DRAMRowMisses
	d.Syscalls -= before.Syscalls
	d.SyscallCycles -= before.SyscallCycles
	d.FlushedLines -= before.FlushedLines
	d.FlushCycles -= before.FlushCycles
	d.L1Writebacks -= before.L1Writebacks
	d.L2Writebacks -= before.L2Writebacks
	d.LoadLatency.Sub(&before.LoadLatency)
	return d
}

// Ratio returns num/den as a float, 0 when den == 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// L1HitRatio is L1 load hits over total loads.
func (s *MemStats) L1HitRatio() float64 { return Ratio(s.L1LoadHits, s.Loads) }

// L2HitRatio is L2 load hits over total loads (the paper's convention:
// the divisor is total loads, not L2 accesses).
func (s *MemStats) L2HitRatio() float64 { return Ratio(s.L2LoadHits, s.Loads) }

// MemHitRatio is loads served by the memory system over total loads.
func (s *MemStats) MemHitRatio() float64 { return Ratio(s.MemLoads, s.Loads) }

// AvgLoadTime is the paper's "average load time" in cycles.
func (s *MemStats) AvgLoadTime() float64 { return Ratio(s.LoadCycles, s.Loads) }

// CheckLoadClassification verifies the invariant that every load was
// classified at exactly one level.
func (s *MemStats) CheckLoadClassification() error {
	sum := s.L1LoadHits + s.L2LoadHits + s.MemLoads
	if sum != s.Loads {
		return fmt.Errorf("stats: load classification mismatch: L1 %d + L2 %d + mem %d = %d, loads %d",
			s.L1LoadHits, s.L2LoadHits, s.MemLoads, sum, s.Loads)
	}
	return nil
}
