package stats

import (
	"fmt"
	"strings"

	"impulse/internal/obs"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations in [2^i, 2^(i+1)), with the last bucket open-ended.
// The bucketing scheme is shared with the service-side obs.Histogram
// (obs.BucketIndex); only the bucket count differs, because simulated
// load latencies span a narrower range than host-side job durations.
const histBuckets = 16

// LatencyHist is a power-of-two-bucketed latency histogram. The paper
// reports only average load time; the histogram exposes the structure
// behind it (the L1/L2/memory/gather modes are visible as separate
// peaks), which the harness uses for diagnostics and ablations.
type LatencyHist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Total   uint64
	Max     uint64
}

// Observe records one latency value (cycles).
func (h *LatencyHist) Observe(c uint64) {
	h.Buckets[obs.BucketIndex(c, histBuckets)]++
	h.Count++
	h.Total += c
	if c > h.Max {
		h.Max = c
	}
}

// Mean returns the average observed latency.
func (h *LatencyHist) Mean() float64 { return Ratio(h.Total, h.Count) }

// Percentile returns an upper bound for the p-th percentile (0 < p <=
// 100): the top of the bucket containing that rank.
func (h *LatencyHist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.Buckets[i]
		if cum >= rank {
			if i == histBuckets-1 {
				return h.Max
			}
			return 1<<(i+1) - 1
		}
	}
	return h.Max
}

// Add accumulates o into h.
func (h *LatencyHist) Add(o *LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Total += o.Total
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Sub removes `before` from h (for section deltas). Max is kept from h:
// an upper bound, which is what diagnostics need.
func (h *LatencyHist) Sub(before *LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] -= before.Buckets[i]
	}
	h.Count -= before.Count
	h.Total -= before.Total
}

// String renders a compact ASCII histogram.
func (h *LatencyHist) String() string {
	if h.Count == 0 {
		return "(no observations)"
	}
	var peak uint64
	for _, b := range h.Buckets {
		if b > peak {
			peak = b
		}
	}
	var sb strings.Builder
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		lo := uint64(1) << i
		if i == 0 {
			lo = 0
		}
		bar := int(40 * b / peak)
		fmt.Fprintf(&sb, "%6d-%-6d %8d %s\n", lo, uint64(1)<<(i+1)-1, b, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&sb, "count=%d mean=%.2f p50<=%d p95<=%d p99<=%d max=%d\n",
		h.Count, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max)
	return sb.String()
}
