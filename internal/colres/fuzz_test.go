package colres

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzColumnarDecode pins the decoder's two safety properties (run
// under `make fuzz-short`):
//
//  1. Decode never panics or over-allocates on arbitrary bytes — every
//     malformed input must come back as an error.
//  2. Any blob that does decode re-encodes canonically: encoding the
//     decoded document and decoding it again yields the same encoding
//     (float bit patterns included), so the archive digest of a result
//     is well-defined.
func FuzzColumnarDecode(f *testing.F) {
	valid := Encode(testDoc())
	f.Add(valid)
	f.Add(Encode(&Doc{Title: "empty"}))
	f.Add(valid[:len(valid)-1])                     // truncated trailer
	f.Add(valid[1:])                                // missing magic byte
	f.Add([]byte("IMPCOL01"))                       // magic only
	f.Add(append([]byte(nil), make([]byte, 64)...)) // zeros
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-16] ^= 0x40 // footer offset
	f.Add(corrupt)
	f.Add(EncodeRow(Row{Label: "s/c", Cycles: 7, L1: 0.5})) // row chunk, not a blob
	// Wrapping footer spans with a valid checksum (see
	// TestDecodeOverflowingFooterSpans for the field numbering).
	f.Add(patchFooterField(f, valid, 4, ^uint64(0)-15))
	f.Add(patchFooterField(f, valid, 4+2*numColumnIDs, ^uint64(0)-3))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Drive the decoder a second time with the trailer checksum
		// recomputed, so mutations reach the footer and string-table
		// parsers: nearly all randomly mutated inputs otherwise die at
		// the CRC gate and leave those paths unfuzzed.
		if len(data) >= len(magic)+trailerLen {
			fixed := append([]byte(nil), data...)
			body := len(fixed) - trailerLen
			binary.LittleEndian.PutUint32(fixed[body+8:], crc32.ChecksumIEEE(fixed[:body]))
			if doc, err := Decode(fixed); err == nil {
				if _, err := Decode(Encode(doc)); err != nil {
					t.Fatalf("re-encode of CRC-fixed blob does not decode: %v", err)
				}
			}
		}
		doc, err := Decode(data)
		if err != nil {
			// Rejected input: also drive the row-chunk decoder, which
			// shares the no-panic obligation.
			_, _ = DecodeRow(data)
			return
		}
		re := Encode(doc)
		doc2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if !bytes.Equal(re, Encode(doc2)) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
