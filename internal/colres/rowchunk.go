package colres

import (
	"encoding/binary"
	"fmt"
	"math"

	"impulse/internal/tracefile"
)

// Row is one grid cell's metrics as they stream over SSE while a job is
// still running: the same fixed-width columns a finished blob carries,
// framed as a self-contained record because incremental consumers see
// cells one at a time, before the footer index can exist. The label is
// the row's harness label (section/config); coordinates resolve only
// once the whole grid is assembled.
type Row struct {
	Label    string
	Cycles   uint64
	Loads    uint64
	Stores   uint64
	BusBytes uint64
	P50      uint64
	P95      uint64
	P99      uint64
	L1       float64
	L2       float64
	Mem      float64
	AvgLoad  float64
}

// EncodeRow frames r as one binary chunk: uvarint label length + label,
// uvarint counters, then the four ratio/latency floats as fixed 8-byte
// IEEE-754 bit patterns.
func EncodeRow(r Row) []byte {
	buf := make([]byte, 0, 64+len(r.Label))
	buf = binary.AppendUvarint(buf, uint64(len(r.Label)))
	buf = append(buf, r.Label...)
	for _, v := range [...]uint64{r.Cycles, r.Loads, r.Stores, r.BusBytes, r.P50, r.P95, r.P99} {
		buf = binary.AppendUvarint(buf, v)
	}
	for _, v := range [...]float64{r.L1, r.L2, r.Mem, r.AvgLoad} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeRow parses one EncodeRow chunk.
func DecodeRow(b []byte) (Row, error) {
	var r Row
	pos := 0
	u := func() (uint64, error) {
		v, n := tracefile.Uvarint(b, pos)
		if n <= 0 {
			return 0, fmt.Errorf("colres: truncated row chunk at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	l, err := u()
	if err != nil {
		return r, err
	}
	if l > uint64(len(b)-pos) {
		return r, fmt.Errorf("colres: row label overruns chunk")
	}
	r.Label = string(b[pos : pos+int(l)])
	pos += int(l)
	for _, dst := range [...]*uint64{&r.Cycles, &r.Loads, &r.Stores, &r.BusBytes, &r.P50, &r.P95, &r.P99} {
		if *dst, err = u(); err != nil {
			return r, err
		}
	}
	for _, dst := range [...]*float64{&r.L1, &r.L2, &r.Mem, &r.AvgLoad} {
		if pos+8 > len(b) {
			return r, fmt.Errorf("colres: truncated row chunk at offset %d", pos)
		}
		*dst = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
	}
	if pos != len(b) {
		return r, fmt.Errorf("colres: %d trailing bytes after row chunk", len(b)-pos)
	}
	return r, nil
}
