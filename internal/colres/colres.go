// Package colres is the columnar result format: the one typed schema a
// finished experiment grid flows through from the harness row sink to
// the service archive, the SSE stream, and the CLI readers. A grid is
// encoded once per job as an append-friendly binary blob — fixed-width
// metric columns plus a string table, indexed by a footer written last
// so the encoder never seeks — and every human- or machine-facing
// rendering (Grid JSON, the paper-style text tables, the SVG chart) is
// a view computed lazily from the columns. The impulsed archive stores
// these blobs on disk and serves cache hits by memory-mapping them and
// writing the mapped bytes straight to the response; see docs/RESULTS.md
// for the byte-level layout and compatibility policy.
package colres

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"impulse/internal/tracefile"
)

// ContentType is the MIME type of an encoded blob.
const ContentType = "application/x-impulse-columnar"

// Cell is one measured grid cell in columnar form: coordinates as
// string-table indices plus the fixed-width counters and derived stats
// every view needs. Percentiles are precomputed at build time (the
// latency histogram itself stays with the run; views only ever show
// p50/p95/p99).
type Cell struct {
	Section uint32 // index into Doc.Sections
	Column  uint32 // index into Doc.Columns

	Cycles   uint64
	Loads    uint64
	Stores   uint64
	BusBytes uint64
	P50      uint64 // load-latency percentiles, cycles
	P95      uint64
	P99      uint64

	L1      float64 // hit ratios in [0,1]
	L2      float64
	Mem     float64
	AvgLoad float64
	Speedup float64
}

// Doc is a decoded (or about-to-be-encoded) result document: the grid's
// identity strings plus its cells in section-major, column-minor order.
type Doc struct {
	Title    string
	Sections []string // section band labels, in order
	Columns  []string // table column headers (prefetch policies)
	Cells    []Cell
}

// Binary layout (version 01). All integers little-endian; "uvarint" is
// the tracefile varint. Offsets are relative to the blob start.
//
//	magic      "IMPCOL01" (8 bytes)
//	columns    one fixed-width payload per column id, appended in id
//	           order: cellCount × 4 bytes (u32 ids), × 8 bytes (u64
//	           counters, f64 bit patterns)
//	strings    uvarint count, then per string uvarint length + bytes;
//	           entry 0 is the title, then sections, then column headers
//	footer     uvarint cellCount, nSections, nColumns;
//	           uvarint columnCount, then per column: 1-byte id,
//	           uvarint offset, uvarint length;
//	           uvarint stringsOffset, uvarint stringsLength
//	trailer    u32 footerOffset | u32 footerLength |
//	           u32 CRC-32 (IEEE) of everything before the trailer |
//	           "IMPF" (16 bytes)
//
// Readers parse from the end: fixed trailer, then footer, then only the
// slices a view actually touches. The footer index is what makes the
// blob append-friendly — the encoder emits column payloads as they
// complete and never rewrites earlier bytes.
var magic = [8]byte{'I', 'M', 'P', 'C', 'O', 'L', '0', '1'}

const (
	trailerLen  = 16
	trailerTail = "IMPF"
)

// Column ids. Order is the wire order; new columns append (readers
// reject unknown ids, so adding one bumps the version byte in magic).
const (
	colSection   = 1 + iota // u32
	colColumn               // u32
	colCycles               // u64
	colLoads                // u64
	colStores               // u64
	colBusBytes             // u64
	colP50                  // u64
	colP95                  // u64
	colP99                  // u64
	colL1                   // f64
	colL2                   // f64
	colMem                  // f64
	colAvgLoad              // f64
	colSpeedup              // f64
	numColumnIDs = colSpeedup
)

// colWidth is the fixed byte width of one value in column id.
func colWidth(id byte) int {
	if id == colSection || id == colColumn {
		return 4
	}
	return 8
}

// maxCells bounds decoded cell counts: a grid is sections × prefetch
// columns (a dozen cells today), so anything near this limit is a
// corrupt or adversarial footer, not a result.
const maxCells = 1 << 20

// Encode renders d as a standalone blob.
func Encode(d *Doc) []byte { return Append(nil, d) }

// Append appends d's encoding to buf and returns the extended slice.
// Offsets inside the encoding are relative to the blob's own start, so
// the appended bytes are a valid standalone blob.
func Append(buf []byte, d *Doc) []byte {
	base := len(buf)
	buf = append(buf, magic[:]...)
	n := len(d.Cells)

	type span struct {
		id       byte
		off, len int
	}
	spans := make([]span, 0, numColumnIDs)
	emit := func(id byte, put func(*Cell, []byte) []byte) {
		off := len(buf) - base
		for i := range d.Cells {
			buf = put(&d.Cells[i], buf)
		}
		spans = append(spans, span{id, off, len(buf) - base - off})
	}
	u32 := func(get func(*Cell) uint32) func(*Cell, []byte) []byte {
		return func(c *Cell, b []byte) []byte { return binary.LittleEndian.AppendUint32(b, get(c)) }
	}
	u64 := func(get func(*Cell) uint64) func(*Cell, []byte) []byte {
		return func(c *Cell, b []byte) []byte { return binary.LittleEndian.AppendUint64(b, get(c)) }
	}
	f64 := func(get func(*Cell) float64) func(*Cell, []byte) []byte {
		return func(c *Cell, b []byte) []byte {
			return binary.LittleEndian.AppendUint64(b, math.Float64bits(get(c)))
		}
	}
	emit(colSection, u32(func(c *Cell) uint32 { return c.Section }))
	emit(colColumn, u32(func(c *Cell) uint32 { return c.Column }))
	emit(colCycles, u64(func(c *Cell) uint64 { return c.Cycles }))
	emit(colLoads, u64(func(c *Cell) uint64 { return c.Loads }))
	emit(colStores, u64(func(c *Cell) uint64 { return c.Stores }))
	emit(colBusBytes, u64(func(c *Cell) uint64 { return c.BusBytes }))
	emit(colP50, u64(func(c *Cell) uint64 { return c.P50 }))
	emit(colP95, u64(func(c *Cell) uint64 { return c.P95 }))
	emit(colP99, u64(func(c *Cell) uint64 { return c.P99 }))
	emit(colL1, f64(func(c *Cell) float64 { return c.L1 }))
	emit(colL2, f64(func(c *Cell) float64 { return c.L2 }))
	emit(colMem, f64(func(c *Cell) float64 { return c.Mem }))
	emit(colAvgLoad, f64(func(c *Cell) float64 { return c.AvgLoad }))
	emit(colSpeedup, f64(func(c *Cell) float64 { return c.Speedup }))

	strOff := len(buf) - base
	buf = binary.AppendUvarint(buf, uint64(1+len(d.Sections)+len(d.Columns)))
	putStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	putStr(d.Title)
	for _, s := range d.Sections {
		putStr(s)
	}
	for _, s := range d.Columns {
		putStr(s)
	}
	strLen := len(buf) - base - strOff

	footerOff := len(buf) - base
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(d.Sections)))
	buf = binary.AppendUvarint(buf, uint64(len(d.Columns)))
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for _, s := range spans {
		buf = append(buf, s.id)
		buf = binary.AppendUvarint(buf, uint64(s.off))
		buf = binary.AppendUvarint(buf, uint64(s.len))
	}
	buf = binary.AppendUvarint(buf, uint64(strOff))
	buf = binary.AppendUvarint(buf, uint64(strLen))
	footerLen := len(buf) - base - footerOff

	sum := crc32.ChecksumIEEE(buf[base:]) // everything before the trailer
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerLen))
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	buf = append(buf, trailerTail...)
	return buf
}

// decoder walks a footer/string-table region with bounds-checked varint
// reads.
type decoder struct {
	b   []byte
	pos int
	end int
}

func (d *decoder) u() (uint64, error) {
	v, n := tracefile.Uvarint(d.b[:d.end], d.pos)
	if n <= 0 {
		return 0, fmt.Errorf("colres: truncated or oversized varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

// Decode parses blob into a Doc, validating the trailer, checksum,
// footer index, and every column and string bound. It never panics on
// malformed input (FuzzColumnarDecode pins that).
func Decode(blob []byte) (*Doc, error) {
	if len(blob) < len(magic)+trailerLen {
		return nil, fmt.Errorf("colres: blob too short (%d bytes)", len(blob))
	}
	if string(blob[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("colres: bad magic %q", blob[:len(magic)])
	}
	tr := blob[len(blob)-trailerLen:]
	if string(tr[12:]) != trailerTail {
		return nil, fmt.Errorf("colres: bad trailer magic %q", tr[12:])
	}
	footerOff := int(binary.LittleEndian.Uint32(tr[0:]))
	footerLen := int(binary.LittleEndian.Uint32(tr[4:]))
	footerEnd := len(blob) - trailerLen
	if footerOff < len(magic) || footerLen < 0 || footerOff+footerLen != footerEnd {
		return nil, fmt.Errorf("colres: footer [%d,+%d) does not abut the trailer at %d",
			footerOff, footerLen, footerEnd)
	}
	if got, want := crc32.ChecksumIEEE(blob[:footerEnd]), binary.LittleEndian.Uint32(tr[8:]); got != want {
		return nil, fmt.Errorf("colres: checksum mismatch (blob %08x, trailer %08x)", got, want)
	}

	f := &decoder{b: blob, pos: footerOff, end: footerEnd}
	cellCount, err := f.u()
	if err != nil {
		return nil, err
	}
	if cellCount > maxCells {
		return nil, fmt.Errorf("colres: implausible cell count %d", cellCount)
	}
	nSections, err := f.u()
	if err != nil {
		return nil, err
	}
	nColumns, err := f.u()
	if err != nil {
		return nil, err
	}
	colCount, err := f.u()
	if err != nil {
		return nil, err
	}
	if colCount != numColumnIDs {
		return nil, fmt.Errorf("colres: footer indexes %d columns, format has %d", colCount, numColumnIDs)
	}
	n := int(cellCount)
	var cols [numColumnIDs + 1][]byte
	for i := 0; i < int(colCount); i++ {
		if f.pos >= f.end {
			return nil, fmt.Errorf("colres: footer truncated in column index")
		}
		id := blob[f.pos]
		f.pos++
		off, err := f.u()
		if err != nil {
			return nil, err
		}
		length, err := f.u()
		if err != nil {
			return nil, err
		}
		if id < 1 || id > numColumnIDs {
			return nil, fmt.Errorf("colres: unknown column id %d", id)
		}
		if cols[id] != nil {
			return nil, fmt.Errorf("colres: duplicate column id %d", id)
		}
		if int(length) != n*colWidth(id) {
			return nil, fmt.Errorf("colres: column %d length %d != %d cells × %d bytes",
				id, length, n, colWidth(id))
		}
		// Subtraction form: off and length are unbounded uvarints, so
		// off+length can wrap past footerEnd and a sum check would pass.
		if off < uint64(len(magic)) || off > uint64(footerEnd) || length > uint64(footerEnd)-off {
			return nil, fmt.Errorf("colres: column %d span [%d,+%d) out of bounds", id, off, length)
		}
		cols[id] = blob[off : off+length]
	}
	strOff, err := f.u()
	if err != nil {
		return nil, err
	}
	strLen, err := f.u()
	if err != nil {
		return nil, err
	}
	if strOff < uint64(len(magic)) || strOff > uint64(footerEnd) || strLen > uint64(footerEnd)-strOff {
		return nil, fmt.Errorf("colres: string table [%d,+%d) out of bounds", strOff, strLen)
	}

	st := &decoder{b: blob, pos: int(strOff), end: int(strOff + strLen)}
	strCount, err := st.u()
	if err != nil {
		return nil, err
	}
	if strCount != 1+nSections+nColumns {
		return nil, fmt.Errorf("colres: string table holds %d entries, footer promises %d",
			strCount, 1+nSections+nColumns)
	}
	if strCount > strLen { // every entry costs at least its length byte
		return nil, fmt.Errorf("colres: %d string entries cannot fit %d table bytes", strCount, strLen)
	}
	strs := make([]string, 0, strCount)
	for i := uint64(0); i < strCount; i++ {
		l, err := st.u()
		if err != nil {
			return nil, err
		}
		if l > strLen || st.pos+int(l) > st.end {
			return nil, fmt.Errorf("colres: string %d overruns the table", i)
		}
		strs = append(strs, string(blob[st.pos:st.pos+int(l)]))
		st.pos += int(l)
	}

	d := &Doc{
		Title:    strs[0],
		Sections: strs[1 : 1+nSections],
		Columns:  strs[1+nSections:],
		Cells:    make([]Cell, n),
	}
	u32 := func(id byte, i int) uint32 { return binary.LittleEndian.Uint32(cols[id][i*4:]) }
	u64 := func(id byte, i int) uint64 { return binary.LittleEndian.Uint64(cols[id][i*8:]) }
	f64 := func(id byte, i int) float64 { return math.Float64frombits(u64(id, i)) }
	for i := range d.Cells {
		c := &d.Cells[i]
		c.Section, c.Column = u32(colSection, i), u32(colColumn, i)
		if c.Section >= uint32(nSections) || c.Column >= uint32(nColumns) {
			return nil, fmt.Errorf("colres: cell %d coordinates (%d,%d) outside %d×%d grid",
				i, c.Section, c.Column, nSections, nColumns)
		}
		c.Cycles = u64(colCycles, i)
		c.Loads = u64(colLoads, i)
		c.Stores = u64(colStores, i)
		c.BusBytes = u64(colBusBytes, i)
		c.P50 = u64(colP50, i)
		c.P95 = u64(colP95, i)
		c.P99 = u64(colP99, i)
		c.L1 = f64(colL1, i)
		c.L2 = f64(colL2, i)
		c.Mem = f64(colMem, i)
		c.AvgLoad = f64(colAvgLoad, i)
		c.Speedup = f64(colSpeedup, i)
	}
	return d, nil
}
