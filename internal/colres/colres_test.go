package colres

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testDoc is a representative two-section grid with every column
// exercised, including float values whose bit patterns must survive the
// round trip exactly.
func testDoc() *Doc {
	return &Doc{
		Title:    "Table 1: conjugate gradient",
		Sections: []string{"CG class S", "CG class W"},
		Columns:  []string{"none", "mc", "l1", "both"},
		Cells: []Cell{
			{Section: 0, Column: 0, Cycles: 123456, Loads: 1000, Stores: 400,
				BusBytes: 65536, P50: 1, P95: 80, P99: 100,
				L1: 0.75, L2: 0.0625, Mem: 0.1875, AvgLoad: 10.5, Speedup: 1},
			{Section: 0, Column: 1, Cycles: 98765, Loads: 1000, Stores: 400,
				BusBytes: 32768, P50: 1, P95: 60, P99: 90,
				L1: 0.8, L2: 0.05, Mem: 0.15, AvgLoad: 7.25, Speedup: 1.25},
			{Section: 1, Column: 2, Cycles: 42, Loads: 1, Stores: 0,
				BusBytes: 64, P50: 0, P95: 0, P99: 0,
				L1: 1, L2: 0, Mem: 0, AvgLoad: 1, Speedup: 2.9400000000000004},
			{Section: 1, Column: 3, Cycles: 1 << 40, Loads: 1 << 33, Stores: 1 << 20,
				BusBytes: 1 << 36, P50: 3, P95: 180, P99: 250,
				L1: 0.9375, L2: 0.03125, Mem: 0.03125, AvgLoad: 2.5, Speedup: 0.5},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := testDoc()
	blob := Encode(d)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip mutated the document\ngot:  %+v\nwant: %+v", got, d)
	}
}

// TestEncodeDeterministic: identical documents encode byte-identically
// (the archive keys blobs by spec hash and the manifest digests them).
func TestEncodeDeterministic(t *testing.T) {
	a, b := Encode(testDoc()), Encode(testDoc())
	if !bytes.Equal(a, b) {
		t.Error("same document encoded differently on consecutive calls")
	}
}

// TestAppendStandalone: blobs appended after arbitrary prefix bytes are
// still valid standalone blobs (offsets are blob-relative).
func TestAppendStandalone(t *testing.T) {
	prefix := []byte("some earlier bytes")
	buf := Append(append([]byte(nil), prefix...), testDoc())
	blob := buf[len(prefix):]
	if _, err := Decode(blob); err != nil {
		t.Errorf("appended blob does not decode standalone: %v", err)
	}
	if !bytes.Equal(blob, Encode(testDoc())) {
		t.Error("appended encoding differs from standalone encoding")
	}
}

// TestEmptyGridRoundTrip: a zero-cell document (no sections, no
// columns) is still a valid blob.
func TestEmptyGridRoundTrip(t *testing.T) {
	blob := Encode(&Doc{Title: "empty"})
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Title != "empty" || len(got.Sections) != 0 || len(got.Columns) != 0 || len(got.Cells) != 0 {
		t.Errorf("empty grid round trip: %+v", got)
	}
}

// TestDecodeTruncated: every proper prefix of a valid blob must fail to
// decode (and must not panic). This is the wire-level guarantee that a
// torn read or short download is always detected.
func TestDecodeTruncated(t *testing.T) {
	blob := Encode(testDoc())
	for i := 0; i < len(blob); i++ {
		if _, err := Decode(blob[:i]); err == nil {
			t.Fatalf("Decode accepted a %d/%d-byte prefix", i, len(blob))
		}
	}
}

// TestDecodeCorrupt covers targeted corruptions: each must be rejected
// with a descriptive error, and the checksum must catch any flip the
// structural checks cannot.
func TestDecodeCorrupt(t *testing.T) {
	base := Encode(testDoc())
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := []struct {
		name    string
		blob    []byte
		wantSub string
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"bad trailer magic", corrupt(func(b []byte) { b[len(b)-1] = '?' }), "trailer magic"},
		{"footer offset out of range", corrupt(func(b []byte) { b[len(b)-16] ^= 0x80 }), "abut"},
		{"footer length mismatch", corrupt(func(b []byte) { b[len(b)-12]++ }), "abut"},
		{"checksum mismatch", corrupt(func(b []byte) { b[len(magic)] ^= 0xFF }), "checksum"},
		{"corrupt trailer checksum", corrupt(func(b []byte) { b[len(b)-8] ^= 0x01 }), "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.blob)
			if err == nil {
				t.Fatal("corrupt blob decoded without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeRejectsForeignBytes: arbitrary non-blob inputs fail cleanly.
func TestDecodeRejectsForeignBytes(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("IMPCOL01"), []byte(strings.Repeat("z", 64)), bytes.Repeat([]byte{0}, 128)} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode accepted %d foreign bytes", len(b))
		}
	}
}

func TestRowChunkRoundTrip(t *testing.T) {
	r := Row{
		Label: "CG class S/mc", Cycles: 123456, Loads: 1000, Stores: 400,
		BusBytes: 65536, P50: 1, P95: 80, P99: 100,
		L1: 0.75, L2: 0.0625, Mem: math.Inf(1), AvgLoad: 10.5,
	}
	got, err := DecodeRow(EncodeRow(r))
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if got != r {
		t.Errorf("row chunk round trip mutated the row\ngot:  %+v\nwant: %+v", got, r)
	}
}

func TestRowChunkTruncated(t *testing.T) {
	chunk := EncodeRow(Row{Label: "x/y", Cycles: 9, AvgLoad: 1.5})
	for i := 0; i < len(chunk); i++ {
		if _, err := DecodeRow(chunk[:i]); err == nil {
			t.Fatalf("DecodeRow accepted a %d/%d-byte prefix", i, len(chunk))
		}
	}
	if _, err := DecodeRow(append(chunk, 0)); err == nil {
		t.Error("DecodeRow accepted trailing bytes")
	}
}
