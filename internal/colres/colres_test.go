package colres

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testDoc is a representative two-section grid with every column
// exercised, including float values whose bit patterns must survive the
// round trip exactly.
func testDoc() *Doc {
	return &Doc{
		Title:    "Table 1: conjugate gradient",
		Sections: []string{"CG class S", "CG class W"},
		Columns:  []string{"none", "mc", "l1", "both"},
		Cells: []Cell{
			{Section: 0, Column: 0, Cycles: 123456, Loads: 1000, Stores: 400,
				BusBytes: 65536, P50: 1, P95: 80, P99: 100,
				L1: 0.75, L2: 0.0625, Mem: 0.1875, AvgLoad: 10.5, Speedup: 1},
			{Section: 0, Column: 1, Cycles: 98765, Loads: 1000, Stores: 400,
				BusBytes: 32768, P50: 1, P95: 60, P99: 90,
				L1: 0.8, L2: 0.05, Mem: 0.15, AvgLoad: 7.25, Speedup: 1.25},
			{Section: 1, Column: 2, Cycles: 42, Loads: 1, Stores: 0,
				BusBytes: 64, P50: 0, P95: 0, P99: 0,
				L1: 1, L2: 0, Mem: 0, AvgLoad: 1, Speedup: 2.9400000000000004},
			{Section: 1, Column: 3, Cycles: 1 << 40, Loads: 1 << 33, Stores: 1 << 20,
				BusBytes: 1 << 36, P50: 3, P95: 180, P99: 250,
				L1: 0.9375, L2: 0.03125, Mem: 0.03125, AvgLoad: 2.5, Speedup: 0.5},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := testDoc()
	blob := Encode(d)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip mutated the document\ngot:  %+v\nwant: %+v", got, d)
	}
}

// TestEncodeDeterministic: identical documents encode byte-identically
// (the archive keys blobs by spec hash and the manifest digests them).
func TestEncodeDeterministic(t *testing.T) {
	a, b := Encode(testDoc()), Encode(testDoc())
	if !bytes.Equal(a, b) {
		t.Error("same document encoded differently on consecutive calls")
	}
}

// TestAppendStandalone: blobs appended after arbitrary prefix bytes are
// still valid standalone blobs (offsets are blob-relative).
func TestAppendStandalone(t *testing.T) {
	prefix := []byte("some earlier bytes")
	buf := Append(append([]byte(nil), prefix...), testDoc())
	blob := buf[len(prefix):]
	if _, err := Decode(blob); err != nil {
		t.Errorf("appended blob does not decode standalone: %v", err)
	}
	if !bytes.Equal(blob, Encode(testDoc())) {
		t.Error("appended encoding differs from standalone encoding")
	}
}

// TestEmptyGridRoundTrip: a zero-cell document (no sections, no
// columns) is still a valid blob.
func TestEmptyGridRoundTrip(t *testing.T) {
	blob := Encode(&Doc{Title: "empty"})
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Title != "empty" || len(got.Sections) != 0 || len(got.Columns) != 0 || len(got.Cells) != 0 {
		t.Errorf("empty grid round trip: %+v", got)
	}
}

// TestDecodeTruncated: every proper prefix of a valid blob must fail to
// decode (and must not panic). This is the wire-level guarantee that a
// torn read or short download is always detected.
func TestDecodeTruncated(t *testing.T) {
	blob := Encode(testDoc())
	for i := 0; i < len(blob); i++ {
		if _, err := Decode(blob[:i]); err == nil {
			t.Fatalf("Decode accepted a %d/%d-byte prefix", i, len(blob))
		}
	}
}

// TestDecodeCorrupt covers targeted corruptions: each must be rejected
// with a descriptive error, and the checksum must catch any flip the
// structural checks cannot.
func TestDecodeCorrupt(t *testing.T) {
	base := Encode(testDoc())
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := []struct {
		name    string
		blob    []byte
		wantSub string
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"bad trailer magic", corrupt(func(b []byte) { b[len(b)-1] = '?' }), "trailer magic"},
		{"footer offset out of range", corrupt(func(b []byte) { b[len(b)-16] ^= 0x80 }), "abut"},
		{"footer length mismatch", corrupt(func(b []byte) { b[len(b)-12]++ }), "abut"},
		{"checksum mismatch", corrupt(func(b []byte) { b[len(magic)] ^= 0xFF }), "checksum"},
		{"corrupt trailer checksum", corrupt(func(b []byte) { b[len(b)-8] ^= 0x01 }), "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.blob)
			if err == nil {
				t.Fatal("corrupt blob decoded without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// patchFooterField rebuilds a valid blob with the i-th uvarint field of
// its footer replaced by val, then fixes up the trailer (footer length
// and CRC) so the result passes every pre-footer check and the decoder
// actually reaches the patched field. Field numbering follows the
// footer layout: 0 cellCount, 1 nSections, 2 nColumns, 3 colCount,
// then per column its offset and length (column id bytes are not
// fields), then stringsOffset, stringsLength.
func patchFooterField(t testing.TB, blob []byte, field int, val uint64) []byte {
	t.Helper()
	footerEnd := len(blob) - trailerLen
	footerOff := int(binary.LittleEndian.Uint32(blob[footerEnd:]))
	f := blob[footerOff:footerEnd]

	type span struct{ start, n int }
	var fields []span
	pos := 0
	read := func() uint64 {
		v, n := binary.Uvarint(f[pos:])
		if n <= 0 {
			t.Fatalf("malformed footer varint at offset %d", pos)
		}
		fields = append(fields, span{pos, n})
		pos += n
		return v
	}
	read() // cellCount
	read() // nSections
	read() // nColumns
	colCount := read()
	for i := uint64(0); i < colCount; i++ {
		pos++  // column id byte
		read() // offset
		read() // length
	}
	read() // stringsOffset
	read() // stringsLength

	fs := fields[field]
	footer := append([]byte(nil), f[:fs.start]...)
	footer = binary.AppendUvarint(footer, val)
	footer = append(footer, f[fs.start+fs.n:]...)

	out := append([]byte(nil), blob[:footerOff]...)
	out = append(out, footer...)
	sum := crc32.ChecksumIEEE(out)
	out = binary.LittleEndian.AppendUint32(out, uint32(footerOff))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(footer)))
	out = binary.LittleEndian.AppendUint32(out, sum)
	return append(out, trailerTail...)
}

// TestDecodeOverflowingFooterSpans pins the subtraction-form bounds
// checks: a span offset near 2^64 wraps when added to its length, so a
// sum-form check passes and the column/string slicing panics. The CRC
// is fixed up so the footer parser actually runs — random fuzzing
// alone almost never gets past the checksum gate.
func TestDecodeOverflowingFooterSpans(t *testing.T) {
	base := Encode(testDoc())
	const (
		firstColOffField = 4                  // column 1's offset
		strOffField      = 4 + 2*numColumnIDs // stringsOffset
	)
	cases := []struct {
		name string
		blob []byte
	}{
		// Column 1 holds 4 cells × 4 bytes, so off+16 wraps to 0.
		{"column span wraps", patchFooterField(t, base, firstColOffField, math.MaxUint64-15)},
		// stringsOffset wraps past the blob and int(strOff) goes negative.
		{"string table wraps", patchFooterField(t, base, strOffField, math.MaxUint64-3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.blob)
			if err == nil {
				t.Fatal("Decode accepted a blob with a wrapping footer span")
			}
			if !strings.Contains(err.Error(), "out of bounds") {
				t.Errorf("error %q does not mention the span bounds", err)
			}
		})
	}
}

// TestDecodeRejectsForeignBytes: arbitrary non-blob inputs fail cleanly.
func TestDecodeRejectsForeignBytes(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("IMPCOL01"), []byte(strings.Repeat("z", 64)), bytes.Repeat([]byte{0}, 128)} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode accepted %d foreign bytes", len(b))
		}
	}
}

// TestRenderTextCoordinateKeyed: the text view places cells by their
// (Section, Column) coordinates, so a valid blob whose cells arrive in
// a different order renders byte-identically — Decode accepts any cell
// order, only the renderer assigns table positions.
func TestRenderTextCoordinateKeyed(t *testing.T) {
	d := testDoc()
	var want bytes.Buffer
	if err := RenderText(d, &want); err != nil {
		t.Fatal(err)
	}
	rev := *d
	rev.Cells = append([]Cell(nil), d.Cells...)
	for i, j := 0, len(rev.Cells)-1; i < j; i, j = i+1, j-1 {
		rev.Cells[i], rev.Cells[j] = rev.Cells[j], rev.Cells[i]
	}
	got, err := Decode(Encode(&rev)) // reordered cells are still a valid blob
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RenderText(got, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Errorf("reordered blob renders differently\n--- got ---\n%s--- want ---\n%s", out.String(), want.String())
	}
}

func TestRowChunkRoundTrip(t *testing.T) {
	r := Row{
		Label: "CG class S/mc", Cycles: 123456, Loads: 1000, Stores: 400,
		BusBytes: 65536, P50: 1, P95: 80, P99: 100,
		L1: 0.75, L2: 0.0625, Mem: math.Inf(1), AvgLoad: 10.5,
	}
	got, err := DecodeRow(EncodeRow(r))
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if got != r {
		t.Errorf("row chunk round trip mutated the row\ngot:  %+v\nwant: %+v", got, r)
	}
}

func TestRowChunkTruncated(t *testing.T) {
	chunk := EncodeRow(Row{Label: "x/y", Cycles: 9, AvgLoad: 1.5})
	for i := 0; i < len(chunk); i++ {
		if _, err := DecodeRow(chunk[:i]); err == nil {
			t.Fatalf("DecodeRow accepted a %d/%d-byte prefix", i, len(chunk))
		}
	}
	if _, err := DecodeRow(append(chunk, 0)); err == nil {
		t.Error("DecodeRow accepted trailing bytes")
	}
}
