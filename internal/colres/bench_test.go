package colres

import "testing"

// benchDoc is a full paper-scale grid (8 sections × 4 prefetch
// columns), the realistic upper end of what one job encodes.
func benchDoc() *Doc {
	d := &Doc{
		Title:   "bench grid",
		Columns: []string{"none", "mc", "l1", "both"},
	}
	for si := 0; si < 8; si++ {
		d.Sections = append(d.Sections, "section-"+string(rune('a'+si)))
		for ci := 0; ci < 4; ci++ {
			d.Cells = append(d.Cells, Cell{
				Section: uint32(si), Column: uint32(ci),
				Cycles: uint64(1000000 + si*1000 + ci), Loads: 123456, Stores: 54321,
				BusBytes: 1 << 20, P50: 1, P95: 80, P99: 120,
				L1: 0.9, L2: 0.05, Mem: 0.05, AvgLoad: 4.2,
				Speedup: 1 + float64(ci)*0.3,
			})
		}
	}
	return d
}

func BenchmarkColumnarEncode(b *testing.B) {
	d := benchDoc()
	blob := Encode(d)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	buf := make([]byte, 0, len(blob))
	for i := 0; i < b.N; i++ {
		buf = Append(buf[:0], d)
	}
}

func BenchmarkColumnarDecode(b *testing.B) {
	blob := Encode(benchDoc())
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
