// Views over a columnar Doc. These are the renderings the repo has
// always produced — Grid JSON for machines, the paper-style text table
// for humans — except they now read the one columnar schema instead of
// harness-internal structs, so a service can store only the blob and
// materialize whichever view a client asks for. Both byte formats are
// frozen: the JSON view is pinned by internal/harness's golden file,
// and the text view must stay diff-identical to the CLIs (serve-smoke
// compares them).
package colres

import (
	"encoding/json"
	"fmt"
	"io"

	"impulse/internal/stats"
)

// JSONCell is the machine-readable form of one table cell.
type JSONCell struct {
	Section  string  `json:"section"`
	Prefetch string  `json:"prefetch"`
	Cycles   uint64  `json:"cycles"`
	L1Ratio  float64 `json:"l1_hit_ratio"`
	L2Ratio  float64 `json:"l2_hit_ratio"`
	MemRatio float64 `json:"mem_hit_ratio"`
	AvgLoad  float64 `json:"avg_load_time"`
	P50Load  uint64  `json:"p50_load_time"`
	P95Load  uint64  `json:"p95_load_time"`
	P99Load  uint64  `json:"p99_load_time"`
	Speedup  float64 `json:"speedup"`
	Loads    uint64  `json:"loads"`
	Stores   uint64  `json:"stores"`
	BusBytes uint64  `json:"bus_bytes"`
}

// JSONGrid is the machine-readable form of a whole table.
type JSONGrid struct {
	Title string     `json:"title"`
	Cells []JSONCell `json:"cells"`
}

// WriteGridJSON renders the Grid JSON view: indented JSON for plotting
// pipelines and regression comparisons (RenderText is for humans).
func WriteGridJSON(d *Doc, w io.Writer) error {
	out := JSONGrid{Title: d.Title}
	for _, c := range d.Cells {
		out.Cells = append(out.Cells, JSONCell{
			Section:  d.Sections[c.Section],
			Prefetch: d.Columns[c.Column],
			Cycles:   c.Cycles,
			L1Ratio:  c.L1,
			L2Ratio:  c.L2,
			MemRatio: c.Mem,
			AvgLoad:  c.AvgLoad,
			P50Load:  c.P50,
			P95Load:  c.P95,
			P99Load:  c.P99,
			Speedup:  c.Speedup,
			Loads:    c.Loads,
			Stores:   c.Stores,
			BusBytes: c.BusBytes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderText renders the paper-layout text table view. Cells are placed
// by their (Section, Column) coordinates, not encounter order: Decode
// accepts blobs with cells in any order and any per-section count, so
// positional placement would print values under the wrong prefetch
// headers for an externally produced blob. A coordinate with no cell
// renders blank; of duplicate coordinates the first wins.
func RenderText(d *Doc, w io.Writer) error {
	t := stats.NewTable(d.Title, d.Columns...)
	for si, name := range d.Sections {
		t.Section(name)
		cells := make([]*Cell, len(d.Columns))
		for i := range d.Cells {
			c := &d.Cells[i]
			if c.Section == uint32(si) && int(c.Column) < len(cells) && cells[c.Column] == nil {
				cells[c.Column] = c
			}
		}
		times := make([]interface{}, len(cells))
		l1 := make([]interface{}, len(cells))
		l2 := make([]interface{}, len(cells))
		mem := make([]interface{}, len(cells))
		avg := make([]interface{}, len(cells))
		pct := make([]interface{}, len(cells))
		sp := make([]interface{}, len(cells))
		for ci, c := range cells {
			if c == nil {
				for _, row := range [][]interface{}{times, l1, l2, mem, avg, pct, sp} {
					row[ci] = ""
				}
				continue
			}
			times[ci] = stats.FormatCycles(c.Cycles)
			l1[ci] = stats.FormatPercent(c.L1)
			l2[ci] = stats.FormatPercent(c.L2)
			mem[ci] = stats.FormatPercent(c.Mem)
			avg[ci] = c.AvgLoad
			pct[ci] = stats.FormatPercentiles(c.P50, c.P95, c.P99)
			if c.Section == 0 && c.Column == 0 {
				sp[ci] = "—" // the grid's baseline cell has nothing to speed up
			} else {
				sp[ci] = fmt.Sprintf("%.2f", c.Speedup)
			}
		}
		t.AddRow("        Time", times...)
		t.AddRow("  L1 hit ratio", l1...)
		t.AddRow("  L2 hit ratio", l2...)
		t.AddRow(" mem hit ratio", mem...)
		t.AddRow(" avg load time", avg...)
		t.AddRow("p50/95/99 load", pct...)
		t.AddRow("       speedup", sp...)
	}
	_, err := io.WriteString(w, t.Render())
	return err
}
