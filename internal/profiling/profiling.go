// Package profiling implements the -cpuprofile/-memprofile flags shared
// by the command-line tools. The daemon exposes the same profiles over
// HTTP instead (see /debug/pprof/ in internal/service); docs/PERF.md
// describes the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (if non-empty). Call stop on the successful exit path; error paths that
// os.Exit lose the profile, which is fine — profiles are for runs that
// complete.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
