package sim

import (
	"impulse/internal/obs"
	"impulse/internal/timeline"
)

// AttachObs threads an observability hub through every component of the
// machine: trace tracks for the CPU's memory pipeline, the L2 port, the
// bus, the controller, and each DRAM bank; windowed series metrics for
// bus/DRAM occupancy and per-level load classification; and registry
// entries for every MemStats counter plus the shared resources'
// accounting. Attaching is observation only — it never changes a
// simulated cycle (see TestObsDoesNotPerturbTiming).
func (m *Machine) AttachObs(h *obs.Hub) {
	m.obs = h
	m.cpuTrack = h.Track("cpu")
	m.Bus.AttachObs(h)
	m.MC.AttachObs(h)
	m.DRAM.AttachObs(h)

	l2t := h.Track("l2port")
	m.l2port.Observe(func(start, end timeline.Time) {
		h.Span(l2t, "l2", start, end)
	})

	r := h.Reg()
	r.Gauge("machine.cycles", func() uint64 { return m.clock })
	r.Gauge("l2port.busy_cycles", m.l2port.BusyCycles)
	r.Gauge("l2port.reservations", m.l2port.Uses)
	m.St.Register(r, "stats.")
}

// obsLoad records one load's series classification and, for loads that
// left the CPU, a span covering its full latency. Called after finishLoad
// has advanced the clock.
func (m *Machine) obsLoad(start timeline.Time, lvl TraceLevel) {
	h := m.obs
	switch lvl {
	case LevelL1:
		h.Event(obs.L1Hit, start)
	case LevelL2:
		h.Event(obs.L1Miss, start)
		h.Event(obs.L2Hit, start)
		h.Span(m.cpuTrack, "load L2", start, m.clock)
	case LevelMem:
		h.Event(obs.L1Miss, start)
		h.Event(obs.L2Miss, start)
		h.Span(m.cpuTrack, "load mem", start, m.clock)
	}
}
