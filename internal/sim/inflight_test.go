package sim

import (
	"math/rand"
	"testing"

	"impulse/internal/timeline"
)

// TestInflightTableVsMap drives the open-addressed table and a plain map
// through the same randomized put/get/del sequence (keys line-aligned,
// like the real caller) and checks they agree at every step.
func TestInflightTableVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tab inflightTable
	tab.init()
	ref := map[uint64]timeline.Time{}
	keys := make([]uint64, 0, 4096)

	for op := 0; op < 200000; op++ {
		switch rng.Intn(3) {
		case 0: // put (possibly overwriting)
			k := uint64(rng.Intn(1<<14)) << 5 // line-aligned, collision-rich
			v := timeline.Time(rng.Uint64())
			tab.put(k, v)
			if _, ok := ref[k]; !ok {
				keys = append(keys, k)
			}
			ref[k] = v
		case 1: // get (mix of present and absent keys)
			k := uint64(rng.Intn(1<<14)) << 5
			if rng.Intn(2) == 0 && len(keys) > 0 {
				k = keys[rng.Intn(len(keys))]
			}
			gv, gok := tab.get(k)
			wv, wok := ref[k]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: get(%#x) = %v,%v want %v,%v", op, k, gv, gok, wv, wok)
			}
		case 2: // del (mix of present and absent keys)
			k := uint64(rng.Intn(1<<14)) << 5
			if rng.Intn(2) == 0 && len(keys) > 0 {
				i := rng.Intn(len(keys))
				k = keys[i]
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
			}
			tab.del(k)
			delete(ref, k)
		}
		if tab.n != len(ref) {
			t.Fatalf("op %d: size %d != %d", op, tab.n, len(ref))
		}
	}

	// Full sweep: everything the map holds must be in the table.
	for k, v := range ref {
		if gv, ok := tab.get(k); !ok || gv != v {
			t.Fatalf("final: get(%#x) = %v,%v want %v,true", k, gv, ok, v)
		}
	}
	tab.reset()
	if tab.n != 0 {
		t.Fatalf("reset left n=%d", tab.n)
	}
	for k := range ref {
		if _, ok := tab.get(k); ok {
			t.Fatalf("reset left key %#x", k)
		}
	}
}
