package sim

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/timeline"
)

// TraceKind classifies a trace event.
type TraceKind int

const (
	// TraceLoad is a completed CPU load.
	TraceLoad TraceKind = iota
	// TraceStore is a completed CPU store.
	TraceStore
	// TraceFlush is a cache-maintenance operation on one line.
	TraceFlush
)

func (k TraceKind) String() string {
	switch k {
	case TraceLoad:
		return "load"
	case TraceStore:
		return "store"
	case TraceFlush:
		return "flush"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceLevel identifies where a load was served.
type TraceLevel int

const (
	// LevelNone applies to non-load events.
	LevelNone TraceLevel = iota
	// LevelL1 is an L1 hit.
	LevelL1
	// LevelL2 is an L2 hit.
	LevelL2
	// LevelMem is a memory-system access.
	LevelMem
)

func (l TraceLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	default:
		return "-"
	}
}

// TraceEvent is one simulated memory event.
type TraceEvent struct {
	Cycle   timeline.Time
	Kind    TraceKind
	Level   TraceLevel
	VAddr   addr.VAddr
	PAddr   addr.PAddr
	Size    uint64
	Latency uint64 // load events: issue-to-data cycles
	Shadow  bool   // PAddr is a shadow address
}

func (e TraceEvent) String() string {
	shadow := ""
	if e.Shadow {
		shadow = " shadow"
	}
	switch e.Kind {
	case TraceLoad:
		return fmt.Sprintf("@%d load  %v -> %v [%v, %d cycles]%s", e.Cycle, e.VAddr, e.PAddr, e.Level, e.Latency, shadow)
	case TraceStore:
		return fmt.Sprintf("@%d store %v -> %v%s", e.Cycle, e.VAddr, e.PAddr, shadow)
	default:
		return fmt.Sprintf("@%d %v %v -> %v%s", e.Cycle, e.Kind, e.VAddr, e.PAddr, shadow)
	}
}

// Tracer receives simulated memory events. Tracing is off (nil) by
// default; the hook costs nothing when unset.
type Tracer func(TraceEvent)

// SetTracer installs (or clears, with nil) the machine's event tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

func (m *Machine) trace(e TraceEvent) {
	if m.tracer != nil {
		m.tracer(e)
	}
}
