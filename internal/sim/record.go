package sim

import "impulse/internal/addr"

// CmdRecorder receives the machine-command stream a run issues: every
// public operation that can affect timing or machine state, in issue
// order. A recorder attached while a workload executes captures enough
// to replay the run cycle-identically on a fresh machine with different
// timing parameters (see internal/tracefile).
//
// Recorder callbacks fire before the operation executes, so a recorder
// observes the same order a replay will reissue.
type CmdRecorder interface {
	RecLoad(v addr.VAddr, size uint64)
	RecStore(v addr.VAddr, size uint64)
	RecTick(n uint64)
	RecFlushVRange(v addr.VAddr, bytes uint64)
	RecPurgeVRange(v addr.VAddr, bytes uint64)
	RecInstallBlockTLB(v addr.VAddr, p addr.PAddr, bytes uint64)
	RecClearBlockTLB()
	RecFlushTLB()
	RecFlushTLBPage(v addr.VAddr)
	RecResetCachesUntimed()
	RecFlushAllCaches()
}

// SetCommandRecorder attaches (or detaches, with nil) a command-stream
// recorder. Recording adds one nil check per operation when detached.
func (m *Machine) SetCommandRecorder(r CmdRecorder) { m.rec = r }

// SetFunctional toggles functional data movement. With it off, loads
// return zero and stores discard their value while all timing behaviour
// (translation, caches, bus, DRAM, controller) is still charged. Trace
// replay uses this to skip readValue/writeValue: the reference stream
// already encodes every address, and data values never feed back into
// timing except through the controller's indirection vectors, which the
// trace's memory-image section restores separately.
func (m *Machine) SetFunctional(on bool) { m.functional = on }
