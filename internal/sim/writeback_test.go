package sim

import (
	"testing"

	"impulse/internal/addr"
	"impulse/internal/mc"
)

// The write-back paths: dirty L1 victims move to L2; dirty L2 victims
// move to memory; flushes scatter dirty shadow lines through the
// controller. These are the paths a tag-only cache model can silently
// get wrong, so each is pinned down by an explicit scenario.

func TestL1DirtyVictimReachesL2(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 64<<10)
	l1 := m.Config().L1.Bytes
	m.Load64(va)                  // bring line into L1 (and L2)
	m.StoreF64(va, 5.0)           // dirty in L1
	m.Load64(va + addr.VAddr(l1)) // evict it (same L1 set, different line)
	if m.St.L1Writebacks != 1 {
		t.Fatalf("L1Writebacks = %d, want 1", m.St.L1Writebacks)
	}
	// The victim's line was L2-resident: the writeback must not touch
	// the bus (it moves L1 -> L2 on-chip).
	if m.St.DRAMWrites != 0 {
		t.Errorf("L1 victim wrote DRAM: %d writes", m.St.DRAMWrites)
	}
}

func TestL1DirtyVictimWithoutL2Copy(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 1<<20)
	l1 := m.Config().L1.Bytes
	m.Load64(va)
	m.StoreF64(va, 5.0) // dirty in L1
	// Evict the line from L2 first (2-way set: load two conflicting
	// lines at L2-set stride), then evict from L1 and watch it go to
	// memory via the bus.
	l2SetStride := addr.VAddr(m.Config().L2.Bytes / m.Config().L2.Ways)
	m.Load64(va + l2SetStride)
	m.Load64(va + 2*l2SetStride)
	busBefore := m.St.BusBytes
	m.Load64(va + addr.VAddr(l1)) // evicts dirty L1 line, L2 no longer has it
	if m.St.L1Writebacks == 0 {
		t.Fatal("no L1 writeback recorded")
	}
	if m.St.BusBytes == busBefore {
		t.Error("orphaned dirty L1 victim produced no bus traffic")
	}
}

func TestL2DirtyWritebackToDRAM(t *testing.T) {
	m := testMachine(t)
	// The L2 is physically indexed: force a set conflict by allocating
	// three pages of the same color and touching the same page offset.
	pages := make([]addr.VAddr, 3)
	for i := range pages {
		va, err := m.K.AllocAndMapColored(addr.PageSize, 0, 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = va
	}
	m.StoreF64(pages[0], 9.0) // write-allocate into L2, dirty
	writes := m.St.DRAMWrites
	m.Load64(pages[1]) // way 2 of the same set
	m.Load64(pages[2]) // evicts the dirty line
	if m.St.L2Writebacks == 0 {
		t.Fatal("no L2 writeback recorded")
	}
	if m.St.DRAMWrites == writes {
		t.Error("dirty L2 victim never reached DRAM")
	}
}

func TestFlushAllCachesWritesBack(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.StoreF64(va, 1.0)
	m.Load64(va)
	m.FlushAllCaches()
	if m.L1.ValidLines() != 0 || m.L2.ValidLines() != 0 {
		t.Fatal("caches not empty after FlushAllCaches")
	}
	if m.St.FlushedLines == 0 {
		t.Error("flush accounting empty")
	}
	// Everything misses afterwards.
	mem := m.St.MemLoads
	m.Load64(va)
	if m.St.MemLoads != mem+1 {
		t.Error("post-flush load did not go to memory")
	}
}

func TestBlockTLBTranslation(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 8*addr.PageSize)
	p, _ := m.K.Translate(va)
	// Install a block entry covering the first page only; accesses under
	// it must not touch the page TLB.
	m.InstallBlockTLB(va, p, addr.PageSize)
	misses := m.St.TLBMisses
	m.Load64(va + 8)
	if m.St.TLBMisses != misses {
		t.Error("block-TLB access missed the TLB")
	}
	m.Load64(va + addr.PageSize) // outside the block entry
	if m.St.TLBMisses != misses+1 {
		t.Error("non-block access did not use the page TLB")
	}
	m.ClearBlockTLB()
	m.FlushTLB()
	m.Load64(va + 16)
	if m.St.TLBMisses != misses+2 {
		t.Error("ClearBlockTLB had no effect")
	}
}

func TestInflightPrefetchPartialHit(t *testing.T) {
	m := testMachine(t)
	m.SetL1Prefetch(true)
	va := alloc(t, m, 4096)
	m.Load64(va) // miss; prefetches next line with a future arrival time
	if m.St.L1Prefetches == 0 {
		t.Fatal("no prefetch launched")
	}
	// Immediately touch the prefetched line: it is L1-resident but the
	// data may still be in flight; the load must not be a full miss.
	l1Hits := m.St.L1LoadHits
	m.Load64(va + addr.VAddr(m.Config().L1.LineBytes))
	if m.St.L1LoadHits != l1Hits+1 {
		t.Error("prefetched line not an L1 hit")
	}
	if m.St.L1PrefetchHits != 1 {
		t.Errorf("L1PrefetchHits = %d", m.St.L1PrefetchHits)
	}
}

func TestStoreToShadowScattersOnFlush(t *testing.T) {
	// Covered at the core level for aliases; here pin the sim mechanics:
	// a dirty line whose address is shadow must go through the
	// controller's scatter path on flush.
	m := testMachine(t)
	// Set up a trivial direct-mapped shadow page by hand.
	sh, err := m.K.ShadowAlloc(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]uint64, 1)
	if frames[0], err = m.K.AllocFrame(); err != nil {
		t.Fatal(err)
	}
	va, _ := m.K.AllocVirtual(addr.PageSize, 0)
	if err := m.K.MapShadowPage(va.PageNum(), sh); err != nil {
		t.Fatal(err)
	}
	// Identity descriptor over the page.
	if err := installDirectDescriptor(m, sh, frames[0]); err != nil {
		t.Fatal(err)
	}
	m.StoreF64(va, 7.5) // dirty shadow line (allocated in L2)
	writes := m.St.DRAMWrites
	m.FlushVRange(va, 64)
	if m.St.DRAMWrites == writes {
		t.Error("shadow flush produced no DRAM writes")
	}
	// And the value survives in the backing frame.
	if got := m.Mem.LoadFloat64(addr.PAddr(frames[0] << addr.PageShift)); got != 7.5 {
		t.Errorf("backing frame holds %v", got)
	}
}

// installDirectDescriptor wires a one-page direct mapping at the
// controller for tests.
func installDirectDescriptor(m *Machine, sh addr.PAddr, frame uint64) error {
	d := directDescriptor(sh)
	slot, err := m.MC.FreeSlot()
	if err != nil {
		return err
	}
	if err := m.MC.SetDescriptor(slot, d); err != nil {
		return err
	}
	m.MC.MapPV(d.PVBase.PageNum(), frame)
	return nil
}

// directDescriptor builds a one-page identity descriptor.
func directDescriptor(sh addr.PAddr) mc.Descriptor {
	return mc.Descriptor{Kind: mc.Direct, ShadowBase: sh, Bytes: addr.PageSize, PVBase: 0x9_0000_0000}
}
