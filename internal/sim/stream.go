package sim

import (
	"math"

	"impulse/internal/addr"
)

// Batched stream accessors for unit-stride loops. Each issues exactly the
// same per-element access sequence the equivalent Go loop would — same
// recorder commands, same counters, same cycles — so adopting them never
// changes simulation results or trace v2 bytes. Their benefit is on the
// host side: the per-element closure/interface overhead of a workload
// loop collapses into one call, and the accesses run back-to-back through
// the MRU fast path (fastpath.go), which unit-stride streams hit on every
// element after the first per line.

// StoreStreamI32 stores vals[i] at base + 4*i, as Store32 would.
func (m *Machine) StoreStreamI32(base addr.VAddr, vals []int32) {
	for i, v := range vals {
		m.store(base+addr.VAddr(4*i), 4, uint64(uint32(v)))
	}
}

// StoreStreamU32 stores vals[i] at base + 4*i.
func (m *Machine) StoreStreamU32(base addr.VAddr, vals []uint32) {
	for i, v := range vals {
		m.store(base+addr.VAddr(4*i), 4, uint64(v))
	}
}

// StoreStreamF64 stores vals[i] at base + 8*i.
func (m *Machine) StoreStreamF64(base addr.VAddr, vals []float64) {
	for i, v := range vals {
		m.store(base+addr.VAddr(8*i), 8, math.Float64bits(v))
	}
}

// FillStreamF64 stores val at base + 8*i for i in [0, count).
func (m *Machine) FillStreamF64(base addr.VAddr, val float64, count uint64) {
	bits := math.Float64bits(val)
	for i := uint64(0); i < count; i++ {
		m.store(base+addr.VAddr(8*i), 8, bits)
	}
}

// StoreStreamF64Gen stores gen(i) at base + 8*i for i in [0, count) —
// computed fill patterns without materializing a host-side slice.
func (m *Machine) StoreStreamF64Gen(base addr.VAddr, count uint64, gen func(i uint64) float64) {
	for i := uint64(0); i < count; i++ {
		m.store(base+addr.VAddr(8*i), 8, math.Float64bits(gen(i)))
	}
}

// LoadStreamF64 loads base + 8*i for i in [0, count), passing each value
// to fn — checksum and reduction loops without per-element call sites.
func (m *Machine) LoadStreamF64(base addr.VAddr, count uint64, fn func(i uint64, v float64)) {
	for i := uint64(0); i < count; i++ {
		fn(i, math.Float64frombits(m.load(base+addr.VAddr(8*i), 8)))
	}
}
