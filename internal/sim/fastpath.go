// The access fast path: a direct-mapped cache of recently-hit L1 lines
// that lets a repeat access to the same resident line skip the block-TLB
// scan, the TLB lookup, and the set-associative L1 probe entirely.
// Unit-stride loops touch the same 32-byte L1 line 4-8 times in a row,
// so this is where most simulated accesses go. The table is sized at 4x
// the L1 line count (next power of two), large enough to remember every
// resident line with rare conflict evictions, so interleaved streams —
// the CG inner loops run three-plus at once — all stay fast.
//
// The fast path is cycle- and counter-identical to the reference path by
// construction, which rests on three invariants:
//
//  1. Translation stability. An entry caches a (virtual line -> bus
//     line) translation, valid only while the reference translate() would
//     return the same answer without observable side effects. While an
//     entry was populated, its page translation sat in the TLB (or a block
//     entry) with its referenced bit set, so a reference translate would
//     be a state-free hit. Anything that can change that — a TLB miss
//     inserting a new entry (NRU eviction, ref-bit sweep), a TLB flush,
//     block-TLB install/clear, an untimed cache reset — invalidates every
//     entry (fastInvalidateAll). Invalidation is by generation: an entry
//     is live only while its stamp equals fastVecGen, so invalidating is
//     one increment instead of a table scan (remap-heavy runs invalidate
//     thousands of times); only at the (never in practice) 2^32 wrap,
//     where stale stamps could collide, does a real scan clear the table.
//     Entries are only populated when the translation is offset-preserving
//     across the whole L1 line (never across a block-entry boundary), so
//     one cached base serves every element in the line.
//
//  2. Residency re-validation. Instead of hooking every L1 insert, evict,
//     and flush, each fast access re-checks its remembered L1 slot: the
//     slot must still be valid, hold the same physical line, and not be a
//     prefetched copy (cache.FastTouch/FastDirty). A line that was
//     evicted, refilled elsewhere, or re-entered via prefetch fails the
//     check and falls back to the reference path — which *is* the
//     reference behaviour for those cases (the prefetch-hit branch has
//     extra observable effects: L1PrefetchHits, inflight stalls, chained
//     prefetch).
//
//  3. Effect replication. A committed fast access performs exactly the
//     observable work of the reference L1-hit path, in an order that only
//     permutes independent effects: recorder callback and Loads/Stores
//     counters (done by the caller before dispatch), functional data
//     movement, the L1 LRU touch, hit counters, latency accounting and
//     clock advance, trace and observability events.
//
// Shadow (remapped) lines never enter the table during execution: they
// keep the full reference path, including controller-buffer
// interactions, because the commit paths here read memory directly and
// would skip the controller's gather resolution. Vector replay runs with
// functional data movement off — no path reads memory at all — so it
// widens eligibility to shadow lines for the duration (Machine.fastShadow,
// see replayvec.go).
//
// Config.DisableFastPath forces every access through the reference path;
// the differential tests compare the two end to end. Because a fall from
// the fast path is exactly the reference path, any conflict eviction or
// generation kill only changes host speed, never a simulated result.
package sim

import "impulse/internal/addr"

// fastPageWays is the page-translation memo capacity (see the memo's
// field comment in machine.go).
const fastPageWays = 4

// fastInvalid is the vline sentinel for an empty fast-path entry (no
// real virtual line is all-ones).
const fastInvalid = ^uint64(0)

// fastEntry caches one line-hit: the virtual line identity, its bus-line
// base, where in the L1 the line sat (slot plus physical-line tag for
// re-validation), and the generation stamp it is live under.
type fastEntry struct {
	vline uint64 // line-aligned virtual address (identity; fastInvalid = empty)
	pbase uint64 // line-aligned bus address vline translates to
	la    uint64 // L1 physical line number of pbase (slot re-validation tag)
	slot  int32  // global L1 slot index the line occupied when cached
	gen   uint32 // liveness stamp; dead unless equal to fastVecGen
}

// fastInvalidateAll kills every fast-path entry and the page-translation
// memo. Called whenever translation state may have changed (see
// invariant 1 above).
func (m *Machine) fastInvalidateAll() {
	m.fastVecGen++
	if m.fastVecGen == 0 {
		for i := range m.fastVec {
			m.fastVec[i].vline = fastInvalid
		}
	}
	for i := range m.fastPages {
		m.fastPages[i] = fastInvalid
	}
}

// fastPopulate remembers a line-hit for the fast path. slot is the L1
// slot the line occupies (-1 = unknown, skip). Population is the only
// place the entry invariants are established; the per-access checks in
// fastLoad/fastStore only re-validate residency.
func (m *Machine) fastPopulate(v addr.VAddr, p addr.PAddr, slot int) {
	if !m.fastOn || slot < 0 {
		return
	}
	off := uint64(v) & m.l1LineMask
	if off != uint64(p)&m.l1LineMask {
		return // translation does not preserve line offsets: one base cannot serve the line
	}
	if !m.fastShadow && m.MC.IsShadow(p) {
		// Shadow lines keep the full reference path: a committed fast
		// access reads memory directly, which is only equivalent for
		// them while functional data movement is off (vector replay
		// sets fastShadow for exactly that window).
		return
	}
	vline := uint64(v) - off
	vhi := vline + m.cfg.L1.LineBytes
	for i := range m.blockTLB {
		b := &m.blockTLB[i]
		if vline < b.vhi && vhi > b.vlo { // line overlaps this block entry
			if vline < b.vlo || vhi > b.vhi {
				return // straddles the entry boundary: translation not linear across the line
			}
			break // fully inside the first matching entry: linear, and first-match stable
		}
	}
	m.fastVec[(vline>>m.fastVecShift)&m.fastVecMask] = fastEntry{
		vline: vline,
		pbase: uint64(p) - off,
		la:    m.L1.LineAddr(uint64(p)),
		slot:  int32(slot),
		gen:   m.fastVecGen,
	}
}

// fastLoad attempts the load fast path. On a committed hit it performs
// the complete observable effect of the reference L1-hit path and
// reports (value, true); otherwise it reports false having touched
// nothing, and the caller runs the reference path.
func (m *Machine) fastLoad(v addr.VAddr, size uint64) (uint64, bool) {
	if !m.fastOn {
		return 0, false
	}
	vline := uint64(v) &^ m.l1LineMask
	e := &m.fastVec[(vline>>m.fastVecShift)&m.fastVecMask]
	if e.vline != vline || e.gen != m.fastVecGen {
		return 0, false
	}
	if !m.L1.FastTouch(int(e.slot), e.la) {
		e.vline = fastInvalid
		return 0, false
	}
	start := m.clock
	p := addr.PAddr(e.pbase | (uint64(v) & m.l1LineMask))
	var value uint64
	if m.functional {
		// Populate rejects shadow lines during execution, so this is
		// readValue minus the shadow dispatch.
		if size == 8 {
			value = m.Mem.Load64(p)
		} else {
			value = uint64(m.Mem.Load32(p))
		}
	}
	m.St.L1LoadHits++
	m.finishLoad(start, start+m.cfg.L1.HitCycles)
	if m.tracer != nil {
		m.traceLoad(v, p, size, start, LevelL1)
	}
	if m.obs != nil {
		m.obsLoad(start, LevelL1)
	}
	return value, true
}

// fastStore attempts the store fast path (the L1 MarkDirty-hit branch of
// the reference store). Reports whether it committed.
func (m *Machine) fastStore(v addr.VAddr, size, val uint64) bool {
	if !m.fastOn {
		return false
	}
	vline := uint64(v) &^ m.l1LineMask
	e := &m.fastVec[(vline>>m.fastVecShift)&m.fastVecMask]
	if e.vline != vline || e.gen != m.fastVecGen {
		return false
	}
	if !m.L1.FastDirty(int(e.slot), e.la) {
		e.vline = fastInvalid
		return false
	}
	start := m.clock
	p := addr.PAddr(e.pbase | (uint64(v) & m.l1LineMask))
	if m.functional {
		// Non-shadow by the populate guard: writeValue minus dispatch.
		if size == 8 {
			m.Mem.Store64(p, val)
		} else {
			m.Mem.Store32(p, uint32(val))
		}
	}
	m.St.L1StoreHits++
	m.St.Instructions++
	done := m.clock + 1
	if lim := m.cfg.StoreBacklogCycles; lim > 0 {
		if bu := m.Bus.BusyUntil(); bu > done+lim {
			done = bu - lim
		}
	}
	m.St.StoreCycles += done - start
	m.clock = done
	if m.tracer != nil {
		// Shadow is false by the populate guard.
		m.trace(TraceEvent{Cycle: start, Kind: TraceStore, VAddr: v, PAddr: p, Size: size})
	}
	return true
}
