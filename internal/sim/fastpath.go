// The access fast path: a small MRU cache of recently-hit L1 lines that
// lets a repeat access to the same resident line skip the block-TLB scan,
// the TLB lookup, and the set-associative L1 probe entirely. Unit-stride
// loops touch the same 32-byte L1 line 4-8 times in a row, so this is
// where most simulated accesses go.
//
// The fast path is cycle- and counter-identical to the reference path by
// construction, which rests on three invariants:
//
//  1. Translation stability. An MRU entry caches a (virtual line -> bus
//     line) translation, valid only while the reference translate() would
//     return the same answer without observable side effects. While an
//     entry was populated, its page translation sat in the TLB (or a block
//     entry) with its referenced bit set, so a reference translate would
//     be a state-free hit. Anything that can change that — a TLB miss
//     inserting a new entry (NRU eviction, ref-bit sweep), a TLB flush,
//     block-TLB install/clear, an untimed cache reset — invalidates every
//     MRU entry (fastInvalidateAll). Entries are only populated when the
//     translation is offset-preserving across the whole L1 line (never
//     across a block-entry boundary), so one cached base serves every
//     element in the line.
//
//  2. Residency re-validation. Instead of hooking every L1 insert, evict,
//     and flush, each fast access re-checks its remembered L1 slot: the
//     slot must still be valid, hold the same physical line, and not be a
//     prefetched copy (cache.FastTouch/FastDirty). A line that was
//     evicted, refilled elsewhere, or re-entered via prefetch fails the
//     check and falls back to the reference path — which *is* the
//     reference behaviour for those cases (the prefetch-hit branch has
//     extra observable effects: L1PrefetchHits, inflight stalls, chained
//     prefetch).
//
//  3. Effect replication. A committed fast access performs exactly the
//     observable work of the reference L1-hit path, in an order that only
//     permutes independent effects: recorder callback and Loads/Stores
//     counters (done by the caller before dispatch), functional data
//     movement, the L1 LRU touch, hit counters, latency accounting and
//     clock advance, trace and observability events.
//
// Shadow (remapped) lines never enter the MRU: they keep the full
// reference path, including controller-buffer interactions.
//
// Config.DisableFastPath forces every access through the reference path;
// the differential tests compare the two end to end.
package sim

import "impulse/internal/addr"

// fastWays is the MRU capacity. The widest inner loops in the workload
// suite interleave three unit-stride streams plus an irregular one; four
// entries cover them with FIFO replacement.
const fastWays = 4

// fastInvalid is the vline sentinel for an empty MRU entry (no real
// virtual line is all-ones).
const fastInvalid = ^uint64(0)

// fastEntry caches one line-hit: the virtual line identity, its bus-line
// base, and where in the L1 the line sat (slot plus physical-line tag for
// re-validation).
type fastEntry struct {
	vline uint64 // line-aligned virtual address (identity; fastInvalid = empty)
	pbase uint64 // line-aligned bus address vline translates to
	la    uint64 // L1 physical line number of pbase (slot re-validation tag)
	slot  int32  // global L1 slot index the line occupied when cached
}

// fastInvalidateAll empties the MRU and the page-translation memo.
// Called whenever translation state may have changed (see invariant 1
// above).
func (m *Machine) fastInvalidateAll() {
	for i := range m.fast {
		m.fast[i].vline = fastInvalid
	}
	m.fastPageOK = false
}

// fastPopulate remembers a line-hit for the fast path. slot is the L1
// slot the line occupies (-1 = unknown, skip). Population is the only
// place the entry invariants are established; the per-access checks in
// fastLoad/fastStore only re-validate residency.
func (m *Machine) fastPopulate(v addr.VAddr, p addr.PAddr, slot int) {
	if !m.fastOn || slot < 0 {
		return
	}
	off := uint64(v) & m.l1LineMask
	if off != uint64(p)&m.l1LineMask {
		return // translation does not preserve line offsets: one base cannot serve the line
	}
	if m.MC.IsShadow(p) {
		return // shadow lines keep the full reference path
	}
	vline := uint64(v) - off
	vhi := vline + m.cfg.L1.LineBytes
	for i := range m.blockTLB {
		b := &m.blockTLB[i]
		if vline < b.vhi && vhi > b.vlo { // line overlaps this block entry
			if vline < b.vlo || vhi > b.vhi {
				return // straddles the entry boundary: translation not linear across the line
			}
			break // fully inside the first matching entry: linear, and first-match stable
		}
	}
	idx := -1
	for i := range m.fast {
		if m.fast[i].vline == vline {
			idx = i // refresh in place: at most one live entry per vline
			break
		}
	}
	if idx < 0 {
		idx = int(m.fastNext)
		m.fastNext++
		if m.fastNext == fastWays {
			m.fastNext = 0
		}
	}
	m.fast[idx] = fastEntry{vline: vline, pbase: uint64(p) - off, la: m.L1.LineAddr(uint64(p)), slot: int32(slot)}
}

// fastLoad attempts the load fast path. On a committed hit it performs
// the complete observable effect of the reference L1-hit path and
// reports (value, true); otherwise it reports false having touched
// nothing, and the caller runs the reference path.
func (m *Machine) fastLoad(v addr.VAddr, size uint64) (uint64, bool) {
	vline := uint64(v) &^ m.l1LineMask
	for i := range m.fast {
		e := &m.fast[i]
		if e.vline != vline {
			continue
		}
		if !m.L1.FastTouch(int(e.slot), e.la) {
			e.vline = fastInvalid
			return 0, false
		}
		start := m.clock
		p := addr.PAddr(e.pbase | (uint64(v) & m.l1LineMask))
		var value uint64
		if m.functional {
			// Populate rejects shadow lines, so this is readValue minus
			// the shadow dispatch.
			if size == 8 {
				value = m.Mem.Load64(p)
			} else {
				value = uint64(m.Mem.Load32(p))
			}
		}
		m.St.L1LoadHits++
		m.finishLoad(start, start+m.cfg.L1.HitCycles)
		if m.tracer != nil {
			m.traceLoad(v, p, size, start, LevelL1)
		}
		if m.obs != nil {
			m.obsLoad(start, LevelL1)
		}
		return value, true
	}
	return 0, false
}

// fastStore attempts the store fast path (the L1 MarkDirty-hit branch of
// the reference store). Reports whether it committed.
func (m *Machine) fastStore(v addr.VAddr, size, val uint64) bool {
	vline := uint64(v) &^ m.l1LineMask
	for i := range m.fast {
		e := &m.fast[i]
		if e.vline != vline {
			continue
		}
		if !m.L1.FastDirty(int(e.slot), e.la) {
			e.vline = fastInvalid
			return false
		}
		start := m.clock
		p := addr.PAddr(e.pbase | (uint64(v) & m.l1LineMask))
		if m.functional {
			// Non-shadow by the populate guard: writeValue minus dispatch.
			if size == 8 {
				m.Mem.Store64(p, val)
			} else {
				m.Mem.Store32(p, uint32(val))
			}
		}
		m.St.L1StoreHits++
		m.St.Instructions++
		done := m.clock + 1
		if lim := m.cfg.StoreBacklogCycles; lim > 0 {
			if bu := m.Bus.BusyUntil(); bu > done+lim {
				done = bu - lim
			}
		}
		m.St.StoreCycles += done - start
		m.clock = done
		if m.tracer != nil {
			// Shadow is false by the populate guard.
			m.trace(TraceEvent{Cycle: start, Kind: TraceStore, VAddr: v, PAddr: p, Size: size})
		}
		return true
	}
	return false
}
