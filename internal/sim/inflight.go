package sim

import "impulse/internal/timeline"

// inflightTable maps L1 line address -> prefetch arrival time without
// allocating on the hot path. It replaces a map[uint64]timeline.Time
// whose put/delete churn dominated the simulator's allocation profile:
// open addressing with linear probing, Fibonacci hashing on the top
// bits (line addresses have zero low bits, so low-bit indexing would
// cluster), backward-shift deletion, and growth at half load. Growth
// preserves exact map semantics — entries are never evicted — so
// simulated timing is identical to the map-backed version.
type inflightTable struct {
	slots []inflightSlot
	shift uint // 64 - log2(len(slots))
	n     int
}

type inflightSlot struct {
	key  uint64
	val  timeline.Time
	used bool
}

const inflightMinSlots = 64

func (t *inflightTable) init() {
	t.slots = make([]inflightSlot, inflightMinSlots)
	t.shift = 64 - 6
	t.n = 0
}

func (t *inflightTable) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *inflightTable) get(key uint64) (timeline.Time, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
	}
}

func (t *inflightTable) put(key uint64, val timeline.Time) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = inflightSlot{key: key, val: val, used: true}
			t.n++
			return
		}
		if s.key == key {
			s.val = val
			return
		}
	}
}

// del removes key if present, compacting the probe chain behind it
// (backward-shift deletion keeps lookups tombstone-free).
func (t *inflightTable) del(key uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.home(key)
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.key == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		// s may fill the hole at i only if its home position does not
		// lie strictly inside (i, j] — otherwise moving it would break
		// its own probe chain.
		if (j-t.home(s.key))&mask >= (j-i)&mask {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = inflightSlot{}
	t.n--
}

func (t *inflightTable) grow() {
	old := t.slots
	t.slots = make([]inflightSlot, 2*len(old))
	t.shift--
	t.n = 0
	for i := range old {
		if old[i].used {
			t.put(old[i].key, old[i].val)
		}
	}
}

// reset empties the table, keeping its capacity.
func (t *inflightTable) reset() {
	clear(t.slots)
	t.n = 0
}
