// Vector replay applier: the per-machine half of vectorized multi-config
// replay (internal/tracefile decodes a recorded v2 trace once into a
// run-structured program; one VecApplier per machine applies it).
//
// The applier exists to make the per-config cost of a replayed access as
// small as possible without changing a single observable effect. It gets
// there in three steps, each exact by construction:
//
//  1. Inline hit paths. During replay the machine has no recorder, no
//     tracer, no observability hub, and functional data movement is off,
//     so the reference load path collapses to: fast-table probe,
//     FastTouch re-validation, and the L1-hit counter/latency/clock
//     effects. The applier performs exactly those effects inline, and
//     falls back to loadTail/storeTail (the reference path) for anything
//     else — a table miss, a failed re-validation, a prefetched line.
//
//  2. Shadow-eligible fast table. The execution fast path excludes
//     shadow (remapped) lines because its commit reads memory directly,
//     skipping the controller's gather resolution. With functional
//     movement off no path reads memory at all, so that reason
//     disappears: the applier sets Machine.fastShadow for the duration,
//     letting shadow L1 hits use the table too. All other invariants
//     (translation stability via fastInvalidateAll, residency
//     re-validation via FastTouch, the offset-preservation and
//     block-boundary populate guards) apply to shadow lines unchanged.
//     Close() clears the flag and kills every entry so a machine reused
//     after replay cannot commit a stale shadow entry with functional
//     movement back on.
//
//  3. Same-line batching. A run of consecutive accesses to one resident
//     line (unit-stride inner loops) commits as a single batch: one
//     probe, one FastTouch to validate, FastTouchN for the rest, and
//     counter/histogram/clock updates scaled by the run length. Nothing
//     can evict the line mid-run (the only intervening ops are fused
//     Ticks, which do not touch caches), and every batched effect is
//     additive, so the final machine state is bit-identical to per-op
//     application. The store backlog stall is checked only on the first
//     store of a run: committing a store establishes
//     BusyUntil <= clock+lim, the clock only grows, and fast-path stores
//     put nothing on the bus, so later stores in the run cannot trip it.
package sim

import (
	"impulse/internal/addr"
	"impulse/internal/obs"
)

// Vector op codes for the hot ops of a decoded trace program. Code 0 is
// reserved for the caller (internal/tracefile marks rare-op runs, which
// it applies itself through the public machine API).
const (
	VecLoad32 byte = 1 + iota
	VecLoad64
	VecStore32
	VecStore64
	VecTick
)

// VecApplier applies decoded hot-op runs to one machine. Build one per
// machine per replay batch with NewVecApplier and Close it when the
// batch ends. Not safe for concurrent use, like the Machine itself.
type VecApplier struct {
	m      *Machine
	inline bool   // inline hit paths usable (see eligibility in NewVecApplier)
	hitAdv uint64 // clock advance of an L1 hit (finishLoad clamps 0 to 1)
	hitBkt int    // LoadLatency bucket index of hitAdv
}

// NewVecApplier prepares m for vectorized application. The inline hit
// paths engage only when the reference path would have no observable
// effects beyond theirs: functional data movement off, and no recorder,
// tracer, or observability hub attached. Otherwise every op takes the
// generic path through the public API — correct, just not faster.
func NewVecApplier(m *Machine) *VecApplier {
	adv := m.cfg.L1.HitCycles
	if adv == 0 {
		adv = 1
	}
	a := &VecApplier{
		m:      m,
		inline: !m.functional && m.rec == nil && m.tracer == nil && m.obs == nil,
		hitAdv: adv,
		hitBkt: obs.BucketIndex(adv, len(m.St.LoadLatency.Buckets)),
	}
	if a.inline {
		// Widen fast-path eligibility to shadow lines for the batch:
		// with functional movement off no commit reads memory, so the
		// execution-time reason to exclude them disappears.
		m.fastShadow = true
	}
	return a
}

// Inline reports whether the applier's inline hit paths are engaged
// (false means every op goes through the public machine API).
func (a *VecApplier) Inline() bool { return a.inline }

// Close ends the batch: the shadow-eligibility window shuts and every
// fast-path entry dies (generation bump), so entries populated for
// shadow lines cannot survive into functional execution.
func (a *VecApplier) Close() {
	if a.m.fastShadow {
		a.m.fastShadow = false
		a.m.fastInvalidateAll()
	}
}

// ApplyRun applies one run of len(args) hot ops that share an opcode.
// args holds the per-op operand (virtual address, or tick count for
// VecTick); aux[i] holds a Tick fused behind op i in the recorded stream
// (0 = none; always 0 for VecTick runs — the decoder extends the run
// instead).
func (a *VecApplier) ApplyRun(code byte, args []uint64, aux []uint32) {
	if !a.inline {
		a.applyGeneric(code, args, aux)
		return
	}
	switch code {
	case VecLoad32:
		a.applyLoads(args, aux, 4)
	case VecLoad64:
		a.applyLoads(args, aux, 8)
	case VecStore32:
		a.applyStores(args, aux, 4)
	case VecStore64:
		a.applyStores(args, aux, 8)
	case VecTick:
		m := a.m
		if w := m.cfg.IssueWidth; w > 1 {
			for _, n := range args {
				m.St.Instructions += n
				m.clock += (n + w - 1) / w
			}
			return
		}
		var tot uint64
		for _, n := range args {
			tot += n
		}
		m.St.Instructions += tot
		m.clock += tot
	}
}

// applyGeneric replays a run through the public machine API, for
// machines the inline paths must not touch (recorder, tracer, or hub
// attached, or functional movement on). Effects are the reference
// path's by definition.
func (a *VecApplier) applyGeneric(code byte, args []uint64, aux []uint32) {
	m := a.m
	for i, x := range args {
		switch code {
		case VecLoad32:
			m.Load32(addr.VAddr(x))
		case VecLoad64:
			m.Load64(addr.VAddr(x))
		case VecStore32:
			m.Store32(addr.VAddr(x), 0)
		case VecStore64:
			m.Store64(addr.VAddr(x), 0)
		case VecTick:
			m.Tick(x)
		}
		if n := aux[i]; n != 0 {
			m.Tick(uint64(n))
		}
	}
}

// fusedTicks applies the Ticks fused behind a committed same-line span.
// Tick effects are additive against the span's (nothing in between reads
// the clock), so order within the span cannot matter; with IssueWidth 1
// the whole span folds into two adds.
func (a *VecApplier) fusedTicks(aux []uint32) {
	m := a.m
	if w := m.cfg.IssueWidth; w > 1 {
		for _, x := range aux {
			if x != 0 {
				m.St.Instructions += uint64(x)
				m.clock += (uint64(x) + w - 1) / w
			}
		}
		return
	}
	var tot uint64
	for _, x := range aux {
		tot += uint64(x)
	}
	m.St.Instructions += tot
	m.clock += tot
}

// applyLoads applies a run of loads: the reference load minus the
// recorder callback and fast-path dispatch, with wide-table hits
// committed inline and batched over same-line spans.
//
// Hit-side effects accumulate in locals and flush once per run. Every
// accumulated effect is an additive counter increment (or a max-merge),
// so deferring them past interleaved reference-path falls cannot change
// the final state. The clock is the exception — loadTail reads it — so
// a local mirror is published to m.clock before every fall and reloaded
// after, along with the table generation (a fall can insert a TLB entry
// and invalidate the table; a stale local would revive dead entries).
func (a *VecApplier) applyLoads(args []uint64, aux []uint32, size uint64) {
	m := a.m
	st := m.St
	mask := m.l1LineMask
	adv := a.hitAdv
	n := len(args)
	vec := m.fastVec
	if vec == nil {
		for i := 0; i < n; i++ {
			st.Loads++
			m.loadTail(addr.VAddr(args[i]), size)
			if x := aux[i]; x != 0 {
				m.Tick(uint64(x))
			}
		}
		return
	}
	var (
		shift = m.fastVecShift
		vmask = m.fastVecMask
		w     = m.cfg.IssueWidth
		clk   = m.clock
		gen   = m.fastVecGen
		hits  uint64 // committed inline hits
		instr uint64 // fused-tick instructions beyond the hits themselves
	)
	i := 0
	for i < n {
		va := args[i]
		vline := va &^ mask
		e := &vec[(vline>>shift)&vmask]
		if e.vline == vline && e.gen == gen {
			if !m.L1.FastTouch(int(e.slot), e.la) {
				// Same as fastLoad: drop the stale entry; the
				// reference path handles this access.
				e.vline = fastInvalid
			} else {
				// Committed hit: extend over the same-line span.
				k := i + 1
				for k < n && args[k]&^mask == vline {
					k++
				}
				cnt := uint64(k - i)
				if cnt > 1 {
					m.L1.FastTouchN(int(e.slot), cnt-1)
				}
				hits += cnt
				clk += cnt * adv
				for _, x := range aux[i:k] {
					if x != 0 {
						instr += uint64(x)
						if w > 1 {
							clk += (uint64(x) + w - 1) / w
						} else {
							clk += uint64(x)
						}
					}
				}
				i = k
				continue
			}
		}
		st.Loads++
		m.clock = clk
		m.loadTail(addr.VAddr(va), size)
		if x := aux[i]; x != 0 {
			m.Tick(uint64(x))
		}
		clk = m.clock
		gen = m.fastVecGen
		i++
	}
	m.clock = clk
	if hits != 0 {
		st.Loads += hits
		st.L1LoadHits += hits
		st.LoadCycles += hits * adv
		st.LoadLatency.Buckets[a.hitBkt] += hits
		st.LoadLatency.Count += hits
		st.LoadLatency.Total += hits * adv
		if adv > st.LoadLatency.Max {
			st.LoadLatency.Max = adv
		}
		st.Instructions += hits + instr
	}
}

// applyStores applies a run of stores, mirroring applyLoads. Only the
// first store of a committed span checks the backlog stall (see the
// package comment for why later ones cannot trip it); the check reads
// the live bus state against the local clock mirror, which is exact
// because the mirror equals what m.clock would hold at that op.
func (a *VecApplier) applyStores(args []uint64, aux []uint32, size uint64) {
	m := a.m
	st := m.St
	mask := m.l1LineMask
	n := len(args)
	vec := m.fastVec
	if vec == nil {
		for i := 0; i < n; i++ {
			st.Stores++
			m.storeTail(addr.VAddr(args[i]), size, 0)
			if x := aux[i]; x != 0 {
				m.Tick(uint64(x))
			}
		}
		return
	}
	var (
		shift    = m.fastVecShift
		vmask    = m.fastVecMask
		w        = m.cfg.IssueWidth
		lim      = m.cfg.StoreBacklogCycles
		clk      = m.clock
		gen      = m.fastVecGen
		hits     uint64
		instr    uint64
		storeCyc uint64
	)
	i := 0
	for i < n {
		va := args[i]
		vline := va &^ mask
		e := &vec[(vline>>shift)&vmask]
		if e.vline == vline && e.gen == gen {
			if !m.L1.FastDirty(int(e.slot), e.la) {
				e.vline = fastInvalid
			} else {
				start := clk
				done := clk + 1
				if lim > 0 {
					if bu := m.Bus.BusyUntil(); bu > done+lim {
						done = bu - lim
					}
				}
				storeCyc += done - start
				clk = done
				k := i + 1
				for k < n && args[k]&^mask == vline {
					k++
				}
				cnt := uint64(k - i)
				if cnt > 1 {
					m.L1.FastDirtyN(int(e.slot), cnt-1)
					storeCyc += cnt - 1
					clk += cnt - 1
				}
				hits += cnt
				for _, x := range aux[i:k] {
					if x != 0 {
						instr += uint64(x)
						if w > 1 {
							clk += (uint64(x) + w - 1) / w
						} else {
							clk += uint64(x)
						}
					}
				}
				i = k
				continue
			}
		}
		st.Stores++
		m.clock = clk
		m.storeTail(addr.VAddr(va), size, 0)
		if x := aux[i]; x != 0 {
			m.Tick(uint64(x))
		}
		clk = m.clock
		gen = m.fastVecGen
		i++
	}
	m.clock = clk
	if hits != 0 {
		st.Stores += hits
		st.L1StoreHits += hits
		st.StoreCycles += storeCyc
		st.Instructions += hits + instr
	}
}
