package sim

import (
	"fmt"
	"math"
	"math/bits"

	"impulse/internal/addr"
	"impulse/internal/bus"
	"impulse/internal/cache"
	"impulse/internal/dram"
	"impulse/internal/kernel"
	"impulse/internal/mc"
	"impulse/internal/membuf"
	"impulse/internal/obs"
	"impulse/internal/stats"
	"impulse/internal/timeline"
	"impulse/internal/tlb"
)

// Machine is the assembled system.
type Machine struct {
	cfg Config

	clock timeline.Time
	St    *stats.MemStats

	Mem  *membuf.Memory
	K    *kernel.Kernel
	MC   *mc.Controller
	L1   *cache.Cache
	L2   *cache.Cache
	Bus  *bus.Bus
	DRAM *dram.DRAM
	TLB  *tlb.TLB

	l2port timeline.Resource

	// inflight tracks L1 prefetches whose data has not yet arrived:
	// L1 line address -> arrival time. A demand hit on such a line stalls
	// until arrival (a "partial hit").
	inflight inflightTable

	// blockTLB holds superpage-style block translations that never miss
	// (the paper's machine maps the kernel this way; Impulse superpages
	// [21] install user block entries over shadow-contiguous regions).
	blockTLB []blockEntry

	// blockHot remembers the index of the last block entry that matched.
	// It is consulted only while blockDisjoint holds — with pairwise
	// disjoint entries, first-match equals any-match, so checking the hot
	// entry first cannot change which translation wins.
	blockHot      int
	blockDisjoint bool

	// fastVec is the direct-mapped line-hit table backing the access
	// fast path (see fastpath.go): a vline-indexed table large enough to
	// remember every resident L1 line, populated on reference L1 hits,
	// invalidated by generation bump on any translation-state change,
	// and re-validated on every use via cache.FastTouch/FastDirty. Nil
	// when the fast path is disabled; fastOn mirrors
	// !cfg.DisableFastPath. fastShadow widens eligibility to shadow
	// lines; it may be set only while functional data movement is off
	// (vector replay, replayvec.go), because the commit paths read
	// memory directly, skipping shadow resolution.
	fastVec      []fastEntry
	fastVecMask  uint64
	fastVecGen   uint32
	fastVecShift uint8
	fastOn       bool
	fastShadow   bool

	// Page-translation memo in front of the TLB (fastpath.go invariant 1
	// applies unchanged: populated only on a TLB hit, when a repeat
	// reference lookup would be state-free — the hit counter and ref bit
	// are not observable and the ref set is idempotent — and invalidated
	// by fastInvalidateAll alongside the line MRU). Shadow accesses
	// bypass the line MRU but stream through pages sequentially, so this
	// memo is what keeps their translation cost flat. Four entries with
	// round-robin replacement, because the CG inner loops interleave
	// three-plus streams on different pages and a one-entry memo thrashed
	// between them. Empty entries hold fastInvalid (no virtual page
	// number is all-ones).
	fastPages    [fastPageWays]uint64
	fastFrames   [fastPageWays]uint64
	fastPageNext uint8

	l1LineMask uint64
	l2LineMask uint64

	// runScratch backs the MC.ResolveInto calls in readValue/writeValue,
	// keeping the shadow data path allocation-free.
	runScratch []mc.Run

	tracer Tracer

	// rec receives the machine-command stream (nil = not recording);
	// functional gates readValue/writeValue so trace replay can skip
	// data movement. See record.go.
	rec        CmdRecorder
	functional bool

	// obs is the observability hub (nil = not attached, near-zero cost).
	obs      *obs.Hub
	cpuTrack obs.TrackID
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &stats.MemStats{}
	mem := membuf.New(cfg.Kernel.Layout.DRAMFrames())
	d, err := dram.New(cfg.DRAM, st)
	if err != nil {
		return nil, err
	}
	b, err := bus.New(cfg.Bus, st)
	if err != nil {
		return nil, err
	}
	controller, err := mc.New(cfg.MC, d, mem, st)
	if err != nil {
		return nil, err
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(cfg.Kernel)
	if err != nil {
		return nil, err
	}
	// The controller's backing page table occupies real DRAM; keep the OS
	// allocator away from those frames.
	ptLo := uint64(cfg.MC.PgTblBase) >> addr.PageShift
	ptHi := (uint64(cfg.MC.PgTblBase) + cfg.MC.PgTblBytes) >> addr.PageShift
	if err := k.ReserveFrameRange(ptLo, ptHi); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:           cfg,
		St:            st,
		Mem:           mem,
		K:             k,
		MC:            controller,
		L1:            l1,
		L2:            l2,
		Bus:           b,
		DRAM:          d,
		TLB:           tlb.New(cfg.TLBEntries),
		l1LineMask:    cfg.L1.LineBytes - 1,
		l2LineMask:    cfg.L2.LineBytes - 1,
		functional:    true,
		fastOn:        !cfg.DisableFastPath,
		blockDisjoint: true,
	}
	m.inflight.init()
	if m.fastOn {
		// 4x the L1 line count (next power of two) keeps conflict
		// evictions rare, so nearly every repeat hit to a resident line
		// commits on the fast path.
		n := uint64(1) << bits.Len64(4*cfg.L1.Bytes/cfg.L1.LineBytes-1)
		m.fastVec = make([]fastEntry, n)
		m.fastVecMask = n - 1
		m.fastVecShift = uint8(bits.TrailingZeros64(cfg.L1.LineBytes))
	}
	m.fastInvalidateAll()
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// ReleaseBuffers returns the machine's large backing allocations (the
// simulated-memory page frames and the kernel's frame free lists) to
// their package pools, for reuse by the next machine. The harness calls
// it when a finished experiment cell discards its system; the machine
// must not be used afterwards.
func (m *Machine) ReleaseBuffers() {
	m.Mem.Release()
	m.K.Release()
}

// Now returns the current cycle.
func (m *Machine) Now() timeline.Time { return m.clock }

// Tick charges n instructions of non-memory work. On the default
// single-issue CPU each costs one cycle; with IssueWidth w the CPU
// retires w per cycle.
func (m *Machine) Tick(n uint64) {
	if m.rec != nil {
		m.rec.RecTick(n)
	}
	m.St.Instructions += n
	w := m.cfg.IssueWidth
	if w <= 1 {
		m.clock += n
		return
	}
	m.clock += (n + w - 1) / w
}

// SetL1Prefetch toggles the L1 next-line prefetcher.
func (m *Machine) SetL1Prefetch(on bool) { m.cfg.L1Prefetch = on }

// SetMCPrefetch toggles controller prefetching.
func (m *Machine) SetMCPrefetch(on bool) { m.MC.SetPrefetch(on) }

// --- Address translation ------------------------------------------------

type blockEntry struct {
	vlo, vhi uint64 // virtual range [vlo, vhi)
	pbase    uint64 // bus address of vlo
}

// InstallBlockTLB installs a block (superpage) translation mapping the
// virtual range [v, v+bytes) to the contiguous bus range starting at p.
// Block entries are checked before the page TLB and never miss.
func (m *Machine) InstallBlockTLB(v addr.VAddr, p addr.PAddr, bytes uint64) {
	if m.rec != nil {
		m.rec.RecInstallBlockTLB(v, p, bytes)
	}
	ne := blockEntry{vlo: uint64(v), vhi: uint64(v) + bytes, pbase: uint64(p)}
	for i := range m.blockTLB {
		if b := &m.blockTLB[i]; ne.vlo < b.vhi && ne.vhi > b.vlo {
			// Overlapping entries: first-match order matters, so the
			// hot-entry shortcut in translate must stay off.
			m.blockDisjoint = false
		}
	}
	m.blockTLB = append(m.blockTLB, ne)
	m.fastInvalidateAll()
}

// ClearBlockTLB removes all block translations.
func (m *Machine) ClearBlockTLB() {
	if m.rec != nil {
		m.rec.RecClearBlockTLB()
	}
	m.blockTLB = nil
	m.blockHot = 0
	m.blockDisjoint = true
	m.fastInvalidateAll()
}

// translate converts a virtual address to a bus address, charging TLB
// behaviour. Panics on an unmapped address: that is a simulation bug, not
// a modeled fault.
func (m *Machine) translate(v addr.VAddr) addr.PAddr {
	if len(m.blockTLB) > 0 {
		// Hot-entry shortcut: with pairwise disjoint entries at most one
		// can match, so probing the last match first is order-neutral.
		if m.blockDisjoint {
			if b := &m.blockTLB[m.blockHot]; uint64(v) >= b.vlo && uint64(v) < b.vhi {
				return addr.PAddr(b.pbase + (uint64(v) - b.vlo))
			}
		}
		for i := range m.blockTLB {
			if b := &m.blockTLB[i]; uint64(v) >= b.vlo && uint64(v) < b.vhi {
				m.blockHot = i
				return addr.PAddr(b.pbase + (uint64(v) - b.vlo))
			}
		}
	}
	page := v.PageNum()
	for i := range m.fastPages {
		if m.fastPages[i] == page {
			return addr.PAddr(m.fastFrames[i]<<addr.PageShift | v.PageOff())
		}
	}
	if frame, ok := m.TLB.Lookup(page); ok {
		if m.fastOn {
			i := m.fastPageNext
			m.fastPageNext++
			if m.fastPageNext == fastPageWays {
				m.fastPageNext = 0
			}
			m.fastPages[i], m.fastFrames[i] = page, frame
		}
		return addr.PAddr(frame<<addr.PageShift | v.PageOff())
	}
	p, ok := m.K.Translate(v)
	if !ok {
		panic(fmt.Sprintf("sim: access to unmapped virtual address %v", v))
	}
	m.St.TLBMisses++
	m.St.TLBWalkCost += m.cfg.TLBMissPenalty
	if m.obs != nil {
		m.obs.Span(m.cpuTrack, "tlb-walk", m.clock, m.clock+m.cfg.TLBMissPenalty)
	}
	m.clock += m.cfg.TLBMissPenalty
	// The insert may evict a victim translation or clear referenced bits
	// (the NRU sweep); either would let a stale MRU entry skip a TLB miss
	// the reference path would charge.
	m.TLB.Insert(v.PageNum(), p.PageNum())
	m.fastInvalidateAll()
	return p
}

// TranslateNoFault translates without charging timing (diagnostics and OS
// paths that are charged separately).
func (m *Machine) TranslateNoFault(v addr.VAddr) (addr.PAddr, bool) {
	return m.K.Translate(v)
}

// FlushTLB empties the processor TLB (e.g. after the OS rewrites page
// tables during a remap).
func (m *Machine) FlushTLB() {
	if m.rec != nil {
		m.rec.RecFlushTLB()
	}
	m.TLB.InvalidateAll()
	m.fastInvalidateAll()
}

// FlushTLBPage drops one translation.
func (m *Machine) FlushTLBPage(v addr.VAddr) {
	if m.rec != nil {
		m.rec.RecFlushTLBPage(v)
	}
	m.TLB.Invalidate(v.PageNum())
	m.fastInvalidateAll()
}

// --- Functional data movement -------------------------------------------

// readValue reads size bytes of actual data at bus address p, resolving
// shadow addresses through the controller.
func (m *Machine) readValue(p addr.PAddr, size uint64) uint64 {
	if !m.MC.IsShadow(p) {
		switch size {
		case 4:
			return uint64(m.Mem.Load32(p))
		case 8:
			return m.Mem.Load64(p)
		default:
			panic(fmt.Sprintf("sim: unsupported access size %d", size))
		}
	}
	runs, err := m.MC.ResolveInto(m.runScratch[:0], p, size)
	if err != nil {
		panic(fmt.Sprintf("sim: shadow read failed: %v", err))
	}
	m.runScratch = runs[:0]
	if len(runs) == 1 && runs[0].Bytes == size {
		// The gathered element is physically contiguous (the common
		// case): one whole-value load replaces the byte loop.
		if size == 8 {
			return m.Mem.Load64(runs[0].P)
		}
		return uint64(m.Mem.Load32(runs[0].P))
	}
	var v uint64
	shift := uint(0)
	for _, r := range runs {
		for i := uint64(0); i < r.Bytes; i++ {
			v |= uint64(m.Mem.Load8(r.P+addr.PAddr(i))) << shift
			shift += 8
		}
	}
	return v
}

func (m *Machine) writeValue(p addr.PAddr, size, v uint64) {
	if !m.MC.IsShadow(p) {
		switch size {
		case 4:
			m.Mem.Store32(p, uint32(v))
		case 8:
			m.Mem.Store64(p, v)
		default:
			panic(fmt.Sprintf("sim: unsupported access size %d", size))
		}
		return
	}
	runs, err := m.MC.ResolveInto(m.runScratch[:0], p, size)
	if err != nil {
		panic(fmt.Sprintf("sim: shadow write failed: %v", err))
	}
	m.runScratch = runs[:0]
	if len(runs) == 1 && runs[0].Bytes == size {
		if size == 8 {
			m.Mem.Store64(runs[0].P, v)
		} else {
			m.Mem.Store32(runs[0].P, uint32(v))
		}
		return
	}
	shift := uint(0)
	for _, r := range runs {
		for i := uint64(0); i < r.Bytes; i++ {
			m.Mem.Store8(r.P+addr.PAddr(i), uint8(v>>shift))
			shift += 8
		}
	}
}

// --- Load path -----------------------------------------------------------

// Load32 performs a 32-bit load at virtual address v.
func (m *Machine) Load32(v addr.VAddr) uint32 { return uint32(m.load(v, 4)) }

// Load64 performs a 64-bit load at virtual address v.
func (m *Machine) Load64(v addr.VAddr) uint64 { return m.load(v, 8) }

// LoadF64 performs a 64-bit floating-point load.
func (m *Machine) LoadF64(v addr.VAddr) float64 {
	return math.Float64frombits(m.load(v, 8))
}

func (m *Machine) load(v addr.VAddr, size uint64) uint64 {
	if m.rec != nil {
		m.rec.RecLoad(v, size)
	}
	m.St.Loads++
	if m.fastOn {
		if value, ok := m.fastLoad(v, size); ok {
			return value
		}
	}
	return m.loadTail(v, size)
}

// loadTail is the reference load path: everything after the recorder
// callback, the Loads counter, and the fast-path attempt. The vector
// replay applier (replayvec.go) calls it directly for accesses its
// inline hit path cannot commit.
func (m *Machine) loadTail(v addr.VAddr, size uint64) uint64 {
	start := m.clock
	p := m.translate(v)
	var value uint64
	if m.functional {
		value = m.readValue(p, size)
	}

	// L1 probe (virtually indexed, physically tagged).
	if r := m.L1.Lookup(uint64(v), uint64(p)); r.Hit {
		done := m.clock + m.cfg.L1.HitCycles
		if r.WasPrefetched {
			m.St.L1PrefetchHits++
			la := m.L1.LineAddr(uint64(p))
			if arr, ok := m.inflight.get(la); ok {
				if arr > done {
					done = arr // partial hit: data still in flight
				}
				m.inflight.del(la)
			}
			// PA 7200-style streaming: consuming a prefetched line
			// triggers the next prefetch, keeping streams ahead.
			m.maybeL1Prefetch(v, done)
		}
		m.St.L1LoadHits++
		m.finishLoad(start, done)
		m.traceLoad(v, p, size, start, LevelL1)
		if m.obs != nil {
			m.obsLoad(start, LevelL1)
		}
		m.fastPopulate(v, p, r.Slot)
		return value
	}

	// L1 miss: probe L2 (physically indexed).
	missAt := m.clock + m.cfg.L1.HitCycles
	if m.L2.Lookup(uint64(p), uint64(p)).Hit {
		_, done := m.l2port.Acquire(missAt, m.cfg.L2.HitCycles)
		m.St.L2LoadHits++
		m.fillL1(v, p, done)
		m.finishLoad(start, done)
		m.traceLoad(v, p, size, start, LevelL2)
		if m.obs != nil {
			m.obsLoad(start, LevelL2)
		}
		m.maybeL1Prefetch(v, done)
		m.fastPopulate(v, p, m.L1.FindSlot(uint64(v), uint64(p)))
		return value
	}

	// L2 miss: memory access through bus and controller.
	_, probed := m.l2port.Acquire(missAt, m.cfg.L2MissProbeCycles)
	done := m.memoryFill(v, p, probed, false)
	m.St.MemLoads++
	m.finishLoad(start, done)
	m.traceLoad(v, p, size, start, LevelMem)
	if m.obs != nil {
		m.obsLoad(start, LevelMem)
	}
	m.maybeL1Prefetch(v, done)
	m.fastPopulate(v, p, m.L1.FindSlot(uint64(v), uint64(p)))
	return value
}

// traceLoad emits a load event (after finishLoad advanced the clock).
func (m *Machine) traceLoad(v addr.VAddr, p addr.PAddr, size uint64, start timeline.Time, lvl TraceLevel) {
	if m.tracer == nil {
		return
	}
	m.trace(TraceEvent{
		Cycle: start, Kind: TraceLoad, Level: lvl, VAddr: v, PAddr: p,
		Size: size, Latency: m.clock - start, Shadow: m.MC.IsShadow(p),
	})
}

func (m *Machine) finishLoad(start, done timeline.Time) {
	if done <= start {
		done = start + 1
	}
	m.St.LoadCycles += done - start
	m.St.LoadLatency.Observe(done - start)
	m.St.Instructions++
	m.clock = done
}

// memoryFill fetches the L2 line containing p from the memory system,
// fills L2 (and L1 for demand fetches), and returns the completion time.
// For background fills (prefetch, store allocate) the caller ignores the
// L1 fill by passing background=true.
func (m *Machine) memoryFill(v addr.VAddr, p addr.PAddr, at timeline.Time, background bool) timeline.Time {
	lineP := addr.PAddr(uint64(p) &^ m.l2LineMask)
	reqDone := m.Bus.Request(at)
	ready, err := m.MC.ReadLine(reqDone, lineP)
	if err != nil {
		panic(fmt.Sprintf("sim: memory fill failed: %v", err))
	}
	done := m.Bus.Transfer(ready, m.cfg.L2.LineBytes)
	m.insertL2(p, false, done)
	if !background {
		m.fillL1(v, p, done)
	}
	return done
}

// insertL2 installs the line containing p into L2, handling a dirty
// victim with a posted write-back (bus + controller, non-blocking).
func (m *Machine) insertL2(p addr.PAddr, dirty bool, at timeline.Time) {
	ev := m.L2.Insert(uint64(p), uint64(p), dirty, false)
	if ev.Valid && ev.Dirty {
		m.St.L2Writebacks++
		vp := addr.PAddr(ev.PAddr(m.cfg.L2.LineBytes))
		req := m.Bus.Request(at)
		wbReady := m.Bus.Transfer(req, m.cfg.L2.LineBytes)
		if _, err := m.MC.WriteLine(wbReady, vp); err != nil {
			panic(fmt.Sprintf("sim: L2 writeback failed: %v", err))
		}
	}
}

// fillL1 installs the L1 line containing p, handling a dirty victim by
// writing it down to L2 (write-back).
func (m *Machine) fillL1(v addr.VAddr, p addr.PAddr, at timeline.Time) {
	ev := m.L1.Insert(uint64(v), uint64(p), false, false)
	m.l1Victim(ev, at)
}

func (m *Machine) l1Victim(ev cache.Eviction, at timeline.Time) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	m.St.L1Writebacks++
	vp := addr.PAddr(ev.PAddr(m.cfg.L1.LineBytes))
	// The L1 victim's data lands in L2 if present (PIPT probe by its
	// physical address); otherwise it is written around to memory.
	if m.L2.MarkDirty(uint64(vp), uint64(vp)) {
		m.l2port.Acquire(at, m.cfg.L2MissProbeCycles)
		return
	}
	req := m.Bus.Request(at)
	wbReady := m.Bus.Transfer(req, m.cfg.L1.LineBytes)
	if _, err := m.MC.WriteLine(wbReady, addr.PAddr(uint64(vp)&^m.l2LineMask)); err != nil {
		panic(fmt.Sprintf("sim: L1 writeback failed: %v", err))
	}
}

// maybeL1Prefetch implements HP PA 7200-style next-line prefetching into
// the L1: after a demand L1 miss, fetch the following line in the
// background. The prefetch contends for the L2 port (and the bus on an L2
// miss), which is how the paper's "L1 prefetching hurts dense matrix
// product through L2 contention" effect arises.
func (m *Machine) maybeL1Prefetch(v addr.VAddr, at timeline.Time) {
	if !m.cfg.L1Prefetch {
		return
	}
	nv := addr.VAddr((uint64(v) &^ m.l1LineMask) + m.cfg.L1.LineBytes)
	// Do not walk page tables for a prefetch: translate only within the
	// same page or via a TLB hit.
	var np addr.PAddr
	if nv.PageNum() == v.PageNum() {
		p, ok := m.K.Translate(nv)
		if !ok {
			return
		}
		np = p
	} else if frame, ok := m.TLB.Lookup(nv.PageNum()); ok {
		np = addr.PAddr(frame<<addr.PageShift | nv.PageOff())
	} else {
		return
	}
	if m.L1.Contains(uint64(nv), uint64(np)) {
		return
	}
	if !m.MC.CoversLine(addr.PAddr(uint64(np) &^ m.l2LineMask)) {
		return // would run past a remapped region's end
	}
	var arrive timeline.Time
	if m.L2.Lookup(uint64(np), uint64(np)).Hit {
		_, arrive = m.l2port.Acquire(at, m.cfg.L2.HitCycles)
	} else {
		// A prefetch that misses L2 would occupy the bus and DRAM; issue
		// it only when the bus is idle, approximating the demand-priority
		// arbitration real prefetchers rely on. Otherwise drop it.
		if m.Bus.BusyUntil() > at {
			return
		}
		_, probed := m.l2port.Acquire(at, m.cfg.L2MissProbeCycles)
		arrive = m.memoryFill(nv, np, probed, true)
	}
	m.St.L1Prefetches++
	ev := m.L1.Insert(uint64(nv), uint64(np), false, true)
	m.l1Victim(ev, arrive)
	m.inflight.put(m.L1.LineAddr(uint64(np)), arrive)
}

// --- Store path ----------------------------------------------------------

// Store32 performs a 32-bit store.
func (m *Machine) Store32(v addr.VAddr, val uint32) { m.store(v, 4, uint64(val)) }

// Store64 performs a 64-bit store.
func (m *Machine) Store64(v addr.VAddr, val uint64) { m.store(v, 8, val) }

// StoreF64 performs a 64-bit floating-point store.
func (m *Machine) StoreF64(v addr.VAddr, val float64) {
	m.store(v, 8, math.Float64bits(val))
}

// store models the write-around L1 / write-allocate L2 policy: a store
// that hits L1 dirties the line; a miss bypasses L1 and goes to L2, which
// allocates (fetching the line from memory if absent). The CPU itself does
// not stall on stores beyond the issue cycle (posted writes); the bus, L2
// port, and DRAM time they consume delays later loads.
func (m *Machine) store(v addr.VAddr, size, val uint64) {
	if m.rec != nil {
		m.rec.RecStore(v, size)
	}
	m.St.Stores++
	if m.fastOn && m.fastStore(v, size, val) {
		return
	}
	m.storeTail(v, size, val)
}

// storeTail is the reference store path after the recorder callback, the
// Stores counter, and the fast-path attempt (see loadTail).
func (m *Machine) storeTail(v addr.VAddr, size, val uint64) {
	start := m.clock
	p := m.translate(v)
	if m.functional {
		m.writeValue(p, size, val)
	}

	if m.L1.MarkDirty(uint64(v), uint64(p)) {
		m.St.L1StoreHits++
		m.fastPopulate(v, p, m.L1.FindSlot(uint64(v), uint64(p)))
	} else if m.L2.MarkDirty(uint64(p), uint64(p)) {
		m.St.L2StoreHits++
		m.l2port.Acquire(m.clock+1, m.cfg.L2MissProbeCycles)
	} else {
		m.St.MemStores++
		_, probed := m.l2port.Acquire(m.clock+1, m.cfg.L2MissProbeCycles)
		// Write-allocate: fetch the line into L2 in the background and
		// mark it dirty.
		m.memoryFill(v, p, probed, true)
		m.L2.MarkDirty(uint64(p), uint64(p))
	}
	m.St.Instructions++
	done := m.clock + 1 // issue cycle; any TLB walk already advanced clock
	// Finite store queue: when the memory system has run too far behind
	// the posted stores, the CPU stalls until the backlog shrinks.
	if lim := m.cfg.StoreBacklogCycles; lim > 0 {
		if bu := m.Bus.BusyUntil(); bu > done+lim {
			done = bu - lim
		}
	}
	m.St.StoreCycles += done - start
	m.clock = done
	if m.tracer != nil {
		m.trace(TraceEvent{Cycle: start, Kind: TraceStore, VAddr: v, PAddr: p,
			Size: size, Shadow: m.MC.IsShadow(p)})
	}
}

// --- Cache maintenance ---------------------------------------------------

// FlushCyclesPerLine is the CPU cost of one flush/purge instruction.
const FlushCyclesPerLine = 2

// FlushVRange writes back and invalidates all cache lines overlapping the
// virtual range [v, v+bytes). This is the consistency operation Impulse
// requires around remappings ("we assume that an application ... ensures
// data consistency through appropriate flushing of the caches", §2.3).
func (m *Machine) FlushVRange(v addr.VAddr, bytes uint64) {
	if m.rec != nil {
		m.rec.RecFlushVRange(v, bytes)
	}
	m.cacheMaint(v, bytes, true)
}

// PurgeVRange invalidates without write-back (for data that is dead or
// clean, e.g. the A and B input tiles in tiled matrix product).
func (m *Machine) PurgeVRange(v addr.VAddr, bytes uint64) {
	if m.rec != nil {
		m.rec.RecPurgeVRange(v, bytes)
	}
	m.cacheMaint(v, bytes, false)
}

func (m *Machine) cacheMaint(v addr.VAddr, bytes uint64, writeback bool) {
	if bytes == 0 {
		return
	}
	lo := uint64(v) &^ m.l1LineMask
	hi := uint64(v) + bytes
	for a := lo; a < hi; a += m.cfg.L1.LineBytes {
		va := addr.VAddr(a)
		p, ok := m.K.Translate(va)
		if !ok {
			continue
		}
		m.St.FlushedLines++
		m.clock += FlushCyclesPerLine
		m.St.FlushCycles += FlushCyclesPerLine
		if m.tracer != nil {
			m.trace(TraceEvent{Cycle: m.clock, Kind: TraceFlush, VAddr: va, PAddr: p,
				Size: m.cfg.L1.LineBytes, Shadow: m.MC.IsShadow(p)})
		}
		present, dirty := m.L1.FlushLine(uint64(va), uint64(p))
		if present && dirty && writeback {
			// Dirty L1 data moves to L2 (or memory) like a victim.
			if !m.L2.MarkDirty(uint64(p), uint64(p)) {
				req := m.Bus.Request(m.clock)
				wbReady := m.Bus.Transfer(req, m.cfg.L1.LineBytes)
				if _, err := m.MC.WriteLine(wbReady, addr.PAddr(uint64(p)&^m.l2LineMask)); err != nil {
					panic(fmt.Sprintf("sim: flush writeback failed: %v", err))
				}
			}
		}
		// L2 maintenance at its own line granularity.
		if a%m.cfg.L2.LineBytes == 0 || a == lo {
			lp := uint64(p) &^ m.l2LineMask
			present, dirty := m.L2.FlushLine(lp, lp)
			if present && dirty && writeback {
				m.St.L2Writebacks++
				req := m.Bus.Request(m.clock)
				wbReady := m.Bus.Transfer(req, m.cfg.L2.LineBytes)
				if _, err := m.MC.WriteLine(wbReady, addr.PAddr(lp)); err != nil {
					panic(fmt.Sprintf("sim: flush writeback failed: %v", err))
				}
			}
		}
	}
}

// ResetCachesUntimed drops all cache, TLB, and controller-buffer state
// without charging any time or traffic. It is a measurement-harness
// utility for establishing cold-cache conditions after untimed setup —
// simulated memory already holds every store's data, so no write-back is
// needed. It must not be used inside a timed section (that is the
// consistency protocol's job, which costs cycles).
func (m *Machine) ResetCachesUntimed() {
	if m.rec != nil {
		m.rec.RecResetCachesUntimed()
	}
	m.L1.FlushAll(nil)
	m.L2.FlushAll(nil)
	m.TLB.InvalidateAll()
	m.MC.InvalidateBuffers()
	m.inflight.reset()
	m.fastInvalidateAll()
}

// FlushAllCaches empties both caches, writing dirty lines back
// functionally-free but charging flush costs.
func (m *Machine) FlushAllCaches() {
	if m.rec != nil {
		m.rec.RecFlushAllCaches()
	}
	m.L1.FlushAll(func(lineAddr uint64, dirty bool) {
		m.St.FlushedLines++
		m.clock += FlushCyclesPerLine
	})
	m.L2.FlushAll(func(lineAddr uint64, dirty bool) {
		m.St.FlushedLines++
		m.clock += FlushCyclesPerLine
		if dirty {
			m.St.L2Writebacks++
			p := addr.PAddr(lineAddr * m.cfg.L2.LineBytes)
			req := m.Bus.Request(m.clock)
			wbReady := m.Bus.Transfer(req, m.cfg.L2.LineBytes)
			if _, err := m.MC.WriteLine(wbReady, p); err != nil {
				panic(fmt.Sprintf("sim: flush writeback failed: %v", err))
			}
		}
	})
}
