package sim

import (
	"testing"

	"impulse/internal/addr"
	"impulse/internal/mc"
)

// testMachine builds a machine with a small DRAM to keep tests light.
func testMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	layout := addr.Layout{DRAMBytes: 32 << 20, ShadowBase: 1 << 30, ShadowBytes: 256 << 20}
	cfg.Kernel.Layout = layout
	cfg.MC.Layout = layout
	cfg.MC.PgTblBase = addr.PAddr(layout.DRAMBytes - cfg.MC.PgTblBytes)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func alloc(t *testing.T, m *Machine, bytes uint64) addr.VAddr {
	t.Helper()
	va, err := m.K.AllocAndMap(bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return va
}

func checkClassification(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.St.CheckLoadClassification(); err != nil {
		t.Error(err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.StoreF64(va, 3.25)
	if got := m.LoadF64(va); got != 3.25 {
		t.Errorf("LoadF64 = %v", got)
	}
	m.Store32(va+8, 0xCAFE)
	if got := m.Load32(va + 8); got != 0xCAFE {
		t.Errorf("Load32 = %#x", got)
	}
	m.Store64(va+16, 0x1122334455667788)
	if got := m.Load64(va + 16); got != 0x1122334455667788 {
		t.Errorf("Load64 = %#x", got)
	}
	checkClassification(t, m)
}

func TestColdLoadIsMemoryAccess(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.Load64(va)
	if m.St.MemLoads != 1 || m.St.L1LoadHits != 0 {
		t.Errorf("cold load classification: %+v", m.St)
	}
	// Paper: memory access ~40 cycles. Allow the TLB walk on top.
	lat := m.St.LoadCycles - m.St.TLBWalkCost
	if lat < 30 || lat > 60 {
		t.Errorf("cold load latency = %d cycles, want ~40", lat)
	}
}

func TestL1HitAfterMiss(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.Load64(va)
	before := m.Now()
	m.Load64(va + 8) // same 32-byte L1 line
	if m.St.L1LoadHits != 1 {
		t.Errorf("expected L1 hit: %+v", m.St)
	}
	if m.Now()-before != 1 {
		t.Errorf("L1 hit took %d cycles, want 1", m.Now()-before)
	}
	checkClassification(t, m)
}

func TestSequentialSpatialLocality(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	for i := uint64(0); i < 512; i++ { // 4 KB of doubles
		m.LoadF64(va + addr.VAddr(8*i))
	}
	// 32-byte L1 lines of 8-byte doubles: 1 miss + 3 hits per line.
	if m.St.L1LoadHits != 384 {
		t.Errorf("L1 hits = %d, want 384", m.St.L1LoadHits)
	}
	// L2 lines are 128 bytes: each memory fill serves 4 L1 lines, so 3 of
	// every 4 L1 misses hit L2.
	if m.St.MemLoads != 32 || m.St.L2LoadHits != 96 {
		t.Errorf("L2/mem classification: L2=%d mem=%d", m.St.L2LoadHits, m.St.MemLoads)
	}
	checkClassification(t, m)
}

func TestL2HitPath(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 64<<10)
	conflict := va + addr.VAddr(m.Config().L1.Bytes) // same L1 set, different line
	m.Load64(va)
	m.Load64(conflict) // evicts va's line from the direct-mapped L1
	before := m.Now()
	m.Load64(va)
	if m.St.L2LoadHits != 1 {
		t.Errorf("expected one L2 hit: %+v", m.St)
	}
	lat := m.Now() - before
	if lat < 7 || lat > 12 {
		t.Errorf("L2 hit latency = %d, want ~8", lat)
	}
	checkClassification(t, m)
}

func TestTLBMissCharged(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 2*addr.PageSize)
	m.Load64(va)
	if m.St.TLBMisses != 1 {
		t.Errorf("TLBMisses = %d", m.St.TLBMisses)
	}
	m.Load64(va + 8) // same page: no miss
	if m.St.TLBMisses != 1 {
		t.Errorf("TLBMisses after same-page access = %d", m.St.TLBMisses)
	}
	m.Load64(va + addr.PageSize)
	if m.St.TLBMisses != 2 {
		t.Errorf("TLBMisses after new page = %d", m.St.TLBMisses)
	}
	if m.St.TLBWalkCost != 2*m.Config().TLBMissPenalty {
		t.Errorf("TLBWalkCost = %d", m.St.TLBWalkCost)
	}
}

func TestStoreWriteAroundAndAllocate(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.StoreF64(va, 1.0) // L1 miss, L2 miss: write-allocate at L2
	if m.St.MemStores != 1 {
		t.Errorf("MemStores = %d", m.St.MemStores)
	}
	// The line now lives in L2 (not L1: write-around).
	m.LoadF64(va)
	if m.St.L2LoadHits != 1 || m.St.L1LoadHits != 0 {
		t.Errorf("after store-allocate, load classification: %+v", m.St)
	}
	// Store to the now-L1-resident line hits L1.
	m.StoreF64(va+8, 2.0)
	if m.St.L1StoreHits != 1 {
		t.Errorf("L1StoreHits = %d", m.St.L1StoreHits)
	}
	checkClassification(t, m)
}

func TestStoreDoesNotStallCPU(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.Load64(va) // warm TLB
	before := m.Now()
	m.StoreF64(va+2048, 1.0) // L1/L2 miss in a warm page
	if m.Now()-before != 1 {
		t.Errorf("store stalled CPU for %d cycles", m.Now()-before)
	}
}

func TestL1PrefetchImprovesStream(t *testing.T) {
	run := func(pf bool) (uint64, uint64) {
		m := testMachine(t)
		m.SetL1Prefetch(pf)
		va := alloc(t, m, 64<<10)
		for i := uint64(0); i < 8192; i++ {
			m.LoadF64(va + addr.VAddr(8*i))
		}
		return m.St.L1LoadHits, m.Now()
	}
	hitsOff, cyclesOff := run(false)
	hitsOn, cyclesOn := run(true)
	if hitsOn <= hitsOff {
		t.Errorf("L1 prefetch did not raise L1 hits: %d vs %d", hitsOn, hitsOff)
	}
	if cyclesOn >= cyclesOff {
		t.Errorf("L1 prefetch did not speed up stream: %d vs %d cycles", cyclesOn, cyclesOff)
	}
}

func TestMCPrefetchImprovesStream(t *testing.T) {
	run := func(pf bool) uint64 {
		m := testMachine(t)
		m.SetMCPrefetch(pf)
		va := alloc(t, m, 64<<10)
		for i := uint64(0); i < 8192; i++ {
			m.LoadF64(va + addr.VAddr(8*i))
		}
		return m.Now()
	}
	off := run(false)
	on := run(true)
	if on >= off {
		t.Errorf("controller prefetch did not speed up stream: %d vs %d cycles", on, off)
	}
}

func TestFlushVRange(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.Load64(va)         // bring line in
	m.StoreF64(va, 42.0) // dirty it in L1
	m.FlushVRange(va, 64)
	if m.St.FlushedLines == 0 {
		t.Fatal("no lines flushed")
	}
	memBefore := m.St.MemLoads
	if got := m.LoadF64(va); got != 42.0 {
		t.Errorf("value after flush = %v", got)
	}
	if m.St.MemLoads != memBefore+1 {
		t.Errorf("load after flush did not go to memory: %+v", m.St)
	}
	checkClassification(t, m)
}

func TestPurgeVsFlushTiming(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.Load64(va)
	m.PurgeVRange(va, 32)
	if m.St.FlushedLines == 0 {
		t.Error("purge flushed nothing")
	}
	m.Load64(va)
	if m.St.MemLoads != 2 {
		t.Errorf("purged line still cached: %+v", m.St)
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	m := testMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic")
		}
	}()
	m.Load64(0xDEAD000)
}

// TestShadowAccessEndToEnd drives a strided shadow mapping through the
// whole stack: descriptor at the controller, shadow page mapping in the
// OS page table, data flowing back gathered and cached densely.
func TestShadowAccessEndToEnd(t *testing.T) {
	m := testMachine(t)
	// A matrix of 16 rows x 64 columns of doubles; we remap its first
	// column (stride 512 bytes) to a dense shadow alias.
	rows, cols := uint64(16), uint64(64)
	va := alloc(t, m, rows*cols*8)
	for r := uint64(0); r < rows; r++ {
		m.StoreF64(va+addr.VAddr(r*cols*8), float64(r)*1.5)
	}
	m.FlushVRange(va, rows*cols*8) // consistency before remapping

	sh, err := m.K.ShadowAlloc(rows*8, m.Config().L2.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := m.K.FramesOf(va, rows*cols*8)
	if err != nil {
		t.Fatal(err)
	}
	pvBase := addr.PVAddr(0x4000_0000)
	d := mc.Descriptor{
		Kind: mc.Strided, ShadowBase: addr.PAddr(uint64(sh) &^ (addr.PageSize - 1)),
		Bytes: addr.PageSize, PVBase: pvBase + addr.PVAddr(uint64(va)%addr.PageSize),
		ObjBytes: 8, StrideBytes: cols * 8,
	}
	// Keep it simple: sh is page aligned because L2 lines < page.
	if err := m.MC.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	m.MC.MapPVRange(pvBase, frames)

	// Map a fresh virtual alias onto the shadow page.
	aliasVA, err := m.K.AllocVirtual(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.MapShadowPage(aliasVA.PageNum(), d.ShadowBase); err != nil {
		t.Fatal(err)
	}

	st0 := *m.St
	for r := uint64(0); r < rows; r++ {
		got := m.LoadF64(aliasVA + addr.VAddr(8*r))
		if got != float64(r)*1.5 {
			t.Fatalf("gathered element %d = %v, want %v", r, got, float64(r)*1.5)
		}
	}
	// Dense alias: 16 doubles = 4 L1 lines = 1 L2 line. One memory access
	// (the gather), 3 L2 hits, 12 L1 hits.
	dl := m.St.Loads - st0.Loads
	dm := m.St.MemLoads - st0.MemLoads
	dl1 := m.St.L1LoadHits - st0.L1LoadHits
	if dl != 16 || dm != 1 || dl1 != 12 {
		t.Errorf("shadow access pattern: loads=%d mem=%d l1=%d, want 16/1/12", dl, dm, dl1)
	}
	if m.St.ShadowReads == 0 || m.St.ShadowDRAMReads == 0 {
		t.Errorf("controller gather not exercised: %+v", m.St)
	}
	checkClassification(t, m)
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MC.LineBytes = 64 // mismatch with L2
	if _, err := New(cfg); err == nil {
		t.Error("mismatched controller/L2 line size accepted")
	}
	cfg = DefaultConfig()
	cfg.L1.LineBytes = 256
	if _, err := New(cfg); err == nil {
		t.Error("L1 line > L2 line accepted")
	}
	cfg = DefaultConfig()
	cfg.Kernel.Layout.ShadowBase = 0 // breaks layout equality + validity
	if _, err := New(cfg); err == nil {
		t.Error("inconsistent layouts accepted")
	}
}

func TestIssueWidthScalesTicks(t *testing.T) {
	cfg := DefaultConfig()
	layout := addr.Layout{DRAMBytes: 32 << 20, ShadowBase: 1 << 30, ShadowBytes: 256 << 20}
	cfg.Kernel.Layout = layout
	cfg.MC.Layout = layout
	cfg.MC.PgTblBase = addr.PAddr(layout.DRAMBytes - cfg.MC.PgTblBytes)
	cfg.IssueWidth = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.Now()
	m.Tick(8)
	if m.Now()-t0 != 2 {
		t.Errorf("width-4 Tick(8) took %d cycles, want 2", m.Now()-t0)
	}
	if m.St.Instructions != 8 {
		t.Errorf("Instructions = %d, want 8", m.St.Instructions)
	}
	m.Tick(5) // ceil(5/4) = 2
	if m.Now()-t0 != 4 {
		t.Errorf("width-4 Tick(5) rounding wrong: total %d", m.Now()-t0)
	}
	cfg.IssueWidth = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero issue width accepted")
	}
}

func TestStoreBacklogThrottles(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 1<<20)
	// A burst of store misses (write-allocate memory fills) must not let
	// the bus horizon run away from the CPU clock.
	for i := uint64(0); i < 2048; i++ {
		m.Store64(va+addr.VAddr(i*512), i) // every store a fresh L2 line
	}
	lim := m.Config().StoreBacklogCycles
	if bu := m.Bus.BusyUntil(); bu > m.Now()+lim+400 {
		t.Errorf("bus horizon %d cycles ahead of CPU (limit %d)", bu-m.Now(), lim)
	}
	// With throttling disabled the horizon runs away.
	cfg := m.Config()
	layout := cfg.Kernel.Layout
	_ = layout
	cfg.StoreBacklogCycles = 0
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	va2 := alloc(t, m2, 1<<20)
	for i := uint64(0); i < 2048; i++ {
		m2.Store64(va2+addr.VAddr(i*512), i)
	}
	if bu := m2.Bus.BusyUntil(); bu < m2.Now()+10*lim {
		t.Errorf("unthrottled horizon only %d ahead; throttle test not meaningful", bu-m2.Now())
	}
}
