// Package sim assembles the simulated machine: a single-issue in-order CPU
// with a unified TLB, the L1 and L2 data caches, the system bus, the
// Impulse memory controller, and banked DRAM.
//
// The model is execution-driven at load/store granularity. Workloads are
// Go functions that issue typed loads and stores with virtual addresses;
// data really moves (values live in simulated DRAM and remapped accesses
// are resolved through the controller), so every experiment checks the
// remapping machinery functionally while the timing model produces the
// paper's metrics. The CPU blocks on loads (it is single-issue, as in the
// paper's 120 MHz PA-RISC model); prefetches and writebacks proceed in the
// background by reserving future time on the shared resources (bus, L2
// port, DRAM banks), which is how contention effects appear.
package sim

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/bus"
	"impulse/internal/cache"
	"impulse/internal/dram"
	"impulse/internal/kernel"
	"impulse/internal/mc"
)

// Config assembles the machine configuration. Zero value is not usable;
// start from DefaultConfig.
type Config struct {
	L1     cache.Config
	L2     cache.Config
	Bus    bus.Config
	DRAM   dram.Config
	MC     mc.Config
	Kernel kernel.Config

	// TLBEntries is the unified, fully-associative processor TLB size.
	TLBEntries int
	// TLBMissPenalty is the CPU stall for a software TLB walk, cycles.
	// (Paint handles PA-RISC TLB misses in software; we charge a fixed
	// cost instead of simulating the handler's own memory accesses.)
	TLBMissPenalty uint64

	// L1Prefetch enables hardware next-line prefetching into the L1 cache
	// (the HP PA 7200 mechanism the paper compares against).
	L1Prefetch bool

	// L2MissProbeCycles is the tag-probe occupancy of the L2 on a miss.
	L2MissProbeCycles uint64

	// StoreBacklogCycles bounds how far the memory system may run behind
	// posted stores before the CPU stalls — the finite store-queue /
	// MSHR effect. Without it a store-heavy phase would accumulate
	// unbounded bus backlog that later loads pay for.
	StoreBacklogCycles uint64

	// IssueWidth scales non-memory instruction cost: a width-w machine
	// retires w non-memory instructions per cycle (loads still serialize
	// through the memory system). The paper's model is single-issue
	// (width 1); its conclusion predicts that "speedups should be greater
	// on superscalar machines ... because non-memory instructions will be
	// effectively cheaper", which the superscalar ablation tests with
	// width > 1.
	IssueWidth uint64

	// DisableFastPath turns off the MRU line-hit fast path in the access
	// engine (see fastpath.go), forcing every load and store through the
	// reference translate+probe sequence. The fast path is cycle- and
	// counter-identical to the reference path by construction; this knob
	// exists so the differential tests can prove it, and as an escape
	// hatch. It never changes simulation results, so it is deliberately
	// excluded from trace-cache stream identity.
	DisableFastPath bool
}

// DefaultConfig reproduces the paper's simulated machine (§4): 32K
// direct-mapped VIPT write-around L1 with 32-byte lines, 256K 2-way PIPT
// write-allocate L2 with 128-byte lines, 1/7/~40-cycle L1/L2/memory
// latencies, unified single-cycle fully-associative TLB, Runway-style bus.
func DefaultConfig() Config {
	layout := addr.DefaultLayout()
	mcCfg := mc.DefaultConfig()
	mcCfg.Layout = layout
	kCfg := kernel.DefaultConfig()
	kCfg.Layout = layout
	return Config{
		L1:                 cache.L1Default(),
		L2:                 cache.L2Default(),
		Bus:                bus.DefaultConfig(),
		DRAM:               dram.DefaultConfig(),
		MC:                 mcCfg,
		Kernel:             kCfg,
		TLBEntries:         128,
		TLBMissPenalty:     30,
		L1Prefetch:         false,
		L2MissProbeCycles:  2,
		StoreBacklogCycles: 160, // ~8 outstanding line fills
		IssueWidth:         1,
	}
}

// Validate checks cross-component consistency.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.MC.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes > c.L2.LineBytes {
		return fmt.Errorf("sim: L1 line (%d) larger than L2 line (%d)", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.MC.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("sim: controller line (%d) != L2 line (%d)", c.MC.LineBytes, c.L2.LineBytes)
	}
	if c.TLBEntries <= 0 {
		return fmt.Errorf("sim: TLBEntries must be positive")
	}
	if c.IssueWidth == 0 {
		return fmt.Errorf("sim: IssueWidth must be positive")
	}
	if c.MC.Layout != c.Kernel.Layout {
		return fmt.Errorf("sim: controller and kernel disagree on the address-space layout")
	}
	return nil
}
