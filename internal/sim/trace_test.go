package sim

import (
	"strings"
	"testing"

	"impulse/internal/addr"
)

func TestTracerCapturesEvents(t *testing.T) {
	m := testMachine(t)
	var events []TraceEvent
	m.SetTracer(func(e TraceEvent) { events = append(events, e) })
	va := alloc(t, m, 4096)
	m.StoreF64(va, 1.0)
	m.LoadF64(va)     // L2 hit (store allocated in L2)
	m.LoadF64(va + 8) // L1 hit
	m.FlushVRange(va, 32)

	var kinds []TraceKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events (%v), want 4", len(events), kinds)
	}
	if events[0].Kind != TraceStore {
		t.Errorf("event 0 = %v", events[0])
	}
	if events[1].Kind != TraceLoad || events[1].Level != LevelL2 {
		t.Errorf("event 1 = %v", events[1])
	}
	if events[2].Kind != TraceLoad || events[2].Level != LevelL1 || events[2].Latency != 1 {
		t.Errorf("event 2 = %v", events[2])
	}
	if events[3].Kind != TraceFlush {
		t.Errorf("event 3 = %v", events[3])
	}
	// Cycle stamps are monotone.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Errorf("non-monotone cycles: %v then %v", events[i-1], events[i])
		}
	}
	// VAddr/PAddr plumbed through.
	if events[1].VAddr != va {
		t.Errorf("event VAddr = %v, want %v", events[1].VAddr, va)
	}
}

func TestTracerLevelMem(t *testing.T) {
	m := testMachine(t)
	var got *TraceEvent
	m.SetTracer(func(e TraceEvent) {
		if e.Kind == TraceLoad {
			got = &e
		}
	})
	va := alloc(t, m, 4096)
	m.LoadF64(va)
	if got == nil || got.Level != LevelMem || got.Latency < 30 {
		t.Errorf("cold load event = %+v", got)
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 4096)
	m.LoadF64(va) // must not panic with nil tracer
	m.SetTracer(func(TraceEvent) { t.Fatal("cleared tracer fired") })
	m.SetTracer(nil)
	m.LoadF64(va + 8)
}

func TestTraceEventStrings(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 5, Kind: TraceLoad, Level: LevelL1, VAddr: 0x1000, PAddr: 0x2000, Latency: 1},
		{Cycle: 6, Kind: TraceStore, VAddr: 0x1000, PAddr: addr.PAddr(1 << 30), Shadow: true},
		{Cycle: 7, Kind: TraceFlush, VAddr: 0x1000, PAddr: 0x2000},
	}
	for _, e := range events {
		s := e.String()
		if s == "" || !strings.Contains(s, "@") {
			t.Errorf("bad String: %q", s)
		}
	}
	if !strings.Contains(events[1].String(), "shadow") {
		t.Error("shadow flag not rendered")
	}
	if TraceKind(99).String() == "" || TraceLevel(99).String() == "" {
		t.Error("unknown enum Strings empty")
	}
}

func TestLoadLatencyHistogramPopulated(t *testing.T) {
	m := testMachine(t)
	va := alloc(t, m, 64<<10)
	for i := uint64(0); i < 4096; i++ {
		m.LoadF64(va + addr.VAddr(8*i))
	}
	h := &m.St.LoadLatency
	if h.Count != m.St.Loads {
		t.Fatalf("hist count %d != loads %d", h.Count, m.St.Loads)
	}
	if h.Total != m.St.LoadCycles {
		t.Fatalf("hist total %d != load cycles %d", h.Total, m.St.LoadCycles)
	}
	// The stream has both 1-cycle L1 hits and ~40-cycle memory fills.
	if h.Percentile(50) > 2 == false {
		t.Log("p50 =", h.Percentile(50))
	}
	if h.Max < 30 {
		t.Errorf("max latency %d implausibly low", h.Max)
	}
}
