package mc

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/obs"
	"impulse/internal/timeline"
)

// ReadLine services a bus read of one cache line (cfg.LineBytes) starting
// at line-aligned bus address p, arriving at the controller at time at.
// It returns the time the line's data is assembled and ready to be driven
// onto the bus. The caller (the machine) adds bus transfer time.
func (c *Controller) ReadLine(at timeline.Time, p addr.PAddr) (timeline.Time, error) {
	if uint64(p)&c.lineMask != 0 {
		return 0, fmt.Errorf("mc: unaligned line read at %v", p)
	}
	t0 := at + c.cfg.PipelineCycles
	if !c.IsShadow(p) {
		return c.readNormal(t0, p), nil
	}
	return c.readShadow(t0, p)
}

// readNormal is the non-remapped path: check the 2 KB SRAM prefetch cache,
// else access DRAM; with prefetching on, run the one-block-lookahead
// prefetcher (§2.2: "a 2K buffer for prefetching non-remapped data using a
// simple one-block lookahead prefetcher").
func (c *Controller) readNormal(t0 timeline.Time, p addr.PAddr) timeline.Time {
	la := uint64(p) >> c.lineShift
	ready := timeline.Time(0)
	if e := c.sramFind(la); e != nil {
		c.st.MCPrefetchHits++
		ready = maxTime(t0, e.readyAt)
		if c.h != nil {
			c.h.Span(c.track, "sram-hit", t0, ready)
		}
	} else {
		ready = c.dram.Read(t0, p)
		if c.h != nil {
			c.h.Span(c.track, "fill", t0, ready)
		}
	}
	if c.cfg.Prefetch {
		next := la + 1
		nextP := addr.PAddr(next << c.lineShift)
		if c.cfg.Layout.IsDRAM(nextP) && c.sramFind(next) == nil {
			// Prefetch issues behind the demand access (CPU priority).
			done := c.dram.Read(ready, nextP)
			c.sramInsert(bufEntry{lineAddr: next, readyAt: done, valid: true})
			c.st.MCPrefetches++
			if c.h != nil {
				c.h.Span(c.track, "prefetch", ready, done)
			}
		}
	}
	return ready
}

func (c *Controller) sramFind(lineAddr uint64) *bufEntry {
	for i := range c.sram {
		if c.sram[i].valid && c.sram[i].lineAddr == lineAddr {
			return &c.sram[i]
		}
	}
	return nil
}

func (c *Controller) sramInsert(e bufEntry) {
	c.sram[c.sramNext] = e
	c.sramNext = (c.sramNext + 1) % len(c.sram)
}

func (c *Controller) sramInvalidate(lineAddr uint64) {
	for i := range c.sram {
		if c.sram[i].valid && c.sram[i].lineAddr == lineAddr {
			c.sram[i].valid = false
		}
	}
}

// readShadow is the remapped path (Figure 3 flow b..g).
func (c *Controller) readShadow(t0 timeline.Time, p addr.PAddr) (timeline.Time, error) {
	ds := c.findDesc(p)
	if ds == nil {
		return 0, fmt.Errorf("mc: no descriptor covers shadow address %v", p)
	}
	c.st.ShadowReads++
	la := uint64(p) >> c.lineShift
	var ready timeline.Time
	if e := descBufFind(ds, la); e != nil {
		c.st.SDescPrefHits++
		ds.bufHits++
		ready = maxTime(t0, e.readyAt)
		if c.h != nil {
			c.h.Span(c.track, "sdesc-hit", t0, ready)
			c.h.Event(obs.SDescHit, t0)
		}
	} else {
		var err error
		ready, err = c.gather(t0, ds, p)
		if err != nil {
			return 0, err
		}
		ds.gathers++
		if c.h != nil {
			c.h.Span(c.track, "gather", t0, ready)
			c.h.Event(obs.SDescMiss, t0)
		}
	}
	if c.cfg.Prefetch {
		if err := c.descPrefetchNext(ds, la, ready); err != nil {
			return 0, err
		}
	}
	return ready, nil
}

// descPrefetchNext prefetches the next sequential shadow line into the
// descriptor's 256-byte buffer, issuing behind the demand access. Shadow
// regions are accessed sequentially by construction (the whole point of
// packing sparse data densely), so next-line lookahead is the right
// policy, and it is what hides the multi-access cost of a gather.
func (c *Controller) descPrefetchNext(ds *descState, la uint64, issue timeline.Time) error {
	next := la + 1
	nextP := addr.PAddr(next << c.lineShift)
	if !ds.d.Contains(nextP) || uint64(nextP)-uint64(ds.d.ShadowBase)+c.cfg.LineBytes > ds.d.Bytes {
		return nil
	}
	if descBufFind(ds, next) != nil {
		return nil
	}
	done, err := c.gather(issue, ds, nextP)
	if err != nil {
		// A prefetch that would fault (e.g. into an unmapped hole of a
		// recolored region) is simply dropped, as hardware would.
		return nil
	}
	ds.buf[ds.bufNext] = bufEntry{lineAddr: next, readyAt: done, valid: true}
	ds.bufNext = (ds.bufNext + 1) % len(ds.buf)
	c.st.SDescPrefetches++
	ds.prefetches++
	if c.h != nil {
		c.h.Span(c.track, "sdesc-prefetch", issue, done)
	}
	return nil
}

func descBufFind(ds *descState, lineAddr uint64) *bufEntry {
	for i := range ds.buf {
		if ds.buf[i].valid && ds.buf[i].lineAddr == lineAddr {
			return &ds.buf[i]
		}
	}
	return nil
}

// lineReq is one distinct element DRAM line a gather must read, with the
// time its translation is available.
type lineReq struct {
	line  addr.PAddr
	ready timeline.Time
}

// gather computes the timing of building one shadow cache line:
// AddrCalc per element, indirection-vector fetches (Gather), PgTbl
// translations (on-chip TLB, misses fetch a PTE from DRAM), then the
// element reads issued to the DRAM scheduler; finally line assembly.
// Runs once per shadow line — the scratch buffers keep it allocation-free.
func (c *Controller) gather(t0 timeline.Time, ds *descState, p addr.PAddr) (timeline.Time, error) {
	off := uint64(p) - uint64(ds.d.ShadowBase)
	n := c.cfg.LineBytes
	if off+n > ds.d.Bytes {
		n = ds.d.Bytes - off
	}
	pieces, err := ds.d.appendPieces(c.piecesBuf[:0], off, n, ds.vecFn)
	c.piecesBuf = pieces[:0]
	if err != nil {
		return 0, err
	}
	start := t0 + uint64(len(pieces))*c.cfg.AddrCalcCycles

	// Indirection-vector fetch: the controller reads vector entries from
	// DRAM. Entries for one shadow line are contiguous, so they occupy
	// one or two DRAM lines, which the descriptor caches across
	// consecutive gathers.
	if ds.d.Kind == Gather {
		start = c.fetchVector(start, ds, pieces)
	}

	// Translate each piece's pseudo-virtual page; collect distinct element
	// DRAM lines with the time their translation is available.
	reqs := c.reqsBuf[:0]
	addLine := func(line addr.PAddr, ready timeline.Time) {
		for i := range reqs {
			if reqs[i].line == line {
				if ready < reqs[i].ready {
					reqs[i].ready = ready
				}
				return
			}
		}
		reqs = append(reqs, lineReq{line, ready})
	}
	for _, pc := range pieces {
		pv, remain := pc.pv, pc.bytes
		for remain > 0 {
			tready, frame, err := c.translatePV(start, pv.PageNum())
			if err != nil {
				c.reqsBuf = reqs[:0]
				return 0, err
			}
			take := uint64(addr.PageSize) - pv.PageOff()
			if take > remain {
				take = remain
			}
			phys := frame<<addr.PageShift | pv.PageOff()
			first := phys >> c.lineShift
			last := (phys + take - 1) >> c.lineShift
			for l := first; l <= last; l++ {
				addLine(addr.PAddr(l<<c.lineShift), tready)
			}
			pv += addr.PVAddr(take)
			remain -= take
		}
	}
	c.reqsBuf = reqs[:0]

	// Issue the element reads. In-order issue follows request order; the
	// row-major ablation reorders for page locality.
	lines := c.linesBuf[:0]
	issueAt := start
	for _, r := range reqs {
		lines = append(lines, r.line)
		if r.ready > issueAt {
			issueAt = r.ready
		}
	}
	c.linesBuf = lines[:0]
	done := c.dram.ReadBatch(issueAt, lines, c.cfg.Order)
	c.st.ShadowDRAMReads += uint64(len(lines))
	return done + c.cfg.AssembleCycles, nil
}

// fetchVector charges the timing of reading the indirection-vector entries
// that the given pieces consult, with a 2-line cache per descriptor.
func (c *Controller) fetchVector(start timeline.Time, ds *descState, pieces []piece) timeline.Time {
	ready := start
	for _, pc := range pieces {
		if pc.vecIndex < 0 {
			continue
		}
		pv := ds.d.VecPV + addr.PVAddr(4*uint64(pc.vecIndex))
		tready, frame, err := c.translatePV(start, pv.PageNum())
		if err != nil {
			// Functional reader will have panicked already on truly
			// unmapped vectors; treat as no additional delay.
			continue
		}
		phys := frame<<addr.PageShift | pv.PageOff()
		line := phys >> c.lineShift
		if ds.vecLines[0] == line || ds.vecLines[1] == line {
			continue
		}
		done := c.dram.Read(maxTime(start, tready), addr.PAddr(line<<c.lineShift))
		c.st.ShadowDRAMReads++
		ds.vecLines[ds.vecNext] = line
		ds.vecNext = (ds.vecNext + 1) % len(ds.vecLines)
		if done > ready {
			ready = done
		}
	}
	return ready
}

// translatePV translates a pseudo-virtual page through the controller
// PgTbl: TLB hit is free (single-cycle, hidden in the pipeline); a miss
// fetches the PTE from the backing table in DRAM.
func (c *Controller) translatePV(at timeline.Time, pvpage uint64) (timeline.Time, uint64, error) {
	if frame, ok := c.pgtlb.Lookup(pvpage); ok {
		return at, frame, nil
	}
	frame, ok := c.backing.get(pvpage)
	if !ok {
		return 0, 0, fmt.Errorf("mc: pseudo-virtual page %#x unmapped", pvpage)
	}
	c.st.MCTLBMisses++
	pte := uint64(c.cfg.PgTblBase) + (pvpage*8)%c.cfg.PgTblBytes
	done := c.dram.Read(at, addr.PAddr(pte))
	c.pgtlb.Insert(pvpage, frame)
	return done, frame, nil
}

// WriteLine services a line write (an L2 write-back) at line-aligned bus
// address p. For shadow lines the controller scatters the data back
// through the remapping (the reverse of a gather); the returned time is
// when the last DRAM write has been issued — writes are posted, so the
// caller typically discards it.
func (c *Controller) WriteLine(at timeline.Time, p addr.PAddr) (timeline.Time, error) {
	t0 := at + c.cfg.PipelineCycles
	if !c.IsShadow(p) {
		c.sramInvalidate(uint64(p) >> c.lineShift)
		return c.dram.Write(t0, p), nil
	}
	ds := c.findDesc(p)
	if ds == nil {
		return 0, fmt.Errorf("mc: no descriptor covers shadow address %v", p)
	}
	// A store to a prefetched shadow line would make the buffered copy
	// stale: drop it.
	la := uint64(p) >> c.lineShift
	if e := descBufFind(ds, la); e != nil {
		e.valid = false
	}
	runs, err := c.ResolveInto(c.runsBuf[:0], p, c.lineSpan(ds, p))
	c.runsBuf = runs[:0]
	if err != nil {
		return 0, err
	}
	done := t0
	// A line holds few distinct element lines; a linear scan over a
	// reused slice beats a per-call map.
	seen := c.seenBuf[:0]
	for _, r := range runs {
		first := uint64(r.P) >> c.lineShift
		last := (uint64(r.P) + r.Bytes - 1) >> c.lineShift
	scan:
		for l := first; l <= last; l++ {
			lp := addr.PAddr(l << c.lineShift)
			for _, s := range seen {
				if s == lp {
					continue scan
				}
			}
			seen = append(seen, lp)
			if t := c.dram.Write(t0, lp); t > done {
				done = t
			}
		}
	}
	c.seenBuf = seen[:0]
	if c.h != nil {
		c.h.Span(c.track, "scatter", t0, done)
	}
	return done, nil
}

// lineSpan clamps a full line at p to the descriptor's region size.
func (c *Controller) lineSpan(ds *descState, p addr.PAddr) uint64 {
	off := uint64(p) - uint64(ds.d.ShadowBase)
	n := c.cfg.LineBytes
	if off+n > ds.d.Bytes {
		n = ds.d.Bytes - off
	}
	return n
}

func maxTime(a, b timeline.Time) timeline.Time {
	if a > b {
		return a
	}
	return b
}
