// Package mc implements the Impulse memory controller — the paper's
// primary hardware contribution (§2.2, Figure 3).
//
// The controller sits between the system bus and the DRAMs. A bus address
// (a) is either real physical (passed straight to the DRAM scheduler, with
// no added latency beyond the fixed pipeline — a design goal of the paper)
// or shadow. Shadow addresses select a matching shadow descriptor (b),
// whose remapping function is applied by a simple ALU (AddrCalc) to
// produce pseudo-virtual addresses (c), which a controller page table
// (PgTbl — an on-chip TLB backed by main memory) translates to real
// physical addresses (d,e). The DRAM scheduler issues the accesses (f),
// data returns to the descriptor (g), which assembles a cache line and
// sends it over the bus (h).
//
// Functional resolution (which physical byte a shadow byte denotes) and
// timing (when the assembled line is ready) are deliberately separated:
// Resolve is a pure function used by the machine to move actual data, and
// it is what the remapping property tests exercise; ReadLine/WriteLine
// compute timing and traffic.
package mc

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/bitutil"
)

// RemapKind identifies a shadow descriptor's remapping function (§2.3).
type RemapKind int

const (
	// Direct maps shadow pages straight to physical pages (no-copy page
	// recoloring, superpage formation).
	Direct RemapKind = iota
	// Strided maps shadow offset o to pseudo-virtual address
	// PVBase + (o/ObjBytes)*StrideBytes + o%ObjBytes: a dense shadow image
	// of a strided structure (tile remapping).
	Strided
	// Gather maps shadow offset o through an indirection vector:
	// PVBase + StrideBytes*vec[o/ObjBytes] + o%ObjBytes, with vec a
	// 32-bit-integer array at VecPV in pseudo-virtual space. The vector
	// elements are fetched by the controller, not the CPU — that is where
	// Impulse's "fewer memory instructions issued" advantage comes from.
	Gather
)

func (k RemapKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Strided:
		return "strided"
	case Gather:
		return "gather"
	default:
		return fmt.Sprintf("RemapKind(%d)", int(k))
	}
}

// Descriptor is a shadow-space descriptor (SDesc). The OS downloads one
// per active remapping; the paper models eight.
type Descriptor struct {
	Kind       RemapKind
	ShadowBase addr.PAddr  // page-aligned base of the shadow region
	Bytes      uint64      // size of the shadow region (page-rounded)
	PVBase     addr.PVAddr // base of the target structure in pseudo-virtual space

	// ObjBytes is the remapped object size: the granule that moves as a
	// unit. Must be a power of two — the paper's restriction that avoids
	// a divider in the controller ALU. For Gather it is the element size.
	ObjBytes uint64
	// StrideBytes is the pseudo-virtual distance between consecutive
	// objects (Strided) or the scale applied to vector entries (Gather).
	StrideBytes uint64
	// VecPV is the pseudo-virtual base of the indirection vector
	// (Gather only; entries are little-endian uint32).
	VecPV addr.PVAddr
}

// Validate checks descriptor invariants.
func (d *Descriptor) Validate() error {
	if d.ShadowBase.PageOff() != 0 {
		return fmt.Errorf("mc: descriptor shadow base %v not page aligned", d.ShadowBase)
	}
	if d.Bytes == 0 {
		return fmt.Errorf("mc: descriptor with zero size")
	}
	switch d.Kind {
	case Direct:
	case Strided, Gather:
		if !bitutil.IsPow2(d.ObjBytes) {
			return fmt.Errorf("mc: %v object size %d not a power of two (hardware has no divider)",
				d.Kind, d.ObjBytes)
		}
		if d.StrideBytes == 0 {
			return fmt.Errorf("mc: %v descriptor with zero stride", d.Kind)
		}
	default:
		return fmt.Errorf("mc: unknown remap kind %v", d.Kind)
	}
	return nil
}

// Contains reports whether shadow address p falls in this descriptor's
// region.
func (d *Descriptor) Contains(p addr.PAddr) bool {
	return p >= d.ShadowBase && uint64(p) < uint64(d.ShadowBase)+d.Bytes
}

// piece is one contiguous pseudo-virtual run that a shadow range maps to.
type piece struct {
	pv    addr.PVAddr
	bytes uint64
	// vecIndex is the indirection-vector entry consulted (Gather only;
	// -1 otherwise). Used for vector-fetch timing.
	vecIndex int64
}

// appendPieces appends the pseudo-virtual pieces for the shadow byte
// range [off, off+n) relative to the descriptor base onto dst. vec
// supplies indirection-vector entries for Gather descriptors (it is the
// functional read of vector memory; timing is charged separately).
// Append-style so hot callers can reuse a scratch buffer: the gather
// timing path runs once per shadow line and must not allocate.
func (d *Descriptor) appendPieces(dst []piece, off, n uint64, vec func(i uint64) uint32) ([]piece, error) {
	if off+n > d.Bytes {
		return nil, fmt.Errorf("mc: shadow range [%d,%d) outside descriptor (%d bytes)", off, off+n, d.Bytes)
	}
	switch d.Kind {
	case Direct:
		return append(dst, piece{pv: d.PVBase + addr.PVAddr(off), bytes: n, vecIndex: -1}), nil
	case Strided:
		return d.appendObjectPieces(dst, off, n, func(i uint64) addr.PVAddr {
			return d.PVBase + addr.PVAddr(i*d.StrideBytes)
		}), nil
	case Gather:
		if vec == nil {
			return nil, fmt.Errorf("mc: gather descriptor needs an indirection vector reader")
		}
		return d.appendObjectPieces(dst, off, n, func(i uint64) addr.PVAddr {
			return d.PVBase + addr.PVAddr(uint64(vec(i))*d.StrideBytes)
		}), nil
	default:
		return nil, fmt.Errorf("mc: unknown remap kind %v", d.Kind)
	}
}

func (d *Descriptor) appendObjectPieces(dst []piece, off, n uint64, objPV func(i uint64) addr.PVAddr) []piece {
	objShift := bitutil.Log2(d.ObjBytes)
	objMask := d.ObjBytes - 1
	for n > 0 {
		i := off >> objShift
		inObj := off & objMask
		take := d.ObjBytes - inObj
		if take > n {
			take = n
		}
		vi := int64(-1)
		if d.Kind == Gather {
			vi = int64(i)
		}
		dst = append(dst, piece{pv: objPV(i) + addr.PVAddr(inObj), bytes: take, vecIndex: vi})
		off += take
		n -= take
	}
	return dst
}
