package mc

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/bitutil"
	"impulse/internal/dram"
	"impulse/internal/membuf"
	"impulse/internal/obs"
	"impulse/internal/stats"
	"impulse/internal/timeline"
	"impulse/internal/tlb"
)

// NumDescriptors is the number of shadow descriptors the controller holds.
// "currently we model eight despite needing no more than three for the
// applications we simulated" (§2.2).
const NumDescriptors = 8

// Config parameterizes the controller.
type Config struct {
	Layout addr.Layout

	PipelineCycles uint64 // fixed controller latency on every request
	AddrCalcCycles uint64 // ALU cycles per remapped element address
	AssembleCycles uint64 // cycles to assemble a gathered line for the bus

	PgTblEntries int        // on-chip PgTbl TLB entries
	PgTblBase    addr.PAddr // DRAM region backing the controller page table
	PgTblBytes   uint64

	SRAMBytes    uint64 // non-remapped prefetch cache ("2K buffer", §2.2)
	DescBufBytes uint64 // per-descriptor prefetch buffer ("256-byte", §2.2)
	LineBytes    uint64 // cache-line size served to the bus (the L2 line)

	Prefetch bool       // controller prefetching (shadow and non-shadow)
	Order    dram.Order // DRAM scheduling policy for gathers
}

// DefaultConfig returns the paper-calibrated controller parameters.
// PgTblBase/PgTblBytes place the backing page table in the top megabyte of
// a 256 MB DRAM; the system layer (internal/core) reserves those frames.
func DefaultConfig() Config {
	l := addr.DefaultLayout()
	const ptBytes = 1 << 20
	return Config{
		Layout:         l,
		PipelineCycles: 2,
		AddrCalcCycles: 1,
		AssembleCycles: 2,
		PgTblEntries:   64,
		PgTblBase:      addr.PAddr(l.DRAMBytes - ptBytes),
		PgTblBytes:     ptBytes,
		SRAMBytes:      2 << 10,
		DescBufBytes:   256,
		LineBytes:      128,
		Prefetch:       false,
		Order:          dram.InOrder,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if !bitutil.IsPow2(c.LineBytes) || c.LineBytes == 0 {
		return fmt.Errorf("mc: line size %d not a power of two", c.LineBytes)
	}
	if c.SRAMBytes < c.LineBytes || c.DescBufBytes < c.LineBytes {
		return fmt.Errorf("mc: prefetch buffers smaller than a line")
	}
	if c.PgTblEntries <= 0 {
		return fmt.Errorf("mc: PgTbl must have entries")
	}
	if c.PgTblBytes == 0 || uint64(c.PgTblBase)+c.PgTblBytes > c.Layout.DRAMBytes {
		return fmt.Errorf("mc: backing page table outside DRAM")
	}
	return nil
}

// bufEntry is one prefetched line (in the SRAM or a descriptor buffer).
type bufEntry struct {
	lineAddr uint64 // bus line address (p / LineBytes)
	readyAt  timeline.Time
	valid    bool
}

type descState struct {
	d        Descriptor
	active   bool
	buf      []bufEntry // shadow prefetch buffer (DescBufBytes/LineBytes slots)
	bufNext  int        // FIFO cursor
	vecLines []uint64   // cached indirection-vector DRAM line addresses
	vecNext  int

	// vecFn is the functional indirection-vector reader (Gather only;
	// nil otherwise), built once at SetDescriptor so the per-access
	// resolve/gather paths don't allocate a closure per call.
	vecFn func(i uint64) uint32

	// Per-descriptor activity, exposed through the obs registry. Plain
	// increments kept whether or not a hub is attached: one add per
	// shadow-line event is cheaper than a branch is worth.
	gathers    uint64 // demand lines built by gathering from DRAM
	bufHits    uint64 // demand lines served from the prefetch buffer
	prefetches uint64 // prefetch gathers launched
}

// Controller is the Impulse memory controller.
type Controller struct {
	cfg   Config
	dram  *dram.DRAM
	mem   *membuf.Memory
	st    *stats.MemStats
	descs [NumDescriptors]descState

	// lineShift/lineMask memoize the power-of-two LineBytes for the
	// per-access line arithmetic in timing.go.
	lineShift uint
	lineMask  uint64

	pgtlb   *tlb.TLB
	backing pvMap // pvpage -> frame (contents live in DRAM at PgTblBase)

	sram     []bufEntry
	sramNext int

	// Scratch buffers for the per-line resolve/gather paths. A gather
	// runs for every shadow cache line; reusing these keeps that path
	// allocation-free. Single-threaded like the rest of the controller.
	piecesBuf []piece
	reqsBuf   []lineReq
	linesBuf  []addr.PAddr
	runsBuf   []Run
	seenBuf   []addr.PAddr

	// opRec observes OS-interface operations (nil = not recording);
	// trace recording uses it to capture descriptor setup and backing
	// page-table downloads.
	opRec OpRecorder

	h     *obs.Hub
	track obs.TrackID
}

// OpRecorder observes the controller's OS-interface operations, for
// trace recording. Callbacks fire after the operation succeeds.
type OpRecorder interface {
	RecMapPV(pvpage, frame uint64)
	RecSetDescriptor(slot int, d Descriptor)
	RecClearDescriptor(slot int)
	RecMCInvalidateTLB()
	RecMCInvalidateBuffers()
}

// SetOpRecorder attaches (or detaches, with nil) an OS-op recorder.
func (c *Controller) SetOpRecorder(r OpRecorder) { c.opRec = r }

// New builds a controller attached to the given DRAM model and simulated
// memory (used for functional indirection-vector reads). st may be nil.
func New(cfg Config, d *dram.DRAM, mem *membuf.Memory, st *stats.MemStats) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = &stats.MemStats{}
	}
	c := &Controller{
		cfg:       cfg,
		dram:      d,
		mem:       mem,
		st:        st,
		lineShift: bitutil.Log2(cfg.LineBytes),
		lineMask:  cfg.LineBytes - 1,
		pgtlb:     tlb.New(cfg.PgTblEntries),
		sram:      make([]bufEntry, cfg.SRAMBytes/cfg.LineBytes),
	}
	c.backing.init()
	for i := range c.descs {
		c.descs[i].buf = make([]bufEntry, cfg.DescBufBytes/cfg.LineBytes)
		c.descs[i].vecLines = make([]uint64, 2)
		for j := range c.descs[i].vecLines {
			c.descs[i].vecLines[j] = ^uint64(0)
		}
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// AttachObs wires the controller into an observability hub: an "mc" trace
// track (fills, gathers, buffer hits, prefetch launches) and registry
// gauges for each descriptor slot's activity, so the effectiveness of the
// paper's 256-byte per-descriptor prefetch buffers is directly readable.
func (c *Controller) AttachObs(h *obs.Hub) {
	c.h = h
	c.track = h.Track("mc")
	r := h.Reg()
	for i := range c.descs {
		ds := &c.descs[i]
		name := fmt.Sprintf("mc.desc%d.", i)
		r.Gauge(name+"active", func() uint64 {
			if ds.active {
				return 1
			}
			return 0
		})
		r.Counter(name+"gathers", &ds.gathers)
		r.Counter(name+"buf_hits", &ds.bufHits)
		r.Counter(name+"prefetches", &ds.prefetches)
	}
}

// SetPrefetch enables or disables controller prefetching.
func (c *Controller) SetPrefetch(on bool) { c.cfg.Prefetch = on }

// --- OS interface -----------------------------------------------------

// SetDescriptor installs d into the given slot (0..NumDescriptors-1).
func (c *Controller) SetDescriptor(slot int, d Descriptor) error {
	if slot < 0 || slot >= NumDescriptors {
		return fmt.Errorf("mc: descriptor slot %d out of range", slot)
	}
	if err := d.Validate(); err != nil {
		return err
	}
	if !c.cfg.Layout.IsShadow(d.ShadowBase) ||
		!c.cfg.Layout.IsShadow(addr.PAddr(uint64(d.ShadowBase)+d.Bytes-1)) {
		return fmt.Errorf("mc: descriptor region %v+%d outside shadow space", d.ShadowBase, d.Bytes)
	}
	for i := range c.descs {
		if i != slot && c.descs[i].active && overlaps(&c.descs[i].d, &d) {
			return fmt.Errorf("mc: descriptor overlaps slot %d", i)
		}
	}
	c.descs[slot] = descState{
		d:        d,
		active:   true,
		buf:      make([]bufEntry, c.cfg.DescBufBytes/c.cfg.LineBytes),
		vecLines: []uint64{^uint64(0), ^uint64(0)},
	}
	if d.Kind == Gather {
		c.descs[slot].vecFn = c.makeVecFn(&c.descs[slot])
	}
	if c.opRec != nil {
		c.opRec.RecSetDescriptor(slot, d)
	}
	return nil
}

// ClearDescriptor deactivates a slot.
func (c *Controller) ClearDescriptor(slot int) {
	if slot >= 0 && slot < NumDescriptors {
		c.descs[slot].active = false
		if c.opRec != nil {
			c.opRec.RecClearDescriptor(slot)
		}
	}
}

// FreeSlot returns the index of an inactive descriptor slot.
func (c *Controller) FreeSlot() (int, error) {
	for i := range c.descs {
		if !c.descs[i].active {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mc: all %d shadow descriptors in use", NumDescriptors)
}

func overlaps(a, b *Descriptor) bool {
	aLo, aHi := uint64(a.ShadowBase), uint64(a.ShadowBase)+a.Bytes
	bLo, bHi := uint64(b.ShadowBase), uint64(b.ShadowBase)+b.Bytes
	return aLo < bHi && bLo < aHi
}

// MapPV installs pvpage -> frame in the controller's backing page table
// (§2.1 step 4: "The OS downloads to the memory controller a set of page
// mappings for pseudo-virtual space").
func (c *Controller) MapPV(pvpage, frame uint64) {
	c.backing.put(pvpage, frame)
	c.pgtlb.Invalidate(pvpage)
	if c.opRec != nil {
		c.opRec.RecMapPV(pvpage, frame)
	}
}

// MapPVRange maps consecutive pseudo-virtual pages starting at the page of
// pvBase to the given frames.
func (c *Controller) MapPVRange(pvBase addr.PVAddr, frames []uint64) {
	base := pvBase.PageNum()
	for i, f := range frames {
		c.MapPV(base+uint64(i), f)
	}
}

// InvalidateTLB drops all cached PgTbl translations.
func (c *Controller) InvalidateTLB() {
	if c.opRec != nil {
		c.opRec.RecMCInvalidateTLB()
	}
	c.pgtlb.InvalidateAll()
}

// InvalidateBuffers drops all prefetched data held at the controller (the
// non-remapped SRAM and every descriptor buffer). The OS issues this as
// part of the consistency protocol when remapped source data changes
// under an active descriptor (e.g. the multiplicand vector of conjugate
// gradient is rewritten between iterations).
func (c *Controller) InvalidateBuffers() {
	if c.opRec != nil {
		c.opRec.RecMCInvalidateBuffers()
	}
	for i := range c.sram {
		c.sram[i].valid = false
	}
	for i := range c.descs {
		for j := range c.descs[i].buf {
			c.descs[i].buf[j].valid = false
		}
	}
}

// --- Functional resolution --------------------------------------------

// Run is a contiguous physical byte range.
type Run struct {
	P     addr.PAddr
	Bytes uint64
}

// Resolve maps the shadow byte range [p, p+n) to its physical runs. It is
// the pure remapping function: no timing, no state changes. The machine
// uses it to move actual data for loads/stores to shadow space, and the
// property tests use it as the remapping oracle.
func (c *Controller) Resolve(p addr.PAddr, n uint64) ([]Run, error) {
	return c.ResolveInto(nil, p, n)
}

// ResolveInto is Resolve appending into dst, so per-access callers can
// reuse a scratch buffer (pass dst[:0]) and keep the shadow load/store
// data path allocation-free. The result aliases dst's backing array.
func (c *Controller) ResolveInto(dst []Run, p addr.PAddr, n uint64) ([]Run, error) {
	ds := c.findDesc(p)
	if ds == nil {
		return nil, fmt.Errorf("mc: no descriptor covers shadow address %v", p)
	}
	off := uint64(p) - uint64(ds.d.ShadowBase)
	pieces, err := ds.d.appendPieces(c.piecesBuf[:0], off, n, ds.vecFn)
	c.piecesBuf = pieces[:0]
	if err != nil {
		return nil, err
	}
	for _, pc := range pieces {
		// A piece may cross pseudo-virtual pages.
		pv, remain := pc.pv, pc.bytes
		for remain > 0 {
			frame, ok := c.backing.get(pv.PageNum())
			if !ok {
				return nil, fmt.Errorf("mc: pseudo-virtual page %#x unmapped", pv.PageNum())
			}
			take := uint64(addr.PageSize) - pv.PageOff()
			if take > remain {
				take = remain
			}
			dst = append(dst, Run{P: addr.PAddr(frame<<addr.PageShift | pv.PageOff()), Bytes: take})
			pv += addr.PVAddr(take)
			remain -= take
		}
	}
	return dst, nil
}

// makeVecFn builds the functional indirection-vector reader for a gather
// descriptor: entry i is a uint32 at VecPV + 4i, translated through the
// backing page table and read from simulated memory.
func (c *Controller) makeVecFn(ds *descState) func(i uint64) uint32 {
	return func(i uint64) uint32 {
		pv := ds.d.VecPV + addr.PVAddr(4*i)
		frame, ok := c.backing.get(pv.PageNum())
		if !ok {
			panic(fmt.Sprintf("mc: indirection vector page %#x unmapped", pv.PageNum()))
		}
		return c.mem.Load32(addr.PAddr(frame<<addr.PageShift | pv.PageOff()))
	}
}

func (c *Controller) findDesc(p addr.PAddr) *descState {
	for i := range c.descs {
		if c.descs[i].active && c.descs[i].d.Contains(p) {
			return &c.descs[i]
		}
	}
	return nil
}

// IsShadow reports whether p is a shadow address under this controller's
// layout.
func (c *Controller) IsShadow(p addr.PAddr) bool { return c.cfg.Layout.IsShadow(p) }

// CoversLine reports whether a line fill starting at line-aligned address
// p would be serviceable: either p is ordinary physical memory, or an
// active descriptor covers it. Prefetchers consult this to avoid running
// off the end of a remapped region (whose shadow pages are mapped at page
// granularity but remapped only up to the structure's exact size).
func (c *Controller) CoversLine(p addr.PAddr) bool {
	if !c.IsShadow(p) {
		return true
	}
	ds := c.findDesc(p)
	return ds != nil && uint64(p)-uint64(ds.d.ShadowBase) < ds.d.Bytes
}

// --- Pseudo-virtual memory images ---------------------------------------

// pvWalk resolves the pseudo-virtual range [pv, pv+n) through the backing
// page table and calls fn for each contiguous physical run.
func (c *Controller) pvWalk(pv addr.PVAddr, n uint64, fn func(p addr.PAddr, bytes uint64)) error {
	for n > 0 {
		frame, ok := c.backing.get(pv.PageNum())
		if !ok {
			return fmt.Errorf("mc: pseudo-virtual page %#x unmapped", pv.PageNum())
		}
		take := uint64(addr.PageSize) - pv.PageOff()
		if take > n {
			take = n
		}
		fn(addr.PAddr(frame<<addr.PageShift|pv.PageOff()), take)
		pv += addr.PVAddr(take)
		n -= take
	}
	return nil
}

// ReadPVImage copies n bytes of simulated memory starting at pseudo-
// virtual address pv, resolved through the backing page table. Trace
// recording uses it to snapshot indirection vectors: gather timing reads
// vector values from memory, so a replay that skips functional stores
// must restore this image first (WritePVImage) for the gathered line
// addresses — and hence DRAM timing — to come out identical.
func (c *Controller) ReadPVImage(pv addr.PVAddr, n uint64) ([]byte, error) {
	out := make([]byte, 0, n)
	err := c.pvWalk(pv, n, func(p addr.PAddr, bytes uint64) {
		out = out[:len(out)+int(bytes)]
		c.mem.ReadBytes(p, out[uint64(len(out))-bytes:])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WritePVImage writes img into simulated memory at pseudo-virtual
// address pv (the inverse of ReadPVImage, used on trace replay).
func (c *Controller) WritePVImage(pv addr.PVAddr, img []byte) error {
	off := uint64(0)
	return c.pvWalk(pv, uint64(len(img)), func(p addr.PAddr, bytes uint64) {
		c.mem.WriteBytes(p, img[off:off+bytes])
		off += bytes
	})
}
