package mc

import (
	"testing"
	"testing/quick"

	"impulse/internal/addr"
)

// Property: for any valid strided descriptor and in-bounds range, the
// pieces returned by pseudoVirtual cover exactly the requested bytes, in
// order, with no piece crossing an object boundary.
func TestQuickPiecesCoverRange(t *testing.T) {
	f := func(objShift, strideMul uint8, offRaw, nRaw uint16) bool {
		objBytes := uint64(1) << (objShift%6 + 2) // 4..128
		stride := objBytes * (uint64(strideMul%7) + 1)
		d := Descriptor{
			Kind: Strided, ShadowBase: 1 << 30, Bytes: 1 << 16,
			PVBase: 0x5000, ObjBytes: objBytes, StrideBytes: stride,
		}
		off := uint64(offRaw) % (d.Bytes - 1)
		n := uint64(nRaw)%512 + 1
		if off+n > d.Bytes {
			n = d.Bytes - off
		}
		pieces, err := d.appendPieces(nil, off, n, nil)
		if err != nil {
			return false
		}
		var covered uint64
		cur := off
		for _, pc := range pieces {
			if pc.bytes == 0 {
				return false
			}
			// Piece must match the object math at its starting offset.
			i := cur / objBytes
			inObj := cur % objBytes
			wantPV := d.PVBase + addr.PVAddr(i*stride+inObj)
			if pc.pv != wantPV {
				return false
			}
			// No piece crosses an object boundary.
			if inObj+pc.bytes > objBytes {
				return false
			}
			covered += pc.bytes
			cur += pc.bytes
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: out-of-bounds ranges are rejected, never silently clamped.
func TestQuickPiecesBounds(t *testing.T) {
	d := Descriptor{
		Kind: Strided, ShadowBase: 1 << 30, Bytes: 4096,
		PVBase: 0, ObjBytes: 8, StrideBytes: 64,
	}
	f := func(off uint16, n uint16) bool {
		o, nn := uint64(off), uint64(n)+1
		_, err := d.appendPieces(nil, o, nn, nil)
		if o+nn > d.Bytes {
			return err != nil
		}
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Resolve is consistent with itself — resolving a range equals
// concatenating the resolutions of its halves.
func TestQuickResolveComposes(t *testing.T) {
	r := newRig(t, false)
	d := Descriptor{
		Kind: Strided, ShadowBase: 1 << 30, Bytes: 8192,
		PVBase: 0, ObjBytes: 16, StrideBytes: 96,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 64)
	flatten := func(runs []Run) []byte {
		var out []byte
		for _, run := range runs {
			for i := uint64(0); i < run.Bytes; i++ {
				out = append(out, byte(run.P+addr.PAddr(i)), byte((run.P+addr.PAddr(i))>>8),
					byte((run.P+addr.PAddr(i))>>16), byte((run.P+addr.PAddr(i))>>24))
			}
		}
		return out
	}
	f := func(offRaw, nRaw, splitRaw uint16) bool {
		off := uint64(offRaw) % 8000
		n := uint64(nRaw)%128 + 2
		if off+n > d.Bytes {
			n = d.Bytes - off
		}
		split := uint64(splitRaw)%(n-1) + 1
		whole, err := r.c.Resolve(d.ShadowBase+addr.PAddr(off), n)
		if err != nil {
			return false
		}
		left, err := r.c.Resolve(d.ShadowBase+addr.PAddr(off), split)
		if err != nil {
			return false
		}
		right, err := r.c.Resolve(d.ShadowBase+addr.PAddr(off+split), n-split)
		if err != nil {
			return false
		}
		a := flatten(whole)
		b := append(flatten(left), flatten(right)...)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// WriteLine on a partial tail line must scatter exactly the descriptor's
// remaining bytes, not a full line.
func TestWriteLinePartialTail(t *testing.T) {
	r := newRig(t, false)
	// 3 objects of 8 bytes: descriptor is 24 bytes, well under a line.
	d := Descriptor{
		Kind: Strided, ShadowBase: 1 << 30, Bytes: 24,
		PVBase: 0, ObjBytes: 8, StrideBytes: 4096,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 3)
	writes := r.st.DRAMWrites
	if _, err := r.c.WriteLine(0, d.ShadowBase); err != nil {
		t.Fatal(err)
	}
	// 3 objects on 3 distinct pages -> exactly 3 DRAM line writes.
	if got := r.st.DRAMWrites - writes; got != 3 {
		t.Errorf("partial-tail writeback issued %d DRAM writes, want 3", got)
	}
}

// ReadLine at exactly the descriptor boundary line clamps; past it fails.
func TestReadLineBoundary(t *testing.T) {
	r := newRig(t, false)
	d := Descriptor{
		Kind: Strided, ShadowBase: 1 << 30, Bytes: 200, // not line-aligned
		PVBase: 0, ObjBytes: 8, StrideBytes: 64,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 4)
	if _, err := r.c.ReadLine(0, d.ShadowBase+128); err != nil {
		t.Errorf("tail line read failed: %v", err)
	}
	if _, err := r.c.ReadLine(0, d.ShadowBase+256); err == nil {
		t.Error("read past descriptor end succeeded")
	}
	if r.c.CoversLine(d.ShadowBase+128) != true {
		t.Error("CoversLine rejected the tail line")
	}
	if r.c.CoversLine(d.ShadowBase+256) != false {
		t.Error("CoversLine accepted a line past the end")
	}
}
