package mc

// pvMap maps pseudo-virtual page number -> backing frame without Go map
// hashing on the gather hot path: ResolveInto and the indirection-vector
// reader consult the backing page table once per gathered element, so
// the lookup cost multiplies across every shadow access. Open addressing
// with linear probing and Fibonacci hashing; grow-only (the backing
// table is only ever extended by MapPV), growth at half load.
type pvMap struct {
	slots []pvSlot
	shift uint // 64 - log2(len(slots))
	n     int
}

type pvSlot struct {
	key  uint64
	val  uint64
	used bool
}

const pvMinSlots = 64

func (t *pvMap) init() {
	t.slots = make([]pvSlot, pvMinSlots)
	t.shift = 64 - 6
	t.n = 0
}

func (t *pvMap) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *pvMap) get(key uint64) (uint64, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
	}
}

func (t *pvMap) put(key, val uint64) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = pvSlot{key: key, val: val, used: true}
			t.n++
			return
		}
		if s.key == key {
			s.val = val
			return
		}
	}
}

func (t *pvMap) grow() {
	old := t.slots
	t.slots = make([]pvSlot, 2*len(old))
	t.shift--
	t.n = 0
	for i := range old {
		if old[i].used {
			t.put(old[i].key, old[i].val)
		}
	}
}
