package mc

import (
	"testing"
	"testing/quick"

	"impulse/internal/addr"
	"impulse/internal/dram"
	"impulse/internal/membuf"
	"impulse/internal/stats"
)

// testRig wires a controller to a small DRAM and memory.
type testRig struct {
	c   *Controller
	mem *membuf.Memory
	st  *stats.MemStats
	cfg Config
}

func newRig(t *testing.T, prefetch bool) *testRig {
	t.Helper()
	st := &stats.MemStats{}
	layout := addr.Layout{DRAMBytes: 4 << 20, ShadowBase: 1 << 30, ShadowBytes: 64 << 20}
	mem := membuf.New(layout.DRAMFrames())
	d, err := dram.New(dram.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Layout = layout
	cfg.PgTblBase = addr.PAddr(layout.DRAMBytes - cfg.PgTblBytes)
	cfg.Prefetch = prefetch
	c, err := New(cfg, d, mem, st)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{c: c, mem: mem, st: st, cfg: cfg}
}

// identityMap maps pseudo-virtual pages [pvBase, pvBase+pages) to the
// frames of the same numbers offset by frameBase.
func (r *testRig) identityMap(pvBase addr.PVAddr, frameBase, pages uint64) {
	frames := make([]uint64, pages)
	for i := range frames {
		frames[i] = frameBase + uint64(i)
	}
	r.c.MapPVRange(pvBase, frames)
}

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{Kind: Strided, ShadowBase: 1 << 30, Bytes: 4096, ObjBytes: 8, StrideBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Descriptor{
		{Kind: Strided, ShadowBase: (1 << 30) + 1, Bytes: 4096, ObjBytes: 8, StrideBytes: 64},
		{Kind: Strided, ShadowBase: 1 << 30, Bytes: 0, ObjBytes: 8, StrideBytes: 64},
		{Kind: Strided, ShadowBase: 1 << 30, Bytes: 4096, ObjBytes: 12, StrideBytes: 64},
		{Kind: Strided, ShadowBase: 1 << 30, Bytes: 4096, ObjBytes: 8, StrideBytes: 0},
		{Kind: Gather, ShadowBase: 1 << 30, Bytes: 4096, ObjBytes: 9, StrideBytes: 8},
		{Kind: RemapKind(99), ShadowBase: 1 << 30, Bytes: 4096},
	}
	for i, d := range cases {
		if d.Validate() == nil {
			t.Errorf("case %d: invalid descriptor accepted: %+v", i, d)
		}
	}
}

func TestSetDescriptorChecks(t *testing.T) {
	r := newRig(t, false)
	d := Descriptor{Kind: Direct, ShadowBase: 1 << 30, Bytes: 8192, PVBase: 0}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	// Overlapping region in another slot.
	d2 := d
	d2.ShadowBase += 4096
	if err := r.c.SetDescriptor(1, d2); err == nil {
		t.Error("overlapping descriptor accepted")
	}
	// Same slot may be replaced.
	if err := r.c.SetDescriptor(0, d2); err != nil {
		t.Errorf("replacing own slot failed: %v", err)
	}
	// Region outside shadow space.
	d3 := Descriptor{Kind: Direct, ShadowBase: 0x1000, Bytes: 4096}
	if err := r.c.SetDescriptor(2, d3); err == nil {
		t.Error("non-shadow descriptor accepted")
	}
	if err := r.c.SetDescriptor(-1, d); err == nil {
		t.Error("negative slot accepted")
	}
	if err := r.c.SetDescriptor(NumDescriptors, d); err == nil {
		t.Error("slot beyond range accepted")
	}
}

func TestFreeSlotExhaustion(t *testing.T) {
	r := newRig(t, false)
	for i := 0; i < NumDescriptors; i++ {
		slot, err := r.c.FreeSlot()
		if err != nil {
			t.Fatal(err)
		}
		d := Descriptor{Kind: Direct, ShadowBase: addr.PAddr(1<<30 + i*8192), Bytes: 4096}
		if err := r.c.SetDescriptor(slot, d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.c.FreeSlot(); err == nil {
		t.Error("ninth descriptor allocated")
	}
	r.c.ClearDescriptor(3)
	if slot, err := r.c.FreeSlot(); err != nil || slot != 3 {
		t.Errorf("FreeSlot after clear = %d, %v", slot, err)
	}
}

func TestResolveDirect(t *testing.T) {
	r := newRig(t, false)
	// Shadow page 0 -> frame 7, shadow page 1 -> frame 3 (recoloring).
	d := Descriptor{Kind: Direct, ShadowBase: 1 << 30, Bytes: 2 * addr.PageSize, PVBase: 0x10000000}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.c.MapPVRange(d.PVBase, []uint64{7, 3})
	runs, err := r.c.Resolve(d.ShadowBase+0x123, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].P != addr.PAddr(7<<addr.PageShift|0x123) || runs[0].Bytes != 8 {
		t.Errorf("direct resolve = %+v", runs)
	}
	// Second page.
	runs, err = r.c.Resolve(d.ShadowBase+addr.PAddr(addr.PageSize)+4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].P != addr.PAddr(3<<addr.PageShift|4) {
		t.Errorf("direct resolve page 2 = %+v", runs)
	}
	// Page-crossing range splits into two runs.
	runs, err = r.c.Resolve(d.ShadowBase+addr.PAddr(addr.PageSize)-4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Bytes != 4 || runs[1].Bytes != 4 {
		t.Errorf("page-crossing resolve = %+v", runs)
	}
}

func TestResolveStrided(t *testing.T) {
	r := newRig(t, false)
	// Objects of 8 bytes at stride 64: the diagonal of a matrix with
	// 64-byte rows (Figure 1).
	d := Descriptor{
		Kind: Strided, ShadowBase: 1 << 30, Bytes: addr.PageSize,
		PVBase: 0, ObjBytes: 8, StrideBytes: 64,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 16)
	for k := uint64(0); k < 20; k++ {
		runs, err := r.c.Resolve(d.ShadowBase+addr.PAddr(8*k), 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 1 || runs[0].P != addr.PAddr(64*k) || runs[0].Bytes != 8 {
			t.Fatalf("strided resolve k=%d: %+v", k, runs)
		}
	}
	// Unaligned intra-object access.
	runs, _ := r.c.Resolve(d.ShadowBase+addr.PAddr(8*3+5), 3)
	if len(runs) != 1 || runs[0].P != addr.PAddr(64*3+5) {
		t.Errorf("intra-object resolve = %+v", runs)
	}
	// Access spanning two objects.
	runs, _ = r.c.Resolve(d.ShadowBase+addr.PAddr(8*3+4), 8)
	if len(runs) != 2 || runs[0].P != addr.PAddr(64*3+4) || runs[1].P != addr.PAddr(64*4) {
		t.Errorf("object-spanning resolve = %+v", runs)
	}
}

func TestResolveGather(t *testing.T) {
	r := newRig(t, false)
	// Target structure x at pv 0 (frames 0..15); indirection vector at pv
	// 0x100000 (frames 16..17). x'[k] = x[vec[k]], 8-byte elements.
	const vecPV = addr.PVAddr(0x100000)
	d := Descriptor{
		Kind: Gather, ShadowBase: 1 << 30, Bytes: addr.PageSize,
		PVBase: 0, ObjBytes: 8, StrideBytes: 8, VecPV: vecPV,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 16)
	r.identityMap(vecPV, 16, 2)
	// Write the vector: vec[k] = (k*37) % 5000.
	for k := uint64(0); k < 512; k++ {
		r.mem.Store32(addr.PAddr(16<<addr.PageShift)+addr.PAddr(4*k), uint32((k*37)%5000))
	}
	for k := uint64(0); k < 512; k++ {
		runs, err := r.c.Resolve(d.ShadowBase+addr.PAddr(8*k), 8)
		if err != nil {
			t.Fatal(err)
		}
		want := addr.PAddr(8 * ((k * 37) % 5000))
		if len(runs) != 1 || runs[0].P != want {
			t.Fatalf("gather resolve k=%d: %+v, want %v", k, runs, want)
		}
	}
}

// Property: gather resolution equals the indirection-vector semantics for
// random vectors and strides.
func TestQuickGatherOracle(t *testing.T) {
	r := newRig(t, false)
	const vecPV = addr.PVAddr(0x200000)
	d := Descriptor{
		Kind: Gather, ShadowBase: 1 << 30, Bytes: addr.PageSize,
		PVBase: 0, ObjBytes: 8, StrideBytes: 8, VecPV: vecPV,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 512)     // 2 MB of target
	r.identityMap(vecPV, 512, 1) // one page of vector
	f := func(k uint16, target uint32) bool {
		idx := uint64(k) % (addr.PageSize / 8)
		tgt := target % (512 * addr.PageSize / 8)
		r.mem.Store32(addr.PAddr(512<<addr.PageShift)+addr.PAddr(4*idx), tgt)
		runs, err := r.c.Resolve(d.ShadowBase+addr.PAddr(8*idx), 8)
		if err != nil {
			return false
		}
		return len(runs) == 1 && runs[0].P == addr.PAddr(8*uint64(tgt)) && runs[0].Bytes == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResolveErrors(t *testing.T) {
	r := newRig(t, false)
	if _, err := r.c.Resolve(1<<30, 8); err == nil {
		t.Error("resolve without descriptor succeeded")
	}
	d := Descriptor{Kind: Direct, ShadowBase: 1 << 30, Bytes: addr.PageSize, PVBase: 0}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	if _, err := r.c.Resolve(1<<30, 8); err == nil {
		t.Error("resolve with unmapped pv page succeeded")
	}
	r.identityMap(0, 0, 1)
	if _, err := r.c.Resolve(1<<30+addr.PAddr(addr.PageSize-4), 8); err == nil {
		t.Error("resolve past descriptor end succeeded")
	}
}

func TestReadLineNormalAndPrefetch(t *testing.T) {
	r := newRig(t, true)
	// First read: DRAM; also prefetches line+1.
	t1, err := r.c.ReadLine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 <= r.cfg.PipelineCycles {
		t.Error("read completed implausibly fast")
	}
	if r.st.MCPrefetches != 1 {
		t.Errorf("MCPrefetches = %d, want 1", r.st.MCPrefetches)
	}
	// Sequential next read hits the SRAM.
	hitsBefore := r.st.MCPrefetchHits
	t2, err := r.c.ReadLine(t1+100, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.st.MCPrefetchHits != hitsBefore+1 {
		t.Errorf("prefetch hit not recorded: %+v", r.st)
	}
	if t2-(t1+100) >= t1 {
		t.Errorf("prefetched read latency %d not better than cold %d", t2-(t1+100), t1)
	}
}

func TestReadLineNoPrefetchWhenDisabled(t *testing.T) {
	r := newRig(t, false)
	if _, err := r.c.ReadLine(0, 0); err != nil {
		t.Fatal(err)
	}
	if r.st.MCPrefetches != 0 {
		t.Error("prefetch launched while disabled")
	}
}

func TestWriteInvalidatesSRAM(t *testing.T) {
	r := newRig(t, true)
	t1, _ := r.c.ReadLine(0, 0) // prefetches line 1
	if _, err := r.c.WriteLine(t1, 128); err != nil {
		t.Fatal(err)
	}
	hits := r.st.MCPrefetchHits
	if _, err := r.c.ReadLine(t1+50, 128); err != nil {
		t.Fatal(err)
	}
	if r.st.MCPrefetchHits != hits {
		t.Error("stale SRAM entry served after write")
	}
}

func TestReadLineUnaligned(t *testing.T) {
	r := newRig(t, false)
	if _, err := r.c.ReadLine(0, 8); err == nil {
		t.Error("unaligned line read accepted")
	}
}

func gatherRig(t *testing.T, prefetch bool) (*testRig, Descriptor) {
	r := newRig(t, prefetch)
	const vecPV = addr.PVAddr(0x100000)
	d := Descriptor{
		Kind: Gather, ShadowBase: 1 << 30, Bytes: 16 * addr.PageSize,
		PVBase: 0, ObjBytes: 8, StrideBytes: 8, VecPV: vecPV,
	}
	if err := r.c.SetDescriptor(0, d); err != nil {
		t.Fatal(err)
	}
	r.identityMap(0, 0, 256)
	r.identityMap(vecPV, 256, 16)
	// Scattered vector: stride 17 through a 64K-element x.
	for k := uint64(0); k < 16*addr.PageSize/8; k++ {
		r.mem.Store32(addr.PAddr(256<<addr.PageShift)+addr.PAddr(4*k), uint32((k*17)%65536))
	}
	return r, d
}

func TestGatherTimingAndPrefetch(t *testing.T) {
	r, d := gatherRig(t, false)
	t1, err := r.c.ReadLine(0, d.ShadowBase)
	if err != nil {
		t.Fatal(err)
	}
	// A gathered line of 16 8-byte elements scattered at stride 17*8
	// touches many distinct DRAM lines.
	if r.st.ShadowDRAMReads < 10 {
		t.Errorf("gather performed only %d DRAM reads", r.st.ShadowDRAMReads)
	}
	if r.st.ShadowReads != 1 {
		t.Errorf("ShadowReads = %d", r.st.ShadowReads)
	}
	// Gather must cost more than a plain line read but far less than
	// 16 serialized row misses (bank parallelism).
	plain, _ := r.c.ReadLine(100000, 0)
	plainLat := plain - 100000
	if t1 <= plainLat {
		t.Errorf("gather latency %d not above plain %d", t1, plainLat)
	}

	// With prefetching, the second sequential shadow line is served from
	// the descriptor buffer.
	r2, d2 := gatherRig(t, true)
	ta, _ := r2.c.ReadLine(0, d2.ShadowBase)
	hits := r2.st.SDescPrefHits
	tb, err := r2.c.ReadLine(ta+500, d2.ShadowBase+128)
	if err != nil {
		t.Fatal(err)
	}
	if r2.st.SDescPrefHits != hits+1 {
		t.Errorf("descriptor prefetch hit not recorded: %+v", r2.st)
	}
	if tb-(ta+500) >= ta {
		t.Errorf("prefetched gather latency %d not better than cold %d", tb-(ta+500), ta)
	}
}

func TestPgTblTLB(t *testing.T) {
	r, d := gatherRig(t, false)
	if _, err := r.c.ReadLine(0, d.ShadowBase); err != nil {
		t.Fatal(err)
	}
	misses := r.st.MCTLBMisses
	if misses == 0 {
		t.Fatal("cold PgTbl produced no misses")
	}
	// Re-reading the same line: translations are cached.
	if _, err := r.c.ReadLine(100000, d.ShadowBase); err != nil {
		t.Fatal(err)
	}
	if r.st.MCTLBMisses != misses {
		t.Errorf("warm gather missed PgTbl again: %d -> %d", misses, r.st.MCTLBMisses)
	}
	r.c.InvalidateTLB()
	if _, err := r.c.ReadLine(200000, d.ShadowBase); err != nil {
		t.Fatal(err)
	}
	if r.st.MCTLBMisses == misses {
		t.Error("InvalidateTLB had no effect")
	}
}

func TestWriteLineShadowScatters(t *testing.T) {
	r, d := gatherRig(t, false)
	writes := r.st.DRAMWrites
	if _, err := r.c.WriteLine(0, d.ShadowBase); err != nil {
		t.Fatal(err)
	}
	if r.st.DRAMWrites-writes < 10 {
		t.Errorf("shadow write-back issued only %d DRAM writes", r.st.DRAMWrites-writes)
	}
}

func TestShadowWriteInvalidatesDescBuffer(t *testing.T) {
	r, d := gatherRig(t, true)
	t1, _ := r.c.ReadLine(0, d.ShadowBase) // prefetches base+128
	if _, err := r.c.WriteLine(t1, d.ShadowBase+128); err != nil {
		t.Fatal(err)
	}
	hits := r.st.SDescPrefHits
	if _, err := r.c.ReadLine(t1+1000, d.ShadowBase+128); err != nil {
		t.Fatal(err)
	}
	if r.st.SDescPrefHits != hits {
		t.Error("stale descriptor buffer served after shadow write")
	}
}
