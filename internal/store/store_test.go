package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testMeta(hash string, output []byte) Meta {
	return Meta{
		Hash:      hash,
		Kind:      "table1",
		Canonical: "kind=table1&n=240",
		Spec:      json.RawMessage(`{"kind":"table1","n":240}`),
		MIME:      "text/plain; charset=utf-8",
		Output:    output,
		Counters:  []byte("sim.loads 42\n"),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := []byte("columnar-bytes-here")
	if _, err := s.Put(blob, testMeta("aabb", []byte("rendered"))); err != nil {
		t.Fatal(err)
	}
	b, m, ok := s.Get("aabb")
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if !bytes.Equal(b.Data, blob) {
		t.Fatalf("blob bytes differ: %q", b.Data)
	}
	if m.Kind != "table1" || string(m.Output) != "rendered" || string(m.Counters) != "sim.loads 42\n" {
		t.Fatalf("sidecar did not round-trip: %+v", m)
	}
	if m.BlobBytes != int64(len(blob)) || m.BlobSHA256 != Digest(blob) {
		t.Fatalf("integrity fields wrong: %+v", m)
	}
}

// TestRestartRecovery is the durability headline: a second Store opened
// on the same directory serves every completed hash byte-identically.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		h := fmt.Sprintf("hash%02d", i)
		blob := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		want[h] = blob
		m := testMeta(h, nil)
		m.SavedAt = time.Unix(int64(1000+i), 0).UTC()
		if _, err := s.Put(blob, m); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // caller-provided dir: files must survive

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("recovered %d entries, want %d", r.Len(), len(want))
	}
	hashes := r.Hashes()
	for i := 1; i < len(hashes); i++ {
		mi, _ := r.Meta(hashes[i-1])
		mj, _ := r.Meta(hashes[i])
		if mi.SavedAt.After(mj.SavedAt) {
			t.Fatalf("Hashes not oldest-first: %v", hashes)
		}
	}
	for h, blob := range want {
		b, _, ok := r.Get(h)
		if !ok {
			t.Fatalf("recovered store missed %s", h)
		}
		if !bytes.Equal(b.Data, blob) {
			t.Fatalf("%s: recovered bytes differ", h)
		}
	}
}

// TestCrashMidArchive pins the crash window the temp-file + rename
// protocol exists for: a daemon died after writing the temp file but
// before the rename. Restart must ignore the orphan, keep serving every
// completed hash byte-identically, and GC must unlink the orphan.
func TestCrashMidArchive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := []byte("the-complete-result")
	if _, err := s.Put(done, testMeta("done00", nil)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crash: a temp file that never renamed.
	orphan := filepath.Join(dir, "dead01"+tmpMark+"123456")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And the other mid-crash shape: a blob that renamed but whose
	// sidecar never did (its temp sidecar also still around).
	if err := os.WriteFile(filepath.Join(dir, "dead02"+BlobExt), []byte("no-sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("recovery trusted %d entries, want 1 (orphans must be ignored)", r.Len())
	}
	if _, _, ok := r.Get("dead01"); ok {
		t.Fatal("recovery served the orphaned temp write")
	}
	b, _, ok := r.Get("done00")
	if !ok || !bytes.Equal(b.Data, done) {
		t.Fatalf("completed entry not byte-identical after crash-restart: ok=%v", ok)
	}

	st := r.GC(0)
	if st.Orphans != 2 {
		t.Fatalf("GC unlinked %d orphans, want 2 (temp file + sidecar-less blob)", st.Orphans)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("GC left the orphaned temp file on disk")
	}
	if _, err := os.Stat(filepath.Join(dir, "dead02"+BlobExt)); !os.IsNotExist(err) {
		t.Fatal("GC left the sidecar-less blob on disk")
	}
	// The completed entry survives GC untouched.
	if b2, _, ok := r.Get("done00"); !ok || !bytes.Equal(b2.Data, done) {
		t.Fatal("GC damaged a complete entry")
	}
}

func TestCorruptBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("pristine-result-bytes")
	if _, err := s.Put(blob, testMeta("c0ffee", nil)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip bytes without changing the size: recovery's size check
	// passes, the digest check on first Get must not.
	path := filepath.Join(dir, "c0ffee"+BlobExt)
	bad := bytes.ToUpper(blob)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("size-matched corrupt entry should index (lazy verify), got %d", r.Len())
	}
	if _, _, ok := r.Get("c0ffee"); ok {
		t.Fatal("Get served a blob whose bytes do not match the sidecar digest")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt blob was not unlinked")
	}
}

func TestGCByteBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		m := testMeta(fmt.Sprintf("h%d", i), nil)
		m.SavedAt = time.Unix(int64(100+i), 0).UTC()
		if _, err := s.Put(bytes.Repeat([]byte{byte(i)}, 1000), m); err != nil {
			t.Fatal(err)
		}
	}
	st := s.GC(2500) // room for 2 of the 4 x 1000-byte blobs
	if st.Evicted != 2 || st.FreedBytes != 2000 {
		t.Fatalf("GC evicted %d/%d bytes, want 2/2000", st.Evicted, st.FreedBytes)
	}
	if st.LiveBytes != 2000 {
		t.Fatalf("LiveBytes %d, want 2000", st.LiveBytes)
	}
	// The *oldest* entries went.
	for _, h := range []string{"h0", "h1"} {
		if _, _, ok := s.Get(h); ok {
			t.Fatalf("%s survived GC but is older than the survivors", h)
		}
	}
	for _, h := range []string{"h2", "h3"} {
		if _, _, ok := s.Get(h); !ok {
			t.Fatalf("%s evicted out of order", h)
		}
	}
}

func TestReplaceKeepsReaders(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b1, err := s.Put([]byte("version-one"), testMeta("swap", nil))
	if err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), b1.Data...)
	if _, err := s.Put([]byte("version-two!"), testMeta("swap", nil)); err != nil {
		t.Fatal(err)
	}
	b2, _, _ := s.Get("swap")
	if !bytes.Equal(b2.Data, []byte("version-two!")) {
		t.Fatalf("Get returned stale bytes after replace: %q", b2.Data)
	}
	// The old mapping (held via b1) still reads its original content —
	// rename replaced the directory entry, not the mapped pages.
	if !bytes.Equal(b1.Data, old) {
		t.Fatalf("replaced blob's old mapping changed: %q", b1.Data)
	}
}

func TestWritable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Writable(); err != nil {
		t.Fatalf("fresh temp dir not writable: %v", err)
	}
}

// BenchmarkStoreHitRestart measures the restart-hit path end to end:
// open a store that another "process" populated, then Get (map +
// verify) and read a cached result — what a rebooted daemon pays to
// serve yesterday's cache hit without re-executing the experiment.
func BenchmarkStoreHitRestart(b *testing.B) {
	dir := b.TempDir()
	blob := bytes.Repeat([]byte("impulse-columnar-result-row "), 1024) // ~28 KiB
	{
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Put(blob, testMeta("bench0", nil)); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		got, _, ok := s.Get("bench0")
		if !ok || len(got.Data) != len(blob) {
			b.Fatal("restart hit missed")
		}
		s.Close()
	}
}

// BenchmarkStoreHitWarm is the steady-state companion: the entry is
// already mapped and verified, so a hit is two map lookups.
func BenchmarkStoreHitWarm(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte("impulse-columnar-result-row "), 1024)
	if _, err := s.Put(blob, testMeta("bench1", nil)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.Get("bench1"); !ok {
			b.Fatal("warm hit missed")
		}
	}
}
