// Package store is the persistent content-addressed result store: one
// `.impres` blob plus one `.json` manifest sidecar per canonical spec
// hash, on disk, surviving daemon restarts. It is the durable half of
// the impulsed result cache — the in-memory LRU in internal/service
// decides *what* stays cached; this package makes whatever is cached
// outlive the process, so a rebooted daemon serves yesterday's cache
// hits from disk through the same mmap path without re-executing
// anything.
//
// Durability contract:
//
//   - Writes are temp-file + rename, blob first, sidecar second. A
//     crash at any instant leaves either a complete entry (both files
//     renamed), a blob with no sidecar, or an orphaned temp file —
//     never a torn entry that recovery would trust.
//   - Recovery (Open) trusts only hashes with a parseable sidecar whose
//     recorded blob size matches the file on disk. Everything else is
//     ignored until GC unlinks it.
//   - Blob bytes are verified against the sidecar's SHA-256 once, on
//     first Get after recovery (entries written by this process skip
//     the check — we just produced the bytes). A corrupt blob is
//     dropped and unlinked instead of served.
//   - GC removes orphaned temp files, sidecar-less blobs, blob-less
//     sidecars, and then the oldest complete entries beyond the byte
//     budget. It assumes exclusive ownership of the directory (one
//     daemon per store dir; fleet shards each get their own).
//
// Served blobs are memory-mapped read-only and shared, exactly like the
// pre-store in-process archive: an entry's pages stay valid for readers
// that hold its Blob even after Remove unlinks the file, and the
// mapping is released by a finalizer once the Blob is unreachable.
// Because Go's liveness is precise, any reader holding only a slice of
// Blob.Data must runtime.KeepAlive whatever pins the Blob past the last
// use of those bytes (see internal/service).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Meta is the manifest sidecar persisted next to each blob: everything
// the daemon needs to reconstruct the finished job's wire-visible
// result byte-identically after a restart, plus integrity fields
// (size, digest) recovery validates before trusting the blob.
type Meta struct {
	// Hash is the canonical spec hash the entry is addressed by.
	Hash string `json:"hash"`
	// Kind and Canonical identify the experiment (service.Spec.Kind and
	// its frozen canonical encoding); Spec is the normalized spec JSON,
	// re-parsed at recovery so the restored job carries the same spec a
	// live submission would have.
	Kind      string          `json:"kind"`
	Canonical string          `json:"canonical"`
	Spec      json.RawMessage `json:"spec"`
	// MIME is the result's content type. Tier is the serving tier that
	// produced it ("twin" for analytical answers, empty for simulation).
	MIME string `json:"mime"`
	Tier string `json:"tier,omitempty"`
	// ColumnarBlob marks the blob as a colres columnar document (grid
	// results; views render from it). OutputIsBlob says the result's
	// Output field is the blob bytes themselves; otherwise Output holds
	// the rendered output (text/json views are small — the columns are
	// the big payload, and they live in the blob).
	ColumnarBlob bool   `json:"columnar_blob"`
	OutputIsBlob bool   `json:"output_is_blob"`
	Output       []byte `json:"output,omitempty"`
	// Counters is the job's counter-registry dump, byte-preserved.
	Counters []byte `json:"counters,omitempty"`
	// Integrity: blob length and SHA-256, checked before a recovered
	// blob is served.
	BlobBytes  int64  `json:"blob_bytes"`
	BlobSHA256 string `json:"blob_sha256"`
	// SavedAt orders entries for GC (oldest evicted first) and recovery
	// (restored LRU order).
	SavedAt time.Time `json:"saved_at"`
}

// Blob is one stored result blob, mapped when the platform supports it.
type Blob struct {
	// Data is the blob's bytes: a read-only shared mapping of the file
	// when Mapped, else a heap copy.
	Data   []byte
	Mapped bool

	path  string
	unmap func() // non-nil iff Mapped
}

// Path returns the file the blob was stored at (the mapping's backing
// file while it exists — Remove unlinks it without invalidating the
// mapping).
func (b *Blob) Path() string { return b.path }

// entry is the store's in-memory record of one hash.
type entry struct {
	meta     Meta
	blob     *Blob // nil until first Get (recovered entries map lazily)
	verified bool  // blob bytes checked against meta.BlobSHA256
}

// Store owns one result-store directory.
type Store struct {
	dir string
	own bool // dir is a private temp dir; Close removes everything

	mu      sync.Mutex
	entries map[string]*entry
}

const (
	// BlobExt and MetaExt are the store's on-disk file extensions: one
	// <hash>.impres blob plus one <hash>.impres.json manifest sidecar
	// per entry. Exported for tooling and tests that inspect a store
	// directory from outside.
	BlobExt = ".impres"
	MetaExt = ".impres.json"
	tmpMark = ".tmp-"
)

// Open opens (or creates) the store at dir and indexes every complete
// entry already on disk. An empty dir gets a private temporary
// directory that Close removes — the ephemeral mode tests and
// single-shot daemons use; persistence needs a real path.
func Open(dir string) (*Store, error) {
	own := false
	if dir == "" {
		d, err := os.MkdirTemp("", "impulse-store-")
		if err != nil {
			return nil, err
		}
		dir, own = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, own: own, entries: make(map[string]*entry)}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover indexes complete entries: a parseable sidecar whose blob file
// exists with the recorded size. Byte content is verified lazily on
// first Get; everything recovery rejects is left for GC.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, MetaExt) || strings.Contains(name, tmpMark) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var m Meta
		if err := json.Unmarshal(raw, &m); err != nil || m.Hash == "" {
			continue
		}
		if name != m.Hash+MetaExt {
			continue // sidecar does not belong to the hash it claims
		}
		fi, err := os.Stat(s.blobPath(m.Hash))
		if err != nil || fi.Size() != m.BlobBytes {
			continue
		}
		s.entries[m.Hash] = &entry{meta: m}
	}
	return nil
}

func (s *Store) blobPath(hash string) string { return filepath.Join(s.dir, hash+BlobExt) }
func (s *Store) metaPath(hash string) string { return filepath.Join(s.dir, hash+MetaExt) }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of complete entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Hashes returns every stored hash, oldest SavedAt first — the order a
// recovering daemon should restore its LRU in.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type rec struct {
		hash string
		at   time.Time
	}
	recs := make([]rec, 0, len(s.entries))
	for h, e := range s.entries {
		recs = append(recs, rec{h, e.meta.SavedAt})
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].at.Equal(recs[j].at) {
			return recs[i].at.Before(recs[j].at)
		}
		return recs[i].hash < recs[j].hash
	})
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.hash
	}
	return out
}

// Meta returns the sidecar for hash, if stored.
func (s *Store) Meta(hash string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return Meta{}, false
	}
	return e.meta, true
}

// Digest is the store's blob digest: hex SHA-256.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Put durably stores blob and its sidecar under meta.Hash and returns
// the blob mapped. Write order is blob-then-sidecar, each temp-file +
// rename, so a visible sidecar always describes a complete blob. An
// existing entry for the hash is replaced; mappings held by current
// readers stay valid.
func (s *Store) Put(blob []byte, meta Meta) (*Blob, error) {
	if meta.Hash == "" {
		return nil, fmt.Errorf("store: Put with empty hash")
	}
	meta.BlobBytes = int64(len(blob))
	meta.BlobSHA256 = Digest(blob)
	if meta.SavedAt.IsZero() {
		meta.SavedAt = time.Now().UTC()
	}
	if err := writeAtomic(s.dir, s.blobPath(meta.Hash), meta.Hash, blob); err != nil {
		return nil, err
	}
	side, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(s.dir, s.metaPath(meta.Hash), meta.Hash, side); err != nil {
		return nil, err
	}
	b := newBlob(s.blobPath(meta.Hash), blob)
	s.mu.Lock()
	s.entries[meta.Hash] = &entry{meta: meta, blob: b, verified: true}
	s.mu.Unlock()
	return b, nil
}

// writeAtomic writes data to path via a temp file in dir plus rename.
// The temp name carries both the hash and the tmpMark so GC can
// recognize (and a crashed write leaves behind) an obvious orphan.
func writeAtomic(dir, path, hash string, data []byte) error {
	tmp, err := os.CreateTemp(dir, hash+tmpMark+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// newBlob maps path (falling back to the in-memory bytes where mmap is
// unavailable) and arranges for the mapping to be released when the
// Blob is collected.
func newBlob(path string, data []byte) *Blob {
	b := &Blob{Data: data, path: path}
	if mapped, unmap, err := mapFile(path, len(data)); err == nil {
		b.Data, b.Mapped, b.unmap = mapped, true, unmap
		// The munmap runs under precise liveness: see the package
		// comment — readers pin the Blob past their last byte access.
		runtime.SetFinalizer(b, func(b *Blob) { b.unmap() })
	}
	return b
}

// Get returns the blob and sidecar for hash, mapping (and, for entries
// recovered from a previous process, verifying) it on first use. A
// recovered blob whose bytes do not match the sidecar digest is
// dropped and unlinked — a torn or tampered file is a cache miss, not
// a wrong answer.
func (s *Store) Get(hash string) (*Blob, Meta, bool) {
	s.mu.Lock()
	e, ok := s.entries[hash]
	if !ok {
		s.mu.Unlock()
		return nil, Meta{}, false
	}
	if e.blob != nil && e.verified {
		b, m := e.blob, e.meta
		s.mu.Unlock()
		return b, m, true
	}
	s.mu.Unlock()

	// Load outside the lock (first touch of a recovered entry; disk IO).
	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil || int64(len(data)) != e.meta.BlobBytes || Digest(data) != e.meta.BlobSHA256 {
		s.Remove(hash)
		return nil, Meta{}, false
	}
	b := newBlob(s.blobPath(hash), data)
	// Verify the *mapped* bytes when we got a mapping: the mapping, not
	// the heap copy, is what readers will be served.
	if b.Mapped && Digest(b.Data) != e.meta.BlobSHA256 {
		s.Remove(hash)
		return nil, Meta{}, false
	}
	s.mu.Lock()
	if cur, ok := s.entries[hash]; ok && cur == e {
		e.blob, e.verified = b, true
	}
	m := e.meta
	s.mu.Unlock()
	return b, m, true
}

// Remove drops hash from the store and unlinks both files. Mappings
// held by current readers survive the unlink.
func (s *Store) Remove(hash string) {
	s.mu.Lock()
	delete(s.entries, hash)
	s.mu.Unlock()
	os.Remove(s.blobPath(hash))
	os.Remove(s.metaPath(hash))
}

// GCStats reports what a GC pass did.
type GCStats struct {
	// Orphans is how many junk files were unlinked: leftover temp files
	// from crashed writes, blobs without a sidecar, sidecars without a
	// blob.
	Orphans int
	// Evicted is how many complete entries were removed to fit the byte
	// budget; FreedBytes their total blob size.
	Evicted    int
	FreedBytes int64
	// LiveBytes is the blob bytes remaining after the pass.
	LiveBytes int64
}

// GC removes junk files and then evicts the oldest complete entries
// until total blob bytes fit budget (budget <= 0 skips the budget
// pass). Call it at daemon startup, before recovery is served; it
// assumes no concurrent writer shares the directory.
func (s *Store) GC(budget int64) GCStats {
	var st GCStats
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return st
	}
	s.mu.Lock()
	known := make(map[string]bool, len(s.entries))
	for h := range s.entries {
		known[h] = true
	}
	s.mu.Unlock()
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.Contains(name, tmpMark):
			// A temp file from a write that never renamed: the crashed
			// mid-archive window the recovery tests pin.
			os.Remove(filepath.Join(s.dir, name))
			st.Orphans++
		case strings.HasSuffix(name, MetaExt):
			if !known[strings.TrimSuffix(name, MetaExt)] {
				os.Remove(filepath.Join(s.dir, name))
				st.Orphans++
			}
		case strings.HasSuffix(name, BlobExt):
			if !known[strings.TrimSuffix(name, BlobExt)] {
				os.Remove(filepath.Join(s.dir, name))
				st.Orphans++
			}
		}
	}

	hashes := s.Hashes() // oldest first
	var total int64
	s.mu.Lock()
	for _, e := range s.entries {
		total += e.meta.BlobBytes
	}
	s.mu.Unlock()
	if budget > 0 {
		for _, h := range hashes {
			if total <= budget {
				break
			}
			m, ok := s.Meta(h)
			if !ok {
				continue
			}
			s.Remove(h)
			st.Evicted++
			st.FreedBytes += m.BlobBytes
			total -= m.BlobBytes
		}
	}
	st.LiveBytes = total
	return st
}

// Writable probes that the directory still accepts writes — the
// readiness check pulling a daemon with a full or read-only disk out of
// rotation before results start failing to persist.
func (s *Store) Writable() error {
	f, err := os.CreateTemp(s.dir, ".readyz-probe-")
	if err != nil {
		return fmt.Errorf("store not writable: %v", err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// Close releases the in-memory index. A store on a caller-provided
// directory keeps its files — surviving restart is the point; only a
// private temp-dir store removes everything. Established mappings are
// left to their finalizers either way.
func (s *Store) Close() {
	s.mu.Lock()
	s.entries = make(map[string]*entry)
	s.mu.Unlock()
	if s.own {
		os.RemoveAll(s.dir)
	}
}

// errMmapUnsupported reports why mapFile is unavailable on this
// platform (see mmap_fallback.go).
var errMmapUnsupported = fmt.Errorf("store: mmap unsupported on this platform")
