//go:build !unix

package store

// mapFile is unavailable without mmap; Put and Get keep the bytes in
// memory instead, which still serves cache hits without re-encoding.
func mapFile(path string, size int) ([]byte, func(), error) {
	return nil, nil, errMmapUnsupported
}
