//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of path read-only and shared, returning the
// mapping and its release function. MAP_SHARED means a later in-place
// rewrite of the file is visible through the mapping — the zero-copy
// serving test in internal/service exploits exactly that to prove
// responses come from the mapped file, not a heap copy.
func mapFile(path string, size int) ([]byte, func(), error) {
	if size == 0 {
		return nil, nil, errMmapUnsupported
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping keeps the pages; the fd is not needed
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
