package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSplit(t *testing.T) {
	v := VAddr(0x12345)
	if v.PageNum() != 0x12 || v.PageOff() != 0x345 {
		t.Errorf("VAddr split: num=%#x off=%#x", v.PageNum(), v.PageOff())
	}
	p := PAddr(0xABCDE)
	if p.PageNum() != 0xAB || p.PageOff() != 0xCDE {
		t.Errorf("PAddr split: num=%#x off=%#x", p.PageNum(), p.PageOff())
	}
}

func TestPageSplitRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		v := VAddr(x)
		if v.PageNum()<<PageShift|v.PageOff() != x {
			return false
		}
		p := PAddr(x)
		if p.PageNum()<<PageShift|p.PageOff() != x {
			return false
		}
		pv := PVAddr(x)
		return pv.PageNum()<<PageShift|pv.PageOff() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultLayoutValid(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(); err != nil {
		t.Fatalf("default layout invalid: %v", err)
	}
	if l.DRAMFrames() != (256<<20)/PageSize {
		t.Errorf("DRAMFrames = %d", l.DRAMFrames())
	}
	if l.ShadowPages() != (1<<30)/PageSize {
		t.Errorf("ShadowPages = %d", l.ShadowPages())
	}
}

func TestLayoutValidation(t *testing.T) {
	cases := []struct {
		name string
		l    Layout
		ok   bool
	}{
		{"default", DefaultLayout(), true},
		{"no dram", Layout{0, 1 << 30, 1 << 30}, false},
		{"unaligned dram", Layout{4097, 1 << 30, 1 << 30}, false},
		{"unaligned shadow base", Layout{1 << 20, (1 << 30) + 1, 1 << 30}, false},
		{"shadow overlaps dram", Layout{1 << 30, 1 << 29, 1 << 30}, false},
		{"no shadow", Layout{1 << 20, 1 << 30, 0}, false},
		{"shadow wraps", Layout{1 << 20, ^uint64(0) &^ PageMask, 1 << 30}, false},
		{"shadow adjacent to dram", Layout{1 << 20, 1 << 20, 1 << 20}, true},
	}
	for _, c := range cases {
		err := c.l.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestShadowDRAMDisjoint(t *testing.T) {
	l := DefaultLayout()
	f := func(x uint64) bool {
		p := PAddr(x)
		return !(l.IsShadow(p) && l.IsDRAM(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowBoundaries(t *testing.T) {
	l := DefaultLayout()
	if l.IsShadow(PAddr(l.ShadowBase - 1)) {
		t.Error("address below shadow base classified as shadow")
	}
	if !l.IsShadow(PAddr(l.ShadowBase)) {
		t.Error("shadow base not classified as shadow")
	}
	if !l.IsShadow(PAddr(l.ShadowBase + l.ShadowBytes - 1)) {
		t.Error("last shadow byte not classified as shadow")
	}
	if l.IsShadow(PAddr(l.ShadowBase + l.ShadowBytes)) {
		t.Error("address past shadow top classified as shadow")
	}
	if !l.IsDRAM(0) || !l.IsDRAM(PAddr(l.DRAMBytes-1)) || l.IsDRAM(PAddr(l.DRAMBytes)) {
		t.Error("IsDRAM boundaries wrong")
	}
}
