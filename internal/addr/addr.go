// Package addr defines the address spaces of an Impulse system and the
// geometry helpers shared by every component.
//
// Four address spaces exist (paper Figure 2):
//
//   - Virtual addresses (VAddr): what applications use. Translated by the
//     processor MMU into bus addresses.
//   - Bus / "physical" addresses (PAddr): what appears on the system bus.
//     A PAddr is either *real* (backed by DRAM) or *shadow* (a legitimate
//     address not backed by DRAM; the Impulse controller intercepts it).
//   - Pseudo-virtual addresses (PVAddr): the intermediate space the
//     controller's AddrCalc produces, so that remapped data structures may
//     span multiple non-contiguous physical pages. PVAddrs are translated
//     to real PAddrs by the controller page table.
//   - DRAM addresses: bank/row/column coordinates inside the memory system
//     (package dram).
package addr

import "fmt"

// VAddr is a virtual address as issued by application code.
type VAddr uint64

// PAddr is a bus address: either real (DRAM-backed) or shadow.
type PAddr uint64

// PVAddr is a pseudo-virtual address inside the Impulse controller.
type PVAddr uint64

// Page geometry. The paper's system uses 4 KB pages; the simulator keeps
// this fixed (it is baked into OS page tables and the controller PgTbl).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// PageNum returns the virtual page number of v.
func (v VAddr) PageNum() uint64 { return uint64(v) >> PageShift }

// PageOff returns the offset of v within its page.
func (v VAddr) PageOff() uint64 { return uint64(v) & PageMask }

// PageNum returns the physical frame number of p.
func (p PAddr) PageNum() uint64 { return uint64(p) >> PageShift }

// PageOff returns the offset of p within its frame.
func (p PAddr) PageOff() uint64 { return uint64(p) & PageMask }

// PageNum returns the pseudo-virtual page number of pv.
func (pv PVAddr) PageNum() uint64 { return uint64(pv) >> PageShift }

// PageOff returns the offset of pv within its page.
func (pv PVAddr) PageOff() uint64 { return uint64(pv) & PageMask }

func (v VAddr) String() string   { return fmt.Sprintf("v:%#x", uint64(v)) }
func (p PAddr) String() string   { return fmt.Sprintf("p:%#x", uint64(p)) }
func (pv PVAddr) String() string { return fmt.Sprintf("pv:%#x", uint64(pv)) }

// Layout describes the bus-address-space split between installed DRAM and
// shadow space. The paper's example: 4 GB of physical address space with
// 1 GB of installed DRAM leaves 3 GB of shadow addresses. The simulator
// keeps the same structure with configurable sizes: real memory occupies
// [0, DRAMBytes), shadow space occupies [ShadowBase, ShadowBase+ShadowBytes).
type Layout struct {
	DRAMBytes   uint64 // installed DRAM, starting at bus address 0
	ShadowBase  uint64 // first shadow bus address; must be >= DRAMBytes
	ShadowBytes uint64 // size of the shadow region
}

// DefaultLayout mirrors the paper's flavor at simulator-friendly scale:
// 256 MB of installed DRAM and a 1 GB shadow window starting at 1 GB.
func DefaultLayout() Layout {
	return Layout{
		DRAMBytes:   256 << 20,
		ShadowBase:  1 << 30,
		ShadowBytes: 1 << 30,
	}
}

// Validate checks internal consistency of the layout.
func (l Layout) Validate() error {
	if l.DRAMBytes == 0 {
		return fmt.Errorf("addr: layout has no installed DRAM")
	}
	if l.DRAMBytes%PageSize != 0 || l.ShadowBase%PageSize != 0 || l.ShadowBytes%PageSize != 0 {
		return fmt.Errorf("addr: layout regions must be page-aligned")
	}
	if l.ShadowBase < l.DRAMBytes {
		return fmt.Errorf("addr: shadow region %#x overlaps installed DRAM (%#x bytes)",
			l.ShadowBase, l.DRAMBytes)
	}
	if l.ShadowBytes == 0 {
		return fmt.Errorf("addr: layout has no shadow space")
	}
	if l.ShadowBase+l.ShadowBytes < l.ShadowBase {
		return fmt.Errorf("addr: shadow region wraps the address space")
	}
	return nil
}

// IsShadow reports whether p falls inside the shadow region.
func (l Layout) IsShadow(p PAddr) bool {
	return uint64(p) >= l.ShadowBase && uint64(p) < l.ShadowBase+l.ShadowBytes
}

// IsDRAM reports whether p is backed by installed DRAM.
func (l Layout) IsDRAM(p PAddr) bool { return uint64(p) < l.DRAMBytes }

// DRAMFrames returns the number of installed physical page frames.
func (l Layout) DRAMFrames() uint64 { return l.DRAMBytes >> PageShift }

// ShadowPages returns the number of pages in the shadow region.
func (l Layout) ShadowPages() uint64 { return l.ShadowBytes >> PageShift }
