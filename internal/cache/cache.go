// Package cache implements the processor cache model: a set-associative
// cache with configurable geometry, indexing, and write policy, matching
// the two caches of the paper's simulated machine:
//
//   - L1 data: 32 KB, direct-mapped, 32-byte lines, virtually indexed /
//     physically tagged, write-back, write-around (no allocate on store
//     miss), 1-cycle hit;
//   - L2 data: 256 KB, 2-way set-associative, 128-byte lines, physically
//     indexed and tagged, write-back, write-allocate, 7-cycle hit.
//
// The model tracks tags and state only. Data values live in the simulated
// DRAM (package membuf) and stores update them functionally at execution
// time; write-back traffic is modeled in *timing and traffic accounting*
// (dirty evictions produce bus/DRAM activity). This is the standard
// trace-simulator factoring: the paper's measured quantities (hit ratios,
// cycles, bus bytes) depend on tag state, not on which copy of a byte is
// current. Cache-flush costs required by Impulse's consistency protocol
// are charged by the OS model (package kernel).
package cache

import (
	"fmt"

	"impulse/internal/bitutil"
)

// Config describes one cache level.
type Config struct {
	Name          string
	Bytes         uint64 // total capacity; power of two
	LineBytes     uint64 // line size; power of two
	Ways          uint64 // associativity; power of two (1 = direct-mapped)
	VirtualIndex  bool   // true: index with virtual address (VIPT), else physical
	WriteAllocate bool   // allocate on store miss (false = write-around)
	HitCycles     uint64 // access latency on hit
}

// L1Default returns the paper's L1 data-cache geometry.
func L1Default() Config {
	return Config{
		Name: "L1", Bytes: 32 << 10, LineBytes: 32, Ways: 1,
		VirtualIndex: true, WriteAllocate: false, HitCycles: 1,
	}
}

// L2Default returns the paper's L2 data-cache geometry.
func L2Default() Config {
	return Config{
		Name: "L2", Bytes: 256 << 10, LineBytes: 128, Ways: 2,
		VirtualIndex: false, WriteAllocate: true, HitCycles: 7,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !bitutil.IsPow2(c.Bytes) || !bitutil.IsPow2(c.LineBytes) || !bitutil.IsPow2(c.Ways) {
		return fmt.Errorf("cache %s: sizes must be powers of two: %+v", c.Name, c)
	}
	if c.LineBytes*c.Ways > c.Bytes {
		return fmt.Errorf("cache %s: capacity %d too small for %d ways of %d-byte lines",
			c.Name, c.Bytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() uint64 { return c.Bytes / (c.LineBytes * c.Ways) }

type line struct {
	lineAddr   uint64 // physical line number (full identity, not a partial tag)
	lastUse    uint64 // LRU clock value
	valid      bool
	dirty      bool
	prefetched bool // brought in by a prefetch and not yet demanded
}

// Cache models one level. It is purely a tag store; the orchestration of
// misses across levels lives in package sim.
type Cache struct {
	cfg       Config
	lines     []line // sets * ways, set-major
	lineShift uint
	setMask   uint64
	clock     uint64 // LRU clock
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets()*cfg.Ways),
		lineShift: bitutil.Log2(cfg.LineBytes),
		setMask:   cfg.Sets() - 1,
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the physical line number of p.
func (c *Cache) LineAddr(p uint64) uint64 { return p >> c.lineShift }

// SetIndex returns the set selected by the index address (virtual for
// VIPT, physical for PIPT — the caller passes the right one).
func (c *Cache) SetIndex(indexAddr uint64) uint64 {
	return (indexAddr >> c.lineShift) & c.setMask
}

func (c *Cache) set(indexAddr uint64) []line {
	s := c.SetIndex(indexAddr)
	return c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// LookupResult reports the outcome of a cache probe.
type LookupResult struct {
	Hit           bool
	WasPrefetched bool // the hit line had been prefetched and never used
	Slot          int  // global line index (set*ways+way) of the hit, else -1
}

// Lookup probes for the line containing paddr, indexed by indexAddr, and
// updates LRU state on a hit.
func (c *Cache) Lookup(indexAddr, paddr uint64) LookupResult {
	la := c.LineAddr(paddr)
	if c.cfg.Ways == 1 {
		// Direct-mapped: the candidate line is a single array slot.
		i := c.SetIndex(indexAddr)
		l := &c.lines[i]
		if l.valid && l.lineAddr == la {
			c.clock++
			l.lastUse = c.clock
			r := LookupResult{Hit: true, WasPrefetched: l.prefetched, Slot: int(i)}
			l.prefetched = false
			return r
		}
		return LookupResult{Slot: -1}
	}
	base := c.SetIndex(indexAddr) * c.cfg.Ways
	set := c.lines[base : base+c.cfg.Ways]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			c.clock++
			set[i].lastUse = c.clock
			r := LookupResult{Hit: true, WasPrefetched: set[i].prefetched, Slot: int(base) + i}
			set[i].prefetched = false
			return r
		}
	}
	return LookupResult{Slot: -1}
}

// FindSlot returns the global line index (set*ways+way) of the resident
// line containing paddr, or -1. It touches no LRU or prefetch state; the
// sim fast path uses it to remember where a line landed.
func (c *Cache) FindSlot(indexAddr, paddr uint64) int {
	la := c.LineAddr(paddr)
	base := c.SetIndex(indexAddr) * c.cfg.Ways
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.lines[i].valid && c.lines[i].lineAddr == la {
			return int(i)
		}
	}
	return -1
}

// FastTouch re-validates that slot still holds the (never-prefetched)
// line la and, if so, applies exactly the LRU update a Lookup hit would.
// It reports false — touching no state at all — when the slot has been
// refilled, invalidated, or holds a prefetched copy; the caller must then
// fall back to the reference path, whose prefetch branch has additional
// observable effects this shortcut must not replicate.
func (c *Cache) FastTouch(slot int, la uint64) bool {
	l := &c.lines[slot]
	if !l.valid || l.lineAddr != la || l.prefetched {
		return false
	}
	c.clock++
	l.lastUse = c.clock
	return true
}

// FastDirty is FastTouch plus the dirty marking a MarkDirty hit performs.
func (c *Cache) FastDirty(slot int, la uint64) bool {
	l := &c.lines[slot]
	if !l.valid || l.lineAddr != la || l.prefetched {
		return false
	}
	l.dirty = true
	c.clock++
	l.lastUse = c.clock
	return true
}

// FastTouchN applies n additional FastTouch hits to a slot a FastTouch
// just validated, leaving the cache in the exact state n individual
// calls would (clock advances n, lastUse lands on the final value). The
// vector replay applier batches a run of same-line hits this way; the
// line cannot change between them because nothing else touches the
// cache inside the run.
func (c *Cache) FastTouchN(slot int, n uint64) {
	c.clock += n
	c.lines[slot].lastUse = c.clock
}

// FastDirtyN is FastTouchN for store hits (dirty is already set by the
// validating FastDirty; repeating it is idempotent).
func (c *Cache) FastDirtyN(slot int, n uint64) {
	c.clock += n
	c.lines[slot].lastUse = c.clock
}

// Contains reports whether the line containing paddr is present, without
// touching LRU or prefetch state.
func (c *Cache) Contains(indexAddr, paddr uint64) bool {
	la := c.LineAddr(paddr)
	for _, l := range c.set(indexAddr) {
		if l.valid && l.lineAddr == la {
			return true
		}
	}
	return false
}

// Eviction describes a victim line displaced by Insert.
type Eviction struct {
	Valid    bool
	Dirty    bool
	LineAddr uint64 // physical line number of the victim
}

// PAddr returns the victim's physical byte address.
func (e Eviction) PAddr(lineBytes uint64) uint64 { return e.LineAddr * lineBytes }

// Insert installs the line containing paddr (indexed by indexAddr),
// choosing an invalid way or the LRU victim. It returns the eviction (if
// any). If the line is already present it is refreshed in place (its dirty
// bit is preserved, ORed with the new one).
func (c *Cache) Insert(indexAddr, paddr uint64, dirty, prefetched bool) Eviction {
	la := c.LineAddr(paddr)
	set := c.set(indexAddr)
	c.clock++
	// Refresh in place if present.
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			set[i].lastUse = c.clock
			set[i].dirty = set[i].dirty || dirty
			set[i].prefetched = set[i].prefetched && prefetched
			return Eviction{}
		}
	}
	// Prefer an invalid way; otherwise evict the least recently used.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	ev := Eviction{Valid: set[victim].valid, Dirty: set[victim].valid && set[victim].dirty, LineAddr: set[victim].lineAddr}
	set[victim] = line{lineAddr: la, lastUse: c.clock, valid: true, dirty: dirty, prefetched: prefetched}
	return ev
}

// MarkDirty marks the line containing paddr dirty (store hit). It reports
// whether the line was present.
func (c *Cache) MarkDirty(indexAddr, paddr uint64) bool {
	la := c.LineAddr(paddr)
	set := c.set(indexAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			set[i].dirty = true
			c.clock++
			set[i].lastUse = c.clock
			set[i].prefetched = false
			return true
		}
	}
	return false
}

// FlushLine removes the line containing paddr (indexed by indexAddr) and
// reports (present, wasDirty). A flush writes dirty data back (the caller
// accounts for the traffic); the line becomes invalid either way.
func (c *Cache) FlushLine(indexAddr, paddr uint64) (present, dirty bool) {
	la := c.LineAddr(paddr)
	set := c.set(indexAddr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

// FlushAll invalidates every line, invoking fn for each valid line with
// its physical line number and dirty bit (for writeback accounting). fn
// may be nil.
func (c *Cache) FlushAll(fn func(lineAddr uint64, dirty bool)) {
	for i := range c.lines {
		if c.lines[i].valid {
			if fn != nil {
				fn(c.lines[i].lineAddr, c.lines[i].dirty)
			}
			c.lines[i] = line{}
		}
	}
}

// ValidLines returns the number of valid lines (test/diagnostic helper).
func (c *Cache) ValidLines() uint64 {
	var n uint64
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
