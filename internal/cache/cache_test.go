package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultGeometries(t *testing.T) {
	l1 := L1Default()
	if l1.Sets() != 1024 { // 32KB / 32B / 1 way
		t.Errorf("L1 sets = %d, want 1024", l1.Sets())
	}
	l2 := L2Default()
	if l2.Sets() != 1024 { // 256KB / 128B / 2 ways
		t.Errorf("L2 sets = %d, want 1024", l2.Sets())
	}
	if err := l1.Validate(); err != nil {
		t.Error(err)
	}
	if err := l2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{Name: "x", Bytes: 1000, LineBytes: 32, Ways: 1},
		{Name: "x", Bytes: 1024, LineBytes: 33, Ways: 1},
		{Name: "x", Bytes: 1024, LineBytes: 32, Ways: 3},
		{Name: "x", Bytes: 64, LineBytes: 64, Ways: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustNew(t, L1Default())
	if c.Lookup(0x1000, 0x1000).Hit {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x1000, 0x1000, false, false)
	if !c.Lookup(0x1000, 0x1000).Hit {
		t.Fatal("miss after insert")
	}
	// Same line, different offset.
	if !c.Lookup(0x101F, 0x101F).Hit {
		t.Fatal("miss within same line")
	}
	// Next line.
	if c.Lookup(0x1020, 0x1020).Hit {
		t.Fatal("hit on different line")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mustNew(t, L1Default())
	sz := L1Default().Bytes
	c.Insert(0x40, 0x40, false, false)
	// Same index, different tag: must evict.
	ev := c.Insert(0x40+sz, 0x40+sz, false, false)
	if !ev.Valid || ev.LineAddr != 0x40/32 {
		t.Errorf("eviction = %+v", ev)
	}
	if c.Lookup(0x40, 0x40).Hit {
		t.Error("conflicting line still present")
	}
	if !c.Lookup(0x40+sz, 0x40+sz).Hit {
		t.Error("new line absent")
	}
}

func TestTwoWayLRU(t *testing.T) {
	cfg := Config{Name: "t", Bytes: 512, LineBytes: 64, Ways: 2, HitCycles: 1}
	c := mustNew(t, cfg)
	// Set count = 512/64/2 = 4. Lines with same index: stride 256.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a, a, false, false)
	c.Insert(b, b, false, false)
	c.Lookup(a, a) // a most recently used
	ev := c.Insert(d, d, false, false)
	if !ev.Valid || ev.LineAddr != b/64 {
		t.Errorf("LRU victim = %+v, want line %d", ev, b/64)
	}
	if !c.Lookup(a, a).Hit || !c.Lookup(d, d).Hit || c.Lookup(b, b).Hit {
		t.Error("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionAndFlush(t *testing.T) {
	c := mustNew(t, L1Default())
	c.Insert(0x80, 0x80, false, false)
	if !c.MarkDirty(0x80, 0x80) {
		t.Fatal("MarkDirty missed present line")
	}
	if c.MarkDirty(0xFFFF80, 0xFFFF80) {
		t.Fatal("MarkDirty hit absent line")
	}
	sz := L1Default().Bytes
	ev := c.Insert(0x80+sz, 0x80+sz, false, false)
	if !ev.Dirty {
		t.Error("dirty victim not reported dirty")
	}
	c.Insert(0x80, 0x80, true, false)
	present, dirty := c.FlushLine(0x80, 0x80)
	if !present || !dirty {
		t.Errorf("FlushLine = (%v, %v)", present, dirty)
	}
	if c.Lookup(0x80, 0x80).Hit {
		t.Error("line present after flush")
	}
	present, _ = c.FlushLine(0x80, 0x80)
	if present {
		t.Error("flush of absent line reported present")
	}
}

func TestInsertRefreshPreservesDirty(t *testing.T) {
	c := mustNew(t, L2Default())
	c.Insert(0x100, 0x100, true, false)
	ev := c.Insert(0x100, 0x100, false, false)
	if ev.Valid {
		t.Error("refresh evicted something")
	}
	_, dirty := c.FlushLine(0x100, 0x100)
	if !dirty {
		t.Error("refresh lost dirty bit")
	}
}

func TestPrefetchedBit(t *testing.T) {
	c := mustNew(t, L1Default())
	c.Insert(0x200, 0x200, false, true)
	r := c.Lookup(0x200, 0x200)
	if !r.Hit || !r.WasPrefetched {
		t.Errorf("first use of prefetched line: %+v", r)
	}
	r = c.Lookup(0x200, 0x200)
	if !r.Hit || r.WasPrefetched {
		t.Errorf("second use still flagged prefetched: %+v", r)
	}
}

func TestVirtualIndexAliasing(t *testing.T) {
	// VIPT: same physical line inserted under two virtual indexes lives in
	// two sets; lookup under each index finds it, under others not.
	c := mustNew(t, L1Default())
	paddr := uint64(0x5000)
	v1, v2 := uint64(0x10000), uint64(0x24000) // different L1 indexes
	if c.SetIndex(v1) == c.SetIndex(v2) {
		t.Fatal("test addresses alias; pick others")
	}
	c.Insert(v1, paddr, false, false)
	if !c.Lookup(v1, paddr).Hit {
		t.Error("miss under inserting alias")
	}
	if c.Lookup(v2, paddr).Hit {
		t.Error("hit under other alias (different set)")
	}
}

func TestFlushAll(t *testing.T) {
	c := mustNew(t, L2Default())
	c.Insert(0, 0, true, false)
	c.Insert(1<<20, 1<<20, false, false)
	var dirtyCount, total int
	c.FlushAll(func(lineAddr uint64, dirty bool) {
		total++
		if dirty {
			dirtyCount++
		}
	})
	if total != 2 || dirtyCount != 1 {
		t.Errorf("FlushAll visited %d lines, %d dirty", total, dirtyCount)
	}
	if c.ValidLines() != 0 {
		t.Error("lines remain after FlushAll")
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	cfg := Config{Name: "t", Bytes: 512, LineBytes: 64, Ways: 2, HitCycles: 1}
	c := mustNew(t, cfg)
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a, a, false, false)
	c.Insert(b, b, false, false)
	if !c.Contains(a, a) {
		t.Fatal("Contains missed present line")
	}
	// Contains must not refresh a's LRU position: a is still the victim.
	ev := c.Insert(d, d, false, false)
	if ev.LineAddr != a/64 {
		t.Errorf("Contains disturbed LRU: victim %+v", ev)
	}
}

// refModel is an independent reference implementation: set-associative LRU
// over (set, lineAddr) with exact tag identity.
type refModel struct {
	cfg   Config
	sets  []map[uint64]uint64 // lineAddr -> lastUse
	dirty []map[uint64]bool
	tick  uint64
}

func newRef(cfg Config) *refModel {
	r := &refModel{cfg: cfg}
	for i := uint64(0); i < cfg.Sets(); i++ {
		r.sets = append(r.sets, map[uint64]uint64{})
		r.dirty = append(r.dirty, map[uint64]bool{})
	}
	return r
}

func (r *refModel) idx(a uint64) uint64 { return (a / r.cfg.LineBytes) % r.cfg.Sets() }
func (r *refModel) la(a uint64) uint64  { return a / r.cfg.LineBytes }

func (r *refModel) lookup(a uint64) bool {
	s := r.idx(a)
	if _, ok := r.sets[s][r.la(a)]; ok {
		r.tick++
		r.sets[s][r.la(a)] = r.tick
		return true
	}
	return false
}

func (r *refModel) insert(a uint64, dirty bool) {
	s := r.idx(a)
	la := r.la(a)
	r.tick++
	if _, ok := r.sets[s][la]; ok {
		r.sets[s][la] = r.tick
		r.dirty[s][la] = r.dirty[s][la] || dirty
		return
	}
	if uint64(len(r.sets[s])) >= r.cfg.Ways {
		var victim uint64
		best := ^uint64(0)
		for l, use := range r.sets[s] {
			if use < best {
				best, victim = use, l
			}
		}
		delete(r.sets[s], victim)
		delete(r.dirty[s], victim)
	}
	r.sets[s][la] = r.tick
	r.dirty[s][la] = dirty
}

// TestReferenceEquivalence drives the cache and the reference model with
// the same random access stream (PIPT, so index == physical) and demands
// identical hit/miss classification throughout.
func TestReferenceEquivalence(t *testing.T) {
	cfg := Config{Name: "t", Bytes: 4096, LineBytes: 64, Ways: 4, HitCycles: 1}
	c := mustNew(t, cfg)
	ref := newRef(cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		a := uint64(rng.Intn(4 * 4096)) // 4x capacity working set
		isStore := rng.Intn(4) == 0
		got := c.Lookup(a, a).Hit
		want := ref.lookup(a)
		if got != want {
			t.Fatalf("step %d addr %#x: cache hit=%v ref hit=%v", i, a, got, want)
		}
		if !got {
			// Fill on miss (loads always; stores only if write-allocate).
			if !isStore || cfg.WriteAllocate {
				c.Insert(a, a, isStore, false)
				ref.insert(a, isStore)
			}
		} else if isStore {
			c.MarkDirty(a, a)
			s := ref.idx(a)
			ref.dirty[s][ref.la(a)] = true
		}
	}
}

func TestEvictionPAddr(t *testing.T) {
	ev := Eviction{Valid: true, LineAddr: 5}
	if ev.PAddr(32) != 160 {
		t.Errorf("PAddr = %d", ev.PAddr(32))
	}
}

func TestInsertRefreshClearsPrefetchOnDemand(t *testing.T) {
	c := mustNew(t, L1Default())
	c.Insert(0x100, 0x100, false, true)  // prefetched
	c.Insert(0x100, 0x100, false, false) // refreshed by a demand fill
	r := c.Lookup(0x100, 0x100)
	if !r.Hit || r.WasPrefetched {
		t.Errorf("refresh did not clear prefetched bit: %+v", r)
	}
}
