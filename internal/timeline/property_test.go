package timeline

import (
	"math/rand"
	"testing"
)

// TestAccountingProperty drives a Resource with seeded-random interleaved
// Acquire and Reset operations and checks it against a reference model:
//
//   - BusyCycles is the sum of durations since the last Reset, Uses the
//     number of reservations since the last Reset.
//   - A reservation never starts before its request time and never before
//     the end of the previous reservation (time never goes backwards,
//     even when request times jump around).
//   - The installed observer sees exactly the (start, end) pair returned
//     by every Acquire, including ones made after a Reset.
func TestAccountingProperty(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var r Resource

		type span struct{ start, end Time }
		var observed []span
		r.Observe(func(start, end Time) { observed = append(observed, span{start, end}) })

		var (
			wantBusy, wantUses uint64
			wantUntil, prevEnd Time
			acquires           int
		)
		for op := 0; op < 500; op++ {
			if rng.Intn(10) == 0 {
				r.Reset()
				wantBusy, wantUses, wantUntil, prevEnd = 0, 0, 0, 0
				if r.BusyCycles() != 0 || r.Uses() != 0 || r.BusyUntil() != 0 {
					t.Fatalf("seed %d op %d: Reset left accounting: busy=%d uses=%d until=%d",
						seed, op, r.BusyCycles(), r.Uses(), r.BusyUntil())
				}
				continue
			}
			// Request times deliberately non-monotone: background
			// activity (prefetches, writebacks) reserves future time
			// while the CPU is still in the past.
			at := Time(rng.Intn(10000))
			dur := uint64(rng.Intn(50))
			start, end := r.Acquire(at, dur)
			acquires++

			if start < at {
				t.Fatalf("seed %d op %d: start %d before request %d", seed, op, start, at)
			}
			if start < prevEnd {
				t.Fatalf("seed %d op %d: start %d before previous reservation end %d (time went backwards)",
					seed, op, start, prevEnd)
			}
			if end != start+dur {
				t.Fatalf("seed %d op %d: end %d != start %d + dur %d", seed, op, end, start, dur)
			}
			wantStart := at
			if wantUntil > wantStart {
				wantStart = wantUntil
			}
			if start != wantStart {
				t.Fatalf("seed %d op %d: start %d, model says %d", seed, op, start, wantStart)
			}
			prevEnd = end
			wantUntil = end
			wantBusy += dur
			wantUses++
			if r.BusyCycles() != wantBusy || r.Uses() != wantUses || r.BusyUntil() != wantUntil {
				t.Fatalf("seed %d op %d: accounting busy=%d uses=%d until=%d, model %d/%d/%d",
					seed, op, r.BusyCycles(), r.Uses(), r.BusyUntil(), wantBusy, wantUses, wantUntil)
			}
			if len(observed) != acquires {
				t.Fatalf("seed %d op %d: observer saw %d reservations, want %d (did Reset drop it?)",
					seed, op, len(observed), acquires)
			}
			if got := observed[len(observed)-1]; got.start != start || got.end != end {
				t.Fatalf("seed %d op %d: observer saw [%d,%d), Acquire returned [%d,%d)",
					seed, op, got.start, got.end, start, end)
			}
		}
	}
}
