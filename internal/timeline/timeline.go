// Package timeline provides the simulator's notion of time and of
// exclusive hardware resources.
//
// The simulator is execution-driven, not event-driven: a single-issue CPU
// walks forward through the program, and every hardware unit a memory
// access touches (bus, L2 port, controller, DRAM banks) is modeled as a
// Resource with a busy-until horizon. Background activity (prefetches,
// writebacks) advances those horizons without blocking the CPU, which is
// how the model captures contention — e.g. the paper's observation that L1
// prefetching can hurt matrix product by contending for the L2.
package timeline

// Time is a cycle count since simulation start.
type Time = uint64

// AcquireObserver receives each reservation made on a Resource, after its
// start/end have been decided. Observers must not mutate the resource;
// they exist so the observability layer can attribute busy time to cycle
// windows and trace tracks without the resource knowing about either.
type AcquireObserver func(start, end Time)

// Resource serializes use of one hardware unit. The zero value is an idle
// resource.
type Resource struct {
	busyUntil  Time
	busyCycles uint64
	uses       uint64
	obs        AcquireObserver
}

// Observe installs (or clears, with nil) the reservation observer. The
// observer survives Reset: accounting state is per-run, instrumentation
// is per-machine.
func (r *Resource) Observe(f AcquireObserver) { r.obs = f }

// Acquire reserves the resource for dur cycles starting no earlier than at,
// and no earlier than the end of any previous reservation. It returns the
// reservation's start and end times.
func (r *Resource) Acquire(at Time, dur uint64) (start, end Time) {
	start = at
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + dur
	r.busyUntil = end
	r.busyCycles += dur
	r.uses++
	if r.obs != nil {
		r.obs(start, end)
	}
	return start, end
}

// BusyUntil returns the time at which the resource becomes free.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyCycles returns the cumulative cycles of reservation.
func (r *Resource) BusyCycles() uint64 { return r.busyCycles }

// Uses returns how many reservations have been made.
func (r *Resource) Uses() uint64 { return r.uses }

// Reset returns the resource to idle and clears its accounting. The
// installed observer, if any, is preserved.
func (r *Resource) Reset() { *r = Resource{obs: r.obs} }
