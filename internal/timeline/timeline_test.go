package timeline

import (
	"testing"
	"testing/quick"
)

func TestAcquireIdle(t *testing.T) {
	var r Resource
	s, e := r.Acquire(100, 10)
	if s != 100 || e != 110 {
		t.Errorf("Acquire idle: start=%d end=%d", s, e)
	}
}

func TestAcquireSerializes(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	s, e := r.Acquire(105, 5) // arrives while busy
	if s != 110 || e != 115 {
		t.Errorf("Acquire busy: start=%d end=%d, want 110/115", s, e)
	}
	s, e = r.Acquire(200, 5) // arrives after idle again
	if s != 200 || e != 205 {
		t.Errorf("Acquire re-idle: start=%d end=%d", s, e)
	}
}

func TestAccounting(t *testing.T) {
	var r Resource
	r.Acquire(0, 4)
	r.Acquire(0, 6)
	if r.BusyCycles() != 10 || r.Uses() != 2 || r.BusyUntil() != 10 {
		t.Errorf("accounting: busy=%d uses=%d until=%d", r.BusyCycles(), r.Uses(), r.BusyUntil())
	}
	r.Reset()
	if r.BusyCycles() != 0 || r.Uses() != 0 || r.BusyUntil() != 0 {
		t.Error("Reset did not clear")
	}
}

// Property: reservations never overlap and never start before the request.
func TestNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		var r Resource
		var prevEnd Time
		var at Time
		for _, q := range reqs {
			at += Time(q.At) // monotone request times, as the CPU produces
			s, e := r.Acquire(at, uint64(q.Dur))
			if s < at || s < prevEnd || e != s+uint64(q.Dur) {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
