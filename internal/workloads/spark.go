package workloads

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// Spark98-style symmetric sparse matrix-vector product. The paper's §3.1
// motivates SMVP with both NAS CG and "the Spark98 earthquake
// simulations" [17], whose kernels multiply a symmetric stiffness matrix
// stored as one triangle: each stored entry A[i][j] contributes to both
// y[i] += A_ij * x[j] and y[j] += A_ij * x[i]. That gives *two* irregular
// streams per nonzero (a gather of x[col] and a scatter-accumulate into
// y[col]); Impulse accelerates the gather, while the scatter-accumulate
// stays on the CPU (a controller cannot combine read-modify-write),
// which makes Spark98 a harder target than CG — exactly why it is an
// interesting extension.

// SparkMesh is a symmetric sparse matrix in triangle-CSR form (the
// Spark98 "local" kernel's layout): only entries with j < i are stored,
// plus the diagonal separately.
type SparkMesh struct {
	N    int
	Rows []int32 // length N+1, offsets into Cols/Vals (strict lower triangle)
	Cols []uint32
	Vals []float64
	Diag []float64
}

// NNZ returns the number of stored off-diagonal entries.
func (m *SparkMesh) NNZ() int { return len(m.Vals) }

// MakeSparkMesh builds the matrix of a nodesX x nodesY grid mesh with
// 8-neighbor connectivity — structurally similar to the 2D earthquake
// meshes Spark98 packages (sf2 etc.), deterministic and symmetric
// positive weights.
func MakeSparkMesh(nodesX, nodesY int) *SparkMesh {
	n := nodesX * nodesY
	m := &SparkMesh{N: n, Rows: make([]int32, n+1), Diag: make([]float64, n)}
	id := func(x, y int) int { return y*nodesX + x }
	for y := 0; y < nodesY; y++ {
		for x := 0; x < nodesX; x++ {
			i := id(x, y)
			// Neighbors with smaller index: W, NW, N, NE.
			deltas := [][2]int{{-1, 0}, {-1, -1}, {0, -1}, {1, -1}}
			for _, d := range deltas {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= nodesX || ny >= nodesY {
					continue
				}
				j := id(nx, ny)
				m.Cols = append(m.Cols, uint32(j))
				m.Vals = append(m.Vals, -1.0/float64((x+y+nx+ny)%7+2))
			}
			m.Rows[i+1] = int32(len(m.Vals))
			m.Diag[i] = 9 + float64((x*3+y*5)%11)
		}
	}
	return m
}

// MulVec computes y = A x on the host using the symmetric expansion.
func (m *SparkMesh) MulVec(y, x []float64) {
	for i := 0; i < m.N; i++ {
		y[i] = m.Diag[i] * x[i]
	}
	for i := 0; i < m.N; i++ {
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			j := m.Cols[k]
			v := m.Vals[k]
			y[i] += v * x[j]
			y[j] += v * x[i]
		}
	}
}

// SparkResult carries verification output and the measured Row.
type SparkResult struct {
	Checksum float64
	Row      core.Row
}

// RunSpark runs `iters` symmetric SMVPs (y = A x; x = y scaled) on the
// simulated machine. useGather routes the x[col] stream through an
// Impulse scatter/gather alias; the y[col] scatter-accumulate always
// stays on the CPU.
func RunSpark(s *core.System, mesh *SparkMesh, iters int, useGather bool) (SparkResult, error) {
	n := uint64(mesh.N)
	nnz := uint64(mesh.NNZ())
	rows := s.MustAlloc((n+1)*4, 0)
	cols := s.MustAlloc(nnz*4, 0)
	vals := s.MustAlloc(nnz*8, 0)
	diag := s.MustAlloc(n*8, 0)
	x := s.MustAlloc(n*8, 0)
	y := s.MustAlloc(n*8, 0)
	s.StoreStreamI32(rows, mesh.Rows)
	s.StoreStreamU32(cols, mesh.Cols)
	s.StoreStreamF64(vals, mesh.Vals)
	s.StoreStreamF64(diag, mesh.Diag)
	s.StoreStreamF64Gen(x, n, func(i uint64) float64 { return 1 + float64(i%5)/8 })

	sec := s.BeginSection()
	var alias addr.VAddr
	if useGather {
		if !s.IsImpulse() {
			return SparkResult{}, core.ErrNotImpulse
		}
		l1 := s.Config().L1.Bytes
		l1Off := (uint64(vals) + l1/2) % l1
		var err error
		alias, err = s.MapScatterGather(x, n*8, 8, cols, nnz, l1Off)
		if err != nil {
			return SparkResult{}, err
		}
	}

	for it := 0; it < iters; it++ {
		if useGather {
			// Consistency: x was rewritten last iteration.
			s.FlushVRange(x, n*8)
			s.PurgeVRange(alias, nnz*8)
			s.MC.InvalidateBuffers()
		}
		// y = diag .* x
		for i := uint64(0); i < n; i++ {
			o := addr.VAddr(8 * i)
			s.StoreF64(y+o, s.LoadF64(diag+o)*s.LoadF64(x+o))
			s.Tick(cgVecTicks)
		}
		// Triangle sweep.
		prev := s.Load32(rows)
		for i := uint64(0); i < n; i++ {
			next := s.Load32(rows + addr.VAddr(4*(i+1)))
			xi := s.LoadF64(x + addr.VAddr(8*i))
			yi := s.LoadF64(y + addr.VAddr(8*i))
			for k := prev; k < next; k++ {
				j := s.Load32(cols + addr.VAddr(4*k))
				v := s.LoadF64(vals + addr.VAddr(8*k))
				var xj float64
				if useGather {
					xj = s.LoadF64(alias + addr.VAddr(8*k))
					s.Tick(cgInnerTicksSG)
				} else {
					xj = s.LoadF64(x + addr.VAddr(8*uint64(j)))
					s.Tick(cgInnerTicksConv)
				}
				yi += v * xj
				// Scatter-accumulate into y[j]: CPU read-modify-write.
				yj := s.LoadF64(y + addr.VAddr(8*uint64(j)))
				s.StoreF64(y+addr.VAddr(8*uint64(j)), yj+v*xi)
				s.Tick(2)
			}
			s.StoreF64(y+addr.VAddr(8*i), yi)
			s.Tick(cgOuterTicks)
			prev = next
		}
		// x = y / 16 (keeps values bounded; same order on host).
		for i := uint64(0); i < n; i++ {
			o := addr.VAddr(8 * i)
			s.StoreF64(x+o, s.LoadF64(y+o)*(1.0/16))
			s.Tick(cgVecTicks)
		}
	}
	var checksum float64
	for i := uint64(0); i < n; i++ {
		checksum += s.LoadF64(x+addr.VAddr(8*i)) * float64(i%9+1)
	}
	label := "spark conventional"
	if useGather {
		label = "spark scatter/gather"
	}
	row, err := sec.End(label)
	if err != nil {
		return SparkResult{}, err
	}
	return SparkResult{Checksum: checksum, Row: row}, nil
}

// RefSpark computes the identical iteration on the host.
func RefSpark(mesh *SparkMesh, iters int) float64 {
	n := mesh.N
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%5)/8
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			y[i] = mesh.Diag[i] * x[i]
		}
		prev := mesh.Rows[0]
		for i := 0; i < n; i++ {
			next := mesh.Rows[i+1]
			xi := x[i]
			yi := y[i]
			for k := prev; k < next; k++ {
				j := mesh.Cols[k]
				v := mesh.Vals[k]
				yi += v * x[j]
				y[j] += v * xi
			}
			y[i] = yi
			prev = next
		}
		for i := 0; i < n; i++ {
			x[i] = y[i] * (1.0 / 16)
		}
	}
	var checksum float64
	for i := 0; i < n; i++ {
		checksum += x[i] * float64(i%9+1)
	}
	return checksum
}

// String identifies the mesh.
func (m *SparkMesh) String() string {
	return fmt.Sprintf("spark mesh: %d nodes, %d edges", m.N, m.NNZ())
}
