package workloads

import (
	"math"
	"testing"

	"impulse/internal/core"
)

func TestSparkMeshStructure(t *testing.T) {
	m := MakeSparkMesh(8, 6)
	if m.N != 48 || len(m.Rows) != 49 || len(m.Diag) != 48 {
		t.Fatalf("mesh dims: %v", m)
	}
	// Strict lower triangle: every stored column index < its row.
	for i := 0; i < m.N; i++ {
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			if int(m.Cols[k]) >= i {
				t.Fatalf("row %d stores column %d (not strict lower)", i, m.Cols[k])
			}
		}
	}
	// Interior nodes have 4 smaller-index neighbors.
	interior := m.Rows[m.N] // total edges
	if interior == 0 {
		t.Fatal("mesh has no edges")
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestSparkMulVecSymmetric(t *testing.T) {
	m := MakeSparkMesh(5, 5)
	// Build the dense symmetric matrix and compare MulVec.
	n := m.N
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		dense[i][i] = m.Diag[i]
	}
	for i := 0; i < n; i++ {
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			j := m.Cols[k]
			dense[i][j] = m.Vals[k]
			dense[j][i] = m.Vals[k]
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, n)
	m.MulVec(y, x)
	for i := 0; i < n; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += dense[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-9 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestSparkMatchesReference(t *testing.T) {
	mesh := MakeSparkMesh(24, 20)
	want := RefSpark(mesh, 3)

	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunSpark(conv, mesh, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Checksum != want {
		t.Errorf("conventional checksum %v != %v", rc.Checksum, want)
	}

	for _, pf := range []core.PrefetchPolicy{core.PrefetchNone, core.PrefetchBoth} {
		imp := newTestSystem(t, core.Impulse, pf)
		ri, err := RunSpark(imp, mesh, 3, true)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Checksum != want {
			t.Errorf("gather/%v checksum %v != %v", pf, ri.Checksum, want)
		}
		if ri.Row.Stats.ShadowReads == 0 {
			t.Error("gather path unused")
		}
	}
}

func TestSparkGatherRequiresImpulse(t *testing.T) {
	mesh := MakeSparkMesh(8, 8)
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunSpark(s, mesh, 1, true); err != core.ErrNotImpulse {
		t.Errorf("gather on conventional: %v", err)
	}
}

func TestSparkPerformanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large spark mesh")
	}
	// A mesh whose x vector (90K nodes -> 720 KB) far exceeds the L1 and
	// overflows the L2, like the earthquake meshes.
	mesh := MakeSparkMesh(300, 300)
	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunSpark(conv, mesh, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := newTestSystem(t, core.Impulse, core.PrefetchMC)
	ri, err := RunSpark(imp, mesh, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Checksum != ri.Checksum {
		t.Fatalf("checksums differ: %v vs %v", rc.Checksum, ri.Checksum)
	}
	if ri.Row.Cycles >= rc.Row.Cycles {
		t.Errorf("gather+prefetch (%d) not faster than conventional (%d)", ri.Row.Cycles, rc.Row.Cycles)
	}
	// Unlike CG, the load count does NOT drop: the CPU still needs
	// COLUMN[k] for the scatter-accumulate into y. The win is spatial
	// locality of the gathered x stream.
	if ri.Row.Stats.Loads != rc.Row.Stats.Loads {
		t.Errorf("unexpected load-count change: %d vs %d", ri.Row.Stats.Loads, rc.Row.Stats.Loads)
	}
	if ri.Row.L1Ratio <= rc.Row.L1Ratio {
		t.Errorf("gather L1 ratio %.3f not above conventional %.3f", ri.Row.L1Ratio, rc.Row.L1Ratio)
	}
}
