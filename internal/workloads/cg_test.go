package workloads

import (
	"testing"

	"impulse/internal/core"
)

func newTestSystem(t *testing.T, kind core.ControllerKind, pf core.PrefetchPolicy) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Options{Controller: kind, Prefetch: pf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunCGMatchesReferenceAllModes(t *testing.T) {
	par := CGClassTiny()
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	wantZeta, wantRNorm := RefCG(m, par)

	cases := []struct {
		kind core.ControllerKind
		mode CGMode
		pf   core.PrefetchPolicy
	}{
		{core.Conventional, CGConventional, core.PrefetchNone},
		{core.Conventional, CGConventional, core.PrefetchL1},
		{core.Impulse, CGConventional, core.PrefetchMC},
		{core.Impulse, CGScatterGather, core.PrefetchNone},
		{core.Impulse, CGScatterGather, core.PrefetchBoth},
		{core.Impulse, CGRecolor, core.PrefetchNone},
		{core.Impulse, CGRecolor, core.PrefetchMC},
	}
	for _, c := range cases {
		s := newTestSystem(t, c.kind, c.pf)
		res, err := RunCG(s, par, c.mode, m)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.mode, c.pf, err)
		}
		if res.Zeta != wantZeta {
			t.Errorf("%v/%v: zeta %v != reference %v", c.mode, c.pf, res.Zeta, wantZeta)
		}
		if res.RNorm != wantRNorm {
			t.Errorf("%v/%v: rnorm %v != reference %v", c.mode, c.pf, res.RNorm, wantRNorm)
		}
		if res.Row.Cycles == 0 || res.NNZ != m.NNZ() {
			t.Errorf("%v/%v: implausible result %+v", c.mode, c.pf, res)
		}
	}
}

func TestCGScatterGatherStats(t *testing.T) {
	par := CGClassTiny()
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	s := newTestSystem(t, core.Impulse, core.PrefetchNone)
	res, err := RunCG(s, par, CGScatterGather, m)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Row.Stats
	if st.ShadowReads == 0 || st.ShadowDRAMReads == 0 {
		t.Errorf("gather path unused: %+v", st)
	}
	// The gather mode issues fewer loads than conventional (no CPU
	// indirection loads).
	s2 := newTestSystem(t, core.Conventional, core.PrefetchNone)
	res2, err := RunCG(s2, par, CGConventional, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads >= res2.Row.Stats.Loads {
		t.Errorf("scatter/gather loads %d not below conventional %d", st.Loads, res2.Row.Stats.Loads)
	}
}

func TestCGScatterGatherRequiresImpulse(t *testing.T) {
	par := CGClassTiny()
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunCG(s, par, CGScatterGather, m); err == nil {
		t.Error("scatter/gather on conventional controller succeeded")
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	par := CGClassTiny()
	m := MakeA(par.N/2, par.Nonzer, par.RCond, par.Shift)
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunCG(s, par, CGConventional, m); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestCGPerformanceShape checks the paper's headline ordering on a
// geometry large enough for memory behaviour to matter: scatter/gather
// beats conventional, and prefetching improves scatter/gather further
// (Table 1's 1.33 -> 1.67 progression).
func TestCGPerformanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large CG geometry")
	}
	par := CGPaperGeometry()
	par.CGIts = 2 // enough SMVPs to expose the memory behaviour
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)

	run := func(kind core.ControllerKind, mode CGMode, pf core.PrefetchPolicy) core.Row {
		s := newTestSystem(t, kind, pf)
		res, err := RunCG(s, par, mode, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.Row
	}
	conv := run(core.Conventional, CGConventional, core.PrefetchNone)
	sg := run(core.Impulse, CGScatterGather, core.PrefetchNone)
	sgPF := run(core.Impulse, CGScatterGather, core.PrefetchMC)

	if sg.Cycles >= conv.Cycles {
		t.Errorf("scatter/gather (%d) not faster than conventional (%d)", sg.Cycles, conv.Cycles)
	}
	if sgPF.Cycles >= sg.Cycles {
		t.Errorf("prefetching did not improve scatter/gather: %d vs %d", sgPF.Cycles, sg.Cycles)
	}
	if sg.L1Ratio <= conv.L1Ratio {
		t.Errorf("scatter/gather L1 ratio %.3f not above conventional %.3f", sg.L1Ratio, conv.L1Ratio)
	}
}
