// Package workloads implements the applications the paper evaluates —
// the NAS conjugate gradient benchmark (§3.1, Table 1) and tiled dense
// matrix-matrix product (§3.2, Table 2) — plus the diagonal-of-a-matrix
// microkernel of Figure 1 and the IPC message-gather scenario sketched in
// §6. Each workload runs against a core.System in one of the paper's
// memory-system configurations and is verified against a plain-Go
// reference computation.
package workloads

import "math"

// randMask is 2^46-1: the NAS pseudorandom generator works modulo 2^46.
const randMask = (uint64(1) << 46) - 1

// nasAmult is the standard NPB multiplier 5^13.
const nasAmult uint64 = 1220703125

// nasSeed is the standard NPB CG seed.
const nasSeed uint64 = 314159265

// nasRand is the NAS parallel benchmarks linear congruential generator:
// x_{k+1} = a * x_k mod 2^46, returning x_{k+1} * 2^-46 in (0,1).
// NPB implements it in double-double arithmetic; since the modulus is a
// power of two, the low 46 bits of a 64-bit product are exact and give
// the identical sequence.
type nasRand struct {
	x uint64
	a uint64
}

func newNASRand(seed, a uint64) *nasRand {
	return &nasRand{x: seed & randMask, a: a & randMask}
}

// next advances the generator and returns the value scaled to (0,1).
func (r *nasRand) next() float64 {
	r.x = (r.x * r.a) & randMask
	return float64(r.x) * math.Exp2(-46)
}

// icnvrt maps a uniform value in (0,1) to an integer in [0, ipwr2), the
// NPB icnvrt helper.
func icnvrt(x float64, ipwr2 int) int {
	return int(float64(ipwr2) * x)
}

// ceilPow2Int returns the smallest power of two >= n (NPB's nn1).
func ceilPow2Int(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// sprnvc generates a sparse random vector with nz distinct nonzero
// positions in [0, n), NPB's sprnvc: positions are drawn by the LCG and
// rejected if out of range or duplicate.
func sprnvc(n, nz int, rng *nasRand) (vals []float64, idx []int) {
	nn1 := ceilPow2Int(n)
	seen := make(map[int]bool, nz)
	vals = make([]float64, 0, nz)
	idx = make([]int, 0, nz)
	for len(idx) < nz {
		vecelt := rng.next()
		vecloc := rng.next()
		i := icnvrt(vecloc, nn1)
		if i >= n || seen[i] {
			continue
		}
		seen[i] = true
		vals = append(vals, vecelt)
		idx = append(idx, i)
	}
	return vals, idx
}

// vecset forces position i to value val in the sparse vector (NPB's
// vecset): overwrite if present, else append.
func vecset(vals []float64, idx []int, i int, val float64) ([]float64, []int) {
	for k, ii := range idx {
		if ii == i {
			vals[k] = val
			return vals, idx
		}
	}
	return append(vals, val), append(idx, i)
}
