package workloads

import (
	"testing"

	"impulse/internal/core"
)

func TestMMPParamsValidate(t *testing.T) {
	good := []MMPParams{{64, 16}, {256, 32}, {512, 32}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []MMPParams{{0, 16}, {64, 0}, {60, 16}, {64, 24}, {64, 8}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestMMPAllModesMatchReference(t *testing.T) {
	par := MMPTiny()
	want := RefMMP(par)
	for _, c := range []struct {
		kind core.ControllerKind
		mode MMPMode
		pf   core.PrefetchPolicy
	}{
		{core.Conventional, MMPNoCopyTiled, core.PrefetchNone},
		{core.Conventional, MMPCopyTiled, core.PrefetchL1},
		{core.Impulse, MMPNoCopyTiled, core.PrefetchMC},
		{core.Impulse, MMPTileRemap, core.PrefetchNone},
		{core.Impulse, MMPTileRemap, core.PrefetchBoth},
	} {
		s := newTestSystem(t, c.kind, c.pf)
		res, err := RunMMP(s, par, c.mode)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.mode, c.pf, err)
		}
		if res.Checksum != want {
			t.Errorf("%v/%v: checksum %v != reference %v", c.mode, c.pf, res.Checksum, want)
		}
		if err := res.Row.Stats.CheckLoadClassification(); err != nil {
			t.Errorf("%v/%v: %v", c.mode, c.pf, err)
		}
	}
}

func TestMMPTileRemapRequiresImpulse(t *testing.T) {
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunMMP(s, MMPTiny(), MMPTileRemap); err == nil {
		t.Error("tile remapping on conventional controller succeeded")
	}
}

// TestMMPPerformanceShape checks Table 2's ordering on a geometry where
// tiles conflict: copying and remapping both crush the no-copy baseline,
// and remapping at least matches copying.
func TestMMPPerformanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large MMP geometry")
	}
	par := MMPParams{N: 128, Tile: 32}
	run := func(kind core.ControllerKind, mode MMPMode) core.Row {
		s := newTestSystem(t, kind, core.PrefetchNone)
		res, err := RunMMP(s, par, mode)
		if err != nil {
			t.Fatal(err)
		}
		return res.Row
	}
	nocopy := run(core.Conventional, MMPNoCopyTiled)
	copying := run(core.Conventional, MMPCopyTiled)
	remap := run(core.Impulse, MMPTileRemap)

	if copying.Cycles >= nocopy.Cycles {
		t.Errorf("copying (%d) not faster than no-copy (%d)", copying.Cycles, nocopy.Cycles)
	}
	if remap.Cycles >= nocopy.Cycles {
		t.Errorf("remapping (%d) not faster than no-copy (%d)", remap.Cycles, nocopy.Cycles)
	}
	if remap.L1Ratio <= nocopy.L1Ratio {
		t.Errorf("remap L1 ratio %.3f not above no-copy %.3f", remap.L1Ratio, nocopy.L1Ratio)
	}
	if copying.L1Ratio <= nocopy.L1Ratio {
		t.Errorf("copy L1 ratio %.3f not above no-copy %.3f", copying.L1Ratio, nocopy.L1Ratio)
	}
}

func TestDiagonalWorkload(t *testing.T) {
	want := RefDiagonal(256)
	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunDiagonal(conv, 256, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := newTestSystem(t, core.Impulse, core.PrefetchNone)
	ri, err := RunDiagonal(imp, 256, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Sum != want || ri.Sum != want {
		t.Fatalf("sums %v / %v != %v", rc.Sum, ri.Sum, want)
	}
	if ri.Row.Stats.BusBytes >= rc.Row.Stats.BusBytes {
		t.Errorf("Impulse moved %d bus bytes, conventional %d", ri.Row.Stats.BusBytes, rc.Row.Stats.BusBytes)
	}
	if ri.Row.Cycles >= rc.Row.Cycles {
		t.Errorf("Impulse diagonal (%d cycles) not faster than conventional (%d)", ri.Row.Cycles, rc.Row.Cycles)
	}
	if ri.String() == "" || rc.String() == "" {
		t.Error("empty DiagResult.String()")
	}
}

func TestIPCWorkload(t *testing.T) {
	const bufs, words, msgs = 8, 64, 3
	want := RefIPC(bufs, words, msgs)
	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunIPC(conv, bufs, words, msgs, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := newTestSystem(t, core.Impulse, core.PrefetchNone)
	ri, err := RunIPC(imp, bufs, words, msgs, true)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Checksum != want || ri.Checksum != want {
		t.Fatalf("checksums %v / %v != %v", rc.Checksum, ri.Checksum, want)
	}
	// The software gather issues a load+store per word per message that
	// Impulse does not.
	if ri.Row.Stats.Loads >= rc.Row.Stats.Loads {
		t.Errorf("Impulse IPC issued %d loads, software %d", ri.Row.Stats.Loads, rc.Row.Stats.Loads)
	}
}
