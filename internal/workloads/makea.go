package workloads

import (
	"math"
	"sort"
)

// SparseMatrix is a CSR-encoded sparse matrix, exactly the encoding of
// the paper's Figure 4: Rows[i] indicates where row i begins in Vals,
// Cols[j] indicates which column the element stored in Vals[j] comes
// from. Indices are 0-based.
type SparseMatrix struct {
	N    int
	Rows []int32 // length N+1
	Cols []uint32
	Vals []float64
}

// NNZ returns the number of stored nonzeros.
func (m *SparseMatrix) NNZ() int { return len(m.Vals) }

// MulVec computes dst = m * src on the host (the reference SMVP used to
// verify the simulated kernels).
func (m *SparseMatrix) MulVec(dst, src []float64) {
	for i := 0; i < m.N; i++ {
		var sum float64
		for j := m.Rows[i]; j < m.Rows[i+1]; j++ {
			sum += m.Vals[j] * src[m.Cols[j]]
		}
		dst[i] = sum
	}
}

// MakeA generates the NAS CG input matrix (NPB's makea): the sum of n
// outer products of sparse random vectors with geometrically decaying
// weights, plus (rcond - shift) added to the diagonal. The result is a
// symmetric positive-definite matrix with condition number ~rcond and
// eigenvalue distribution suitable for the benchmark's power iteration.
func MakeA(n, nonzer int, rcond, shift float64) *SparseMatrix {
	rng := newNASRand(nasSeed, nasAmult)
	// NPB burns one value to initialize (the zeta = randlc(tran, amult)
	// call before makea).
	rng.next()

	acc := make([]map[uint32]float64, n)
	for i := range acc {
		acc[i] = make(map[uint32]float64, 2*nonzer)
	}
	size := 1.0
	ratio := math.Pow(rcond, 1.0/float64(n))
	for iouter := 0; iouter < n; iouter++ {
		vals, idx := sprnvc(n, nonzer, rng)
		vals, idx = vecset(vals, idx, iouter, 0.5)
		for ivelt, jcol := range idx {
			scale := size * vals[ivelt]
			for ivelt1, irow := range idx {
				acc[irow][uint32(jcol)] += vals[ivelt1] * scale
			}
		}
		size *= ratio
	}
	for i := 0; i < n; i++ {
		acc[i][uint32(i)] += rcond - shift
	}

	m := &SparseMatrix{N: n, Rows: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		cols := make([]int, 0, len(acc[i]))
		for c := range acc[i] {
			cols = append(cols, int(c))
		}
		sort.Ints(cols)
		for _, c := range cols {
			m.Cols = append(m.Cols, uint32(c))
			m.Vals = append(m.Vals, acc[i][uint32(c)])
		}
		m.Rows[i+1] = int32(len(m.Vals))
	}
	return m
}

// IsSymmetric verifies A = A^T within tol (a structural sanity check on
// the generator: the sum of outer products x x^T is symmetric).
func (m *SparseMatrix) IsSymmetric(tol float64) bool {
	type key struct{ r, c uint32 }
	elems := make(map[key]float64, m.NNZ())
	for i := 0; i < m.N; i++ {
		for j := m.Rows[i]; j < m.Rows[i+1]; j++ {
			elems[key{uint32(i), m.Cols[j]}] = m.Vals[j]
		}
	}
	for k, v := range elems {
		if math.Abs(v-elems[key{k.c, k.r}]) > tol {
			return false
		}
	}
	return true
}
