package workloads

import (
	"testing"

	"impulse/internal/core"
)

func TestDBParamsValidate(t *testing.T) {
	if err := DBDefault().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DBParams{
		{Records: 0, RecordBytes: 64, FieldOffset: 16},
		{Records: 10, RecordBytes: 48, FieldOffset: 16},
		{Records: 10, RecordBytes: 64, FieldOffset: 60},
		{Records: 10, RecordBytes: 64, FieldOffset: 13},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func dbTestParams() DBParams {
	return DBParams{Records: 16384, RecordBytes: 64, FieldOffset: 16}
}

func TestDBProjectionCorrectBothWays(t *testing.T) {
	p := dbTestParams()
	want := RefDBProjection(p)
	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunDBProjection(conv, p, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := newTestSystem(t, core.Impulse, core.PrefetchNone)
	ri, err := RunDBProjection(imp, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Sum != want || ri.Sum != want {
		t.Fatalf("sums %v / %v != %v", rc.Sum, ri.Sum, want)
	}
	// The dense alias moves 8x less data for 64-byte records.
	if ri.Row.Stats.BusBytes >= rc.Row.Stats.BusBytes/4 {
		t.Errorf("impulse bus bytes %d not well below conventional %d",
			ri.Row.Stats.BusBytes, rc.Row.Stats.BusBytes)
	}
	if ri.Row.Cycles >= rc.Row.Cycles {
		t.Errorf("impulse projection (%d) not faster than conventional (%d)",
			ri.Row.Cycles, rc.Row.Cycles)
	}
}

func TestDBIndexScanCorrectBothWays(t *testing.T) {
	p := dbTestParams()
	const sel = 8
	want := RefDBIndexScan(p, sel)
	conv := newTestSystem(t, core.Conventional, core.PrefetchNone)
	rc, err := RunDBIndexScan(conv, p, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := newTestSystem(t, core.Impulse, core.PrefetchMC)
	ri, err := RunDBIndexScan(imp, p, sel, true)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Sum != want || ri.Sum != want {
		t.Fatalf("sums %v / %v != %v", rc.Sum, ri.Sum, want)
	}
	if ri.Row.Stats.Loads >= rc.Row.Stats.Loads {
		t.Errorf("impulse index scan issued %d loads, conventional %d",
			ri.Row.Stats.Loads, rc.Row.Stats.Loads)
	}
	if ri.Row.Cycles >= rc.Row.Cycles {
		t.Errorf("impulse index scan (%d) not faster than conventional (%d)",
			ri.Row.Cycles, rc.Row.Cycles)
	}
}

func TestDBImpulseRequiresController(t *testing.T) {
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunDBProjection(s, dbTestParams(), true); err != core.ErrNotImpulse {
		t.Errorf("projection: %v", err)
	}
	s2 := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunDBIndexScan(s2, dbTestParams(), 4, true); err != core.ErrNotImpulse {
		t.Errorf("index scan: %v", err)
	}
	s3 := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunDBIndexScan(s3, dbTestParams(), 0, false); err == nil {
		t.Error("zero selectivity accepted")
	}
}
