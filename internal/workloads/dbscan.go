package workloads

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// Database-style scans. The paper's abstract singles out "regularly
// strided, memory-bound applications of commercial importance, such as
// database and multimedia programs" as Impulse targets beyond scientific
// kernels. This file realizes the two canonical cases:
//
//   - Column projection over a row-store: records of recordBytes hold a
//     hot 8-byte field at a fixed offset; a full-table scan of that field
//     is a strided access that wastes (recordBytes-8)/recordBytes of
//     every cache line on a conventional system, and becomes a dense
//     stream under a base+stride shadow alias.
//   - Index scan: a selection produces a record-id list; fetching the
//     hot field of the selected records is an indirect access that
//     becomes an Impulse scatter/gather through the RID vector.

// DBParams sizes the synthetic table.
type DBParams struct {
	Records     int
	RecordBytes uint64 // power of two >= 16 (field alignment)
	FieldOffset uint64 // byte offset of the hot 8-byte field
}

// DBDefault is a 64 K-record table of 64-byte records — 4 MB, far beyond
// the L2.
func DBDefault() DBParams {
	return DBParams{Records: 64 << 10, RecordBytes: 64, FieldOffset: 16}
}

// Validate checks the geometry.
func (p DBParams) Validate() error {
	if p.Records <= 0 {
		return fmt.Errorf("workloads: no records")
	}
	if p.RecordBytes == 0 || p.RecordBytes&(p.RecordBytes-1) != 0 {
		return fmt.Errorf("workloads: record size %d must be a power of two", p.RecordBytes)
	}
	if p.FieldOffset%8 != 0 || p.FieldOffset+8 > p.RecordBytes {
		return fmt.Errorf("workloads: bad field offset %d in %d-byte record", p.FieldOffset, p.RecordBytes)
	}
	return nil
}

// DBResult carries the aggregate (for verification) and the measured Row.
type DBResult struct {
	Sum float64
	Row core.Row
}

// fieldValue is the deterministic hot-field content of record i.
func dbFieldValue(i int) float64 { return float64((i*37)%1000) / 8 }

// dbSetup allocates and fills the table (untimed).
func dbSetup(s *core.System, p DBParams) (addr.VAddr, error) {
	table, err := s.Alloc(uint64(p.Records)*p.RecordBytes, 0)
	if err != nil {
		return 0, err
	}
	for i := 0; i < p.Records; i++ {
		base := table + addr.VAddr(uint64(i)*p.RecordBytes)
		s.StoreF64(base+addr.VAddr(p.FieldOffset), dbFieldValue(i))
		// Cold fields: one touch so frames exist.
		s.Store64(base, uint64(i))
	}
	return table, nil
}

// RunDBProjection scans the hot field of every record, summing it —
// SELECT SUM(field) FROM table.
func RunDBProjection(s *core.System, p DBParams, useImpulse bool) (DBResult, error) {
	if err := p.Validate(); err != nil {
		return DBResult{}, err
	}
	table, err := dbSetup(s, p)
	if err != nil {
		return DBResult{}, err
	}
	s.ResetCachesUntimed()

	sec := s.BeginSection()
	var src addr.VAddr
	var step uint64
	if useImpulse {
		if !s.IsImpulse() {
			return DBResult{}, core.ErrNotImpulse
		}
		alias, err := s.NewStridedAlias(8, p.RecordBytes, uint64(p.Records), 0)
		if err != nil {
			return DBResult{}, err
		}
		span := uint64(p.Records-1)*p.RecordBytes + p.FieldOffset + 8
		if err := s.Retarget(alias, table+addr.VAddr(p.FieldOffset), span, core.Purge); err != nil {
			return DBResult{}, err
		}
		src, step = alias.VA, 8
	} else {
		src, step = table+addr.VAddr(p.FieldOffset), p.RecordBytes
	}
	var sum float64
	for i := 0; i < p.Records; i++ {
		sum += s.LoadF64(src + addr.VAddr(uint64(i)*step))
		s.Tick(2)
	}
	label := "db projection conventional"
	if useImpulse {
		label = "db projection impulse"
	}
	row, err := sec.End(label)
	if err != nil {
		return DBResult{}, err
	}
	return DBResult{Sum: sum, Row: row}, nil
}

// RunDBIndexScan fetches the hot field of the records selected by an
// index (every k-th record id, shuffled deterministically), summing it —
// the probe phase of an index-nested-loop join.
func RunDBIndexScan(s *core.System, p DBParams, selectivity int, useImpulse bool) (DBResult, error) {
	if err := p.Validate(); err != nil {
		return DBResult{}, err
	}
	if selectivity <= 0 {
		return DBResult{}, fmt.Errorf("workloads: selectivity must be positive")
	}
	table, err := dbSetup(s, p)
	if err != nil {
		return DBResult{}, err
	}
	// The RID list: every selectivity-th record, order scrambled by a
	// multiplicative hash (deterministic).
	count := p.Records / selectivity
	rids := s.MustAlloc(uint64(count)*4, 0)
	fieldsPerRecord := p.RecordBytes / 8
	for k := 0; k < count; k++ {
		rid := uint32((k * 2654435761) % p.Records)
		rid -= rid % uint32(selectivity)
		// Store the *element index* of the hot field of record rid.
		elem := rid*uint32(fieldsPerRecord) + uint32(p.FieldOffset/8)
		s.Store32(rids+addr.VAddr(4*k), elem)
	}
	s.ResetCachesUntimed()

	sec := s.BeginSection()
	var sum float64
	if useImpulse {
		if !s.IsImpulse() {
			return DBResult{}, core.ErrNotImpulse
		}
		alias, err := s.MapScatterGather(table, uint64(p.Records)*p.RecordBytes, 8, rids, uint64(count), 0)
		if err != nil {
			return DBResult{}, err
		}
		for k := 0; k < count; k++ {
			sum += s.LoadF64(alias + addr.VAddr(8*k))
			s.Tick(2)
		}
	} else {
		for k := 0; k < count; k++ {
			elem := s.Load32(rids + addr.VAddr(4*k))
			sum += s.LoadF64(table + addr.VAddr(8*uint64(elem)))
			s.Tick(4)
		}
	}
	label := "db index-scan conventional"
	if useImpulse {
		label = "db index-scan impulse"
	}
	row, err := sec.End(label)
	if err != nil {
		return DBResult{}, err
	}
	return DBResult{Sum: sum, Row: row}, nil
}

// RefDBProjection computes the expected projection sum.
func RefDBProjection(p DBParams) float64 {
	var sum float64
	for i := 0; i < p.Records; i++ {
		sum += dbFieldValue(i)
	}
	return sum
}

// RefDBIndexScan computes the expected index-scan sum.
func RefDBIndexScan(p DBParams, selectivity int) float64 {
	count := p.Records / selectivity
	var sum float64
	for k := 0; k < count; k++ {
		rid := uint32((k * 2654435761) % p.Records)
		rid -= rid % uint32(selectivity)
		sum += dbFieldValue(int(rid))
	}
	return sum
}
