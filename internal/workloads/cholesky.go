package workloads

import (
	"fmt"
	"math"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// Tiled Cholesky factorization — §3.2 names "LU decomposition and dense
// Cholesky factorization" as the dense kernels tiling serves, and
// evaluates matrix product as the simplest of the family. This file
// extends the reproduction to Cholesky itself: a right-looking tiled
// in-place factorization A = L·Lᵀ on the lower triangle, with the same
// three treatments as Table 2 (no-copy tiles, software copying, Impulse
// tile remapping). The trailing-matrix update (GEMM, the dominant cost)
// is what the tile aliases accelerate.

// CholeskyMode selects the tiling strategy.
type CholeskyMode int

const (
	// CholNoCopy factors in place over the original layout.
	CholNoCopy CholeskyMode = iota
	// CholCopy copies tiles into contiguous buffers for the update phase.
	CholCopy
	// CholRemap uses Impulse strided aliases for the update phase.
	CholRemap
)

func (m CholeskyMode) String() string {
	switch m {
	case CholNoCopy:
		return "no-copy"
	case CholCopy:
		return "copy"
	case CholRemap:
		return "remap"
	default:
		return fmt.Sprintf("CholeskyMode(%d)", int(m))
	}
}

// CholeskyResult carries the verification checksum and measured Row.
type CholeskyResult struct {
	Checksum float64
	Row      core.Row
}

// cholInnerTicks matches the matrix-product inner-loop charge.
const cholInnerTicks = 6

// RunCholesky factors the deterministic SPD test matrix of dimension n
// (tile t; same geometry rules as MMP) and returns a checksum over L.
func RunCholesky(s *core.System, n, t int, mode CholeskyMode) (CholeskyResult, error) {
	if err := (MMPParams{N: n, Tile: t}).Validate(); err != nil {
		return CholeskyResult{}, err
	}
	nn, tt := uint64(n), uint64(t)
	a, err := s.Alloc(nn*nn*8, 0)
	if err != nil {
		return CholeskyResult{}, err
	}
	// Untimed setup: the SPD test matrix.
	src := cholInput(n)
	s.StoreStreamF64(a, src)

	sec := s.BeginSection()
	switch mode {
	case CholNoCopy:
		err = cholFactor(s, nn, tt, a, nil)
	case CholCopy:
		err = cholFactorCopy(s, nn, tt, a)
	case CholRemap:
		err = cholFactorRemap(s, nn, tt, a)
	default:
		err = fmt.Errorf("workloads: unknown cholesky mode %v", mode)
	}
	if err != nil {
		return CholeskyResult{}, err
	}
	row, err := sec.End(fmt.Sprintf("Cholesky %v/%v", mode, s.Prefetch()))
	if err != nil {
		return CholeskyResult{}, err
	}

	var sum float64
	for i := uint64(0); i < nn; i++ {
		for j := uint64(0); j <= i; j++ {
			sum += s.LoadF64(a+addr.VAddr(8*(i*nn+j))) * float64((i+2*j)%11+1)
		}
	}
	return CholeskyResult{Checksum: sum, Row: row}, nil
}

// cholInput builds the deterministic SPD input: B·Bᵀ scaled + n·I.
func cholInput(n int) []float64 {
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i*n+j] = float64((i*13+j*7)%9) / 9
		}
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += b[i*n+k] * b[j*n+k]
			}
			v := dot / float64(n)
			a[i*n+j] = v
			a[j*n+i] = v
		}
		a[i*n+i] += 2
	}
	return a
}

// tileOps provides the three tile-level operations on (possibly aliased)
// dense tile views. base addresses index with the given row stride (in
// elements).
type tileView struct {
	base   addr.VAddr
	stride uint64 // elements between rows
}

func (v tileView) at(i, j uint64) addr.VAddr {
	return v.base + addr.VAddr(8*(i*v.stride+j))
}

// potrf factors a t x t diagonal tile in place (unblocked Cholesky).
func potrf(s *core.System, t uint64, a tileView) error {
	for j := uint64(0); j < t; j++ {
		d := s.LoadF64(a.at(j, j))
		for k := uint64(0); k < j; k++ {
			l := s.LoadF64(a.at(j, k))
			d -= l * l
			s.Tick(cholInnerTicks)
		}
		if d <= 0 {
			return fmt.Errorf("workloads: cholesky input not positive definite (pivot %v at %d)", d, j)
		}
		d = math.Sqrt(d)
		s.StoreF64(a.at(j, j), d)
		s.Tick(20) // sqrt
		for i := j + 1; i < t; i++ {
			v := s.LoadF64(a.at(i, j))
			for k := uint64(0); k < j; k++ {
				v -= s.LoadF64(a.at(i, k)) * s.LoadF64(a.at(j, k))
				s.Tick(cholInnerTicks)
			}
			s.StoreF64(a.at(i, j), v/d)
			s.Tick(8) // divide
		}
	}
	return nil
}

// trsm solves X · L21ᵀ = A21 in place: tile b becomes b · inv(l)ᵀ for
// lower-triangular l (the factored diagonal tile).
func trsm(s *core.System, t uint64, l, b tileView) {
	for i := uint64(0); i < t; i++ {
		for j := uint64(0); j < t; j++ {
			v := s.LoadF64(b.at(i, j))
			for k := uint64(0); k < j; k++ {
				v -= s.LoadF64(b.at(i, k)) * s.LoadF64(l.at(j, k))
				s.Tick(cholInnerTicks)
			}
			s.StoreF64(b.at(i, j), v/s.LoadF64(l.at(j, j)))
			s.Tick(8)
		}
	}
}

// gemmUpdate computes c -= a · bᵀ over t x t tiles (the trailing update;
// syrk when a == b positions coincide, handled identically).
func gemmUpdate(s *core.System, t uint64, c, a, b tileView) {
	for i := uint64(0); i < t; i++ {
		for j := uint64(0); j < t; j++ {
			v := s.LoadF64(c.at(i, j))
			for k := uint64(0); k < t; k++ {
				v -= s.LoadF64(a.at(i, k)) * s.LoadF64(b.at(j, k))
				s.Tick(cholInnerTicks)
			}
			s.StoreF64(c.at(i, j), v)
			s.Tick(2)
		}
	}
}

// cholFactor is the no-copy tiled factorization. views, if non-nil,
// wraps tile addresses (used by the remap variant for the GEMM phase).
func cholFactor(s *core.System, n, t uint64, a addr.VAddr, gemm func(ci, cj, ai, ak, bj uint64) error) error {
	tiles := n / t
	tv := func(ti, tj uint64) tileView {
		return tileView{base: a + addr.VAddr(8*(ti*t*n+tj*t)), stride: n}
	}
	for k := uint64(0); k < tiles; k++ {
		if err := potrf(s, t, tv(k, k)); err != nil {
			return err
		}
		for i := k + 1; i < tiles; i++ {
			trsm(s, t, tv(k, k), tv(i, k))
		}
		for i := k + 1; i < tiles; i++ {
			for j := k + 1; j <= i; j++ {
				if gemm != nil {
					if err := gemm(i, j, i, k, j); err != nil {
						return err
					}
				} else {
					gemmUpdate(s, t, tv(i, j), tv(i, k), tv(j, k))
				}
			}
		}
	}
	return nil
}

// cholFactorCopy copies the three GEMM tiles into contiguous buffers.
func cholFactorCopy(s *core.System, n, t uint64, a addr.VAddr) error {
	tileBytes := t * t * 8
	bufC, err := s.Alloc(tileBytes, s.Config().L1.Bytes)
	if err != nil {
		return err
	}
	bufA, err := s.Alloc(tileBytes, 0)
	if err != nil {
		return err
	}
	bufB, err := s.Alloc(tileBytes, 0)
	if err != nil {
		return err
	}
	tileBase := func(ti, tj uint64) addr.VAddr { return a + addr.VAddr(8*(ti*t*n+tj*t)) }
	cp := func(dst addr.VAddr, ti, tj uint64, out bool) {
		for i := uint64(0); i < t; i++ {
			for j := uint64(0); j < t; j++ {
				src := tileBase(ti, tj) + addr.VAddr(8*(i*n+j))
				d := dst + addr.VAddr(8*(i*t+j))
				if out {
					s.StoreF64(src, s.LoadF64(d))
				} else {
					s.StoreF64(d, s.LoadF64(src))
				}
				s.Tick(1)
			}
		}
	}
	gemm := func(ci, cj, ai, ak, bj uint64) error {
		cp(bufC, ci, cj, false)
		cp(bufA, ai, ak, false)
		cp(bufB, bj, ak, false)
		gemmUpdate(s, t,
			tileView{bufC, t}, tileView{bufA, t}, tileView{bufB, t})
		cp(bufC, ci, cj, true)
		return nil
	}
	return cholFactor(s, n, t, a, gemm)
}

// cholFactorRemap uses Impulse strided aliases for the GEMM tiles.
func cholFactorRemap(s *core.System, n, t uint64, a addr.VAddr) error {
	seg := s.Config().L1.Bytes / 4
	mk := func(off uint64) (*core.StridedAlias, error) {
		return s.NewStridedAlias(t*8, n*8, t, off)
	}
	tc, err := mk(0)
	if err != nil {
		return err
	}
	ta, err := mk(seg)
	if err != nil {
		return err
	}
	tb, err := mk(2 * seg)
	if err != nil {
		return err
	}
	defer func() { s.Release(tc); s.Release(ta); s.Release(tb) }()
	tileBase := func(ti, tj uint64) addr.VAddr { return a + addr.VAddr(8*(ti*t*n+tj*t)) }
	span := (t-1)*n*8 + t*8
	gemm := func(ci, cj, ai, ak, bj uint64) error {
		if err := s.Retarget(tc, tileBase(ci, cj), span, core.Flush); err != nil {
			return err
		}
		if err := s.Retarget(ta, tileBase(ai, ak), span, core.Purge); err != nil {
			return err
		}
		if err := s.Retarget(tb, tileBase(bj, ak), span, core.Purge); err != nil {
			return err
		}
		gemmUpdate(s, t,
			tileView{tc.VA, t}, tileView{ta.VA, t}, tileView{tb.VA, t})
		// The factorization reads C tiles conventionally afterwards:
		// scatter the dirty alias lines back now.
		s.FlushVRange(tc.VA, tc.Bytes)
		return nil
	}
	return cholFactor(s, n, t, a, gemm)
}

// RefCholesky computes the identical factorization on the host (same
// tile order, same arithmetic) and returns the matching checksum.
func RefCholesky(n, t int) float64 {
	a := cholInput(n)
	nn, tt := n, t
	at := func(i, j int) *float64 { return &a[i*nn+j] }
	tiles := nn / tt
	potrfH := func(r0, c0 int) {
		for j := 0; j < tt; j++ {
			d := *at(r0+j, c0+j)
			for k := 0; k < j; k++ {
				l := *at(r0+j, c0+k)
				d -= l * l
			}
			d = math.Sqrt(d)
			*at(r0+j, c0+j) = d
			for i := j + 1; i < tt; i++ {
				v := *at(r0+i, c0+j)
				for k := 0; k < j; k++ {
					v -= *at(r0+i, c0+k) * *at(r0+j, c0+k)
				}
				*at(r0+i, c0+j) = v / d
			}
		}
	}
	trsmH := func(lr, lc, br, bc int) {
		for i := 0; i < tt; i++ {
			for j := 0; j < tt; j++ {
				v := *at(br+i, bc+j)
				for k := 0; k < j; k++ {
					v -= *at(br+i, bc+k) * *at(lr+j, lc+k)
				}
				*at(br+i, bc+j) = v / *at(lr+j, lc+j)
			}
		}
	}
	gemmH := func(cr, cc, ar, ac, br, bc int) {
		for i := 0; i < tt; i++ {
			for j := 0; j < tt; j++ {
				v := *at(cr+i, cc+j)
				for k := 0; k < tt; k++ {
					v -= *at(ar+i, ac+k) * *at(br+j, bc+k)
				}
				*at(cr+i, cc+j) = v
			}
		}
	}
	for k := 0; k < tiles; k++ {
		potrfH(k*tt, k*tt)
		for i := k + 1; i < tiles; i++ {
			trsmH(k*tt, k*tt, i*tt, k*tt)
		}
		for i := k + 1; i < tiles; i++ {
			for j := k + 1; j <= i; j++ {
				gemmH(i*tt, j*tt, i*tt, k*tt, j*tt, k*tt)
			}
		}
	}
	var sum float64
	for i := 0; i < nn; i++ {
		for j := 0; j <= i; j++ {
			sum += a[i*nn+j] * float64((i+2*j)%11+1)
		}
	}
	return sum
}
