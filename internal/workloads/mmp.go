package workloads

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// MMPMode selects the tiling strategy for dense matrix-matrix product,
// matching the three sections of the paper's Table 2.
type MMPMode int

const (
	// MMPNoCopyTiled: conventional tiling in place (the baseline).
	MMPNoCopyTiled MMPMode = iota
	// MMPCopyTiled: software tile copying into contiguous buffers.
	MMPCopyTiled
	// MMPTileRemap: Impulse base-stride remapping of tiles into
	// contiguous shadow tiles, with the three aliases pinned to distinct
	// segments of the virtually-indexed L1 (§3.2).
	MMPTileRemap
)

func (m MMPMode) String() string {
	switch m {
	case MMPNoCopyTiled:
		return "no-copy tiled"
	case MMPCopyTiled:
		return "tile copying"
	case MMPTileRemap:
		return "tile remapping"
	default:
		return fmt.Sprintf("MMPMode(%d)", int(m))
	}
}

// MMPParams sizes the product C = A * B. N must be a multiple of Tile;
// Tile*8 must be a power of two and a multiple of the L2 line (128 B), the
// paper's alignment restrictions (§4.2: "tile sizes must be a multiple of
// a cache line ... arrays must be padded so that tiles are aligned").
type MMPParams struct {
	N    int
	Tile int
}

// MMPDefault matches the paper's tile geometry at simulator-friendly
// scale (the paper's 512x512 is available via the harness flags).
func MMPDefault() MMPParams { return MMPParams{N: 256, Tile: 32} }

// MMPTiny is a reduced geometry for unit tests.
func MMPTiny() MMPParams { return MMPParams{N: 64, Tile: 16} }

// Validate checks the geometry.
func (p MMPParams) Validate() error {
	if p.N <= 0 || p.Tile <= 0 || p.N%p.Tile != 0 {
		return fmt.Errorf("workloads: N=%d must be a positive multiple of Tile=%d", p.N, p.Tile)
	}
	rowBytes := uint64(p.Tile) * 8
	if rowBytes&(rowBytes-1) != 0 || rowBytes%128 != 0 {
		return fmt.Errorf("workloads: tile row (%d bytes) must be a power of two and 128-byte aligned", rowBytes)
	}
	return nil
}

// mmpInnerTicks is the non-memory work per multiply-accumulate on the
// single-issue PA-RISC model: FMPY and FADD issue plus the dependent
// floating-point latency of the sum chain, index update, and branch.
const mmpInnerTicks = 6

// MMPResult carries the checksum (for verification) and the measured Row.
type MMPResult struct {
	Checksum float64
	Row      core.Row
}

// RunMMP computes C = A * B with the chosen tiling strategy. A and B are
// filled with a deterministic pattern (untimed); the product loop,
// including all copies, remaps, and flushes, is timed.
func RunMMP(s *core.System, par MMPParams, mode MMPMode) (MMPResult, error) {
	if err := par.Validate(); err != nil {
		return MMPResult{}, err
	}
	n := uint64(par.N)
	bytes := n * n * 8
	a, err := s.Alloc(bytes, 0)
	if err != nil {
		return MMPResult{}, err
	}
	b, err := s.Alloc(bytes, 0)
	if err != nil {
		return MMPResult{}, err
	}
	cm, err := s.Alloc(bytes, 0)
	if err != nil {
		return MMPResult{}, err
	}
	// Deterministic inputs (untimed setup). The a and b stores stay
	// interleaved element by element: the cache and clock state they
	// leave behind feeds the timed section, so reordering them into two
	// streams would change measured results.
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			s.StoreF64(a+addr.VAddr(8*(i*n+j)), float64((i*7+j*3)%13)-6)
			s.StoreF64(b+addr.VAddr(8*(i*n+j)), float64((i*5+j*11)%17)-8)
		}
	}

	sec := s.BeginSection()
	switch mode {
	case MMPNoCopyTiled:
		err = mmpNoCopy(s, par, a, b, cm)
	case MMPCopyTiled:
		err = mmpCopy(s, par, a, b, cm)
	case MMPTileRemap:
		err = mmpRemap(s, par, a, b, cm)
	default:
		err = fmt.Errorf("workloads: unknown MMP mode %v", mode)
	}
	if err != nil {
		return MMPResult{}, err
	}
	row, err := sec.End(fmt.Sprintf("MMP %v/%v", mode, s.Prefetch()))
	if err != nil {
		return MMPResult{}, err
	}

	// Checksum (untimed): fold every element of C.
	var sum float64
	s.LoadStreamF64(cm, n*n, func(i uint64, v float64) {
		sum += v * float64(i%7+1)
	})
	return MMPResult{Checksum: sum, Row: row}, nil
}

// mmpNoCopy is conventional tiling over the original layout: tiles are
// non-contiguous, so they conflict with each other (and themselves) in
// the caches — the difficulty §3.2 describes.
func mmpNoCopy(s *core.System, par MMPParams, a, b, c addr.VAddr) error {
	n, t := uint64(par.N), uint64(par.Tile)
	at := func(m addr.VAddr, i, j uint64) addr.VAddr { return m + addr.VAddr(8*(i*n+j)) }
	for i0 := uint64(0); i0 < n; i0 += t {
		for j0 := uint64(0); j0 < n; j0 += t {
			for k0 := uint64(0); k0 < n; k0 += t {
				for i := i0; i < i0+t; i++ {
					for j := j0; j < j0+t; j++ {
						sum := s.LoadF64(at(c, i, j))
						for k := k0; k < k0+t; k++ {
							sum += s.LoadF64(at(a, i, k)) * s.LoadF64(at(b, k, j))
							s.Tick(mmpInnerTicks)
						}
						s.StoreF64(at(c, i, j), sum)
						s.Tick(2)
					}
				}
			}
		}
	}
	return nil
}

// mmpCopy copies each tile into a contiguous buffer before use ("tiles
// must be copied into non-conflicting regions of memory (which is
// expensive)", §3.2). The three buffers are contiguous, so together they
// occupy 3 distinct regions of the L1 with no mutual conflicts.
func mmpCopy(s *core.System, par MMPParams, a, b, c addr.VAddr) error {
	n, t := uint64(par.N), uint64(par.Tile)
	tileBytes := t * t * 8
	bufA, err := s.Alloc(tileBytes, s.Config().L1.Bytes)
	if err != nil {
		return err
	}
	bufB, err := s.Alloc(tileBytes, 0)
	if err != nil {
		return err
	}
	bufC, err := s.Alloc(tileBytes, 0)
	if err != nil {
		return err
	}
	copyIn := func(buf, m addr.VAddr, r0, c0 uint64) {
		for i := uint64(0); i < t; i++ {
			for j := uint64(0); j < t; j++ {
				v := s.LoadF64(m + addr.VAddr(8*((r0+i)*n+c0+j)))
				s.StoreF64(buf+addr.VAddr(8*(i*t+j)), v)
				s.Tick(1)
			}
		}
	}
	copyOut := func(buf, m addr.VAddr, r0, c0 uint64) {
		for i := uint64(0); i < t; i++ {
			for j := uint64(0); j < t; j++ {
				v := s.LoadF64(buf + addr.VAddr(8*(i*t+j)))
				s.StoreF64(m+addr.VAddr(8*((r0+i)*n+c0+j)), v)
				s.Tick(1)
			}
		}
	}
	for i0 := uint64(0); i0 < n; i0 += t {
		for j0 := uint64(0); j0 < n; j0 += t {
			copyIn(bufC, c, i0, j0)
			for k0 := uint64(0); k0 < n; k0 += t {
				copyIn(bufA, a, i0, k0)
				copyIn(bufB, b, k0, j0)
				mulTiles(s, t, bufA, bufB, bufC)
			}
			copyOut(bufC, c, i0, j0)
		}
	}
	return nil
}

// mulTiles multiplies two contiguous t x t tiles into a third.
func mulTiles(s *core.System, t uint64, ta, tb, tc addr.VAddr) {
	for i := uint64(0); i < t; i++ {
		for j := uint64(0); j < t; j++ {
			sum := s.LoadF64(tc + addr.VAddr(8*(i*t+j)))
			for k := uint64(0); k < t; k++ {
				sum += s.LoadF64(ta+addr.VAddr(8*(i*t+k))) * s.LoadF64(tb+addr.VAddr(8*(k*t+j)))
				s.Tick(mmpInnerTicks)
			}
			s.StoreF64(tc+addr.VAddr(8*(i*t+j)), sum)
			s.Tick(2)
		}
	}
}

// mmpRemap uses Impulse base-stride remapping: three strided aliases make
// the current A, B, and C tiles contiguous in shadow space, and their
// virtual placement pins each to its own segment of the virtually-indexed
// L1 ("we divide the L1 cache into three segments. In each segment we
// keep a tile", §3.2). A and B tiles are purged on remap; C is flushed so
// its dirty lines scatter back (§3.2's consistency requirement).
func mmpRemap(s *core.System, par MMPParams, a, b, c addr.VAddr) error {
	n, t := uint64(par.N), uint64(par.Tile)
	rowBytes := t * 8
	strideBytes := n * 8
	tileSpan := (t-1)*n*8 + rowBytes // footprint of one tile in the matrix
	seg := s.Config().L1.Bytes / 4   // 8 KB segments for the paper geometry

	mk := func(l1Off uint64) (*core.StridedAlias, error) {
		return s.NewStridedAlias(rowBytes, strideBytes, t, l1Off)
	}
	ta, err := mk(0)
	if err != nil {
		return err
	}
	tb, err := mk(seg)
	if err != nil {
		return err
	}
	tc, err := mk(2 * seg)
	if err != nil {
		return err
	}
	defer func() { s.Release(ta); s.Release(tb); s.Release(tc) }()

	tileBase := func(m addr.VAddr, r0, c0 uint64) addr.VAddr {
		return m + addr.VAddr(8*(r0*n+c0))
	}
	for i0 := uint64(0); i0 < n; i0 += t {
		for j0 := uint64(0); j0 < n; j0 += t {
			if err := s.Retarget(tc, tileBase(c, i0, j0), tileSpan, core.Flush); err != nil {
				return err
			}
			for k0 := uint64(0); k0 < n; k0 += t {
				if err := s.Retarget(ta, tileBase(a, i0, k0), tileSpan, core.Purge); err != nil {
					return err
				}
				if err := s.Retarget(tb, tileBase(b, k0, j0), tileSpan, core.Purge); err != nil {
					return err
				}
				mulTiles(s, t, ta.VA, tb.VA, tc.VA)
			}
		}
	}
	// Final C tile's dirty lines must scatter back before C is read.
	s.FlushVRange(tc.VA, tc.Bytes)
	return nil
}

// RefMMP computes the same product on the host with the same tiled
// summation order, so checksums agree bit-for-bit.
func RefMMP(par MMPParams) float64 {
	n, t := par.N, par.Tile
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i*7+j*3)%13) - 6
			b[i*n+j] = float64((i*5+j*11)%17) - 8
		}
	}
	for i0 := 0; i0 < n; i0 += t {
		for j0 := 0; j0 < n; j0 += t {
			for k0 := 0; k0 < n; k0 += t {
				for i := i0; i < i0+t; i++ {
					for j := j0; j < j0+t; j++ {
						sum := c[i*n+j]
						for k := k0; k < k0+t; k++ {
							sum += a[i*n+k] * b[k*n+j]
						}
						c[i*n+j] = sum
					}
				}
			}
		}
	}
	var sum float64
	for i := 0; i < n*n; i++ {
		sum += c[i] * float64(i%7+1)
	}
	return sum
}
