package workloads

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// DiagResult is the outcome of the Figure 1 microkernel.
type DiagResult struct {
	Sum float64
	Row core.Row
}

// RunDiagonal is the paper's introductory example (Figure 1): sum the
// diagonal of a dense dim x dim matrix of doubles. On a conventional
// system each diagonal element drags a full cache line of neighbors
// across the bus; with Impulse the diagonal is remapped into dense cache
// lines ("configure the memory controller to export a dense shadow space
// alias that contains just the diagonal elements").
//
// sweeps repeats the traversal (with cache flushes between sweeps so each
// sweep pays memory-system costs), which is how a microbenchmark of this
// size produces stable numbers.
func RunDiagonal(s *core.System, dim, sweeps int, useImpulse bool) (DiagResult, error) {
	n := uint64(dim)
	mat, err := s.Alloc(n*n*8, 0)
	if err != nil {
		return DiagResult{}, err
	}
	for i := uint64(0); i < n; i++ {
		s.StoreF64(mat+addr.VAddr(8*(i*n+i)), float64(i)+0.5)
	}

	var src addr.VAddr
	var stridePer uint64
	sec := s.BeginSection()
	if useImpulse {
		alias, err := s.NewStridedAlias(8, (n+1)*8, n, 0)
		if err != nil {
			return DiagResult{}, err
		}
		if err := s.Retarget(alias, mat, n*n*8, core.Purge); err != nil {
			return DiagResult{}, err
		}
		src, stridePer = alias.VA, 8
	} else {
		src, stridePer = mat, (n+1)*8
	}

	var sum float64
	for sweep := 0; sweep < sweeps; sweep++ {
		var sweepSum float64
		for i := uint64(0); i < n; i++ {
			sweepSum += s.LoadF64(src + addr.VAddr(i*stridePer))
			s.Tick(2)
		}
		sum = sweepSum
		// Evict exactly the touched lines between sweeps so each sweep
		// pays the memory system again (flush costs are comparable in
		// both configurations: one maintenance op per touched line).
		if useImpulse {
			s.PurgeVRange(src, n*8)
			s.MC.InvalidateBuffers()
		} else {
			for i := uint64(0); i < n; i++ {
				s.PurgeVRange(mat+addr.VAddr(8*(i*n+i)), 8)
			}
		}
	}
	label := "diagonal conventional"
	if useImpulse {
		label = "diagonal impulse"
	}
	row, err := sec.End(label)
	if err != nil {
		return DiagResult{}, err
	}
	return DiagResult{Sum: sum, Row: row}, nil
}

// RefDiagonal is the host reference for RunDiagonal.
func RefDiagonal(dim int) float64 {
	var sum float64
	for i := 0; i < dim; i++ {
		sum += float64(i) + 0.5
	}
	return sum
}

// String renders the interesting comparison quantities.
func (r DiagResult) String() string {
	return fmt.Sprintf("%s: %d cycles, %d bus bytes, L1 %.1f%%",
		r.Row.Label, r.Row.Cycles, r.Row.Stats.BusBytes, r.Row.L1Ratio*100)
}
