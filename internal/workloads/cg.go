package workloads

import (
	"fmt"
	"math"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// CGMode selects the memory-system optimization applied to conjugate
// gradient, matching the three sections of the paper's Table 1.
type CGMode int

const (
	// CGConventional: the plain benchmark (indirection loads at the CPU).
	CGConventional CGMode = iota
	// CGScatterGather: the multiplicand vector is accessed through an
	// Impulse gather alias built over the COLUMN indirection vector
	// (§3.1 "Scatter/gather").
	CGScatterGather
	// CGRecolor: the multiplicand, DATA, and COLUMN vectors are
	// recolored so they do not conflict in the L2 (§3.1 "Page
	// recoloring": multiplicand in the first half, DATA and COLUMN in a
	// quadrant each of the second half).
	CGRecolor
)

func (m CGMode) String() string {
	switch m {
	case CGConventional:
		return "conventional"
	case CGScatterGather:
		return "scatter/gather"
	case CGRecolor:
		return "page recoloring"
	default:
		return fmt.Sprintf("CGMode(%d)", int(m))
	}
}

// CGParams sizes the benchmark. The fields mirror the NPB class table.
type CGParams struct {
	N      int     // matrix dimension
	Nonzer int     // nonzeros per generated sparse vector
	Niter  int     // outer (power-method) iterations
	CGIts  int     // inner CG iterations per solve (NPB: 25)
	Shift  float64 // diagonal shift (class-dependent)
	RCond  float64 // target condition number (0.1 in all classes)
}

// CGClassS is the NPB Class S geometry (n=1400), the largest class that
// is practical to simulate at cycle granularity; the paper's Class A
// (n=14000) has the same structure at 10x the size.
func CGClassS() CGParams {
	return CGParams{N: 1400, Nonzer: 7, Niter: 15, CGIts: 25, Shift: 10, RCond: 0.1}
}

// CGClassTiny is a reduced geometry for unit tests.
func CGClassTiny() CGParams {
	return CGParams{N: 240, Nonzer: 4, Niter: 2, CGIts: 6, Shift: 10, RCond: 0.1}
}

// CGPaperGeometry reproduces the memory-system conditions of the paper's
// CG-A experiment at simulable cost: the matrix dimension is Class A's
// n=14000, so the multiplicand vector (112 KB) exceeds the 32 KB L1 but
// fits the 256 KB L2 — the regime where scatter/gather and recoloring
// pay off — while nonzeros/row and outer iterations are reduced to keep
// the cycle count tractable (Class A proper is 2.19 M nonzeros and 2.8 G
// cycles on the paper's simulator).
func CGPaperGeometry() CGParams {
	return CGParams{N: 14000, Nonzer: 7, Niter: 1, CGIts: 25, Shift: 20, RCond: 0.1}
}

// CGResult carries the benchmark's numeric outputs (for verification)
// and the measured Row for the timed section.
type CGResult struct {
	Zeta  float64
	RNorm float64 // residual norm of the last solve
	NNZ   int
	Row   core.Row
}

// Instruction-overhead charges (cycles of non-memory work per step) for
// the single-issue CPU: loop control, address arithmetic, floating point.
const (
	// The conventional inner loop does the indirection index arithmetic
	// (load-shift-add addressing for x[COLUMN[j]]) on the CPU; with
	// scatter/gather that work moves to the controller, so the Impulse
	// loop carries fewer non-memory instructions per nonzero — the paper
	// notes "the read of the indirection vector occurs at the memory
	// controller" and attributes about a third of the saved cycles to the
	// reduction in instructions issued.
	cgInnerTicksConv = 4
	cgInnerTicksSG   = 2
	cgVecTicks       = 2 // per element of a vector operation
	cgOuterTicks     = 6 // per SMVP row: loop setup, store path
)

// cgState holds the simulated-memory layout of the benchmark.
type cgState struct {
	s   *core.System
	m   *SparseMatrix
	n   int
	nnz int

	rows addr.VAddr // int32[n+1]
	cols addr.VAddr // uint32[nnz]
	vals addr.VAddr // float64[nnz]
	x    addr.VAddr // float64[n]
	z    addr.VAddr
	p    addr.VAddr
	q    addr.VAddr
	r    addr.VAddr

	mode  CGMode
	alias addr.VAddr // gather alias p'[j] = p[COLUMN[j]]
}

// RunCG executes the NAS CG benchmark on s with the given mode. The
// matrix m must come from MakeA with par's geometry (callers generate it
// once and share it across the configurations of a table). Setup (array
// population) is untimed, NPB-style; remapping calls and all consistency
// flushes are inside the timed section.
func RunCG(s *core.System, par CGParams, mode CGMode, m *SparseMatrix) (CGResult, error) {
	if m.N != par.N {
		return CGResult{}, fmt.Errorf("workloads: matrix dimension %d != params %d", m.N, par.N)
	}
	c := &cgState{s: s, m: m, n: par.N, nnz: m.NNZ(), mode: mode}
	if err := c.setup(); err != nil {
		return CGResult{}, err
	}

	sec := s.BeginSection()
	if err := c.applyMode(); err != nil {
		return CGResult{}, err
	}

	var zeta, rnorm float64
	for it := 0; it < par.Niter; it++ {
		rnorm = c.conjGrad(par.CGIts)
		// zeta = shift + 1/(x·z); then x = z/||z||.
		xz := c.dot(c.x, c.z)
		zeta = par.Shift + 1/xz
		s.Tick(20)
		znorm := math.Sqrt(c.dot(c.z, c.z))
		c.scale(c.x, c.z, 1/znorm)
	}

	row, err := sec.End(fmt.Sprintf("CG %v/%v", mode, s.Prefetch()))
	if err != nil {
		return CGResult{}, err
	}
	return CGResult{Zeta: zeta, RNorm: rnorm, NNZ: c.nnz, Row: row}, nil
}

// setup allocates and populates the simulated arrays (untimed: NPB does
// not time initialization).
func (c *cgState) setup() error {
	s := c.s
	var err error
	allocs := []struct {
		dst   *addr.VAddr
		bytes uint64
	}{
		{&c.rows, uint64(c.n+1) * 4},
		{&c.cols, uint64(c.nnz) * 4},
		{&c.vals, uint64(c.nnz) * 8},
		{&c.x, uint64(c.n) * 8},
		{&c.z, uint64(c.n) * 8},
		{&c.p, uint64(c.n) * 8},
		{&c.q, uint64(c.n) * 8},
		{&c.r, uint64(c.n) * 8},
	}
	for _, a := range allocs {
		if *a.dst, err = s.Alloc(a.bytes, 0); err != nil {
			return err
		}
	}
	s.StoreStreamI32(c.rows, c.m.Rows)
	s.StoreStreamU32(c.cols, c.m.Cols)
	s.StoreStreamF64(c.vals, c.m.Vals)
	s.FillStreamF64(c.x, 1.0, uint64(c.n))
	return nil
}

// applyMode performs the Impulse setup calls for the selected mode.
func (c *cgState) applyMode() error {
	s := c.s
	switch c.mode {
	case CGConventional:
		return nil
	case CGScatterGather:
		// Place x' half an L1 away from DATA: the inner loop reads
		// DATA[j] and x'[j] in lockstep, and matching L1 offsets would
		// conflict every iteration in the direct-mapped VIPT L1.
		l1 := s.Config().L1.Bytes
		l1Off := (uint64(c.vals) + l1/2) % l1
		alias, err := s.MapScatterGather(c.p, uint64(c.n)*8, 8, c.cols, uint64(c.nnz), l1Off)
		if err != nil {
			return err
		}
		c.alias = alias
		return nil
	case CGRecolor:
		// Multiplicand vector into the first half of the L2; DATA and
		// COLUMN each into a quadrant of the second half (§4.1).
		nc := s.K.NumColors()
		if err := s.Recolor(c.p, uint64(c.n)*8, 0, nc/2-1); err != nil {
			return err
		}
		if err := s.Recolor(c.vals, uint64(c.nnz)*8, nc/2, 3*nc/4-1); err != nil {
			return err
		}
		return s.Recolor(c.cols, uint64(c.nnz)*4, 3*nc/4, nc-1)
	default:
		return fmt.Errorf("workloads: unknown CG mode %v", c.mode)
	}
}

// conjGrad runs one CG solve (NPB conj_grad) and returns the residual
// norm ||x - A z||.
func (c *cgState) conjGrad(cgits int) float64 {
	s := c.s
	// z = 0; r = x; p = r.
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		s.StoreF64(c.z+o, 0)
		xi := s.LoadF64(c.x + o)
		s.StoreF64(c.r+o, xi)
		s.StoreF64(c.p+o, xi)
		s.Tick(cgVecTicks)
	}
	rho := c.dot(c.r, c.r)

	for cgit := 0; cgit < cgits; cgit++ {
		c.smvp(c.q, c.p)
		d := c.dot(c.p, c.q)
		alpha := rho / d
		s.Tick(10)
		c.axpy(c.z, alpha, c.p)  // z += alpha p
		c.axpy(c.r, -alpha, c.q) // r -= alpha q
		rho0 := rho
		rho = c.dot(c.r, c.r)
		beta := rho / rho0
		s.Tick(10)
		c.xpby(c.p, c.r, beta) // p = r + beta p
	}

	// rnorm = ||x - A z||. This final product uses the plain kernel in
	// every mode: the gather alias is bound to p, not z.
	c.smvpConventional(c.r, c.z)
	var sum float64
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		dlt := s.LoadF64(c.x+o) - s.LoadF64(c.r+o)
		sum += dlt * dlt
		s.Tick(cgVecTicks)
	}
	return math.Sqrt(sum)
}

// smvp computes dst = A * src where src must be c.p (the vector the
// gather alias is bound to in scatter/gather mode).
func (c *cgState) smvp(dst, src addr.VAddr) {
	if c.mode == CGScatterGather {
		s := c.s
		// Consistency protocol (§2.3): the CPU's dirty copy of p must
		// reach DRAM before the controller gathers it, and stale gathered
		// lines (CPU caches and controller buffers) must be dropped.
		s.FlushVRange(c.p, uint64(c.n)*8)
		s.PurgeVRange(c.alias, uint64(c.nnz)*8)
		s.MC.InvalidateBuffers()
		c.smvpGather(dst)
		return
	}
	c.smvpConventional(dst, src)
}

// smvpConventional is Figure 4's loop: the indirection load of COLUMN[j]
// and the dependent sparse load of src[COLUMN[j]] are both issued by the
// CPU.
func (c *cgState) smvpConventional(dst, src addr.VAddr) {
	s := c.s
	rowPrev := s.Load32(c.rows)
	for i := 0; i < c.n; i++ {
		rowNext := s.Load32(c.rows + addr.VAddr(4*(i+1)))
		var sum float64
		for j := rowPrev; j < rowNext; j++ {
			col := s.Load32(c.cols + addr.VAddr(4*j))
			v := s.LoadF64(c.vals + addr.VAddr(8*j))
			xv := s.LoadF64(src + addr.VAddr(8*col))
			sum += v * xv
			s.Tick(cgInnerTicksConv)
		}
		s.StoreF64(dst+addr.VAddr(8*i), sum)
		s.Tick(cgOuterTicks)
		rowPrev = rowNext
	}
}

// smvpGather is §3.1's optimized loop: "sum += DATA[j] * x'[j]". The
// indirection read happens at the memory controller, so the CPU issues
// one load fewer per nonzero and the gathered lines are 100% useful.
func (c *cgState) smvpGather(dst addr.VAddr) {
	s := c.s
	rowPrev := s.Load32(c.rows)
	for i := 0; i < c.n; i++ {
		rowNext := s.Load32(c.rows + addr.VAddr(4*(i+1)))
		var sum float64
		for j := rowPrev; j < rowNext; j++ {
			v := s.LoadF64(c.vals + addr.VAddr(8*j))
			xv := s.LoadF64(c.alias + addr.VAddr(8*j))
			sum += v * xv
			s.Tick(cgInnerTicksSG)
		}
		s.StoreF64(dst+addr.VAddr(8*i), sum)
		s.Tick(cgOuterTicks)
		rowPrev = rowNext
	}
}

func (c *cgState) dot(a, b addr.VAddr) float64 {
	s := c.s
	var sum float64
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		sum += s.LoadF64(a+o) * s.LoadF64(b+o)
		s.Tick(cgVecTicks)
	}
	return sum
}

// axpy: dst += alpha * src.
func (c *cgState) axpy(dst addr.VAddr, alpha float64, src addr.VAddr) {
	s := c.s
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		s.StoreF64(dst+o, s.LoadF64(dst+o)+alpha*s.LoadF64(src+o))
		s.Tick(cgVecTicks)
	}
}

// xpby: dst = src + beta * dst.
func (c *cgState) xpby(dst, src addr.VAddr, beta float64) {
	s := c.s
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		s.StoreF64(dst+o, s.LoadF64(src+o)+beta*s.LoadF64(dst+o))
		s.Tick(cgVecTicks)
	}
}

// scale: dst = src * f.
func (c *cgState) scale(dst, src addr.VAddr, f float64) {
	s := c.s
	for i := 0; i < c.n; i++ {
		o := addr.VAddr(8 * i)
		s.StoreF64(dst+o, s.LoadF64(src+o)*f)
		s.Tick(cgVecTicks)
	}
}

// RefCG is the host-side reference: the identical computation in plain
// Go, used to verify that every memory-system configuration computes the
// same answer. The arithmetic order matches the simulated kernels, so
// results agree bit-for-bit.
func RefCG(m *SparseMatrix, par CGParams) (zeta, rnorm float64) {
	n := par.N
	x := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	r := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for it := 0; it < par.Niter; it++ {
		for i := 0; i < n; i++ {
			z[i], r[i], p[i] = 0, x[i], x[i]
		}
		rho := dot(r, r)
		for cgit := 0; cgit < par.CGIts; cgit++ {
			m.MulVec(q, p)
			alpha := rho / dot(p, q)
			for i := 0; i < n; i++ {
				z[i] += alpha * p[i]
			}
			for i := 0; i < n; i++ {
				r[i] += -alpha * q[i]
			}
			rho0 := rho
			rho = dot(r, r)
			beta := rho / rho0
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
		m.MulVec(r, z)
		var sum float64
		for i := 0; i < n; i++ {
			d := x[i] - r[i]
			sum += d * d
		}
		rnorm = math.Sqrt(sum)
		zeta = par.Shift + 1/dot(x, z)
		znorm := math.Sqrt(dot(z, z))
		for i := 0; i < n; i++ {
			x[i] = z[i] * (1 / znorm)
		}
	}
	return zeta, rnorm
}
