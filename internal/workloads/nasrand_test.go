package workloads

import (
	"math"
	"testing"
)

func TestNASRandRange(t *testing.T) {
	r := newNASRand(nasSeed, nasAmult)
	prev := -1.0
	for i := 0; i < 10000; i++ {
		v := r.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %d out of (0,1): %v", i, v)
		}
		if v == prev {
			t.Fatalf("generator stuck at %v", v)
		}
		prev = v
	}
}

func TestNASRandDeterministic(t *testing.T) {
	a := newNASRand(nasSeed, nasAmult)
	b := newNASRand(nasSeed, nasAmult)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
}

// The NPB generator's defining property: x_{k+1} = a*x_k mod 2^46.
func TestNASRandRecurrence(t *testing.T) {
	r := newNASRand(nasSeed, nasAmult)
	x := uint64(314159265)
	for i := 0; i < 100; i++ {
		want := (x * nasAmult) & randMask
		got := r.next()
		if got != float64(want)*math.Exp2(-46) {
			t.Fatalf("step %d: %v != %v", i, got, float64(want)*math.Exp2(-46))
		}
		x = want
	}
}

func TestSprnvc(t *testing.T) {
	r := newNASRand(nasSeed, nasAmult)
	vals, idx := sprnvc(100, 12, r)
	if len(vals) != 12 || len(idx) != 12 {
		t.Fatalf("lengths %d/%d", len(vals), len(idx))
	}
	seen := map[int]bool{}
	for k, i := range idx {
		if i < 0 || i >= 100 {
			t.Errorf("index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate index %d", i)
		}
		seen[i] = true
		if vals[k] <= 0 || vals[k] >= 1 {
			t.Errorf("value %v out of range", vals[k])
		}
	}
}

func TestVecset(t *testing.T) {
	vals := []float64{0.1, 0.2}
	idx := []int{3, 7}
	vals, idx = vecset(vals, idx, 7, 0.5)
	if len(vals) != 2 || vals[1] != 0.5 {
		t.Error("vecset overwrite failed")
	}
	vals, idx = vecset(vals, idx, 9, 0.5)
	if len(vals) != 3 || idx[2] != 9 || vals[2] != 0.5 {
		t.Error("vecset append failed")
	}
}

func TestCeilPow2Int(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 2}, {3, 4}, {100, 128}, {1400, 2048}, {14000, 16384}}
	for _, c := range cases {
		if got := ceilPow2Int(c[0]); got != c[1] {
			t.Errorf("ceilPow2Int(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestMakeAStructure(t *testing.T) {
	m := MakeA(120, 5, 0.1, 10)
	if m.N != 120 || len(m.Rows) != 121 {
		t.Fatalf("dims: N=%d rows=%d", m.N, len(m.Rows))
	}
	if m.NNZ() == 0 || m.NNZ() != int(m.Rows[120]) {
		t.Fatalf("nnz accounting: %d vs %d", m.NNZ(), m.Rows[120])
	}
	// Rows sorted by column, all nonzero rows have a diagonal entry.
	for i := 0; i < m.N; i++ {
		hasDiag := false
		for j := m.Rows[i]; j < m.Rows[i+1]; j++ {
			if j > m.Rows[i] && m.Cols[j] <= m.Cols[j-1] {
				t.Fatalf("row %d not strictly sorted", i)
			}
			if int(m.Cols[j]) == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			t.Errorf("row %d missing diagonal", i)
		}
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("generated matrix not symmetric")
	}
	// Determinism.
	m2 := MakeA(120, 5, 0.1, 10)
	if m2.NNZ() != m.NNZ() || m2.Vals[10] != m.Vals[10] {
		t.Error("MakeA not deterministic")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	m := MakeA(60, 4, 0.1, 10)
	dense := make([][]float64, 60)
	for i := range dense {
		dense[i] = make([]float64, 60)
		for j := m.Rows[i]; j < m.Rows[i+1]; j++ {
			dense[i][m.Cols[j]] = m.Vals[j]
		}
	}
	src := make([]float64, 60)
	for i := range src {
		src[i] = float64(i%7) - 3
	}
	dst := make([]float64, 60)
	m.MulVec(dst, src)
	for i := 0; i < 60; i++ {
		var want float64
		for j := 0; j < 60; j++ {
			want += dense[i][j] * src[j]
		}
		if math.Abs(dst[i]-want) > 1e-9 {
			t.Fatalf("row %d: %v != %v", i, dst[i], want)
		}
	}
}

func TestRefCGConverges(t *testing.T) {
	par := CGClassTiny()
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	zeta, rnorm := RefCG(m, par)
	if math.IsNaN(zeta) || math.IsInf(zeta, 0) {
		t.Fatalf("zeta = %v", zeta)
	}
	// zeta = shift + 1/(x·z) must be positive, below the shift (A's
	// largest eigenvalue is near 1, so x·z < 0 after the shift), and
	// stable: more CG iterations must not move it far.
	if zeta <= 0 || zeta >= par.Shift {
		t.Errorf("zeta = %v outside (0, shift=%v)", zeta, par.Shift)
	}
	if rnorm > 1 {
		t.Errorf("residual %v did not shrink", rnorm)
	}
	par2 := par
	par2.CGIts *= 2
	zeta2, _ := RefCG(m, par2)
	if diff := math.Abs(zeta2 - zeta); diff > 0.5 {
		t.Errorf("zeta unstable under more CG iterations: %v vs %v", zeta, zeta2)
	}
}

// TestNPBClassSVerification checks the strongest external oracle we
// have: the NAS Parallel Benchmarks publish the verification value for
// CG Class S (n=1400, nonzer=7, 15 outer iterations, shift=10):
// zeta = 8.5971775078648. Matching it to every printed digit means the
// random-number generator, the makea matrix generator, and the CG
// iteration are all bit-faithful to the NPB specification.
func TestNPBClassSVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("full Class S reference solve")
	}
	par := CGClassS()
	m := MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	if m.NNZ() != 78148 {
		t.Errorf("Class S nonzeros = %d, want 78148", m.NNZ())
	}
	zeta, _ := RefCG(m, par)
	const want = 8.5971775078648
	if math.Abs(zeta-want) > 1e-10 {
		t.Errorf("Class S zeta = %.13f, want %.13f (NPB verification value)", zeta, want)
	}
}
