package workloads

import (
	"impulse/internal/addr"
	"impulse/internal/core"
)

// IPCResult is the outcome of the message-gather scenario.
type IPCResult struct {
	Checksum float64
	Row      core.Row
}

// RunIPC models the interprocess-communication use the paper sketches in
// §6: "A major chore of remote IPC is collecting message data from
// multiple user buffers and protocol headers. Impulse's support for
// scatter/gather can remove the overhead of gathering data in software."
//
// A sender owns bufCount scattered word-aligned buffers (an iovec ring).
// For each of `messages` sends it updates the buffers, then the message
// is consumed as one contiguous stream of totalWords words:
//
//   - conventional: the sender copies every buffer into a contiguous
//     staging area (software gather), which the consumer then streams;
//   - Impulse: a gather alias over a per-word indirection vector (built
//     once, reused every send — iovec layouts are stable) IS the
//     contiguous message; the consumer streams the alias and the gather
//     happens at the memory controller, off the CPU.
func RunIPC(s *core.System, bufCount, wordsPerBuf, messages int, useImpulse bool) (IPCResult, error) {
	heapWords := uint64(bufCount) * uint64(wordsPerBuf) * 4 // sparse heap
	heap, err := s.Alloc(heapWords*8, 0)
	if err != nil {
		return IPCResult{}, err
	}
	totalWords := bufCount * wordsPerBuf
	// Buffer b occupies words [b*4*wordsPerBuf, ...+wordsPerBuf): one
	// used run per 4-run stretch of heap, i.e. scattered.
	wordIndex := func(msgWord int) uint64 {
		b := msgWord / wordsPerBuf
		w := msgWord % wordsPerBuf
		return uint64(b)*4*uint64(wordsPerBuf) + uint64(w)
	}

	var msgSrc addr.VAddr
	var staging addr.VAddr
	if !useImpulse {
		if staging, err = s.Alloc(uint64(totalWords)*8, 0); err != nil {
			return IPCResult{}, err
		}
	}

	sec := s.BeginSection()
	if useImpulse {
		vec, err := s.Alloc(uint64(totalWords)*4, 0)
		if err != nil {
			return IPCResult{}, err
		}
		for w := 0; w < totalWords; w++ {
			s.Store32(vec+addr.VAddr(4*w), uint32(wordIndex(w)))
		}
		if msgSrc, err = s.MapScatterGather(heap, heapWords*8, 8, vec, uint64(totalWords), 0); err != nil {
			return IPCResult{}, err
		}
	} else {
		msgSrc = staging
	}

	var checksum float64
	for msg := 0; msg < messages; msg++ {
		// The sender fills its buffers with this message's payload.
		for w := 0; w < totalWords; w++ {
			s.StoreF64(heap+addr.VAddr(8*wordIndex(w)), float64(msg*totalWords+w))
			s.Tick(1)
		}
		if useImpulse {
			// Consistency: dirty buffer words must reach DRAM before the
			// controller gathers them; stale gathered lines are dropped.
			for b := 0; b < bufCount; b++ {
				base := heap + addr.VAddr(8*wordIndex(b*wordsPerBuf))
				s.FlushVRange(base, uint64(wordsPerBuf)*8)
			}
			s.PurgeVRange(msgSrc, uint64(totalWords)*8)
			s.MC.InvalidateBuffers()
		} else {
			// Software gather into the staging area.
			for w := 0; w < totalWords; w++ {
				v := s.LoadF64(heap + addr.VAddr(8*wordIndex(w)))
				s.StoreF64(staging+addr.VAddr(8*w), v)
				s.Tick(1)
			}
		}
		// The consumer streams the message.
		var sum float64
		for w := 0; w < totalWords; w++ {
			sum += s.LoadF64(msgSrc + addr.VAddr(8*w))
			s.Tick(1)
		}
		checksum += sum
	}
	label := "ipc software-gather"
	if useImpulse {
		label = "ipc impulse-gather"
	}
	row, err := sec.End(label)
	if err != nil {
		return IPCResult{}, err
	}
	return IPCResult{Checksum: checksum, Row: row}, nil
}

// RefIPC computes the expected checksum.
func RefIPC(bufCount, wordsPerBuf, messages int) float64 {
	totalWords := bufCount * wordsPerBuf
	var checksum float64
	for msg := 0; msg < messages; msg++ {
		for w := 0; w < totalWords; w++ {
			checksum += float64(msg*totalWords + w)
		}
	}
	return checksum
}
