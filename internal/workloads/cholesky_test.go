package workloads

import (
	"math"
	"testing"

	"impulse/internal/core"
)

func TestCholeskyMatchesReferenceAllModes(t *testing.T) {
	const n, tile = 64, 16
	want := RefCholesky(n, tile)
	for _, c := range []struct {
		kind core.ControllerKind
		mode CholeskyMode
		pf   core.PrefetchPolicy
	}{
		{core.Conventional, CholNoCopy, core.PrefetchNone},
		{core.Conventional, CholCopy, core.PrefetchL1},
		{core.Impulse, CholRemap, core.PrefetchNone},
		{core.Impulse, CholRemap, core.PrefetchBoth},
	} {
		s := newTestSystem(t, c.kind, c.pf)
		res, err := RunCholesky(s, n, tile, c.mode)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.mode, c.pf, err)
		}
		if res.Checksum != want {
			t.Errorf("%v/%v: checksum %v != reference %v", c.mode, c.pf, res.Checksum, want)
		}
		if err := res.Row.Stats.CheckLoadClassification(); err != nil {
			t.Errorf("%v/%v: %v", c.mode, c.pf, err)
		}
	}
}

// The factorization actually factors: L·Lᵀ reconstructs the input.
func TestCholeskyFactorsCorrectly(t *testing.T) {
	const n, tile = 32, 16
	want := cholInput(n)
	// Run the reference path (same algorithm) and rebuild A from L.
	a := cholInput(n)
	_ = a
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	res, err := RunCholesky(s, n, tile, CholNoCopy)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Rebuild from the host-side reference (bit-identical to the sim) and
	// compare against the original input.
	l := cholInput(n)
	{
		// Factor on the host via the same reference helper by value: reuse
		// RefCholesky's internals indirectly — factor l in place here.
		for j := 0; j < n; j++ {
			d := l[j*n+j]
			for k := 0; k < j; k++ {
				d -= l[j*n+k] * l[j*n+k]
			}
			d = math.Sqrt(d)
			l[j*n+j] = d
			for i := j + 1; i < n; i++ {
				v := l[i*n+j]
				for k := 0; k < j; k++ {
					v -= l[i*n+k] * l[j*n+k]
				}
				l[i*n+j] = v / d
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var dot float64
			for k := 0; k <= j; k++ {
				dot += l[i*n+k] * l[j*n+k]
			}
			if math.Abs(dot-want[i*n+j]) > 1e-9 {
				t.Fatalf("L·Lᵀ[%d,%d] = %v, want %v", i, j, dot, want[i*n+j])
			}
		}
	}
}

func TestCholeskyRemapRequiresImpulse(t *testing.T) {
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunCholesky(s, 64, 16, CholRemap); err == nil {
		t.Error("remap cholesky ran on conventional controller")
	}
}

func TestCholeskyBadGeometry(t *testing.T) {
	s := newTestSystem(t, core.Conventional, core.PrefetchNone)
	if _, err := RunCholesky(s, 60, 16, CholNoCopy); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestCholeskyPerformanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large cholesky geometry")
	}
	// 256x256: the 2 KB row stride makes no-copy tile rows alias in the
	// 32 KB L1 (as in Table 2's geometry), which is what remapping cures.
	const n, tile = 256, 32
	run := func(kind core.ControllerKind, mode CholeskyMode) core.Row {
		s := newTestSystem(t, kind, core.PrefetchNone)
		res, err := RunCholesky(s, n, tile, mode)
		if err != nil {
			t.Fatal(err)
		}
		return res.Row
	}
	nocopy := run(core.Conventional, CholNoCopy)
	remap := run(core.Impulse, CholRemap)
	if remap.Cycles >= nocopy.Cycles {
		t.Errorf("remap (%d) not faster than no-copy (%d)", remap.Cycles, nocopy.Cycles)
	}
	if remap.L1Ratio <= nocopy.L1Ratio {
		t.Errorf("remap L1 %.3f not above no-copy %.3f", remap.L1Ratio, nocopy.L1Ratio)
	}
}
