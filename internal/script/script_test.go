package script

import (
	"math/rand"
	"strings"
	"testing"

	"impulse/internal/core"
)

func newSys(t *testing.T, kind core.ControllerKind) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Options{Controller: kind})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1 2", "unknown instruction"},
		{"set r1", "takes 2 operands"},
		{"set r99 1", "out of range"},
		{"set f99 1.0", "out of range"},
		{"end", "end without"},
		{"repeat 3", "unterminated block"},
		{"else", "else without impulse"},
		{"set r1 0xZZ", "bad hex"},
		{"alloc", "takes 2 or 3"},
		{"gather a b 8 v", "takes 5 or 6"},
		{"set r1 @!", "bad operand"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	p := mustParse(t, "\n# full comment\n  set r1 5 # trailing\n\n")
	if p.Len() != 1 {
		t.Errorf("instr count = %d", p.Len())
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	src := `
alloc a 4096
set r1 0
set r2 0
repeat 10
  add r2 r2 3
  add r1 r1 1
end
mul r3 r2 r1
fset f0 0.5
fadd f1 f0 2.25
fmul f2 f1 4.0
acc f2
`
	res, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	// f2 = (0.5+2.25)*4 = 11
	if res.Checksum != 11 {
		t.Errorf("checksum = %v, want 11", res.Checksum)
	}
}

func TestMemoryOps(t *testing.T) {
	src := `
alloc a 4096
store64 a 0 0xDEAD
load64 r1 a 0
store32 a 100 7
load32 r2 a 100
fset f0 2.5
storef a 8 f0
loadf f1 a 8
acc f1
flush a 0 4096
loadf f2 a 8
acc f2
`
	res, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 5.0 {
		t.Errorf("checksum = %v, want 5", res.Checksum)
	}
	if res.Row.Stats.FlushedLines == 0 {
		t.Error("flush not executed")
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	src := "alloc a 64\nload64 r1 a 60\n"
	if _, err := Run(newSys(t, core.Conventional), mustParse(t, src)); err == nil ||
		!strings.Contains(err.Error(), "outside region") {
		t.Errorf("out-of-bounds = %v", err)
	}
}

func TestRunawayLoopBounded(t *testing.T) {
	src := "set r1 0\nrepeat 4000000000\n add r1 r1 1\nend\n"
	_, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("runaway loop = %v", err)
	}
}

func TestNestedRepeat(t *testing.T) {
	src := `
set r1 0
repeat 4
  repeat 5
    add r1 r1 1
  end
end
alloc a 64
store64 a 0 r1
load64 r2 a 0
`
	res, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestZeroRepeatSkipsBody(t *testing.T) {
	src := "set r1 7\nrepeat 0\n set r1 99\nend\nalloc a 64\nstore64 a 0 r1\nload64 r2 a 0\nfset f0 1.0\nacc f0\n"
	res, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 1 {
		t.Error("zero repeat broke execution")
	}
}

// diagScript is the Figure 1 program from the package comment.
const diagScript = `
alloc mat 32768
set r1 0
fset f0 0.0
repeat 64
  storef mat r1 f0
  fadd f0 f0 1.0
  add r1 r1 520
end
flush mat 0 32768
impulse
  stride diag 8 520 64 0
  retarget diag mat 32768 purge
  set r1 0
  repeat 64
    loadf f1 diag r1
    acc f1
    add r1 r1 8
  end
else
  set r1 0
  repeat 64
    loadf f1 mat r1
    acc f1
    add r1 r1 520
  end
end
`

func TestImpulseElseBlocks(t *testing.T) {
	p := mustParse(t, diagScript)
	want := float64(64 * 63 / 2) // 0+1+...+63
	conv, err := Run(newSys(t, core.Conventional), p)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Run(newSys(t, core.Impulse), p)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Checksum != want || imp.Checksum != want {
		t.Fatalf("checksums %v / %v, want %v", conv.Checksum, imp.Checksum, want)
	}
	if imp.Row.Stats.ShadowReads == 0 {
		t.Error("impulse branch did not use the controller")
	}
	if conv.Row.Stats.ShadowReads != 0 {
		t.Error("conventional branch used shadow space")
	}
}

func TestGatherScript(t *testing.T) {
	src := `
alloc x 32768
alloc v 256
set r1 0
set r2 0
repeat 64
  store32 v r1 r2
  add r1 r1 4
  add r2 r2 48
end
set r1 0
fset f0 3.25
repeat 4096
  storef x r1 f0
  add r1 r1 8
end
impulse
  gather xp x 8 v 64
  set r1 0
  repeat 64
    loadf f1 xp r1
    acc f1
    add r1 r1 8
  end
else
  set r1 0
  repeat 64
    load32 r3 v r1
    mul r4 r3 8
    loadf f1 x r4
    acc f1
    add r1 r1 4
  end
end
`
	p := mustParse(t, src)
	conv, err := Run(newSys(t, core.Conventional), p)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Run(newSys(t, core.Impulse), p)
	if err != nil {
		t.Fatal(err)
	}
	want := 64 * 3.25
	if conv.Checksum != want || imp.Checksum != want {
		t.Fatalf("checksums %v / %v, want %v", conv.Checksum, imp.Checksum, want)
	}
}

func TestRecolorAndSuperpageScript(t *testing.T) {
	src := `
alloc a 65536
alloc b 65536
recolor a 0 7
superpage b
store64 a 4096 42
load64 r1 a 4096
store64 b 8192 43
load64 r2 b 8192
fset f0 1.5
acc f0
`
	res, err := Run(newSys(t, core.Impulse), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 1.5 {
		t.Error("script did not complete")
	}
	// Recolor on conventional must fail.
	if _, err := Run(newSys(t, core.Conventional), mustParse(t, "alloc a 4096\nrecolor a 0 3\n")); err == nil {
		t.Error("recolor ran on conventional controller")
	}
}

func TestExecErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"alloc a 64\nalloc a 64", "already allocated"},
		{"load64 r1 nosuch r0", "unknown region"},
		{"retarget ghost a 64 purge", "unknown strided alias"},
		{"set f1 3", "integer register"},
		{"fset r1 3.0", "float register"},
		{"acc r1", "float register or immediate"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if _, err := Run(newSys(t, core.Impulse), p); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%q) = %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestScriptTiming(t *testing.T) {
	// The impulse diagonal variant must beat the conventional one (the
	// Figure 1 claim), measured entirely from script programs.
	big := strings.ReplaceAll(diagScript, "repeat 64", "repeat 63")
	big = strings.ReplaceAll(big, "alloc mat 32768", "alloc mat 32768")
	p := mustParse(t, big)
	conv, err := Run(newSys(t, core.Conventional), p)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Run(newSys(t, core.Impulse), p)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Row.Stats.BusBytes >= conv.Row.Stats.BusBytes {
		t.Errorf("impulse bus bytes %d not below conventional %d",
			imp.Row.Stats.BusBytes, conv.Row.Stats.BusBytes)
	}
}

// Parse must never panic, whatever bytes arrive (scripts are user data).
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{
		"alloc", "set", "loadf", "storef", "repeat", "end", "impulse", "else",
		"gather", "stride", "retarget", "recolor", "r1", "f2", "r99", "0x",
		"12", "-3.5", "a", "#x", "\n", " ", "zz!", "0xQQ", "1e309",
	}
	for trial := 0; trial < 2000; trial++ {
		var sb strings.Builder
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			if rng.Intn(3) == 0 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		_, _ = Parse(sb.String()) // must not panic
	}
}

// Run must never panic on programs that parse but misuse the machine;
// errors are fine, crashes are not.
func TestRunNeverPanics(t *testing.T) {
	progs := []string{
		"gather a a 8 a 4",                             // unknown regions
		"alloc a 64\ngather x a 8 a 999",               // vector too small
		"alloc a 64\nsuperpage a\nsuperpage a",         // double superpage
		"alloc a 4096\nrecolor a 31 31\nrecolor a 0 0", // double recolor
		"stride s 8 0 4 0",                             // zero stride
	}
	for _, src := range progs {
		p, err := Parse(src)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Run(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Run(newSysLoose(t), p)
		}()
	}
}

func newSysLoose(t *testing.T) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Options{Controller: core.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubAndHexOperands(t *testing.T) {
	src := `
set r1 0x20
sub r2 r1 0x8
alloc a 64
store64 a 0 r2
load64 r3 a 0
fset f0 0.0
fadd f1 f0 1.0
acc f1
`
	res, err := Run(newSys(t, core.Conventional), mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 1.0 {
		t.Error("sub/hex program failed")
	}
}

func TestNegativeFloatImmediate(t *testing.T) {
	res, err := Run(newSys(t, core.Conventional), mustParse(t, "fset f0 -2.5\nacc f0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != -2.5 {
		t.Errorf("checksum = %v", res.Checksum)
	}
}
