package script

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
)

// Result is the outcome of running a program.
type Result struct {
	Checksum float64
	Row      core.Row
}

// MaxSteps bounds execution (scripts are data; a loop typo must not hang
// the host).
const MaxSteps = 200_000_000

// Run executes the program on the given system. Allocation and setup run
// inside the timed section (scripts decide their own phases with loops).
// The `impulse` block executes on Impulse controllers, the `else` block
// on conventional ones, so one script describes both variants of a
// kernel.
func Run(s *core.System, p *Program) (Result, error) {
	e := &executor{
		s:       s,
		prog:    p,
		regions: make(map[string]region),
		aliases: make(map[string]*core.StridedAlias),
	}
	sec := s.BeginSection()
	if err := e.run(); err != nil {
		return Result{}, err
	}
	row, err := sec.End("script")
	if err != nil {
		return Result{}, err
	}
	return Result{Checksum: e.checksum, Row: row}, nil
}

type region struct {
	base  addr.VAddr
	bytes uint64
}

type executor struct {
	s       *core.System
	prog    *Program
	regions map[string]region
	aliases map[string]*core.StridedAlias

	ints     [NumIntRegs]uint64
	floats   [NumFloatRegs]float64
	checksum float64

	steps int
}

type loopState struct {
	start     int // index of the repeat instruction
	remaining uint64
}

func (e *executor) errf(in *instr, format string, args ...interface{}) error {
	return fmt.Errorf("script: line %d: %s", in.line, fmt.Sprintf(format, args...))
}

// intVal evaluates an integer-valued operand.
func (e *executor) intVal(in *instr, a operand) (uint64, error) {
	switch a.kind {
	case oReg:
		return e.ints[a.reg], nil
	case oImm:
		return a.imm, nil
	default:
		return 0, e.errf(in, "expected integer register or immediate")
	}
}

// floatVal evaluates a float-valued operand.
func (e *executor) floatVal(in *instr, a operand) (float64, error) {
	switch a.kind {
	case oFreg:
		return e.floats[a.reg], nil
	case oFimm:
		return a.fimm, nil
	case oImm:
		return float64(a.imm), nil
	default:
		return 0, e.errf(in, "expected float register or immediate")
	}
}

// regionAddr resolves name+offset to a bounds-checked virtual address.
func (e *executor) regionAddr(in *instr, name operand, off operand, size uint64) (addr.VAddr, error) {
	if name.kind != oName {
		return 0, e.errf(in, "expected region name")
	}
	r, ok := e.regions[name.name]
	if !ok {
		if a, ok := e.aliases[name.name]; ok {
			r = region{base: a.VA, bytes: a.Bytes}
		} else {
			return 0, e.errf(in, "unknown region %q", name.name)
		}
	}
	o, err := e.intVal(in, off)
	if err != nil {
		return 0, err
	}
	if o+size > r.bytes {
		return 0, e.errf(in, "access [%d,%d) outside region %q (%d bytes)", o, o+size, name.name, r.bytes)
	}
	return r.base + addr.VAddr(o), nil
}

func (e *executor) run() error {
	var loops []loopState
	pc := 0
	for pc < len(e.prog.instrs) {
		e.steps++
		if e.steps > MaxSteps {
			return fmt.Errorf("script: exceeded %d steps (runaway loop?)", MaxSteps)
		}
		in := &e.prog.instrs[pc]
		switch in.op {
		case opAlloc:
			name := in.args[0]
			if name.kind != oName {
				return e.errf(in, "alloc needs a region name")
			}
			if _, dup := e.regions[name.name]; dup {
				return e.errf(in, "region %q already allocated", name.name)
			}
			bytes, err := e.intVal(in, in.args[1])
			if err != nil {
				return err
			}
			align := uint64(0)
			if len(in.args) == 3 {
				if align, err = e.intVal(in, in.args[2]); err != nil {
					return err
				}
			}
			base, err := e.s.Alloc(bytes, align)
			if err != nil {
				return e.errf(in, "%v", err)
			}
			e.regions[name.name] = region{base: base, bytes: bytes}

		case opSet:
			v, err := e.intVal(in, in.args[1])
			if err != nil {
				return err
			}
			if in.args[0].kind != oReg {
				return e.errf(in, "set needs an integer register")
			}
			e.ints[in.args[0].reg] = v

		case opFset:
			v, err := e.floatVal(in, in.args[1])
			if err != nil {
				return err
			}
			if in.args[0].kind != oFreg {
				return e.errf(in, "fset needs a float register")
			}
			e.floats[in.args[0].reg] = v

		case opAdd, opSub, opMul:
			if in.args[0].kind != oReg {
				return e.errf(in, "destination must be an integer register")
			}
			a, err := e.intVal(in, in.args[1])
			if err != nil {
				return err
			}
			b, err := e.intVal(in, in.args[2])
			if err != nil {
				return err
			}
			switch in.op {
			case opAdd:
				e.ints[in.args[0].reg] = a + b
			case opSub:
				e.ints[in.args[0].reg] = a - b
			case opMul:
				e.ints[in.args[0].reg] = a * b
			}
			e.s.Tick(1)

		case opFadd, opFmul:
			if in.args[0].kind != oFreg {
				return e.errf(in, "destination must be a float register")
			}
			a, err := e.floatVal(in, in.args[1])
			if err != nil {
				return err
			}
			b, err := e.floatVal(in, in.args[2])
			if err != nil {
				return err
			}
			if in.op == opFadd {
				e.floats[in.args[0].reg] = a + b
			} else {
				e.floats[in.args[0].reg] = a * b
			}
			e.s.Tick(1)

		case opLoad32, opLoad64:
			if in.args[0].kind != oReg {
				return e.errf(in, "load destination must be an integer register")
			}
			size := uint64(4)
			if in.op == opLoad64 {
				size = 8
			}
			va, err := e.regionAddr(in, in.args[1], in.args[2], size)
			if err != nil {
				return err
			}
			if size == 4 {
				e.ints[in.args[0].reg] = uint64(e.s.Load32(va))
			} else {
				e.ints[in.args[0].reg] = e.s.Load64(va)
			}

		case opLoadF:
			if in.args[0].kind != oFreg {
				return e.errf(in, "loadf destination must be a float register")
			}
			va, err := e.regionAddr(in, in.args[1], in.args[2], 8)
			if err != nil {
				return err
			}
			e.floats[in.args[0].reg] = e.s.LoadF64(va)

		case opStore32, opStore64:
			size := uint64(4)
			if in.op == opStore64 {
				size = 8
			}
			va, err := e.regionAddr(in, in.args[0], in.args[1], size)
			if err != nil {
				return err
			}
			v, err := e.intVal(in, in.args[2])
			if err != nil {
				return err
			}
			if size == 4 {
				e.s.Store32(va, uint32(v))
			} else {
				e.s.Store64(va, v)
			}

		case opStoreF:
			va, err := e.regionAddr(in, in.args[0], in.args[1], 8)
			if err != nil {
				return err
			}
			v, err := e.floatVal(in, in.args[2])
			if err != nil {
				return err
			}
			e.s.StoreF64(va, v)

		case opAcc:
			v, err := e.floatVal(in, in.args[0])
			if err != nil {
				return err
			}
			e.checksum += v
			e.s.Tick(1)

		case opTick:
			n, err := e.intVal(in, in.args[0])
			if err != nil {
				return err
			}
			e.s.Tick(n)

		case opFlush, opPurge:
			va, err := e.regionAddr(in, in.args[0], in.args[1], 1)
			if err != nil {
				return err
			}
			n, err := e.intVal(in, in.args[2])
			if err != nil {
				return err
			}
			if in.op == opFlush {
				e.s.FlushVRange(va, n)
			} else {
				e.s.PurgeVRange(va, n)
			}
			e.s.MC.InvalidateBuffers()

		case opRepeat:
			n, err := e.intVal(in, in.args[0])
			if err != nil {
				return err
			}
			if n == 0 {
				pc = in.match // skip the body entirely
			} else {
				loops = append(loops, loopState{start: pc, remaining: n})
			}

		case opEnd:
			if len(loops) > 0 && loops[len(loops)-1].start == in.match {
				top := &loops[len(loops)-1]
				top.remaining--
				if top.remaining > 0 {
					pc = top.start
				} else {
					loops = loops[:len(loops)-1]
				}
			}
			// `end` of an impulse/else block: fall through.

		case opImpulse:
			if !e.s.IsImpulse() {
				pc = in.match // jump to else (its body) or end
			}

		case opElse:
			// Reached from the impulse branch: skip over the else body.
			pc = in.match

		case opGather:
			if err := e.doGather(in); err != nil {
				return err
			}
		case opStride:
			if err := e.doStride(in); err != nil {
				return err
			}
		case opRetarget:
			if err := e.doRetarget(in); err != nil {
				return err
			}
		case opRecolor:
			name := in.args[0]
			r, ok := e.regions[name.name]
			if !ok {
				return e.errf(in, "unknown region %q", name.name)
			}
			lo, err := e.intVal(in, in.args[1])
			if err != nil {
				return err
			}
			hi, err := e.intVal(in, in.args[2])
			if err != nil {
				return err
			}
			if err := e.s.Recolor(r.base, r.bytes, lo, hi); err != nil {
				return e.errf(in, "%v", err)
			}
		case opSuperpage:
			name := in.args[0]
			r, ok := e.regions[name.name]
			if !ok {
				return e.errf(in, "unknown region %q", name.name)
			}
			if err := e.s.MapSuperpage(r.base, r.bytes); err != nil {
				return e.errf(in, "%v", err)
			}
		default:
			return e.errf(in, "unhandled opcode %d", in.op)
		}
		pc++
	}
	return nil
}

// doGather: gather alias target elemBytes vec count [l1off]
func (e *executor) doGather(in *instr) error {
	aliasName := in.args[0]
	target, ok := e.regions[in.args[1].name]
	if !ok {
		return e.errf(in, "unknown region %q", in.args[1].name)
	}
	elem, err := e.intVal(in, in.args[2])
	if err != nil {
		return err
	}
	vec, ok := e.regions[in.args[3].name]
	if !ok {
		return e.errf(in, "unknown region %q", in.args[3].name)
	}
	count, err := e.intVal(in, in.args[4])
	if err != nil {
		return err
	}
	l1off := uint64(0)
	if len(in.args) == 6 {
		if l1off, err = e.intVal(in, in.args[5]); err != nil {
			return err
		}
	}
	if count*4 > vec.bytes {
		return e.errf(in, "indirection vector %q too small for %d entries", in.args[3].name, count)
	}
	alias, err := e.s.MapScatterGather(target.base, target.bytes, elem, vec.base, count, l1off)
	if err != nil {
		return e.errf(in, "%v", err)
	}
	e.regions[aliasName.name] = region{base: alias, bytes: count * elem}
	return nil
}

// doStride: stride alias objBytes strideBytes count l1off
func (e *executor) doStride(in *instr) error {
	obj, err := e.intVal(in, in.args[1])
	if err != nil {
		return err
	}
	strideB, err := e.intVal(in, in.args[2])
	if err != nil {
		return err
	}
	count, err := e.intVal(in, in.args[3])
	if err != nil {
		return err
	}
	l1off, err := e.intVal(in, in.args[4])
	if err != nil {
		return err
	}
	a, err := e.s.NewStridedAlias(obj, strideB, count, l1off)
	if err != nil {
		return e.errf(in, "%v", err)
	}
	e.aliases[in.args[0].name] = a
	return nil
}

// doRetarget: retarget alias target span flush|purge [offset]
func (e *executor) doRetarget(in *instr) error {
	a, ok := e.aliases[in.args[0].name]
	if !ok {
		return e.errf(in, "unknown strided alias %q", in.args[0].name)
	}
	target, ok := e.regions[in.args[1].name]
	if !ok {
		return e.errf(in, "unknown region %q", in.args[1].name)
	}
	span, err := e.intVal(in, in.args[2])
	if err != nil {
		return err
	}
	off := uint64(0)
	if len(in.args) == 5 {
		if off, err = e.intVal(in, in.args[4]); err != nil {
			return err
		}
	}
	if off+span > target.bytes {
		return e.errf(in, "span [%d,%d) exceeds region %q", off, off+span, in.args[1].name)
	}
	mode := core.Purge
	switch in.args[3].name {
	case "flush":
		mode = core.Flush
	case "purge":
	default:
		return e.errf(in, "retarget mode must be flush or purge")
	}
	if err := e.s.Retarget(a, target.base+addr.VAddr(off), span, mode); err != nil {
		return e.errf(in, "%v", err)
	}
	return nil
}
