// Package script implements a small, deterministic memory-access
// language for driving the simulated machine without writing Go — the
// equivalent of the trace-replay front ends memory-system simulators
// usually carry. Programs allocate named regions, move data through the
// full hierarchy with typed loads/stores, loop, and invoke the Impulse
// remapping operations; an `impulse`/`else` block lets one program
// express both the conventional and the remapped variant of a kernel so
// the two can be compared for identical results.
//
// Example (the Figure 1 diagonal):
//
//	alloc mat 32768            # 64x64 doubles
//	set r1 0                   # byte offset of A[i][i]
//	repeat 64
//	  fset f0 1.5
//	  storef mat r1 f0
//	  add r1 r1 520            # next diagonal element: (64+1)*8
//	end
//	impulse
//	  stride diag 8 520 64 0   # dense alias of the diagonal
//	  retarget diag mat 32768 purge
//	  set r1 0
//	  repeat 64
//	    loadf f1 diag r1
//	    acc f1
//	    add r1 r1 8
//	  end
//	else
//	  set r1 0
//	  repeat 64
//	    loadf f1 mat r1
//	    acc f1
//	    add r1 r1 520
//	  end
//	end
package script

import (
	"fmt"
	"strconv"
	"strings"
)

// opcode identifies an instruction.
type opcode int

const (
	opAlloc opcode = iota
	opSet
	opFset
	opAdd
	opSub
	opMul
	opLoad32
	opLoad64
	opLoadF
	opStore32
	opStore64
	opStoreF
	opFadd
	opFmul
	opAcc
	opTick
	opFlush
	opPurge
	opRepeat
	opEnd
	opImpulse
	opElse
	opGather
	opStride
	opRetarget
	opRecolor
	opSuperpage
)

// operand is a register, immediate, or region reference.
type operand struct {
	kind oKind
	reg  int     // register index for oReg / oFreg
	imm  uint64  // immediate for oImm
	fimm float64 // immediate for oFimm
	name string  // region name for oName, or mode keyword
}

type oKind int

const (
	oReg oKind = iota
	oFreg
	oImm
	oFimm
	oName
)

// instr is one parsed instruction.
type instr struct {
	op   opcode
	args []operand
	line int
	// Control-flow links, resolved at parse time:
	match int // repeat -> its end; impulse -> its else/end; else -> end
}

// Program is a parsed script.
type Program struct {
	instrs []instr
}

const (
	// NumIntRegs is the number of integer registers (r0..r15).
	NumIntRegs = 16
	// NumFloatRegs is the number of float registers (f0..f15).
	NumFloatRegs = 16
)

var opSpec = map[string]struct {
	op    opcode
	arity int // -1: variable (checked in exec/parse specially)
}{
	"alloc":     {opAlloc, -1}, // alloc name bytes [align]
	"set":       {opSet, 2},
	"fset":      {opFset, 2},
	"add":       {opAdd, 3},
	"sub":       {opSub, 3},
	"mul":       {opMul, 3},
	"load32":    {opLoad32, 3},
	"load64":    {opLoad64, 3},
	"loadf":     {opLoadF, 3},
	"store32":   {opStore32, 3},
	"store64":   {opStore64, 3},
	"storef":    {opStoreF, 3},
	"fadd":      {opFadd, 3},
	"fmul":      {opFmul, 3},
	"acc":       {opAcc, 1},
	"tick":      {opTick, 1},
	"flush":     {opFlush, 3},
	"purge":     {opPurge, 3},
	"repeat":    {opRepeat, 1},
	"end":       {opEnd, 0},
	"impulse":   {opImpulse, 0},
	"else":      {opElse, 0},
	"gather":    {opGather, -1},   // gather alias target elem vec count [l1off]
	"stride":    {opStride, 5},    // stride alias obj stridebytes count l1off
	"retarget":  {opRetarget, -1}, // retarget alias target span mode [offset]
	"recolor":   {opRecolor, 3},
	"superpage": {opSuperpage, 1},
}

// Parse compiles source text into a Program. Errors carry line numbers.
func Parse(src string) (*Program, error) {
	p := &Program{}
	type frame struct {
		idx  int
		kind opcode // opRepeat or opImpulse/opElse
	}
	var stack []frame
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		n := lineNo + 1
		spec, ok := opSpec[fields[0]]
		if !ok {
			return nil, fmt.Errorf("script: line %d: unknown instruction %q", n, fields[0])
		}
		args := make([]operand, 0, len(fields)-1)
		for _, f := range fields[1:] {
			a, err := parseOperand(f)
			if err != nil {
				return nil, fmt.Errorf("script: line %d: %v", n, err)
			}
			args = append(args, a)
		}
		if spec.arity >= 0 && len(args) != spec.arity {
			return nil, fmt.Errorf("script: line %d: %s takes %d operands, got %d",
				n, fields[0], spec.arity, len(args))
		}
		switch spec.op {
		case opAlloc:
			if len(args) != 2 && len(args) != 3 {
				return nil, fmt.Errorf("script: line %d: alloc takes 2 or 3 operands", n)
			}
		case opGather:
			if len(args) != 5 && len(args) != 6 {
				return nil, fmt.Errorf("script: line %d: gather takes 5 or 6 operands", n)
			}
		case opRetarget:
			if len(args) != 4 && len(args) != 5 {
				return nil, fmt.Errorf("script: line %d: retarget takes 4 or 5 operands", n)
			}
		}
		idx := len(p.instrs)
		p.instrs = append(p.instrs, instr{op: spec.op, args: args, line: n})
		switch spec.op {
		case opRepeat, opImpulse:
			stack = append(stack, frame{idx: idx, kind: spec.op})
		case opElse:
			if len(stack) == 0 || stack[len(stack)-1].kind != opImpulse {
				return nil, fmt.Errorf("script: line %d: else without impulse", n)
			}
			p.instrs[stack[len(stack)-1].idx].match = idx
			stack[len(stack)-1] = frame{idx: idx, kind: opElse}
		case opEnd:
			if len(stack) == 0 {
				return nil, fmt.Errorf("script: line %d: end without repeat/impulse", n)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p.instrs[top.idx].match = idx
			if top.kind == opRepeat {
				p.instrs[idx].match = top.idx // end jumps back to its repeat
			} else {
				p.instrs[idx].match = -1 // block end: no loop to close
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("script: line %d: unterminated block", p.instrs[stack[len(stack)-1].idx].line)
	}
	return p, nil
}

func parseOperand(f string) (operand, error) {
	switch {
	case len(f) >= 2 && f[0] == 'r' && isDigits(f[1:]):
		i, _ := strconv.Atoi(f[1:])
		if i >= NumIntRegs {
			return operand{}, fmt.Errorf("register %s out of range", f)
		}
		return operand{kind: oReg, reg: i}, nil
	case len(f) >= 2 && f[0] == 'f' && isDigits(f[1:]):
		i, _ := strconv.Atoi(f[1:])
		if i >= NumFloatRegs {
			return operand{}, fmt.Errorf("register %s out of range", f)
		}
		return operand{kind: oFreg, reg: i}, nil
	case strings.HasPrefix(f, "0x"):
		v, err := strconv.ParseUint(f[2:], 16, 64)
		if err != nil {
			return operand{}, fmt.Errorf("bad hex immediate %q", f)
		}
		return operand{kind: oImm, imm: v}, nil
	case isDigits(f):
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return operand{}, fmt.Errorf("bad immediate %q", f)
		}
		return operand{kind: oImm, imm: v}, nil
	case (strings.ContainsAny(f, ".eE") || strings.HasPrefix(f, "-")) && isFloaty(f):
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return operand{}, fmt.Errorf("bad float immediate %q", f)
		}
		return operand{kind: oFimm, fimm: v}, nil
	default:
		if !isIdent(f) {
			return operand{}, fmt.Errorf("bad operand %q", f)
		}
		return operand{kind: oName, name: f}, nil
	}
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func isFloaty(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		digit := c >= '0' && c <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

// Len returns the instruction count (diagnostics).
func (p *Program) Len() int { return len(p.instrs) }
