// Package bus models the system bus connecting the processor to the
// Impulse memory controller (the HP Runway bus in the paper's simulated
// machine: 120 MHz, 64 bits wide).
//
// The model is a split-transaction occupancy model: a transaction has an
// address/request phase and a later data phase, both of which occupy the
// shared bus. Bytes moved are accounted so experiments can report the bus
// bandwidth saved by remapping — the heart of the paper's Figure 1
// argument (a conventional system wastes bus bandwidth moving non-diagonal
// elements; Impulse moves only useful data).
package bus

import (
	"fmt"

	"impulse/internal/obs"
	"impulse/internal/stats"
	"impulse/internal/timeline"
)

// Config describes the bus.
type Config struct {
	RequestCycles uint64 // occupancy of the address/request phase
	BytesPerCycle uint64 // data-phase bandwidth (Runway: 8 bytes/cycle)
}

// DefaultConfig returns the Runway-like parameters used for the paper
// reproduction.
func DefaultConfig() Config {
	return Config{RequestCycles: 4, BytesPerCycle: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RequestCycles == 0 || c.BytesPerCycle == 0 {
		return fmt.Errorf("bus: zero-valued config %+v", c)
	}
	return nil
}

// Bus is the shared processor-memory interconnect.
type Bus struct {
	cfg   Config
	res   timeline.Resource
	st    *stats.MemStats
	h     *obs.Hub
	track obs.TrackID
}

// New builds a bus. st may be nil.
func New(cfg Config, st *stats.MemStats) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = &stats.MemStats{}
	}
	return &Bus{cfg: cfg, st: st}, nil
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// AttachObs wires the bus into an observability hub: a "bus" trace track
// (request and data phases as separate spans), bus busy-cycles in the
// windowed series, and the resource's accounting in the registry.
func (b *Bus) AttachObs(h *obs.Hub) {
	b.h = h
	b.track = h.Track("bus")
	r := h.Reg()
	r.Gauge("bus.busy_cycles", b.res.BusyCycles)
	r.Gauge("bus.reservations", b.res.Uses)
}

// Request schedules the address phase of a transaction starting no earlier
// than at, and returns the time the request reaches the other side.
func (b *Bus) Request(at timeline.Time) timeline.Time {
	start, end := b.res.Acquire(at, b.cfg.RequestCycles)
	b.st.BusTransactions++
	b.st.BusBusyCycles += b.cfg.RequestCycles
	if b.h != nil {
		b.h.Span(b.track, "req", start, end)
		b.h.Busy(obs.BusBusy, start, end)
	}
	return end
}

// Transfer schedules a data phase moving n bytes, starting no earlier than
// ready (when the data exists at the sender), and returns its completion
// time.
func (b *Bus) Transfer(ready timeline.Time, n uint64) timeline.Time {
	cycles := (n + b.cfg.BytesPerCycle - 1) / b.cfg.BytesPerCycle
	if cycles == 0 {
		cycles = 1
	}
	start, end := b.res.Acquire(ready, cycles)
	b.st.BusBytes += n
	b.st.BusBusyCycles += cycles
	if b.h != nil {
		b.h.Span(b.track, "xfer", start, end)
		b.h.Busy(obs.BusBusy, start, end)
	}
	return end
}

// BusyUntil reports when the bus goes idle.
func (b *Bus) BusyUntil() timeline.Time { return b.res.BusyUntil() }

// Utilization returns bus busy cycles divided by elapsed cycles.
func (b *Bus) Utilization(elapsed uint64) float64 {
	return stats.Ratio(b.res.BusyCycles(), elapsed)
}
