package bus

import (
	"testing"
	"testing/quick"

	"impulse/internal/stats"
)

func TestRequestTransferTiming(t *testing.T) {
	st := &stats.MemStats{}
	b, err := New(DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Request(10)
	if got != 14 {
		t.Errorf("Request done at %d, want 14", got)
	}
	// 128 bytes at 8 B/cycle = 16 cycles; data ready at 50.
	done := b.Transfer(50, 128)
	if done != 66 {
		t.Errorf("Transfer done at %d, want 66", done)
	}
	if st.BusTransactions != 1 || st.BusBytes != 128 {
		t.Errorf("stats: %+v", st)
	}
}

func TestTransferMinimumOneCycle(t *testing.T) {
	b, _ := New(DefaultConfig(), nil)
	if done := b.Transfer(0, 0); done != 1 {
		t.Errorf("zero-byte transfer done at %d, want 1", done)
	}
	if done := b.Transfer(100, 4); done != 101 {
		t.Errorf("4-byte transfer done at %d, want 101", done)
	}
}

func TestOccupancySerializes(t *testing.T) {
	b, _ := New(DefaultConfig(), nil)
	b.Transfer(0, 80) // busy until 10
	got := b.Request(5)
	if got != 14 {
		t.Errorf("request during transfer completes at %d, want 14", got)
	}
}

func TestValidate(t *testing.T) {
	if (Config{0, 8}).Validate() == nil || (Config{4, 0}).Validate() == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestUtilization(t *testing.T) {
	b, _ := New(DefaultConfig(), nil)
	b.Request(0)       // 4 cycles
	b.Transfer(4, 128) // 16 cycles
	if u := b.Utilization(40); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
}

func TestByteAccountingProperty(t *testing.T) {
	st := &stats.MemStats{}
	b, _ := New(DefaultConfig(), st)
	var total uint64
	f := func(n uint16) bool {
		total += uint64(n)
		b.Transfer(0, uint64(n))
		return st.BusBytes == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
