package tlb

// slotIndex maps key -> entry slot without allocating on the hot path.
// It replaces the map[uint64]int index whose hashing dominated the
// simulator's translation cost (every access that misses the machine's
// MRU fast path performs a TLB lookup): open addressing with linear
// probing, Fibonacci hashing on the top bits (page numbers cluster in
// the low bits), backward-shift deletion, and growth at half load. The
// index is a pure acceleration structure — hit/miss outcomes and NRU
// replacement are decided by the entries array exactly as before.
type slotIndex struct {
	slots []indexSlot
	shift uint // 64 - log2(len(slots))
	n     int
}

type indexSlot struct {
	key  uint64
	slot int32
	used bool
}

const indexMinSlots = 16

func (t *slotIndex) init(capacity int) {
	size := indexMinSlots
	shift := uint(64 - 4)
	for size < 2*capacity {
		size *= 2
		shift--
	}
	t.slots = make([]indexSlot, size)
	t.shift = shift
	t.n = 0
}

func (t *slotIndex) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *slotIndex) get(key uint64) (int, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return int(s.slot), true
		}
	}
}

func (t *slotIndex) put(key uint64, slot int) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.home(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = indexSlot{key: key, slot: int32(slot), used: true}
			t.n++
			return
		}
		if s.key == key {
			s.slot = int32(slot)
			return
		}
	}
}

// del removes key if present, compacting the probe chain behind it
// (backward-shift deletion keeps lookups tombstone-free).
func (t *slotIndex) del(key uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.home(key)
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.key == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		// s may fill the hole at i only if its home position does not
		// lie strictly inside (i, j] — otherwise moving it would break
		// its own probe chain.
		if (j-t.home(s.key))&mask >= (j-i)&mask {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = indexSlot{}
	t.n--
}

func (t *slotIndex) grow() {
	old := t.slots
	t.slots = make([]indexSlot, 2*len(old))
	t.shift--
	t.n = 0
	for i := range old {
		if old[i].used {
			t.put(old[i].key, int(old[i].slot))
		}
	}
}

// reset empties the index, keeping its capacity.
func (t *slotIndex) reset() {
	clear(t.slots)
	t.n = 0
}
