package tlb

import (
	"testing"
	"testing/quick"
)

func TestLookupInsert(t *testing.T) {
	tl := New(4)
	if _, ok := tl.Lookup(7); ok {
		t.Fatal("cold TLB hit")
	}
	tl.Insert(7, 42)
	v, ok := tl.Lookup(7)
	if !ok || v != 42 {
		t.Fatalf("Lookup(7) = %d,%v", v, ok)
	}
	tl.Insert(7, 43) // update in place
	v, _ = tl.Lookup(7)
	if v != 43 {
		t.Errorf("updated value = %d", v)
	}
	if tl.Valid() != 1 {
		t.Errorf("Valid = %d", tl.Valid())
	}
}

func TestNRUReplacement(t *testing.T) {
	tl := New(2)
	tl.Insert(1, 10)
	tl.Insert(2, 20)
	// Reference only key 1: insertion sets ref on both, so force the NRU
	// sweep: all referenced -> clear all -> victim is slot 0 (key 1).
	tl.Insert(3, 30)
	if _, ok := tl.Lookup(1); ok {
		t.Error("NRU sweep should have evicted slot 0 (key 1)")
	}
	if _, ok := tl.Lookup(2); !ok {
		t.Error("key 2 unexpectedly evicted")
	}
	// Now key 2 and 3: lookup(2) above set its ref; lookup(1) missed.
	// Slot 0 holds key 3 with ref clear after sweep? No: insert(3) set it.
	// Insert 4: entries are {3: ref=true, 2: ref=true} -> sweep -> evict 3.
	tl.Insert(4, 40)
	if _, ok := tl.Lookup(3); ok {
		t.Error("key 3 should be the NRU victim")
	}
}

func TestNRUPrefersUnreferenced(t *testing.T) {
	tl := New(3)
	tl.Insert(1, 1)
	tl.Insert(2, 2)
	tl.Insert(3, 3)
	tl.Insert(4, 4) // all ref'd: sweep clears, evicts slot 0 (key 1)
	// Now slots: 4(ref), 2(clear), 3(clear).
	tl.Lookup(2) // ref 2
	tl.Insert(5, 5)
	// Victim must be key 3 (first clear ref), not 2 or 4.
	if _, ok := tl.Lookup(3); ok {
		t.Error("key 3 not evicted")
	}
	for _, k := range []uint64{4, 2, 5} {
		if _, ok := tl.Lookup(k); !ok {
			t.Errorf("key %d missing", k)
		}
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(4)
	tl.Insert(1, 10)
	tl.Insert(2, 20)
	tl.Invalidate(1)
	if _, ok := tl.Lookup(1); ok {
		t.Error("invalidated entry found")
	}
	if _, ok := tl.Lookup(2); !ok {
		t.Error("unrelated entry lost")
	}
	tl.InvalidateAll()
	if tl.Valid() != 0 {
		t.Error("entries remain after InvalidateAll")
	}
	if _, ok := tl.Lookup(2); ok {
		t.Error("entry survives InvalidateAll")
	}
}

func TestHitMissCounters(t *testing.T) {
	tl := New(2)
	tl.Lookup(1)
	tl.Insert(1, 1)
	tl.Lookup(1)
	tl.Lookup(2)
	if tl.Hits() != 1 || tl.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: the TLB never holds more than capacity entries, and a lookup
// immediately after insert always hits with the inserted value.
func TestQuickInsertLookup(t *testing.T) {
	tl := New(16)
	f := func(keys []uint64) bool {
		for _, k := range keys {
			tl.Insert(k, k*2+1)
			v, ok := tl.Lookup(k)
			if !ok || v != k*2+1 {
				return false
			}
			if tl.Valid() > tl.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: index map and entry array stay consistent under a random
// workload of inserts and invalidates.
func TestQuickConsistency(t *testing.T) {
	tl := New(8)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := uint64(op % 32)
			switch op % 3 {
			case 0:
				tl.Insert(k, k)
			case 1:
				tl.Invalidate(k)
			case 2:
				if v, ok := tl.Lookup(k); ok && v != k {
					return false
				}
			}
		}
		return tl.Valid() <= tl.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
