// Package tlb implements a fully-associative translation lookaside buffer
// with not-recently-used (NRU) replacement, matching the paper's simulated
// machine: "The TLB's are unified I/D, single-cycle, and fully associative,
// with a not-recently-used replacement policy."
//
// The same structure serves two masters: the processor MMU's TLB
// (virtual page -> physical frame) and the Impulse controller's PgTbl
// ("an on-chip TLB backed by main memory", pseudo-virtual page -> physical
// frame). Both are maps from a page number to a frame number, so the type
// is generic over the meaning of its keys.
package tlb

import "fmt"

// TLB is a fully-associative page-number -> frame-number cache with NRU
// replacement.
type TLB struct {
	entries []entry
	index   slotIndex // key -> slot, for O(1) lookup
	misses  uint64
	hits    uint64
}

type entry struct {
	key   uint64
	value uint64
	valid bool
	ref   bool
}

// New creates a TLB with the given number of entries.
func New(capacity int) *TLB {
	if capacity <= 0 {
		panic(fmt.Sprintf("tlb: non-positive capacity %d", capacity))
	}
	t := &TLB{entries: make([]entry, capacity)}
	t.index.init(capacity)
	return t
}

// Capacity returns the number of entries.
func (t *TLB) Capacity() int { return len(t.entries) }

// Lookup searches for key; on a hit it sets the entry's referenced bit.
func (t *TLB) Lookup(key uint64) (value uint64, ok bool) {
	if i, found := t.index.get(key); found && t.entries[i].valid {
		t.entries[i].ref = true
		t.hits++
		return t.entries[i].value, true
	}
	t.misses++
	return 0, false
}

// Insert installs key -> value, replacing per NRU if the TLB is full:
// the first entry with a clear referenced bit is the victim; if every
// referenced bit is set, all are cleared first (the classic NRU sweep).
func (t *TLB) Insert(key, value uint64) {
	if i, found := t.index.get(key); found {
		t.entries[i].value = value
		t.entries[i].valid = true
		t.entries[i].ref = true
		return
	}
	victim := -1
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = t.nruVictim()
		t.index.del(t.entries[victim].key)
	}
	t.entries[victim] = entry{key: key, value: value, valid: true, ref: true}
	t.index.put(key, victim)
}

func (t *TLB) nruVictim() int {
	for i := range t.entries {
		if !t.entries[i].ref {
			return i
		}
	}
	// All referenced: clear every bit and take the first entry.
	for i := range t.entries {
		t.entries[i].ref = false
	}
	return 0
}

// Invalidate removes key if present.
func (t *TLB) Invalidate(key uint64) {
	if i, found := t.index.get(key); found {
		t.entries[i] = entry{}
		t.index.del(key)
	}
}

// InvalidateAll empties the TLB (used when remappings change).
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.index.reset()
}

// Hits returns the number of successful lookups.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of failed lookups.
func (t *TLB) Misses() uint64 { return t.misses }

// Valid returns the number of valid entries.
func (t *TLB) Valid() int { return t.index.n }
