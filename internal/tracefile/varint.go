package tracefile

import "encoding/binary"

// Uvarint decodes one unsigned varint from b starting at pos, with
// explicit 1/2/3-byte fast-path arms: across the formats built on this
// encoding (trace operands, columnar result footers) almost every value
// fits three bytes. It returns the value and the number of bytes
// consumed; n <= 0 mirrors binary.Uvarint's contract (0 means
// truncated, < 0 means overflow). The guards chain — reaching the
// 2-byte arm implies b[pos] >= 0x80, the 3-byte arm implies
// b[pos+1] >= 0x80 — so each arm decodes exactly what binary.Uvarint
// would. decodeInto in vector.go inlines this function body in its hot
// loop; keep the two in step.
func Uvarint(b []byte, pos int) (uint64, int) {
	if pos >= len(b) {
		return 0, 0
	}
	if b[pos] < 0x80 {
		return uint64(b[pos]), 1
	}
	if pos+1 < len(b) && b[pos+1] < 0x80 {
		return uint64(b[pos]&0x7f) | uint64(b[pos+1])<<7, 2
	}
	if pos+2 < len(b) && b[pos+2] < 0x80 {
		return uint64(b[pos]&0x7f) | uint64(b[pos+1]&0x7f)<<7 | uint64(b[pos+2])<<14, 3
	}
	return binary.Uvarint(b[pos:])
}
