// Package tracefile implements classic trace-driven simulation on top of
// the execution-driven machine: record the reference stream of a run
// once, then replay it under different memory-system configurations
// without re-executing the workload. This is the methodology most
// memory-system studies of the paper's era used (and the role Paint's
// instrumentation played); the experiment harness builds its trace cache
// on it so timing-only sweeps execute each workload once.
//
// Two formats share the 8-byte "IMPTRC" + version header:
//
// Version 1 (Writer/Read/Replay, kept for compatibility) is a flat
// load/store stream: 10-byte records {kind u8, size u8, vaddr u64 LE},
// conventional accesses only. Replay lazily maps touched pages and
// charges a fixed per-access instruction cost — an approximation good
// enough for cache-geometry studies, but it cannot reproduce a run's
// cycle counts, and shadow accesses are skipped entirely.
//
// Version 2 (RecordRun/ReplayV2) captures the full machine-command stream a
// run issues, so replay is cycle- and counter-identical to execution —
// including Impulse shadow runs. Beyond loads and stores it records Tick
// batches, Flush/Purge ranges, TLB and block-TLB operations, the OS
// remap setup (page-table installs with the concrete frames the
// allocator picked, controller backing-table downloads, shadow
// descriptor configuration), syscall accounting, and measurement-section
// boundaries. Descriptor records for Gather remappings carry an untimed
// memory-image section: the indirection vector's bytes, snapshotted at
// download time. That image is what makes shadow replay exact — gather
// timing depends on the vector's *values* (they select the DRAM lines a
// gather touches), and replay skips functional data movement
// (sim.Machine.SetFunctional), so the controller would otherwise
// dereference zeros. Replay restores the image through the backing page
// table before installing the descriptor.
//
// v2 records are opcode-tagged varint sequences (load/store addresses
// delta-encoded against the previous access), decoded by a bounds-checked
// streaming decoder (Validate; fuzzed by FuzzTraceDecode).
package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/sim"
)

var magic = [8]byte{'I', 'M', 'P', 'T', 'R', 'C', 0, 1}

// Record is one replayable memory access.
type Record struct {
	Kind  byte // 0 = load, 1 = store
	Size  byte // access size in bytes (4 or 8)
	VAddr uint64
}

const (
	// KindLoad marks a load record.
	KindLoad byte = 0
	// KindStore marks a store record.
	KindStore byte = 1
)

// Writer streams records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Add appends one record.
func (t *Writer) Add(r Record) {
	if t.err != nil {
		return
	}
	var buf [10]byte
	buf[0] = r.Kind
	buf[1] = r.Size
	binary.LittleEndian.PutUint64(buf[2:], r.VAddr)
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return
	}
	t.count++
}

// Attach returns a sim.Tracer that records every load and store the
// machine executes (flushes and shadow accesses are skipped — see the
// package comment).
func (t *Writer) Attach() sim.Tracer {
	return func(e sim.TraceEvent) {
		if e.Shadow {
			return
		}
		switch e.Kind {
		case sim.TraceLoad:
			t.Add(Record{Kind: KindLoad, Size: byte(e.Size), VAddr: uint64(e.VAddr)})
		case sim.TraceStore:
			t.Add(Record{Kind: KindStore, Size: byte(e.Size), VAddr: uint64(e.VAddr)})
		}
	}
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the stream.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Read parses a trace stream into records.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", hdr[:6])
	}
	var out []Record
	var buf [10]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("tracefile: truncated record %d: %w", len(out), err)
		}
		rec := Record{Kind: buf[0], Size: buf[1], VAddr: binary.LittleEndian.Uint64(buf[2:])}
		if rec.Kind > KindStore {
			return nil, fmt.Errorf("tracefile: record %d: unknown kind %d", len(out), rec.Kind)
		}
		if rec.Size != 4 && rec.Size != 8 {
			return nil, fmt.Errorf("tracefile: record %d: unsupported size %d", len(out), rec.Size)
		}
		out = append(out, rec)
	}
}

// Replay drives the records through a system, lazily mapping every
// touched page, and returns the timed Row. perAccessTicks charges fixed
// non-memory work per access (the instruction overhead the trace lost).
func Replay(s *core.System, records []Record, perAccessTicks uint64) (core.Row, error) {
	mapped := make(map[uint64]bool)
	ensure := func(va addr.VAddr, size uint64) error {
		for pg := va.PageNum(); pg <= (uint64(va)+size-1)>>addr.PageShift; pg++ {
			if mapped[pg] {
				continue
			}
			f, err := s.K.AllocFrame()
			if err != nil {
				return err
			}
			if err := s.K.MapPage(pg, f); err != nil {
				return err
			}
			mapped[pg] = true
		}
		return nil
	}
	// Pre-map outside the timed section (the original run's allocation
	// was untimed setup too).
	for _, r := range records {
		if err := ensure(addr.VAddr(r.VAddr), uint64(r.Size)); err != nil {
			return core.Row{}, err
		}
	}
	sec := s.BeginSection()
	for _, r := range records {
		va := addr.VAddr(r.VAddr)
		switch {
		case r.Kind == KindLoad && r.Size == 8:
			s.Load64(va)
		case r.Kind == KindLoad:
			s.Load32(va)
		case r.Kind == KindStore && r.Size == 8:
			s.Store64(va, 0)
		default:
			s.Store32(va, 0)
		}
		if perAccessTicks > 0 {
			s.Tick(perAccessTicks)
		}
	}
	return sec.End("trace replay")
}
