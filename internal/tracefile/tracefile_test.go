package tracefile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/sim"
)

func newSys(t *testing.T, pf core.PrefetchPolicy) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: pf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{KindLoad, 8, 0x400000},
		{KindStore, 4, 0x400008},
		{KindLoad, 4, 0x401000},
	}
	for _, r := range recs {
		w.Add(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("short")); err == nil {
		t.Error("short header accepted")
	}
	if _, err := Read(strings.NewReader("NOTMAGIC--")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Add(Record{KindLoad, 8, 0})
	w.Flush()
	// Truncate mid-record.
	trunc := buf.Bytes()[:len(buf.Bytes())-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated record accepted")
	}
	// Corrupt kind.
	bad := append([]byte{}, buf.Bytes()...)
	bad[8] = 7
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("unknown kind accepted")
	}
	// Corrupt size.
	bad2 := append([]byte{}, buf.Bytes()...)
	bad2[9] = 3
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Error("bad size accepted")
	}
}

// Capture a run's trace, replay it, and compare the memory-system
// behaviour: identical access stream must produce identical hit
// classification on an identical machine.
func TestCaptureReplayFidelity(t *testing.T) {
	capture := newSys(t, core.PrefetchNone)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	capture.SetTracer(w.Attach())

	x := capture.MustAlloc(64<<10, 0)
	st0 := capture.Snapshot()
	t0 := capture.Now()
	for pass := 0; pass < 2; pass++ {
		for off := uint64(0); off < 64<<10; off += 8 {
			capture.Load64(x + addr.VAddr(off))
		}
	}
	for off := uint64(0); off < 4096; off += 8 {
		capture.Store64(x+addr.VAddr(off), off)
	}
	liveCycles := capture.Now() - t0
	liveLoads := capture.St.Loads - st0.Loads
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != w.Count() {
		t.Fatalf("read %d of %d records", len(recs), w.Count())
	}

	replaySys := newSys(t, core.PrefetchNone)
	row, err := Replay(replaySys, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.Loads != liveLoads {
		t.Errorf("replay loads %d != live %d", row.Stats.Loads, liveLoads)
	}
	// Hit classification depends only on the access stream and machine
	// geometry — identical machines must agree exactly.
	liveDelta := capture.Snapshot()
	if row.Stats.L1LoadHits != liveDelta.L1LoadHits-st0.L1LoadHits {
		t.Errorf("replay L1 hits %d != live %d",
			row.Stats.L1LoadHits, liveDelta.L1LoadHits-st0.L1LoadHits)
	}
	if row.Stats.MemLoads != liveDelta.MemLoads-st0.MemLoads {
		t.Errorf("replay mem loads %d != live %d",
			row.Stats.MemLoads, liveDelta.MemLoads-st0.MemLoads)
	}
	// Cycles agree up to the TLB-warmup difference (replay pre-maps).
	if row.Cycles == 0 || row.Cycles > liveCycles+10000 {
		t.Errorf("replay cycles %d vs live %d", row.Cycles, liveCycles)
	}
}

// Replaying one trace under different configurations ranks them.
func TestReplayComparesConfigurations(t *testing.T) {
	capture := newSys(t, core.PrefetchNone)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	capture.SetTracer(w.Attach())
	x := capture.MustAlloc(256<<10, 0)
	for off := uint64(0); off < 256<<10; off += 8 {
		capture.Load64(x + addr.VAddr(off))
	}
	w.Flush()
	recs, _ := Read(bytes.NewReader(buf.Bytes()))

	rowNone, err := Replay(newSys(t, core.PrefetchNone), recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	rowPF, err := Replay(newSys(t, core.PrefetchBoth), recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rowPF.Cycles >= rowNone.Cycles {
		t.Errorf("prefetching replay (%d) not faster than baseline (%d)", rowPF.Cycles, rowNone.Cycles)
	}
}

func TestShadowAccessesNotRecorded(t *testing.T) {
	s := newSys(t, core.PrefetchNone)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	s.SetTracer(w.Attach())
	x := s.MustAlloc(4096, 0)
	vec := s.MustAlloc(64, 0)
	for k := 0; k < 16; k++ {
		s.Store32(vec+addr.VAddr(4*k), uint32(k))
	}
	alias, err := s.MapScatterGather(x, 4096, 8, vec, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Count()
	s.LoadF64(alias) // shadow access: must not be recorded
	if w.Count() != before {
		t.Error("shadow access recorded")
	}
	var _ sim.Tracer = w.Attach() // type check
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 16 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = errors.New("synthetic write failure")

func TestWriterErrorSticky(t *testing.T) {
	w, err := NewWriter(&failingWriter{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.Add(Record{KindLoad, 8, uint64(i)})
	}
	// bufio defers the failure to Flush at the latest.
	if err := w.Flush(); err == nil {
		t.Error("write failure not surfaced")
	}
}
