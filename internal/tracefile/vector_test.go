package tracefile

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/sim"
	"impulse/internal/workloads"
)

// vectorLaneRun builds a fresh system per opts and replays data on it as
// a single-lane vectorized batch, returning the lane's last row and
// registry. Fatal on any error, mirroring replayRun.
func vectorLaneRun(t *testing.T, opts core.Options, data []byte, mapLabel func(string) string) (core.Row, *obs.Registry) {
	t.Helper()
	var reg obs.Registry
	opts.RowObserver = core.CollectRows(&reg)
	s, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	lane := &VectorLane{Sys: s, MapLabel: mapLabel}
	if _, err := VectorReplayV2(context.Background(), data, []*VectorLane{lane}); err != nil {
		t.Fatal(err)
	}
	if lane.Err != nil {
		t.Fatal(lane.Err)
	}
	if len(lane.Rows) == 0 {
		t.Fatal("vector replay produced no rows")
	}
	return lane.Rows[len(lane.Rows)-1], &reg
}

// TestVectorReplayIdentityCG pins the vectorized tentpole property the
// way the harness uses it: one recorded stream per Table 1 section,
// replayed as a multi-lane batch whose lanes are the other prefetch
// columns, must equal executing (and scalar-replaying) each lane's
// configuration directly — rendered row, cycles, every counter, full
// registry text. Run for both fast-path settings: the inline applier
// must be exact whether or not the MRU engine is available.
func TestVectorReplayIdentityCG(t *testing.T) {
	m := workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift)
	modes := []workloads.CGMode{workloads.CGConventional, workloads.CGScatterGather, workloads.CGRecolor}
	pfs := []core.PrefetchPolicy{core.PrefetchNone, core.PrefetchMC, core.PrefetchL1, core.PrefetchBoth}
	for _, fastOff := range []bool{false, true} {
		for _, mode := range modes {
			name := fmt.Sprintf("%v/fastOff=%v", mode, fastOff)
			t.Run(name, func(t *testing.T) {
				cfg := sim.DefaultConfig()
				cfg.DisableFastPath = fastOff
				optsFor := func(pf core.PrefetchPolicy) core.Options {
					kind := core.Conventional
					if mode != workloads.CGConventional || pf == core.PrefetchMC || pf == core.PrefetchBoth {
						kind = core.Impulse
					}
					c := cfg
					return core.Options{Controller: kind, Prefetch: pf, Config: &c}
				}
				run := func(s *core.System) (core.Row, error) {
					res, err := workloads.RunCG(s, tinyCG, mode, m)
					return res.Row, err
				}
				// Record under the first column, like the harness batch lead.
				data, _, _ := recordedRun(t, optsFor(pfs[0]), run)

				// Build one lane per column and replay the batch.
				regs := make([]obs.Registry, len(pfs))
				lanes := make([]*VectorLane, len(pfs))
				relabel := func(pf core.PrefetchPolicy) func(string) string {
					suffix := pf.String()
					return func(l string) string {
						if i := strings.LastIndexByte(l, '/'); i >= 0 {
							return l[:i+1] + suffix
						}
						return l
					}
				}
				for i, pf := range pfs {
					opts := optsFor(pf)
					opts.RowObserver = core.CollectRows(&regs[i])
					s, err := core.NewSystem(opts)
					if err != nil {
						t.Fatal(err)
					}
					lanes[i] = &VectorLane{Sys: s, MapLabel: relabel(pf)}
				}
				st, err := VectorReplayV2(context.Background(), data, lanes)
				if err != nil {
					t.Fatal(err)
				}
				if st.Ops == 0 {
					t.Fatal("vector stats report zero ops")
				}

				// Every lane must match a direct execution of its config.
				for i, pf := range pfs {
					if lanes[i].Err != nil {
						t.Fatalf("lane %v: %v", pf, lanes[i].Err)
					}
					_, execRow, execReg := recordedRun(t, optsFor(pf), run)
					repRow := lanes[i].Rows[len(lanes[i].Rows)-1]
					assertIdentical(t, fmt.Sprintf("%s/%v", name, pf), execRow, repRow, execReg, &regs[i])
				}
			})
		}
	}
}

// TestVectorReplayIdentityMMP covers the Table 2 streams (tile remap,
// software copy) against scalar replay of the same bytes.
func TestVectorReplayIdentityMMP(t *testing.T) {
	modes := []workloads.MMPMode{workloads.MMPNoCopyTiled, workloads.MMPCopyTiled, workloads.MMPTileRemap}
	pfs := []core.PrefetchPolicy{core.PrefetchNone, core.PrefetchMC, core.PrefetchL1, core.PrefetchBoth}
	for _, mode := range modes {
		for _, pf := range pfs {
			name := fmt.Sprintf("%v/%v", mode, pf)
			t.Run(name, func(t *testing.T) {
				kind := core.Conventional
				if mode == workloads.MMPTileRemap || pf == core.PrefetchMC || pf == core.PrefetchBoth {
					kind = core.Impulse
				}
				opts := core.Options{Controller: kind, Prefetch: pf}
				data, execRow, execReg := recordedRun(t, opts, func(s *core.System) (core.Row, error) {
					res, err := workloads.RunMMP(s, tinyMMP, mode)
					return res.Row, err
				})
				repRow, repReg := vectorLaneRun(t, opts, data, nil)
				assertIdentical(t, name, execRow, repRow, execReg, repReg)
			})
		}
	}
}

// TestVectorDecodeMatchesValidate: DecodeProgram accepts exactly the
// traces Validate accepts — its validation rides the same decoder.
func TestVectorDecodeMatchesValidate(t *testing.T) {
	data, _, _ := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC},
		func(s *core.System) (core.Row, error) {
			res, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather,
				workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift))
			return res.Row, err
		})
	p, err := DecodeProgram(data)
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// The program partitions the trace: hot + rare op counts must agree
	// with a raw decode pass, and fused Ticks must all be accounted for.
	var raw, ticksFused int
	if err := forEachOp(data, func(o *v2op) error { raw++; return nil }); err != nil {
		t.Fatal(err)
	}
	for _, a := range p.aux {
		if a != 0 {
			ticksFused++
		}
	}
	if got := p.Ops() + ticksFused; got != raw {
		t.Errorf("program accounts for %d ops (%d fused ticks), raw decode sees %d", got, ticksFused, raw)
	}
	if ticksFused == 0 {
		t.Error("no ticks fused in a CG trace (fusion broken or workload changed shape)")
	}

	for _, mut := range [][]byte{
		nil,
		data[:4],
		append(append([]byte(nil), data...), 0xEE),
		data[:len(data)-1],
		append(append([]byte(nil), magicV2[:]...), opSectionEnd, 0),
	} {
		if _, err := DecodeProgram(mut); err == nil {
			t.Error("corrupt trace decoded without error")
		}
	}
}

// TestVectorReplaySemanticDamage: a lane whose machine rejects the
// stream records its own error; lanes after it still replay.
func TestVectorReplaySemanticDamage(t *testing.T) {
	// A load to a virtual page no opMapPT ever installed.
	data := append([]byte(nil), magicV2[:]...)
	data = append(data, opSectionBegin, opLoad64, 0x80, 0x80, 0x80, 0x01)
	data = append(data, opSectionEnd, 1, 'x')
	mk := func() *core.System {
		s, err := core.NewSystem(core.Options{Controller: core.Conventional})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	lanes := []*VectorLane{{Sys: mk()}, {Sys: mk()}}
	if _, err := VectorReplayV2(context.Background(), data, lanes); err != nil {
		t.Fatalf("semantic damage must stay per-lane, got top-level error: %v", err)
	}
	for i, ln := range lanes {
		if ln.Err == nil {
			t.Errorf("lane %d: semantically damaged trace accepted", i)
		}
		if len(ln.Rows) != 0 {
			t.Errorf("lane %d: %d rows leaked from failed replay", i, len(ln.Rows))
		}
	}

	// Scalar replay of the same bytes must report the same error text,
	// so the harness surfaces identical messages in both modes.
	if _, scalarErr := ReplayV2(mk(), data, ReplayOpts{}); scalarErr == nil {
		t.Error("scalar replay accepted damaged trace")
	} else if lanes[0].Err.Error() != scalarErr.Error() {
		t.Errorf("error text diverges:\n vector: %v\n scalar: %v", lanes[0].Err, scalarErr)
	}
}

// TestVectorReplayCancel: a cancelled context aborts the batch with
// ctx.Err() and no rows leak from the lane that was cut short.
func TestVectorReplayCancel(t *testing.T) {
	m := workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift)
	data, _, _ := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC},
		func(s *core.System) (core.Row, error) {
			res, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather, m)
			return res.Row, err
		})
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lane := &VectorLane{Sys: s}
	if _, err := VectorReplayV2(ctx, data, []*VectorLane{lane}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// BenchmarkVectorReplay measures the vectorized batch at the K values
// the sweep families produce: 1 (a lone replay lane), 4 (one table
// section), 16, and 30 (the projected DReAM-style family sizes).
// Per-lane cost is the number to watch: ns/op divides by K via
// b.ReportMetric.
func BenchmarkVectorReplay(b *testing.B) {
	m := workloads.MakeA(benchCG.N, benchCG.Nonzer, benchCG.RCond, benchCG.Shift)
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
	if err != nil {
		b.Fatal(err)
	}
	rec := RecordRun(s)
	if _, err := workloads.RunCG(s, benchCG, workloads.CGScatterGather, m); err != nil {
		b.Fatal(err)
	}
	data, err := rec.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 4, 16, 30} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(data)) * int64(k))
			var cycles uint64
			for i := 0; i < b.N; i++ {
				lanes := make([]*VectorLane, k)
				for j := range lanes {
					s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
					if err != nil {
						b.Fatal(err)
					}
					lanes[j] = &VectorLane{Sys: s}
				}
				if _, err := VectorReplayV2(context.Background(), data, lanes); err != nil {
					b.Fatal(err)
				}
				for _, ln := range lanes {
					if ln.Err != nil {
						b.Fatal(ln.Err)
					}
					cycles = ln.Rows[len(ln.Rows)-1].Cycles
					ln.Sys.ReleaseBuffers()
				}
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/lane")
		})
	}
}

// BenchmarkVectorDecode isolates the shared decode pass.
func BenchmarkVectorDecode(b *testing.B) {
	m := workloads.MakeA(benchCG.N, benchCG.Nonzer, benchCG.RCond, benchCG.Shift)
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
	if err != nil {
		b.Fatal(err)
	}
	rec := RecordRun(s)
	if _, err := workloads.RunCG(s, benchCG, workloads.CGScatterGather, m); err != nil {
		b.Fatal(err)
	}
	data, err := rec.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeProgram(data); err != nil {
			b.Fatal(err)
		}
	}
}
