// Vectorized multi-config replay: decode a recorded v2 trace once and
// drive an array of timing machines with the decoded form, instead of
// re-decoding the byte stream once per machine.
//
// DecodeProgram lowers the trace into a run-structured program: flat
// struct-of-arrays operand vectors (args/aux) partitioned into runs of
// consecutive same-opcode hot ops, with everything else (flushes, TLB
// and descriptor ops, section markers) parked in a rare-op side table in
// stream order. Decoding rides forEachOp, so structural validation —
// header, opcodes, operand bounds, section balance — is exactly the
// scalar decoder's. Two lowering steps shape the program for the
// applier in internal/sim:
//
//   - Tick fusion: a Tick immediately behind a load/store folds into
//     that op's aux slot. The pair's combined effect is position-exact
//     (nothing between them observes the clock), and it keeps unit-
//     stride load/tick loops as long uninterrupted load runs.
//   - Run batching: the per-op opcode branch is resolved once per run at
//     decode time; each machine then applies a whole run through one
//     dispatch (sim.VecApplier), not one branch per op per config.
//
// VectorReplayV2 applies the program to K lanes sequentially: the
// decode cost is paid once, each lane's state stays hot in cache for
// its whole pass, and the lanes' wall-clock phases (one shared decode,
// K applies) are real, disjoint intervals the harness can report.
package tracefile

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"impulse/internal/core"
	"impulse/internal/sim"
)

// DecodeProgram's hot loop forwards the five hot trace opcodes directly
// as sim.Vec* applier codes. Each pair of constants underflows byte —
// and fails to compile — if either enum is ever reordered.
const (
	_ = byte(sim.VecLoad32-opLoad32) + byte(opLoad32-sim.VecLoad32)
	_ = byte(sim.VecLoad64-opLoad64) + byte(opLoad64-sim.VecLoad64)
	_ = byte(sim.VecStore32-opStore32) + byte(opStore32-sim.VecStore32)
	_ = byte(sim.VecStore64-opStore64) + byte(opStore64-sim.VecStore64)
	_ = byte(sim.VecTick-opTick) + byte(opTick-sim.VecTick)
)

// vecRare marks a run of rare ops in a decoded program (the hot codes
// are sim.VecLoad32..VecTick; 0 is reserved for this).
const vecRare byte = 0

// vecRun is one run of consecutive same-code ops: n ops starting at
// offset off into args/aux (hot codes) or rares (vecRare).
type vecRun struct {
	code byte
	n    int32
	off  int32
}

// Program is a decoded v2 trace, ready to apply to any number of
// machines. It retains references into the trace bytes it was decoded
// from (labels are copied, descriptor images are not), so the trace
// must outlive the program. Programs are immutable after DecodeProgram
// and safe for concurrent application to different systems.
type Program struct {
	runs  []vecRun
	args  []uint64 // per hot op: virtual address, or tick count
	aux   []uint32 // per hot op: fused trailing Tick (0 = none)
	rares []v2op   // rare ops in stream order (label/img owned by the trace)
}

// Ops returns the total operation count of the decoded trace.
func (p *Program) Ops() int { return len(p.args) + len(p.rares) }

// programPool recycles the backing arrays of decoded programs between
// replay batches: a sweep decodes one trace per family, and re-zeroing
// megabytes of operand vectors per decode would cost more than the
// decode itself. VectorReplayV2 takes programs from the pool and
// recycles them when the batch ends; DecodeProgram always allocates a
// caller-owned program.
var programPool = sync.Pool{New: func() any { return new(Program) }}

// recycle clears the program (dropping references into the trace bytes
// so the pool cannot pin them) and returns it to the pool.
func (p *Program) recycle() {
	for i := range p.rares {
		p.rares[i] = v2op{}
	}
	p.runs, p.args, p.aux, p.rares = p.runs[:0], p.args[:0], p.aux[:0], p.rares[:0]
	programPool.Put(p)
}

// DecodeProgram decodes a v2 trace into a Program. Structural damage
// surfaces exactly as Validate/ReplayV2 would report it: the hot loop
// below inlines the decoder's varint/zigzag arithmetic (the five hot
// opcodes equal their sim.Vec* codes by construction, and the decode is
// the shared cost of a whole replay batch, so it has to run near memory
// speed), while every rare op goes through the same rareOp method
// forEachOp uses. FuzzVectorDecode pins the two decoders' agreement.
func DecodeProgram(data []byte) (*Program, error) {
	p := new(Program)
	if err := decodeInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeInto decodes data into p, reusing whatever operand capacity p
// already carries.
func decodeInto(p *Program, data []byte) error {
	if len(data) < len(magicV2) || !bytes.Equal(data[:len(magicV2)], magicV2[:]) {
		return fmt.Errorf("tracefile: not a v2 trace (bad or missing header)")
	}
	if cap(p.args) == 0 {
		// Pre-size from the encoding's density: hot ops dominate and
		// average ~2 bytes each.
		p.runs = make([]vecRun, 0, len(data)/8)
		p.args = make([]uint64, 0, len(data)/2)
		p.aux = make([]uint32, 0, len(data)/2)
	}
	d := &v2decoder{data: data, pos: len(magicV2)}
	var (
		o     v2op
		depth int
		last  uint64 // previous access address (delta decoding)
		// fusable: the last hot op is a load/store directly behind the
		// decode position, so a Tick may fold into its aux slot.
		fusable bool
		// Current run, tracked in locals (a flush closure would force
		// them onto the heap) and appended on each code change. The 0xff
		// sentinel collides with no opcode and not with vecRare.
		runCode byte = 0xff
		runN    int32
		runOff  int32
	)
	src := data
	pos := d.pos
	for pos < len(src) {
		code := src[pos]
		pos++
		if code >= opLoad32 && code <= opTick {
			// Inlined v2decoder.u, with explicit 1/2/3-byte fast paths:
			// tick batches fit one byte and access deltas almost always fit
			// three. The guards chain — reaching the 2-byte arm implies
			// src[pos] >= 0x80, the 3-byte arm implies src[pos+1] >= 0x80 —
			// so each arm decodes exactly what binary.Uvarint would.
			var u uint64
			if pos < len(src) && src[pos] < 0x80 {
				u = uint64(src[pos])
				pos++
			} else if pos+1 < len(src) && src[pos+1] < 0x80 {
				u = uint64(src[pos]&0x7f) | uint64(src[pos+1])<<7
				pos += 2
			} else if pos+2 < len(src) && src[pos+2] < 0x80 {
				u = uint64(src[pos]&0x7f) | uint64(src[pos+1]&0x7f)<<7 | uint64(src[pos+2])<<14
				pos += 3
			} else {
				var n int
				u, n = binary.Uvarint(src[pos:])
				if n <= 0 {
					d.pos = pos
					return d.errAt("truncated or oversized varint")
				}
				pos += n
			}
			if code == opTick {
				// Fold into the preceding access when position-exact: the
				// access is the immediately preceding op and its aux slot
				// is free. (A second consecutive Tick, or one behind a
				// rare op or section marker, keeps its own slot — merging
				// Ticks would mis-round ceil(n/w) on superscalar configs,
				// and crossing a rare op would reorder against a clock
				// reader.)
				if fusable && u > 0 && u <= math.MaxUint32 && p.aux[len(p.aux)-1] == 0 {
					p.aux[len(p.aux)-1] = uint32(u)
					fusable = false
					continue
				}
				fusable = false
			} else {
				// Zigzag delta against the previous access address.
				v := int64(u >> 1)
				if u&1 != 0 {
					v = ^v
				}
				last += uint64(v)
				u = last
				fusable = true
			}
			if code != runCode {
				if runN > 0 {
					p.runs = append(p.runs, vecRun{code: runCode, n: runN, off: runOff})
				}
				runCode, runN, runOff = code, 0, int32(len(p.args))
			}
			runN++
			p.args = append(p.args, u)
			p.aux = append(p.aux, 0)
			if len(p.args) > math.MaxInt32 {
				return fmt.Errorf("tracefile: trace too large to vectorize")
			}
			continue
		}
		// Rare op: decode through the shared forEachOp path.
		d.pos = pos
		o.code = code
		if err := d.rareOp(&o, &depth); err != nil {
			return err
		}
		pos = d.pos
		fusable = false
		if runCode != vecRare {
			if runN > 0 {
				p.runs = append(p.runs, vecRun{code: runCode, n: runN, off: runOff})
			}
			runCode, runN, runOff = vecRare, 0, int32(len(p.rares))
		}
		runN++
		p.rares = append(p.rares, o) // o is reused; keep a copy
		if len(p.rares) > math.MaxInt32 {
			return fmt.Errorf("tracefile: trace too large to vectorize")
		}
	}
	if runN > 0 {
		p.runs = append(p.runs, vecRun{code: runCode, n: runN, off: runOff})
	}
	return nil
}

// VectorLane is one timing machine participating in a vectorized
// replay: its system, the label rewrite for its rows (nil = keep), and
// the per-lane outputs.
type VectorLane struct {
	Sys      *core.System
	MapLabel func(string) string

	// Outputs, filled by VectorReplayV2.
	Rows  []core.Row    // rows the recorded sections/results produced
	Err   error         // this lane's replay error (others still run)
	Apply time.Duration // host wall-clock of this lane's apply pass
}

// VectorStats reports the shared work of one VectorReplayV2 call.
type VectorStats struct {
	Decode time.Duration // host wall-clock of the single decode pass
	Ops    int           // operations decoded (applied once per lane)
}

// ctxPollOps is how many applied hot ops pass between context polls.
const ctxPollOps = 1 << 16

// VectorReplayV2 decodes data once and replays it on every lane in
// order. Each lane's system must be freshly built with the timing
// configuration under study; its rows and cycles come out identical to
// a scalar ReplayV2 of the same bytes (the differential suites pin
// this). A structural decode error or a cancelled ctx aborts the whole
// call; a lane whose machine rejects the stream records the error in
// its Err and the remaining lanes still run.
func VectorReplayV2(ctx context.Context, data []byte, lanes []*VectorLane) (VectorStats, error) {
	t0 := time.Now()
	p := programPool.Get().(*Program)
	if err := decodeInto(p, data); err != nil {
		p.recycle()
		return VectorStats{}, err
	}
	defer p.recycle()
	st := VectorStats{Decode: time.Since(t0), Ops: p.Ops()}
	for _, ln := range lanes {
		t1 := time.Now()
		ln.Rows, ln.Err = applyProgram(ctx, ln.Sys, p, ln.MapLabel)
		ln.Apply = time.Since(t1)
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
	}
	return st, nil
}

// applyProgram replays a decoded program on one system. Semantics match
// ReplayV2: functional movement off for the duration, machine panics
// surface as errors, rows in recorded order.
func applyProgram(ctx context.Context, s *core.System, p *Program, mapLabel func(string) string) (rows []core.Row, err error) {
	if mapLabel == nil {
		mapLabel = func(l string) string { return l }
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tracefile: replay: %v", r)
		}
	}()
	s.SetFunctional(false)
	defer s.SetFunctional(true)
	ap := sim.NewVecApplier(s.Machine)
	defer ap.Close()
	var secs []core.Section
	poll := 0
	for ri := range p.runs {
		r := &p.runs[ri]
		if r.code == vecRare {
			for i := r.off; i < r.off+r.n; i++ {
				if err := applyRare(s, &p.rares[i], &secs, &rows, mapLabel); err != nil {
					return nil, err
				}
			}
			continue
		}
		end := r.off + r.n
		ap.ApplyRun(r.code, p.args[r.off:end], p.aux[r.off:end])
		if poll += int(r.n); poll >= ctxPollOps {
			poll = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
