package tracefile

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/mc"
)

// magicV2 heads a version-2 trace (same "IMPTRC" prefix as v1).
var magicV2 = [8]byte{'I', 'M', 'P', 'T', 'R', 'C', 0, 2}

// v2 opcodes. Load/store addresses are zigzag-varint deltas against the
// previous access address; all other integers are plain uvarints.
const (
	opLoad32 byte = iota + 1
	opLoad64
	opStore32
	opStore64
	opTick             // n
	opFlushV           // v, bytes
	opPurgeV           // v, bytes
	opInstallBlockTLB  // v, p, bytes
	opClearBlockTLB    //
	opFlushTLB         //
	opFlushTLBPage     // v
	opResetCaches      //
	opFlushAllCaches   //
	opMapPT            // vpage, pn
	opUnmapPT          // vpage
	opMapPV            // pvpage, frame
	opSetDescriptor    // slot, kind, shadowBase, bytes, pvBase, objBytes, strideBytes, vecPV, imgLen, img
	opClearDescriptor  // slot
	opMCInvalidateTLB  //
	opMCInvalidateBufs //
	opSyscallStats     // calls, cycles
	opSectionBegin     //
	opSectionEnd       // labelLen, label
	opResult           // labelLen, label
)

// Recorder captures a run's full machine-command stream into an
// in-memory v2 trace. Build one with RecordRun, run the workload, then
// take the encoded trace with Bytes. A Recorder is single-use and, like
// the System it observes, not safe for concurrent use.
type Recorder struct {
	s    *core.System
	buf  []byte
	last uint64 // previous load/store address, for delta encoding
	err  error
}

// RecordRun attaches a new Recorder to every recording hook of s
// (machine command stream, kernel page-table observer, controller OS
// ops, run events) and returns it.
func RecordRun(s *core.System) *Recorder {
	// Pre-size the buffer: workload traces run to megabytes, and growing
	// from empty costs a dozen copy-everything reallocations.
	r := &Recorder{s: s, buf: append(make([]byte, 0, 1<<20), magicV2[:]...)}
	s.SetCommandRecorder(r)
	s.SetRunRecorder(r)
	s.K.SetMapObserver(r)
	s.MC.SetOpRecorder(r)
	return r
}

// Detach removes the recorder from the system's hooks.
func (r *Recorder) Detach() {
	r.s.SetCommandRecorder(nil)
	r.s.SetRunRecorder(nil)
	r.s.K.SetMapObserver(nil)
	r.s.MC.SetOpRecorder(nil)
}

// Bytes returns the encoded trace, or the first recording error (an
// operation v2 cannot represent, or a failed indirection-vector
// snapshot).
func (r *Recorder) Bytes() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	return r.buf, nil
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Recorder) op(c byte)  { r.buf = append(r.buf, c) }
func (r *Recorder) u(v uint64) { r.buf = binary.AppendUvarint(r.buf, v) }
func (r *Recorder) str(s string) {
	r.u(uint64(len(s)))
	r.buf = append(r.buf, s...)
}

// opDelta appends opcode + zigzag delta in one append on the common
// small-delta path (loads and stores are the bulk of a trace; fusing the
// two appends and inlining the one-byte varint is measurable).
func (r *Recorder) opDelta(c byte, a uint64) {
	d := int64(a - r.last)
	r.last = a
	u := uint64(d<<1) ^ uint64(d>>63) // zigzag, as binary.AppendVarint
	if u < 0x80 {
		r.buf = append(r.buf, c, byte(u))
		return
	}
	r.buf = append(r.buf, c)
	r.buf = binary.AppendUvarint(r.buf, u)
}

// --- sim.CmdRecorder ----------------------------------------------------

func (r *Recorder) RecLoad(v addr.VAddr, size uint64) {
	if size == 8 {
		r.opDelta(opLoad64, uint64(v))
	} else {
		r.opDelta(opLoad32, uint64(v))
	}
}

func (r *Recorder) RecStore(v addr.VAddr, size uint64) {
	if size == 8 {
		r.opDelta(opStore64, uint64(v))
	} else {
		r.opDelta(opStore32, uint64(v))
	}
}

func (r *Recorder) RecTick(n uint64) {
	if n < 0x80 {
		r.buf = append(r.buf, opTick, byte(n))
		return
	}
	r.op(opTick)
	r.u(n)
}

func (r *Recorder) RecFlushVRange(v addr.VAddr, bytes uint64) {
	r.op(opFlushV)
	r.u(uint64(v))
	r.u(bytes)
}

func (r *Recorder) RecPurgeVRange(v addr.VAddr, bytes uint64) {
	r.op(opPurgeV)
	r.u(uint64(v))
	r.u(bytes)
}

func (r *Recorder) RecInstallBlockTLB(v addr.VAddr, p addr.PAddr, bytes uint64) {
	r.op(opInstallBlockTLB)
	r.u(uint64(v))
	r.u(uint64(p))
	r.u(bytes)
}

func (r *Recorder) RecClearBlockTLB() { r.op(opClearBlockTLB) }
func (r *Recorder) RecFlushTLB()      { r.op(opFlushTLB) }
func (r *Recorder) RecFlushTLBPage(v addr.VAddr) {
	r.op(opFlushTLBPage)
	r.u(uint64(v))
}
func (r *Recorder) RecResetCachesUntimed() { r.op(opResetCaches) }
func (r *Recorder) RecFlushAllCaches()     { r.op(opFlushAllCaches) }

// --- kernel.MapObserver -------------------------------------------------

func (r *Recorder) OnMap(vpage, pn uint64) {
	r.op(opMapPT)
	r.u(vpage)
	r.u(pn)
}

func (r *Recorder) OnUnmap(vpage uint64) {
	r.op(opUnmapPT)
	r.u(vpage)
}

func (r *Recorder) OnSwitch(pid int) {
	// A v2 trace carries one process's reference stream; multi-process
	// runs (the LRPC experiment) are not replayable.
	r.fail(fmt.Errorf("tracefile: process switch (pid %d) is not replayable", pid))
}

// --- mc.OpRecorder ------------------------------------------------------

func (r *Recorder) RecMapPV(pvpage, frame uint64) {
	r.op(opMapPV)
	r.u(pvpage)
	r.u(frame)
}

func (r *Recorder) RecSetDescriptor(slot int, d mc.Descriptor) {
	if r.err != nil {
		return
	}
	var img []byte
	if d.Kind == mc.Gather && d.ObjBytes > 0 {
		// Snapshot the indirection vector: one uint32 entry per object.
		// Gather timing depends on these values, and replay skips the
		// functional stores that wrote them.
		n := (d.Bytes + d.ObjBytes - 1) / d.ObjBytes * 4
		b, err := r.s.MC.ReadPVImage(d.VecPV, n)
		if err != nil {
			r.fail(fmt.Errorf("tracefile: snapshot indirection vector: %w", err))
			return
		}
		img = b
	}
	r.op(opSetDescriptor)
	r.u(uint64(slot))
	r.u(uint64(d.Kind))
	r.u(uint64(d.ShadowBase))
	r.u(d.Bytes)
	r.u(uint64(d.PVBase))
	r.u(d.ObjBytes)
	r.u(d.StrideBytes)
	r.u(uint64(d.VecPV))
	r.u(uint64(len(img)))
	r.buf = append(r.buf, img...)
}

func (r *Recorder) RecClearDescriptor(slot int) {
	r.op(opClearDescriptor)
	r.u(uint64(slot))
}

func (r *Recorder) RecMCInvalidateTLB()     { r.op(opMCInvalidateTLB) }
func (r *Recorder) RecMCInvalidateBuffers() { r.op(opMCInvalidateBufs) }

// --- core.RunRecorder ---------------------------------------------------

func (r *Recorder) RecSyscallStats(calls, cycles uint64) {
	r.op(opSyscallStats)
	r.u(calls)
	r.u(cycles)
}

func (r *Recorder) RecSectionBegin() { r.op(opSectionBegin) }

func (r *Recorder) RecSectionEnd(label string) {
	r.op(opSectionEnd)
	r.str(label)
}

func (r *Recorder) RecResult(label string) {
	r.op(opResult)
	r.str(label)
}

// --- Decoding -----------------------------------------------------------

// v2op is one decoded trace operation. Only the fields the opcode uses
// are set; a/b/c are positional integer operands.
type v2op struct {
	code    byte
	a, b, c uint64
	label   string
	desc    mc.Descriptor
	img     []byte
}

type v2decoder struct {
	data []byte
	pos  int
	last uint64
}

func (d *v2decoder) errAt(format string, args ...any) error {
	return fmt.Errorf("tracefile: "+format+" at byte %d", append(args, d.pos)...)
}

func (d *v2decoder) u() (uint64, error) {
	v, n := Uvarint(d.data, d.pos)
	if n <= 0 {
		return 0, d.errAt("truncated or oversized varint")
	}
	d.pos += n
	return v, nil
}

func (d *v2decoder) addr() (uint64, error) {
	u, err := d.u()
	if err != nil {
		return 0, err
	}
	// Zigzag decode (mirrors binary.Varint's wire form).
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	d.last += uint64(v)
	return d.last, nil
}

func (d *v2decoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.data)-d.pos) {
		return nil, d.errAt("truncated payload (%d bytes wanted, %d left)", n, len(d.data)-d.pos)
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// forEachOp streams the ops of a v2 trace through fn, validating the
// header, every opcode, operand bounds, and section balance. The op is
// passed by pointer and reused between calls (replay visits millions of
// ops; copying the struct per op is measurable); byte slices and the op
// itself must not be retained past the callback. Slices alias data.
func forEachOp(data []byte, fn func(o *v2op) error) error {
	if len(data) < len(magicV2) || !bytes.Equal(data[:len(magicV2)], magicV2[:]) {
		return fmt.Errorf("tracefile: not a v2 trace (bad or missing header)")
	}
	d := &v2decoder{data: data, pos: len(magicV2)}
	depth := 0
	// o is reused without clearing: every opcode's handler reads only the
	// fields that opcode decodes, so stale values in the others are never
	// observed, and skipping the ~130-byte clear is measurable at
	// millions of ops per replay.
	var o v2op
	for d.pos < len(d.data) {
		var err error
		o.code = d.data[d.pos]
		d.pos++
		switch o.code {
		case opLoad32, opLoad64, opStore32, opStore64:
			o.a, err = d.addr()
		case opTick:
			o.a, err = d.u()
		default:
			err = d.rareOp(&o, &depth)
		}
		if err != nil {
			return err
		}
		if err := fn(&o); err != nil {
			return err
		}
	}
	return nil
}

// rareOp decodes the operands of any op other than a load/store/tick
// (o.code is already consumed). It is the single copy of the rare-op
// wire format, shared by forEachOp and DecodeProgram's inlined hot
// loop, so the scalar and vector decoders cannot drift.
func (d *v2decoder) rareOp(o *v2op, depth *int) error {
	var err error
	switch o.code {
	case opFlushTLBPage, opUnmapPT, opClearDescriptor:
		o.a, err = d.u()
	case opFlushV, opPurgeV, opMapPT, opMapPV, opSyscallStats:
		if o.a, err = d.u(); err == nil {
			o.b, err = d.u()
		}
	case opInstallBlockTLB:
		if o.a, err = d.u(); err == nil {
			if o.b, err = d.u(); err == nil {
				o.c, err = d.u()
			}
		}
	case opClearBlockTLB, opFlushTLB, opResetCaches, opFlushAllCaches,
		opMCInvalidateTLB, opMCInvalidateBufs:
		// no operands
	case opSectionBegin:
		*depth++
	case opSectionEnd, opResult:
		var n uint64
		if n, err = d.u(); err == nil {
			var lb []byte
			if lb, err = d.bytes(n); err == nil {
				o.label = string(lb)
			}
		}
		if err == nil && o.code == opSectionEnd {
			if *depth == 0 {
				return d.errAt("section end without begin")
			}
			*depth--
		}
	case opSetDescriptor:
		err = d.descriptor(o)
	default:
		return fmt.Errorf("tracefile: unknown opcode %#02x at byte %d", o.code, d.pos-1)
	}
	return err
}

func (d *v2decoder) descriptor(o *v2op) error {
	var slot, kind, shadowBase, dbytes, pvBase, objBytes, strideBytes, vecPV uint64
	for _, p := range []*uint64{&slot, &kind, &shadowBase, &dbytes, &pvBase, &objBytes, &strideBytes, &vecPV} {
		v, err := d.u()
		if err != nil {
			return err
		}
		*p = v
	}
	if slot >= mc.NumDescriptors {
		return d.errAt("descriptor slot %d out of range", slot)
	}
	if kind > uint64(mc.Gather) {
		return d.errAt("unknown descriptor kind %d", kind)
	}
	imgLen, err := d.u()
	if err != nil {
		return err
	}
	img, err := d.bytes(imgLen)
	if err != nil {
		return err
	}
	o.a = slot
	o.desc = mc.Descriptor{
		Kind:        mc.RemapKind(kind),
		ShadowBase:  addr.PAddr(shadowBase),
		Bytes:       dbytes,
		PVBase:      addr.PVAddr(pvBase),
		ObjBytes:    objBytes,
		StrideBytes: strideBytes,
		VecPV:       addr.PVAddr(vecPV),
	}
	o.img = img
	return nil
}

// Validate checks that data is a structurally well-formed v2 trace
// without applying it to a machine. It is the decoder surface
// FuzzTraceDecode exercises.
func Validate(data []byte) error {
	return forEachOp(data, func(*v2op) error { return nil })
}

// ReplayOpts configures ReplayV2.
type ReplayOpts struct {
	// MapLabel, when non-nil, rewrites each recorded section/result
	// label before the row is produced. The trace cache uses it so a
	// replayed cell's rows carry the replaying configuration's label
	// (e.g. its own prefetch-policy suffix), keeping rendered tables and
	// registered counter names identical to execution.
	MapLabel func(string) string
}

// ReplayV2 re-issues a recorded v2 command stream against s, which must
// be freshly built with the timing configuration under study. Functional
// data movement is disabled for the duration (values do not affect
// timing; the indirection-vector images carried by the trace cover the
// one place they do). It returns the rows produced by the recorded
// sections/results, in order. Structural damage surfaces as a decode
// error; semantic damage that drives the machine into an impossible
// state (e.g. a load to a never-mapped page) is caught and returned as
// an error rather than panicking.
func ReplayV2(s *core.System, data []byte, opts ReplayOpts) (rows []core.Row, err error) {
	mapLabel := opts.MapLabel
	if mapLabel == nil {
		mapLabel = func(l string) string { return l }
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tracefile: replay: %v", r)
		}
	}()
	s.SetFunctional(false)
	defer s.SetFunctional(true)
	var secs []core.Section
	err = forEachOp(data, func(o *v2op) error {
		// The hot ops stay inline (they are the bulk of every trace); the
		// rare ops share applyRare with the vectorized replayer, so the
		// two paths cannot drift.
		switch o.code {
		case opLoad32:
			s.Load32(addr.VAddr(o.a))
		case opLoad64:
			s.Load64(addr.VAddr(o.a))
		case opStore32:
			s.Store32(addr.VAddr(o.a), 0)
		case opStore64:
			s.Store64(addr.VAddr(o.a), 0)
		case opTick:
			s.Tick(o.a)
		default:
			return applyRare(s, o, &secs, &rows, mapLabel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// applyRare applies one non-access op to s. Shared by ReplayV2 and the
// vectorized replayer (vector.go): both must produce byte-identical
// machine state and error text for every rare op.
func applyRare(s *core.System, o *v2op, secs *[]core.Section, rows *[]core.Row, mapLabel func(string) string) error {
	switch o.code {
	case opFlushV:
		s.FlushVRange(addr.VAddr(o.a), o.b)
	case opPurgeV:
		s.PurgeVRange(addr.VAddr(o.a), o.b)
	case opInstallBlockTLB:
		s.InstallBlockTLB(addr.VAddr(o.a), addr.PAddr(o.b), o.c)
	case opClearBlockTLB:
		s.ClearBlockTLB()
	case opFlushTLB:
		s.FlushTLB()
	case opFlushTLBPage:
		s.FlushTLBPage(addr.VAddr(o.a))
	case opResetCaches:
		s.ResetCachesUntimed()
	case opFlushAllCaches:
		s.FlushAllCaches()
	case opMapPT:
		s.K.InstallMapping(o.a, o.b)
	case opUnmapPT:
		s.K.Unmap(o.a)
	case opMapPV:
		s.MC.MapPV(o.a, o.b)
	case opSetDescriptor:
		if len(o.img) > 0 {
			if err := s.MC.WritePVImage(o.desc.VecPV, o.img); err != nil {
				return fmt.Errorf("tracefile: replay: restore indirection vector: %w", err)
			}
		}
		if err := s.MC.SetDescriptor(int(o.a), o.desc); err != nil {
			return fmt.Errorf("tracefile: replay: %w", err)
		}
	case opClearDescriptor:
		s.MC.ClearDescriptor(int(o.a))
	case opMCInvalidateTLB:
		s.MC.InvalidateTLB()
	case opMCInvalidateBufs:
		s.MC.InvalidateBuffers()
	case opSyscallStats:
		s.St.Syscalls += o.a
		s.St.SyscallCycles += o.b
	case opSectionBegin:
		*secs = append(*secs, s.BeginSection())
	case opSectionEnd:
		sec := (*secs)[len(*secs)-1]
		*secs = (*secs)[:len(*secs)-1]
		row, err := sec.End(mapLabel(o.label))
		if err != nil {
			return err
		}
		*rows = append(*rows, row)
	case opResult:
		row, err := s.Result(mapLabel(o.label))
		if err != nil {
			return err
		}
		*rows = append(*rows, row)
	}
	return nil
}
