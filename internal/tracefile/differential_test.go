package tracefile

import (
	"bytes"
	"testing"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/obs"
)

// TestReplayMatchesLiveSeries is the observability differential test: a
// conventional run's recorded trace, replayed on an identical machine,
// must produce the identical windowed bus-occupancy (and DRAM-occupancy)
// time-series as the original execution-driven run — window by window,
// not just in total. This pins down both directions at once: the replay
// path loses no timing information, and attaching an obs hub observes
// the run without perturbing it.
//
// Determinism requires the two runs to see the same physical layout and
// the same cycle spacing, so the live side mirrors Replay's conventions:
// pages are hand-mapped in first-touch order before the timed loop (as
// Replay pre-maps), and each access is followed by Tick(1) (matching
// perAccessTicks=1).
func TestReplayMatchesLiveSeries(t *testing.T) {
	const (
		window = 2000
		region = 128 << 10 // bytes; 32 pages
		base   = addr.VAddr(1 << 22)
	)

	live := newSys(t, core.PrefetchNone)
	liveHub := obs.New(obs.Config{Window: window})
	live.AttachObs(liveHub)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live.SetTracer(w.Attach())

	// Map the region in sequential page order — the order the trace's
	// first touches will request frames in, so Replay reproduces the
	// same virtual-to-physical layout on its fresh machine.
	for pg := base.PageNum(); pg <= (uint64(base)+region-1)>>addr.PageShift; pg++ {
		f, err := live.K.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := live.K.MapPage(pg, f); err != nil {
			t.Fatal(err)
		}
	}

	// A sequential pass (fills caches, establishes first-touch order),
	// then a strided read/write pass (bus and writeback traffic with
	// structure across windows).
	for off := uint64(0); off < region; off += 8 {
		live.Load64(base + addr.VAddr(off))
		live.Tick(1)
	}
	for stride := uint64(256); stride >= 64; stride /= 2 {
		for off := uint64(0); off < region; off += stride {
			live.Store64(base+addr.VAddr(off), off)
			live.Tick(1)
			live.Load64(base + addr.VAddr(off^8))
			live.Tick(1)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}

	replay := newSys(t, core.PrefetchNone)
	replayHub := obs.New(obs.Config{Window: window})
	replay.AttachObs(replayHub)
	if _, err := Replay(replay, recs, 1); err != nil {
		t.Fatal(err)
	}

	if live.Now() != replay.Now() {
		t.Errorf("cycle counts diverge: live %d, replay %d", live.Now(), replay.Now())
	}
	for _, m := range []obs.Metric{obs.BusBusy, obs.DRAMBusy} {
		lv, rv := liveHub.Series().Values(m), replayHub.Series().Values(m)
		if len(lv) == 0 {
			t.Fatalf("%v: live series empty", m)
		}
		if len(lv) != len(rv) {
			t.Fatalf("%v: window counts diverge: live %d, replay %d", m, len(lv), len(rv))
		}
		for i := range lv {
			if lv[i] != rv[i] {
				t.Errorf("%v window %d: live %d, replay %d", m, i, lv[i], rv[i])
			}
		}
	}
}
