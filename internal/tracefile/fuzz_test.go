package tracefile

import (
	"testing"

	"impulse/internal/core"
	"impulse/internal/workloads"
)

// fuzzSeedTrace records one real v2 trace (an Impulse scatter/gather CG
// run at a tiny geometry) to seed the corpus with every opcode the
// recorder emits: load/store deltas, ticks, sections, syscalls, block-TLB
// installs, shadow descriptors with their memory images, and results.
func fuzzSeedTrace(f *testing.F) []byte {
	f.Helper()
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
	if err != nil {
		f.Fatal(err)
	}
	rec := RecordRun(s)
	m := workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift)
	if _, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather, m); err != nil {
		f.Fatal(err)
	}
	data, err := rec.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzTraceDecode throws arbitrary bytes at the v2 decoder. Validate
// must classify every input as well-formed or return an error — never
// panic, never read out of bounds, never loop forever. The seed corpus
// holds one genuine trace plus the malformed shapes the unit tests pin
// (truncation, bit-flips, bad magic, unknown opcodes).
func FuzzTraceDecode(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])    // truncated mid-stream
	f.Add(seed[:len(magicV2)+1]) // header plus one dangling byte
	f.Add(seed[:len(magicV2)])   // header only: valid empty trace
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{'I', 'M', 'P', 'T', 'R', 'C', 0, 1}) // v1 magic
	f.Add([]byte("IMPTRC\x00\x02\xee"))               // unknown opcode
	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder either accepts or errors; both are fine. Panics
		// and hangs are the failures the fuzzer is hunting.
		_ = Validate(data)
	})
}

// FuzzVectorDecode throws the same inputs at the vectorizing decoder.
// Beyond not panicking, DecodeProgram must agree with Validate on
// whether the input is well-formed: the vectorized path may never
// accept a trace the scalar path rejects (or vice versa), or the two
// replay modes would diverge on which cached streams are usable.
func FuzzVectorDecode(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(magicV2)])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("IMPTRC\x00\x02\xee"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vErr := Validate(data)
		p, dErr := DecodeProgram(data)
		if (vErr == nil) != (dErr == nil) {
			t.Fatalf("decoders disagree: Validate=%v DecodeProgram=%v", vErr, dErr)
		}
		if dErr == nil && p == nil {
			t.Fatal("nil program without error")
		}
	})
}
