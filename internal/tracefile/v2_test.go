package tracefile

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/workloads"
)

// tinyCG is small enough that the full 24-variant differential matrix
// stays fast, yet still exercises scatter/gather (with a real
// indirection vector), recoloring, flushes, and the syscall path.
var tinyCG = workloads.CGParams{N: 240, Nonzer: 4, Niter: 1, CGIts: 3, Shift: 10, RCond: 0.1}

var tinyMMP = workloads.MMPParams{N: 48, Tile: 16}

// recordedRun executes run on a freshly built system under a v2
// recorder and returns the trace, the measured row, and the registry
// built from every row the run produced.
func recordedRun(t *testing.T, opts core.Options, run func(*core.System) (core.Row, error)) ([]byte, core.Row, *obs.Registry) {
	t.Helper()
	var reg obs.Registry
	opts.RowObserver = core.CollectRows(&reg)
	s, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecordRun(s)
	row, err := run(s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data, row, &reg
}

// replayRun replays data on a freshly built system and returns the last
// row and the registry of all replayed rows.
func replayRun(t *testing.T, opts core.Options, data []byte) (core.Row, *obs.Registry) {
	t.Helper()
	var reg obs.Registry
	opts.RowObserver = core.CollectRows(&reg)
	s, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ReplayV2(s, data, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("replay produced no rows")
	}
	return rows[len(rows)-1], &reg
}

func regText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// assertIdentical is the replay-identity check: the rendered row, the
// cycle count, every memory-system counter, and the full registry text
// must be byte-for-byte what execution produced.
func assertIdentical(t *testing.T, name string, execRow, repRow core.Row, execReg, repReg *obs.Registry) {
	t.Helper()
	if execRow.String() != repRow.String() {
		t.Errorf("%s: rendered row diverges:\n exec:   %s\n replay: %s", name, execRow, repRow)
	}
	if execRow.Cycles != repRow.Cycles {
		t.Errorf("%s: cycles diverge: exec %d, replay %d", name, execRow.Cycles, repRow.Cycles)
	}
	if !reflect.DeepEqual(execRow.Stats, repRow.Stats) {
		t.Errorf("%s: stats diverge:\n exec:   %+v\n replay: %+v", name, execRow.Stats, repRow.Stats)
	}
	if e, r := regText(t, execReg), regText(t, repReg); e != r {
		t.Errorf("%s: registry text diverges:\n exec:\n%s\n replay:\n%s", name, e, r)
	}
}

// TestReplayIdentityCG pins the tentpole property for every Table 1
// variant: replaying a recorded CG run on a fresh machine with the same
// configuration reproduces the executed run exactly — cycles, every
// counter, and the rendered row — including the Impulse scatter/gather
// and page-recoloring sections, whose indirection vectors and remap
// setup travel inside the trace.
func TestReplayIdentityCG(t *testing.T) {
	m := workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift)
	modes := []workloads.CGMode{workloads.CGConventional, workloads.CGScatterGather, workloads.CGRecolor}
	pfs := []core.PrefetchPolicy{core.PrefetchNone, core.PrefetchMC, core.PrefetchL1, core.PrefetchBoth}
	for _, mode := range modes {
		for _, pf := range pfs {
			name := fmt.Sprintf("%v/%v", mode, pf)
			t.Run(name, func(t *testing.T) {
				kind := core.Conventional
				if mode != workloads.CGConventional || pf == core.PrefetchMC || pf == core.PrefetchBoth {
					kind = core.Impulse
				}
				opts := core.Options{Controller: kind, Prefetch: pf}
				data, execRow, execReg := recordedRun(t, opts, func(s *core.System) (core.Row, error) {
					res, err := workloads.RunCG(s, tinyCG, mode, m)
					return res.Row, err
				})
				if err := Validate(data); err != nil {
					t.Fatalf("recorded trace fails validation: %v", err)
				}
				repRow, repReg := replayRun(t, opts, data)
				assertIdentical(t, name, execRow, repRow, execReg, repReg)
			})
		}
	}
}

// TestReplayIdentityMMP does the same for every Table 2 variant,
// covering the tile-remap (Strided descriptor) path and the software
// tile-copy stream.
func TestReplayIdentityMMP(t *testing.T) {
	modes := []workloads.MMPMode{workloads.MMPNoCopyTiled, workloads.MMPCopyTiled, workloads.MMPTileRemap}
	pfs := []core.PrefetchPolicy{core.PrefetchNone, core.PrefetchMC, core.PrefetchL1, core.PrefetchBoth}
	for _, mode := range modes {
		for _, pf := range pfs {
			name := fmt.Sprintf("%v/%v", mode, pf)
			t.Run(name, func(t *testing.T) {
				kind := core.Conventional
				if mode == workloads.MMPTileRemap || pf == core.PrefetchMC || pf == core.PrefetchBoth {
					kind = core.Impulse
				}
				opts := core.Options{Controller: kind, Prefetch: pf}
				data, execRow, execReg := recordedRun(t, opts, func(s *core.System) (core.Row, error) {
					res, err := workloads.RunMMP(s, tinyMMP, mode)
					return res.Row, err
				})
				repRow, repReg := replayRun(t, opts, data)
				assertIdentical(t, name, execRow, repRow, execReg, repReg)
			})
		}
	}
}

// TestReplayAcrossTimingConfigs is the cache's actual use: a stream
// recorded under one prefetch policy, replayed under another, matches
// what executing under that other policy would have produced.
func TestReplayAcrossTimingConfigs(t *testing.T) {
	m := workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift)
	run := func(s *core.System) (core.Row, error) {
		res, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather, m)
		return res.Row, err
	}
	// Record under PrefetchNone.
	data, _, _ := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchNone}, run)
	// Execute directly under PrefetchMC.
	_, execRow, execReg := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC}, run)

	var reg obs.Registry
	s, err := core.NewSystem(core.Options{
		Controller: core.Impulse, Prefetch: core.PrefetchMC,
		RowObserver: core.CollectRows(&reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The recorded labels carry the recording policy's suffix; rewrite to
	// the replaying policy's, as the trace cache does.
	rows, err := ReplayV2(s, data, ReplayOpts{MapLabel: func(l string) string {
		if i := strings.LastIndexByte(l, '/'); i >= 0 {
			return l[:i+1] + core.PrefetchMC.String()
		}
		return l
	}})
	if err != nil {
		t.Fatal(err)
	}
	repRow := rows[len(rows)-1]
	assertIdentical(t, "cross-config", execRow, repRow, execReg, &reg)
}

// TestV2RoundTripStructure checks the recorded stream survives a
// decode pass op-for-op (count preserved, section balance maintained).
func TestV2RoundTripStructure(t *testing.T) {
	data, _, _ := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC},
		func(s *core.System) (core.Row, error) {
			res, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather,
				workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift))
			return res.Row, err
		})
	var ops, sections int
	if err := forEachOp(data, func(o *v2op) error {
		ops++
		if o.code == opSectionEnd {
			sections++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ops == 0 || sections == 0 {
		t.Fatalf("decoded %d ops, %d section ends", ops, sections)
	}
}

// TestV2DecodeErrors exercises the decoder's validation surface on
// damaged inputs: every structural corruption must surface as an error,
// never a panic or silent acceptance.
func TestV2DecodeErrors(t *testing.T) {
	data, _, _ := recordedRun(t, core.Options{Controller: core.Impulse, Prefetch: core.PrefetchNone},
		func(s *core.System) (core.Row, error) {
			res, err := workloads.RunCG(s, tinyCG, workloads.CGScatterGather,
				workloads.MakeA(tinyCG.N, tinyCG.Nonzer, tinyCG.RCond, tinyCG.Shift))
			return res.Row, err
		})
	if err := Validate(data); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func([]byte) []byte { return nil }},
		{"short header", func(d []byte) []byte { return d[:4] }},
		{"v1 magic", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[7] = 1
			return out
		}},
		{"bad magic", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[0] = 'X'
			return out
		}},
		{"truncated mid-op", func(d []byte) []byte { return d[:len(d)-1] }},
		{"unknown opcode", func(d []byte) []byte {
			return append(append([]byte(nil), d...), 0xEE)
		}},
		{"unbalanced section end", func(d []byte) []byte {
			return append(append([]byte(nil), magicV2[:]...), opSectionEnd, 0)
		}},
		{"oversized label", func(d []byte) []byte {
			// opResult claiming a label longer than the remaining bytes.
			return append(append([]byte(nil), magicV2[:]...), opResult, 0xFF, 0xFF, 0x03, 'x')
		}},
		{"descriptor slot out of range", func(d []byte) []byte {
			return append(append([]byte(nil), magicV2[:]...),
				opSetDescriptor, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0)
		}},
		{"descriptor kind out of range", func(d []byte) []byte {
			return append(append([]byte(nil), magicV2[:]...),
				opSetDescriptor, 0, 0x7F, 0, 0, 0, 0, 0, 0, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.mut(data)); err == nil {
				t.Error("corrupt trace accepted")
			}
		})
	}
}

// TestReplayRejectsSemanticDamage: a structurally valid trace whose
// commands drive the machine into an impossible state must return an
// error from ReplayV2, not panic.
func TestReplayRejectsSemanticDamage(t *testing.T) {
	// A load to a virtual page no opMapPT ever installed.
	data := append([]byte(nil), magicV2[:]...)
	data = append(data, opSectionBegin, opLoad64, 0x80, 0x80, 0x80, 0x01) // delta varint
	data = append(data, opSectionEnd, 1, 'x')
	if err := Validate(data); err != nil {
		t.Fatalf("structurally valid trace rejected: %v", err)
	}
	s, err := core.NewSystem(core.Options{Controller: core.Conventional})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayV2(s, data, ReplayOpts{}); err == nil {
		t.Error("replay of semantically damaged trace succeeded")
	}
}

// TestRecorderRejectsProcessSwitch: multi-process runs are not
// replayable and must surface a recording error, not a bad trace.
func TestRecorderRejectsProcessSwitch(t *testing.T) {
	s, err := core.NewSystem(core.Options{Controller: core.Impulse})
	if err != nil {
		t.Fatal(err)
	}
	rec := RecordRun(s)
	pid := s.K.CreateProcess()
	if err := s.K.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Bytes(); err == nil {
		t.Error("process switch recorded without error")
	}
}

// benchCG is sized so the timed loop dominates per-cell system
// construction, as in the real sweeps.
var benchCG = workloads.CGParams{N: 2048, Nonzer: 5, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}

func BenchmarkCGExecute(b *testing.B) {
	m := workloads.MakeA(benchCG.N, benchCG.Nonzer, benchCG.RCond, benchCG.Shift)
	for i := 0; i < b.N; i++ {
		s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workloads.RunCG(s, benchCG, workloads.CGScatterGather, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGRecord(b *testing.B) {
	m := workloads.MakeA(benchCG.N, benchCG.Nonzer, benchCG.RCond, benchCG.Shift)
	for i := 0; i < b.N; i++ {
		s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
		if err != nil {
			b.Fatal(err)
		}
		rec := RecordRun(s)
		if _, err := workloads.RunCG(s, benchCG, workloads.CGScatterGather, m); err != nil {
			b.Fatal(err)
		}
		if _, err := rec.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGReplay(b *testing.B) {
	m := workloads.MakeA(benchCG.N, benchCG.Nonzer, benchCG.RCond, benchCG.Shift)
	s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
	if err != nil {
		b.Fatal(err)
	}
	rec := RecordRun(s)
	if _, err := workloads.RunCG(s, benchCG, workloads.CGScatterGather, m); err != nil {
		b.Fatal(err)
	}
	data, err := rec.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReplayV2(s, data, ReplayOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
