// Package dram models the machine's banked DRAM subsystem with open-row
// (page-mode) timing.
//
// The paper's memory controller includes "a DRAM scheduler that will
// optimize the dynamic ordering of accesses" (§2.2) but its design was
// incomplete, so all published results use "a simple scheduler that issues
// accesses in order". This package implements both: InOrder reproduces the
// paper's evaluated configuration; RowMajor implements the sketched future
// work (reorder word-grained requests for DRAM page locality and bank
// parallelism) and is used only by ablation benchmarks.
//
// Geometry: bus addresses are line-interleaved across banks. For line size
// L and B banks, line index i = p/L maps to bank i mod B, and the row is
// (i/B)/(RowBytes/L). Sequential streams therefore spread across banks,
// and a dense structure of a few tens of KB enjoys high row-hit rates when
// gathered — which is what lets Impulse's scatter/gather fill a cache line
// with many DRAM accesses at far less than 16x the cost of one.
package dram

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/bitutil"
	"impulse/internal/obs"
	"impulse/internal/stats"
	"impulse/internal/timeline"
)

// Order selects the scheduling policy for batched access.
type Order int

const (
	// InOrder issues accesses in request order (the paper's evaluated
	// scheduler).
	InOrder Order = iota
	// RowMajor reorders a batch to group accesses by bank and row,
	// exploiting page locality and bank parallelism (the paper's sketched
	// future-work scheduler; ablation only).
	RowMajor
)

func (o Order) String() string {
	switch o {
	case InOrder:
		return "in-order"
	case RowMajor:
		return "row-major"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

const (
	// OpenPage leaves the accessed row open (the paper-era default this
	// reproduction is calibrated for): later accesses to the same row
	// cost RowHit, a different row costs RowMiss (precharge+activate).
	OpenPage PagePolicy = iota
	// ClosedPage precharges after every access: all accesses cost
	// RowClosed (activate only, no demand precharge). Better for random
	// traffic, worse for streams — exposed for ablation.
	ClosedPage
)

func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// Config describes DRAM geometry and timing (CPU cycles).
type Config struct {
	Banks     uint64 // number of banks; power of two
	RowBytes  uint64 // row (DRAM page) size per bank; power of two
	LineBytes uint64 // access granule (one line transfer); power of two
	RowHit    uint64 // data-ready latency when the row is open
	RowMiss   uint64 // data-ready latency when a row must be opened
	RowClosed uint64 // closed-page latency (activate, no demand precharge)
	IssueGap  uint64 // minimum cycles between command issues
	WriteBusy uint64 // cycles a bank is occupied by a write
	Policy    PagePolicy
}

// DefaultConfig gives the timing calibrated in DESIGN.md §5: an isolated
// read is ready at the controller ~22 cycles after arrival, which together
// with bus and controller overheads reproduces the paper's 40-cycle memory
// access.
func DefaultConfig() Config {
	return Config{
		Banks:     16,
		RowBytes:  4096,
		LineBytes: 128,
		RowHit:    8,
		RowMiss:   20,
		RowClosed: 14,
		IssueGap:  1,
		WriteBusy: 8,
		Policy:    OpenPage,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !bitutil.IsPow2(c.Banks) || !bitutil.IsPow2(c.RowBytes) || !bitutil.IsPow2(c.LineBytes) {
		return fmt.Errorf("dram: banks/row/line sizes must be powers of two: %+v", c)
	}
	if c.LineBytes > c.RowBytes {
		return fmt.Errorf("dram: line (%d) larger than row (%d)", c.LineBytes, c.RowBytes)
	}
	if c.RowHit == 0 || c.RowMiss < c.RowHit {
		return fmt.Errorf("dram: implausible timing rowHit=%d rowMiss=%d", c.RowHit, c.RowMiss)
	}
	if c.Policy == ClosedPage && c.RowClosed == 0 {
		return fmt.Errorf("dram: closed-page policy needs RowClosed timing")
	}
	return nil
}

type bank struct {
	busy    timeline.Resource
	openRow uint64
	hasOpen bool
}

// DRAM is the timing model of the memory parts behind the controller.
type DRAM struct {
	cfg       Config
	banks     []bank
	issue     timeline.Resource // command-issue serialization at the scheduler
	lineShift uint
	bankMask  uint64
	bankShift uint // log2(Banks), applied to the line index
	rowShift  uint // applied to in-bank line index
	st        *stats.MemStats
	h         *obs.Hub
	tracks    []obs.TrackID // one per bank
}

// New builds a DRAM model. st may be nil (no accounting).
func New(cfg Config, st *stats.MemStats) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = &stats.MemStats{}
	}
	return &DRAM{
		cfg:       cfg,
		banks:     make([]bank, cfg.Banks),
		lineShift: bitutil.Log2(cfg.LineBytes),
		bankMask:  cfg.Banks - 1,
		bankShift: bitutil.Log2(cfg.Banks),
		rowShift:  bitutil.Log2(cfg.RowBytes / cfg.LineBytes),
		st:        st,
	}, nil
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// AttachObs wires the DRAM into an observability hub: one trace track per
// bank (so bank parallelism and row behaviour are visible side by side),
// aggregate bank busy-cycles in the windowed series, and per-bank
// accounting in the registry.
func (d *DRAM) AttachObs(h *obs.Hub) {
	d.h = h
	d.tracks = make([]obs.TrackID, len(d.banks))
	r := h.Reg()
	for i := range d.banks {
		d.tracks[i] = h.Track(fmt.Sprintf("dram.bank%02d", i))
		b := &d.banks[i]
		r.Gauge(fmt.Sprintf("dram.bank%02d.busy_cycles", i), b.busy.BusyCycles)
		r.Gauge(fmt.Sprintf("dram.bank%02d.accesses", i), b.busy.Uses)
	}
	h.Series().SetBanks(d.cfg.Banks)
}

// Decode splits a bus address into (bank, row) coordinates.
func (d *DRAM) Decode(p addr.PAddr) (bankIdx, row uint64) {
	line := uint64(p) >> d.lineShift
	return line & d.bankMask, (line >> d.bankShift) >> d.rowShift
}

// Read schedules a read of the line containing p, with the command issued
// no earlier than at. It returns the time the line's data is available at
// the controller.
func (d *DRAM) Read(at timeline.Time, p addr.PAddr) timeline.Time {
	return d.access(at, p, false)
}

// Write schedules a write of the line containing p. The returned time is
// when the bank becomes free again; callers normally ignore it (writes are
// posted), but the bank occupancy delays later reads.
func (d *DRAM) Write(at timeline.Time, p addr.PAddr) timeline.Time {
	return d.access(at, p, true)
}

func (d *DRAM) access(at timeline.Time, p addr.PAddr, write bool) timeline.Time {
	bi, row := d.Decode(p)
	b := &d.banks[bi]
	// Command issue is serialized at the scheduler.
	_, issued := d.issue.Acquire(at, d.cfg.IssueGap)
	var lat uint64
	if d.cfg.Policy == ClosedPage {
		// Every access activates a closed row; no row ever stays open.
		lat = d.cfg.RowClosed
		d.st.DRAMRowMisses++
	} else if b.hasOpen && b.openRow == row {
		lat = d.cfg.RowHit
		d.st.DRAMRowHits++
	} else {
		lat = d.cfg.RowMiss
		d.st.DRAMRowMisses++
		b.openRow = row
		b.hasOpen = true
	}
	rowHit := lat == d.cfg.RowHit
	if write {
		d.st.DRAMWrites++
		if d.cfg.WriteBusy > lat {
			lat = d.cfg.WriteBusy
		}
	} else {
		d.st.DRAMReads++
	}
	start, done := b.busy.Acquire(issued, lat)
	if d.h != nil {
		name := "read row-miss"
		switch {
		case write:
			name = "write"
		case rowHit:
			name = "read row-hit"
		}
		d.h.Span(d.tracks[bi], name, start, done)
		d.h.Busy(obs.DRAMBusy, start, done)
	}
	return done
}

// ReadBatch schedules reads for every line address in lines (which should
// be line-aligned and deduplicated by the caller) and returns the time at
// which the last one completes. With RowMajor ordering the batch is
// reordered to group same-bank-same-row accesses together; with InOrder it
// is issued exactly as given.
func (d *DRAM) ReadBatch(at timeline.Time, lines []addr.PAddr, order Order) timeline.Time {
	if len(lines) == 0 {
		return at
	}
	if order == RowMajor {
		lines = d.rowMajor(lines)
	}
	var done timeline.Time = at
	for _, p := range lines {
		if t := d.Read(at, p); t > done {
			done = t
		}
	}
	return done
}

// rowMajor stable-groups lines by (bank, row) without allocating per call
// beyond the output slice: counting sort over banks, then row-grouping by
// insertion order within each bank.
func (d *DRAM) rowMajor(lines []addr.PAddr) []addr.PAddr {
	type key struct{ bank, row uint64 }
	groups := make(map[key][]addr.PAddr, len(lines))
	var order []key
	for _, p := range lines {
		b, r := d.Decode(p)
		k := key{b, r}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	out := make([]addr.PAddr, 0, len(lines))
	for _, k := range order {
		out = append(out, groups[k]...)
	}
	return out
}

// BusyCycles returns total bank-busy cycles (utilization accounting).
func (d *DRAM) BusyCycles() uint64 {
	var c uint64
	for i := range d.banks {
		c += d.banks[i].busy.BusyCycles()
	}
	return c
}

// LineBytes returns the DRAM access granule.
func (d *DRAM) LineBytes() uint64 { return d.cfg.LineBytes }

// LineAlign rounds p down to a DRAM line boundary.
func (d *DRAM) LineAlign(p addr.PAddr) addr.PAddr {
	return addr.PAddr(bitutil.AlignDown(uint64(p), d.cfg.LineBytes))
}
