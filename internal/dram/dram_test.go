package dram

import (
	"testing"
	"testing/quick"

	"impulse/internal/addr"
	"impulse/internal/stats"
)

func mustNew(t *testing.T) (*DRAM, *stats.MemStats) {
	t.Helper()
	st := &stats.MemStats{}
	d, err := New(DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	return d, st
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Banks = 3
	if bad.Validate() == nil {
		t.Error("non-pow2 banks accepted")
	}
	bad = good
	bad.LineBytes = good.RowBytes * 2
	if bad.Validate() == nil {
		t.Error("line > row accepted")
	}
	bad = good
	bad.RowMiss = bad.RowHit - 1
	if bad.Validate() == nil {
		t.Error("rowMiss < rowHit accepted")
	}
}

func TestDecodeInterleaving(t *testing.T) {
	d, _ := mustNew(t)
	cfg := d.Config()
	// Consecutive lines land on consecutive banks.
	for i := uint64(0); i < 2*cfg.Banks; i++ {
		b, _ := d.Decode(addr.PAddr(i * cfg.LineBytes))
		if b != i%cfg.Banks {
			t.Fatalf("line %d on bank %d, want %d", i, b, i%cfg.Banks)
		}
	}
	// Same line, different offsets: same coordinates.
	b0, r0 := d.Decode(addr.PAddr(5 * cfg.LineBytes))
	b1, r1 := d.Decode(addr.PAddr(5*cfg.LineBytes + cfg.LineBytes - 1))
	if b0 != b1 || r0 != r1 {
		t.Error("offsets within a line decode differently")
	}
}

func TestRowHitVsMiss(t *testing.T) {
	d, st := mustNew(t)
	cfg := d.Config()
	p := addr.PAddr(0)
	t1 := d.Read(0, p)
	if t1 != cfg.IssueGap+cfg.RowMiss {
		t.Errorf("first read done at %d, want %d", t1, cfg.IssueGap+cfg.RowMiss)
	}
	if st.DRAMRowMisses != 1 || st.DRAMRowHits != 0 {
		t.Fatalf("stats after first read: %+v", st)
	}
	// Second read in the same row of the same bank: row hit, and it queues
	// behind the first access on that bank.
	t2 := d.Read(t1, p+addr.PAddr(cfg.LineBytes*cfg.Banks))
	if st.DRAMRowHits != 1 {
		t.Errorf("expected a row hit, stats %+v", st)
	}
	if t2 != t1+cfg.IssueGap+cfg.RowHit {
		t.Errorf("row hit done at %d, want %d", t2, t1+cfg.IssueGap+cfg.RowHit)
	}
}

func TestBankParallelism(t *testing.T) {
	d, _ := mustNew(t)
	cfg := d.Config()
	// N reads to N different banks issued at t=0 overlap: total time is
	// issue serialization + one latency, far less than N*latency.
	lines := make([]addr.PAddr, cfg.Banks)
	for i := range lines {
		lines[i] = addr.PAddr(uint64(i) * cfg.LineBytes)
	}
	done := d.ReadBatch(0, lines, InOrder)
	serial := cfg.Banks * (cfg.IssueGap + cfg.RowMiss)
	want := cfg.Banks*cfg.IssueGap + cfg.RowMiss
	if done != want {
		t.Errorf("parallel batch done at %d, want %d (serial would be %d)", done, want, serial)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d, _ := mustNew(t)
	cfg := d.Config()
	// Two reads to the same bank, different rows: second waits for first.
	rowStride := cfg.RowBytes * cfg.Banks
	lines := []addr.PAddr{0, addr.PAddr(rowStride)}
	done := d.ReadBatch(0, lines, InOrder)
	want := cfg.IssueGap + cfg.RowMiss + cfg.RowMiss // bank busy back-to-back
	if done != want {
		t.Errorf("same-bank batch done at %d, want %d", done, want)
	}
}

func TestRowMajorBeatsInOrderOnPingPong(t *testing.T) {
	cfgSt1, cfgSt2 := &stats.MemStats{}, &stats.MemStats{}
	d1, _ := New(DefaultConfig(), cfgSt1)
	d2, _ := New(DefaultConfig(), cfgSt2)
	cfg := DefaultConfig()
	// Alternate between two rows of bank 0: in-order thrashes the row
	// buffer; row-major groups and gets hits.
	rowStride := addr.PAddr(cfg.RowBytes * cfg.Banks)
	var lines []addr.PAddr
	for i := 0; i < 8; i++ {
		lines = append(lines, addr.PAddr(uint64(i%2)*uint64(rowStride))+addr.PAddr(uint64(i)*cfg.LineBytes*cfg.Banks))
	}
	tIn := d1.ReadBatch(0, lines, InOrder)
	tRow := d2.ReadBatch(0, lines, RowMajor)
	if tRow >= tIn {
		t.Errorf("row-major (%d) not faster than in-order (%d)", tRow, tIn)
	}
	if cfgSt2.DRAMRowHits <= cfgSt1.DRAMRowHits {
		t.Errorf("row-major hits %d <= in-order hits %d", cfgSt2.DRAMRowHits, cfgSt1.DRAMRowHits)
	}
}

func TestRowMajorPreservesMultiset(t *testing.T) {
	d, _ := mustNew(t)
	f := func(raw []uint32) bool {
		lines := make([]addr.PAddr, len(raw))
		for i, r := range raw {
			lines[i] = d.LineAlign(addr.PAddr(r))
		}
		out := d.rowMajor(lines)
		if len(out) != len(lines) {
			return false
		}
		count := map[addr.PAddr]int{}
		for _, p := range lines {
			count[p]++
		}
		for _, p := range out {
			count[p]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompletionMonotonicity(t *testing.T) {
	d, _ := mustNew(t)
	f := func(reqs []uint32) bool {
		var at uint64
		for _, r := range reqs {
			at += uint64(r % 16)
			done := d.Read(at, addr.PAddr(r))
			if done <= at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteOccupiesBank(t *testing.T) {
	d, st := mustNew(t)
	cfg := d.Config()
	d.Write(0, 0)
	if st.DRAMWrites != 1 {
		t.Fatal("write not counted")
	}
	// A read right behind the write on the same bank queues.
	done := d.Read(0, addr.PAddr(cfg.LineBytes*cfg.Banks))
	first := cfg.IssueGap + max64(cfg.RowMiss, cfg.WriteBusy)
	if done <= first {
		t.Errorf("read done at %d, should queue after write (%d)", done, first)
	}
}

func TestLineAlign(t *testing.T) {
	d, _ := mustNew(t)
	if d.LineAlign(addr.PAddr(300)) != addr.PAddr(256) {
		t.Error("LineAlign")
	}
	if d.LineBytes() != DefaultConfig().LineBytes {
		t.Error("LineBytes")
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestClosedPagePolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = ClosedPage
	st := &stats.MemStats{}
	d, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	// Two accesses to the same row: both cost RowClosed, no row hits.
	t1 := d.Read(0, 0)
	if t1 != cfg.IssueGap+cfg.RowClosed {
		t.Errorf("closed-page read done at %d, want %d", t1, cfg.IssueGap+cfg.RowClosed)
	}
	d.Read(t1, addr.PAddr(cfg.LineBytes*cfg.Banks))
	if st.DRAMRowHits != 0 || st.DRAMRowMisses != 2 {
		t.Errorf("closed-page stats: %+v", st)
	}
	if OpenPage.String() == ClosedPage.String() {
		t.Error("policy strings collide")
	}
	bad := cfg
	bad.RowClosed = 0
	if bad.Validate() == nil {
		t.Error("closed-page without RowClosed accepted")
	}
}

func TestPolicyTradeoff(t *testing.T) {
	// Streams prefer open-page; row-thrashing traffic prefers closed.
	run := func(policy PagePolicy, thrash bool) uint64 {
		cfg := DefaultConfig()
		cfg.Policy = policy
		d, _ := New(cfg, nil)
		var at, last uint64
		rowStride := cfg.RowBytes * cfg.Banks
		for i := uint64(0); i < 64; i++ {
			p := addr.PAddr(i % 4 * cfg.LineBytes * cfg.Banks) // same bank, same row
			if thrash {
				p = addr.PAddr(i % 2 * rowStride) // same bank, alternating rows
			}
			last = d.Read(at, p)
			at = last
		}
		return last
	}
	if run(OpenPage, false) >= run(ClosedPage, false) {
		t.Error("open-page not better for row-local traffic")
	}
	if run(ClosedPage, true) >= run(OpenPage, true) {
		t.Error("closed-page not better for row-thrashing traffic")
	}
}
