package service

import (
	"container/list"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"impulse/internal/colres"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/store"
	"impulse/internal/twin"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's progress stream (served over SSE).
// "cell" events stream finished grid cells incrementally: Label names
// the row and Chunk carries its metrics as a base64 columnar row record
// (colres.DecodeRow), so a client can build the result column by column
// while the job is still running.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"` // "state", "progress", or "cell"
	State   State  `json:"state,omitempty"`
	Section string `json:"section,omitempty"`
	Column  string `json:"column,omitempty"`
	Label   string `json:"label,omitempty"`
	Chunk   string `json:"chunk,omitempty"`
}

// Job is one tracked experiment execution. All fields behind mu; reads
// go through Status()/Wait()/Snapshot helpers.
type Job struct {
	ID   string
	Spec Spec // normalized
	Hash string

	mu        sync.Mutex
	state     State
	result    *Result
	errMsg    string
	cancelReq bool               // client asked to cancel
	cancelRun context.CancelFunc // non-nil while running
	events    []Event
	subs      map[chan Event]struct{}
	done      chan struct{} // closed on terminal state
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Observability: the job's Perfetto timeline (trace is internally
	// locked, so Mark/Phase/Cell never take j.mu), the raw cell events
	// feeding the manifest, and the manifest itself (built once, at
	// finish).
	trace    *obs.JobTrace
	cells    []harness.CellEvent
	manifest *Manifest

	// blobBytes is the size of this job's archived columnar blob, the
	// unit the byte-budget eviction accounts in (0 when the job left no
	// blob).
	blobBytes int

	// tier is the serving tier that answered the job: TierTwin for jobs
	// computed by the analytical twin, empty for simulated jobs. It
	// lands in the manifest together with the twin's documented error
	// bound.
	tier string
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Hash        string     `json:"hash"`
	Spec        Spec       `json:"spec"`
	Error       string     `json:"error,omitempty"`
	Deduped     bool       `json:"deduped,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Events      int        `json:"events"`
}

// Status snapshots the job for clients.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Hash: j.Hash, Spec: j.Spec,
		Error: j.errMsg, SubmittedAt: j.submitted, Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished result, or nil if not (successfully) done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Trace returns the job's Perfetto timeline. Never nil for jobs created
// by Submit; safe to render at any point in the lifecycle (a running
// job yields its timeline so far).
func (j *Job) Trace() *obs.JobTrace { return j.trace }

// Manifest returns the job's provenance manifest, or nil while the job
// is still queued or running (manifests describe finished work).
func (j *Job) Manifest() *Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest
}

// observeCell records one harness cell event against the job (timeline
// lane + manifest row). Called concurrently from pool workers. A
// vectorized batch's first replayed cell also carries the batch's
// shared decode cost; it gets its own lane span so the decode/apply
// split is visible in the timeline.
func (j *Job) observeCell(ev harness.CellEvent) {
	if ev.Decode > 0 {
		j.trace.Cell(ev.Key+" decode", ev.Start.Add(-ev.Decode), ev.Start)
	}
	j.trace.Cell(ev.Key+" "+ev.Mode, ev.Start, ev.End)
	j.mu.Lock()
	j.cells = append(j.cells, ev)
	j.mu.Unlock()
}

// emit appends an event and fans it out to subscribers. Slow consumers
// drop events rather than stall the experiment (SSE replays carry seq
// numbers, so a gap is visible client-side).
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events so far plus a channel of future events.
// The channel is closed when the job finishes. Call the returned cancel
// to unsubscribe.
func (j *Job) Subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch = make(chan Event, 256)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// finalize moves the job to a terminal state, closes done, and closes
// every subscriber after a final state event. Caller must NOT hold j.mu.
func (j *Job) finalize(state State, res *Result, errMsg string, now time.Time) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = now
	subs := j.subs
	j.subs = nil
	ev := Event{Seq: len(j.events), Type: "state", State: state}
	j.events = append(j.events, ev)
	close(j.done)
	j.mu.Unlock()
	for ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
}

// Sentinel submission errors (the HTTP layer maps them to status codes).
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity, so
	// the submission is rejected (HTTP 429) instead of growing an
	// unbounded backlog of goroutines and specs.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects new work during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting new jobs")
)

// Config sizes a Service.
type Config struct {
	// QueueDepth bounds jobs waiting to run (default 64). Submissions
	// beyond it fail with ErrQueueFull.
	QueueDepth int
	// Executors is how many jobs run concurrently (default 2). Each
	// running job fans its cells across the shared harness pool, so
	// total simulation parallelism is roughly Executors x harness
	// workers; keep Executors small.
	Executors int
	// CacheSize bounds the LRU of completed jobs kept for result reuse
	// and status queries (default 128).
	CacheSize int
	// CacheBytes bounds the total size of archived columnar result
	// blobs (default 256 MiB). The LRU accounts bytes, not entries: a
	// handful of huge sweep results can evict many small ones. The most
	// recent result always stays cached even if it alone exceeds the
	// budget.
	CacheBytes int64
	// ArchiveDir is where result blobs are stored (and memory-mapped
	// from). Empty means a private temporary directory removed on
	// drain.
	ArchiveDir string
	// Logger receives structured job-lifecycle logs (started, finished,
	// slow-job warnings). Nil discards them — library users and most
	// tests; impulsed wires its process logger in.
	Logger *slog.Logger
	// SlowJobThreshold flags jobs whose execution (not queue wait)
	// exceeds it with a WARN log line. Zero disables the check.
	SlowJobThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	return c
}

// Service owns the job table, the bounded queue, and the executors.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job // id -> job (active + archived)
	inflight map[string]*Job // hash -> queued/running job (single-flight)
	archive  *list.List      // *Job, most recent in front (LRU of finished jobs)
	archived map[string]*list.Element
	byHash   map[string]*Job // hash -> last successful job (result cache)
	queue    chan *Job
	seq      int
	draining bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	execWG     sync.WaitGroup
	start      time.Time

	// arch is the persistent content-addressed result store (blob +
	// manifest sidecar per spec hash; internal/store); gCacheBytes
	// tracks the bytes it holds on behalf of archived jobs (the
	// byte-budget LRU's accounting, exported as
	// service.result_cache_bytes).
	arch        *store.Store
	gCacheBytes atomic.Uint64

	// Counters, exported through Registry(). cExecuted counts actual
	// harness executions — the single-flight tests pin it. The twin
	// counters track the analytical tier: requests (Submit tier=twin and
	// /v1/predict), and how many of those named a family with no twin.
	cSubmitted, cDeduped, cCacheHit, cCacheMiss, cExecuted atomic.Uint64
	cDone, cFailed, cCancelled, cRejected                  atomic.Uint64
	cTwinRequests, cTwinIneligible                         atomic.Uint64
	cRecovered                                             atomic.Uint64
	gRunning, gHTTPInFlight                                atomic.Uint64
	reg                                                    obs.Registry

	// Latency histograms (microseconds): queue wait and execution
	// duration labeled by spec kind, HTTP request duration labeled by
	// endpoint.
	hQueueWait, hRunDur, hHTTP *obs.HistVec

	// hBatchSize distributes vectorized replay batch sizes (cells that
	// shared one decoded trace), observed once per batch.
	hBatchSize *obs.Histogram

	// hTwinLat distributes analytical-twin answer latencies — the tier's
	// whole point is that these sit in microseconds, not seconds.
	hTwinLat *obs.Histogram

	logger *slog.Logger

	// executeFn indirection lets tests substitute a controllable
	// executor; production always uses Execute.
	executeFn func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error)
}

// New starts a service with cfg.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		archive:    list.New(),
		archived:   make(map[string]*list.Element),
		byHash:     make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		start:      time.Now(),
		executeFn:  Execute,
		logger:     cfg.Logger,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	arch, err := store.Open(cfg.ArchiveDir)
	if err != nil {
		// Results still flow (heap-backed); only the mmap fast path and
		// on-disk persistence are lost.
		s.logger.Warn("result store unavailable", "dir", cfg.ArchiveDir, "err", err)
	} else {
		s.arch = arch
	}
	s.registerMetrics()
	if s.arch != nil {
		// Startup GC first (unlinks crashed-write orphans and trims the
		// store to the byte budget), then rebuild the result cache from
		// whatever survived — a rebooted daemon serves yesterday's cache
		// hits from disk without re-executing anything.
		if st := s.arch.GC(cfg.CacheBytes); st.Orphans > 0 || st.Evicted > 0 {
			s.logger.Info("result store GC", "dir", s.arch.Dir(), "orphans", st.Orphans,
				"evicted", st.Evicted, "freed_bytes", st.FreedBytes, "live_bytes", st.LiveBytes)
		}
		s.recoverArchived()
	}
	s.execWG.Add(cfg.Executors)
	for i := 0; i < cfg.Executors; i++ {
		go s.executor()
	}
	return s
}

func (s *Service) registerMetrics() {
	u := func(c *atomic.Uint64) func() uint64 { return c.Load }
	s.reg.CounterFunc("service.jobs_submitted", "Total job submissions, including deduped and cache-hit ones.", u(&s.cSubmitted))
	s.reg.CounterFunc("service.jobs_deduped", "Submissions coalesced single-flight onto a queued or running job.", u(&s.cDeduped))
	s.reg.CounterFunc("service.jobs_cache_hits", "Submissions answered from the completed-result cache.", u(&s.cCacheHit))
	s.reg.CounterFunc("service.jobs_cache_miss", "Submissions that enqueued a new job (no in-flight or cached twin).", u(&s.cCacheMiss))
	s.reg.CounterFunc("service.jobs_executed", "Jobs that actually ran on the harness (the single-flight invariant pins this).", u(&s.cExecuted))
	s.reg.CounterFunc("service.jobs_done", "Jobs finished successfully.", u(&s.cDone))
	s.reg.CounterFunc("service.jobs_failed", "Jobs finished with an error.", u(&s.cFailed))
	s.reg.CounterFunc("service.jobs_cancelled", "Jobs cancelled while queued or running.", u(&s.cCancelled))
	s.reg.CounterFunc("service.jobs_rejected_queue_full", "Submissions rejected with 429 because the queue was full.", u(&s.cRejected))
	s.reg.GaugeFunc("service.jobs_running", "Jobs currently executing.", u(&s.gRunning))
	s.reg.GaugeFunc("service.http_in_flight", "HTTP requests currently being served.", u(&s.gHTTPInFlight))
	s.reg.GaugeFunc("service.result_cache_bytes", "Bytes of archived columnar result blobs held by the byte-budget LRU.", s.gCacheBytes.Load)
	s.reg.GaugeFunc("service.queue_depth", "Jobs waiting in the bounded queue.", func() uint64 { return uint64(len(s.queue)) })
	s.reg.GaugeFunc("service.queue_capacity", "Configured queue bound.", func() uint64 { return uint64(s.cfg.QueueDepth) })
	s.reg.GaugeFunc("service.executors", "Configured executor goroutines.", func() uint64 { return uint64(s.cfg.Executors) })
	s.reg.GaugeFunc("service.harness_workers", "Harness worker-pool width shared by all jobs.", func() uint64 { return uint64(harness.Workers()) })
	s.reg.GaugeFunc("service.trace_cache_enabled", "1 when the harness trace cache is on.", func() uint64 {
		if harness.TraceCacheEnabled() {
			return 1
		}
		return 0
	})
	s.reg.GaugeFunc("service.uptime_seconds", "Seconds since the service started.", func() uint64 { return uint64(time.Since(s.start).Seconds()) })
	s.reg.GaugeFunc("service.vector_replay_enabled", "1 when replay batches are vectorized (one decode shared per trace-cache family).", func() uint64 {
		if harness.VectorReplayEnabled() {
			return 1
		}
		return 0
	})
	s.reg.CounterFunc("service.jobs_recovered", "Completed results recovered from the on-disk store at startup and served without re-execution.", u(&s.cRecovered))
	s.reg.CounterFunc("service.twin_requests", "Analytical-twin tier requests (submits with tier=twin plus /v1/predict calls).", u(&s.cTwinRequests))
	s.reg.CounterFunc("service.twin_ineligible", "Twin-tier requests naming a family with no analytical twin (submits fall through to simulation).", u(&s.cTwinIneligible))
	s.hTwinLat = s.reg.Histogram("service.twin_latency_us", "Microseconds spent computing analytical-twin predictions.")
	s.hBatchSize = s.reg.Histogram("service.vector_replay_batch_size", "Cells per vectorized replay batch (cells sharing one decoded trace).")
	s.hQueueWait = s.reg.HistogramVec("service.job_queue_wait_us", "Microseconds jobs spent queued before an executor picked them up.", "kind")
	s.hRunDur = s.reg.HistogramVec("service.job_run_duration_us", "Microseconds jobs spent executing on the harness.", "kind")
	s.hHTTP = s.reg.HistogramVec("service.http_request_duration_us", "Microseconds spent serving HTTP requests.", "endpoint")
}

// Registry exposes the service's live counters (mounted at /metrics).
func (s *Service) Registry() *obs.Registry { return &s.reg }

// recoverArchived rebuilds the completed-result cache from the on-disk
// store: every complete entry becomes a terminal recovered job ("r-"
// IDs), registered in the archive LRU oldest-first so eviction order
// survives the restart. Entries whose sidecar spec no longer hashes to
// its own key (schema drift, tampering) are dropped rather than served
// under the wrong identity. Runs once, from New, before the executors
// start.
func (s *Service) recoverArchived() {
	for _, hash := range s.arch.Hashes() { // oldest SavedAt first
		b, m, ok := s.arch.Get(hash)
		if !ok {
			continue // torn or corrupt; the store already dropped it
		}
		norm, err := ParseSpec(m.Spec)
		if err != nil || norm.Hash() != hash {
			s.logger.Warn("recovered entry spec does not match its hash; dropping",
				"hash", hash, "err", err)
			s.arch.Remove(hash)
			continue
		}
		res := &Result{Counters: m.Counters, MIME: m.MIME, Output: m.Output, blob: b}
		if m.ColumnarBlob {
			res.Columnar = b.Data
		}
		if m.OutputIsBlob {
			res.Output = b.Data
		}
		at := m.SavedAt
		if at.IsZero() {
			at = s.start
		}
		s.mu.Lock()
		s.seq++
		j := &Job{
			ID:   fmt.Sprintf("r-%06d", s.seq),
			Spec: norm, Hash: hash,
			state: StateDone, result: res,
			done:      make(chan struct{}),
			submitted: at, started: at, finished: at,
			trace:     obs.NewJobTrace(at),
			blobBytes: len(b.Data),
			tier:      m.Tier,
		}
		close(j.done)
		j.events = []Event{{Type: "state", State: StateDone}}
		s.mu.Unlock()
		man := buildManifest(j)
		man.Recovered = true
		j.mu.Lock()
		j.manifest = man
		j.mu.Unlock()
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.byHash[hash] = j
		s.archived[j.ID] = s.archive.PushFront(j)
		s.gCacheBytes.Add(uint64(len(b.Data)))
		for s.archive.Len() > s.cfg.CacheSize {
			s.evictOldestLocked()
		}
		s.mu.Unlock()
		s.cRecovered.Add(1)
	}
	if n := s.cRecovered.Load(); n > 0 {
		s.logger.Info("recovered archived results", "dir", s.arch.Dir(), "entries", n,
			"bytes", s.gCacheBytes.Load())
	}
}

// Submit validates, canonicalizes, and enqueues spec. If an identical
// spec (by canonical hash) is already queued or running, the existing
// job is returned with deduped=true and nothing new executes — that is
// the single-flight guarantee. If an identical spec already completed
// successfully and is still cached, its job is returned likewise.
//
// A spec requesting the analytical twin tier (tier=twin, kind sweep) is
// answered synchronously: the job is admitted, computed by the twin in
// microseconds, and returned already terminal — it never touches the
// queue or an executor. If the family has no twin, the tier is cleared
// and the spec falls through to an ordinary simulation job, sharing the
// simulation tier's cache key.
func (s *Service) Submit(spec Spec) (job *Job, deduped bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	instant := false
	if norm.Tier == TierTwin {
		s.cTwinRequests.Add(1)
		if _, ok := twin.Eligible(norm.Family); ok {
			instant = true
		} else {
			s.cTwinIneligible.Add(1)
			norm.Tier = ""
		}
	}

	j, deduped, err := s.admit(norm, norm.Hash(), instant)
	if err != nil || deduped {
		return j, deduped, err
	}
	if instant {
		s.runTwinJob(j)
	}
	return j, false, nil
}

// admit is Submit's locked half: dedup checks and job registration. An
// instant (twin-tier) job is registered in-flight but not queued — the
// caller runs it synchronously right after.
func (s *Service) admit(norm Spec, hash string, instant bool) (job *Job, deduped bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	s.cSubmitted.Add(1)
	if j := s.inflight[hash]; j != nil {
		s.cDeduped.Add(1)
		j.trace.Mark("dedup", time.Now())
		return j, true, nil
	}
	if j := s.byHash[hash]; j != nil {
		s.cCacheHit.Add(1)
		j.trace.Mark("dedup", time.Now())
		s.touchArchived(j)
		return j, true, nil
	}
	s.cCacheMiss.Add(1)

	s.seq++
	now := time.Now()
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", s.seq),
		Spec:      norm,
		Hash:      hash,
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: now,
		trace:     obs.NewJobTrace(now),
	}
	if instant {
		j.tier = TierTwin
	}
	j.trace.Mark("submitted", now)
	if !instant {
		select {
		case s.queue <- j:
		default:
			s.cRejected.Add(1)
			return nil, false, ErrQueueFull
		}
	}
	s.jobs[j.ID] = j
	s.inflight[hash] = j
	return j, false, nil
}

// Get looks a job up by ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every tracked job's status, newest submission first.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sts := make([]JobStatus, len(all))
	for i, j := range all {
		sts[i] = j.Status()
	}
	// Sort by ID descending (IDs are zero-padded sequence numbers).
	for i := 0; i < len(sts); i++ {
		for k := i + 1; k < len(sts); k++ {
			if sts[k].ID > sts[i].ID {
				sts[i], sts[k] = sts[k], sts[i]
			}
		}
	}
	return sts
}

// Cancel stops a job: a queued job finalizes immediately (the executor
// skips it when popped); a running job has its context cancelled and
// finalizes when the harness unwinds. Cancelling a finished job is an
// error. Note a cancelled job cancels for every deduped submitter that
// shares it.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no such job %q", id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already %s", id, j.state)
	case j.state == StateRunning:
		j.cancelReq = true
		cancel := j.cancelRun
		j.mu.Unlock()
		cancel()
		return nil
	default: // queued
		j.cancelReq = true
		j.mu.Unlock()
		s.finishJob(j, StateCancelled, nil, "cancelled while queued")
		return nil
	}
}

// executor pulls jobs until the queue closes (Drain).
func (s *Service) executor() {
	defer s.execWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Service) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	started := j.started
	j.cancelRun = cancel
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: StateRunning})

	queueWait := started.Sub(j.submitted)
	j.trace.Phase("queued", j.submitted, started)
	s.hQueueWait.With(j.Spec.Kind).Observe(uint64(queueWait.Microseconds()))
	log := s.logger.With("job", j.ID, "kind", j.Spec.Kind, "hash", j.Hash)
	log.Info("job started", "queue_wait_ms", queueWait.Milliseconds())

	// The execution context carries the job id (advisory attribution),
	// the cell observer (timeline + manifest), and the job trace (the
	// render phase is recorded from inside Execute).
	ctx = obs.WithJobID(ctx, j.ID)
	ctx = harness.WithCellObserver(ctx, func(ev harness.CellEvent) {
		if ev.Mode == "replayed-vectorized" && ev.BatchIndex == 0 {
			s.hBatchSize.Observe(uint64(ev.BatchSize))
		}
		j.observeCell(ev)
	})
	ctx = withJobTrace(ctx, j.trace)
	// Stream each finished grid cell to SSE subscribers as a columnar
	// row chunk; the final result blob is the same columns, indexed.
	ctx = withRowChunkSink(ctx, func(label string, chunk []byte) {
		j.emit(Event{Type: "cell", Label: label,
			Chunk: base64.StdEncoding.EncodeToString(chunk)})
	})

	s.gRunning.Add(1)
	s.cExecuted.Add(1)
	res, err := s.executeFn(ctx, j.Spec, func(section, column string) {
		j.emit(Event{Type: "progress", Section: section, Column: column})
	})
	s.gRunning.Add(^uint64(0))

	end := time.Now()
	runDur := end.Sub(started)
	j.trace.Phase("running", started, end)
	s.hRunDur.With(j.Spec.Kind).Observe(uint64(runDur.Microseconds()))

	j.mu.Lock()
	wasCancelled := j.cancelReq
	cellCount := len(j.cells)
	j.mu.Unlock()
	switch {
	case err != nil && (wasCancelled || errors.Is(err, context.Canceled)):
		s.finishJob(j, StateCancelled, nil, "cancelled")
	case err != nil:
		s.finishJob(j, StateFailed, nil, err.Error())
	default:
		s.finishJob(j, StateDone, res, "")
	}
	st := j.Status()
	log.Info("job finished", "state", st.State, "run_ms", runDur.Milliseconds(), "cells", cellCount)
	if s.cfg.SlowJobThreshold > 0 && runDur > s.cfg.SlowJobThreshold {
		log.Warn("slow job", "run_ms", runDur.Milliseconds(),
			"threshold_ms", s.cfg.SlowJobThreshold.Milliseconds())
	}
}

// finishJob finalizes j and moves it from the in-flight table to the
// archive LRU (successful results stay addressable by hash for reuse).
// A successful job's result is written durably to the on-disk store —
// blob plus manifest sidecar, enough to rebuild the wire-visible result
// byte-identically after a restart — and memory-mapped back in before
// finalize, so every reader — including the first — sees the mapped
// bytes and cache hits serve straight from the page cache with zero
// re-encoding.
func (s *Service) finishJob(j *Job, state State, res *Result, errMsg string) {
	now := time.Now()
	if state == StateDone && res != nil && s.arch != nil {
		meta := store.Meta{
			Hash: j.Hash, Kind: j.Spec.Kind, Canonical: j.Spec.Canonical(),
			MIME: res.MIME, Tier: j.tier, Counters: res.Counters,
		}
		if raw, err := json.Marshal(j.Spec); err == nil {
			meta.Spec = raw
		}
		// The blob is the big payload: the columnar document for grid
		// results, the rendered output for everything else. Rendered
		// text/json views of grid results are small and ride in the
		// sidecar.
		blob := res.Columnar
		switch {
		case len(blob) > 0 && res.MIME == colres.ContentType:
			meta.ColumnarBlob, meta.OutputIsBlob = true, true
		case len(blob) > 0:
			meta.ColumnarBlob = true
			meta.Output = res.Output
		default:
			blob = res.Output
			meta.OutputIsBlob = true
		}
		if b, err := s.arch.Put(blob, meta); err != nil {
			s.logger.Warn("result archive write failed", "job", j.ID, "err", err)
		} else {
			if meta.ColumnarBlob {
				res.Columnar = b.Data
			}
			if meta.OutputIsBlob {
				res.Output = b.Data
			}
			res.blob = b
			j.blobBytes = len(b.Data)
			s.gCacheBytes.Add(uint64(len(b.Data)))
		}
	}
	j.finalize(state, res, errMsg, now)
	j.trace.Mark("archived", now)
	m := buildManifest(j)
	j.mu.Lock()
	j.manifest = m
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.cDone.Add(1)
	case StateFailed:
		s.cFailed.Add(1)
	case StateCancelled:
		s.cCancelled.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	if state == StateDone {
		s.byHash[j.Hash] = j
	}
	s.archived[j.ID] = s.archive.PushFront(j)
	for s.archive.Len() > s.cfg.CacheSize {
		s.evictOldestLocked()
	}
	// Byte budget on top of the entry bound: blobs are accounted by
	// length, so one giant sweep result evicts many small ones. The
	// freshest entry is exempt — a result must be retrievable at least
	// once.
	for s.gCacheBytes.Load() > uint64(s.cfg.CacheBytes) && s.archive.Len() > 1 {
		s.evictOldestLocked()
	}
}

// evictOldestLocked drops the least-recently-used archived job: its
// table entries, its byte accounting, and — when it still owns its
// hash's blob — the on-disk blob. Caller holds s.mu.
func (s *Service) evictOldestLocked() {
	el := s.archive.Back()
	if el == nil {
		return
	}
	old := el.Value.(*Job)
	s.archive.Remove(el)
	delete(s.archived, old.ID)
	delete(s.jobs, old.ID)
	if s.byHash[old.Hash] == old {
		delete(s.byHash, old.Hash)
		if s.arch != nil && old.blobBytes > 0 {
			s.arch.Remove(old.Hash)
		}
	}
	if old.blobBytes > 0 {
		s.gCacheBytes.Add(^uint64(old.blobBytes - 1)) // subtract
	}
}

// touchArchived marks a cache-hit job recently used. Caller holds s.mu.
func (s *Service) touchArchived(j *Job) {
	if el, ok := s.archived[j.ID]; ok {
		s.archive.MoveToFront(el)
	}
}

// Draining reports whether the service has stopped accepting jobs.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: new submissions fail with
// ErrDraining immediately, queued and running jobs are given until
// ctx's deadline to finish (their results stay retrievable), and if the
// deadline passes the remaining jobs are cancelled and awaited. Drain
// is idempotent; the first call's context governs.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(finished)
	}()
	// The store keeps its files on a caller-provided directory — restart
	// durability is the point; only a private temp-dir store removes
	// everything. Established mappings survive either way, so results
	// fetched after drain still read their pages.
	closeArch := func() {
		if s.arch != nil && !already {
			s.arch.Close()
		}
	}
	select {
	case <-finished:
		closeArch()
		return nil
	case <-ctx.Done():
		s.baseCancel() // cut in-flight jobs loose, then wait for unwind
		<-finished
		closeArch()
		return fmt.Errorf("service: drain deadline passed; in-flight jobs cancelled: %w", ctx.Err())
	}
}

// Close force-stops the service (tests): cancel everything, then drain.
func (s *Service) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}
