package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"impulse/internal/harness"
	"impulse/internal/obs"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's progress stream (served over SSE).
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"` // "state" or "progress"
	State   State  `json:"state,omitempty"`
	Section string `json:"section,omitempty"`
	Column  string `json:"column,omitempty"`
}

// Job is one tracked experiment execution. All fields behind mu; reads
// go through Status()/Wait()/Snapshot helpers.
type Job struct {
	ID   string
	Spec Spec // normalized
	Hash string

	mu        sync.Mutex
	state     State
	result    *Result
	errMsg    string
	cancelReq bool               // client asked to cancel
	cancelRun context.CancelFunc // non-nil while running
	events    []Event
	subs      map[chan Event]struct{}
	done      chan struct{} // closed on terminal state
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Hash        string     `json:"hash"`
	Spec        Spec       `json:"spec"`
	Error       string     `json:"error,omitempty"`
	Deduped     bool       `json:"deduped,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Events      int        `json:"events"`
}

// Status snapshots the job for clients.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Hash: j.Hash, Spec: j.Spec,
		Error: j.errMsg, SubmittedAt: j.submitted, Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished result, or nil if not (successfully) done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// emit appends an event and fans it out to subscribers. Slow consumers
// drop events rather than stall the experiment (SSE replays carry seq
// numbers, so a gap is visible client-side).
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events so far plus a channel of future events.
// The channel is closed when the job finishes. Call the returned cancel
// to unsubscribe.
func (j *Job) Subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch = make(chan Event, 256)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// finalize moves the job to a terminal state, closes done, and closes
// every subscriber after a final state event. Caller must NOT hold j.mu.
func (j *Job) finalize(state State, res *Result, errMsg string, now time.Time) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = now
	subs := j.subs
	j.subs = nil
	ev := Event{Seq: len(j.events), Type: "state", State: state}
	j.events = append(j.events, ev)
	close(j.done)
	j.mu.Unlock()
	for ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
}

// Sentinel submission errors (the HTTP layer maps them to status codes).
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity, so
	// the submission is rejected (HTTP 429) instead of growing an
	// unbounded backlog of goroutines and specs.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects new work during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting new jobs")
)

// Config sizes a Service.
type Config struct {
	// QueueDepth bounds jobs waiting to run (default 64). Submissions
	// beyond it fail with ErrQueueFull.
	QueueDepth int
	// Executors is how many jobs run concurrently (default 2). Each
	// running job fans its cells across the shared harness pool, so
	// total simulation parallelism is roughly Executors x harness
	// workers; keep Executors small.
	Executors int
	// CacheSize bounds the LRU of completed jobs kept for result reuse
	// and status queries (default 128).
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	return c
}

// Service owns the job table, the bounded queue, and the executors.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job // id -> job (active + archived)
	inflight map[string]*Job // hash -> queued/running job (single-flight)
	archive  *list.List      // *Job, most recent in front (LRU of finished jobs)
	archived map[string]*list.Element
	byHash   map[string]*Job // hash -> last successful job (result cache)
	queue    chan *Job
	seq      int
	draining bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	execWG     sync.WaitGroup
	start      time.Time

	// Counters, exported through Registry(). cExecuted counts actual
	// harness executions — the single-flight tests pin it.
	cSubmitted, cDeduped, cCacheHit, cExecuted atomic.Uint64
	cDone, cFailed, cCancelled, cRejected      atomic.Uint64
	gRunning                                   atomic.Uint64
	reg                                        obs.Registry

	// executeFn indirection lets tests substitute a controllable
	// executor; production always uses Execute.
	executeFn func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error)
}

// New starts a service with cfg.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		archive:    list.New(),
		archived:   make(map[string]*list.Element),
		byHash:     make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		start:      time.Now(),
		executeFn:  Execute,
	}
	s.registerMetrics()
	s.execWG.Add(cfg.Executors)
	for i := 0; i < cfg.Executors; i++ {
		go s.executor()
	}
	return s
}

func (s *Service) registerMetrics() {
	u := func(c *atomic.Uint64) func() uint64 { return c.Load }
	s.reg.Gauge("service.jobs_submitted", u(&s.cSubmitted))
	s.reg.Gauge("service.jobs_deduped", u(&s.cDeduped))
	s.reg.Gauge("service.jobs_cache_hits", u(&s.cCacheHit))
	s.reg.Gauge("service.jobs_executed", u(&s.cExecuted))
	s.reg.Gauge("service.jobs_done", u(&s.cDone))
	s.reg.Gauge("service.jobs_failed", u(&s.cFailed))
	s.reg.Gauge("service.jobs_cancelled", u(&s.cCancelled))
	s.reg.Gauge("service.jobs_rejected_queue_full", u(&s.cRejected))
	s.reg.Gauge("service.jobs_running", u(&s.gRunning))
	s.reg.Gauge("service.queue_depth", func() uint64 { return uint64(len(s.queue)) })
	s.reg.Gauge("service.queue_capacity", func() uint64 { return uint64(s.cfg.QueueDepth) })
	s.reg.Gauge("service.executors", func() uint64 { return uint64(s.cfg.Executors) })
	s.reg.Gauge("service.harness_workers", func() uint64 { return uint64(harness.Workers()) })
	s.reg.Gauge("service.trace_cache_enabled", func() uint64 {
		if harness.TraceCacheEnabled() {
			return 1
		}
		return 0
	})
	s.reg.Gauge("service.uptime_seconds", func() uint64 { return uint64(time.Since(s.start).Seconds()) })
}

// Registry exposes the service's live counters (mounted at /metrics).
func (s *Service) Registry() *obs.Registry { return &s.reg }

// Submit validates, canonicalizes, and enqueues spec. If an identical
// spec (by canonical hash) is already queued or running, the existing
// job is returned with deduped=true and nothing new executes — that is
// the single-flight guarantee. If an identical spec already completed
// successfully and is still cached, its job is returned likewise.
func (s *Service) Submit(spec Spec) (job *Job, deduped bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash := norm.Hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	s.cSubmitted.Add(1)
	if j := s.inflight[hash]; j != nil {
		s.cDeduped.Add(1)
		return j, true, nil
	}
	if j := s.byHash[hash]; j != nil {
		s.cCacheHit.Add(1)
		s.touchArchived(j)
		return j, true, nil
	}

	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", s.seq),
		Spec:      norm,
		Hash:      hash,
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.cRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.inflight[hash] = j
	return j, false, nil
}

// Get looks a job up by ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every tracked job's status, newest submission first.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sts := make([]JobStatus, len(all))
	for i, j := range all {
		sts[i] = j.Status()
	}
	// Sort by ID descending (IDs are zero-padded sequence numbers).
	for i := 0; i < len(sts); i++ {
		for k := i + 1; k < len(sts); k++ {
			if sts[k].ID > sts[i].ID {
				sts[i], sts[k] = sts[k], sts[i]
			}
		}
	}
	return sts
}

// Cancel stops a job: a queued job finalizes immediately (the executor
// skips it when popped); a running job has its context cancelled and
// finalizes when the harness unwinds. Cancelling a finished job is an
// error. Note a cancelled job cancels for every deduped submitter that
// shares it.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no such job %q", id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already %s", id, j.state)
	case j.state == StateRunning:
		j.cancelReq = true
		cancel := j.cancelRun
		j.mu.Unlock()
		cancel()
		return nil
	default: // queued
		j.cancelReq = true
		j.mu.Unlock()
		s.finishJob(j, StateCancelled, nil, "cancelled while queued")
		return nil
	}
}

// executor pulls jobs until the queue closes (Drain).
func (s *Service) executor() {
	defer s.execWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Service) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: StateRunning})

	s.gRunning.Add(1)
	s.cExecuted.Add(1)
	res, err := s.executeFn(ctx, j.Spec, func(section, column string) {
		j.emit(Event{Type: "progress", Section: section, Column: column})
	})
	s.gRunning.Add(^uint64(0))

	j.mu.Lock()
	wasCancelled := j.cancelReq
	j.mu.Unlock()
	switch {
	case err != nil && (wasCancelled || errors.Is(err, context.Canceled)):
		s.finishJob(j, StateCancelled, nil, "cancelled")
	case err != nil:
		s.finishJob(j, StateFailed, nil, err.Error())
	default:
		s.finishJob(j, StateDone, res, "")
	}
}

// finishJob finalizes j and moves it from the in-flight table to the
// archive LRU (successful results stay addressable by hash for reuse).
func (s *Service) finishJob(j *Job, state State, res *Result, errMsg string) {
	j.finalize(state, res, errMsg, time.Now())
	switch state {
	case StateDone:
		s.cDone.Add(1)
	case StateFailed:
		s.cFailed.Add(1)
	case StateCancelled:
		s.cCancelled.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	if state == StateDone {
		s.byHash[j.Hash] = j
	}
	s.archived[j.ID] = s.archive.PushFront(j)
	for s.archive.Len() > s.cfg.CacheSize {
		el := s.archive.Back()
		old := el.Value.(*Job)
		s.archive.Remove(el)
		delete(s.archived, old.ID)
		delete(s.jobs, old.ID)
		if s.byHash[old.Hash] == old {
			delete(s.byHash, old.Hash)
		}
	}
}

// touchArchived marks a cache-hit job recently used. Caller holds s.mu.
func (s *Service) touchArchived(j *Job) {
	if el, ok := s.archived[j.ID]; ok {
		s.archive.MoveToFront(el)
	}
}

// Draining reports whether the service has stopped accepting jobs.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: new submissions fail with
// ErrDraining immediately, queued and running jobs are given until
// ctx's deadline to finish (their results stay retrievable), and if the
// deadline passes the remaining jobs are cancelled and awaited. Drain
// is idempotent; the first call's context governs.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.baseCancel() // cut in-flight jobs loose, then wait for unwind
		<-finished
		return fmt.Errorf("service: drain deadline passed; in-flight jobs cancelled: %w", ctx.Err())
	}
}

// Close force-stops the service (tests): cancel everything, then drain.
func (s *Service) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}
