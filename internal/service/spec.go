// Package service is the impulsed experiment service: a long-lived,
// concurrent front end over the experiment harness. It accepts
// experiment specs over HTTP/JSON, canonicalizes and hashes them,
// executes them on a bounded job queue layered over the internal/harness
// pool (sharing one process-wide trace cache across every request), and
// deduplicates identical in-flight submissions single-flight style so N
// clients asking the same capacity-planning question cost one
// simulation.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"impulse/internal/harness"
	"impulse/internal/workloads"
)

// Spec describes one experiment submission. Kind selects the experiment
// family; the remaining fields parameterize it and carry each kind's
// CLI defaults when zero, so the same spec always means the same
// experiment no matter which fields the client spelled out. A
// normalized spec is canonical: byte-identical canonical encoding (and
// therefore cache key) for every way of writing the same request.
type Spec struct {
	// Kind: "table1", "table2", "figure1", "sweep", or "sim".
	Kind string `json:"kind"`

	// Family names the sweep family for kind "sweep" (harness.FamilyNames).
	Family string `json:"family,omitempty"`
	// Fast selects each family's reduced geometry (kind "sweep" only).
	Fast bool `json:"fast,omitempty"`

	// Format is "text" (default, the CLI table rendering), "json" (Grid
	// JSON), or "columnar" (the raw columnar result blob, served
	// zero-copy from the archive; see docs/RESULTS.md); kinds "table1"
	// and "table2" only.
	Format string `json:"format,omitempty"`

	// CG / MMP / figure1 geometry (defaults match the CLI flags).
	N      int     `json:"n,omitempty"`
	Nonzer int     `json:"nonzer,omitempty"`
	Niter  int     `json:"niter,omitempty"`
	CGIts  int     `json:"cgits,omitempty"`
	Shift  float64 `json:"shift,omitempty"`
	RCond  float64 `json:"rcond,omitempty"`
	Tile   int     `json:"tile,omitempty"`
	Dim    int     `json:"dim,omitempty"`
	Sweeps int     `json:"sweeps,omitempty"`

	// Single-configuration runs (kind "sim", mirroring cmd/impulse-sim):
	// Workload cg|mmp|diag|ipc, its mode, and a prefetch policy.
	Workload string `json:"workload,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Prefetch string `json:"prefetch,omitempty"`

	// Tier requests a serving tier for kind "sweep": "twin" asks for the
	// analytical twin (internal/twin), answered synchronously in
	// microseconds for eligible families; ineligible families fall
	// through to full simulation with the tier cleared, so they share
	// the simulation tier's result cache. Empty means simulate.
	Tier string `json:"tier,omitempty"`
}

// TierTwin is the analytical-twin serving tier (docs/TWIN.md).
const TierTwin = "twin"

// specLimit bounds accepted geometries: the service answers interactive
// capacity-planning queries, not day-long batch runs, and a shared
// daemon must not let one request allocate unbounded simulated memory.
const (
	maxDim    = 100000
	maxIts    = 200
	maxSweeps = 64
)

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Normalize validates s and returns a copy with every defaultable field
// filled in, so equal experiments hash equally. It is the single place
// service-side defaults live; they deliberately equal the corresponding
// CLI defaults (cmd/table1, cmd/table2, cmd/sweep, cmd/impulse-sim) so
// a service job and a direct CLI invocation of the same experiment are
// byte-identical.
func (s Spec) Normalize() (Spec, error) {
	n := s
	if n.Tier != "" && n.Tier != TierTwin {
		return n, fmt.Errorf("unknown tier %q (only %q)", n.Tier, TierTwin)
	}
	if n.Tier != "" && n.Kind != "sweep" {
		return n, fmt.Errorf("tier %q: only sweep jobs have an analytical twin tier", n.Tier)
	}
	switch n.Kind {
	case "table1":
		def := workloads.CGPaperGeometry()
		def.CGIts = 8 // cmd/table1's default (paper: 25, -full)
		if n.N == 0 {
			n.N = def.N
		}
		if n.Nonzer == 0 {
			n.Nonzer = def.Nonzer
		}
		if n.Niter == 0 {
			n.Niter = def.Niter
		}
		if n.CGIts == 0 {
			n.CGIts = def.CGIts
		}
		if n.Shift == 0 {
			n.Shift = def.Shift
		}
		if n.RCond == 0 {
			n.RCond = def.RCond
		}
		if n.N < 16 || n.N > maxDim {
			return n, fmt.Errorf("table1: n=%d out of range [16, %d]", n.N, maxDim)
		}
		if n.Nonzer < 1 || n.Nonzer > 64 {
			return n, fmt.Errorf("table1: nonzer=%d out of range [1, 64]", n.Nonzer)
		}
		if n.Niter < 1 || n.Niter > maxIts || n.CGIts < 1 || n.CGIts > maxIts {
			return n, fmt.Errorf("table1: niter=%d/cgits=%d out of range [1, %d]", n.Niter, n.CGIts, maxIts)
		}
		if err := normalizeFormat(&n); err != nil {
			return n, err
		}
		n.Family, n.Fast, n.Tile, n.Dim, n.Sweeps, n.Workload, n.Mode, n.Prefetch = "", false, 0, 0, 0, "", "", ""
	case "table2":
		def := workloads.MMPDefault()
		if n.N == 0 {
			n.N = def.N
		}
		if n.Tile == 0 {
			n.Tile = def.Tile
		}
		if n.N < 16 || n.N > 2048 {
			return n, fmt.Errorf("table2: n=%d out of range [16, 2048]", n.N)
		}
		if p := (workloads.MMPParams{N: n.N, Tile: n.Tile}); p.Validate() != nil {
			return n, fmt.Errorf("table2: %v", p.Validate())
		}
		if err := normalizeFormat(&n); err != nil {
			return n, err
		}
		n.Family, n.Fast, n.Nonzer, n.Niter, n.CGIts, n.Shift, n.RCond, n.Dim, n.Sweeps, n.Workload, n.Mode, n.Prefetch =
			"", false, 0, 0, 0, 0, 0, 0, 0, "", "", ""
	case "figure1":
		if n.Dim == 0 {
			n.Dim = 512
		}
		if n.Sweeps == 0 {
			n.Sweeps = 4
		}
		if n.Dim < 16 || n.Dim > 4096 {
			return n, fmt.Errorf("figure1: dim=%d out of range [16, 4096]", n.Dim)
		}
		if n.Sweeps < 1 || n.Sweeps > maxSweeps {
			return n, fmt.Errorf("figure1: sweeps=%d out of range [1, %d]", n.Sweeps, maxSweeps)
		}
		n.Family, n.Fast, n.Format, n.N, n.Nonzer, n.Niter, n.CGIts, n.Shift, n.RCond, n.Tile, n.Workload, n.Mode, n.Prefetch =
			"", false, "", 0, 0, 0, 0, 0, 0, 0, "", "", ""
	case "sweep":
		if n.Family == "" {
			return n, fmt.Errorf("sweep: missing family; valid: %s", strings.Join(harness.FamilyNames(), ", "))
		}
		if !contains(harness.FamilyNames(), n.Family) {
			return n, fmt.Errorf("sweep: unknown family %q; valid: %s", n.Family, strings.Join(harness.FamilyNames(), ", "))
		}
		n.Format, n.N, n.Nonzer, n.Niter, n.CGIts, n.Shift, n.RCond, n.Tile, n.Dim, n.Sweeps, n.Workload, n.Mode, n.Prefetch =
			"", 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "", ""
	case "sim":
		if n.Workload == "" {
			n.Workload = "cg"
		}
		if n.Prefetch == "" {
			n.Prefetch = "none"
		}
		if !contains([]string{"none", "mc", "l1", "both"}, n.Prefetch) {
			return n, fmt.Errorf("sim: unknown prefetch %q (none|mc|l1|both)", n.Prefetch)
		}
		switch n.Workload {
		case "cg":
			if n.Mode == "" {
				n.Mode = "conventional"
			}
			if !contains([]string{"conventional", "sg", "recolor"}, n.Mode) {
				return n, fmt.Errorf("sim: unknown cg mode %q (conventional|sg|recolor)", n.Mode)
			}
			def := workloads.CGPaperGeometry()
			if n.N == 0 {
				n.N = def.N
			}
			if n.CGIts == 0 {
				n.CGIts = 8
			}
			if n.Niter == 0 {
				n.Niter = 1
			}
			if n.N < 16 || n.N > maxDim || n.CGIts < 1 || n.CGIts > maxIts || n.Niter < 1 || n.Niter > maxIts {
				return n, fmt.Errorf("sim: cg geometry n=%d cgits=%d niter=%d out of range", n.N, n.CGIts, n.Niter)
			}
			n.Tile = 0
		case "mmp":
			if n.Mode == "" {
				n.Mode = "nocopy"
			}
			if n.Mode == "conventional" {
				n.Mode = "nocopy" // impulse-sim accepts both spellings
			}
			if !contains([]string{"nocopy", "copy", "remap"}, n.Mode) {
				return n, fmt.Errorf("sim: unknown mmp mode %q (nocopy|copy|remap)", n.Mode)
			}
			def := workloads.MMPDefault()
			if n.N == 0 {
				n.N = def.N
			}
			if n.Tile == 0 {
				n.Tile = def.Tile
			}
			if p := (workloads.MMPParams{N: n.N, Tile: n.Tile}); p.Validate() != nil || n.N > 2048 {
				return n, fmt.Errorf("sim: bad mmp geometry n=%d tile=%d", n.N, n.Tile)
			}
			n.CGIts, n.Niter = 0, 0
		case "diag":
			if n.Mode == "" {
				n.Mode = "conventional"
			}
			if !contains([]string{"conventional", "impulse"}, n.Mode) {
				return n, fmt.Errorf("sim: unknown diag mode %q (conventional|impulse)", n.Mode)
			}
			if n.N == 0 {
				n.N = 512
			}
			if n.N < 16 || n.N > 4096 {
				return n, fmt.Errorf("sim: diag n=%d out of range [16, 4096]", n.N)
			}
			n.CGIts, n.Niter, n.Tile = 0, 0, 0
		case "ipc":
			if n.Mode == "" {
				n.Mode = "conventional"
			}
			if !contains([]string{"conventional", "impulse"}, n.Mode) {
				return n, fmt.Errorf("sim: unknown ipc mode %q (conventional|impulse)", n.Mode)
			}
			n.N, n.CGIts, n.Niter, n.Tile = 0, 0, 0, 0
		default:
			return n, fmt.Errorf("sim: unknown workload %q (cg|mmp|diag|ipc)", n.Workload)
		}
		n.Family, n.Fast, n.Format, n.Nonzer, n.Shift, n.RCond, n.Dim, n.Sweeps = "", false, "", 0, 0, 0, 0, 0
	case "":
		return n, fmt.Errorf("missing kind (table1|table2|figure1|sweep|sim)")
	default:
		return n, fmt.Errorf("unknown kind %q (table1|table2|figure1|sweep|sim)", n.Kind)
	}
	return n, nil
}

func normalizeFormat(n *Spec) error {
	if n.Format == "" {
		n.Format = "text"
	}
	if n.Format != "text" && n.Format != "json" && n.Format != "columnar" {
		return fmt.Errorf("format %q must be \"text\", \"json\", or \"columnar\"", n.Format)
	}
	return nil
}

// Canonical renders a normalized spec as a deterministic key=value
// string with a fixed field order — the preimage of Hash. Field order
// and formatting are frozen: changing them invalidates every cached
// result keyed on the hash, so treat this like a wire format.
func (s Spec) Canonical() string {
	c := fmt.Sprintf(
		"kind=%s&family=%s&fast=%t&format=%s&n=%d&nonzer=%d&niter=%d&cgits=%d&shift=%g&rcond=%g&tile=%d&dim=%d&sweeps=%d&workload=%s&mode=%s&prefetch=%s",
		s.Kind, s.Family, s.Fast, s.Format, s.N, s.Nonzer, s.Niter, s.CGIts,
		s.Shift, s.RCond, s.Tile, s.Dim, s.Sweeps, s.Workload, s.Mode, s.Prefetch)
	// Appended only when set, so every pre-tier spec's canonical encoding
	// (and cached hash) is unchanged.
	if s.Tier != "" {
		c += "&tier=" + s.Tier
	}
	return c
}

// Hash is the single-flight / result-cache key: a short hex digest of
// the canonical encoding.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:8])
}

// ParseSpec decodes and normalizes a JSON spec, rejecting unknown
// fields so a typo'd parameter fails loudly instead of silently running
// the default experiment.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("bad spec: %w", err)
	}
	return s.Normalize()
}
