// The analytical-twin serving tier: sweep specs whose family has a
// closed-form predictor (internal/twin) are answered synchronously in
// microseconds instead of queueing a simulation. The prediction is
// lowered into the same columnar result schema simulated sweeps could
// use, so /result, views, archiving, and manifests all work unchanged;
// the manifest carries tier="twin" plus the validated error bound
// (internal/twin/validate, docs/TWIN.md) as provenance.
package service

import (
	"bytes"
	"fmt"
	"time"

	"impulse/internal/colres"
	"impulse/internal/twin"
	"impulse/internal/twin/validate"
)

// runTwinJob executes an admitted twin-tier job synchronously. The job
// is already registered in-flight, so concurrent identical submissions
// dedup onto it and wait out the microseconds it takes to finish.
func (s *Service) runTwinJob(j *Job) {
	start := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: StateRunning})
	j.trace.Phase("queued", j.submitted, start)

	res, err := executeTwin(j.Spec)

	elapsed := time.Since(start)
	s.hTwinLat.Observe(uint64(elapsed.Microseconds()))
	s.hRunDur.With(j.Spec.Kind).Observe(uint64(elapsed.Microseconds()))
	j.trace.Phase("running", start, time.Now())
	if err != nil {
		s.finishJob(j, StateFailed, nil, err.Error())
	} else {
		s.finishJob(j, StateDone, res, "")
	}
	st := j.Status()
	s.logger.Info("twin job finished", "job", j.ID, "family", j.Spec.Family,
		"state", st.State, "run_us", elapsed.Microseconds())
}

// executeTwin computes a twin prediction and renders it like a finished
// sweep result: text output plus the columnar blob the archive stores.
func executeTwin(spec Spec) (*Result, error) {
	pred, err := twin.Predict(spec.Family, spec.Fast)
	if err != nil {
		return nil, err
	}
	doc := pred.Doc()
	var out bytes.Buffer
	if bound, ok := validate.Bound(spec.Family); ok {
		fmt.Fprintf(&out, "tier=twin (analytical; median cycles error bound %.0f%%, see docs/TWIN.md)\n\n", 100*bound)
	}
	if err := colres.RenderText(doc, &out); err != nil {
		return nil, err
	}
	return &Result{
		Output:   out.Bytes(),
		MIME:     "text/plain; charset=utf-8",
		Columnar: colres.Encode(doc),
	}, nil
}
