// Run-provenance manifests. Every terminal job gets a Manifest: enough
// recorded context to answer "what exactly produced these bytes" months
// later — the canonical spec and its hash, how the harness was
// configured (workers, fast path, trace cache), what each grid cell did
// (recorded, replayed, or executed), how long the job queued and ran,
// digests of the result, and the build that produced it. Served at
// GET /v1/jobs/{id}/manifest.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"impulse/internal/harness"
	"impulse/internal/twin/validate"
)

// CellManifest records one grid cell's passage through the trace cache.
type CellManifest struct {
	// Key is the cell's reference-stream identity (the trace-cache key).
	Key string `json:"key"`
	// Mode is "record", "replay", "replayed-vectorized", or "execute"
	// (see harness.CellEvent).
	Mode string `json:"mode"`
	// DurationUS is the cell's host wall-clock run in microseconds.
	DurationUS int64 `json:"duration_us"`
	// Batch identifies the vectorized replay batch the cell rode in, and
	// BatchSize how many cells shared its decoded trace. Empty/zero for
	// non-vectorized cells.
	Batch     string `json:"batch,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	// DecodeUS is the batch's shared decode cost in microseconds,
	// reported once per batch (on its first replayed cell).
	DecodeUS int64 `json:"decode_us,omitempty"`
}

// BuildInfo identifies the binary that ran the job.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Manifest is a finished job's provenance record. Field order is frozen
// (it is the wire format the golden tests pin); append new fields at the
// end of their section rather than reordering.
type Manifest struct {
	JobID string `json:"job_id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	// The experiment: normalized spec, its canonical encoding, and the
	// hash that keyed single-flight dedup and the result cache.
	Spec      Spec   `json:"spec"`
	Canonical string `json:"canonical"`
	SpecHash  string `json:"spec_hash"`

	// Timing. QueueWaitUS is started-submitted; RunUS is
	// finished-started. Both zero for jobs cancelled while queued.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	QueueWaitUS int64     `json:"queue_wait_us"`
	RunUS       int64     `json:"run_us"`

	// Harness configuration the job ran under. Tier is "twin" for jobs
	// answered by the analytical twin (no simulation ran), in which case
	// TwinErrorBound is the family's validated median-cycles error bound
	// (internal/twin/validate, docs/TWIN.md) — the accuracy contract the
	// instant answer comes with.
	Workers        int     `json:"workers"`
	FastPath       bool    `json:"fast_path"`
	TraceCache     bool    `json:"trace_cache"`
	VectorReplay   bool    `json:"vector_replay"`
	Tier           string  `json:"tier,omitempty"`
	TwinErrorBound float64 `json:"twin_error_bound,omitempty"`

	// Trace-cache outcome per grid cell, sorted by start time (ties by
	// key), plus per-mode totals. Empty for kinds that run no cells
	// through the cache.
	CellsRecorded int            `json:"cells_recorded"`
	CellsReplayed int            `json:"cells_replayed"`
	CellsExecuted int            `json:"cells_executed"`
	Cells         []CellManifest `json:"cells,omitempty"`

	// Result identity: SHA-256 digests of the rendered output and the
	// counter dump, so two runs can be compared without shipping bytes.
	// Grid results also record the columnar blob the archive stores —
	// the digest covers the schema-level result, independent of which
	// view a client fetched.
	OutputBytes    int    `json:"output_bytes"`
	ResultDigest   string `json:"result_digest,omitempty"`
	CountersDigest string `json:"counters_digest,omitempty"`
	ColumnarBytes  int    `json:"columnar_bytes,omitempty"`
	ColumnarDigest string `json:"columnar_digest,omitempty"`

	Build BuildInfo `json:"build"`

	// Recovered marks a job restored from the on-disk result store at
	// daemon startup: the result bytes are yesterday's, served without
	// re-execution, and the timing fields all collapse to the original
	// archive time. (Appended after Build — the frozen wire order above
	// predates restart durability.)
	Recovered bool `json:"recovered,omitempty"`
}

// buildManifest assembles j's manifest. Called once, from finishJob,
// after finalize — the job is terminal and its fields are settled.
func buildManifest(j *Job) *Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := &Manifest{
		JobID:        j.ID,
		State:        j.state,
		Error:        j.errMsg,
		Spec:         j.Spec,
		Canonical:    j.Spec.Canonical(),
		SpecHash:     j.Hash,
		SubmittedAt:  j.submitted,
		StartedAt:    j.started,
		FinishedAt:   j.finished,
		Workers:      harness.Workers(),
		FastPath:     harness.FastPathEnabled(),
		TraceCache:   harness.TraceCacheEnabled(),
		VectorReplay: harness.VectorReplayEnabled(),
		Build:        buildInfo(),
	}
	if j.tier != "" {
		m.Tier = j.tier
		if b, ok := validate.Bound(j.Spec.Family); ok {
			m.TwinErrorBound = b
		}
	}
	if !j.started.IsZero() {
		m.QueueWaitUS = j.started.Sub(j.submitted).Microseconds()
		if !j.finished.IsZero() {
			m.RunUS = j.finished.Sub(j.started).Microseconds()
		}
	}
	cells := append([]harness.CellEvent(nil), j.cells...)
	sort.Slice(cells, func(a, b int) bool {
		if !cells[a].Start.Equal(cells[b].Start) {
			return cells[a].Start.Before(cells[b].Start)
		}
		return cells[a].Key < cells[b].Key
	})
	for _, c := range cells {
		m.Cells = append(m.Cells, CellManifest{
			Key: c.Key, Mode: c.Mode, DurationUS: c.End.Sub(c.Start).Microseconds(),
			Batch: c.Batch, BatchSize: c.BatchSize,
			DecodeUS: c.Decode.Microseconds(),
		})
		switch c.Mode {
		case "record":
			m.CellsRecorded++
		case "replay", "replayed-vectorized":
			m.CellsReplayed++
		default:
			m.CellsExecuted++
		}
	}
	if j.result != nil {
		m.OutputBytes = len(j.result.Output)
		m.ResultDigest = digest(j.result.Output)
		m.CountersDigest = digest(j.result.Counters)
		if len(j.result.Columnar) > 0 {
			m.ColumnarBytes = len(j.result.Columnar)
			m.ColumnarDigest = digest(j.result.Columnar)
		}
	}
	return m
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// buildInfo reads the binary's embedded build metadata once.
func buildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
}
