package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"impulse/internal/colres"
	"impulse/internal/harness"
	"impulse/internal/store"
)

// TestRestartServesArchivedResults is the restart-durability headline:
// a daemon restarted on the same archive directory serves every
// previously completed result byte-identically from disk — cache hits,
// not re-executions — with provenance marking them recovered.
func TestRestartServesArchivedResults(t *testing.T) {
	dir := t.TempDir()
	blob := colres.Encode(testGridDoc())

	s1 := New(Config{Executors: 1, ArchiveDir: dir})
	s1.executeFn = columnarExec(blob)
	gridJob := submitAndWait(t, s1, diagSpec(64))
	gridHash := gridJob.Hash

	// A plain-text (non-columnar) result must survive too.
	s1.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		return &Result{Output: []byte("plain output\n"), Counters: []byte("c 2\n"), MIME: "text/plain"}, nil
	}
	textJob := submitAndWait(t, s1, diagSpec(65))
	textHash := textJob.Hash
	wantGrid := append([]byte(nil), gridJob.Result().Output...)
	wantText := append([]byte(nil), textJob.Result().Output...)
	s1.Close()

	s2 := New(Config{Executors: 1, ArchiveDir: dir})
	s2.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		t.Error("restarted daemon re-executed an archived spec")
		return nil, fmt.Errorf("must not run")
	}
	defer s2.Close()
	if got := s2.cRecovered.Load(); got != 2 {
		t.Fatalf("recovered %d entries, want 2", got)
	}

	// Identical submissions are cache hits on the recovered jobs.
	for _, tc := range []struct {
		spec Spec
		hash string
		want []byte
	}{
		{diagSpec(64), gridHash, wantGrid},
		{diagSpec(65), textHash, wantText},
	} {
		j, deduped, err := s2.Submit(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if !deduped {
			t.Fatalf("spec %s was not a cache hit after restart", tc.hash)
		}
		if j.Hash != tc.hash {
			t.Fatalf("recovered job hash %s, want %s", j.Hash, tc.hash)
		}
		res := j.Result()
		if res == nil || !bytes.Equal(res.Output, tc.want) {
			t.Fatalf("recovered result for %s is not byte-identical", tc.hash)
		}
		m := j.Manifest()
		if m == nil || !m.Recovered {
			t.Errorf("recovered job %s manifest not marked recovered", j.ID)
		}
	}
	if got := s2.cExecuted.Load(); got != 0 {
		t.Errorf("restarted daemon executed %d jobs serving recovered hits, want 0", got)
	}

	// The HTTP surface serves the recovered grid result end to end,
	// including views rendered from the recovered columnar blob.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	j2, _, _ := s2.Submit(diagSpec(64))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, wantGrid) {
		t.Fatalf("recovered result over HTTP: status %d, %d bytes", resp.StatusCode, len(body))
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + j2.ID + "/result?view=json")
	if err != nil {
		t.Fatal(err)
	}
	view, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var wantJSON bytes.Buffer
	if err := colres.WriteGridJSON(testGridDoc(), &wantJSON); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Equal(view, wantJSON.Bytes()) {
		t.Fatalf("recovered json view: status %d, body differs", resp.StatusCode)
	}
}

// TestRestartIgnoresCrashOrphans pins the service half of the
// mid-archive crash story: a daemon that died between temp-file write
// and rename leaves an orphan the next startup must neither serve nor
// keep — startup GC unlinks it — while complete entries keep serving.
func TestRestartIgnoresCrashOrphans(t *testing.T) {
	dir := t.TempDir()
	blob := colres.Encode(testGridDoc())
	s1 := New(Config{Executors: 1, ArchiveDir: dir})
	s1.executeFn = columnarExec(blob)
	j := submitAndWait(t, s1, diagSpec(64))
	want := append([]byte(nil), j.Result().Output...)
	hash := j.Hash
	s1.Close()

	// The crash shapes: an un-renamed temp file and a sidecar-less blob.
	orphanTmp := filepath.Join(dir, "deadbeef.tmp-42")
	orphanBlob := filepath.Join(dir, "deadbeef"+store.BlobExt)
	if err := os.WriteFile(orphanTmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphanBlob, []byte("no-sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Executors: 1, ArchiveDir: dir})
	defer s2.Close()
	if got := s2.cRecovered.Load(); got != 1 {
		t.Fatalf("recovered %d entries, want 1 (orphans must not be trusted)", got)
	}
	for _, p := range []string{orphanTmp, orphanBlob} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("startup GC left orphan %s on disk", filepath.Base(p))
		}
	}
	j2, deduped, err := s2.Submit(diagSpec(64))
	if err != nil || !deduped {
		t.Fatalf("complete entry not served after crash-restart (deduped=%v err=%v)", deduped, err)
	}
	if res := j2.Result(); res == nil || !bytes.Equal(res.Output, want) {
		t.Fatalf("hash %s not byte-identical after crash-restart", hash)
	}
}

// TestRecoveryRespectsCacheBounds: more archived entries than CacheSize
// must not balloon the restarted daemon — the oldest are evicted (and
// their files removed) just as if they had aged out live.
func TestRecoveryRespectsCacheBounds(t *testing.T) {
	dir := t.TempDir()
	blob := colres.Encode(testGridDoc())
	s1 := New(Config{Executors: 1, ArchiveDir: dir, CacheSize: 100})
	s1.executeFn = columnarExec(blob)
	for i := 0; i < 5; i++ {
		submitAndWait(t, s1, diagSpec(200+i))
	}
	s1.Close()

	s2 := New(Config{Executors: 1, ArchiveDir: dir, CacheSize: 3})
	defer s2.Close()
	s2.mu.Lock()
	entries := s2.archive.Len()
	s2.mu.Unlock()
	if entries != 3 {
		t.Fatalf("restarted LRU holds %d entries, want 3 (CacheSize)", entries)
	}
	// The newest three survived; the oldest two are gone from disk too.
	files, _ := filepath.Glob(filepath.Join(dir, "*"+store.BlobExt))
	if len(files) != 3 {
		t.Errorf("%d blob files on disk after bounded recovery, want 3", len(files))
	}
}
