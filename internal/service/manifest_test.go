package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestManifestAndTraceEndpoints drives a stubbed job through its
// lifecycle and checks the provenance manifest and Perfetto timeline it
// leaves behind: field content, JSON round-trip stability, and the HTTP
// surfaces serving them.
func TestManifestAndTraceEndpoints(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", resp.Status, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	<-stub.started

	// Manifest of a pending job: 202 + Retry-After.
	mr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mr.Body)
	mr.Body.Close()
	if mr.StatusCode != http.StatusAccepted || mr.Header.Get("Retry-After") == "" {
		t.Fatalf("pending manifest: %s", mr.Status)
	}

	// A duplicate submission while running leaves a dedup mark on the
	// shared job's timeline.
	postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)

	close(stub.release)
	mr2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/manifest?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr2.Body)
	mr2.Body.Close()
	if mr2.StatusCode != http.StatusOK {
		t.Fatalf("manifest: %s %s", mr2.Status, mb)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatalf("manifest JSON invalid: %v\n%s", err, mb)
	}
	wantDigest := sha256.Sum256([]byte("stub output\n"))
	switch {
	case m.JobID != st.ID:
		t.Errorf("manifest job id = %q, want %q", m.JobID, st.ID)
	case m.State != StateDone:
		t.Errorf("manifest state = %q", m.State)
	case m.SpecHash != st.Hash || m.Canonical != m.Spec.Canonical():
		t.Errorf("manifest hash/canonical mismatch: %+v", m)
	case m.RunUS <= 0 || m.QueueWaitUS < 0:
		t.Errorf("manifest timings: queue=%d run=%d", m.QueueWaitUS, m.RunUS)
	case m.ResultDigest != hex.EncodeToString(wantDigest[:]):
		t.Errorf("result digest = %q", m.ResultDigest)
	case m.OutputBytes != len("stub output\n"):
		t.Errorf("output bytes = %d", m.OutputBytes)
	case m.Build.GoVersion == "":
		t.Error("manifest missing go version")
	case m.Workers < 1:
		t.Errorf("manifest workers = %d", m.Workers)
	}
	if m.SubmittedAt.IsZero() || m.StartedAt.IsZero() || m.FinishedAt.IsZero() {
		t.Errorf("manifest timestamps not set: %+v", m)
	}

	// Round-trip: unmarshal → marshal reproduces the same document
	// (stable field order and no lossy types).
	remb, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Manifest
	if err := json.Unmarshal(remb, &m2); err != nil {
		t.Fatal(err)
	}
	remb2, _ := json.Marshal(&m2)
	if string(remb) != string(remb2) {
		t.Errorf("manifest does not round-trip:\n%s\nvs\n%s", remb, remb2)
	}

	// Timeline: valid trace-event JSON with the lifecycle on the job
	// track, including the dedup instant.
	tr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(tr.Body)
	tct := tr.Header.Get("Content-Type")
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK || tct != "application/json" {
		t.Fatalf("trace: %s %q", tr.Status, tct)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, tb)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"submitted", "queued", "running", "archived", "dedup"} {
		if !seen[want] {
			t.Errorf("trace missing %q event:\n%s", want, tb)
		}
	}

	// Job histograms populated: one diag job through queue-wait and
	// run-duration, labeled by kind.
	pb := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`service_job_queue_wait_us_count{kind="sim"} 1`,
		`service_job_run_duration_us_count{kind="sim"} 1`,
	} {
		if !strings.Contains(pb, want) {
			t.Errorf("metrics missing %q:\n%s", want, pb)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestManifestCancelledWhileQueued: a job that never ran still gets a
// manifest (zero run time, no result digests) and a coherent timeline.
func TestManifestCancelledWhileQueued(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	// First job occupies the single executor; the second stays queued.
	j1, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	j2, _, err := s.Submit(diagSpec(513))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	m := j2.Manifest()
	if m == nil {
		t.Fatal("cancelled job has no manifest")
	}
	if m.State != StateCancelled || m.RunUS != 0 || m.ResultDigest != "" {
		t.Errorf("cancelled manifest: %+v", m)
	}
	if !m.StartedAt.IsZero() {
		t.Errorf("cancelled-while-queued job has started_at %v", m.StartedAt)
	}
	close(stub.release)
	select {
	case <-j1.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 did not finish")
	}
	if j1.Manifest() == nil {
		t.Error("finished job has no manifest")
	}
}
