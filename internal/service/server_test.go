package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"impulse/internal/harness"
)

func postSpec(t *testing.T, ts *httptest.Server, spec string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", resp.Status, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	<-stub.started

	// Duplicate submission: 200 (not 202), same job, deduped flag set.
	resp2, body2 := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || st2.ID != st.ID || !st2.Deduped {
		t.Fatalf("dedup: %s id=%s deduped=%v (want 200, %s, true)", resp2.Status, st2.ID, st2.Deduped, st.ID)
	}

	// Result before completion: 202 + Retry-After.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusAccepted || rr.Header.Get("Retry-After") == "" {
		t.Fatalf("pending result: %s retry-after=%q", rr.Status, rr.Header.Get("Retry-After"))
	}

	close(stub.release)
	// Long-poll picks the result up as soon as the job lands.
	rr2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rr2.Body)
	rr2.Body.Close()
	if rr2.StatusCode != http.StatusOK || string(got) != "stub output\n" {
		t.Fatalf("result: %s %q", rr2.Status, got)
	}
	if h := rr2.Header.Get("X-Impulse-Spec-Hash"); h != st.Hash {
		t.Errorf("result hash header = %q, want %q", h, st.Hash)
	}

	// Counters endpoint serves the registry dump.
	cr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK || string(cb) != "c 1\n" {
		t.Fatalf("counters: %s %q", cr.Status, cb)
	}

	// Unknown job: 404.
	nr, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nr.Body)
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %s", nr.Status)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 1, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	<-stub.started
	postSpec(t, ts, `{"kind":"sim","workload":"diag","n":513}`)
	resp, body := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":514}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %s %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(stub.release)
}

func TestHTTPBadSpecs(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, spec := range []string{
		`not json`,
		`{"kind":"nope"}`,
		`{"kind":"table1","bogus":true}`,
		`{"kind":"table1","n":4}`, // out of range
	} {
		resp, body := postSpec(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: %s %s, want 400", spec, resp.Status, body)
		}
	}
}

func TestHTTPCancelAndSSE(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	<-stub.started

	// Tail the SSE stream while cancelling the job out from under it.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}

	cr, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cr.Body)
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", cr.Status)
	}

	// The stream must terminate with a "cancelled" state event.
	var states []string
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Type == "state" {
			states = append(states, string(ev.State))
		}
	}
	if len(states) == 0 || states[len(states)-1] != "cancelled" {
		t.Fatalf("SSE states = %v, want trailing \"cancelled\"", states)
	}

	// Result of a cancelled job: 410.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusGone {
		t.Fatalf("cancelled result: %s, want 410", rr.Status)
	}
}

func TestHTTPMetricsAndHealthz(t *testing.T) {
	s := New(Config{QueueDepth: 7, Executors: 3})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !bytes.Contains(hb, []byte(`"status": "ok"`)) {
		t.Fatalf("healthz: %s %s", hr.Status, hb)
	}

	// Default exposition is Prometheus: typed families, sanitized names.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	ct := mr.Header.Get("Content-Type")
	mr.Body.Close()
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE service_jobs_submitted counter",
		"# TYPE service_jobs_running gauge",
		"# TYPE service_http_request_duration_us histogram",
		"service_jobs_submitted 0",
		"service_jobs_executed 0",
		"service_queue_capacity 7",
		"service_executors 3",
		`service_http_request_duration_us_bucket{endpoint="healthz",le="+Inf"} 1`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}

	// The legacy plain dump stays available for scripts and impulsectl.
	pr, err := http.Get(ts.URL + "/metrics?format=plain")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	for _, want := range []string{
		"service.jobs_submitted 0",
		"service.jobs_executed 0",
		"service.queue_capacity 7",
		"service.executors 3",
	} {
		if !strings.Contains(string(pb), want) {
			t.Errorf("plain metrics missing %q:\n%s", want, pb)
		}
	}
}

// execDirect replicates what the CLIs do for the differential tests: run
// the harness call directly with a fresh registry-collecting sink and
// render to text, without going through the service at all.
func execDirect(t *testing.T, spec Spec) ([]byte, []byte) {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), norm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Output, res.Counters
}

// TestDifferentialEligibleFamily: a service job for a trace-cache
// eligible family (Table 1) returns bytes identical to the direct
// harness run — through HTTP, with ≥8 concurrent identical submissions
// resolving to exactly one harness execution.
func TestDifferentialEligibleFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real CG grid")
	}
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()

	spec := Spec{Kind: "table1", N: 240, Nonzer: 4, Niter: 1, CGIts: 2}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantCtr := func() ([]byte, []byte) {
		res, err := Execute(context.Background(), norm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output, res.Counters
	}()

	harness.ResetTraceCache() // the service run must not reuse the direct run's traces

	s := New(Config{QueueDepth: 16, Executors: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(spec)
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submissions split across jobs %s and %s", ids[0], ids[i])
		}
	}

	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[i] + "/result?wait=120s")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("result %d: %s %s", i, resp.Status, b)
				return
			}
			results[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("submission %d got different bytes", i)
		}
	}
	if !bytes.Equal(results[0], wantOut) {
		t.Errorf("service output differs from direct harness run\n--- service ---\n%s--- direct ---\n%s", results[0], wantOut)
	}
	if got := s.cExecuted.Load(); got != 1 {
		t.Errorf("%d concurrent submissions caused %d executions, want 1", n, got)
	}

	cr, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	gotCtr, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	if !bytes.Equal(gotCtr, wantCtr) {
		t.Errorf("service counters differ from direct run (%d vs %d bytes)", len(gotCtr), len(wantCtr))
	}

	// Provenance: Table 1 is 3 sections x 4 prefetch columns sharing one
	// stream per section — the manifest must show 3 recordings and 9
	// replays, every cell timed.
	mrr, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	mBody, _ := io.ReadAll(mrr.Body)
	mrr.Body.Close()
	var man Manifest
	if err := json.Unmarshal(mBody, &man); err != nil {
		t.Fatalf("manifest: %v\n%s", err, mBody)
	}
	if man.CellsRecorded != 3 || man.CellsReplayed != 9 || man.CellsExecuted != 0 || len(man.Cells) != 12 {
		t.Errorf("manifest cells: recorded=%d replayed=%d executed=%d total=%d, want 3/9/0/12",
			man.CellsRecorded, man.CellsReplayed, man.CellsExecuted, len(man.Cells))
	}
	for _, c := range man.Cells {
		if c.DurationUS < 0 || c.Key == "" {
			t.Errorf("bad cell manifest entry: %+v", c)
		}
	}
}

// TestDifferentialIneligibleFamily: same contract for a family the trace
// cache cannot help (figure1's diagonal sweep executes per-cell), so the
// execute-every-cell path is covered too.
func TestDifferentialIneligibleFamily(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	spec := Spec{Kind: "figure1", Dim: 64, Sweeps: 2}
	wantOut, wantCtr := execDirect(t, spec)

	s := New(Config{QueueDepth: 4, Executors: 1})
	defer s.Close()
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("figure1 job did not finish")
	}
	res := j.Result()
	if res == nil {
		t.Fatalf("job failed: %+v", j.Status())
	}
	if !bytes.Equal(res.Output, wantOut) {
		t.Errorf("service figure1 output differs from direct run\n--- service ---\n%s--- direct ---\n%s", res.Output, wantOut)
	}
	if !bytes.Equal(res.Counters, wantCtr) {
		t.Errorf("service figure1 counters differ from direct run")
	}
	if len(wantOut) == 0 {
		t.Error("figure1 produced no output")
	}
}

// TestConcurrentDistinctJobs: two different specs run concurrently on
// two executors without crosstalk between their row sinks — each job's
// counters describe its own run only.
func TestConcurrentDistinctJobs(t *testing.T) {
	harness.ResetTraceCache()
	defer harness.ResetTraceCache()
	s := New(Config{QueueDepth: 8, Executors: 2})
	defer s.Close()

	ja, _, err := s.Submit(Spec{Kind: "sim", Workload: "diag", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	jb, _, err := s.Submit(Spec{Kind: "sim", Workload: "ipc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{ja, jb} {
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s did not finish", j.ID)
		}
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s: %+v", j.ID, st)
		}
	}
	a, b := ja.Result(), jb.Result()
	if bytes.Equal(a.Output, b.Output) {
		t.Error("distinct workloads produced identical output")
	}
	// Each matches its own serial re-run exactly (no cross-job row leaks).
	for _, tc := range []struct {
		j    *Job
		spec Spec
	}{{ja, Spec{Kind: "sim", Workload: "diag", N: 64}}, {jb, Spec{Kind: "sim", Workload: "ipc"}}} {
		wantOut, wantCtr := execDirect(t, tc.spec)
		if !bytes.Equal(tc.j.Result().Output, wantOut) {
			t.Errorf("job %s output differs from serial run", tc.j.ID)
		}
		if !bytes.Equal(tc.j.Result().Counters, wantCtr) {
			t.Errorf("job %s counters differ from serial run", tc.j.ID)
		}
	}
}

// TestHTTPDrainRejectsClearly: during drain, submissions get an explicit
// 503 with a machine-readable error, and healthz flips to draining.
func TestHTTPDrainRejectsClearly(t *testing.T) {
	s := New(Config{QueueDepth: 4, Executors: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := postSpec(t, ts, `{"kind":"sim","workload":"diag","n":512}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %s %s, want 503", resp.Status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "draining") {
		t.Errorf("drain error body = %s", body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(hb, []byte("draining")) {
		t.Errorf("healthz during drain: %s %s", hr.Status, hb)
	}
}
