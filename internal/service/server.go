package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"impulse/internal/colres"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/twin"
	"impulse/internal/twin/validate"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs                submit a spec (JSON body; tier=twin answers eligible sweeps instantly)
//	POST /v1/predict             answer a sweep spec from its analytical twin, synchronously
//	                             (422 + registry reason when the family has no twin; docs/TWIN.md)
//	GET  /v1/jobs                list tracked jobs
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/result    result bytes (202 + Retry-After while pending; ?wait=30s long-polls;
//	                             ?view=columnar|json|text|svg renders that view from the columnar blob)
//	GET  /v1/jobs/{id}/counters  the job's counter-registry dump
//	GET  /v1/jobs/{id}/trace     the job's Perfetto/Chrome timeline JSON
//	GET  /v1/jobs/{id}/manifest  the job's provenance manifest (202 while pending; ?wait long-polls)
//	POST /v1/jobs/{id}/cancel    cancel a queued or running job
//	GET  /v1/jobs/{id}/events    live progress (Server-Sent Events)
//	GET  /healthz                liveness + drain state
//	GET  /readyz                 readiness: not draining, queue accepting work, archive writable
//	GET  /metrics                Prometheus text exposition (?format=plain for "name value" lines)
//	GET  /debug/pprof/           Go runtime profiles (see docs/PERF.md)
//
// Every non-pprof endpoint is instrumented: request latency lands in the
// service.http_request_duration_us histogram labeled by endpoint, and
// service.http_in_flight counts requests being served.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		hist := s.hHTTP.With(endpoint)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.gHTTPInFlight.Add(1)
			start := time.Now()
			defer func() {
				s.gHTTPInFlight.Add(^uint64(0))
				hist.Observe(uint64(time.Since(start).Microseconds()))
			}()
			h(w, r)
		})
	}
	route("POST /v1/jobs", "submit", s.handleSubmit)
	route("POST /v1/predict", "predict", s.handlePredict)
	route("GET /v1/jobs", "list", s.handleList)
	route("GET /v1/jobs/{id}", "status", s.handleStatus)
	route("GET /v1/jobs/{id}/result", "result", s.handleResult)
	route("GET /v1/jobs/{id}/counters", "counters", s.handleCounters)
	route("GET /v1/jobs/{id}/trace", "trace", s.handleTrace)
	route("GET /v1/jobs/{id}/manifest", "manifest", s.handleManifest)
	route("POST /v1/jobs/{id}/cancel", "cancel", s.handleCancel)
	route("GET /v1/jobs/{id}/events", "events", s.handleEvents)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	route("GET /metrics", "metrics", obs.MetricsHandler(&s.reg).ServeHTTP)
	// Profiling endpoints: the daemon is where long sweeps run, so being
	// able to grab a CPU or heap profile from a live instance is how the
	// fast-path work in internal/sim gets found and verified.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, deduped, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := job.Status()
	st.Deduped = deduped
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Service) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q (finished jobs are evicted after %d newer ones)", id, s.cfg.CacheSize)
		return nil, false
	}
	return j, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// waitFor blocks until the job is terminal, the optional ?wait duration
// elapses, or the client goes away. Returns true when terminal.
func waitFor(j *Job, r *http.Request) bool {
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		select {
		case <-j.Done():
			return true
		default:
			return false
		}
	}
	d, err := time.ParseDuration(waitStr)
	if err != nil || d < 0 {
		d = 0
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.Done():
		return true
	case <-t.C:
		return false
	case <-r.Context().Done():
		return false
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if !waitFor(j, r) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone:
		res := j.Result()
		w.Header().Set("X-Impulse-Job", j.ID)
		w.Header().Set("X-Impulse-Spec-Hash", j.Hash)
		if view := r.URL.Query().Get("view"); view != "" {
			s.writeResultView(w, res, view)
			return
		}
		w.Header().Set("Content-Type", res.MIME)
		// For columnar results Output aliases the memory-mapped archive
		// blob: this write copies file-backed pages to the socket with no
		// decode, no re-encode, and no intermediate heap buffer.
		_, _ = w.Write(res.Output)
		// Pin res until the write returns: the slice header alone does
		// not keep the mapping's finalizer from running (the GC does not
		// trace the mmap'd region), and Write can block for seconds on a
		// slow client.
		runtime.KeepAlive(res)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job %s failed: %s", j.ID, st.Error)
	case StateCancelled:
		writeError(w, http.StatusGone, "job %s was cancelled", j.ID)
	}
}

// writeResultView materializes one view of a finished job's columnar
// result on demand: "columnar" writes the mapped blob bytes verbatim;
// "json", "text", and "svg" decode the columns and render. Views exist
// only for grid results (kinds table1/table2) — other kinds have no
// columnar payload.
func (s *Service) writeResultView(w http.ResponseWriter, res *Result, view string) {
	// Keep the Result — and the mapped archive blob backing Columnar —
	// alive for the duration of every decode and write below; without
	// this pin the blob's munmap finalizer may run mid-write once res
	// itself is no longer referenced (precise liveness, see archive.go).
	defer runtime.KeepAlive(res)
	if len(res.Columnar) == 0 {
		writeError(w, http.StatusBadRequest, "result has no columnar payload (views need kind table1 or table2)")
		return
	}
	if view == "columnar" {
		w.Header().Set("Content-Type", colres.ContentType)
		_, _ = w.Write(res.Columnar)
		return
	}
	doc, err := colres.Decode(res.Columnar)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "decoding archived result: %v", err)
		return
	}
	switch view {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = colres.WriteGridJSON(doc, w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = colres.RenderText(doc, w)
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		_ = harness.SpeedupChartDoc(doc, w)
	default:
		writeError(w, http.StatusBadRequest, "unknown view %q (columnar|json|text|svg)", view)
	}
}

func (s *Service) handleCounters(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if !waitFor(j, r) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	res := j.Result()
	if res == nil {
		st := j.Status()
		writeError(w, http.StatusGone, "job %s is %s: %s", j.ID, st.State, st.Error)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(res.Counters)
}

// handleTrace serves the job's Perfetto/Chrome trace-event timeline.
// Always available (a running job yields its timeline so far); load the
// JSON in ui.perfetto.dev or chrome://tracing.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Impulse-Job", j.ID)
	_ = j.Trace().WriteJSON(w)
}

// handleManifest serves the job's provenance manifest; like /result it
// answers 202 + Retry-After while the job is pending (?wait long-polls).
func (s *Service) handleManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if !waitFor(j, r) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	m := j.Manifest()
	if m == nil {
		writeError(w, http.StatusInternalServerError, "job %s has no manifest", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.ID); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEv := func(ev Event) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	}
	replay, ch, unsub := j.Subscribe()
	defer unsub()
	for _, ev := range replay {
		writeEv(ev)
	}
	if canFlush {
		fl.Flush()
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			writeEv(ev)
			if canFlush {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handlePredict answers a sweep spec from its analytical twin,
// synchronously, without creating a job: the instant tier's stateless
// endpoint. The response carries the prediction as grid JSON plus the
// tier and validated error-bound provenance; families without a twin get
// 422 with the eligibility registry's documented reason.
func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Kind == "" {
		spec.Kind = "sweep"
	}
	spec.Tier = TierTwin
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cTwinRequests.Add(1)
	if reason, ok := twin.Eligible(norm.Family); !ok {
		s.cTwinIneligible.Add(1)
		writeError(w, http.StatusUnprocessableEntity,
			"family %q has no analytical twin: %s (submit without tier to simulate)", norm.Family, reason)
		return
	}
	start := time.Now()
	pred, err := twin.Predict(norm.Family, norm.Fast)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	elapsed := time.Since(start)
	s.hTwinLat.Observe(uint64(elapsed.Microseconds()))

	var grid bytes.Buffer
	if err := colres.WriteGridJSON(pred.Doc(), &grid); err != nil {
		writeError(w, http.StatusInternalServerError, "rendering prediction: %v", err)
		return
	}
	bound, _ := validate.Bound(norm.Family)
	w.Header().Set("X-Impulse-Tier", TierTwin)
	writeJSON(w, http.StatusOK, map[string]any{
		"family":      norm.Family,
		"fast":        norm.Fast,
		"tier":        TierTwin,
		"error_bound": bound,
		"elapsed_us":  elapsed.Microseconds(),
		"grid":        json.RawMessage(bytes.TrimSpace(grid.Bytes())),
	})
}

// handleReadyz is the readiness probe: liveness (/healthz) says the
// process is up, readiness says it can actually take and persist work —
// not draining, bounded queue has room, and the result archive accepts
// writes. Load balancers should gate traffic on this one.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{}
	ready := true
	fail := func(name, why string) { checks[name] = why; ready = false }

	switch {
	case s.Draining():
		fail("queue", "draining")
	case len(s.queue) >= s.cfg.QueueDepth:
		fail("queue", "full")
	default:
		checks["queue"] = "ok"
	}
	switch {
	case s.arch == nil:
		fail("archive", "unavailable (results would not persist)")
	default:
		if err := s.arch.Writable(); err != nil {
			fail("archive", err.Error())
		} else {
			checks["archive"] = "ok"
		}
	}
	code := http.StatusOK
	status := "ready"
	if !ready {
		code = http.StatusServiceUnavailable
		status = "not ready"
	}
	writeJSON(w, code, map[string]any{"status": status, "checks": checks})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_seconds": int(time.Since(s.start).Seconds()),
		"queue_depth":    len(s.queue),
		"queue_capacity": s.cfg.QueueDepth,
		"running":        s.gRunning.Load(),
		"executors":      s.cfg.Executors,
	})
}
