package service

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"impulse/internal/colres"
	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/obs"
	"impulse/internal/store"
	"impulse/internal/workloads"
)

// jobTraceKey carries the owning job's timeline through Execute, so the
// render phase (grid → bytes) shows up on the job track. Nil outside the
// service (direct Execute calls, CLIs); every JobTrace method is
// nil-safe.
type jobTraceKey struct{}

func withJobTrace(ctx context.Context, t *obs.JobTrace) context.Context {
	return context.WithValue(ctx, jobTraceKey{}, t)
}

func jobTraceFrom(ctx context.Context) *obs.JobTrace {
	t, _ := ctx.Value(jobTraceKey{}).(*obs.JobTrace)
	return t
}

// Result is a finished job's payload: the experiment's rendered output
// (byte-identical to the equivalent CLI invocation) plus the counter
// registry dump for every row the run measured (byte-identical to the
// CLIs' -counters output). Grid kinds additionally carry Columnar, the
// encoded columnar result blob the archive stores and every view is
// rendered from; once archived, Columnar (and, for format "columnar",
// Output) alias the memory-mapped blob file.
type Result struct {
	Output   []byte
	Counters []byte
	MIME     string
	Columnar []byte

	// blob pins the mapped store blob backing Columnar/Output, so the
	// pages cannot be reclaimed while any reader holds this Result.
	// Holding means *live*, not in scope: a reader that has loaded
	// Columnar/Output and no longer touches the Result itself must
	// runtime.KeepAlive it past the last use of those bytes, or the
	// blob's munmap finalizer can run under the read (see
	// internal/store's package comment).
	blob *store.Blob
}

// rowChunkKey carries the service's per-cell SSE emitter through
// Execute: the harness row sink tees each finished row into it as an
// encoded columnar row chunk. Nil outside a daemon job.
type rowChunkKey struct{}

func withRowChunkSink(ctx context.Context, emit func(label string, chunk []byte)) context.Context {
	return context.WithValue(ctx, rowChunkKey{}, emit)
}

func rowChunkSinkFrom(ctx context.Context) func(label string, chunk []byte) {
	f, _ := ctx.Value(rowChunkKey{}).(func(label string, chunk []byte))
	return f
}

// chunkRow lowers one measured row to its columnar chunk form.
func chunkRow(r core.Row) colres.Row {
	h := &r.Stats.LoadLatency
	return colres.Row{
		Label:    r.Label,
		Cycles:   r.Cycles,
		Loads:    r.Stats.Loads,
		Stores:   r.Stats.Stores,
		BusBytes: r.Stats.BusBytes,
		P50:      h.Percentile(50),
		P95:      h.Percentile(95),
		P99:      h.Percentile(99),
		L1:       r.L1Ratio,
		L2:       r.L2Ratio,
		Mem:      r.MemRatio,
		AvgLoad:  r.AvgLoad,
	}
}

// Execute runs one normalized spec under ctx and returns its result.
// Each call collects rows into its own registry through a per-call row
// sink, so any number of Executes can run concurrently in one process —
// they share only the harness trace cache and worker-pool width, both
// of which are concurrency-safe by design.
func Execute(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
	var reg obs.Registry
	collect := core.CollectRows(&reg)
	sink := collect
	if emit := rowChunkSinkFrom(ctx); emit != nil {
		sink = func(r core.Row) {
			collect(r)
			emit(r.Label, colres.EncodeRow(chunkRow(r)))
		}
	}
	ctx = harness.WithRowSink(ctx, sink)

	var out bytes.Buffer
	mime := "text/plain; charset=utf-8"
	var err error
	var grid *harness.Grid // set by the table kinds; rendered below
	switch spec.Kind {
	case "table1":
		par := workloads.CGParams{N: spec.N, Nonzer: spec.Nonzer, Niter: spec.Niter,
			CGIts: spec.CGIts, Shift: spec.Shift, RCond: spec.RCond}
		grid, err = harness.Table1(ctx, par, progress)
	case "table2":
		par := workloads.MMPParams{N: spec.N, Tile: spec.Tile}
		grid, err = harness.Table2(ctx, par, progress)
	case "figure1":
		err = harness.Figure1(ctx, spec.Dim, spec.Sweeps, &out)
	case "sweep":
		err = harness.RunFamily(ctx, spec.Family, spec.Fast, &out)
	case "sim":
		err = runSim(ctx, spec, &out, sink)
	default:
		err = fmt.Errorf("unknown kind %q", spec.Kind)
	}
	var columnar []byte
	if err == nil && grid != nil {
		// Encode the columns once — the write-once moment of the result
		// pipeline — then materialize the requested view *from the blob*,
		// so the production path exercises exactly what a later lazy view
		// of the archived bytes will run (the goldens pin both views
		// byte-identical to the pre-columnar renderings).
		renderStart := time.Now()
		columnar = grid.Columnar()
		mime, err = writeGridView(&out, columnar, spec.Format)
		jobTraceFrom(ctx).Phase("render", renderStart, time.Now())
	}
	if err != nil {
		return nil, err
	}
	var counters bytes.Buffer
	if err := reg.WriteText(&counters); err != nil {
		return nil, err
	}
	return &Result{Output: out.Bytes(), Counters: counters.Bytes(), MIME: mime, Columnar: columnar}, nil
}

// writeGridView renders one view of an encoded columnar blob. Format
// "columnar" is the blob itself — the zero-re-encode wire form.
func writeGridView(out *bytes.Buffer, blob []byte, format string) (string, error) {
	if format == "columnar" {
		_, err := out.Write(blob)
		return colres.ContentType, err
	}
	doc, err := colres.Decode(blob)
	if err != nil {
		return "", fmt.Errorf("service: decoding freshly encoded result: %w", err)
	}
	if format == "json" {
		return "application/json", colres.WriteGridJSON(doc, out)
	}
	return "text/plain; charset=utf-8", colres.RenderText(doc, out)
}

// runSim mirrors cmd/impulse-sim's single-configuration runs (the
// cg/mmp/diag/ipc workloads), printing the exact output format that
// command prints so results compare 1:1.
func runSim(ctx context.Context, spec Spec, out *bytes.Buffer, collect func(core.Row)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var pf core.PrefetchPolicy
	switch spec.Prefetch {
	case "none":
		pf = core.PrefetchNone
	case "mc":
		pf = core.PrefetchMC
	case "l1":
		pf = core.PrefetchL1
	case "both":
		pf = core.PrefetchBoth
	}
	newSystem := func(kind core.ControllerKind) (*core.System, error) {
		return core.NewSystem(core.Options{Controller: kind, Prefetch: pf, RowObserver: collect})
	}
	pfWantsImpulse := pf == core.PrefetchMC || pf == core.PrefetchBoth

	switch spec.Workload {
	case "cg":
		par := workloads.CGParams{N: spec.N, Nonzer: workloads.CGPaperGeometry().Nonzer,
			Niter: spec.Niter, CGIts: spec.CGIts,
			Shift: workloads.CGPaperGeometry().Shift, RCond: workloads.CGPaperGeometry().RCond}
		var mode workloads.CGMode
		kind := core.Impulse
		switch spec.Mode {
		case "conventional":
			mode = workloads.CGConventional
			if !pfWantsImpulse {
				kind = core.Conventional
			}
		case "sg":
			mode = workloads.CGScatterGather
		case "recolor":
			mode = workloads.CGRecolor
		}
		s, err := newSystem(kind)
		if err != nil {
			return err
		}
		m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
		res, err := workloads.RunCG(s, par, mode, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%v\nzeta=%.13f rnorm=%.3e nnz=%d\n", res.Row, res.Zeta, res.RNorm, res.NNZ)
	case "mmp":
		par := workloads.MMPParams{N: spec.N, Tile: spec.Tile}
		var mode workloads.MMPMode
		kind := core.Conventional
		switch spec.Mode {
		case "nocopy":
			mode = workloads.MMPNoCopyTiled
		case "copy":
			mode = workloads.MMPCopyTiled
		case "remap":
			mode = workloads.MMPTileRemap
			kind = core.Impulse
		}
		if pfWantsImpulse {
			kind = core.Impulse
		}
		s, err := newSystem(kind)
		if err != nil {
			return err
		}
		res, err := workloads.RunMMP(s, par, mode)
		if err != nil {
			return err
		}
		status := "ok"
		if res.Checksum != workloads.RefMMP(par) {
			status = "MISMATCH"
		}
		fmt.Fprintf(out, "%v\nchecksum=%v (%s)\n", res.Row, res.Checksum, status)
	case "diag":
		useImpulse := spec.Mode == "impulse"
		kind := core.Conventional
		if useImpulse || pfWantsImpulse {
			kind = core.Impulse
		}
		s, err := newSystem(kind)
		if err != nil {
			return err
		}
		res, err := workloads.RunDiagonal(s, spec.N, 4, useImpulse)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res)
	case "ipc":
		useImpulse := spec.Mode == "impulse"
		kind := core.Conventional
		if useImpulse || pfWantsImpulse {
			kind = core.Impulse
		}
		s, err := newSystem(kind)
		if err != nil {
			return err
		}
		res, err := workloads.RunIPC(s, 16, 128, 8, useImpulse)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%v\nchecksum=%v\n", res.Row, res.Checksum)
	default:
		return fmt.Errorf("unknown sim workload %q", spec.Workload)
	}
	return nil
}
