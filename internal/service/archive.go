// The on-disk result archive: one columnar blob per cached spec hash,
// memory-mapped back into the daemon so a cache hit writes the mapped
// bytes straight to the HTTP response — no deserialization, no
// re-encode, no heap copy of the payload on the hot path. Blobs are
// written via temp-file + rename (a crash never leaves a torn blob
// visible) and unlinked on eviction; established mappings stay valid
// until the last referencing Result is garbage collected, at which
// point a finalizer releases the pages. Because collection follows
// precise liveness — not lexical scope — any code writing blob-backed
// bytes must runtime.KeepAlive the Result after the write.
package service

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

// mappedBlob is one archived result blob. Data aliases the mapping when
// mapped is true (read-only pages; writing through it faults), or a
// private heap copy on platforms without mmap support.
type mappedBlob struct {
	data   []byte
	mapped bool
	path   string
	unmap  func() // non-nil iff mapped
}

// blobArchive owns the archive directory and the live mappings.
type blobArchive struct {
	dir string
	own bool // dir was created by us; Close removes it

	mu    sync.Mutex
	blobs map[string]*mappedBlob // spec hash -> current blob
}

// openBlobArchive opens (or creates) the archive at dir; an empty dir
// gets a private temporary directory the archive removes on Close.
func openBlobArchive(dir string) (*blobArchive, error) {
	own := false
	if dir == "" {
		d, err := os.MkdirTemp("", "impulsed-archive-")
		if err != nil {
			return nil, err
		}
		dir, own = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &blobArchive{dir: dir, own: own, blobs: make(map[string]*mappedBlob)}, nil
}

func (a *blobArchive) blobPath(hash string) string {
	return filepath.Join(a.dir, hash+".impres")
}

// Writable probes that the archive directory still accepts writes (the
// readiness check: a full or read-only disk should pull the daemon out
// of rotation before jobs start failing to persist results).
func (a *blobArchive) Writable() error {
	f, err := os.CreateTemp(a.dir, ".readyz-probe-")
	if err != nil {
		return fmt.Errorf("archive not writable: %v", err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// Put durably stores blob under hash and returns it mapped. An existing
// blob for the hash is replaced (its mapping stays valid for readers
// still holding it). On platforms without mmap the returned blob keeps
// the caller's bytes in memory; serving still skips re-encoding.
func (a *blobArchive) Put(hash string, blob []byte) (*mappedBlob, error) {
	path := a.blobPath(hash)
	tmp, err := os.CreateTemp(a.dir, hash+".tmp-")
	if err != nil {
		return nil, err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	b := &mappedBlob{data: blob, path: path}
	if data, unmap, err := mapFile(path, len(blob)); err == nil {
		b.data, b.mapped, b.unmap = data, true, unmap
		// Release the pages once the *mappedBlob is unreachable. Note
		// that under Go's precise liveness this can happen while a slice
		// of the mapping is still being written: once a handler has
		// loaded res.Output/res.Columnar, the *Result (and this blob)
		// may be collected — the GC does not trace the mmap'd pages the
		// slice points into. Every reader of blob-backed bytes must
		// therefore pin the Result with runtime.KeepAlive after its last
		// use of the bytes (see handleResult / writeResultView).
		runtime.SetFinalizer(b, func(b *mappedBlob) { b.unmap() })
	}
	a.mu.Lock()
	a.blobs[hash] = b
	a.mu.Unlock()
	return b, nil
}

// Get returns the mapped blob for hash, or nil.
func (a *blobArchive) Get(hash string) *mappedBlob {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blobs[hash]
}

// Remove drops hash from the archive and unlinks its file. Existing
// mappings of the removed blob survive the unlink (the kernel keeps the
// pages until the mapping goes away), so evicting under a concurrent
// reader is safe.
func (a *blobArchive) Remove(hash string) {
	a.mu.Lock()
	delete(a.blobs, hash)
	a.mu.Unlock()
	os.Remove(a.blobPath(hash))
}

// Close unlinks every blob (and the directory, when owned). Mappings
// are left to their finalizers for the same reason Remove leaves them.
func (a *blobArchive) Close() {
	a.mu.Lock()
	blobs := a.blobs
	a.blobs = make(map[string]*mappedBlob)
	a.mu.Unlock()
	for _, b := range blobs {
		os.Remove(b.path)
	}
	if a.own {
		os.RemoveAll(a.dir)
	}
}

// errMmapUnsupported reports why mapFile is unavailable on this
// platform (see archive_fallback.go).
var errMmapUnsupported = fmt.Errorf("service: mmap unsupported on this platform")
