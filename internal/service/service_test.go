package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"impulse/internal/harness"
)

// stubExec replaces Execute with a controllable executor: it signals
// started, then blocks until release fires or ctx is cancelled.
type stubExec struct {
	started chan string // receives the spec hash when a run begins
	release chan struct{}
	calls   int // guarded by mu
	mu      sync.Mutex
}

func newStub() *stubExec {
	return &stubExec{started: make(chan string, 16), release: make(chan struct{})}
}

func (st *stubExec) fn(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
	st.mu.Lock()
	st.calls++
	st.mu.Unlock()
	st.started <- spec.Hash()
	if progress != nil {
		progress("stub", "cell")
	}
	select {
	case <-st.release:
		return &Result{Output: []byte("stub output\n"), Counters: []byte("c 1\n"), MIME: "text/plain"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (st *stubExec) callCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.calls
}

// diagSpec returns a distinct valid spec per n (cheap to normalize, the
// stub never actually runs it).
func diagSpec(n int) Spec { return Spec{Kind: "sim", Workload: "diag", N: n} }

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if j.Status().State == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.Status().State, want)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSpecCanonicalization(t *testing.T) {
	// Spelling out the defaults and omitting them hash identically.
	a, err := (Spec{Kind: "table1"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Spec{Kind: "table1", N: 14000, CGIts: 8, Niter: 1}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("defaulted and spelled-out specs hash differently:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	// Different experiments hash differently.
	c, err := (Spec{Kind: "table1", CGIts: 4}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Error("distinct specs collided")
	}
	// Unknown fields and kinds are rejected.
	if _, err := ParseSpec([]byte(`{"kind":"table1","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"kind":"nope"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseSpec([]byte(`{"kind":"sweep","family":"nope"}`)); err == nil {
		t.Error("unknown sweep family accepted")
	}
}

func TestQueueFullRejects(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 1, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	// First job occupies the executor...
	if _, _, err := s.Submit(diagSpec(512)); err != nil {
		t.Fatal(err)
	}
	<-stub.started
	// ...second fills the queue...
	if _, _, err := s.Submit(diagSpec(513)); err != nil {
		t.Fatal(err)
	}
	// ...third must bounce with backpressure, not block or grow state.
	if _, _, err := s.Submit(diagSpec(514)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(stub.release)
}

func TestSingleFlightDedup(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 8, Executors: 2})
	s.executeFn = stub.fn
	defer s.Close()

	const n = 8
	jobs := make([]*Job, n)
	dedup := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, d, err := s.Submit(diagSpec(512))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i], dedup[i] = j, d
		}(i)
	}
	wg.Wait()
	<-stub.started
	close(stub.release)

	first := jobs[0]
	nDeduped := 0
	for i, j := range jobs {
		if j != first {
			t.Fatalf("submission %d got a different job (%s vs %s)", i, j.ID, first.ID)
		}
		if dedup[i] {
			nDeduped++
		}
	}
	if nDeduped != n-1 {
		t.Errorf("%d submissions marked deduped, want %d", nDeduped, n-1)
	}
	<-first.Done()
	if got := stub.callCount(); got != 1 {
		t.Errorf("executor ran %d times for %d identical submissions, want 1", got, n)
	}
	// A post-completion resubmission hits the result cache, still no new run.
	j2, d2, err := s.Submit(diagSpec(512))
	if err != nil || !d2 || j2 != first {
		t.Errorf("cache hit: job=%v deduped=%v err=%v", j2, d2, err)
	}
	if got := stub.callCount(); got != 1 {
		t.Errorf("cache hit re-executed (calls=%d)", got)
	}
}

func TestFailedJobIsNotCached(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	var mu sync.Mutex
	s := New(Config{QueueDepth: 8, Executors: 1})
	s.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, boom
		}
		return &Result{Output: []byte("ok"), MIME: "text/plain"}, nil
	}
	defer s.Close()

	j1, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if st := j1.Status(); st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("first job: %+v", st)
	}
	// Same spec again: failures must not be served from cache.
	j2, deduped, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2 == j1 {
		t.Fatal("failed job was deduped/cached")
	}
	<-j2.Done()
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("retry: %+v", st)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	blocker, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	queued, _, err := s.Submit(diagSpec(513))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	<-queued.Done()
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %+v", st)
	}
	// Cancelling again is an error (already terminal).
	if err := s.Cancel(queued.ID); err == nil {
		t.Error("double cancel succeeded")
	}
	// The executor must skip the cancelled job, not run it.
	close(stub.release)
	<-blocker.Done()
	time.Sleep(10 * time.Millisecond) // give the executor a beat to (not) pick it up
	if got := stub.callCount(); got != 1 {
		t.Errorf("executor ran %d jobs, want 1 (cancelled job must be skipped)", got)
	}
	// An identical resubmission after cancellation starts fresh.
	j2, deduped, err := s.Submit(diagSpec(513))
	if err != nil || deduped || j2 == queued {
		t.Errorf("resubmit after cancel: job=%v deduped=%v err=%v", j2, deduped, err)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	j, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started // the stub is now blocked inside the job
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled running job never finished")
	}
	if st := j.Status(); st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if got := s.cCancelled.Load(); got != 1 {
		t.Errorf("cancelled counter = %d", got)
	}
}

func TestDrainFinishesInFlight(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn

	j, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	// Draining becomes visible, and new submissions are rejected clearly.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Submit(diagSpec(513)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	// The in-flight job is given time to finish...
	close(stub.release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// ...and its result stays retrievable after the drain completes.
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("in-flight job after drain: %+v", st)
	}
	if res := j.Result(); res == nil || string(res.Output) != "stub output\n" {
		t.Fatalf("result not retrievable after drain: %+v", res)
	}
	if got, ok := s.Get(j.ID); !ok || got != j {
		t.Error("job not addressable after drain")
	}
}

func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	stub := newStub() // release never fires: the job only exits via ctx
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn

	j, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with a stuck job returned nil, want deadline error")
	}
	if st := j.Status(); st.State != StateCancelled {
		t.Fatalf("stuck job after forced drain: %+v", st)
	}
}

func TestEventsReplayAndLive(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	j, _, err := s.Submit(diagSpec(512))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	waitState(t, j, StateRunning)
	replay, ch, unsub := j.Subscribe()
	defer unsub()
	// Replay already holds the running transition and the stub's progress.
	if len(replay) < 1 || replay[0].Type != "state" || replay[0].State != StateRunning {
		t.Fatalf("replay = %+v", replay)
	}
	close(stub.release)
	var last Event
	for ev := range ch {
		last = ev
	}
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("final live event = %+v", last)
	}
	// Seq numbers are the event's index: replay + live form one gapless log.
	all := j.Status().Events
	if last.Seq != all-1 {
		t.Errorf("final seq = %d, want %d", last.Seq, all-1)
	}
	// Subscribing after completion returns the full log and a closed channel.
	replay2, ch2, unsub2 := j.Subscribe()
	defer unsub2()
	if len(replay2) != all {
		t.Errorf("post-completion replay has %d events, want %d", len(replay2), all)
	}
	if _, open := <-ch2; open {
		t.Error("post-completion channel not closed")
	}
}

func TestArchiveEviction(t *testing.T) {
	s := New(Config{QueueDepth: 16, Executors: 1, CacheSize: 2})
	s.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		return &Result{Output: []byte(fmt.Sprintf("n=%d", spec.N)), MIME: "text/plain"}, nil
	}
	defer s.Close()

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, _, err := s.Submit(diagSpec(512 + i))
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		jobs = append(jobs, j)
	}
	// Only the 2 most recent stay addressable.
	if _, ok := s.Get(jobs[0].ID); ok {
		t.Error("oldest job survived eviction")
	}
	if _, ok := s.Get(jobs[3].ID); !ok {
		t.Error("newest job evicted")
	}
	// Evicted hashes re-execute instead of hitting a dangling cache entry.
	j, deduped, err := s.Submit(diagSpec(512))
	if err != nil || deduped {
		t.Fatalf("resubmit of evicted spec: deduped=%v err=%v", deduped, err)
	}
	<-j.Done()
	if res := j.Result(); res == nil || string(res.Output) != "n=512" {
		t.Fatalf("re-executed result: %+v", res)
	}
}
