package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impulse/internal/colres"
	"impulse/internal/harness"
	"impulse/internal/store"
	"impulse/internal/workloads"
)

// testGridDoc builds a small decoded result document for stubbed
// columnar results.
func testGridDoc() *colres.Doc {
	d := &colres.Doc{
		Title:    "stub grid",
		Sections: []string{"alpha", "beta"},
		Columns:  []string{"none", "mc", "l1", "both"},
	}
	for si := uint32(0); si < 2; si++ {
		for ci := uint32(0); ci < 4; ci++ {
			d.Cells = append(d.Cells, colres.Cell{
				Section: si, Column: ci,
				Cycles: uint64(1000 - 100*ci), Loads: 100, Stores: 40, BusBytes: 4096,
				P50: 1, P95: 80, P99: 100,
				L1: 0.75, L2: 0.0625, Mem: 0.1875, AvgLoad: 10.5,
				Speedup: 1 + float64(ci)*0.25,
			})
		}
	}
	return d
}

// columnarExec is a stub executor that finishes immediately with a
// columnar grid result, like a real table1/table2 run with
// format=columnar.
func columnarExec(blob []byte) func(context.Context, Spec, harness.Progress) (*Result, error) {
	return func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		return &Result{
			Output:   blob,
			Counters: []byte("c 1\n"),
			MIME:     colres.ContentType,
			Columnar: blob,
		}, nil
	}
}

func submitAndWait(t *testing.T, s *Service, spec Spec) *Job {
	t.Helper()
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	return j
}

// TestResultServedFromMappedBlob is the zero-copy pin: a cache hit's
// response body must be the stored blob's bytes served through the
// memory mapping — no decode, no re-encode. The proof: rewriting the
// archived file in place changes what the endpoint returns, which is
// only possible if the response writes mapped file pages rather than
// any heap copy made at encode or archive time.
func TestResultServedFromMappedBlob(t *testing.T) {
	blob := colres.Encode(testGridDoc())
	s := New(Config{Executors: 1})
	s.executeFn = columnarExec(blob)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitAndWait(t, s, diagSpec(64))
	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != colres.ContentType {
			t.Fatalf("Content-Type %q, want %q", ct, colres.ContentType)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if got := get(); !bytes.Equal(got, blob) {
		t.Fatalf("served %d bytes differ from the encoded blob (%d bytes)", len(got), len(blob))
	}

	res := j.Result()
	if res.blob == nil {
		t.Fatal("done job has no archived blob")
	}
	if !res.blob.Mapped {
		t.Skip("archive blob not memory-mapped on this platform; heap fallback already verified above")
	}
	// Rewrite one byte of the archived file. MAP_SHARED mappings see
	// file writes, so the next response must carry the mutation.
	f, err := os.OpenFile(res.blob.Path(), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mutOff := int64(len(blob) / 2)
	if _, err := f.WriteAt([]byte{'~'}, mutOff); err != nil {
		f.Close()
		t.Fatal(err)
	}
	f.Close()

	got := get()
	if bytes.Equal(got, blob) {
		t.Fatal("response unchanged after rewriting the archived file: serving from a heap copy, not the mapping")
	}
	want := append([]byte(nil), blob...)
	want[mutOff] = '~'
	if !bytes.Equal(got, want) {
		t.Error("response is neither the original nor the mutated blob")
	}
}

// TestResultViewsRenderFromColumns: every ?view= rendering of a
// finished job is computed from the archived columns and matches the
// direct colres rendering of the same document.
func TestResultViewsRenderFromColumns(t *testing.T) {
	doc := testGridDoc()
	blob := colres.Encode(doc)
	s := New(Config{Executors: 1})
	s.executeFn = columnarExec(blob)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitAndWait(t, s, diagSpec(64))
	get := func(view string) (int, string, []byte) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result?view=" + view)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	var wantJSON, wantText, wantSVG bytes.Buffer
	if err := colres.WriteGridJSON(doc, &wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := colres.RenderText(doc, &wantText); err != nil {
		t.Fatal(err)
	}
	if err := harness.SpeedupChartDoc(doc, &wantSVG); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		view, ct string
		want     []byte
	}{
		{"columnar", colres.ContentType, blob},
		{"json", "application/json", wantJSON.Bytes()},
		{"text", "text/plain; charset=utf-8", wantText.Bytes()},
		{"svg", "image/svg+xml", wantSVG.Bytes()},
	} {
		code, ct, body := get(tc.view)
		if code != http.StatusOK {
			t.Fatalf("view %s: status %d", tc.view, code)
		}
		if ct != tc.ct {
			t.Errorf("view %s: Content-Type %q, want %q", tc.view, ct, tc.ct)
		}
		if !bytes.Equal(body, tc.want) {
			t.Errorf("view %s: body differs from direct rendering", tc.view)
		}
	}
	if code, _, _ := get("bogus"); code != http.StatusBadRequest {
		t.Errorf("unknown view: status %d, want 400", code)
	}
}

// TestResultViewWithoutColumnarPayload: non-grid results have no
// columns to render views from.
func TestResultViewWithoutColumnarPayload(t *testing.T) {
	stub := newStub()
	close(stub.release) // finish immediately
	s := New(Config{Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitAndWait(t, s, diagSpec(64))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result?view=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("view of a viewless result: status %d, want 400", resp.StatusCode)
	}
}

// TestByteBudgetEviction: the archive LRU accounts blob bytes against
// CacheBytes on top of the entry bound — old blobs (and their files)
// go away once the budget is exceeded, the gauge tracks what remains,
// and an evicted result is a cache miss on resubmission.
func TestByteBudgetEviction(t *testing.T) {
	blob := colres.Encode(testGridDoc())
	// Budget fits two blobs but not three.
	s := New(Config{Executors: 1, CacheSize: 100, CacheBytes: int64(2*len(blob) + len(blob)/2)})
	calls := 0
	s.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		calls++
		return &Result{Output: blob, Counters: []byte("c 1\n"),
			MIME: colres.ContentType, Columnar: blob}, nil
	}
	defer s.Close()
	if s.arch == nil {
		t.Fatal("service has no blob archive")
	}

	j1 := submitAndWait(t, s, diagSpec(101))
	j2 := submitAndWait(t, s, diagSpec(102))
	if got, want := s.gCacheBytes.Load(), uint64(2*len(blob)); got != want {
		t.Fatalf("cache bytes after two jobs: %d, want %d", got, want)
	}

	j3 := submitAndWait(t, s, diagSpec(103))
	if got, want := s.gCacheBytes.Load(), uint64(2*len(blob)); got != want {
		t.Errorf("cache bytes after eviction: %d, want %d", got, want)
	}
	s.mu.Lock()
	_, has1 := s.byHash[j1.Hash]
	_, has2 := s.byHash[j2.Hash]
	_, has3 := s.byHash[j3.Hash]
	s.mu.Unlock()
	if has1 || !has2 || !has3 {
		t.Errorf("LRU kept the wrong results: j1=%v j2=%v j3=%v, want only j2+j3", has1, has2, has3)
	}
	blobPath := func(hash string) string {
		return filepath.Join(s.arch.Dir(), hash+store.BlobExt)
	}
	if _, err := os.Stat(blobPath(j1.Hash)); !os.IsNotExist(err) {
		t.Errorf("evicted blob file still on disk: %v", err)
	}
	if _, err := os.Stat(blobPath(j3.Hash)); err != nil {
		t.Errorf("fresh blob file missing: %v", err)
	}

	// The evicted spec must run again; a retained one must not.
	before := calls
	if _, deduped, err := s.Submit(diagSpec(102)); err != nil || !deduped {
		t.Errorf("retained result was not a cache hit (deduped=%v err=%v)", deduped, err)
	}
	j1b, deduped, err := s.Submit(diagSpec(101))
	if err != nil || deduped {
		t.Fatalf("evicted result still answered from cache (deduped=%v err=%v)", deduped, err)
	}
	waitState(t, j1b, StateDone)
	if calls != before+1 {
		t.Errorf("re-running the evicted spec made %d executions, want 1", calls-before)
	}

	// The gauge is exported under the metrics endpoint.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf("service_result_cache_bytes %d", 2*len(blob))
	if !strings.Contains(string(metrics), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestCellEventsStreamChunks: a job whose executor reports finished
// rows emits "cell" SSE events whose base64 chunks decode back to the
// reported rows.
func TestCellEventsStreamChunks(t *testing.T) {
	rows := []colres.Row{
		{Label: "alpha/none", Cycles: 1000, Loads: 100, L1: 0.75, AvgLoad: 10.5},
		{Label: "alpha/mc", Cycles: 800, Loads: 100, L1: 0.8, AvgLoad: 7.5, P99: 42},
	}
	s := New(Config{Executors: 1})
	s.executeFn = func(ctx context.Context, spec Spec, progress harness.Progress) (*Result, error) {
		emit := rowChunkSinkFrom(ctx)
		if emit == nil {
			return nil, fmt.Errorf("job context carries no row-chunk sink")
		}
		for _, r := range rows {
			emit(r.Label, colres.EncodeRow(r))
		}
		return &Result{Output: []byte("ok\n"), Counters: []byte("c 1\n"), MIME: "text/plain"}, nil
	}
	defer s.Close()

	j := submitAndWait(t, s, diagSpec(64))
	replay, _, cancel := j.Subscribe()
	defer cancel()
	var got []colres.Row
	for _, ev := range replay {
		if ev.Type != "cell" {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(ev.Chunk)
		if err != nil {
			t.Fatalf("cell chunk is not base64: %v", err)
		}
		r, err := colres.DecodeRow(raw)
		if err != nil {
			t.Fatalf("cell chunk does not decode: %v", err)
		}
		if ev.Label != r.Label {
			t.Errorf("event label %q != chunk label %q", ev.Label, r.Label)
		}
		got = append(got, r)
	}
	if len(got) != len(rows) {
		t.Fatalf("replay carried %d cell events, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Errorf("cell %d round-tripped as %+v, want %+v", i, got[i], rows[i])
		}
	}
}

// TestExecuteStreamsGridCells drives the real harness: a tiny Table 2
// run under a row-chunk sink streams one decodable chunk per measured
// grid cell, and the chunks agree with the final columnar blob.
func TestExecuteStreamsGridCells(t *testing.T) {
	spec, err := (Spec{Kind: "table2", N: workloads.MMPTiny().N, Tile: workloads.MMPTiny().Tile}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var chunks []colres.Row
	ctx := withRowChunkSink(context.Background(), func(label string, chunk []byte) {
		r, err := colres.DecodeRow(chunk)
		if err != nil {
			t.Errorf("chunk for %q does not decode: %v", label, err)
			return
		}
		chunks = append(chunks, r)
	})
	res, err := Execute(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := colres.Decode(res.Columnar)
	if err != nil {
		t.Fatalf("result blob does not decode: %v", err)
	}
	if len(chunks) == 0 || len(chunks) != len(doc.Cells) {
		t.Fatalf("streamed %d chunks for %d grid cells", len(chunks), len(doc.Cells))
	}
	// Chunk labels are the harness row labels (workload/config), not
	// grid coordinates, so match each blob cell to a chunk by its full
	// metric tuple.
	used := make([]bool, len(chunks))
	for _, c := range doc.Cells {
		found := false
		for i, r := range chunks {
			if used[i] {
				continue
			}
			if r.Cycles == c.Cycles && r.Loads == c.Loads && r.Stores == c.Stores &&
				r.BusBytes == c.BusBytes && r.P50 == c.P50 && r.P95 == c.P95 && r.P99 == c.P99 &&
				r.L1 == c.L1 && r.L2 == c.L2 && r.Mem == c.Mem && r.AvgLoad == c.AvgLoad {
				used[i], found = true, true
				break
			}
		}
		if !found {
			t.Errorf("no streamed chunk matches grid cell %s/%s",
				doc.Sections[c.Section], doc.Columns[c.Column])
		}
	}
}

// BenchmarkResultServeHit measures a result-cache hit end to end
// through the HTTP handler: the mmap-served columnar bytes against the
// render-per-hit JSON view (what every hit used to pay before blobs).
func BenchmarkResultServeHit(b *testing.B) {
	blob := colres.Encode(testGridDoc())
	s := New(Config{Executors: 1})
	s.executeFn = columnarExec(blob)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, err := s.Submit(Spec{Kind: "sim", Workload: "diag", N: 64})
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()

	serve := func(b *testing.B, url string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			n, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || n == 0 {
				b.Fatalf("status %d, %d bytes", resp.StatusCode, n)
			}
		}
	}
	b.Run("columnar-mmap", func(b *testing.B) {
		serve(b, ts.URL+"/v1/jobs/"+j.ID+"/result")
	})
	b.Run("json-view-rendered", func(b *testing.B) {
		serve(b, ts.URL+"/v1/jobs/"+j.ID+"/result?view=json")
	})
}
