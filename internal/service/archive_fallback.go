//go:build !unix

package service

// mapFile is unavailable without mmap; Put keeps the encoded bytes in
// memory instead, which still serves cache hits without re-encoding.
func mapFile(path string, size int) ([]byte, func(), error) {
	return nil, nil, errMmapUnsupported
}
