package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTwinTierSubmit: a tier=twin sweep on an eligible family completes
// synchronously — done by the time Submit returns, no executor involved
// — and its manifest carries the tier plus the validated error bound.
func TestTwinTierSubmit(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	j, deduped, err := s.Submit(Spec{Kind: "sweep", Family: "superpage", Fast: true, Tier: TierTwin})
	if err != nil || deduped {
		t.Fatalf("submit: err=%v deduped=%v", err, deduped)
	}
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("twin job state %s immediately after submit, want %s", st.State, StateDone)
	}
	if stub.callCount() != 0 {
		t.Fatalf("twin job reached the executor (%d calls)", stub.callCount())
	}
	res := j.Result()
	if res == nil || len(res.Columnar) == 0 {
		t.Fatal("twin job has no columnar result")
	}
	if !strings.Contains(string(res.Output), "tier=twin") {
		t.Errorf("twin output missing tier banner:\n%s", res.Output)
	}

	m := buildManifest(j)
	if m.Tier != TierTwin {
		t.Errorf("manifest tier = %q, want %q", m.Tier, TierTwin)
	}
	if m.TwinErrorBound <= 0 || m.TwinErrorBound > 1 {
		t.Errorf("manifest twin error bound = %v, want (0,1]", m.TwinErrorBound)
	}

	// An identical twin submit dedups onto the finished job via the
	// result cache or in-flight map rather than recomputing a new ID.
	j2, deduped2, err := s.Submit(Spec{Kind: "sweep", Family: "superpage", Fast: true, Tier: TierTwin})
	if err != nil || !deduped2 || j2.ID != j.ID {
		t.Fatalf("resubmit: err=%v deduped=%v id=%s (want dedup onto %s)", err, deduped2, j2.ID, j.ID)
	}
}

// TestTwinTierFallthrough: tier=twin on a family without a twin clears
// the tier and queues a normal simulation — same hash as a plain sim
// submit, so the two share cache entries — and counts the ineligible
// request in the metrics.
func TestTwinTierFallthrough(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 4, Executors: 1})
	s.executeFn = stub.fn
	defer s.Close()

	j, _, err := s.Submit(Spec{Kind: "sweep", Family: "scheduler", Fast: true, Tier: TierTwin})
	if err != nil {
		t.Fatal(err)
	}
	if want := (Spec{Kind: "sweep", Family: "scheduler", Fast: true}).Hash(); j.Hash != want {
		t.Errorf("fallthrough hash %s, want tierless hash %s", j.Hash, want)
	}
	<-stub.started // it reached the executor: simulation path
	close(stub.release)
	if got := s.cTwinIneligible.Load(); got != 1 {
		t.Errorf("twin_ineligible = %d, want 1", got)
	}
	if got := s.cTwinRequests.Load(); got != 1 {
		t.Errorf("twin_requests = %d, want 1", got)
	}

	// Tier on a non-sweep kind is a spec error, not a silent fallthrough.
	if _, _, err := s.Submit(Spec{Kind: "table1", Tier: TierTwin}); err == nil {
		t.Error("tier=twin on kind table1 accepted, want error")
	}
}

// TestPredictEndpoint drives POST /v1/predict through the mux: 200 with
// tier/error-bound/grid for an eligible family, 422 with the registry
// reason for an ineligible one.
func TestPredictEndpoint(t *testing.T) {
	s := New(Config{QueueDepth: 4, Executors: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"family":"sram","fast":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %s %s", resp.Status, body)
	}
	if h := resp.Header.Get("X-Impulse-Tier"); h != TierTwin {
		t.Errorf("X-Impulse-Tier = %q, want %q", h, TierTwin)
	}
	var out struct {
		Family     string          `json:"family"`
		Tier       string          `json:"tier"`
		ErrorBound float64         `json:"error_bound"`
		ElapsedUS  int64           `json:"elapsed_us"`
		Grid       json.RawMessage `json:"grid"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("parse predict response: %v\n%s", err, body)
	}
	if out.Family != "sram" || out.Tier != TierTwin || out.ErrorBound <= 0 || len(out.Grid) == 0 {
		t.Errorf("predict response fields wrong: %+v", out)
	}

	resp2, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"family":"cholesky"}`))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ineligible predict: %s %s", resp2.Status, body2)
	}
	if !strings.Contains(string(body2), "no analytical twin") {
		t.Errorf("ineligible predict error lacks reason: %s", body2)
	}
	if got := s.cTwinRequests.Load(); got != 2 {
		t.Errorf("twin_requests = %d, want 2", got)
	}
	if got := s.cTwinIneligible.Load(); got != 1 {
		t.Errorf("twin_ineligible = %d, want 1", got)
	}
}

// TestReadyz: ready while idle with a writable archive, not ready once
// draining begins.
func TestReadyz(t *testing.T) {
	stub := newStub()
	s := New(Config{QueueDepth: 2, Executors: 1})
	s.executeFn = stub.fn
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := get()
	if code != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("idle readyz: %d %v", code, out)
	}

	// Drain in the background (Close blocks until jobs finish; none are
	// running, but serialize with the probe loop anyway).
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, out = get()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz stayed %d after Close began: %v", code, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	<-done
	close(stub.release)
}
