// Package bitutil provides small bit-manipulation helpers used throughout
// the simulator: power-of-two arithmetic, alignment, and bit-field
// extraction. The Impulse controller restricts remapped object sizes to
// powers of two precisely so that hardware can use these operations instead
// of division (paper §2.3); the simulator follows the same discipline.
package bitutil

import "math/bits"

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x uint64) bool {
	return x != 0 && x&(x-1) == 0
}

// Log2 returns floor(log2(x)). Log2(0) panics: the simulator never asks for
// the logarithm of zero, and silently returning a value would hide a
// geometry bug.
func Log2(x uint64) uint {
	if x == 0 {
		panic("bitutil: Log2 of zero")
	}
	return uint(63 - bits.LeadingZeros64(x))
}

// CeilPow2 returns the smallest power of two >= x. CeilPow2(0) == 1.
func CeilPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << uint(64-bits.LeadingZeros64(x-1))
}

// AlignDown rounds x down to a multiple of align, which must be a power of
// two.
func AlignDown(x, align uint64) uint64 {
	return x &^ (align - 1)
}

// AlignUp rounds x up to a multiple of align, which must be a power of two.
func AlignUp(x, align uint64) uint64 {
	return (x + align - 1) &^ (align - 1)
}

// IsAligned reports whether x is a multiple of align (a power of two).
func IsAligned(x, align uint64) bool {
	return x&(align-1) == 0
}

// Bits extracts bits [lo, hi] (inclusive, 0-indexed from the LSB) of x.
func Bits(x uint64, lo, hi uint) uint64 {
	if hi >= 63 {
		return x >> lo
	}
	return (x >> lo) & ((1 << (hi - lo + 1)) - 1)
}

// Mask returns a mask with the low n bits set.
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// Min returns the smaller of a and b.
func Min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
