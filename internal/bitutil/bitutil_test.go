package bitutil

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := []struct {
		x    uint64
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{7, false}, {8, true}, {1 << 40, true}, {(1 << 40) + 1, false},
		{^uint64(0), false}, {1 << 63, true},
	}
	for _, c := range cases {
		if got := IsPow2(c.x); got != c.want {
			t.Errorf("IsPow2(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want uint
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {1024, 10}, {1 << 63, 63},
	}
	for _, c := range cases {
		if got := Log2(c.x); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLog2ZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ x, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
		{1 << 62, 1 << 62}, {(1 << 62) - 1, 1 << 62},
	}
	for _, c := range cases {
		if got := CeilPow2(c.x); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilPow2Property(t *testing.T) {
	f := func(x uint32) bool {
		p := CeilPow2(uint64(x))
		return IsPow2(p) && p >= uint64(x) && (p == 1 || p/2 < uint64(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(0x1234, 0x100) != 0x1200 {
		t.Error("AlignDown")
	}
	if AlignUp(0x1234, 0x100) != 0x1300 {
		t.Error("AlignUp")
	}
	if AlignUp(0x1200, 0x100) != 0x1200 {
		t.Error("AlignUp exact")
	}
	if !IsAligned(0x1200, 0x100) || IsAligned(0x1201, 0x100) {
		t.Error("IsAligned")
	}
}

func TestAlignProperty(t *testing.T) {
	f := func(x uint64, shift uint8) bool {
		align := uint64(1) << (shift % 20)
		d, u := AlignDown(x, align), AlignUp(x, align)
		if d > x || !IsAligned(d, align) || x-d >= align {
			return false
		}
		if u < d { // AlignUp may wrap only at the very top of the space.
			return x > ^uint64(0)-align
		}
		return IsAligned(u, align) && u-d <= align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsMask(t *testing.T) {
	if Bits(0xDEADBEEF, 8, 15) != 0xBE {
		t.Errorf("Bits = %x", Bits(0xDEADBEEF, 8, 15))
	}
	if Bits(^uint64(0), 0, 63) != ^uint64(0) {
		t.Error("Bits full width")
	}
	if Mask(0) != 0 || Mask(8) != 0xFF || Mask(64) != ^uint64(0) {
		t.Error("Mask")
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Min/Max")
	}
}
