package core

import (
	"fmt"

	"impulse/internal/addr"
)

// ContextSwitchCycles is the base cost of a context switch (kernel entry,
// register save/restore, scheduler) beyond the TLB refill costs the
// switched-to process pays on its own.
const ContextSwitchCycles = 400

// SpawnProcess creates a new process address space and returns its pid.
// The new process starts with nothing mapped; switch to it to allocate.
func (s *System) SpawnProcess() int {
	pid := s.K.CreateProcess()
	s.chargeSyscall(0)
	return pid
}

// SwitchProcess makes pid the running process: the page-table base
// changes and the processor TLB's user entries are flushed. Block-TLB
// (superpage) entries are also dropped — they belong to the old address
// space.
func (s *System) SwitchProcess(pid int) error {
	if err := s.K.SwitchProcess(pid); err != nil {
		return err
	}
	s.St.Syscalls++
	s.St.SyscallCycles += ContextSwitchCycles
	s.Tick(ContextSwitchCycles)
	s.FlushTLB()
	s.ClearBlockTLB()
	return nil
}

// CurrentProcess returns the running pid.
func (s *System) CurrentProcess() int { return s.K.CurrentProcess() }

// GrantShadow authorizes pid to map the shadow region containing base —
// the mediated sharing the paper's §6 LRPC scenario needs ("use shared
// memory to map buffers into sender and receiver address spaces, and
// Impulse could be used to support fast, no-copy scatter/gather into
// shared shadow address spaces"). Only the region's owner may grant.
func (s *System) GrantShadow(base addr.PAddr, pid int) error {
	if !s.IsImpulse() {
		return ErrNotImpulse
	}
	if err := s.K.GrantShadow(base, pid); err != nil {
		return err
	}
	s.chargeSyscall(0)
	return nil
}

// ShadowRegionOf returns the shadow region backing the current process's
// virtual address v, so a granted peer can be told what to map. Fails if
// v is not shadow-mapped.
func (s *System) ShadowRegionOf(v addr.VAddr) (addr.PAddr, error) {
	p, ok := s.K.Translate(v)
	if !ok {
		return 0, fmt.Errorf("core: %v not mapped", v)
	}
	if !s.MC.IsShadow(p) {
		return 0, fmt.Errorf("core: %v is not shadow-backed", v)
	}
	return p, nil
}

// MapForeignShadow maps `bytes` of the (granted) shadow region starting
// at sh into the current process's address space and returns the new
// virtual base. This is the receiver side of an LRPC-style shared
// buffer: the mapping succeeds only if the owner granted access.
func (s *System) MapForeignShadow(sh addr.PAddr, bytes uint64) (addr.VAddr, error) {
	if !s.IsImpulse() {
		return 0, ErrNotImpulse
	}
	if sh.PageOff() != 0 {
		return 0, fmt.Errorf("core: foreign shadow base %v not page-aligned", sh)
	}
	pages := (bytes + addr.PageSize - 1) >> addr.PageShift
	va, err := s.K.AllocVirtual(pages<<addr.PageShift, 0)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < pages; i++ {
		if err := s.K.MapShadowPage(va.PageNum()+i, sh+addr.PAddr(i<<addr.PageShift)); err != nil {
			return 0, err
		}
	}
	s.chargeSyscall(0)
	return va, nil
}
