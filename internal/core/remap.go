package core

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/bitutil"
	"impulse/internal/mc"
)

// ErrNotImpulse is returned when a remapping operation is attempted on a
// conventional memory system.
var ErrNotImpulse = fmt.Errorf("core: remapping requires an Impulse memory controller")

// FlushMode selects cache-consistency handling when an alias is retargeted.
type FlushMode int

const (
	// Purge invalidates the alias's cache lines without write-back
	// (correct for read-only tiles, e.g. the A and B inputs in §3.2).
	Purge FlushMode = iota
	// Flush writes dirty alias lines back through the controller's
	// scatter path before invalidating (the C output tile).
	Flush
)

// MapScatterGather implements §2.3's indirection-vector remapping: it
// returns a new virtual alias x' of n elements (elemBytes each, a power of
// two) such that x'[k] aliases target[vec[k]], where vec is an array of n
// uint32 indices. This is the "setup x', where x'[k] = x[COLUMN[k]]" call
// of §3.1.
//
// targetBytes is the size of the target structure (bounds the controller
// page mappings). The target range is flushed from the caches so DRAM is
// current when the controller gathers (§2.3's consistency rule).
//
// l1Offset places the alias at that byte offset (page-aligned) within the
// virtually-indexed L1 — §2.1 step 1's "appropriate alignment and offset
// characteristics". It matters: an alias that lines up with another
// stream walked at the same index (CG reads DATA[j] and x'[j] together)
// ping-pongs a direct-mapped L1 set on every iteration.
func (s *System) MapScatterGather(target addr.VAddr, targetBytes, elemBytes uint64, vec addr.VAddr, n, l1Offset uint64) (addr.VAddr, error) {
	if !s.IsImpulse() {
		return 0, ErrNotImpulse
	}
	if !bitutil.IsPow2(elemBytes) {
		return 0, fmt.Errorf("core: element size %d must be a power of two", elemBytes)
	}
	l1Bytes := s.Config().L1.Bytes
	if l1Offset%addr.PageSize != 0 || l1Offset >= l1Bytes {
		return 0, fmt.Errorf("core: l1Offset %d must be page-aligned and below L1 size %d", l1Offset, l1Bytes)
	}
	aliasBytes := bitutil.AlignUp(n*elemBytes, addr.PageSize)

	// Step 1: contiguous virtual range for the alias, placed in the L1.
	base, err := s.K.AllocVirtual(aliasBytes+l1Bytes, l1Bytes)
	if err != nil {
		return 0, err
	}
	alias := base + addr.VAddr(l1Offset)
	// Step 2: shadow region.
	sh, err := s.K.ShadowAlloc(aliasBytes, addr.PageSize)
	if err != nil {
		return 0, err
	}
	// Steps 3+4: download the mapping function and page mappings.
	pvTarget, err := s.downloadMappings(target, targetBytes)
	if err != nil {
		return 0, err
	}
	pvVec, err := s.downloadMappings(vec, 4*n)
	if err != nil {
		return 0, err
	}
	slot, err := s.MC.FreeSlot()
	if err != nil {
		return 0, err
	}
	d := mc.Descriptor{
		Kind:       mc.Gather,
		ShadowBase: sh,
		// Exact size, not page-rounded: the controller clamps tail-line
		// gathers to Bytes, keeping vector reads within the mapped range.
		Bytes:       n * elemBytes,
		PVBase:      pvTarget,
		ObjBytes:    elemBytes,
		StrideBytes: elemBytes,
		VecPV:       pvVec,
	}
	if err := s.MC.SetDescriptor(slot, d); err != nil {
		return 0, err
	}
	// Step 5: map the alias onto shadow memory and flush the original.
	for p := uint64(0); p < aliasBytes>>addr.PageShift; p++ {
		if err := s.K.MapShadowPage(alias.PageNum()+p, sh+addr.PAddr(p<<addr.PageShift)); err != nil {
			return 0, err
		}
	}
	s.chargeSyscall(s.costs.DescriptorDL)
	s.FlushVRange(target, targetBytes)
	return alias, nil
}

// StridedAlias is a reusable dense alias of a strided structure (§2.3
// "Strided physical memory"): count objects of objBytes each, drawn from
// the target at strideBytes intervals. Created once, then retargeted as
// the computation walks tiles — keeping the alias's virtual placement
// (and therefore its L1 cache segment) fixed, as §3.2 requires.
type StridedAlias struct {
	VA    addr.VAddr
	Bytes uint64

	slot        int
	shadow      addr.PAddr
	objBytes    uint64
	strideBytes uint64
	count       uint64
}

// NewStridedAlias creates a strided alias of count objects of objBytes
// (a power of two) at pseudo-virtual stride strideBytes. l1Offset places
// the alias at the given byte offset within the virtually-indexed L1
// cache ("an application can allocate virtual addresses with appropriate
// alignment and offset characteristics", §2.1 step 1); it must be
// page-aligned.
func (s *System) NewStridedAlias(objBytes, strideBytes, count, l1Offset uint64) (*StridedAlias, error) {
	if !s.IsImpulse() {
		return nil, ErrNotImpulse
	}
	if !bitutil.IsPow2(objBytes) {
		return nil, fmt.Errorf("core: object size %d must be a power of two", objBytes)
	}
	if l1Offset%addr.PageSize != 0 {
		return nil, fmt.Errorf("core: l1Offset %d must be page-aligned", l1Offset)
	}
	l1Bytes := s.Config().L1.Bytes
	if l1Offset >= l1Bytes {
		return nil, fmt.Errorf("core: l1Offset %d beyond L1 (%d bytes)", l1Offset, l1Bytes)
	}
	aliasBytes := bitutil.AlignUp(objBytes*count, addr.PageSize)

	base, err := s.K.AllocVirtual(aliasBytes+l1Bytes, l1Bytes)
	if err != nil {
		return nil, err
	}
	alias := base + addr.VAddr(l1Offset)
	sh, err := s.K.ShadowAlloc(aliasBytes, addr.PageSize)
	if err != nil {
		return nil, err
	}
	slot, err := s.MC.FreeSlot()
	if err != nil {
		return nil, err
	}
	for p := uint64(0); p < aliasBytes>>addr.PageShift; p++ {
		if err := s.K.MapShadowPage(alias.PageNum()+p, sh+addr.PAddr(p<<addr.PageShift)); err != nil {
			return nil, err
		}
	}
	// Occupy the descriptor slot now (with a placeholder target) so a
	// second alias cannot claim it; Retarget installs the real target.
	placeholder := mc.Descriptor{
		Kind:        mc.Strided,
		ShadowBase:  sh,
		Bytes:       objBytes * count,
		PVBase:      s.allocPV(count*strideBytes, 0),
		ObjBytes:    objBytes,
		StrideBytes: strideBytes,
	}
	if err := s.MC.SetDescriptor(slot, placeholder); err != nil {
		return nil, err
	}
	s.chargeSyscall(0)
	return &StridedAlias{
		VA:          alias,
		Bytes:       objBytes * count,
		slot:        slot,
		shadow:      sh,
		objBytes:    objBytes,
		strideBytes: strideBytes,
		count:       count,
	}, nil
}

// Retarget points the alias at a new target (e.g. the next tile): it
// flushes or purges the alias's cache lines (under the old mapping, so
// dirty data scatters to the right place), downloads fresh page mappings
// and the descriptor, and leaves the alias ready to use. This is the
// "when we finish with one tile, we remap the virtual tile to the next
// physical tile" operation of §3.2.
func (s *System) Retarget(a *StridedAlias, target addr.VAddr, targetBytes uint64, mode FlushMode) error {
	if !s.IsImpulse() {
		return ErrNotImpulse
	}
	switch mode {
	case Flush:
		s.FlushVRange(a.VA, a.Bytes)
	case Purge:
		s.PurgeVRange(a.VA, a.Bytes)
	}
	pv, err := s.downloadMappings(target, targetBytes)
	if err != nil {
		return err
	}
	d := mc.Descriptor{
		Kind:        mc.Strided,
		ShadowBase:  a.shadow,
		Bytes:       a.objBytes * a.count,
		PVBase:      pv,
		ObjBytes:    a.objBytes,
		StrideBytes: a.strideBytes,
	}
	if err := s.MC.SetDescriptor(a.slot, d); err != nil {
		return err
	}
	s.chargeSyscall(s.costs.DescriptorDL)
	return nil
}

// Release frees the alias's descriptor slot.
func (s *System) Release(a *StridedAlias) {
	s.MC.ClearDescriptor(a.slot)
	s.chargeSyscall(0)
}

// Recolor dynamically recolors the physical pages of the virtual range
// [target, target+bytes) so their L2 cache colors rotate through
// [colorLo, colorHi] — without copying (§2.3 "Direct mapping", used by
// §3.1's page recoloring). The data's frames do not move; the range is
// re-mapped through shadow addresses whose index bits land in the chosen
// part of the physically-indexed L2.
func (s *System) Recolor(target addr.VAddr, bytes uint64, colorLo, colorHi uint64) error {
	if !s.IsImpulse() {
		return ErrNotImpulse
	}
	numColors := s.K.NumColors()
	if colorLo > colorHi || colorHi >= numColors {
		return fmt.Errorf("core: bad color range [%d,%d] of %d", colorLo, colorHi, numColors)
	}
	frames, err := s.K.FramesOf(target, bytes)
	if err != nil {
		return err
	}
	span := colorHi - colorLo + 1
	windows := (uint64(len(frames)) + span - 1) / span
	windowBytes := numColors * addr.PageSize
	sh, err := s.K.ShadowAlloc(windows*windowBytes, windowBytes)
	if err != nil {
		return err
	}

	// The data must leave the caches under its old addresses first.
	s.FlushVRange(target, bytes)

	slot, err := s.MC.FreeSlot()
	if err != nil {
		return err
	}
	pvBase := s.allocPV(windows*windowBytes, 0)
	d := mc.Descriptor{
		Kind:       mc.Direct,
		ShadowBase: sh,
		Bytes:      windows * windowBytes,
		PVBase:     pvBase,
	}
	if err := s.MC.SetDescriptor(slot, d); err != nil {
		return err
	}
	for i, frame := range frames {
		w := uint64(i) / span
		c := colorLo + uint64(i)%span
		pageIdx := w*numColors + c
		s.MC.MapPV(pvBase.PageNum()+pageIdx, frame)
		shPage := sh + addr.PAddr(pageIdx<<addr.PageShift)
		if err := s.K.RemapToShadow(target.PageNum()+uint64(i), shPage); err != nil {
			return err
		}
		s.FlushTLBPage(target + addr.VAddr(uint64(i)<<addr.PageShift))
	}
	s.chargeSyscall(s.costs.DescriptorDL + uint64(len(frames))*s.costs.PerPageMapping)
	return nil
}

// MapSuperpage builds a superpage over the virtual range
// [target, target+bytes): the scattered physical frames are made
// contiguous in shadow space by a direct mapping, and a single block TLB
// entry covers the whole range — the optimization of the authors'
// companion paper [21] ("Increasing TLB reach using superpages backed by
// shadow memory").
func (s *System) MapSuperpage(target addr.VAddr, bytes uint64) error {
	if !s.IsImpulse() {
		return ErrNotImpulse
	}
	if target.PageOff() != 0 {
		return fmt.Errorf("core: superpage base %v not page-aligned", target)
	}
	frames, err := s.K.FramesOf(target, bytes)
	if err != nil {
		return err
	}
	size := uint64(len(frames)) << addr.PageShift
	sh, err := s.K.ShadowAlloc(size, bitutil.CeilPow2(size))
	if err != nil {
		return err
	}
	s.FlushVRange(target, bytes)
	slot, err := s.MC.FreeSlot()
	if err != nil {
		return err
	}
	pvBase := s.allocPV(size, 0)
	d := mc.Descriptor{Kind: mc.Direct, ShadowBase: sh, Bytes: size, PVBase: pvBase}
	if err := s.MC.SetDescriptor(slot, d); err != nil {
		return err
	}
	for i, frame := range frames {
		s.MC.MapPV(pvBase.PageNum()+uint64(i), frame)
		if err := s.K.RemapToShadow(target.PageNum()+uint64(i), sh+addr.PAddr(uint64(i)<<addr.PageShift)); err != nil {
			return err
		}
		s.FlushTLBPage(target + addr.VAddr(uint64(i)<<addr.PageShift))
	}
	s.InstallBlockTLB(target, sh, size)
	s.chargeSyscall(s.costs.DescriptorDL + uint64(len(frames))*s.costs.PerPageMapping)
	return nil
}
