package core

import (
	"testing"

	"impulse/internal/addr"
)

func TestProcessIsolation(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	// Process 0 allocates and writes.
	x0 := s.MustAlloc(4096, 0)
	s.StoreF64(x0, 1.5)

	pid := s.SpawnProcess()
	if pid == 0 {
		t.Fatal("spawn returned pid 0")
	}
	if err := s.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	if s.CurrentProcess() != pid {
		t.Fatalf("CurrentProcess = %d", s.CurrentProcess())
	}
	// The new process has an empty address space: x0 is unmapped here.
	if _, ok := s.TranslateNoFault(x0); ok {
		t.Error("foreign mapping visible in fresh process")
	}
	// Its own allocations work and do not alias process 0's data.
	x1 := s.MustAlloc(4096, 0)
	s.StoreF64(x1, 2.5)
	if err := s.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadF64(x0); got != 1.5 {
		t.Errorf("process 0 data clobbered: %v", got)
	}
}

func TestSwitchProcessFlushesTLB(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	x := s.MustAlloc(4096, 0)
	s.Load64(x)
	misses := s.St.TLBMisses
	s.Load64(x + 8)
	if s.St.TLBMisses != misses {
		t.Fatal("warm TLB missed")
	}
	pid := s.SpawnProcess()
	if err := s.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	s.Load64(x)
	if s.St.TLBMisses == misses {
		t.Error("TLB survived context switch")
	}
}

func TestSwitchProcessUnknownPid(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	if err := s.SwitchProcess(99); err == nil {
		t.Error("switch to unknown pid succeeded")
	}
}

func TestFrameProtection(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	f, err := s.K.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	pid := s.SpawnProcess()
	if err := s.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	// The new process cannot map or free process 0's frame.
	va, _ := s.K.AllocVirtual(addr.PageSize, 0)
	if err := s.K.MapPage(va.PageNum(), f); err == nil {
		t.Error("mapped a foreign frame")
	}
	if err := s.K.FreeFrame(f); err == nil {
		t.Error("freed a foreign frame")
	}
}

// TestLRPCSharedShadow is the paper's §6 scenario: a server process
// builds a gather alias over its scattered buffers, grants the shadow
// region to a client, and the client maps it and reads the gathered
// message with zero copies — while an ungranted process is refused.
func TestLRPCSharedShadow(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)

	// Server (process 0): scattered buffers + indirection vector.
	const n = 512
	x := s.MustAlloc(n*8*4, 0)
	vec := s.MustAlloc(n*4, 0)
	for k := uint64(0); k < n; k++ {
		idx := uint32(k * 3) // every third word
		s.Store32(vec+addr.VAddr(4*k), idx)
		s.StoreF64(x+addr.VAddr(8*uint64(idx)), float64(k)+0.25)
	}
	alias, err := s.MapScatterGather(x, n*8*4, 8, vec, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := s.ShadowRegionOf(alias)
	if err != nil {
		t.Fatal(err)
	}

	client := s.SpawnProcess()
	intruder := s.SpawnProcess()
	if err := s.GrantShadow(sh, client); err != nil {
		t.Fatal(err)
	}

	// The client maps the granted shadow region and reads the message.
	if err := s.SwitchProcess(client); err != nil {
		t.Fatal(err)
	}
	msg, err := s.MapForeignShadow(sh, n*8)
	if err != nil {
		t.Fatalf("granted client denied: %v", err)
	}
	for k := 0; k < n; k++ {
		if got := s.LoadF64(msg + addr.VAddr(8*k)); got != float64(k)+0.25 {
			t.Fatalf("msg[%d] = %v", k, got)
		}
	}

	// The intruder was not granted access.
	if err := s.SwitchProcess(intruder); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MapForeignShadow(sh, n*8); err == nil {
		t.Error("ungranted process mapped foreign shadow")
	}

	// Revocation works: owner revokes, client can no longer map anew.
	if err := s.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	if err := s.K.RevokeShadow(sh, client); err != nil {
		t.Fatal(err)
	}
	if err := s.SwitchProcess(client); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MapForeignShadow(sh, n*8); err == nil {
		t.Error("revoked client mapped foreign shadow")
	}
}

func TestGrantRequiresOwner(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	sh, err := s.K.ShadowAlloc(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := s.SpawnProcess()
	b := s.SpawnProcess()
	if err := s.SwitchProcess(a); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantShadow(sh, b); err == nil {
		t.Error("non-owner granted a shadow region")
	}
	if err := s.K.RevokeShadow(sh, b); err == nil {
		t.Error("non-owner revoked a shadow region")
	}
}

func TestMapForeignShadowValidation(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	if _, err := s.MapForeignShadow(addr.PAddr(1<<30)+1, 8); err == nil {
		t.Error("unaligned foreign shadow base accepted")
	}
	conv := newSys(t, Conventional, PrefetchNone)
	if _, err := conv.MapForeignShadow(addr.PAddr(1<<30), 8); err != ErrNotImpulse {
		t.Error("conventional system mapped foreign shadow")
	}
	x := s.MustAlloc(4096, 0)
	if _, err := s.ShadowRegionOf(x); err == nil {
		t.Error("ShadowRegionOf accepted a DRAM-backed address")
	}
}
