package core

import (
	"fmt"

	"impulse/internal/stats"
)

// Row captures the metrics the paper reports per configuration (the rows
// of Tables 1 and 2): execution time in cycles, per-level load hit ratios
// (divisor: total loads), and average load time.
type Row struct {
	Label    string
	Cycles   uint64
	L1Ratio  float64
	L2Ratio  float64
	MemRatio float64
	AvgLoad  float64
	Stats    stats.MemStats
}

// rowObserver, when set, sees every Row produced by Result or
// Section.End. The cmd binaries use it to register each measured row's
// counters into an obs.Registry so report/sweep/impulse-sim expose one
// uniform metrics surface.
var rowObserver func(Row)

// SetRowObserver installs f as the package-wide row observer (nil
// removes it). Not safe for concurrent use with running systems; call
// it once during setup. Systems built with a per-system RowObserver
// (Options.RowObserver) bypass the global observer entirely — that is
// how the parallel experiment pool keeps row observation deterministic:
// workers buffer rows locally and the pool replays them through EmitRow
// in submission order.
func SetRowObserver(f func(Row)) { rowObserver = f }

// EmitRow delivers r to the global row observer (if any). The harness
// pool uses it to replay per-task buffered rows in submission order
// after a parallel run, so registry contents are independent of worker
// scheduling. Call it only from one goroutine at a time.
func EmitRow(r Row) {
	if rowObserver != nil {
		rowObserver(r)
	}
}

func (s *System) observeRow(r Row) {
	if s.rowObs != nil {
		s.rowObs(r)
		return
	}
	EmitRow(r)
}

// Result summarizes the system's full run so far.
func (s *System) Result(label string) (Row, error) {
	if s.rec != nil {
		s.rec.RecResult(label)
	}
	st := s.Snapshot()
	if err := st.CheckLoadClassification(); err != nil {
		return Row{}, err
	}
	r := Row{
		Label:    label,
		Cycles:   s.Now(),
		L1Ratio:  st.L1HitRatio(),
		L2Ratio:  st.L2HitRatio(),
		MemRatio: st.MemHitRatio(),
		AvgLoad:  st.AvgLoadTime(),
		Stats:    st,
	}
	s.observeRow(r)
	return r, nil
}

// Section measures a timed portion of a run, NPB-style: initialization
// and data generation are excluded; remapping system calls and cache
// flushes issued inside the section are included (the paper charges them
// against Impulse).
type Section struct {
	s  *System
	st stats.MemStats
	t0 uint64
}

// BeginSection starts a timed section.
func (s *System) BeginSection() Section {
	if s.rec != nil {
		s.rec.RecSectionBegin()
	}
	return Section{s: s, st: s.Snapshot(), t0: s.Now()}
}

// End closes the section and reports its metrics.
func (sec Section) End(label string) (Row, error) {
	if sec.s.rec != nil {
		sec.s.rec.RecSectionEnd(label)
	}
	cur := sec.s.Snapshot()
	d := stats.Delta(&sec.st, &cur)
	if err := d.CheckLoadClassification(); err != nil {
		return Row{}, err
	}
	r := Row{
		Label:    label,
		Cycles:   sec.s.Now() - sec.t0,
		L1Ratio:  d.L1HitRatio(),
		L2Ratio:  d.L2HitRatio(),
		MemRatio: d.MemHitRatio(),
		AvgLoad:  d.AvgLoadTime(),
		Stats:    d,
	}
	sec.s.observeRow(r)
	return r, nil
}

// Speedup returns base time / r time, the paper's speedup convention
// (baseline = conventional system without prefetching).
func Speedup(base, r Row) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

func (r Row) String() string {
	return fmt.Sprintf("%s: %s cycles, L1 %.1f%%, L2 %.1f%%, mem %.1f%%, avg load %.2f",
		r.Label, stats.FormatCycles(r.Cycles), r.L1Ratio*100, r.L2Ratio*100, r.MemRatio*100, r.AvgLoad)
}
