package core

import (
	"strings"
	"testing"

	"impulse/internal/addr"
	"impulse/internal/mc"
)

func TestDescriptorSlotExhaustionViaAPI(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	x := s.MustAlloc(4096, 0)
	vec := s.MustAlloc(4096, 0)
	for i := 0; i < mc.NumDescriptors; i++ {
		if _, err := s.MapScatterGather(x, 4096, 8, vec, 16, 0); err != nil {
			t.Fatalf("gather %d: %v", i, err)
		}
	}
	_, err := s.MapScatterGather(x, 4096, 8, vec, 16, 0)
	if err == nil || !strings.Contains(err.Error(), "descriptors") {
		t.Errorf("ninth gather: %v", err)
	}
}

func TestMapScatterGatherValidation(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	x := s.MustAlloc(4096, 0)
	vec := s.MustAlloc(4096, 0)
	if _, err := s.MapScatterGather(x, 4096, 12, vec, 16, 0); err == nil {
		t.Error("non-pow2 element size accepted")
	}
	if _, err := s.MapScatterGather(x, 4096, 8, vec, 16, 4097); err == nil {
		t.Error("unaligned l1Offset accepted")
	}
	if _, err := s.MapScatterGather(x, 4096, 8, vec, 16, s.Config().L1.Bytes); err == nil {
		t.Error("out-of-range l1Offset accepted")
	}
	// Unmapped target pages.
	if _, err := s.MapScatterGather(x+addr.VAddr(1<<20), 4096, 8, vec, 16, 0); err == nil {
		t.Error("unmapped target accepted")
	}
}

func TestShadowSpaceExhaustionViaAlias(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	// The default layout has 1 GB of shadow space; ask for more than
	// remains in one alias.
	if _, err := s.NewStridedAlias(8, 64, (2<<30)/8, 0); err == nil {
		t.Error("2 GB alias in a 1 GB shadow window accepted")
	}
}

func TestRecolorUnmappedTarget(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	if err := s.Recolor(0xDEAD000, 4096, 0, 3); err == nil {
		t.Error("recolor of unmapped range accepted")
	}
}

func TestSuperpageOnRecoloredPagesRejected(t *testing.T) {
	// Recoloring makes the pages shadow-backed; a superpage over them
	// would double-remap, which FramesOf correctly refuses.
	s := newSys(t, Impulse, PrefetchNone)
	x := s.MustAlloc(8*addr.PageSize, 0)
	if err := s.Recolor(x, 8*addr.PageSize, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.MapSuperpage(x, 8*addr.PageSize); err == nil {
		t.Error("superpage over recolored (shadow-backed) pages accepted")
	}
}

func TestSectionDeltaIsolation(t *testing.T) {
	s := newSys(t, Conventional, PrefetchNone)
	x := s.MustAlloc(64<<10, 0)
	// Heavy pre-section activity.
	for i := uint64(0); i < 4096; i++ {
		s.LoadF64(x + addr.VAddr(8*i))
	}
	sec := s.BeginSection()
	for i := uint64(0); i < 8; i++ {
		s.LoadF64(x + addr.VAddr(8*i)) // warm: L1 hits
	}
	row, err := sec.End("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.Loads != 8 {
		t.Errorf("section loads = %d, want 8", row.Stats.Loads)
	}
	if row.L1Ratio != 1.0 {
		t.Errorf("section L1 ratio = %v, want 1.0", row.L1Ratio)
	}
	if row.Stats.LoadLatency.Count != 8 {
		t.Errorf("section latency histogram count = %d", row.Stats.LoadLatency.Count)
	}
}

func TestDRAMExhaustionSurfaces(t *testing.T) {
	// A machine with tiny DRAM runs out of frames cleanly.
	s := newSys(t, Impulse, PrefetchNone)
	// Default DRAM is 256 MB with ~1 MB reserved; allocate until failure.
	var err error
	for i := 0; i < 4096; i++ {
		if _, err = s.Alloc(1<<20, 0); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "color") && !strings.Contains(err.Error(), "memory") {
		t.Errorf("DRAM exhaustion error = %v", err)
	}
}
