package core

import (
	"math/rand"
	"testing"

	"impulse/internal/addr"
)

// differential testing: a randomly generated program of loads, stores,
// flushes, and gathered reads must compute bit-identical results on every
// memory-system configuration — conventional or Impulse, any prefetch
// policy, with or without recoloring and superpages applied. The memory
// system may only change *when* data moves, never *what* the program
// computes.

type fuzzProgram struct {
	seed    int64
	nA      uint64 // gathered array elements
	nVec    uint64 // indirection vector entries
	nB      uint64 // recolored array elements
	nC      uint64 // superpaged array elements
	ops     []fuzzOp
	vecVals []uint32
}

type fuzzOp struct {
	kind int // 0: store A, 1: load A, 2: store B, 3: load C, 4: gathered read, 5: flush range
	idx  uint64
	val  float64
}

func genProgram(seed int64, nops int) *fuzzProgram {
	rng := rand.New(rand.NewSource(seed))
	p := &fuzzProgram{
		seed: seed,
		nA:   uint64(rng.Intn(4000) + 512),
		nVec: uint64(rng.Intn(1000) + 64),
		nB:   uint64(rng.Intn(3000) + 512),
		nC:   uint64(rng.Intn(2000) + 512),
	}
	p.vecVals = make([]uint32, p.nVec)
	for k := range p.vecVals {
		p.vecVals[k] = uint32(rng.Intn(int(p.nA)))
	}
	for i := 0; i < nops; i++ {
		op := fuzzOp{kind: rng.Intn(6), val: rng.NormFloat64()}
		switch op.kind {
		case 0, 1:
			op.idx = uint64(rng.Intn(int(p.nA)))
		case 2:
			op.idx = uint64(rng.Intn(int(p.nB)))
		case 3:
			op.idx = uint64(rng.Intn(int(p.nC)))
		case 4:
			op.idx = uint64(rng.Intn(int(p.nVec)))
		case 5:
			op.idx = uint64(rng.Intn(int(p.nA)))
		}
		p.ops = append(p.ops, op)
	}
	return p
}

// run executes the program; on Impulse systems the three remapping
// optimizations are applied and gathered reads go through the alias.
func (p *fuzzProgram) run(t *testing.T, s *System) float64 {
	t.Helper()
	a := s.MustAlloc(p.nA*8, 0)
	vec := s.MustAlloc(p.nVec*4, 0)
	b := s.MustAlloc(p.nB*8, 0)
	c := s.MustAlloc(p.nC*8, 0)
	for k, v := range p.vecVals {
		s.Store32(vec+addr.VAddr(4*k), v)
	}
	// Deterministic initial contents.
	for i := uint64(0); i < p.nA; i++ {
		s.StoreF64(a+addr.VAddr(8*i), float64(i)*0.5)
	}

	var alias addr.VAddr
	if s.IsImpulse() {
		var err error
		alias, err = s.MapScatterGather(a, p.nA*8, 8, vec, p.nVec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Recolor(b, p.nB*8, 4, 11); err != nil {
			t.Fatal(err)
		}
		if err := s.MapSuperpage(c, p.nC*8); err != nil {
			t.Fatal(err)
		}
	}

	var checksum float64
	for _, op := range p.ops {
		switch op.kind {
		case 0:
			s.StoreF64(a+addr.VAddr(8*op.idx), op.val)
		case 1:
			checksum += s.LoadF64(a + addr.VAddr(8*op.idx))
		case 2:
			s.StoreF64(b+addr.VAddr(8*op.idx), op.val)
			checksum += s.LoadF64(b + addr.VAddr(8*op.idx))
		case 3:
			s.StoreF64(c+addr.VAddr(8*op.idx), op.val*2)
			checksum += s.LoadF64(c + addr.VAddr(8*op.idx))
		case 4:
			if s.IsImpulse() {
				// Consistency protocol, then read through the alias.
				s.FlushVRange(a, p.nA*8)
				s.PurgeVRange(alias+addr.VAddr(8*op.idx), 8)
				s.MC.InvalidateBuffers()
				checksum += s.LoadF64(alias + addr.VAddr(8*op.idx))
			} else {
				j := s.Load32(vec + addr.VAddr(4*op.idx))
				checksum += s.LoadF64(a + addr.VAddr(8*uint64(j)))
			}
		case 5:
			span := p.nA*8 - op.idx*8
			if span > 512 {
				span = 512
			}
			s.FlushVRange(a+addr.VAddr(8*op.idx), span)
		}
	}
	// Fold final contents of every array.
	for i := uint64(0); i < p.nA; i++ {
		checksum += s.LoadF64(a+addr.VAddr(8*i)) * float64(i%13+1)
	}
	for i := uint64(0); i < p.nB; i++ {
		checksum += s.LoadF64(b+addr.VAddr(8*i)) * float64(i%7+1)
	}
	for i := uint64(0); i < p.nC; i++ {
		checksum += s.LoadF64(c+addr.VAddr(8*i)) * float64(i%5+1)
	}
	if err := s.St.CheckLoadClassification(); err != nil {
		t.Errorf("seed %d: %v", p.seed, err)
	}
	return checksum
}

func TestDifferentialRandomPrograms(t *testing.T) {
	configs := []Options{
		{Controller: Conventional, Prefetch: PrefetchNone},
		{Controller: Conventional, Prefetch: PrefetchL1},
		{Controller: Impulse, Prefetch: PrefetchNone},
		{Controller: Impulse, Prefetch: PrefetchMC},
		{Controller: Impulse, Prefetch: PrefetchBoth},
	}
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog := genProgram(seed, 400)
		var want float64
		for ci, opt := range configs {
			s, err := NewSystem(opt)
			if err != nil {
				t.Fatal(err)
			}
			got := prog.run(t, s)
			if ci == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("seed %d: config %d (%v/%v) checksum %v != baseline %v",
					seed, ci, opt.Controller, opt.Prefetch, got, want)
			}
		}
	}
}

// TestDifferentialDeterminism: the same configuration run twice must give
// identical cycle counts (the simulator has no hidden nondeterminism).
func TestDifferentialDeterminism(t *testing.T) {
	prog := genProgram(99, 300)
	run := func() (float64, uint64) {
		s, err := NewSystem(Options{Controller: Impulse, Prefetch: PrefetchBoth})
		if err != nil {
			t.Fatal(err)
		}
		sum := prog.run(t, s)
		return sum, s.Now()
	}
	sum1, cyc1 := run()
	sum2, cyc2 := run()
	if sum1 != sum2 || cyc1 != cyc2 {
		t.Errorf("nondeterminism: (%v, %d) vs (%v, %d)", sum1, cyc1, sum2, cyc2)
	}
}
