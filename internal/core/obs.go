package core

import (
	"fmt"
	"strings"

	"impulse/internal/obs"
)

// CollectRows returns a row observer (for SetRowObserver) that registers
// every observed row's metrics into reg under a "rowNNN.<label>." prefix:
// the row's cycle count plus its full MemStats snapshot. This gives the
// cmd binaries (report, sweep, impulse-sim) one uniform counter surface
// over everything they measured.
func CollectRows(reg *obs.Registry) func(Row) {
	n := 0
	return func(row Row) {
		rc := row // the registry reads this copy at dump time
		label := strings.Map(func(r rune) rune {
			switch r {
			case ' ', '\t', '\n':
				return '_'
			}
			return r
		}, row.Label)
		prefix := fmt.Sprintf("row%03d.%s.", n, label)
		n++
		reg.Gauge(prefix+"cycles", func() uint64 { return rc.Cycles })
		rc.Stats.Register(reg, prefix)
	}
}
