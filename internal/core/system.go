// Package core is the public face of the Impulse reproduction: a System
// bundles the simulated machine with the operating-system side of Impulse
// (the system-call suite of §2.1) and exposes the remapping operations the
// paper's optimizations are built from:
//
//   - MapScatterGather — §2.3 "Scatter/gather using an indirection vector"
//   - NewStridedAlias/Retarget — §2.3 "Strided physical memory" (tiles)
//   - Recolor — §2.3 "Direct mapping" used for no-copy page recoloring
//   - MapSuperpage — direct mapping used to build superpages ([21])
//
// A System is single-threaded, like the paper's single-issue machine.
// Workloads access memory through the embedded *sim.Machine and perform
// remappings through System methods, which charge the system-call,
// descriptor-download, page-mapping-download, and cache-flush costs that
// the paper's measurements include.
package core

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/sim"
	"impulse/internal/stats"
)

// ControllerKind selects the memory controller personality.
type ControllerKind int

const (
	// Conventional is a standard memory controller: no remapping, no
	// controller prefetching. (The machine still has the same caches,
	// bus, and DRAM.)
	Conventional ControllerKind = iota
	// Impulse enables shadow-address remapping.
	Impulse
)

func (k ControllerKind) String() string {
	if k == Conventional {
		return "conventional"
	}
	return "impulse"
}

// PrefetchPolicy matches the four columns of the paper's Tables 1 and 2.
type PrefetchPolicy int

const (
	// PrefetchNone: the "Standard" column.
	PrefetchNone PrefetchPolicy = iota
	// PrefetchMC: controller prefetching ("Impulse" column).
	PrefetchMC
	// PrefetchL1: hardware next-line prefetching into the L1 cache
	// ("L1 cache" column; the HP PA 7200 mechanism).
	PrefetchL1
	// PrefetchBoth: both mechanisms ("both" column).
	PrefetchBoth
)

func (p PrefetchPolicy) String() string {
	switch p {
	case PrefetchNone:
		return "none"
	case PrefetchMC:
		return "mc"
	case PrefetchL1:
		return "l1"
	case PrefetchBoth:
		return "both"
	default:
		return fmt.Sprintf("PrefetchPolicy(%d)", int(p))
	}
}

// Costs models the software overheads of using Impulse. The exact values
// are not in the paper; they are sized so that, as the paper reports, "the
// system calls for using Impulse, and the associated cache
// flushes/purges, are faster than copying tiles" while remaining visible.
type Costs struct {
	Syscall        uint64 // trap + kernel entry/exit
	DescriptorDL   uint64 // downloading one shadow descriptor
	PerPageMapping uint64 // downloading one PgTbl entry
}

// DefaultCosts returns the calibrated overheads.
func DefaultCosts() Costs {
	return Costs{Syscall: 200, DescriptorDL: 50, PerPageMapping: 4}
}

// Options configures a System.
type Options struct {
	Controller ControllerKind
	Prefetch   PrefetchPolicy
	Costs      Costs
	// Config optionally overrides the machine configuration. Nil means
	// sim.DefaultConfig().
	Config *sim.Config
	// RowObserver, when non-nil, receives every Row this system produces
	// (Result / Section.End) instead of the package-global observer set
	// with SetRowObserver. The parallel experiment pool injects one per
	// task so concurrent systems never touch shared observer state.
	RowObserver func(Row)
}

// System is an Impulse (or conventional) machine plus its OS interface.
type System struct {
	*sim.Machine

	kind   ControllerKind
	pf     PrefetchPolicy
	costs  Costs
	rowObs func(Row)

	// rec receives run-level events (syscall accounting, section
	// boundaries) during trace recording; nil otherwise.
	rec RunRecorder

	// Pseudo-virtual space bump allocator for descriptor targets.
	pvNext uint64
}

// RunRecorder observes the run-level events a trace must carry beyond
// the raw machine-command stream: syscall statistics (their cycle cost
// flows through recorded Ticks, but the Syscalls/SyscallCycles counters
// must still match on replay) and measurement-section boundaries.
type RunRecorder interface {
	RecSyscallStats(calls, cycles uint64)
	RecSectionBegin()
	RecSectionEnd(label string)
	RecResult(label string)
}

// SetRunRecorder attaches (or detaches, with nil) a run recorder.
func (s *System) SetRunRecorder(r RunRecorder) { s.rec = r }

// NewSystem builds a system.
func NewSystem(opts Options) (*System, error) {
	cfg := sim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if opts.Costs == (Costs{}) {
		opts.Costs = DefaultCosts()
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{
		Machine: m,
		kind:    opts.Controller,
		pf:      opts.Prefetch,
		costs:   opts.Costs,
		rowObs:  opts.RowObserver,
		pvNext:  0x1_0000_0000,
	}
	m.SetMCPrefetch(opts.Prefetch == PrefetchMC || opts.Prefetch == PrefetchBoth)
	m.SetL1Prefetch(opts.Prefetch == PrefetchL1 || opts.Prefetch == PrefetchBoth)
	return s, nil
}

// Kind returns the controller personality.
func (s *System) Kind() ControllerKind { return s.kind }

// Prefetch returns the prefetch policy.
func (s *System) Prefetch() PrefetchPolicy { return s.pf }

// IsImpulse reports whether remapping operations are available.
func (s *System) IsImpulse() bool { return s.kind == Impulse }

// Alloc allocates and maps `bytes` of zeroed memory, page-aligned
// (align 0) or with the requested power-of-two alignment.
func (s *System) Alloc(bytes, align uint64) (addr.VAddr, error) {
	return s.K.AllocAndMap(bytes, align)
}

// MustAlloc is Alloc for setup code where failure is a test/program bug.
func (s *System) MustAlloc(bytes, align uint64) addr.VAddr {
	v, err := s.Alloc(bytes, align)
	if err != nil {
		panic(err)
	}
	return v
}

// chargeSyscall advances time by a kernel crossing.
func (s *System) chargeSyscall(extra uint64) {
	s.St.Syscalls++
	c := s.costs.Syscall + extra
	s.St.SyscallCycles += c
	if s.rec != nil {
		s.rec.RecSyscallStats(1, c)
	}
	s.Tick(c)
}

// allocPV reserves a pseudo-virtual region of the given size, page
// aligned, preserving the page offset of `like` so AddrCalc's page
// arithmetic matches the target structure.
func (s *System) allocPV(bytes uint64, like addr.VAddr) addr.PVAddr {
	base := s.pvNext
	s.pvNext += (bytes + 2*addr.PageSize) &^ (addr.PageSize - 1)
	return addr.PVAddr(base | like.PageOff())
}

// downloadMappings maps the pseudo-virtual image of the virtual range
// [target, target+bytes) in the controller's page table, charging
// per-entry download cost. Returns the pv base corresponding to target.
func (s *System) downloadMappings(target addr.VAddr, bytes uint64) (addr.PVAddr, error) {
	frames, err := s.K.FramesOf(target, bytes)
	if err != nil {
		return 0, err
	}
	pv := s.allocPV(bytes, target)
	s.MC.MapPVRange(pv, frames)
	s.Tick(uint64(len(frames)) * s.costs.PerPageMapping)
	s.St.SyscallCycles += uint64(len(frames)) * s.costs.PerPageMapping
	if s.rec != nil {
		s.rec.RecSyscallStats(0, uint64(len(frames))*s.costs.PerPageMapping)
	}
	return pv, nil
}

// Snapshot returns a copy of the current statistics.
func (s *System) Snapshot() stats.MemStats { return *s.St }
