package core

import (
	"testing"

	"impulse/internal/addr"
	"impulse/internal/dram"
	"impulse/internal/sim"
)

// Extreme-configuration tests: shrinking every hardware structure to its
// minimum must degrade timing, never correctness. This is the
// reproduction's failure-injection suite — the structures under pressure
// (PgTbl TLB, prefetch buffers, DRAM banks, processor TLB) are exactly
// the ones whose misbehavior would corrupt remapped data silently.

func extremeConfig(mutate func(*sim.Config)) Options {
	cfg := sim.DefaultConfig()
	mutate(&cfg)
	return Options{Controller: Impulse, Prefetch: PrefetchBoth, Config: &cfg}
}

// runGatherProgram builds a gather over a scattered vector and verifies
// every element, returning total cycles.
func runGatherProgram(t *testing.T, opts Options) uint64 {
	t.Helper()
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n, xN = 2048, 16384
	x := s.MustAlloc(xN*8, 0)
	vec := s.MustAlloc(n*4, 0)
	for k := uint64(0); k < n; k++ {
		s.Store32(vec+addr.VAddr(4*k), uint32((k*509)%xN))
	}
	for j := uint64(0); j < xN; j++ {
		s.StoreF64(x+addr.VAddr(8*j), float64(j)*0.25)
	}
	alias, err := s.MapScatterGather(x, xN*8, 8, vec, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := s.Now()
	for k := uint64(0); k < n; k++ {
		got := s.LoadF64(alias + addr.VAddr(8*k))
		want := float64((k*509)%xN) * 0.25
		if got != want {
			t.Fatalf("element %d = %v, want %v", k, got, want)
		}
	}
	if err := s.St.CheckLoadClassification(); err != nil {
		t.Fatal(err)
	}
	return s.Now() - t0
}

func TestExtremeTinyPgTbl(t *testing.T) {
	base := runGatherProgram(t, Options{Controller: Impulse, Prefetch: PrefetchBoth})
	tiny := runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.MC.PgTblEntries = 1
	}))
	if tiny <= base {
		t.Errorf("1-entry PgTbl (%d cycles) not slower than 64-entry (%d)", tiny, base)
	}
}

func TestExtremeMinimumBuffers(t *testing.T) {
	runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.MC.SRAMBytes = c.MC.LineBytes    // one line of prefetch SRAM
		c.MC.DescBufBytes = c.MC.LineBytes // one line per descriptor
	}))
}

func TestExtremeSingleDRAMBank(t *testing.T) {
	base := runGatherProgram(t, Options{Controller: Impulse, Prefetch: PrefetchBoth})
	serial := runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.DRAM.Banks = 1
	}))
	if serial <= base {
		t.Errorf("single-bank DRAM (%d cycles) not slower than 16-bank (%d)", serial, base)
	}
}

func TestExtremeTinyTLB(t *testing.T) {
	runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.TLBEntries = 1
		c.TLBMissPenalty = 100
	}))
}

func TestExtremeSlowDRAM(t *testing.T) {
	fast := runGatherProgram(t, Options{Controller: Impulse, Prefetch: PrefetchBoth})
	slow := runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.DRAM.RowHit = 80
		c.DRAM.RowMiss = 200
	}))
	if slow <= fast {
		t.Errorf("10x DRAM latency (%d cycles) not slower than default (%d)", slow, fast)
	}
}

func TestExtremeRowMajorScheduler(t *testing.T) {
	runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.MC.Order = dram.RowMajor
	}))
}

func TestExtremeDirectMappedL2(t *testing.T) {
	runGatherProgram(t, extremeConfig(func(c *sim.Config) {
		c.L2.Ways = 1
	}))
}

func TestExtremeInvalidConfigsRejected(t *testing.T) {
	bad := []func(*sim.Config){
		func(c *sim.Config) { c.MC.SRAMBytes = 8 },      // smaller than a line
		func(c *sim.Config) { c.MC.PgTblEntries = 0 },   //
		func(c *sim.Config) { c.DRAM.Banks = 0 },        //
		func(c *sim.Config) { c.TLBEntries = 0 },        //
		func(c *sim.Config) { c.L1.Ways = 3 },           // non-pow2
		func(c *sim.Config) { c.Bus.BytesPerCycle = 0 }, //
	}
	for i, mutate := range bad {
		cfg := sim.DefaultConfig()
		mutate(&cfg)
		if _, err := NewSystem(Options{Controller: Impulse, Config: &cfg}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
