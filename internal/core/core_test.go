package core

import (
	"math/rand"
	"testing"

	"impulse/internal/addr"
)

func newSys(t *testing.T, kind ControllerKind, pf PrefetchPolicy) *System {
	t.Helper()
	s, err := NewSystem(Options{Controller: kind, Prefetch: pf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrefetchWiring(t *testing.T) {
	for _, pf := range []PrefetchPolicy{PrefetchNone, PrefetchMC, PrefetchL1, PrefetchBoth} {
		s := newSys(t, Impulse, pf)
		if s.Prefetch() != pf {
			t.Errorf("Prefetch() = %v, want %v", s.Prefetch(), pf)
		}
	}
	s := newSys(t, Conventional, PrefetchNone)
	if s.IsImpulse() {
		t.Error("conventional system claims Impulse")
	}
}

func TestRemapRequiresImpulse(t *testing.T) {
	s := newSys(t, Conventional, PrefetchNone)
	x := s.MustAlloc(4096, 0)
	v := s.MustAlloc(4096, 0)
	if _, err := s.MapScatterGather(x, 4096, 8, v, 16, 0); err != ErrNotImpulse {
		t.Errorf("MapScatterGather on conventional: %v", err)
	}
	if _, err := s.NewStridedAlias(8, 64, 16, 0); err != ErrNotImpulse {
		t.Errorf("NewStridedAlias on conventional: %v", err)
	}
	if err := s.Recolor(x, 4096, 0, 3); err != ErrNotImpulse {
		t.Errorf("Recolor on conventional: %v", err)
	}
	if err := s.MapSuperpage(x, 4096); err != ErrNotImpulse {
		t.Errorf("MapSuperpage on conventional: %v", err)
	}
}

func TestScatterGatherFunctional(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	const n = 1400 // deliberately not a page multiple (tail clamping)
	xN := uint64(5000)
	x := s.MustAlloc(xN*8, 0)
	vec := s.MustAlloc(n*4, 0)
	rng := rand.New(rand.NewSource(7))
	idx := make([]uint32, n)
	for k := range idx {
		idx[k] = uint32(rng.Intn(int(xN)))
		s.Store32(vec+addr.VAddr(4*k), idx[k])
	}
	for j := uint64(0); j < xN; j++ {
		s.StoreF64(x+addr.VAddr(8*j), float64(j)*0.5)
	}
	alias, err := s.MapScatterGather(x, xN*8, 8, vec, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		got := s.LoadF64(alias + addr.VAddr(8*k))
		want := float64(idx[k]) * 0.5
		if got != want {
			t.Fatalf("x'[%d] = %v, want %v (idx %d)", k, got, want, idx[k])
		}
	}
	if s.St.ShadowReads == 0 {
		t.Error("gather path not exercised")
	}
	if err := s.St.CheckLoadClassification(); err != nil {
		t.Error(err)
	}
}

func TestScatterGatherImprovesLocality(t *testing.T) {
	// The paper's core claim (§3.1): gathered access has far better L1
	// behaviour and lower bus traffic than sparse indirect access.
	const n = 4096
	xN := uint64(64 << 10) // 512 KB of doubles: misses everywhere
	idx := make([]uint32, n)
	rng := rand.New(rand.NewSource(11))
	for k := range idx {
		idx[k] = uint32(rng.Intn(int(xN)))
	}

	setup := func(s *System) (addr.VAddr, addr.VAddr) {
		x := s.MustAlloc(xN*8, 0)
		vec := s.MustAlloc(n*4, 0)
		for k := range idx {
			s.Store32(vec+addr.VAddr(4*k), idx[k])
		}
		for j := uint64(0); j < xN; j++ {
			s.StoreF64(x+addr.VAddr(8*j), float64(j))
		}
		return x, vec
	}

	// Conventional: x[vec[k]] with CPU-issued indirection loads.
	conv := newSys(t, Conventional, PrefetchNone)
	x, vec := setup(conv)
	convStart := conv.Snapshot()
	convT0 := conv.Now()
	var sum float64
	for k := 0; k < n; k++ {
		j := conv.Load32(vec + addr.VAddr(4*k))
		sum += conv.LoadF64(x + addr.VAddr(8*uint64(j)))
	}
	convCycles := conv.Now() - convT0
	convSt := conv.Snapshot()
	convBus := convSt.BusBytes - convStart.BusBytes
	convLoads := convSt.Loads - convStart.Loads

	// Impulse: gathered x', no CPU indirection loads.
	imp := newSys(t, Impulse, PrefetchNone)
	x, vec = setup(imp)
	alias, err := imp.MapScatterGather(x, xN*8, 8, vec, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	impStart := imp.Snapshot()
	impT0 := imp.Now()
	var sum2 float64
	for k := 0; k < n; k++ {
		sum2 += imp.LoadF64(alias + addr.VAddr(8*k))
	}
	impCycles := imp.Now() - impT0
	impSt := imp.Snapshot()
	impBus := impSt.BusBytes - impStart.BusBytes
	impLoads := impSt.Loads - impStart.Loads

	if sum != sum2 {
		t.Fatalf("results differ: %v vs %v", sum, sum2)
	}
	if impLoads >= convLoads {
		t.Errorf("Impulse issued %d loads, conventional %d (should be fewer)", impLoads, convLoads)
	}
	if impBus >= convBus {
		t.Errorf("Impulse moved %d bus bytes, conventional %d (should be fewer)", impBus, convBus)
	}
	l1Imp := float64(impSt.L1LoadHits-impStart.L1LoadHits) / float64(impLoads)
	l1Conv := float64(convSt.L1LoadHits-convStart.L1LoadHits) / float64(convLoads)
	if l1Imp <= l1Conv {
		t.Errorf("Impulse L1 ratio %.3f not above conventional %.3f", l1Imp, l1Conv)
	}
	if impCycles >= convCycles {
		t.Errorf("Impulse %d cycles, conventional %d (gather should win)", impCycles, convCycles)
	}
}

func TestStridedAliasDiagonal(t *testing.T) {
	// Figure 1: remap the diagonal of a dense matrix into dense lines.
	s := newSys(t, Impulse, PrefetchNone)
	const dim = 64
	rowBytes := uint64(dim * 8)
	mat := s.MustAlloc(dim*rowBytes, 0)
	for i := 0; i < dim; i++ {
		s.StoreF64(mat+addr.VAddr(uint64(i)*rowBytes+uint64(i)*8), float64(i)+0.25)
	}
	diag, err := s.NewStridedAlias(8, rowBytes+8, dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retarget(diag, mat, dim*rowBytes, Purge); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dim; i++ {
		got := s.LoadF64(diag.VA + addr.VAddr(8*i))
		if got != float64(i)+0.25 {
			t.Fatalf("diag[%d] = %v", i, got)
		}
	}
	// 64 dense doubles = 4 L2 lines -> at most 4 memory accesses.
	if s.St.MemLoads > 8 {
		t.Errorf("diagonal reads caused %d memory accesses", s.St.MemLoads)
	}
}

func TestStridedAliasWriteScatter(t *testing.T) {
	// The C-tile case: write through the alias, flush, and observe the
	// values landing in the strided structure.
	s := newSys(t, Impulse, PrefetchNone)
	const count = 32
	stride := uint64(256)
	target := s.MustAlloc(count*stride, 0)
	a, err := s.NewStridedAlias(8, stride, count, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retarget(a, target, count*stride, Purge); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		s.StoreF64(a.VA+addr.VAddr(8*i), float64(i)*3.0)
	}
	s.FlushVRange(a.VA, a.Bytes) // dirty shadow lines scatter back
	for i := 0; i < count; i++ {
		got := s.LoadF64(target + addr.VAddr(uint64(i)*stride))
		if got != float64(i)*3.0 {
			t.Fatalf("target[%d] = %v, want %v", i, got, float64(i)*3.0)
		}
	}
}

func TestRetargetMovesAlias(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	stride := uint64(128)
	t1 := s.MustAlloc(16*stride, 0)
	t2 := s.MustAlloc(16*stride, 0)
	for i := 0; i < 16; i++ {
		s.StoreF64(t1+addr.VAddr(uint64(i)*stride), 100+float64(i))
		s.StoreF64(t2+addr.VAddr(uint64(i)*stride), 200+float64(i))
	}
	a, err := s.NewStridedAlias(8, stride, 16, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retarget(a, t1, 16*stride, Purge); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadF64(a.VA); got != 100 {
		t.Fatalf("alias on t1 = %v", got)
	}
	if err := s.Retarget(a, t2, 16*stride, Purge); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadF64(a.VA); got != 200 {
		t.Fatalf("alias on t2 = %v (stale cache or mapping)", got)
	}
	s.Release(a)
	if _, err := s.MC.FreeSlot(); err != nil {
		t.Errorf("slot not released: %v", err)
	}
}

func TestStridedAliasL1Placement(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	l1 := s.Config().L1.Bytes
	a, err := s.NewStridedAlias(8, 128, 512, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a.VA)%l1 != 8192 {
		t.Errorf("alias VA %#x not at L1 offset 8192", uint64(a.VA))
	}
	if _, err := s.NewStridedAlias(8, 128, 16, 4097); err == nil {
		t.Error("unaligned l1Offset accepted")
	}
	if _, err := s.NewStridedAlias(8, 128, 16, l1); err == nil {
		t.Error("l1Offset beyond L1 accepted")
	}
	if _, err := s.NewStridedAlias(12, 128, 16, 0); err == nil {
		t.Error("non-pow2 object size accepted")
	}
}

func TestRecolorPreservesValues(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	bytes := uint64(16 * addr.PageSize)
	x := s.MustAlloc(bytes, 0)
	for i := uint64(0); i < bytes/8; i += 64 {
		s.StoreF64(x+addr.VAddr(8*i), float64(i))
	}
	if err := s.Recolor(x, bytes, 0, 15); err != nil {
		t.Fatal(err)
	}
	// Pages now map to shadow space.
	p, ok := s.TranslateNoFault(x)
	if !ok || !s.MC.IsShadow(p) {
		t.Fatalf("recolored page not shadow-backed: %v %v", p, ok)
	}
	for i := uint64(0); i < bytes/8; i += 64 {
		if got := s.LoadF64(x + addr.VAddr(8*i)); got != float64(i) {
			t.Fatalf("x[%d] = %v after recolor", i, got)
		}
	}
	if err := s.St.CheckLoadClassification(); err != nil {
		t.Error(err)
	}
}

func TestRecolorColors(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	bytes := uint64(8 * addr.PageSize)
	x := s.MustAlloc(bytes, 0)
	if err := s.Recolor(x, bytes, 4, 5); err != nil {
		t.Fatal(err)
	}
	nc := s.K.NumColors()
	for i := uint64(0); i < 8; i++ {
		p, ok := s.TranslateNoFault(x + addr.VAddr(i*addr.PageSize))
		if !ok {
			t.Fatal("page unmapped")
		}
		color := p.PageNum() & (nc - 1)
		if color != 4 && color != 5 {
			t.Errorf("page %d landed on color %d, want 4 or 5", i, color)
		}
	}
	if err := s.Recolor(x, bytes, 5, 4); err == nil {
		t.Error("inverted color range accepted")
	}
	if err := s.Recolor(x, bytes, 0, nc); err == nil {
		t.Error("out-of-range color accepted")
	}
}

func TestRecolorEliminatesConflicts(t *testing.T) {
	// Two streams whose physical pages collide in the L2 thrash; after
	// recoloring them apart, repeated sweeps hit in L2.
	run := func(recolor bool) uint64 {
		s := newSys(t, Impulse, PrefetchNone)
		// Allocate both arrays on the SAME colors to force conflicts.
		bytes := uint64(16 * addr.PageSize) // 64 KB each
		a, err := s.K.AllocAndMapColored(bytes, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.K.AllocAndMapColored(bytes, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if recolor {
			if err := s.Recolor(addr.VAddr(a), bytes, 8, 15); err != nil {
				t.Fatal(err)
			}
			if err := s.Recolor(addr.VAddr(b), bytes, 16, 23); err != nil {
				t.Fatal(err)
			}
		}
		st0 := s.Snapshot()
		for sweep := 0; sweep < 4; sweep++ {
			for off := uint64(0); off < bytes; off += 8 {
				s.LoadF64(addr.VAddr(a) + addr.VAddr(off))
				s.LoadF64(addr.VAddr(b) + addr.VAddr(off))
			}
		}
		return s.St.MemLoads - st0.MemLoads
	}
	base := run(false)
	rec := run(true)
	if rec >= base {
		t.Errorf("recoloring did not reduce memory accesses: %d vs %d", rec, base)
	}
}

func TestSuperpageReducesTLBMisses(t *testing.T) {
	run := func(super bool) uint64 {
		s := newSys(t, Impulse, PrefetchNone)
		bytes := uint64(512 * addr.PageSize) // 2 MB: far beyond TLB reach
		x := s.MustAlloc(bytes, 0)
		if super {
			if err := s.MapSuperpage(x, bytes); err != nil {
				t.Fatal(err)
			}
		}
		st0 := s.Snapshot()
		// Page-strided walk: worst case for a 128-entry TLB.
		for sweep := 0; sweep < 4; sweep++ {
			for off := uint64(0); off < bytes; off += addr.PageSize {
				s.Load64(x + addr.VAddr(off))
			}
		}
		return s.St.TLBMisses - st0.TLBMisses
	}
	base := run(false)
	sp := run(true)
	if sp != 0 {
		t.Errorf("superpage walk still took %d TLB misses", sp)
	}
	if base == 0 {
		t.Error("baseline walk unexpectedly TLB-resident")
	}
}

func TestSuperpagePreservesValues(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	bytes := uint64(16 * addr.PageSize)
	x := s.MustAlloc(bytes, 0)
	for i := uint64(0); i < 16; i++ {
		s.StoreF64(x+addr.VAddr(i*addr.PageSize+8), float64(i)+0.125)
	}
	if err := s.MapSuperpage(x, bytes); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		if got := s.LoadF64(x + addr.VAddr(i*addr.PageSize+8)); got != float64(i)+0.125 {
			t.Fatalf("x page %d = %v", i, got)
		}
	}
	if err := s.MapSuperpage(x+1, bytes); err == nil {
		t.Error("unaligned superpage accepted")
	}
}

func TestResultAndSpeedup(t *testing.T) {
	s := newSys(t, Conventional, PrefetchNone)
	x := s.MustAlloc(4096, 0)
	for i := 0; i < 512; i++ {
		s.LoadF64(x + addr.VAddr(8*(i%512)))
	}
	r, err := s.Result("test")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.L1Ratio == 0 || r.AvgLoad < 1 {
		t.Errorf("implausible row: %+v", r)
	}
	base := Row{Cycles: 2000}
	fast := Row{Cycles: 1000}
	if Speedup(base, fast) != 2.0 {
		t.Error("Speedup")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestSyscallCostsCharged(t *testing.T) {
	s := newSys(t, Impulse, PrefetchNone)
	x := s.MustAlloc(64*addr.PageSize, 0)
	before := s.Now()
	if err := s.Recolor(x, 64*addr.PageSize, 0, 31); err != nil {
		t.Fatal(err)
	}
	if s.St.Syscalls == 0 || s.St.SyscallCycles == 0 {
		t.Error("syscall costs not charged")
	}
	if s.Now() == before {
		t.Error("remap advanced no time")
	}
}
