package twin

import (
	"fmt"
	"strings"
	"testing"

	"impulse/internal/harness"
	"impulse/internal/stats"
)

// TestFamiliesMatchRegistry pins the eligibility contract: Families()
// is exactly the set of registry families without a documented
// ineligibility reason, every one of them predicts, and every other
// family refuses with the registry's reason in the error.
func TestFamiliesMatchRegistry(t *testing.T) {
	eligible := make(map[string]bool)
	for _, name := range Families() {
		eligible[name] = true
	}
	for _, f := range harness.Families() {
		if f.Elig.Twin == "" != eligible[f.Name] {
			t.Errorf("%s: registry twin reason %q but Families() eligible=%v",
				f.Name, f.Elig.Twin, eligible[f.Name])
		}
		if f.Elig.Twin == "" {
			for _, fast := range []bool{true, false} {
				if _, err := Predict(f.Name, fast); err != nil {
					t.Errorf("Predict(%s, fast=%v): %v", f.Name, fast, err)
				}
			}
			if reason, ok := Eligible(f.Name); !ok || reason != "" {
				t.Errorf("Eligible(%s) = (%q, %v), want (\"\", true)", f.Name, reason, ok)
			}
			continue
		}
		if reason, ok := Eligible(f.Name); ok || reason != f.Elig.Twin {
			t.Errorf("Eligible(%s) = (%q, %v), want registry reason %q",
				f.Name, reason, ok, f.Elig.Twin)
		}
		if _, err := Predict(f.Name, true); err == nil {
			t.Errorf("Predict(%s) succeeded for an ineligible family", f.Name)
		} else if !strings.Contains(err.Error(), f.Elig.Twin) {
			t.Errorf("Predict(%s) error %q does not carry registry reason %q",
				f.Name, err, f.Elig.Twin)
		}
	}
	if _, ok := Eligible("no-such-family"); ok {
		t.Error("Eligible accepted an unknown family")
	}
	if _, err := Predict("no-such-family", true); err == nil {
		t.Error("Predict accepted an unknown family")
	}
}

// forEachCell runs f over every predicted cell of every eligible family
// at both geometries.
func forEachCell(t *testing.T, f func(fam string, fast bool, c Cell)) {
	t.Helper()
	for _, fam := range Families() {
		for _, fast := range []bool{true, false} {
			p, err := Predict(fam, fast)
			if err != nil {
				t.Fatalf("Predict(%s, fast=%v): %v", fam, fast, err)
			}
			for _, c := range p.Flat() {
				f(fam, fast, c)
			}
		}
	}
}

// TestCellInvariants checks the structural sanity every cell must
// satisfy regardless of family: positive work, ordered percentiles,
// hit ratios that are probabilities and partition the loads.
func TestCellInvariants(t *testing.T) {
	forEachCell(t, func(fam string, fast bool, c Cell) {
		id := fmt.Sprintf("%s/fast=%v/%s", fam, fast, c.Label)
		if c.Loads == 0 || c.Cycles < c.Loads {
			t.Errorf("%s: loads=%d cycles=%d (want loads>0, cycles>=loads)", id, c.Loads, c.Cycles)
		}
		if c.AvgLoad <= 0 {
			t.Errorf("%s: avg load %v <= 0", id, c.AvgLoad)
		}
		if !(c.P50 <= c.P95 && c.P95 <= c.P99) {
			t.Errorf("%s: percentiles not ordered: p50=%d p95=%d p99=%d", id, c.P50, c.P95, c.P99)
		}
		for _, r := range []float64{c.L1, c.L2, c.Mem} {
			if r < 0 || r > 1 {
				t.Errorf("%s: hit ratio %v outside [0,1]", id, r)
			}
		}
		if sum := c.L1 + c.L2 + c.Mem; sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: L1+L2+Mem = %v, want 1", id, sum)
		}
	})
}

// TestSRAMMonotoneInCapacity is the sram twin's driving-parameter
// property: growing the prefetch SRAM can only help. Cycles and average
// load latency are non-increasing in capacity, the traffic structure
// (loads, bus bytes) is capacity-independent, and prefetch hits appear
// exactly at the FIFO-survival threshold of one line per stream.
func TestSRAMMonotoneInCapacity(t *testing.T) {
	streams64, _ := harness.SRAMWorkload()
	streams := uint64(streams64)
	g := defaultGeom()
	for _, fast := range []bool{true, false} {
		p, err := Predict("sram", fast)
		if err != nil {
			t.Fatal(err)
		}
		sizes := harness.SRAMGeometry(fast)
		prev := p.Cells[0][0]
		for i, row := range p.Cells {
			c := row[0]
			if c.Cycles > prev.Cycles {
				t.Errorf("fast=%v: cycles increased with capacity: %s=%d after %s=%d",
					fast, c.Label, c.Cycles, prev.Label, prev.Cycles)
			}
			if c.AvgLoad > prev.AvgLoad {
				t.Errorf("fast=%v: avg load increased with capacity at %s", fast, c.Label)
			}
			if c.Loads != prev.Loads || c.BusBytes != prev.BusBytes {
				t.Errorf("fast=%v: %s: traffic structure moved with capacity", fast, c.Label)
			}
			survives := sizes[i]/g.lineBytes >= streams
			if survives != (c.MCPrefetchHits > 0) {
				t.Errorf("fast=%v: %s: prefetch hits %d, want >0 iff capacity >= %d lines",
					fast, c.Label, c.MCPrefetchHits, streams)
			}
			prev = c
		}
	}
}

// TestSuperpageSpeedup: replacing per-load software TLB walks with the
// controller's shadow descriptor must win, and the translation costs
// must sit in the right cell (TLB walks in the 4K baseline, controller
// PgTbl misses in the superpage cell).
func TestSuperpageSpeedup(t *testing.T) {
	for _, fast := range []bool{true, false} {
		p, err := Predict("superpage", fast)
		if err != nil {
			t.Fatal(err)
		}
		c4, cs := p.Cells[0][0], p.Cells[1][0]
		if cs.Cycles >= c4.Cycles {
			t.Errorf("fast=%v: superpage %d cycles not faster than 4K %d", fast, cs.Cycles, c4.Cycles)
		}
		if c4.TLBMisses == 0 || c4.TLBWalkCost == 0 {
			t.Errorf("fast=%v: 4K cell misses its TLB walk cost", fast)
		}
		if cs.TLBMisses != 0 || cs.MCTLBMisses == 0 || cs.ShadowReads == 0 {
			t.Errorf("fast=%v: superpage cell translation counters wrong: tlb=%d mctlb=%d shadow=%d",
				fast, cs.TLBMisses, cs.MCTLBMisses, cs.ShadowReads)
		}
		d := p.Doc()
		if d.Cells[0].Speedup != 1 {
			t.Errorf("fast=%v: base cell speedup %v, want 1", fast, d.Cells[0].Speedup)
		}
		if d.Cells[1].Speedup <= 1 {
			t.Errorf("fast=%v: superpage speedup %v, want > 1", fast, d.Cells[1].Speedup)
		}
	}
}

// TestStrideProperties: controller prefetch can only hide gather
// latency, never add it, and the exposed no-prefetch gather cost grows
// with the number of distinct element lines per gather — monotone in
// the stride from 2 up (stride 1 packs several elements per line and
// sits off that curve).
func TestStrideProperties(t *testing.T) {
	for _, fast := range []bool{true, false} {
		p, err := Predict("stride", fast)
		if err != nil {
			t.Fatal(err)
		}
		strides, _ := harness.StrideGeometry(fast)
		var prev Cell
		for i, row := range p.Cells {
			noPF, pf := row[0], row[1]
			if pf.Cycles >= noPF.Cycles {
				t.Errorf("fast=%v stride %d: prefetch %d cycles not faster than demand %d",
					fast, strides[i], pf.Cycles, noPF.Cycles)
			}
			if pf.AvgLoad >= noPF.AvgLoad {
				t.Errorf("fast=%v stride %d: prefetch avg load %v not below demand %v",
					fast, strides[i], pf.AvgLoad, noPF.AvgLoad)
			}
			// The demand stream is identical; only issue timing moves.
			if pf.BusBytes != noPF.BusBytes || pf.Loads != noPF.Loads {
				t.Errorf("fast=%v stride %d: prefetch changed the traffic structure", fast, strides[i])
			}
			if i > 0 && strides[i-1] >= 2 && noPF.Cycles < prev.Cycles {
				t.Errorf("fast=%v: no-prefetch cycles fell from stride %d (%d) to stride %d (%d)",
					fast, strides[i-1], prev.Cycles, strides[i], noPF.Cycles)
			}
			prev = noPF
		}
		first, last := p.Cells[0][0], p.Cells[len(p.Cells)-1][0]
		if last.Cycles <= first.Cycles {
			t.Errorf("fast=%v: widest stride (%d cycles) not costlier than stride %d (%d)",
				fast, last.Cycles, strides[0], first.Cycles)
		}
	}
}

// TestClassesMatchObserve is the differential check for the percentile
// shortcut: accumulating (latency, count) classes must be
// indistinguishable from observing every load individually.
func TestClassesMatchObserve(t *testing.T) {
	cases := []struct{ lat, n uint64 }{
		{1, 7}, {8, 1000}, {25, 3}, {46, 0}, {76, 129}, {1 << 20, 2},
	}
	var c classes
	var want stats.LatencyHist
	for _, cs := range cases {
		c.add(cs.lat, cs.n)
		for i := uint64(0); i < cs.n; i++ {
			want.Observe(cs.lat)
		}
	}
	if c.h != want {
		t.Fatalf("classes histogram diverged from per-load Observe:\n got %+v\nwant %+v", c.h, want)
	}
	for _, p := range []float64{50, 90, 95, 99} {
		if got, wantP := c.h.Percentile(p), want.Percentile(p); got != wantP {
			t.Errorf("p%v = %d, want %d", p, got, wantP)
		}
	}
}

// TestDocLowering: the columnar lowering preserves cell order, carries
// the metrics through unchanged, and computes speedups against cell
// [0][0] exactly as harness.Grid does.
func TestDocLowering(t *testing.T) {
	for _, fam := range Families() {
		p, err := Predict(fam, true)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Doc()
		flat := p.Flat()
		if len(d.Cells) != len(flat) || len(d.Cells) != len(p.Sections)*len(p.Columns) {
			t.Fatalf("%s: doc has %d cells, flat %d, grid %dx%d",
				fam, len(d.Cells), len(flat), len(p.Sections), len(p.Columns))
		}
		for i, dc := range d.Cells {
			if dc.Cycles != flat[i].Cycles || dc.Loads != flat[i].Loads ||
				dc.BusBytes != flat[i].BusBytes || dc.AvgLoad != flat[i].AvgLoad {
				t.Errorf("%s cell %d: doc metrics diverge from prediction", fam, i)
			}
		}
	}
}
