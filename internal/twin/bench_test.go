package twin

import (
	"context"
	"io"
	"testing"

	"impulse/internal/harness"
)

// BenchmarkTwinPredict measures the analytical tier's answer latency:
// one full prediction (all cells, columnar-ready) per iteration, per
// eligible family at the fast geometry. cmd/benchjson pairs these with
// BenchmarkTwinSimBaseline below and prints the twin-vs-sim speedup.
func BenchmarkTwinPredict(b *testing.B) {
	for _, fam := range Families() {
		b.Run(fam, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Predict(fam, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTwinSimBaseline is the path a twin answer replaces: the same
// family simulated at the same fast geometry with the trace cache off
// (the cache-miss cost — a warm cache would be the service's result
// cache anyway, which the twin tier also sits in front of).
func BenchmarkTwinSimBaseline(b *testing.B) {
	was := harness.TraceCacheEnabled()
	harness.SetTraceCache(false)
	defer func() {
		harness.SetTraceCache(was)
		harness.ResetTraceCache()
	}()
	for _, fam := range Families() {
		b.Run(fam, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := harness.RunFamily(context.Background(), fam, true, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
