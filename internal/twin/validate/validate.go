// Package validate runs each analytical twin against the full simulator
// on the same family geometry and reports per-metric relative error.
// The committed goldens under testdata/ pin the achieved errors; the
// Check bounds (mirrored in docs/TWIN.md) are what the twin serving
// tier advertises as error-bound provenance.
package validate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"impulse/internal/core"
	"impulse/internal/harness"
	"impulse/internal/twin"
)

// metricDef pairs the simulator-side and twin-side views of one metric.
// Ratio metrics (already normalized to [0,1]) compare by absolute
// difference; everything else by relative error with a floor on the
// denominator (see relErr) so near-zero counters don't explode.
type metricDef struct {
	name  string
	ratio bool
	sim   func(core.Row) float64
	twin  func(twin.Cell) float64
}

func metrics() []metricDef {
	return []metricDef{
		{"cycles", false, func(r core.Row) float64 { return float64(r.Cycles) }, func(c twin.Cell) float64 { return float64(c.Cycles) }},
		{"loads", false, func(r core.Row) float64 { return float64(r.Stats.Loads) }, func(c twin.Cell) float64 { return float64(c.Loads) }},
		{"bus_bytes", false, func(r core.Row) float64 { return float64(r.Stats.BusBytes) }, func(c twin.Cell) float64 { return float64(c.BusBytes) }},
		{"avg_load", false, func(r core.Row) float64 { return r.AvgLoad }, func(c twin.Cell) float64 { return c.AvgLoad }},
		{"p50", false, func(r core.Row) float64 { return float64(r.Stats.LoadLatency.Percentile(50)) }, func(c twin.Cell) float64 { return float64(c.P50) }},
		{"p95", false, func(r core.Row) float64 { return float64(r.Stats.LoadLatency.Percentile(95)) }, func(c twin.Cell) float64 { return float64(c.P95) }},
		{"p99", false, func(r core.Row) float64 { return float64(r.Stats.LoadLatency.Percentile(99)) }, func(c twin.Cell) float64 { return float64(c.P99) }},
		{"l1_ratio", true, func(r core.Row) float64 { return r.L1Ratio }, func(c twin.Cell) float64 { return c.L1 }},
		{"l2_ratio", true, func(r core.Row) float64 { return r.L2Ratio }, func(c twin.Cell) float64 { return c.L2 }},
		{"mem_ratio", true, func(r core.Row) float64 { return r.MemRatio }, func(c twin.Cell) float64 { return c.Mem }},
		{"tlb_misses", false, func(r core.Row) float64 { return float64(r.Stats.TLBMisses) }, func(c twin.Cell) float64 { return float64(c.TLBMisses) }},
		{"tlb_walk_cycles", false, func(r core.Row) float64 { return float64(r.Stats.TLBWalkCost) }, func(c twin.Cell) float64 { return float64(c.TLBWalkCost) }},
		{"mc_prefetch_hits", false, func(r core.Row) float64 { return float64(r.Stats.MCPrefetchHits) }, func(c twin.Cell) float64 { return float64(c.MCPrefetchHits) }},
		{"mc_tlb_misses", false, func(r core.Row) float64 { return float64(r.Stats.MCTLBMisses) }, func(c twin.Cell) float64 { return float64(c.MCTLBMisses) }},
		{"shadow_dram_reads", false, func(r core.Row) float64 { return float64(r.Stats.ShadowDRAMReads) }, func(c twin.Cell) float64 { return float64(c.ShadowDRAMReads) }},
		// The row-buffer outcome compares as a ratio: absolute hit/miss
		// counts carry a small stochastic residual (random frame
		// adjacency occasionally lands consecutive reads in one row)
		// that the closed forms deliberately do not model.
		{"dram_row_miss_ratio", true,
			func(r core.Row) float64 {
				return rowMissRatio(float64(r.Stats.DRAMRowHits), float64(r.Stats.DRAMRowMisses))
			},
			func(c twin.Cell) float64 { return rowMissRatio(float64(c.DRAMRowHits), float64(c.DRAMRowMisses)) }},
	}
}

func rowMissRatio(hits, misses float64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return misses / (hits + misses)
}

// relErr is |twin−sim| over max(|sim|, |twin|, 0.5% of the cell's
// loads, 1): a counter that is tiny on both sides relative to the
// workload is agreement, not a 100% miss.
func relErr(simV, twinV, loads float64) float64 {
	den := math.Max(math.Max(math.Abs(simV), math.Abs(twinV)), math.Max(loads/200, 1))
	return math.Abs(twinV-simV) / den
}

// MetricError aggregates one metric's error across a family's cells.
type MetricError struct {
	Metric string  `json:"metric"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// CellCycles is the per-cell cycles comparison, the headline number.
type CellCycles struct {
	Label  string  `json:"label"`
	Sim    uint64  `json:"sim"`
	Twin   uint64  `json:"twin"`
	RelErr float64 `json:"rel_err"`
}

// FamilyReport is one family's twin-vs-sim comparison.
type FamilyReport struct {
	Family  string        `json:"family"`
	Fast    bool          `json:"fast"`
	Cells   int           `json:"cells"`
	Cycles  []CellCycles  `json:"cycles"`
	Metrics []MetricError `json:"metrics"`
}

// MedianCyclesErr returns the family's median relative cycles error.
func (f *FamilyReport) MedianCyclesErr() float64 {
	for _, m := range f.Metrics {
		if m.Metric == "cycles" {
			return m.Median
		}
	}
	return math.NaN()
}

// Report is the full validation run: every twin-eligible family plus
// the registry's documented reasons for the ineligible ones.
type Report struct {
	Fast       bool              `json:"fast"`
	Families   []FamilyReport    `json:"families"`
	Ineligible map[string]string `json:"ineligible"`
}

// Bounds is the per-family acceptance bound on the median relative
// cycles error, mirrored in docs/TWIN.md and served as error-bound
// provenance by the twin tier.
var Bounds = map[string]float64{
	"superpage": 0.10,
	"sram":      0.10,
	"stride":    0.10,
}

// Bound returns the documented cycles error bound for a family.
func Bound(family string) (float64, bool) {
	b, ok := Bounds[family]
	return b, ok
}

// Run validates every eligible family's twin against a full simulator
// run at the same geometry.
func Run(ctx context.Context, fast bool) (*Report, error) {
	rep := &Report{Fast: fast, Ineligible: map[string]string{}}
	for _, f := range harness.Families() {
		if f.Elig.Twin != "" {
			rep.Ineligible[f.Name] = f.Elig.Twin
			continue
		}
		fr, err := runFamily(ctx, f.Name, fast)
		if err != nil {
			return nil, fmt.Errorf("validate %s: %w", f.Name, err)
		}
		rep.Families = append(rep.Families, *fr)
	}
	return rep, nil
}

func runFamily(ctx context.Context, family string, fast bool) (*FamilyReport, error) {
	pred, err := twin.Predict(family, fast)
	if err != nil {
		return nil, err
	}
	cells := pred.Flat()

	var rows []core.Row
	ctx = harness.WithRowSink(ctx, func(r core.Row) { rows = append(rows, r) })
	if err := harness.RunFamily(ctx, family, fast, io.Discard); err != nil {
		return nil, err
	}
	if len(rows) != len(cells) {
		return nil, fmt.Errorf("twin predicts %d cells, simulator produced %d rows", len(cells), len(rows))
	}
	for i := range rows {
		if rows[i].Label != cells[i].Label {
			return nil, fmt.Errorf("cell %d: twin label %q, simulator row %q", i, cells[i].Label, rows[i].Label)
		}
	}

	fr := &FamilyReport{Family: family, Fast: fast, Cells: len(cells)}
	for _, m := range metrics() {
		errs := make([]float64, len(cells))
		for i := range cells {
			simV, twinV := m.sim(rows[i]), m.twin(cells[i])
			if m.ratio {
				errs[i] = math.Abs(twinV - simV)
			} else {
				errs[i] = relErr(simV, twinV, float64(rows[i].Stats.Loads))
			}
			if m.name == "cycles" {
				fr.Cycles = append(fr.Cycles, CellCycles{
					Label: rows[i].Label, Sim: rows[i].Cycles, Twin: cells[i].Cycles,
					RelErr: round4(errs[i]),
				})
			}
		}
		sort.Float64s(errs)
		fr.Metrics = append(fr.Metrics, MetricError{
			Metric: m.name,
			Median: round4(quantile(errs, 0.5)),
			P95:    round4(quantile(errs, 0.95)),
			Max:    round4(errs[len(errs)-1]),
		})
	}
	return fr, nil
}

// quantile interpolates the q-quantile of sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	if lo >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// round4 keeps the committed goldens stable and readable.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Check verifies the report against the documented per-family bounds.
func (r *Report) Check() error {
	var bad []string
	for i := range r.Families {
		f := &r.Families[i]
		bound, ok := Bounds[f.Family]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no documented bound", f.Family))
			continue
		}
		if e := f.MedianCyclesErr(); !(e <= bound) {
			bad = append(bad, fmt.Sprintf("%s: median cycles error %.4f exceeds bound %.2f", f.Family, e, bound))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("twin validation failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// WriteJSON emits the report as indented JSON (the golden format).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) error {
	geo := "full"
	if r.Fast {
		geo = "fast"
	}
	fmt.Fprintf(w, "Analytical twin validation (%s geometry)\n", geo)
	for i := range r.Families {
		f := &r.Families[i]
		bound := Bounds[f.Family]
		fmt.Fprintf(w, "\n%s: %d cells, median cycles error %.2f%% (bound %.0f%%)\n",
			f.Family, f.Cells, 100*f.MedianCyclesErr(), 100*bound)
		for _, c := range f.Cycles {
			fmt.Fprintf(w, "  %-24s sim %12d  twin %12d  err %6.2f%%\n",
				c.Label, c.Sim, c.Twin, 100*c.RelErr)
		}
		fmt.Fprintf(w, "  %-20s %8s %8s %8s\n", "metric", "median", "p95", "max")
		for _, m := range f.Metrics {
			fmt.Fprintf(w, "  %-20s %7.2f%% %7.2f%% %7.2f%%\n",
				m.Metric, 100*m.Median, 100*m.P95, 100*m.Max)
		}
	}
	if len(r.Ineligible) > 0 {
		fmt.Fprintf(w, "\nineligible families:\n")
		for _, f := range harness.Families() {
			if reason, ok := r.Ineligible[f.Name]; ok {
				fmt.Fprintf(w, "  %-12s %s\n", f.Name, reason)
			}
		}
	}
	return nil
}
