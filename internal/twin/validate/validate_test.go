package validate

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"impulse/internal/twin"
)

func readGolden(t *testing.T, name string) (*Report, []byte) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("parse golden %s: %v", name, err)
	}
	return &r, raw
}

// TestGoldenReports pins the committed validation reports: every
// twin-eligible family is present with its achieved error under the
// documented bound, every ineligible family carries its registry
// reason, and the bounds map covers exactly the eligible set.
func TestGoldenReports(t *testing.T) {
	for _, tc := range []struct {
		name string
		fast bool
	}{
		{"report_fast.json", true},
		{"report_full.json", false},
	} {
		r, _ := readGolden(t, tc.name)
		if r.Fast != tc.fast {
			t.Errorf("%s: fast=%v, want %v", tc.name, r.Fast, tc.fast)
		}
		if err := r.Check(); err != nil {
			t.Errorf("%s: committed report violates bounds: %v", tc.name, err)
		}
		want := twin.Families()
		if len(r.Families) != len(want) {
			t.Fatalf("%s: report covers %d families, twin registry has %d", tc.name, len(r.Families), len(want))
		}
		for i, f := range r.Families {
			if f.Family != want[i] {
				t.Errorf("%s: family[%d] = %s, want %s", tc.name, i, f.Family, want[i])
			}
			if f.Cells == 0 || len(f.Cycles) != f.Cells {
				t.Errorf("%s: %s: %d cells but %d cycle rows", tc.name, f.Family, f.Cells, len(f.Cycles))
			}
			if _, ok := Bound(f.Family); !ok {
				t.Errorf("%s: %s: eligible family without a documented bound", tc.name, f.Family)
			}
			if _, dup := r.Ineligible[f.Family]; dup {
				t.Errorf("%s: %s is both eligible and ineligible", tc.name, f.Family)
			}
		}
		if len(r.Ineligible) == 0 {
			t.Errorf("%s: no ineligible families recorded — the registry documents several", tc.name)
		}
		for fam, reason := range r.Ineligible {
			if reason == "" {
				t.Errorf("%s: ineligible family %s has no reason", tc.name, fam)
			}
		}
	}
	for fam := range Bounds {
		if _, err := twin.Predict(fam, true); err != nil {
			t.Errorf("bound documented for %s but the twin cannot predict it: %v", fam, err)
		}
	}
}

// TestGoldenMatchesFreshRun is the differential gate: a fresh fast
// validation run must reproduce the committed golden byte for byte —
// both sides (simulator and twins) are deterministic, so any drift
// means a model or the simulator moved without the golden (run
// `go run ./cmd/sweep -twin-validate -fast -twin-json
// internal/twin/validate/testdata/report_fast.json` to regenerate,
// then justify the error movement in docs/TWIN.md).
func TestGoldenMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulator sweep; skipped with -short")
	}
	_, raw := readGolden(t, "report_fast.json")
	fresh, err := Run(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(buf.Bytes()), bytes.TrimSpace(raw)) {
		t.Errorf("fresh validation run diverges from testdata/report_fast.json:\n%s", buf.String())
	}
}
