// Package twin holds the analytical twins of the simulator: closed-form
// predictor models that take the same canonical experiment geometry a
// sweep family runs at and return the same cell metrics the simulator
// measures — cycles, hit ratios, latency percentiles, bus traffic,
// controller counters — in microseconds instead of milliseconds.
//
// A twin is not a curve fit. Each model is derived from the machine's
// timing parameters (internal/sim DefaultConfig) by composing the same
// closed-form pieces the Impulse paper uses to explain its results:
// TLB/L1/L2 hit ratios from stride, working-set size, and geometry;
// gather cost from row-buffer locality and bank-level parallelism; bus
// occupancy from traffic counts; cycles from a roofline-style sum of
// latency classes. The derivations, per-family error bounds, and
// eligibility rules live in docs/TWIN.md; internal/twin/validate pins
// the bounds against full simulation runs.
//
// Eligibility comes from the harness family registry (the same
// Eligibility records the trace-cache advisories read): families whose
// access streams are data-dependent (CG's sparse walk, pointer-linked
// IPC buffers, Cholesky) have no closed form and fall through to exact
// simulation.
package twin

import (
	"fmt"

	"impulse/internal/colres"
	"impulse/internal/harness"
	"impulse/internal/sim"
	"impulse/internal/stats"
)

// Cell is one predicted grid cell: the metric set a simulator-measured
// core.Row carries, minus the counters a given family's table never
// shows. Counter fields the model does not predict stay zero and are
// excluded from validation per family.
type Cell struct {
	Label string

	Cycles   uint64
	Loads    uint64
	Stores   uint64
	BusBytes uint64
	P50      uint64
	P95      uint64
	P99      uint64

	L1      float64
	L2      float64
	Mem     float64
	AvgLoad float64

	TLBMisses       uint64
	TLBWalkCost     uint64
	MCPrefetchHits  uint64
	MCTLBMisses     uint64
	ShadowReads     uint64
	ShadowDRAMReads uint64
	DRAMRowHits     uint64
	DRAMRowMisses   uint64
}

// Prediction is a predicted experiment grid: the twin-side analogue of
// harness.Grid, lowered into the same colres columnar schema so every
// renderer and view works unchanged.
type Prediction struct {
	Family   string
	Fast     bool
	Title    string
	Sections []string
	Columns  []string
	Cells    [][]Cell // [section][column], like harness.Grid
}

// Flat returns the cells in section-major, column-minor order — the
// order the simulator emits measured rows for the same family, which is
// what lets the validation harness match cells positionally.
func (p *Prediction) Flat() []Cell {
	var out []Cell
	for _, row := range p.Cells {
		out = append(out, row...)
	}
	return out
}

// Doc lowers the prediction into the columnar result schema. Speedups
// are computed against cell [0][0], exactly as harness.Grid does.
func (p *Prediction) Doc() *colres.Doc {
	d := &colres.Doc{Title: p.Title, Sections: p.Sections, Columns: p.Columns}
	base := p.Cells[0][0].Cycles
	for si, row := range p.Cells {
		for ci, c := range row {
			sp := 0.0
			if c.Cycles > 0 {
				sp = float64(base) / float64(c.Cycles)
			}
			d.Cells = append(d.Cells, colres.Cell{
				Section: uint32(si), Column: uint32(ci),
				Cycles: c.Cycles, Loads: c.Loads, Stores: c.Stores,
				BusBytes: c.BusBytes, P50: c.P50, P95: c.P95, P99: c.P99,
				L1: c.L1, L2: c.L2, Mem: c.Mem, AvgLoad: c.AvgLoad,
				Speedup: sp,
			})
		}
	}
	return d
}

// Columnar encodes the prediction as a columnar result blob.
func (p *Prediction) Columnar() []byte { return colres.Encode(p.Doc()) }

// Eligible reports whether a family has an analytical twin. For
// ineligible or unknown families it returns the human-readable reason
// from the harness registry (the single source of truth shared with the
// trace-cache advisories).
func Eligible(family string) (reason string, ok bool) {
	e, known := harness.FamilyEligibility(family)
	if !known {
		return fmt.Sprintf("unknown family %q", family), false
	}
	if e.Twin != "" {
		return e.Twin, false
	}
	return "", true
}

// Families returns the twin-eligible sweep families in canonical run
// order.
func Families() []string {
	var out []string
	for _, f := range harness.Families() {
		if f.Elig.Twin == "" {
			out = append(out, f.Name)
		}
	}
	return out
}

// Predict runs the family's twin at the named canned geometry. It
// returns an error carrying the registry reason for ineligible
// families.
func Predict(family string, fast bool) (*Prediction, error) {
	if reason, ok := Eligible(family); !ok {
		return nil, fmt.Errorf("twin: %s: %s", family, reason)
	}
	g := defaultGeom()
	switch family {
	case "superpage":
		return predictSuperpage(g, fast), nil
	case "sram":
		return predictSRAM(g, fast), nil
	case "stride":
		return predictStride(g, fast), nil
	}
	return nil, fmt.Errorf("twin: %s: eligible in the registry but no model implemented", family)
}

// geom is the machine geometry a model composes latencies from, all
// pulled from sim.DefaultConfig so the twins track the simulated
// machine's calibration, never a copy of it.
type geom struct {
	walk    uint64 // software TLB walk penalty
	l1Hit   uint64 // load-to-use on an L1 hit (the issue cycle)
	l2Hit   uint64 // load-to-use on an L2 hit
	memLead uint64 // issue + L2 probe + bus request + MC pipeline
	xfer    uint64 // line transfer cycles on the bus
	issue   uint64 // DRAM command-issue gap
	rowHit  uint64 // DRAM data-ready, open row
	rowMiss uint64 // DRAM data-ready, row opened first

	addrCalc uint64 // MC ALU cycles per remapped element address
	assemble uint64 // MC line-assembly cycles

	banks      uint64
	ptLine0    uint64 // first DRAM line of the controller page table
	lineBytes  uint64 // L2/DRAM/MC line
	l1Line     uint64
	pageBytes  uint64
	tlbEntries int
	pgTblSlots int    // controller PgTbl TLB entries
	sramLines  uint64 // controller prefetch SRAM capacity, lines
	descLines  uint64 // per-descriptor prefetch buffer capacity, lines
	l2Sets     uint64 // L2 sets spanned by one page (color granularity)
	l2Ways     uint64
}

func defaultGeom() geom {
	cfg := sim.DefaultConfig()
	return geom{
		walk:    cfg.TLBMissPenalty,
		l1Hit:   cfg.L1.HitCycles,
		l2Hit:   1 + cfg.L2.HitCycles,
		memLead: 1 + cfg.L2MissProbeCycles + cfg.Bus.RequestCycles + cfg.MC.PipelineCycles,
		xfer:    (cfg.MC.LineBytes + cfg.Bus.BytesPerCycle - 1) / cfg.Bus.BytesPerCycle,
		issue:   cfg.DRAM.IssueGap,
		rowHit:  cfg.DRAM.RowHit,
		rowMiss: cfg.DRAM.RowMiss,

		addrCalc: cfg.MC.AddrCalcCycles,
		assemble: cfg.MC.AssembleCycles,

		banks:      cfg.DRAM.Banks,
		ptLine0:    uint64(cfg.MC.PgTblBase) / cfg.MC.LineBytes,
		lineBytes:  cfg.MC.LineBytes,
		l1Line:     cfg.L1.LineBytes,
		pageBytes:  4096,
		tlbEntries: cfg.TLBEntries,
		pgTblSlots: cfg.MC.PgTblEntries,
		sramLines:  cfg.MC.SRAMBytes / cfg.MC.LineBytes,
		descLines:  cfg.MC.DescBufBytes / cfg.MC.LineBytes,
		l2Sets:     cfg.L2.Bytes / cfg.L2.LineBytes / cfg.L2.Ways,
		l2Ways:     cfg.L2.Ways,
	}
}

// classes accumulates (latency, count) load classes into the same
// power-of-two histogram the simulator's per-load Observe fills, so the
// twin's percentiles reproduce stats.LatencyHist.Percentile semantics
// exactly — in O(classes) instead of O(loads).
type classes struct {
	h stats.LatencyHist
}

func (c *classes) add(lat, n uint64) {
	if n == 0 {
		return
	}
	var one stats.LatencyHist
	one.Observe(lat)
	for i := range one.Buckets {
		c.h.Buckets[i] += one.Buckets[i] * n
	}
	c.h.Count += n
	c.h.Total += lat * n
	if lat > c.h.Max {
		c.h.Max = lat
	}
}

// fill writes the latency-derived metrics (AvgLoad, percentiles) into
// cell.
func (c *classes) fill(cell *Cell) {
	cell.AvgLoad = c.h.Mean()
	cell.P50 = c.h.Percentile(50)
	cell.P95 = c.h.Percentile(95)
	cell.P99 = c.h.Percentile(99)
}
