package twin

import (
	"fmt"
	"math"

	"impulse/internal/harness"
)

// predictStride is the analytical twin for the "stride" family: a dense
// scatter/gather alias over elems 8-byte elements drawn from a strided
// array, walked sequentially with Tick(1), with and without controller
// (descriptor-buffer) prefetch.
//
// Per 128-byte alias line the CPU issues lineBytes/8 loads: one gather
// (memory), lineBytes/l1Line−1 L2 hits, the rest L1 hits — so the hit
// ratios are pure geometry. The gather cost Γ is where the paper's
// bank-parallelism argument lives, and it is *not* one closed formula
// but a short deterministic recurrence over the descriptor's access
// stream: each gather reads one indirection-vector line per two gathers
// (the controller's 2-entry vector cache), a PgTbl PTE per new
// pseudo-virtual page (compulsory only — the walk never revisits), and
// min(stride, lineBytes/8) distinct element lines spread
// round-robin over the banks. The recurrence tracks per-bank open rows
// and busy times exactly like the DRAM model (row tags are
// pseudo-virtual pages: frames are distinct, so distinct pages never
// share a row), which reproduces row-buffer locality and bank
// serialization without simulating loads.
//
// With prefetch on, the demand stream is unchanged but each gather is
// issued when the previous demand's data is ready, so only
// max(0, Γ − slack) is exposed, where slack is the fixed CPU-side work
// between consecutive gathers (transfer, ticks, the in-line L1/L2
// hits, and the next miss's lead-in).
func predictStride(g geom, fast bool) *Prediction {
	strides, elems := harness.StrideGeometry(fast)
	perLine := int(g.lineBytes / 8)        // loads per alias line
	l2HitLoads := g.lineBytes/g.l1Line - 1 // L1 misses per line that hit L2
	l1HitLoads := uint64(perLine) - l2HitLoads - 1
	gathers := elems / perLine
	walkEvery := int(g.pageBytes / g.lineBytes) // gathers per alias page
	walks := uint64((gathers + walkEvery - 1) / walkEvery)

	// Expected dirty-vector writebacks: the setup loop stores the
	// indirection vector through the write-allocate L2; alias fills
	// evict one line from each full set they land in. A set is full iff
	// two vector pages drew its color.
	vecPages := float64(uint64(elems) * 4 / g.pageBytes)
	colors := float64(g.l2Sets / (g.pageBytes / g.lineBytes))
	p := 1 / colors
	aliasSets := uint64(gathers)
	if aliasSets > g.l2Sets {
		aliasSets = g.l2Sets
	}
	pFull := 1 - math.Pow(1-p, vecPages) - vecPages*p*math.Pow(1-p, vecPages-1)
	wb := uint64(math.Round(float64(aliasSets) * pFull))

	slackBase := g.xfer + 1 + l1HitLoads*(g.l1Hit+1) + l2HitLoads*(g.l2Hit+1) + g.memLead

	secs := make([]string, len(strides))
	cells := make([][]Cell, len(strides))
	for i, stride := range strides {
		secs[i] = fmt.Sprintf("stride %d", stride)
		run := runStrideGathers(g, stride, elems)

		base := Cell{
			Label:           secs[i],
			Loads:           uint64(elems),
			BusBytes:        (uint64(gathers) + wb) * g.lineBytes,
			L1:              float64(l1HitLoads) / float64(perLine),
			L2:              float64(l2HitLoads) / float64(perLine),
			Mem:             1 / float64(perLine),
			TLBMisses:       walks,
			TLBWalkCost:     walks * g.walk,
			MCTLBMisses:     run.mctlb,
			ShadowReads:     uint64(gathers),
			ShadowDRAMReads: run.sdr,
			DRAMRowHits:     run.rowHits,
			DRAMRowMisses:   run.rowMisses,
		}

		compose := func(pf bool) Cell {
			cell := base
			var c classes
			c.add(g.l1Hit, l1HitLoads*uint64(gathers))
			c.add(g.l2Hit, l2HitLoads*uint64(gathers))
			var cycles uint64
			for gi, gamma := range run.gammas {
				var walk uint64
				if gi%walkEvery == 0 {
					walk = g.walk
				}
				exposed := gamma
				if pf && gi > 0 {
					exposed = 0
					if slack := slackBase + walk; gamma > slack {
						exposed = gamma - slack
					}
				}
				lat := walk + g.memLead + exposed + g.xfer
				c.add(lat, 1)
				cycles += lat + 1 + l1HitLoads*(g.l1Hit+1) + l2HitLoads*(g.l2Hit+1)
			}
			cell.Cycles = cycles
			c.fill(&cell)
			return cell
		}
		cells[i] = []Cell{compose(false), compose(true)}
	}

	return &Prediction{
		Family: "stride", Fast: fast,
		Title:    fmt.Sprintf("Gather avg load time vs indirection stride (%d elements, analytical twin)", elems),
		Sections: secs,
		Columns:  []string{"no prefetch", "controller prefetch"},
		Cells:    cells,
	}
}

// strideRun is the output of the gather recurrence: per-gather durations
// (issue to assembled line, Γ) plus the controller counters the stream
// implies. Both prefetch cells share one run — prefetch changes when
// gathers issue, not what they access.
type strideRun struct {
	gammas             []uint64
	mctlb, sdr         uint64
	rowHits, rowMisses uint64
}

// bankState models the DRAM banks for the recurrence: open-row tags and
// busy times. Row tags are pseudo-virtual pages (distinct pages sit in
// distinct frames, hence distinct rows); the controller page table
// shares a single row.
type bankState struct {
	g                  geom
	rowTag             []uint64
	busy               []uint64
	rowHits, rowMisses uint64
}

const tagPT = 1 // the whole PgTbl row

func tagOf(pvPage uint64) uint64 { return pvPage + 2 }

// read models one line read whose command issues at `at` (the caller
// accounts the global issue gap): row check, then bank occupancy.
func (b *bankState) read(at, bank, tag uint64) uint64 {
	lat := b.g.rowMiss
	if b.rowTag[bank] == tag {
		lat = b.g.rowHit
		b.rowHits++
	} else {
		b.rowMisses++
		b.rowTag[bank] = tag
	}
	if b.busy[bank] > at {
		at = b.busy[bank]
	}
	done := at + lat
	b.busy[bank] = done
	return done
}

func runStrideGathers(g geom, stride, elems int) *strideRun {
	perLine := int(g.lineBytes / 8)
	gathers := elems / perLine
	pageLines := g.pageBytes / g.lineBytes
	ptePerLine := g.lineBytes / 8 // 8-byte PTEs per line
	xPages := (uint64(elems*stride)*8 + g.pageBytes - 1) / g.pageBytes
	vecBase := xPages + 2 // allocPV leaves guard pages between regions

	b := &bankState{g: g, rowTag: make([]uint64, g.banks), busy: make([]uint64, g.banks)}
	seen := make(map[uint64]bool) // PgTbl TLB: the walk never revisits, so compulsory only
	r := &strideRun{}
	vecFetched := uint64(math.MaxUint64)
	slack := g.xfer + 1 + (uint64(perLine)-g.lineBytes/g.l1Line)*(g.l1Hit+1) +
		(g.lineBytes/g.l1Line-1)*(g.l2Hit+1) + g.memLead

	clock := uint64(0)
	for gi := 0; gi < gathers; gi++ {
		t0 := clock
		start := t0 + uint64(perLine)*g.addrCalc

		// Indirection-vector line (one per two gathers survives the
		// controller's 2-entry vector cache).
		if v := uint64(gi / 2); vecFetched != v {
			vecFetched = v
			vq := vecBase + v/pageLines
			at := start
			if !seen[vq] {
				seen[vq] = true
				r.mctlb++
				at = b.read(at+g.issue, (g.ptLine0+vq/ptePerLine)%g.banks, tagPT)
			}
			start = b.read(at+g.issue, v%pageLines%g.banks, tagOf(vq))
			r.sdr++
		}

		// Per-piece PTE fetches and the distinct element lines.
		issueAt := start
		type lineRef struct{ bank, tag uint64 }
		lines := make([]lineRef, 0, perLine)
		lastLine := uint64(math.MaxUint64)
		for k := 0; k < perLine; k++ {
			off := uint64(stride) * uint64(gi*perLine+k) * 8
			q := off / g.pageBytes
			if !seen[q] {
				seen[q] = true
				r.mctlb++
				if tr := b.read(start+g.issue, (g.ptLine0+q/ptePerLine)%g.banks, tagPT); tr > issueAt {
					issueAt = tr
				}
			}
			if ln := off / g.lineBytes; ln != lastLine {
				lastLine = ln
				lines = append(lines, lineRef{bank: off % g.pageBytes / g.lineBytes % g.banks, tag: tagOf(q)})
			}
		}
		done := issueAt
		for i, ln := range lines {
			if d := b.read(issueAt+uint64(i+1)*g.issue, ln.bank, ln.tag); d > done {
				done = d
			}
		}
		r.sdr += uint64(len(lines))
		ready := done + g.assemble
		r.gammas = append(r.gammas, ready-t0)
		// Advance like the demand stream does, so bank-busy carryover
		// between adjacent gathers stays realistic.
		clock = ready + slack
	}
	r.rowHits, r.rowMisses = b.rowHits, b.rowMisses
	return r
}
