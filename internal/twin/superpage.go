package twin

import (
	"fmt"

	"impulse/internal/harness"
)

// predictSuperpage is the closed form for the "superpage" family: a
// page-strided walk over pages random 4K frames, sweeps times, 8 bytes
// per page, Tick(2) between loads.
//
// Every load touches a new page and a new line, so both cells are 100%
// memory loads. The cells differ only in translation:
//
//   - "4K pages": the walk cycles pages > tlbEntries pages through the
//     fully-associative NRU TLB, so every load pays the software walk.
//     Element frames are page-aligned (bank 0) with effectively random
//     rows, so every DRAM read reopens a row:
//     lat = walk + memLead + issue + rowMiss + xfer.
//
//   - "superpage": MapSuperpage installs a block TLB entry (processor
//     translation is free) but routes every load through a Direct
//     shadow descriptor: one address calc, a controller PgTbl lookup
//     (pages > pgTblSlots ⇒ every load misses and reads a PTE from
//     DRAM), the element read, line assembly, and the bus transfer.
//     All PTEs live in one DRAM row; PTE reads land on bank
//     (pvpage/16) mod banks, so the 1/banks of loads whose PTE shares
//     bank 0 with the elements reopen the PgTbl row and the rest hit
//     it: lat = memLead + addrCalc + (issue + latPTE) +
//     (issue + rowMiss) + assemble + xfer.
func predictSuperpage(g geom, fast bool) *Prediction {
	pages, sweeps := harness.SuperpageGeometry(fast)
	n := uint64(pages) * uint64(sweeps)

	// Baseline cell: conventional 4K translation.
	miss4 := n
	if pages <= g.tlbEntries {
		miss4 = uint64(pages) // compulsory only
	}
	lat4 := g.memLead + g.issue + g.rowMiss + g.xfer
	var c4 classes
	c4.add(g.walk+lat4, miss4)
	c4.add(lat4, n-miss4)
	cell4 := Cell{
		Label: "4K pages", Loads: n, BusBytes: n * g.lineBytes, Mem: 1,
		TLBMisses: miss4, TLBWalkCost: miss4 * g.walk,
		DRAMRowMisses: n,
		Cycles:        c4.h.Total + 2*n,
	}
	c4.fill(&cell4)

	// Superpage cell: free processor translation, per-load controller
	// PgTbl lookup.
	pteReads := n
	if pages <= g.pgTblSlots {
		pteReads = uint64(pages)
	}
	pteMiss := pteReads / g.banks // PTE reads sharing the element bank
	pteHit := pteReads - pteMiss
	base := g.memLead + g.addrCalc + (g.issue + g.rowMiss) + g.assemble + g.xfer
	var cs classes
	cs.add(base+g.issue+g.rowHit, pteHit)
	cs.add(base+g.issue+g.rowMiss, pteMiss)
	cs.add(base, n-pteReads)
	cellS := Cell{
		Label: "superpage", Loads: n, BusBytes: n * g.lineBytes, Mem: 1,
		MCTLBMisses: pteReads, ShadowReads: n, ShadowDRAMReads: n,
		DRAMRowHits: pteHit, DRAMRowMisses: n + pteMiss,
		Cycles: cs.h.Total + 2*n,
	}
	cs.fill(&cellS)

	return &Prediction{
		Family: "superpage", Fast: fast,
		Title: fmt.Sprintf("Superpages from non-contiguous pages ([21]): %d-page strided walk, %d sweeps (analytical twin)",
			pages, sweeps),
		Sections: []string{"4K pages", "superpage"},
		Columns:  []string{"twin"},
		Cells:    [][]Cell{{cell4}, {cellS}},
	}
}
