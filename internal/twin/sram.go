package twin

import (
	"fmt"

	"impulse/internal/addr"
	"impulse/internal/harness"
	"impulse/internal/kernel"
	"impulse/internal/sim"
)

// predictSRAM is the closed form for the "sram" family: streams
// interleaved sequential 8-byte walks of perStream bytes each, under the
// Impulse controller with prefetch on, sweeping the prefetch-SRAM
// capacity. Capacity is pure timing, so every cell shares one load
// structure and differs only in whether a prefetched line survives the
// SRAM's FIFO until its demand arrives.
//
// Structure per 128-byte line and stream: the first (boundary) access
// goes to memory, the other lineBytes/8−1 hit the L2 (the streams alias
// to one L1 set, so the L1 never hits). Each boundary access prefetches
// the next line; between that insert and the line's own demand one
// boundary round later sit exactly streams−1 further inserts, so the
// entry survives iff the SRAM holds at least `streams` lines:
//
//	hit  ⇒ lat = memLead + xfer
//	miss ⇒ lat = memLead + issue + rowMiss + xfer
//
// Two structural wrinkles:
//
//   - Page crossings. The controller prefetches the *physical* next
//     line, and at a page boundary that line sits in the previous
//     frame's neighbour, not the next page's frame — so the first
//     boundary of every page misses the SRAM (and pays the TLB walk)
//     at any capacity.
//
//   - L2 page coloring. Each (stream, page) pair draws a frame color
//     from the kernel's pseudo-random free list, and the 2-way L2
//     thrashes wherever three or more streams draw one color: those
//     streams lose all their would-be L2 hits for that page window and
//     go to memory instead, where the surviving-SRAM case turns them
//     into prefetch hits (except on the page's first line, missed for
//     the reason above). The kernel's color draw is a deterministic
//     xorshift, so the twin replays the allocation sequence against the
//     real allocator (sramOverflowWindows) and counts the realized
//     collisions exactly rather than estimating their expectation.
func predictSRAM(g geom, fast bool) *Prediction {
	sizes := harness.SRAMGeometry(fast)
	streams64, perStream := harness.SRAMWorkload()
	streams := uint64(streams64)

	n := streams * perStream / 8
	boundaryRounds := perStream / g.lineBytes
	walkRounds := perStream / g.pageBytes
	linesPerPage := g.pageBytes / g.lineBytes
	perLine := g.lineBytes / 8

	// Realized L2-overflow (stream, page) windows from the kernel's
	// deterministic color draw. Each overflow window turns a page's worth
	// of would-be L2 hits into memory loads: perLine−1 accesses on each
	// of the page's lines, minus the boundary access already counted.
	overflowSW := sramOverflowWindows(streams, perStream/g.pageBytes)
	perStreamWindow := (g.pageBytes / 8) - linesPerPage
	extra := overflowSW * perStreamWindow
	// The page's first line was never correctly prefetched, so its
	// thrash accesses miss the SRAM even when everything else survives.
	extraMissSurvive := overflowSW * (perLine - 1)

	latHit := g.memLead + g.xfer
	latMiss := g.memLead + g.issue + g.rowMiss + g.xfer

	secs := make([]string, len(sizes))
	cells := make([][]Cell, len(sizes))
	for i, size := range sizes {
		secs[i] = fmt.Sprintf("%dB", size)
		survive := size/g.lineBytes >= streams

		latB, extraMiss := latMiss, extra
		if survive {
			latB, extraMiss = latHit, extraMissSurvive
		}
		var c classes
		c.add(g.l2Hit, n-streams*boundaryRounds-extra) // in-line L2 hits
		c.add(latHit, extra-extraMiss)                 // color-overflow SRAM hits
		c.add(latMiss, extraMiss)                      // color-overflow SRAM misses
		c.add(g.walk+latMiss, streams*walkRounds)      // page-start boundaries: wrong-frame prefetch
		c.add(latB, streams*(boundaryRounds-walkRounds))

		memLoads := streams*boundaryRounds + extra
		prefetches := streams * boundaryRounds // one per boundary demand
		demandDRAM := streams*walkRounds + extraMiss
		if !survive {
			demandDRAM = memLoads
		}
		cell := Cell{
			Label:         secs[i],
			Loads:         n,
			BusBytes:      memLoads * g.lineBytes,
			L2:            float64(n-memLoads) / float64(n),
			Mem:           float64(memLoads) / float64(n),
			TLBMisses:     streams * walkRounds,
			TLBWalkCost:   streams * walkRounds * g.walk,
			Cycles:        c.h.Total + n, // + Tick(1) per load
			DRAMRowMisses: prefetches + demandDRAM,
		}
		if survive {
			cell.MCPrefetchHits = streams*(boundaryRounds-walkRounds) + (extra - extraMiss)
		}
		c.fill(&cell)
		cells[i] = []Cell{cell}
	}

	return &Prediction{
		Family: "sram", Fast: fast,
		Title:    fmt.Sprintf("Controller prefetch SRAM sweep (%d interleaved streams, analytical twin)", streams),
		Sections: secs,
		Columns:  []string{"twin"},
		Cells:    cells,
	}
}

// sramOverflowWindows replays the workload's frame allocations against
// the real kernel allocator — the color draw is a deterministic xorshift,
// so the sweep's recording and every twin call see the same sequence —
// and returns the number of (stream, page) windows whose color is shared
// by three or more streams, overflowing the 2-way L2.
func sramOverflowWindows(streams, pagesPerStream uint64) uint64 {
	cfg := sim.DefaultConfig()
	k, err := kernel.New(cfg.Kernel)
	if err != nil {
		return 0
	}
	defer k.Release()
	// Mirror machine setup: the controller page table's frames are
	// reserved before any process allocation.
	ptLo := uint64(cfg.MC.PgTblBase) >> addr.PageShift
	ptHi := (uint64(cfg.MC.PgTblBase) + cfg.MC.PgTblBytes) >> addr.PageShift
	if err := k.ReserveFrameRange(ptLo, ptHi); err != nil {
		return 0
	}

	colors := make([][]uint64, streams)
	for j := range colors {
		colors[j] = make([]uint64, pagesPerStream)
		for p := range colors[j] {
			f, err := k.AllocFrame()
			if err != nil {
				return 0
			}
			colors[j][p] = k.FrameColor(f)
		}
	}

	var overflow uint64
	occupancy := make([]uint64, k.NumColors())
	for p := uint64(0); p < pagesPerStream; p++ {
		for i := range occupancy {
			occupancy[i] = 0
		}
		for j := uint64(0); j < streams; j++ {
			occupancy[colors[j][p]]++
		}
		for _, occ := range occupancy {
			if occ >= 3 {
				overflow += occ
			}
		}
	}
	return overflow
}
