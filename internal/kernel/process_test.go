package kernel

import (
	"testing"

	"impulse/internal/addr"
)

func TestCreateAndSwitchProcess(t *testing.T) {
	k := mustKernel(t)
	if k.CurrentProcess() != 0 || k.Processes() != 1 {
		t.Fatal("boot state wrong")
	}
	pid := k.CreateProcess()
	if pid == 0 || k.Processes() != 2 {
		t.Fatalf("CreateProcess: pid=%d procs=%d", pid, k.Processes())
	}
	if err := k.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	if k.CurrentProcess() != pid {
		t.Fatal("switch did not take effect")
	}
	if err := k.SwitchProcess(42); err == nil {
		t.Error("switch to unknown pid accepted")
	}
}

func TestPerProcessPageTables(t *testing.T) {
	k := mustKernel(t)
	va0, err := k.AllocAndMap(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	pid := k.CreateProcess()
	if err := k.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Translate(va0); ok {
		t.Error("process 0's mapping visible in new process")
	}
	va1, err := k.AllocAndMap(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := k.Translate(va1)
	if err := k.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	p0, ok := k.Translate(va0)
	if !ok {
		t.Fatal("process 0 lost its mapping")
	}
	if p0.PageNum() == p1.PageNum() {
		t.Error("two processes share a private frame")
	}
}

func TestFrameOwnershipEnforced(t *testing.T) {
	k := mustKernel(t)
	f, err := k.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	pid := k.CreateProcess()
	if err := k.SwitchProcess(pid); err != nil {
		t.Fatal(err)
	}
	va, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapPage(va.PageNum(), f); err == nil {
		t.Error("foreign frame mapped")
	}
	if err := k.FreeFrame(f); err == nil {
		t.Error("foreign frame freed")
	}
	if err := k.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	if err := k.FreeFrame(f); err != nil {
		t.Errorf("owner denied free: %v", err)
	}
}

func TestShadowGrants(t *testing.T) {
	k := mustKernel(t)
	sh, err := k.ShadowAlloc(2*addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	peer := k.CreateProcess()
	other := k.CreateProcess()

	// Without a grant, the peer cannot map it.
	if err := k.SwitchProcess(peer); err != nil {
		t.Fatal(err)
	}
	va, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapShadowPage(va.PageNum(), sh); err == nil {
		t.Fatal("ungranted shadow mapped")
	}

	// Owner grants; peer can map; other still cannot.
	if err := k.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	if err := k.GrantShadow(sh, peer); err != nil {
		t.Fatal(err)
	}
	if err := k.GrantShadow(sh, 77); err == nil {
		t.Error("granted to unknown pid")
	}
	if err := k.SwitchProcess(peer); err != nil {
		t.Fatal(err)
	}
	if err := k.MapShadowPage(va.PageNum(), sh); err != nil {
		t.Errorf("granted peer denied: %v", err)
	}
	if err := k.SwitchProcess(other); err != nil {
		t.Fatal(err)
	}
	vo, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapShadowPage(vo.PageNum(), sh); err == nil {
		t.Error("third process mapped granted-to-peer shadow")
	}

	// Revoke: peer cannot create NEW mappings.
	if err := k.SwitchProcess(0); err != nil {
		t.Fatal(err)
	}
	if err := k.RevokeShadow(sh, peer); err != nil {
		t.Fatal(err)
	}
	if err := k.SwitchProcess(peer); err != nil {
		t.Fatal(err)
	}
	va2, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapShadowPage(va2.PageNum(), sh); err == nil {
		t.Error("revoked peer mapped shadow")
	}
}

func TestOwnerAlwaysHasShadowAccess(t *testing.T) {
	k := mustKernel(t)
	sh, err := k.ShadowAlloc(addr.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapShadowPage(va.PageNum(), sh); err != nil {
		t.Errorf("owner denied its own shadow: %v", err)
	}
}

func TestUnallocatedShadowRejected(t *testing.T) {
	k := mustKernel(t)
	va, _ := k.AllocVirtual(addr.PageSize, 0)
	// An address inside the shadow window but never allocated.
	unallocated := addr.PAddr(k.Layout().ShadowBase + k.Layout().ShadowBytes - addr.PageSize)
	if err := k.MapShadowPage(va.PageNum(), unallocated); err == nil {
		t.Error("unallocated shadow address mapped")
	}
	if err := k.GrantShadow(unallocated, 0); err == nil {
		t.Error("granted unallocated shadow")
	}
	if err := k.RevokeShadow(unallocated, 0); err == nil {
		t.Error("revoked unallocated shadow")
	}
}
