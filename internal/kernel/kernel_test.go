package kernel

import (
	"testing"
	"testing/quick"

	"impulse/internal/addr"
)

func mustKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func smallKernel(t *testing.T, frames uint64) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Layout.DRAMBytes = frames * addr.PageSize
	cfg.Layout.ShadowBase = 1 << 30
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAllocFrameUnique(t *testing.T) {
	k := smallKernel(t, 64)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		f, err := k.AllocFrame()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if _, err := k.AllocFrame(); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestFreeAndReuse(t *testing.T) {
	k := smallKernel(t, 8)
	f, _ := k.AllocFrame()
	if err := k.FreeFrame(f); err != nil {
		t.Fatal(err)
	}
	if err := k.FreeFrame(f); err == nil {
		t.Fatal("double free accepted")
	}
	if k.AllocatedFrames() != 0 {
		t.Fatal("accounting wrong after free")
	}
	for i := 0; i < 8; i++ {
		if _, err := k.AllocFrame(); err != nil {
			t.Fatalf("re-alloc %d: %v", i, err)
		}
	}
}

func TestColoredAllocation(t *testing.T) {
	k := mustKernel(t)
	for c := uint64(0); c < k.NumColors(); c++ {
		f, err := k.AllocFrameColored(c, c)
		if err != nil {
			t.Fatalf("color %d: %v", c, err)
		}
		if k.FrameColor(f) != c {
			t.Fatalf("requested color %d, got frame %d (color %d)", c, f, k.FrameColor(f))
		}
	}
	if _, err := k.AllocFrameColored(5, 3); err == nil {
		t.Error("inverted color range accepted")
	}
	if _, err := k.AllocFrameColored(0, k.NumColors()); err == nil {
		t.Error("out-of-range color accepted")
	}
}

func TestColorExhaustion(t *testing.T) {
	k := smallKernel(t, 64) // 64 frames, 32 colors -> 2 frames per color
	if _, err := k.AllocFrameColored(3, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AllocFrameColored(3, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := k.AllocFrameColored(3, 3); err == nil {
		t.Fatal("third frame of color 3 should not exist")
	}
	// The wider range still succeeds using a neighboring color.
	f, err := k.AllocFrameColored(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k.FrameColor(f) != 4 {
		t.Errorf("expected spill to color 4, got %d", k.FrameColor(f))
	}
}

func TestMapTranslate(t *testing.T) {
	k := mustKernel(t)
	f, _ := k.AllocFrame()
	if err := k.MapPage(0x100, f); err != nil {
		t.Fatal(err)
	}
	if err := k.MapPage(0x100, f); err == nil {
		t.Fatal("double map accepted")
	}
	v := addr.VAddr(0x100<<addr.PageShift | 0x123)
	p, ok := k.Translate(v)
	if !ok || p != addr.PAddr(f<<addr.PageShift|0x123) {
		t.Fatalf("Translate = %v,%v", p, ok)
	}
	if _, ok := k.Translate(0); ok {
		t.Fatal("unmapped page translated")
	}
	k.Unmap(0x100)
	if _, ok := k.Translate(v); ok {
		t.Fatal("translation survives Unmap")
	}
}

func TestAllocAndMap(t *testing.T) {
	k := mustKernel(t)
	va, err := k.AllocAndMap(3*addr.PageSize+5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if va.PageOff() != 0 {
		t.Error("base not page aligned")
	}
	// 4 pages mapped (3 full + 1 partial).
	for i := uint64(0); i < 4; i++ {
		if _, ok := k.Translate(va + addr.VAddr(i*addr.PageSize)); !ok {
			t.Errorf("page %d unmapped", i)
		}
	}
	frames, err := k.FramesOf(va, 3*addr.PageSize+5)
	if err != nil || len(frames) != 4 {
		t.Fatalf("FramesOf: %v, %d frames", err, len(frames))
	}
}

func TestAllocAndMapColoredRotates(t *testing.T) {
	k := mustKernel(t)
	va, err := k.AllocAndMapColored(8*addr.PageSize, 0, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := k.FramesOf(va, 8*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, f := range frames {
		c := k.FrameColor(f)
		if c < 4 || c > 7 {
			t.Fatalf("frame color %d outside [4,7]", c)
		}
		counts[c]++
	}
	for c := uint64(4); c <= 7; c++ {
		if counts[c] != 2 {
			t.Errorf("color %d used %d times, want 2 (rotation)", c, counts[c])
		}
	}
}

func TestVirtualAlignment(t *testing.T) {
	k := mustKernel(t)
	va, err := k.AllocVirtual(100, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(va)&(1<<16-1) != 0 {
		t.Errorf("va %#x not 64K aligned", uint64(va))
	}
	if _, err := k.AllocVirtual(100, 3000); err == nil {
		t.Error("non-pow2 alignment accepted")
	}
}

func TestShadowAlloc(t *testing.T) {
	k := mustKernel(t)
	s1, err := k.ShadowAlloc(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Layout().IsShadow(s1) {
		t.Fatal("shadow allocation outside shadow region")
	}
	s2, err := k.ShadowAlloc(addr.PageSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(s2)&(1<<20-1) != 0 {
		t.Error("shadow alignment not honored")
	}
	// Regions are disjoint: s1 used 2 pages.
	if uint64(s2) < uint64(s1)+2*addr.PageSize {
		t.Error("shadow regions overlap")
	}
}

func TestShadowExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout.ShadowBytes = 4 * addr.PageSize
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.ShadowAlloc(3*addr.PageSize, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ShadowAlloc(2*addr.PageSize, 0); err == nil {
		t.Fatal("shadow over-allocation accepted")
	}
}

func TestMapShadowPageAndFramesOfReject(t *testing.T) {
	k := mustKernel(t)
	sh, _ := k.ShadowAlloc(addr.PageSize, 0)
	va, _ := k.AllocVirtual(addr.PageSize, 0)
	if err := k.MapShadowPage(va.PageNum(), sh); err != nil {
		t.Fatal(err)
	}
	p, ok := k.Translate(va)
	if !ok || !k.Layout().IsShadow(p) {
		t.Fatalf("shadow translate = %v,%v", p, ok)
	}
	// FramesOf must refuse shadow-backed ranges.
	if _, err := k.FramesOf(va, addr.PageSize); err == nil {
		t.Error("FramesOf accepted shadow mapping")
	}
	// MapShadowPage must reject non-shadow targets.
	if err := k.MapShadowPage(va.PageNum()+1, addr.PAddr(0x1000)); err == nil {
		t.Error("MapShadowPage accepted DRAM address")
	}
}

func TestRemapPage(t *testing.T) {
	k := mustKernel(t)
	va, _ := k.AllocAndMap(addr.PageSize, 0)
	f2, _ := k.AllocFrame()
	if err := k.RemapPage(va.PageNum(), f2); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Translate(va)
	if p.PageNum() != f2 {
		t.Errorf("remap not applied: %v", p)
	}
	if err := k.RemapPage(0xdead, f2); err == nil {
		t.Error("remap of unmapped page accepted")
	}
	sh, _ := k.ShadowAlloc(addr.PageSize, 0)
	if err := k.RemapToShadow(va.PageNum(), sh); err != nil {
		t.Fatal(err)
	}
	p, _ = k.Translate(va)
	if !k.Layout().IsShadow(p) {
		t.Error("RemapToShadow not applied")
	}
}

// Property: interleaved alloc/free never double-allocates and never hands
// out a frame outside installed DRAM.
func TestQuickAllocatorSound(t *testing.T) {
	k := smallKernel(t, 128)
	live := map[uint64]bool{}
	var liveList []uint64
	f := func(ops []uint8) bool {
		for _, op := range ops {
			if op%2 == 0 || len(liveList) == 0 {
				fr, err := k.AllocFrame()
				if err != nil {
					continue // exhausted is fine
				}
				if live[fr] || fr >= 128 {
					return false
				}
				live[fr] = true
				liveList = append(liveList, fr)
			} else {
				fr := liveList[int(op)%len(liveList)]
				liveList[int(op)%len(liveList)] = liveList[len(liveList)-1]
				liveList = liveList[:len(liveList)-1]
				if err := k.FreeFrame(fr); err != nil {
					return false
				}
				delete(live, fr)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shadow allocations are disjoint and inside the shadow region.
func TestQuickShadowDisjoint(t *testing.T) {
	k := mustKernel(t)
	type region struct{ base, size uint64 }
	var regions []region
	f := func(sz uint16) bool {
		size := uint64(sz)%65536 + 1
		s, err := k.ShadowAlloc(size, 0)
		if err != nil {
			return true // exhaustion acceptable
		}
		if !k.Layout().IsShadow(s) {
			return false
		}
		rounded := (size + addr.PageSize - 1) &^ uint64(addr.PageSize-1)
		for _, r := range regions {
			if uint64(s) < r.base+r.size && r.base < uint64(s)+rounded {
				return false
			}
		}
		regions = append(regions, region{uint64(s), rounded})
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReserveFrameRange(t *testing.T) {
	k := smallKernel(t, 64)
	if err := k.ReserveFrameRange(10, 20); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for {
		f, err := k.AllocFrame()
		if err != nil {
			break
		}
		if f >= 10 && f < 20 {
			t.Fatalf("reserved frame %d allocated", f)
		}
		seen[f] = true
	}
	if len(seen) != 54 {
		t.Errorf("allocated %d frames, want 54", len(seen))
	}
	if err := k.ReserveFrameRange(100, 50); err == nil {
		t.Error("inverted range accepted")
	}
	if err := k.ReserveFrameRange(0, 1000); err == nil {
		t.Error("out-of-range reserve accepted")
	}
}

func TestAllocFrameColorSpread(t *testing.T) {
	// The pseudo-random allocator must not pile everything on few colors.
	k := mustKernel(t)
	counts := map[uint64]int{}
	for i := 0; i < 320; i++ {
		f, err := k.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		counts[k.FrameColor(f)]++
	}
	used := len(counts)
	if used < int(k.NumColors())/2 {
		t.Errorf("allocation used only %d of %d colors", used, k.NumColors())
	}
	for c, n := range counts {
		if n > 64 { // 320/32 = 10 expected; 64 would be a pile-up
			t.Errorf("color %d received %d of 320 frames", c, n)
		}
	}
}

func TestAllocVirtualDisjoint(t *testing.T) {
	k := mustKernel(t)
	a, _ := k.AllocVirtual(3*addr.PageSize, 0)
	b, _ := k.AllocVirtual(addr.PageSize, 0)
	if uint64(b) < uint64(a)+3*addr.PageSize {
		t.Error("virtual regions overlap")
	}
}

// naiveFreeLists builds per-color free stacks the way New's original
// per-color append loop did: frames visited high-to-low, each appended
// to its color's stack, so allocation pops lowest-first.
func naiveFreeLists(frames, colors uint64) [][]uint64 {
	lists := make([][]uint64, colors)
	for f := int64(frames) - 1; f >= 0; f-- {
		c := uint64(f) % colors
		lists[c] = append(lists[c], uint64(f))
	}
	return lists
}

func checkFreeLists(t *testing.T, k *Kernel) {
	t.Helper()
	want := naiveFreeLists(k.frames, k.numColors)
	if uint64(len(k.freeByColor)) != k.numColors {
		t.Fatalf("%d color lists, want %d", len(k.freeByColor), k.numColors)
	}
	for c := range want {
		if len(k.freeByColor[c]) != len(want[c]) {
			t.Fatalf("color %d: %d free frames, want %d", c, len(k.freeByColor[c]), len(want[c]))
		}
		for i := range want[c] {
			if k.freeByColor[c][i] != want[c][i] {
				t.Fatalf("color %d index %d: frame %d, want %d", c, i, k.freeByColor[c][i], want[c][i])
			}
		}
	}
}

// TestFreeListConstruction pins New's pooled single-backing free-list
// carving to the naive per-color append construction it replaced —
// identical stacks and pop order — for a fresh kernel, a kernel built
// from recycled storage, and a recycled kernel with a different color
// count (the recycled backing is larger than needed).
func TestFreeListConstruction(t *testing.T) {
	k := mustKernel(t)
	checkFreeLists(t, k)

	// Dirty the free lists, then recycle the storage into a new kernel.
	for i := 0; i < 100; i++ {
		f, err := k.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := k.FreeFrame(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	k.Release()
	k2 := mustKernel(t)
	checkFreeLists(t, k2)

	k2.Release()
	cfg := DefaultConfig()
	cfg.PageColors = 8
	k3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFreeLists(t, k3)
}

// TestFreeFrameSegmentIsolation drains one color's segment and refills
// it past its original length boundary via FreeFrame; the capacity bound
// on each carved segment must keep those appends from growing into the
// neighbouring color's storage.
func TestFreeFrameSegmentIsolation(t *testing.T) {
	k := mustKernel(t)
	want1 := append([]uint64(nil), k.freeByColor[1]...)
	var got []uint64
	for {
		f, err := k.AllocFrameColored(0, 0)
		if err != nil {
			break
		}
		got = append(got, f)
	}
	for i := len(got) - 1; i >= 0; i-- {
		if err := k.FreeFrame(got[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want1 {
		if k.freeByColor[1][i] != want1[i] {
			t.Fatalf("color 1 corrupted at %d: frame %d, want %d", i, k.freeByColor[1][i], want1[i])
		}
	}
	checkFreeLists(t, k)
}
