// Package kernel models the operating-system state an Impulse system
// depends on: physical frame allocation (including the color-aware
// allocation page recoloring needs), the process page table, a virtual
// address-space allocator, and the shadow address-space allocator.
//
// "Both shadow addresses and virtual addresses are system resources, so
// the operating system must manage their allocation and mapping" (§2.1).
// This package is pure bookkeeping — it has no clock. The cycle costs of
// system calls, descriptor downloads, and cache flushes are charged by the
// system layer (internal/core), which also orchestrates the five-step
// remapping protocol of §2.1.
package kernel

import (
	"fmt"
	"sync"

	"impulse/internal/addr"
	"impulse/internal/bitutil"
)

// Kernel is the OS state of the simulated machine. It manages physical
// frames, per-process page tables and virtual-space allocators, and the
// shadow address space. Kernel state is multi-process: every allocation
// is owned by the process that made it, and the protection checks the
// paper requires ("system calls that allow applications to use Impulse
// without violating inter-process protection", §2.1) are enforced here —
// a process cannot map another process's frames or shadow regions unless
// the owner granted access (the LRPC-style sharing of §6).
type Kernel struct {
	layout addr.Layout

	// Physical frame allocator. The per-color free stacks are carved out
	// of one backing array (frameStore) so a kernel costs two allocations
	// instead of one per color; both recycle through freePool (Release).
	freeByColor [][]uint64 // color -> stack of free frame numbers
	frameStore  []uint64
	numColors   uint64
	colorSeed   uint64         // xorshift state for uncolored allocation
	allocated   map[uint64]int // frame number -> owning process
	frames      uint64

	// Processes. Process 0 exists from boot and is current initially.
	procs   map[int]*procState
	cur     int
	nextPid int
	vBase   uint64 // first user virtual address for new processes

	// Shadow-space bump allocator and region ownership.
	shNext    uint64
	shTop     uint64
	shRegions []shadowRegion

	// mapObs observes page-table mutations (nil = not recording); trace
	// recording uses it to capture OS remap setup.
	mapObs MapObserver

	// Last-translation cache in front of the page-table map. Workload
	// access streams revisit the same page for long runs, so this single
	// entry absorbs most Translate calls (the processor TLB sits above
	// this, but TLB misses and kernel-side translations still land
	// here). Invalidated on any page-table mutation or process switch.
	ltPage  uint64
	ltFrame uint64
	ltOK    bool
}

// procState is one process's address space.
type procState struct {
	pt    map[uint64]uint64 // virtual page number -> frame (or shadow page)
	vNext uint64
}

// shadowRegion records ownership of an allocated shadow range.
type shadowRegion struct {
	base   uint64
	bytes  uint64
	owner  int
	grants map[int]bool
}

// Config parameterizes the kernel.
type Config struct {
	Layout addr.Layout
	// PageColors is the number of physical page colors, i.e. how many
	// pages make up one way of the physically-indexed L2 cache. The
	// paper's L2 (256 KB, 2-way) has 128 KB per way = 32 colors with 4 KB
	// pages.
	PageColors uint64
	// VBase is the first user virtual address handed out.
	VBase uint64
}

// DefaultConfig matches the paper's geometry.
func DefaultConfig() Config {
	return Config{
		Layout:     addr.DefaultLayout(),
		PageColors: 32,
		VBase:      0x0040_0000, // leave a null-guard + text region unused
	}
}

// freeResources is the recyclable part of a kernel's frame allocator.
type freeResources struct {
	store []uint64
	lists [][]uint64
}

var freePool sync.Pool

// New builds a kernel.
func New(cfg Config) (*Kernel, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if !bitutil.IsPow2(cfg.PageColors) || cfg.PageColors == 0 {
		return nil, fmt.Errorf("kernel: PageColors must be a power of two, got %d", cfg.PageColors)
	}
	k := &Kernel{
		layout:    cfg.Layout,
		numColors: cfg.PageColors,
		allocated: make(map[uint64]int),
		frames:    cfg.Layout.DRAMFrames(),
		colorSeed: 0x9E3779B97F4A7C15,
		procs:     map[int]*procState{0: {pt: make(map[uint64]uint64), vNext: cfg.VBase}},
		vBase:     cfg.VBase,
		cur:       0,
		nextPid:   1,
		shNext:    cfg.Layout.ShadowBase,
		shTop:     cfg.Layout.ShadowBase + cfg.Layout.ShadowBytes,
	}
	if r, ok := freePool.Get().(*freeResources); ok &&
		uint64(cap(r.store)) >= k.frames && uint64(cap(r.lists)) >= k.numColors {
		k.frameStore = r.store[:k.frames]
		k.freeByColor = r.lists[:k.numColors]
	} else {
		k.frameStore = make([]uint64, k.frames)
		k.freeByColor = make([][]uint64, k.numColors)
	}
	// Carve the backing array into one full-capacity segment per color
	// (the capacity bound keeps a FreeFrame append from growing into the
	// neighbouring color's segment) and fill each segment high-to-low so
	// allocation order is low-to-high — the same stack contents the old
	// per-color append loop built.
	start := uint64(0)
	for c := uint64(0); c < k.numColors; c++ {
		count := k.frames / k.numColors
		if c < k.frames%k.numColors {
			count++
		}
		seg := k.frameStore[start : start+count : start+count]
		for i := uint64(0); i < count; i++ {
			seg[i] = c + (count-1-i)*k.numColors
		}
		k.freeByColor[c] = seg
		start += count
	}
	return k, nil
}

// Release returns the frame allocator's backing storage to the package
// pool for reuse by the next same-geometry kernel. The caller must not
// use the kernel afterwards.
func (k *Kernel) Release() {
	if k.frameStore == nil {
		return
	}
	freePool.Put(&freeResources{store: k.frameStore, lists: k.freeByColor})
	k.frameStore = nil
	k.freeByColor = nil
}

// p returns the current process's state.
func (k *Kernel) p() *procState { return k.procs[k.cur] }

// Layout returns the bus-address-space layout.
func (k *Kernel) Layout() addr.Layout { return k.layout }

// NumColors returns the number of physical page colors.
func (k *Kernel) NumColors() uint64 { return k.numColors }

// FrameColor returns the page color of a frame number.
func (k *Kernel) FrameColor(frame uint64) uint64 { return frame & (k.numColors - 1) }

// AllocFrame allocates any free frame, choosing page colors
// pseudo-randomly the way a general-purpose allocator's free list spreads
// pages across a physically indexed cache. Random (rather than
// round-robin) colors matter for fidelity: the occasional same-color
// collisions between a structure's pages are exactly the conflict misses
// page recoloring exists to remove (§3.1).
func (k *Kernel) AllocFrame() (uint64, error) {
	for tries := uint64(0); tries < k.numColors; tries++ {
		// xorshift step; deterministic across runs.
		k.colorSeed ^= k.colorSeed << 13
		k.colorSeed ^= k.colorSeed >> 7
		k.colorSeed ^= k.colorSeed << 17
		c := k.colorSeed % k.numColors
		if f, err := k.AllocFrameColored(c, c); err == nil {
			return f, nil
		}
	}
	// Random probing exhausted: fall back to a linear scan.
	for c := uint64(0); c < k.numColors; c++ {
		if f, err := k.AllocFrameColored(c, c); err == nil {
			return f, nil
		}
	}
	return 0, fmt.Errorf("kernel: out of physical memory (%d frames)", k.frames)
}

// AllocFrameColored allocates a frame whose color lies in [lo, hi]
// (inclusive). This is the primitive behind page recoloring: the recolored
// alias is placed so its L2 index bits land in the chosen cache region.
func (k *Kernel) AllocFrameColored(lo, hi uint64) (uint64, error) {
	if lo > hi || hi >= k.numColors {
		return 0, fmt.Errorf("kernel: bad color range [%d,%d] of %d", lo, hi, k.numColors)
	}
	for c := lo; c <= hi; c++ {
		list := k.freeByColor[c]
		if len(list) == 0 {
			continue
		}
		f := list[len(list)-1]
		k.freeByColor[c] = list[:len(list)-1]
		k.allocated[f] = k.cur
		return f, nil
	}
	return 0, fmt.Errorf("kernel: no free frame with color in [%d,%d]", lo, hi)
}

// FreeFrame returns a frame to the allocator. Only the owning process
// may free it.
func (k *Kernel) FreeFrame(f uint64) error {
	owner, ok := k.allocated[f]
	if !ok {
		return fmt.Errorf("kernel: double free of frame %d", f)
	}
	if owner != k.cur {
		return fmt.Errorf("kernel: process %d cannot free frame %d owned by process %d", k.cur, f, owner)
	}
	delete(k.allocated, f)
	c := k.FrameColor(f)
	k.freeByColor[c] = append(k.freeByColor[c], f)
	return nil
}

// AllocatedFrames returns how many frames are currently allocated.
func (k *Kernel) AllocatedFrames() int { return len(k.allocated) }

// ReserveFrameRange permanently removes frames [lo, hi) from the
// allocator (used for regions owned by hardware, e.g. the Impulse
// controller's backing page table).
func (k *Kernel) ReserveFrameRange(lo, hi uint64) error {
	if hi > k.frames || lo > hi {
		return fmt.Errorf("kernel: bad reserve range [%d,%d) of %d frames", lo, hi, k.frames)
	}
	for c := range k.freeByColor {
		list := k.freeByColor[c][:0]
		for _, f := range k.freeByColor[c] {
			if f < lo || f >= hi {
				list = append(list, f)
			}
		}
		k.freeByColor[c] = list
	}
	return nil
}

// AllocVirtual reserves a contiguous virtual region of the given size with
// the given alignment (both rounded to pages; align must be a power of two
// >= the page size, or 0 for page alignment). No frames are mapped.
func (k *Kernel) AllocVirtual(bytes, align uint64) (addr.VAddr, error) {
	if align == 0 {
		align = addr.PageSize
	}
	if !bitutil.IsPow2(align) || align < addr.PageSize {
		return 0, fmt.Errorf("kernel: bad virtual alignment %d", align)
	}
	base := bitutil.AlignUp(k.p().vNext, align)
	size := bitutil.AlignUp(bytes, addr.PageSize)
	if base+size < base {
		return 0, fmt.Errorf("kernel: virtual address space exhausted")
	}
	k.p().vNext = base + size
	return addr.VAddr(base), nil
}

// MapObserver observes page-table mutations and process switches, for
// trace recording. Callbacks fire after the mutation succeeds, with the
// concrete page number installed (so a replay reproduces the mappings
// the frame allocator happened to pick, without re-running it).
type MapObserver interface {
	OnMap(vpage, pn uint64)
	OnUnmap(vpage uint64)
	OnSwitch(pid int)
}

// SetMapObserver attaches (or detaches, with nil) a page-table observer.
func (k *Kernel) SetMapObserver(o MapObserver) { k.mapObs = o }

// InstallMapping installs vpage -> pn (frame or shadow page number) in
// the current process's page table, bypassing ownership, range, and
// already-mapped checks. It exists for trace replay, which reissues
// mappings that already passed those checks when they were recorded;
// everything else should use MapPage/RemapPage/MapShadowPage. It does
// not notify the MapObserver.
func (k *Kernel) InstallMapping(vpage, pn uint64) {
	k.invalidateLT()
	k.p().pt[vpage] = pn
}

// noteMap notifies the observer of a successful page-table install.
func (k *Kernel) noteMap(vpage, pn uint64) {
	if k.mapObs != nil {
		k.mapObs.OnMap(vpage, pn)
	}
}

// MapPage installs vpage -> frame in the current process's page table.
// The frame must belong to the calling process.
func (k *Kernel) MapPage(vpage, frame uint64) error {
	if frame >= k.frames {
		return fmt.Errorf("kernel: frame %d beyond installed DRAM", frame)
	}
	if owner, ok := k.allocated[frame]; !ok || owner != k.cur {
		return fmt.Errorf("kernel: process %d cannot map frame %d (owner %d, allocated %v)",
			k.cur, frame, owner, ok)
	}
	if old, ok := k.p().pt[vpage]; ok {
		return fmt.Errorf("kernel: virtual page %#x already mapped to frame %d", vpage, old)
	}
	k.invalidateLT()
	k.p().pt[vpage] = frame
	k.noteMap(vpage, frame)
	return nil
}

// RemapPage replaces an existing mapping (used by recoloring and tile
// remapping, which move a virtual page onto a new frame or shadow page).
func (k *Kernel) RemapPage(vpage, frame uint64) error {
	if _, ok := k.p().pt[vpage]; !ok {
		return fmt.Errorf("kernel: virtual page %#x not mapped", vpage)
	}
	k.invalidateLT()
	k.p().pt[vpage] = frame
	k.noteMap(vpage, frame)
	return nil
}

// MapShadowPage maps a virtual page directly onto a shadow page (the
// "pseudo frame number" is the shadow page number). Shadow pages lie
// beyond installed DRAM, so this bypasses the frame-range check.
func (k *Kernel) MapShadowPage(vpage uint64, shadow addr.PAddr) error {
	if !k.layout.IsShadow(shadow) {
		return fmt.Errorf("kernel: %v is not a shadow address", shadow)
	}
	if err := k.shadowAccessible(shadow); err != nil {
		return err
	}
	k.invalidateLT()
	k.p().pt[vpage] = shadow.PageNum()
	k.noteMap(vpage, shadow.PageNum())
	return nil
}

// RemapToShadow rewrites an existing virtual page mapping to a shadow page.
func (k *Kernel) RemapToShadow(vpage uint64, shadow addr.PAddr) error {
	if _, ok := k.p().pt[vpage]; !ok {
		return fmt.Errorf("kernel: virtual page %#x not mapped", vpage)
	}
	if !k.layout.IsShadow(shadow) {
		return fmt.Errorf("kernel: %v is not a shadow address", shadow)
	}
	if err := k.shadowAccessible(shadow); err != nil {
		return err
	}
	k.invalidateLT()
	k.p().pt[vpage] = shadow.PageNum()
	k.noteMap(vpage, shadow.PageNum())
	return nil
}

// Unmap removes a virtual page mapping.
func (k *Kernel) Unmap(vpage uint64) {
	k.invalidateLT()
	delete(k.p().pt, vpage)
	if k.mapObs != nil {
		k.mapObs.OnUnmap(vpage)
	}
}

// Translate translates a virtual address to a bus address.
func (k *Kernel) Translate(v addr.VAddr) (addr.PAddr, bool) {
	page := v.PageNum()
	if k.ltOK && k.ltPage == page {
		return addr.PAddr(k.ltFrame<<addr.PageShift | v.PageOff()), true
	}
	f, ok := k.p().pt[page]
	if !ok {
		return 0, false
	}
	k.ltPage, k.ltFrame, k.ltOK = page, f, true
	return addr.PAddr(f<<addr.PageShift | v.PageOff()), true
}

// invalidateLT drops the last-translation cache; every page-table
// mutation and process switch must call it.
func (k *Kernel) invalidateLT() { k.ltOK = false }

// TranslatePage returns the frame (or shadow page) number mapped at vpage.
func (k *Kernel) TranslatePage(vpage uint64) (uint64, bool) {
	f, ok := k.p().pt[vpage]
	return f, ok
}

// AllocAndMap allocates `bytes` of virtual space backed by freshly
// allocated frames and returns the base virtual address.
func (k *Kernel) AllocAndMap(bytes, align uint64) (addr.VAddr, error) {
	return k.allocAndMap(bytes, align, func() (uint64, error) { return k.AllocFrame() })
}

// AllocAndMapColored is AllocAndMap with every frame drawn from the given
// color range; colors rotate within the range so large structures tile the
// target cache region instead of piling on one color.
func (k *Kernel) AllocAndMapColored(bytes, align, colorLo, colorHi uint64) (addr.VAddr, error) {
	next := colorLo
	return k.allocAndMap(bytes, align, func() (uint64, error) {
		for tries := colorLo; tries <= colorHi; tries++ {
			c := next
			next++
			if next > colorHi {
				next = colorLo
			}
			if f, err := k.AllocFrameColored(c, c); err == nil {
				return f, nil
			}
		}
		return 0, fmt.Errorf("kernel: colors [%d,%d] exhausted", colorLo, colorHi)
	})
}

func (k *Kernel) allocAndMap(bytes, align uint64, alloc func() (uint64, error)) (addr.VAddr, error) {
	va, err := k.AllocVirtual(bytes, align)
	if err != nil {
		return 0, err
	}
	pages := bitutil.AlignUp(bytes, addr.PageSize) >> addr.PageShift
	for i := uint64(0); i < pages; i++ {
		f, err := alloc()
		if err != nil {
			return 0, err
		}
		if err := k.MapPage(va.PageNum()+i, f); err != nil {
			return 0, err
		}
	}
	return va, nil
}

// ShadowAlloc reserves a contiguous shadow region ("The OS allocates
// shadow addresses from a pool of physical addresses that do not
// correspond to real DRAM addresses", §2.1 step 2). Alignment must be a
// power of two; 0 means page alignment.
func (k *Kernel) ShadowAlloc(bytes, align uint64) (addr.PAddr, error) {
	if align == 0 {
		align = addr.PageSize
	}
	if !bitutil.IsPow2(align) {
		return 0, fmt.Errorf("kernel: bad shadow alignment %d", align)
	}
	base := bitutil.AlignUp(k.shNext, align)
	size := bitutil.AlignUp(bytes, addr.PageSize)
	if base+size > k.shTop {
		return 0, fmt.Errorf("kernel: shadow space exhausted (%d bytes requested)", bytes)
	}
	k.shNext = base + size
	k.shRegions = append(k.shRegions, shadowRegion{base: base, bytes: size, owner: k.cur})
	return addr.PAddr(base), nil
}

// shadowRegionOf finds the allocated region containing p.
func (k *Kernel) shadowRegionOf(p addr.PAddr) *shadowRegion {
	for i := range k.shRegions {
		r := &k.shRegions[i]
		if uint64(p) >= r.base && uint64(p) < r.base+r.bytes {
			return r
		}
	}
	return nil
}

// shadowAccessible reports whether the current process may map p.
func (k *Kernel) shadowAccessible(p addr.PAddr) error {
	r := k.shadowRegionOf(p)
	if r == nil {
		return fmt.Errorf("kernel: shadow address %v not allocated", p)
	}
	if r.owner != k.cur && !r.grants[k.cur] {
		return fmt.Errorf("kernel: process %d denied access to shadow region of process %d (no grant)",
			k.cur, r.owner)
	}
	return nil
}

// FramesOf returns the frame numbers backing the virtual range
// [va, va+bytes), one per page, failing if any page is unmapped or is a
// shadow mapping. Used when downloading controller page tables.
func (k *Kernel) FramesOf(va addr.VAddr, bytes uint64) ([]uint64, error) {
	first := va.PageNum()
	last := (uint64(va) + bytes - 1) >> addr.PageShift
	out := make([]uint64, 0, last-first+1)
	for p := first; p <= last; p++ {
		f, ok := k.p().pt[p]
		if !ok {
			return nil, fmt.Errorf("kernel: page %#x unmapped", p)
		}
		if f >= k.frames {
			return nil, fmt.Errorf("kernel: page %#x maps to shadow, not DRAM", p)
		}
		out = append(out, f)
	}
	return out, nil
}

// --- Processes and protection -------------------------------------------

// CreateProcess creates a new, empty address space and returns its pid.
func (k *Kernel) CreateProcess() int {
	pid := k.nextPid
	k.nextPid++
	k.procs[pid] = &procState{pt: make(map[uint64]uint64), vNext: k.vBase}
	return pid
}

// SwitchProcess makes pid the current process. The caller (the system
// layer) is responsible for charging the context-switch cost and
// flushing the processor TLB.
func (k *Kernel) SwitchProcess(pid int) error {
	if _, ok := k.procs[pid]; !ok {
		return fmt.Errorf("kernel: no process %d", pid)
	}
	k.invalidateLT()
	k.cur = pid
	if k.mapObs != nil {
		k.mapObs.OnSwitch(pid)
	}
	return nil
}

// CurrentProcess returns the running process's pid.
func (k *Kernel) CurrentProcess() int { return k.cur }

// Processes returns the number of live processes.
func (k *Kernel) Processes() int { return len(k.procs) }

// GrantShadow lets process pid map pages of the shadow region containing
// base. Only the region's owner may grant (the protection rule of §2.1;
// this is how §6's LRPC-style shared shadow buffers are authorized).
func (k *Kernel) GrantShadow(base addr.PAddr, pid int) error {
	r := k.shadowRegionOf(base)
	if r == nil {
		return fmt.Errorf("kernel: shadow address %v not allocated", base)
	}
	if r.owner != k.cur {
		return fmt.Errorf("kernel: process %d cannot grant shadow owned by process %d", k.cur, r.owner)
	}
	if _, ok := k.procs[pid]; !ok {
		return fmt.Errorf("kernel: no process %d", pid)
	}
	if r.grants == nil {
		r.grants = make(map[int]bool)
	}
	r.grants[pid] = true
	return nil
}

// RevokeShadow removes a grant.
func (k *Kernel) RevokeShadow(base addr.PAddr, pid int) error {
	r := k.shadowRegionOf(base)
	if r == nil {
		return fmt.Errorf("kernel: shadow address %v not allocated", base)
	}
	if r.owner != k.cur {
		return fmt.Errorf("kernel: process %d cannot revoke shadow owned by process %d", k.cur, r.owner)
	}
	delete(r.grants, pid)
	return nil
}
