// Package membuf implements the simulated physical memory contents of the
// machine: the actual bytes stored in installed DRAM. It is purely
// functional storage — timing lives in package dram — but it is what makes
// the simulator execution-driven: workloads really read and write their
// data through the memory hierarchy, so every experiment doubles as a
// correctness check of the remapping machinery.
//
// Frames are allocated lazily: a simulated machine with 256 MB of DRAM only
// costs host memory for the pages a workload touches.
package membuf

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"impulse/internal/addr"
)

// Memory is byte-addressable simulated DRAM. All multi-byte accesses are
// little-endian and may not cross a page boundary unless they go through
// ReadBytes/WriteBytes (which handle splits).
type Memory struct {
	frames    []*[addr.PageSize]byte
	allocated uint64 // number of frames actually backed
}

// Pools for the frame-pointer table and the page frames themselves. A
// sweep family builds hundreds of short-lived machines with identical
// geometry; recycling the big allocations across cells (see Release) is
// most of the per-cell setup allocation budget. Pages are zeroed on
// reuse, so a recycled Memory is indistinguishable from a fresh one.
var (
	tablePool sync.Pool // *[]*[addr.PageSize]byte
	pagePool  sync.Pool // *[addr.PageSize]byte
)

// New creates a memory with the given number of page frames.
func New(frames uint64) *Memory {
	if t, ok := tablePool.Get().(*[]*[addr.PageSize]byte); ok && uint64(cap(*t)) >= frames {
		return &Memory{frames: (*t)[:frames]} // entries nil-cleared by Release
	}
	return &Memory{frames: make([]*[addr.PageSize]byte, frames)}
}

// Release returns the memory's host allocations to the package pools and
// leaves it empty. The caller must not use the Memory afterwards. Safe to
// call from concurrent goroutines (each releasing its own Memory).
func (m *Memory) Release() {
	for i, f := range m.frames {
		if f != nil {
			pagePool.Put(f)
			m.frames[i] = nil
		}
	}
	t := m.frames
	tablePool.Put(&t)
	m.frames = nil
	m.allocated = 0
}

// Frames returns the total number of addressable frames.
func (m *Memory) Frames() uint64 { return uint64(len(m.frames)) }

// AllocatedFrames returns how many frames are currently backed by host
// memory (touched at least once).
func (m *Memory) AllocatedFrames() uint64 { return m.allocated }

func (m *Memory) frame(p addr.PAddr) *[addr.PageSize]byte {
	n := p.PageNum()
	if n >= uint64(len(m.frames)) {
		panic(fmt.Sprintf("membuf: access to %v beyond installed DRAM (%d frames)", p, len(m.frames)))
	}
	f := m.frames[n]
	if f == nil {
		if pg, ok := pagePool.Get().(*[addr.PageSize]byte); ok {
			*pg = [addr.PageSize]byte{} // zero-on-first-touch semantics
			f = pg
		} else {
			f = new([addr.PageSize]byte)
		}
		m.frames[n] = f
		m.allocated++
	}
	return f
}

// Load8 reads one byte at p.
func (m *Memory) Load8(p addr.PAddr) uint8 {
	return m.frame(p)[p.PageOff()]
}

// Store8 writes one byte at p.
func (m *Memory) Store8(p addr.PAddr, v uint8) {
	m.frame(p)[p.PageOff()] = v
}

// Load32 reads a little-endian 32-bit value at p (must not cross a page).
func (m *Memory) Load32(p addr.PAddr) uint32 {
	off := p.PageOff()
	if off+4 > addr.PageSize {
		return uint32(m.loadCross(p, 4))
	}
	f := m.frame(p)
	return binary.LittleEndian.Uint32(f[off : off+4])
}

// Store32 writes a little-endian 32-bit value at p.
func (m *Memory) Store32(p addr.PAddr, v uint32) {
	off := p.PageOff()
	if off+4 > addr.PageSize {
		m.storeCross(p, uint64(v), 4)
		return
	}
	f := m.frame(p)
	binary.LittleEndian.PutUint32(f[off:off+4], v)
}

// Load64 reads a little-endian 64-bit value at p.
func (m *Memory) Load64(p addr.PAddr) uint64 {
	off := p.PageOff()
	if off+8 > addr.PageSize {
		return m.loadCross(p, 8)
	}
	f := m.frame(p)
	return binary.LittleEndian.Uint64(f[off : off+8])
}

// Store64 writes a little-endian 64-bit value at p.
func (m *Memory) Store64(p addr.PAddr, v uint64) {
	off := p.PageOff()
	if off+8 > addr.PageSize {
		m.storeCross(p, v, 8)
		return
	}
	f := m.frame(p)
	binary.LittleEndian.PutUint64(f[off:off+8], v)
}

// LoadFloat64 reads an IEEE-754 double at p.
func (m *Memory) LoadFloat64(p addr.PAddr) float64 {
	return math.Float64frombits(m.Load64(p))
}

// StoreFloat64 writes an IEEE-754 double at p.
func (m *Memory) StoreFloat64(p addr.PAddr, v float64) {
	m.Store64(p, math.Float64bits(v))
}

func (m *Memory) loadCross(p addr.PAddr, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.Load8(p+addr.PAddr(i))) << (8 * i)
	}
	return v
}

func (m *Memory) storeCross(p addr.PAddr, v uint64, n int) {
	for i := 0; i < n; i++ {
		m.Store8(p+addr.PAddr(i), uint8(v>>(8*i)))
	}
}

// ReadBytes copies len(dst) bytes starting at p into dst, handling page
// crossings.
func (m *Memory) ReadBytes(p addr.PAddr, dst []byte) {
	for len(dst) > 0 {
		off := p.PageOff()
		n := uint64(len(dst))
		if room := uint64(addr.PageSize) - off; n > room {
			n = room
		}
		f := m.frame(p)
		copy(dst[:n], f[off:off+n])
		dst = dst[n:]
		p += addr.PAddr(n)
	}
}

// WriteBytes copies src into memory starting at p, handling page crossings.
func (m *Memory) WriteBytes(p addr.PAddr, src []byte) {
	for len(src) > 0 {
		off := p.PageOff()
		n := uint64(len(src))
		if room := uint64(addr.PageSize) - off; n > room {
			n = room
		}
		f := m.frame(p)
		copy(f[off:off+n], src[:n])
		src = src[n:]
		p += addr.PAddr(n)
	}
}
