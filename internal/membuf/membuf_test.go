package membuf

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"impulse/internal/addr"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(16)
	m.Store8(5, 0xAB)
	if m.Load8(5) != 0xAB {
		t.Error("Load8/Store8")
	}
	m.Store32(100, 0xDEADBEEF)
	if m.Load32(100) != 0xDEADBEEF {
		t.Error("Load32/Store32")
	}
	m.Store64(200, 0x0123456789ABCDEF)
	if m.Load64(200) != 0x0123456789ABCDEF {
		t.Error("Load64/Store64")
	}
	m.StoreFloat64(300, math.Pi)
	if m.LoadFloat64(300) != math.Pi {
		t.Error("LoadFloat64/StoreFloat64")
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(1)
	m.Store32(0, 0x04030201)
	for i := 0; i < 4; i++ {
		if got := m.Load8(addr.PAddr(i)); got != uint8(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestPageCrossingScalar(t *testing.T) {
	m := New(4)
	p := addr.PAddr(addr.PageSize - 3) // 64-bit value straddles frames 0/1
	m.Store64(p, 0x1122334455667788)
	if got := m.Load64(p); got != 0x1122334455667788 {
		t.Errorf("cross-page Load64 = %#x", got)
	}
	p32 := addr.PAddr(2*addr.PageSize - 2)
	m.Store32(p32, 0xCAFEBABE)
	if got := m.Load32(p32); got != 0xCAFEBABE {
		t.Errorf("cross-page Load32 = %#x", got)
	}
}

func TestReadWriteBytesCrossing(t *testing.T) {
	m := New(8)
	src := make([]byte, 3*addr.PageSize/2)
	for i := range src {
		src[i] = byte(i * 7)
	}
	p := addr.PAddr(addr.PageSize / 2)
	m.WriteBytes(p, src)
	dst := make([]byte, len(src))
	m.ReadBytes(p, dst)
	if !bytes.Equal(src, dst) {
		t.Error("ReadBytes != WriteBytes across pages")
	}
}

func TestLazyAllocation(t *testing.T) {
	m := New(1024)
	if m.AllocatedFrames() != 0 {
		t.Fatal("fresh memory should have no backed frames")
	}
	m.Store8(0, 1)
	m.Store8(addr.PageSize*10, 1)
	m.Store8(addr.PageSize*10+5, 1) // same frame
	if m.AllocatedFrames() != 2 {
		t.Errorf("AllocatedFrames = %d, want 2", m.AllocatedFrames())
	}
	if m.Frames() != 1024 {
		t.Errorf("Frames = %d", m.Frames())
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New(4)
	if m.Load64(addr.PageSize+8) != 0 {
		t.Error("untouched memory not zero")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.Load8(addr.PAddr(2 * addr.PageSize))
}

func TestQuickScalarRoundTrip(t *testing.T) {
	m := New(64)
	limit := uint64(64*addr.PageSize - 8)
	f := func(off uint64, v uint64) bool {
		p := addr.PAddr(off % limit)
		m.Store64(p, v)
		return m.Load64(p) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	m := New(64)
	f := func(off uint16, data []byte) bool {
		if len(data) > 9000 {
			data = data[:9000]
		}
		p := addr.PAddr(off)
		m.WriteBytes(p, data)
		got := make([]byte, len(data))
		m.ReadBytes(p, got)
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
