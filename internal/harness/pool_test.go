package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/workloads"
)

// withWorkers runs f with the pool width set to n, restoring it after.
func withWorkers(n int, f func()) {
	old := Workers()
	SetWorkers(n)
	defer SetWorkers(old)
	f()
}

func TestRunOrderedResults(t *testing.T) {
	for _, w := range []int{1, 3, 8, 16} {
		withWorkers(w, func() {
			got, err := Run(10, func(i int, tc *TaskCtx) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, v, i*i)
				}
			}
		})
	}
}

func TestRunZeroAndOneTasks(t *testing.T) {
	withWorkers(4, func() {
		if got, err := Run(0, func(i int, tc *TaskCtx) (int, error) { return 0, nil }); err != nil || len(got) != 0 {
			t.Fatalf("n=0: got %v, %v", got, err)
		}
		got, err := Run(1, func(i int, tc *TaskCtx) (string, error) { return "only", nil })
		if err != nil || len(got) != 1 || got[0] != "only" {
			t.Fatalf("n=1: got %v, %v", got, err)
		}
	})
}

// TestRunFirstErrorWins: the surfaced error must be the lowest-index
// failing task's, even when a higher-index task fails first in wall
// time. Task 6 fails immediately; task 3 waits until task 6 has failed,
// then fails too. The pool must still report task 3's error.
func TestRunFirstErrorWins(t *testing.T) {
	err3 := errors.New("task 3 failed")
	err6 := errors.New("task 6 failed")
	withWorkers(4, func() {
		sixFailed := make(chan struct{})
		_, err := Run(8, func(i int, tc *TaskCtx) (int, error) {
			switch i {
			case 6:
				close(sixFailed)
				return 0, err6
			case 3:
				<-sixFailed
				return 0, err3
			}
			return i, nil
		})
		if !errors.Is(err, err3) {
			t.Fatalf("got error %v, want %v (lowest failing index)", err, err3)
		}
	})
}

// TestRunErrorCancelsPending: once a task fails, tasks with higher
// indices that have not started are skipped.
func TestRunErrorCancelsPending(t *testing.T) {
	boom := errors.New("boom")
	withWorkers(1, func() {
		var ran int32
		_, err := Run(100, func(i int, tc *TaskCtx) (int, error) {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want %v", err, boom)
		}
		// Serial: tasks 0..3 ran, everything after was cancelled.
		if ran != 4 {
			t.Fatalf("%d tasks ran, want 4", ran)
		}
	})
}

// TestRunReplaysRowsInSubmissionOrder: rows buffered by concurrent tasks
// must reach the global observer in task order, regardless of workers.
func TestRunReplaysRowsInSubmissionOrder(t *testing.T) {
	defer core.SetRowObserver(nil)
	for _, w := range []int{1, 4, 9} {
		var got []string
		core.SetRowObserver(func(r core.Row) { got = append(got, r.Label) })
		withWorkers(w, func() {
			_, err := Run(6, func(i int, tc *TaskCtx) (int, error) {
				tc.Observe(core.Row{Label: fmt.Sprintf("t%d-a", i)})
				tc.Observe(core.Row{Label: fmt.Sprintf("t%d-b", i)})
				return i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
		want := []string{"t0-a", "t0-b", "t1-a", "t1-b", "t2-a", "t2-b", "t3-a", "t3-b", "t4-a", "t4-b", "t5-a", "t5-b"}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestRunNoRowsOnError: a failed run must not replay any rows (partial
// registries would differ between worker counts).
func TestRunNoRowsOnError(t *testing.T) {
	defer core.SetRowObserver(nil)
	var got []string
	core.SetRowObserver(func(r core.Row) { got = append(got, r.Label) })
	withWorkers(2, func() {
		_, err := Run(4, func(i int, tc *TaskCtx) (int, error) {
			tc.Observe(core.Row{Label: "x"})
			if i == 2 {
				return 0, errors.New("fail")
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
	})
	if len(got) != 0 {
		t.Fatalf("%d rows replayed after error, want 0", len(got))
	}
}

// runAll exercises a representative slice of every converted experiment
// family plus the -counters registry, returning rendered output bytes
// and the registry dump.
func runAll(t *testing.T) (output, counters []byte) {
	t.Helper()
	var reg obs.Registry
	core.SetRowObserver(core.CollectRows(&reg))
	defer core.SetRowObserver(nil)

	var b bytes.Buffer
	par := smallCG()
	if g, err := Table1(context.Background(), par, nil); err != nil {
		t.Fatal(err)
	} else if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if g, err := Table2(context.Background(), workloads.MMPTiny(), nil); err != nil {
		t.Fatal(err)
	} else if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, f := range []func() error{
		func() error { return Figure1(context.Background(), 64, 1, &b) },
		func() error { return SchedulerAblation(context.Background(), par, &b) },
		func() error { return SuperpageExperiment(context.Background(), 128, 2, &b) },
		func() error { return IPCExperiment(context.Background(), 4, 32, 2, &b) },
		func() error { return PrefetchBufferSweep(context.Background(), []uint64{256, 2048}, &b) },
		func() error { return GatherStrideSweep(context.Background(), []int{1, 8}, 1024, &b) },
		func() error { return PagePolicyAblation(context.Background(), par, &b) },
		func() error { return CacheGeometrySweep(context.Background(), par, []uint64{64 << 10, 256 << 10}, &b) },
		func() error { return CholeskyExperiment(context.Background(), 64, 16, &b) },
		func() error { return SparkExperiment(context.Background(), 60, 60, 1, &b) },
		func() error {
			return DBExperiment(context.Background(), workloads.DBParams{Records: 2048, RecordBytes: 128, FieldOffset: 16}, 8, &b)
		},
		func() error { return SuperscalarExperiment(context.Background(), par, []uint64{1, 4}, &b) },
	} {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}

	var cb bytes.Buffer
	if err := reg.WriteText(&cb); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), cb.Bytes()
}

// TestParallelOutputByteIdentical is the differential guarantee behind
// the -j flag: every experiment's rendered output AND its counters
// registry dump must be byte-identical between a serial run and an
// 8-worker run.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	var serialOut, serialCtr, parOut, parCtr []byte
	withWorkers(1, func() { serialOut, serialCtr = runAll(t) })
	withWorkers(8, func() { parOut, parCtr = runAll(t) })
	if !bytes.Equal(serialOut, parOut) {
		t.Errorf("rendered output differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(serialOut), len(parOut))
	}
	if !bytes.Equal(serialCtr, parCtr) {
		t.Errorf("counters registry differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(serialCtr), len(parCtr))
	}
}

// TestPoolConcurrentMachines drives genuinely concurrent sim.Machine
// instances through the pool — the workload the race detector checks.
// Shared inputs (the sparse matrix) are read-only by contract; this test
// is what enforces that contract under -race.
func TestPoolConcurrentMachines(t *testing.T) {
	par := smallCG()
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	withWorkers(8, func() {
		var mu sync.Mutex
		seen := map[uint64]int{}
		rows, err := Run(8, func(i int, tc *TaskCtx) (core.Row, error) {
			s, err := tc.NewSystem(core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC})
			if err != nil {
				return core.Row{}, err
			}
			res, err := workloads.RunCG(s, par, workloads.CGScatterGather, m)
			if err != nil {
				return core.Row{}, err
			}
			mu.Lock()
			seen[res.Row.Cycles]++
			mu.Unlock()
			return res.Row, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Identical configurations must produce identical cycle counts:
		// concurrency may not perturb simulated time.
		if len(seen) != 1 {
			t.Fatalf("identical runs produced %d distinct cycle counts: %v", len(seen), seen)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] != rows[0] {
				t.Fatalf("row %d differs from row 0", i)
			}
		}
	})
}
