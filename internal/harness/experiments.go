package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"impulse/internal/workloads"
)

// Eligibility records, per family, which acceleration tiers apply. An
// empty string means eligible; a non-empty string is the human-readable
// reason the tier does not apply, surfaced verbatim by the stderr
// advisories (trace cache) and the service's twin tier. This is the one
// source of truth — there are deliberately no per-tier switch statements
// elsewhere.
type Eligibility struct {
	// TraceCache is why recorded cell traces cannot be replayed across
	// the family's cells ("" = replayable).
	TraceCache string
	// Twin is why no closed-form analytical twin exists for the family
	// ("" = the twin tier can predict it).
	Twin string
}

// Family is one named extension/ablation experiment with canned
// geometries: the default geometry cmd/sweep has always run, plus a
// reduced "fast" geometry (mirroring cmd/report -fast) for smoke tests
// and service jobs that want an answer in seconds. This table is the
// single source of truth for every entry point that runs sweeps by
// name — cmd/sweep's -exp flag and the impulsed service's
// {"kind":"sweep"} jobs — so a family added here appears everywhere at
// once.
type Family struct {
	Name string
	Desc string
	Elig Eligibility
	Run  func(ctx context.Context, fast bool, w io.Writer) error
}

// sweepCG is the CG geometry the ablation sweeps run at.
func sweepCG(fast bool) workloads.CGParams {
	par := workloads.CGParams{N: 4096, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
	if fast {
		par.N, par.CGIts = 2048, 2
	}
	return par
}

// SuperpageGeometry returns the page count and sweep count the
// "superpage" family runs at. Exported so the analytical twin models
// the exact geometry the simulator executes.
func SuperpageGeometry(fast bool) (pages, sweeps int) {
	if fast {
		return 512, 2
	}
	return 2048, 4
}

// SRAMGeometry returns the prefetch-buffer sizes the "sram" family
// sweeps over.
func SRAMGeometry(fast bool) []uint64 {
	if fast {
		return []uint64{256, 1024, 4096}
	}
	return []uint64{128, 256, 512, 1024, 2048, 4096, 8192}
}

// SRAMWorkload returns the workload shape of the "sram" family: how
// many sequential streams interleave and how many bytes each walks.
func SRAMWorkload() (streams int, perStream uint64) {
	return 12, 128 << 10
}

// StrideGeometry returns the indirection strides and element count the
// "stride" family sweeps over.
func StrideGeometry(fast bool) (strides []int, elems int) {
	if fast {
		return []int{1, 4, 16}, 4096
	}
	return []int{1, 2, 4, 8, 16, 32}, 16384
}

// noClosedForm is the twin-ineligibility reason shared by every family
// whose reference stream is CG's sparse matrix walk.
const noClosedForm = "CG's sparse access stream is data-dependent; no closed form"

// Families returns the sweep families in canonical run order.
func Families() []Family {
	return []Family{
		{"scheduler", "DRAM scheduler ablation (in-order vs row-major)",
			Eligibility{Twin: noClosedForm},
			func(ctx context.Context, fast bool, w io.Writer) error {
				return SchedulerAblation(ctx, sweepCG(fast), w)
			}},
		{"superpage", "superpage TLB experiment ([21])",
			Eligibility{TraceCache: "cells issue different remap syscalls"},
			func(ctx context.Context, fast bool, w io.Writer) error {
				pages, sweeps := SuperpageGeometry(fast)
				return SuperpageExperiment(ctx, pages, sweeps, w)
			}},
		{"ipc", "IPC message gather (§6)",
			Eligibility{
				TraceCache: "each cell runs a different workload variant",
				Twin:       "pointer-linked message buffers make the walk data-dependent",
			},
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return IPCExperiment(ctx, 8, 128, 2, w)
				}
				return IPCExperiment(ctx, 32, 1024, 4, w)
			}},
		{"sram", "controller prefetch SRAM sweep",
			Eligibility{},
			func(ctx context.Context, fast bool, w io.Writer) error {
				return PrefetchBufferSweep(ctx, SRAMGeometry(fast), w)
			}},
		{"stride", "gather cost vs indirection stride",
			Eligibility{},
			func(ctx context.Context, fast bool, w io.Writer) error {
				strides, elems := StrideGeometry(fast)
				return GatherStrideSweep(ctx, strides, elems, w)
			}},
		{"policy", "DRAM page-policy ablation (open vs closed)",
			Eligibility{Twin: noClosedForm},
			func(ctx context.Context, fast bool, w io.Writer) error {
				return PagePolicyAblation(ctx, sweepCG(fast), w)
			}},
		{"geometry", "L2-capacity sensitivity (trace-driven)",
			Eligibility{Twin: noClosedForm},
			func(ctx context.Context, fast bool, w io.Writer) error {
				sizes := []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
				if fast {
					sizes = []uint64{128 << 10, 256 << 10, 512 << 10}
				}
				return CacheGeometrySweep(ctx, sweepCG(fast), sizes, w)
			}},
		{"cholesky", "tiled Cholesky factorization (§3.2 extension)",
			Eligibility{
				TraceCache: "each cell runs a different workload variant",
				Twin:       "data-dependent tiled factorization",
			},
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return CholeskyExperiment(ctx, 128, 32, w)
				}
				return CholeskyExperiment(ctx, 256, 32, w)
			}},
		{"spark", "Spark98-style symmetric SMVP (§3.1 [17])",
			Eligibility{Twin: "mesh-dependent gather stream"},
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return SparkExperiment(ctx, 120, 120, 1, w)
				}
				return SparkExperiment(ctx, 300, 300, 1, w)
			}},
		{"db", "database projection and index scans",
			Eligibility{
				TraceCache: "each cell runs a different workload variant",
				Twin:       "selectivity-dependent scan stream",
			},
			func(ctx context.Context, fast bool, w io.Writer) error {
				p := workloads.DBDefault()
				if fast {
					p.Records = 16 << 10
				}
				return DBExperiment(ctx, p, 16, w)
			}},
		{"superscalar", "speedup vs issue width (§6 prediction)",
			Eligibility{Twin: noClosedForm},
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return SuperscalarExperiment(ctx, sweepCG(true), []uint64{1, 2, 4}, w)
				}
				par := workloads.CGParams{N: 14000, Nonzer: 7, Niter: 1, CGIts: 3, Shift: 20, RCond: 0.1}
				return SuperscalarExperiment(ctx, par, []uint64{1, 2, 4, 8}, w)
			}},
	}
}

// extraElig covers named runs that are not sweep families but still
// emit trace-cache advisories.
var extraElig = map[string]Eligibility{
	"figure1": {TraceCache: "each cell runs a different workload variant"},
}

// FamilyEligibility returns the eligibility record for a family (or
// advisory-only name like "figure1"); ok reports whether the name is
// known.
func FamilyEligibility(name string) (Eligibility, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f.Elig, true
		}
	}
	e, ok := extraElig[name]
	return e, ok
}

// FamilyNames returns the valid family names in run order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// RunFamily runs one family by name.
func RunFamily(ctx context.Context, name string, fast bool, w io.Writer) error {
	for _, f := range Families() {
		if f.Name == name {
			return f.Run(ctx, fast, w)
		}
	}
	return fmt.Errorf("harness: unknown sweep family %q; valid: %s",
		name, strings.Join(FamilyNames(), ", "))
}
