package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"impulse/internal/workloads"
)

// Family is one named extension/ablation experiment with canned
// geometries: the default geometry cmd/sweep has always run, plus a
// reduced "fast" geometry (mirroring cmd/report -fast) for smoke tests
// and service jobs that want an answer in seconds. This table is the
// single source of truth for every entry point that runs sweeps by
// name — cmd/sweep's -exp flag and the impulsed service's
// {"kind":"sweep"} jobs — so a family added here appears everywhere at
// once.
type Family struct {
	Name string
	Desc string
	Run  func(ctx context.Context, fast bool, w io.Writer) error
}

// sweepCG is the CG geometry the ablation sweeps run at.
func sweepCG(fast bool) workloads.CGParams {
	par := workloads.CGParams{N: 4096, Nonzer: 6, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
	if fast {
		par.N, par.CGIts = 2048, 2
	}
	return par
}

// Families returns the sweep families in canonical run order.
func Families() []Family {
	return []Family{
		{"scheduler", "DRAM scheduler ablation (in-order vs row-major)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				return SchedulerAblation(ctx, sweepCG(fast), w)
			}},
		{"superpage", "superpage TLB experiment ([21])",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return SuperpageExperiment(ctx, 512, 2, w)
				}
				return SuperpageExperiment(ctx, 2048, 4, w)
			}},
		{"ipc", "IPC message gather (§6)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return IPCExperiment(ctx, 8, 128, 2, w)
				}
				return IPCExperiment(ctx, 32, 1024, 4, w)
			}},
		{"sram", "controller prefetch SRAM sweep",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return PrefetchBufferSweep(ctx, []uint64{256, 1024, 4096}, w)
				}
				return PrefetchBufferSweep(ctx, []uint64{128, 256, 512, 1024, 2048, 4096, 8192}, w)
			}},
		{"stride", "gather cost vs indirection stride",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return GatherStrideSweep(ctx, []int{1, 4, 16}, 4096, w)
				}
				return GatherStrideSweep(ctx, []int{1, 2, 4, 8, 16, 32}, 16384, w)
			}},
		{"policy", "DRAM page-policy ablation (open vs closed)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				return PagePolicyAblation(ctx, sweepCG(fast), w)
			}},
		{"geometry", "L2-capacity sensitivity (trace-driven)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				sizes := []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
				if fast {
					sizes = []uint64{128 << 10, 256 << 10, 512 << 10}
				}
				return CacheGeometrySweep(ctx, sweepCG(fast), sizes, w)
			}},
		{"cholesky", "tiled Cholesky factorization (§3.2 extension)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return CholeskyExperiment(ctx, 128, 32, w)
				}
				return CholeskyExperiment(ctx, 256, 32, w)
			}},
		{"spark", "Spark98-style symmetric SMVP (§3.1 [17])",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return SparkExperiment(ctx, 120, 120, 1, w)
				}
				return SparkExperiment(ctx, 300, 300, 1, w)
			}},
		{"db", "database projection and index scans",
			func(ctx context.Context, fast bool, w io.Writer) error {
				p := workloads.DBDefault()
				if fast {
					p.Records = 16 << 10
				}
				return DBExperiment(ctx, p, 16, w)
			}},
		{"superscalar", "speedup vs issue width (§6 prediction)",
			func(ctx context.Context, fast bool, w io.Writer) error {
				if fast {
					return SuperscalarExperiment(ctx, sweepCG(true), []uint64{1, 2, 4}, w)
				}
				par := workloads.CGParams{N: 14000, Nonzer: 7, Niter: 1, CGIts: 3, Shift: 20, RCond: 0.1}
				return SuperscalarExperiment(ctx, par, []uint64{1, 2, 4, 8}, w)
			}},
	}
}

// FamilyNames returns the valid family names in run order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// RunFamily runs one family by name.
func RunFamily(ctx context.Context, name string, fast bool, w io.Writer) error {
	for _, f := range Families() {
		if f.Name == name {
			return f.Run(ctx, fast, w)
		}
	}
	return fmt.Errorf("harness: unknown sweep family %q; valid: %s",
		name, strings.Join(FamilyNames(), ", "))
}
