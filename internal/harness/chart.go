package harness

import (
	"fmt"
	"io"
	"sort"

	"impulse/internal/colres"
)

// SpeedupChart renders a grid's speedups as a self-contained SVG grouped
// bar chart (stdlib only): one group per section, one bar per prefetch
// column — the figure the paper's tables imply but never draw. Written
// by `cmd/report -svg`.
func SpeedupChart(g *Grid, w io.Writer) error {
	return SpeedupChartDoc(g.Doc(), w)
}

// SpeedupChartDoc is the SVG view over a columnar result document, so a
// chart can be drawn from an archived blob without reconstructing the
// grid it came from.
func SpeedupChartDoc(d *colres.Doc, w io.Writer) error {
	const (
		barW     = 34
		barGap   = 6
		groupGap = 42
		chartH   = 300
		baseY    = 340
		leftPad  = 60
	)
	// Regroup the flat cell list by section. Cells outside the declared
	// grid are skipped: Decode validates coordinates, but a hand-built
	// document may not.
	groups := make([][]*colres.Cell, len(d.Sections))
	var maxSp float64 = 1
	for i := range d.Cells {
		c := &d.Cells[i]
		if int(c.Section) >= len(groups) || int(c.Column) >= len(d.Columns) {
			continue
		}
		groups[c.Section] = append(groups[c.Section], c)
		if c.Speedup > maxSp {
			maxSp = c.Speedup
		}
	}
	// Emit bars in column order so the SVG bytes do not depend on the
	// (arbitrary, per Decode) cell order inside the blob.
	for _, row := range groups {
		sort.SliceStable(row, func(i, j int) bool { return row[i].Column < row[j].Column })
	}
	scale := float64(chartH) / (maxSp * 1.1)

	nGroups := len(groups)
	nBars := len(d.Columns)
	groupW := nBars*(barW+barGap) + groupGap
	width := leftPad + nGroups*groupW + 40
	height := baseY + 90

	colors := []string{"#888888", "#4477aa", "#66ccee", "#228833"}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", leftPad, d.Title)

	// Y axis with gridlines every 0.5x.
	for v := 0.0; v <= maxSp*1.1; v += 0.5 {
		y := float64(baseY) - v*scale
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			leftPad, y, width-20, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" text-anchor="end" fill="#555555">%.1f</text>`+"\n",
			leftPad-6, y+4, v)
	}
	// Baseline at 1.0x.
	y1 := float64(baseY) - 1.0*scale
	fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#aa3333" stroke-dasharray="4 3"/>`+"\n",
		leftPad, y1, width-20, y1)

	for gi, row := range groups {
		gx := leftPad + gi*groupW
		for _, c := range row {
			// Bar slot and color key off the cell's Column coordinate,
			// not encounter order: Decode accepts cells in any order, so
			// a reordered blob must still draw each bar in its policy's
			// slot with its policy's legend color.
			ci := int(c.Column)
			h := c.Speedup * scale
			x := gx + ci*(barW+barGap)
			fmt.Fprintf(w, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"/>`+"\n",
				x, float64(baseY)-h, barW, h, colors[ci%len(colors)])
			fmt.Fprintf(w, `<text x="%d" y="%.1f" text-anchor="middle" fill="#333333" font-size="10">%.2f</text>`+"\n",
				x+barW/2, float64(baseY)-h-4, c.Speedup)
		}
		// Section label, wrapped crudely at ~24 chars.
		label := d.Sections[gi]
		if len(label) > 26 {
			label = label[:24] + "…"
		}
		fmt.Fprintf(w, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			gx+(nBars*(barW+barGap))/2, baseY+22, label)
	}
	// Legend.
	for ci, name := range d.Columns {
		x := leftPad + ci*140
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="14" height="14" fill="%s"/>`+"\n",
			x, baseY+44, colors[ci%len(colors)])
		fmt.Fprintf(w, `<text x="%d" y="%d">%s prefetch</text>`+"\n", x+20, baseY+56, name)
	}
	fmt.Fprintf(w, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">speedup vs conventional</text>`+"\n",
		baseY-chartH/2, baseY-chartH/2)
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
