package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impulse/internal/colres"
	"impulse/internal/obs"
)

// TestColumnarGoldenRoundTrip is the schema-equivalence pin for the
// columnar result pipeline: lowering the golden grid to a blob,
// decoding it, and rendering the JSON view must reproduce
// testdata/grid_golden.json byte for byte. This is what lets the
// service archive blobs instead of rendered views — any view can be
// reconstructed from the columns with zero drift.
func TestColumnarGoldenRoundTrip(t *testing.T) {
	g := goldenGrid()
	blob := g.Columnar()
	doc, err := colres.Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var got bytes.Buffer
	if err := colres.WriteGridJSON(doc, &got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "grid_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("JSON view of decoded blob drifted from golden file\n--- got ---\n%s--- want ---\n%s",
			got.Bytes(), want)
	}
}

// TestColumnarViewsMatchDirectRenderings: the text table and the SVG
// chart rendered from a decoded blob are byte-identical to rendering
// the grid directly.
func TestColumnarViewsMatchDirectRenderings(t *testing.T) {
	g := goldenGrid()
	doc, err := colres.Decode(g.Columnar())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	var direct, viaBlob bytes.Buffer
	if err := g.Render(&direct); err != nil {
		t.Fatal(err)
	}
	if err := colres.RenderText(doc, &viaBlob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaBlob.Bytes()) {
		t.Errorf("text view from blob differs from direct render\n--- blob ---\n%s--- direct ---\n%s",
			viaBlob.Bytes(), direct.Bytes())
	}

	direct.Reset()
	viaBlob.Reset()
	if err := SpeedupChart(g, &direct); err != nil {
		t.Fatal(err)
	}
	if err := SpeedupChartDoc(doc, &viaBlob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaBlob.Bytes()) {
		t.Error("SVG chart from blob differs from direct render")
	}

	// The SVG view is coordinate-keyed: reversing the document's cell
	// order (still a valid blob per Decode) must not change one byte —
	// each bar stays in its policy's slot with its policy's color.
	rev := *doc
	rev.Cells = append([]colres.Cell(nil), doc.Cells...)
	for i, j := 0, len(rev.Cells)-1; i < j; i, j = i+1, j-1 {
		rev.Cells[i], rev.Cells[j] = rev.Cells[j], rev.Cells[i]
	}
	viaBlob.Reset()
	if err := SpeedupChartDoc(&rev, &viaBlob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaBlob.Bytes()) {
		t.Error("SVG chart depends on cell encounter order, not coordinates")
	}
}

// TestColumnarEncodeDeterministic: the same grid lowers to the same
// blob (the archive digests blobs and the byte-budget LRU keys them by
// spec hash, so a re-run must reproduce its bytes).
func TestColumnarEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(goldenGrid().Columnar(), goldenGrid().Columnar()) {
		t.Error("same grid encoded to different blobs")
	}
}

// TestIneligibleNoteCarriesJobID: the trace-cache ineligibility
// advisory fires once per process per family through obs.WarnOnceCtx,
// attributed to the service job whose context triggered it.
func TestIneligibleNoteCarriesJobID(t *testing.T) {
	var buf bytes.Buffer
	obs.SetWarnOutput(&buf)
	defer obs.SetWarnOutput(nil)
	obs.ResetWarnings()
	defer obs.ResetWarnings()

	prev := traceCacheOn
	SetTraceCache(true)
	defer SetTraceCache(prev)

	ctx := obs.WithJobID(context.Background(), "j-000042")
	noteIneligible(ctx, "ipc")
	got := buf.String()
	if !strings.Contains(got, "trace-cache: ipc: ineligible") {
		t.Fatalf("advisory not emitted: %q", got)
	}
	// The reason text comes from the registry's Eligibility record.
	if elig, _ := FamilyEligibility("ipc"); !strings.Contains(got, elig.TraceCache) {
		t.Errorf("advisory %q lacks registry reason %q", got, elig.TraceCache)
	}
	if !strings.Contains(got, "[job j-000042]") {
		t.Errorf("advisory lacks job attribution: %q", got)
	}

	// Same family again — even from another job — stays deduplicated.
	noteIneligible(obs.WithJobID(context.Background(), "j-000043"), "ipc")
	if buf.String() != got {
		t.Errorf("advisory repeated for the same family:\n%s", buf.String())
	}

	// A trace-cacheable family must not advertise ineligibility.
	noteIneligible(ctx, "sram")
	if strings.Contains(buf.String(), "sram") {
		t.Error("advisory fired for an eligible family")
	}

	// With the cache off the advisory is pointless and must not fire.
	SetTraceCache(false)
	noteIneligible(ctx, "db")
	if strings.Contains(buf.String(), "db") {
		t.Error("advisory fired with the trace cache disabled")
	}
}
