// Vectorized multi-config replay at the harness level: the cells of a
// sweep family that share one reference stream (one trace-cache key) are
// grouped into a single replay batch. The batch decodes the recorded
// trace once (tracefile.DecodeProgram) and applies the decoded program
// to every cell's machine in turn, instead of re-decoding the byte
// stream once per cell. Batches compose with -j: each batch is one pool
// task, so distinct families still run on distinct workers.
//
// Everything observable is preserved from the scalar path: rows are
// emitted in cell submission order, the returned rows and every counter
// are byte-identical to scalar replay (the differential tests pin
// this), the surfaced error is the lowest-index failing cell's, and
// cancellation wins over cell errors. -vector-replay=false restores the
// scalar per-cell path as the reference.
package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/sim"
	"impulse/internal/tracefile"
)

// vectorReplayOn gates the vectorized replay path (the -vector-replay
// flag). On by default; the scalar path remains as the reference.
var vectorReplayOn = true

// SetVectorReplay enables or disables vectorized batch replay. Call
// during setup, not while an experiment runs; results are identical
// either way (only host time differs).
func SetVectorReplay(on bool) { vectorReplayOn = on }

// VectorReplayEnabled reports whether replay batches are vectorized
// (recorded in job provenance manifests).
func VectorReplayEnabled() bool { return vectorReplayOn }

// buildSystem builds a cell's system under the harness-wide fast-path
// policy with an explicit row observer. TaskCtx.NewSystem and the
// vector batches share it so a cell's configuration cannot depend on
// which replay mode ran it.
func buildSystem(opts core.Options, observe func(core.Row)) (*core.System, error) {
	opts.RowObserver = observe
	if fastPathOff {
		cfg := sim.DefaultConfig()
		if opts.Config != nil {
			cfg = *opts.Config
		}
		cfg.DisableFastPath = true
		opts.Config = &cfg
	}
	return core.NewSystem(opts)
}

// batchID derives the short batch identity reported in cell events and
// job manifests from a trace-cache key.
func batchID(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("v-%08x", h.Sum32())
}

// runCells executes n grid cells through the trace cache and returns
// each cell's measured row in submission order. build(i) describes cell
// i; it is called once per cell, on the caller's goroutine in vectorized
// mode and on the worker in scalar mode (matching runCell's timing for
// progress callbacks).
//
// With vectorized replay on (and the trace cache on), cells sharing a
// reference-stream key form one batch: the first cell records (or the
// persisted trace loads), and every other cell replays through one
// shared decode. With either off, each cell runs exactly as runCell
// always has.
func runCells(ctx context.Context, n int, build func(i int) cellSpec) ([]core.Row, error) {
	if !vectorReplayOn || !traceCacheOn {
		if vectorReplayOn && !traceCacheOn {
			// Same one-shot advisory channel as trace-cache ineligibility
			// notes: surfaced once per process, attributed to the job
			// that first hit it when ctx carries a job id.
			obs.WarnOnceCtx(ctx, "vector-replay-inert",
				"vector-replay: trace cache is off; cells execute individually without batching")
		}
		return RunCtx(ctx, n, func(i int, tc *TaskCtx) (core.Row, error) {
			return runCell(tc, build(i))
		})
	}
	specs := make([]cellSpec, n)
	for i := range specs {
		specs[i] = build(i)
	}
	// Group cells by key in first-encounter order. Scanning ascending
	// indices makes each group's cells ascending and the groups' lead
	// indices ascending, which the error policy below relies on.
	var order []string
	groups := make(map[string][]int, n)
	for i := range specs {
		k := specs[i].key
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	errs := make([]error, n)
	rows := make([]core.Row, n)
	rowLogs := make([][]core.Row, n)
	// Batch tasks never return errors: per-cell errors land in errs so
	// the lowest-index *cell* error wins, exactly as if each cell were
	// its own pool task. (Cells of one key map to one task, so task
	// index order alone would misreport interleaved families.)
	if _, err := RunCtx(ctx, len(order), func(gi int, tc *TaskCtx) (struct{}, error) {
		runBatch(tc.Ctx, specs, groups[order[gi]], rows, errs, rowLogs)
		return struct{}{}, nil
	}); err != nil {
		return nil, err // ctx cancellation (tasks themselves never fail)
	}
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	// Rows flow to the sink in cell submission order, as the scalar
	// pool's per-task replay would deliver them.
	emit := rowSink(ctx)
	if emit == nil {
		emit = core.EmitRow
	}
	for i := range rowLogs {
		for _, r := range rowLogs[i] {
			emit(r)
		}
	}
	return rows, nil
}

// runBatch runs the cells of one reference-stream family: record (or
// load) the stream once, then replay it on every remaining cell's
// machine through one shared decode. Per-cell results, errors, and
// observed rows land in the caller's slices at the cell's own index;
// a cell that errors contributes no rows.
func runBatch(ctx context.Context, specs []cellSpec, cells []int, rows []core.Row, errs []error, rowLogs [][]core.Row) {
	observe := cellObserver(ctx)
	lead := cells[0]
	key := specs[lead].key
	batch := batchID(key)

	v, _ := traceCache.LoadOrStore(key, &traceEntry{})
	ent := v.(*traceEntry)
	recorded := -1
	var recStart, recEnd time.Time
	ent.once.Do(func() {
		recStart = time.Now()
		if data := loadPersistedTrace(key); data != nil {
			ent.data = data
			return
		}
		sp := &specs[lead]
		s, err := buildSystem(sp.opts, func(r core.Row) { rowLogs[lead] = append(rowLogs[lead], r) })
		if err != nil {
			ent.err = err
			return
		}
		rec := tracefile.RecordRun(s)
		r, err := sp.exec(s)
		if err != nil {
			s.ReleaseBuffers()
			ent.err = err
			return
		}
		data, err := rec.Bytes()
		s.ReleaseBuffers()
		if err != nil {
			ent.err = err
			return
		}
		ent.data = data
		rows[lead] = r
		recorded = lead
		recEnd = time.Now()
		persistTrace(ctx, key, data)
	})
	if ent.err != nil {
		// Same unpoisoning and error attribution as the scalar path: drop
		// the failed entry for future runs, and surface the recording
		// error verbatim from every cell of the key.
		traceCache.CompareAndDelete(key, v)
		for _, i := range cells {
			errs[i] = ent.err
			rowLogs[i] = nil
			if observe != nil {
				observe(CellEvent{Key: key, Mode: "record", Start: recStart, End: time.Now(),
					Batch: batch, BatchSize: len(cells)})
			}
		}
		return
	}
	if recorded >= 0 && observe != nil {
		observe(CellEvent{Key: key, Mode: "record", Start: recStart, End: recEnd,
			Batch: batch, BatchSize: len(cells)})
	}

	// Every cell that did not record becomes one replay lane. A persisted
	// or previously recorded stream means the lead replays too.
	lanes := make([]*tracefile.VectorLane, 0, len(cells))
	laneCell := make([]int, 0, len(cells))
	for _, i := range cells {
		if i == recorded {
			continue
		}
		i := i
		sp := &specs[i]
		s, err := buildSystem(sp.opts, func(r core.Row) { rowLogs[i] = append(rowLogs[i], r) })
		if err != nil {
			errs[i] = err
			continue
		}
		lanes = append(lanes, &tracefile.VectorLane{Sys: s, MapLabel: sp.relabel})
		laneCell = append(laneCell, i)
	}
	if len(lanes) == 0 {
		return
	}
	t0 := time.Now()
	st, err := tracefile.VectorReplayV2(ctx, ent.data, lanes)
	if err != nil {
		// Structural decode damage or cancellation: every lane cell
		// reports it; none of their rows survive.
		for _, i := range laneCell {
			errs[i] = fmt.Errorf("harness: trace replay (%s): %w", key, err)
			rowLogs[i] = nil
		}
		for _, ln := range lanes {
			ln.Sys.ReleaseBuffers()
		}
		return
	}
	applyStart := t0.Add(st.Decode)
	for li, ln := range lanes {
		i := laneCell[li]
		switch {
		case ln.Err != nil:
			errs[i] = fmt.Errorf("harness: trace replay (%s): %w", key, ln.Err)
			rowLogs[i] = nil
		case len(ln.Rows) == 0:
			errs[i] = fmt.Errorf("harness: trace replay (%s): no measured rows", key)
			rowLogs[i] = nil
		default:
			rows[i] = ln.Rows[len(ln.Rows)-1]
		}
		ln.Sys.ReleaseBuffers()
		if observe != nil {
			ev := CellEvent{Key: key, Mode: "replayed-vectorized",
				Start: applyStart, End: applyStart.Add(ln.Apply),
				Batch: batch, BatchSize: len(cells), BatchIndex: li, Apply: ln.Apply}
			if li == 0 {
				ev.Decode = st.Decode
			}
			observe(ev)
		}
		applyStart = applyStart.Add(ln.Apply)
	}
}
