package harness

import (
	"context"
	"strings"
	"testing"

	"impulse/internal/workloads"
)

func smallCG() workloads.CGParams {
	return workloads.CGParams{N: 240, Nonzer: 4, Niter: 1, CGIts: 4, Shift: 10, RCond: 0.1}
}

func TestTable1SmallGrid(t *testing.T) {
	var calls int
	g, err := Table1(context.Background(), smallCG(), func(section, column string) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 12 {
		t.Errorf("progress called %d times, want 12", calls)
	}
	if len(g.Sections) != 3 || len(g.Cells) != 3 || len(g.Cells[0]) != 4 {
		t.Fatalf("grid shape: %d sections, %dx%d cells", len(g.Sections), len(g.Cells), len(g.Cells[0]))
	}
	if g.Baseline().Speedup != 1.0 {
		t.Errorf("baseline speedup = %v", g.Baseline().Speedup)
	}
	for si := range g.Cells {
		for ci := range g.Cells[si] {
			c := g.Cells[si][ci]
			if c.Row.Cycles == 0 || c.Speedup <= 0 {
				t.Errorf("cell %d/%d empty: %+v", si, ci, c)
			}
		}
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Conventional memory system", "scatter/gather", "page recoloring", "speedup", "avg load time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2SmallGrid(t *testing.T) {
	g, err := Table2(context.Background(), workloads.MMPTiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 3 || len(g.Cells[2]) != 4 {
		t.Fatal("grid shape wrong")
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tile remapping") {
		t.Error("render missing tile remapping section")
	}
}

func TestFigure1(t *testing.T) {
	var b strings.Builder
	if err := Figure1(context.Background(), 128, 2, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "bus bytes", "speedup"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("figure 1 output missing %q:\n%s", want, b.String())
		}
	}
}

func TestSchedulerAblation(t *testing.T) {
	var b strings.Builder
	if err := SchedulerAblation(context.Background(), smallCG(), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "row-major") {
		t.Error("ablation output incomplete")
	}
}

func TestSuperpageExperiment(t *testing.T) {
	var b strings.Builder
	if err := SuperpageExperiment(context.Background(), 256, 2, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "TLB misses") {
		t.Error("superpage output incomplete")
	}
}

func TestIPCExperiment(t *testing.T) {
	var b strings.Builder
	if err := IPCExperiment(context.Background(), 4, 32, 2, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Impulse gather") {
		t.Error("IPC output incomplete")
	}
}

func TestPrefetchBufferSweep(t *testing.T) {
	var b strings.Builder
	if err := PrefetchBufferSweep(context.Background(), []uint64{256, 2048}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SRAM hits") {
		t.Error("sweep output incomplete")
	}
}

func TestGatherStrideSweep(t *testing.T) {
	var b strings.Builder
	if err := GatherStrideSweep(context.Background(), []int{1, 8}, 2048, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "controller prefetch") {
		t.Error("stride sweep output incomplete")
	}
}

func TestCholeskyExperiment(t *testing.T) {
	var b strings.Builder
	if err := CholeskyExperiment(context.Background(), 64, 16, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Cholesky") || !strings.Contains(b.String(), "Impulse remap") {
		t.Error("cholesky output incomplete")
	}
}

func TestSparkExperiment(t *testing.T) {
	var b strings.Builder
	if err := SparkExperiment(context.Background(), 30, 30, 2, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Spark98") {
		t.Error("spark output incomplete")
	}
}

func TestSuperscalarExperiment(t *testing.T) {
	var b strings.Builder
	if err := SuperscalarExperiment(context.Background(), smallCG(), []uint64{1, 4}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "width 4") || !strings.Contains(b.String(), "speedup") {
		t.Error("superscalar output incomplete")
	}
}

func TestDBExperiment(t *testing.T) {
	var b strings.Builder
	p := workloads.DBParams{Records: 2048, RecordBytes: 64, FieldOffset: 16}
	if err := DBExperiment(context.Background(), p, 8, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Database scans") {
		t.Error("db output incomplete")
	}
}

func TestRandomGatherCheck(t *testing.T) {
	n, err := RandomGatherCheck(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no elements verified")
	}
}

func TestControllerFor(t *testing.T) {
	if controllerFor(false, 0) != 0 {
		t.Error("conventional standard cell should use conventional controller")
	}
	if controllerFor(true, 0) == 0 || controllerFor(false, 1) == 0 {
		t.Error("remapping or MC prefetch requires Impulse controller")
	}
}

func TestPagePolicyAblation(t *testing.T) {
	var b strings.Builder
	if err := PagePolicyAblation(context.Background(), smallCG(), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "closed-page") {
		t.Error("policy ablation output incomplete")
	}
}

func TestCacheGeometrySweep(t *testing.T) {
	var b strings.Builder
	if err := CacheGeometrySweep(context.Background(), smallCG(), []uint64{128 << 10, 256 << 10}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "L2=256K") {
		t.Error("geometry sweep output incomplete")
	}
}
