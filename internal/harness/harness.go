// Package harness regenerates the paper's evaluation artifacts: Table 1
// (NAS conjugate gradient under three memory configurations and four
// prefetch policies), Table 2 (tiled matrix-matrix product under three
// tiling strategies and four prefetch policies), the Figure 1 diagonal
// microkernel, and the extension/ablation experiments indexed in
// DESIGN.md. Every run verifies the workload's numerical output against
// the host reference before reporting timing.
package harness

import (
	"context"
	"fmt"
	"io"

	"impulse/internal/colres"
	"impulse/internal/core"
	"impulse/internal/stats"
	"impulse/internal/workloads"
)

// prefetchColumns are the four columns of Tables 1 and 2, in paper order:
// "Standard", "Impulse" (controller prefetch), "L1 cache", "both".
var prefetchColumns = []core.PrefetchPolicy{
	core.PrefetchNone, core.PrefetchMC, core.PrefetchL1, core.PrefetchBoth,
}

// columnNames as printed in the paper.
var columnNames = []string{"Standard", "Impulse", "L1 cache", "both"}

// controllerFor picks the controller personality for a cell: remapping or
// controller prefetching both require Impulse hardware; otherwise the
// machine is a conventional system. (An Impulse controller with neither
// enabled behaves identically by design — "our design tries to avoid
// adding latency to normal accesses", §2.2 — which the tests verify.)
func controllerFor(remapped bool, pf core.PrefetchPolicy) core.ControllerKind {
	if remapped || pf == core.PrefetchMC || pf == core.PrefetchBoth {
		return core.Impulse
	}
	return core.Conventional
}

// Cell is one measured configuration.
type Cell struct {
	Row     core.Row
	Speedup float64
}

// Grid is a table of results: Sections x prefetch columns.
type Grid struct {
	Title    string
	Sections []string
	Cells    [][]Cell // [section][column]
}

// Render prints the grid in the paper's layout — the text view over the
// columnar document (colres.RenderText), so CLI output and a view
// rendered from an archived blob are byte-identical by construction.
func (g *Grid) Render(w io.Writer) error {
	return colres.RenderText(g.Doc(), w)
}

// Baseline returns the conventional/no-prefetch cell.
func (g *Grid) Baseline() Cell { return g.Cells[0][0] }

// fillSpeedups computes every cell's speedup against the baseline.
func (g *Grid) fillSpeedups() {
	base := g.Cells[0][0].Row
	for si := range g.Cells {
		for ci := range g.Cells[si] {
			g.Cells[si][ci].Speedup = core.Speedup(base, g.Cells[si][ci].Row)
		}
	}
}

// Progress is an optional callback invoked before each cell runs. With
// a parallel pool (SetWorkers > 1) it is called from worker goroutines,
// concurrently and in no particular order; implementations must be safe
// for that (a plain fmt.Fprintf to stderr is).
type Progress func(section, column string)

// Table1 regenerates the paper's Table 1 ("Simulated results for the NAS
// Class A conjugate gradient benchmark, with various memory system
// configurations") at the given geometry. The workload's zeta and
// residual are verified against the host reference for every cell.
func Table1(ctx context.Context, par workloads.CGParams, progress Progress) (*Grid, error) {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	wantZeta, wantRNorm := workloads.RefCG(m, par)

	sections := []struct {
		name string
		mode workloads.CGMode
	}{
		{"Conventional memory system", workloads.CGConventional},
		{"Impulse with scatter/gather remapping", workloads.CGScatterGather},
		{"Impulse with page recoloring", workloads.CGRecolor},
	}
	g := &Grid{Title: fmt.Sprintf("Table 1: NAS conjugate gradient (n=%d, nnz=%d, %d CG iterations)",
		par.N, m.NNZ(), par.Niter*par.CGIts)}
	nc := len(prefetchColumns)
	// The four prefetch columns of a section share one reference stream;
	// one column records, the others replay as one vectorized batch.
	rows, err := runCells(ctx, len(sections)*nc, func(idx int) cellSpec {
		sec, ci := sections[idx/nc], idx%nc
		pf := prefetchColumns[ci]
		if progress != nil {
			progress(sec.name, columnNames[ci])
		}
		return cellSpec{
			key: cgKey(par, sec.mode, nil),
			opts: core.Options{
				Controller: controllerFor(sec.mode != workloads.CGConventional, pf),
				Prefetch:   pf,
			},
			relabel: relabelPf(pf),
			// Error text names only the section: all four columns share
			// the stream, so which column recorded must not show through.
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, sec.mode, m)
				if err != nil {
					return core.Row{}, fmt.Errorf("harness: %s: %w", sec.name, err)
				}
				if res.Zeta != wantZeta || res.RNorm != wantRNorm {
					return core.Row{}, fmt.Errorf("harness: %s computed zeta=%v rnorm=%v, reference %v/%v",
						sec.name, res.Zeta, res.RNorm, wantZeta, wantRNorm)
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return nil, err
	}
	for si, sec := range sections {
		g.Sections = append(g.Sections, sec.name)
		cells := make([]Cell, nc)
		for ci := range cells {
			cells[ci] = Cell{Row: rows[si*nc+ci]}
		}
		g.Cells = append(g.Cells, cells)
	}
	g.fillSpeedups()
	return g, nil
}

// Table2 regenerates the paper's Table 2 ("Simulated results for tiled
// matrix-matrix product"). Checksums are verified against the host
// reference for every cell.
func Table2(ctx context.Context, par workloads.MMPParams, progress Progress) (*Grid, error) {
	want := workloads.RefMMP(par)
	sections := []struct {
		name string
		mode workloads.MMPMode
	}{
		{"Conventional memory system", workloads.MMPNoCopyTiled},
		{"Conventional memory system with software tile copying", workloads.MMPCopyTiled},
		{"Impulse with tile remapping", workloads.MMPTileRemap},
	}
	g := &Grid{Title: fmt.Sprintf("Table 2: tiled matrix-matrix product (%dx%d, %dx%d tiles)",
		par.N, par.N, par.Tile, par.Tile)}
	nc := len(prefetchColumns)
	rows, err := runCells(ctx, len(sections)*nc, func(idx int) cellSpec {
		sec, ci := sections[idx/nc], idx%nc
		pf := prefetchColumns[ci]
		if progress != nil {
			progress(sec.name, columnNames[ci])
		}
		return cellSpec{
			key: mmpKey(par, sec.mode, nil),
			opts: core.Options{
				Controller: controllerFor(sec.mode == workloads.MMPTileRemap, pf),
				Prefetch:   pf,
			},
			relabel: relabelPf(pf),
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunMMP(s, par, sec.mode)
				if err != nil {
					return core.Row{}, fmt.Errorf("harness: %s: %w", sec.name, err)
				}
				if res.Checksum != want {
					return core.Row{}, fmt.Errorf("harness: %s checksum %v != reference %v",
						sec.name, res.Checksum, want)
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return nil, err
	}
	for si, sec := range sections {
		g.Sections = append(g.Sections, sec.name)
		cells := make([]Cell, nc)
		for ci := range cells {
			cells[ci] = Cell{Row: rows[si*nc+ci]}
		}
		g.Cells = append(g.Cells, cells)
	}
	g.fillSpeedups()
	return g, nil
}

// Figure1 quantifies the paper's introductory diagonal example: cycles,
// bus traffic, and hit ratios for a diagonal traversal, conventional vs
// Impulse strided remapping.
func Figure1(ctx context.Context, dim, sweeps int, w io.Writer) error {
	noteIneligible(ctx, "figure1")
	want := workloads.RefDiagonal(dim)
	kinds := []core.ControllerKind{core.Conventional, core.Impulse}
	rows, err := RunCtx(ctx, len(kinds), func(i int, tc *TaskCtx) (workloads.DiagResult, error) {
		s, err := tc.NewSystem(core.Options{Controller: kinds[i]})
		if err != nil {
			return workloads.DiagResult{}, err
		}
		return workloads.RunDiagonal(s, dim, sweeps, kinds[i] == core.Impulse)
	})
	if err != nil {
		return err
	}
	rc, ri := rows[0], rows[1]
	if rc.Sum != want || ri.Sum != want {
		return fmt.Errorf("harness: figure 1 sums %v/%v != reference %v", rc.Sum, ri.Sum, want)
	}
	t := stats.NewTable(
		fmt.Sprintf("Figure 1: accessing the diagonal of a %dx%d matrix (%d sweeps)", dim, dim, sweeps),
		"Conventional", "Impulse")
	t.AddRow("cycles", stats.FormatCycles(rc.Row.Cycles), stats.FormatCycles(ri.Row.Cycles))
	t.AddRow("bus bytes", rc.Row.Stats.BusBytes, ri.Row.Stats.BusBytes)
	t.AddPercentRow("L1 hit ratio", rc.Row.L1Ratio, ri.Row.L1Ratio)
	t.AddRow("avg load time", rc.Row.AvgLoad, ri.Row.AvgLoad)
	t.AddRow("speedup", "—", fmt.Sprintf("%.2f", core.Speedup(rc.Row, ri.Row)))
	_, err = io.WriteString(w, t.Render())
	return err
}
