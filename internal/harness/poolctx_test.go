package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"impulse/internal/core"
	"impulse/internal/workloads"
)

// TestRunCtxCancelBlockedWorker: a worker blocked inside a task unblocks
// on TaskCtx.Ctx when the run's context is cancelled, and RunCtx
// surfaces ctx.Err() — the mechanism a cancelled service job uses to
// stop a grid mid-flight instead of running it to completion.
func TestRunCtxCancelBlockedWorker(t *testing.T) {
	withWorkers(2, func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var startedOnce sync.Once
		started := make(chan struct{})
		go func() {
			<-started
			cancel()
		}()
		_, err := RunCtx(ctx, 4, func(i int, tc *TaskCtx) (int, error) {
			startedOnce.Do(func() { close(started) })
			select {
			case <-tc.Ctx.Done():
				return 0, tc.Ctx.Err()
			case <-time.After(30 * time.Second):
				return 0, errors.New("task never saw cancellation")
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

// TestRunCtxPreCancelledRunsNothing: with the context already cancelled,
// no task body executes and the result is ctx.Err().
func TestRunCtxPreCancelledRunsNothing(t *testing.T) {
	withWorkers(4, func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		_, err := RunCtx(ctx, 16, func(i int, tc *TaskCtx) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("%d tasks ran under a pre-cancelled context", n)
		}
	})
}

// TestRunCtxCancellationBeatsTaskError: when the context is cancelled,
// RunCtx reports ctx.Err() even if some task also failed — otherwise the
// surfaced error would depend on scheduling.
func TestRunCtxCancellationBeatsTaskError(t *testing.T) {
	withWorkers(2, func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := RunCtx(ctx, 2, func(i int, tc *TaskCtx) (int, error) {
			cancel()
			return 0, errors.New("task-level failure")
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled to win over task errors", err)
		}
	})
}

// TestWithRowSinkRoutesRows: rows observed by pool tasks land in the
// context's sink, in submission order, and never reach the global
// observer — the isolation that lets concurrent service jobs each keep
// their own counter registry.
func TestWithRowSinkRoutesRows(t *testing.T) {
	withWorkers(4, func() {
		var globalRows atomic.Int64
		core.SetRowObserver(func(core.Row) { globalRows.Add(1) })
		defer core.SetRowObserver(nil)

		var got []string
		ctx := WithRowSink(context.Background(), func(r core.Row) {
			got = append(got, r.Label)
		})
		want := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
		_, err := RunCtx(ctx, len(want), func(i int, tc *TaskCtx) (int, error) {
			tc.Observe(core.Row{Label: want[i]})
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("sink saw %d rows, want %d", len(got), len(want))
		}
		for i, l := range got {
			if l != want[i] {
				t.Errorf("row %d = %q, want %q (submission order)", i, l, want[i])
			}
		}
		if n := globalRows.Load(); n != 0 {
			t.Errorf("global observer saw %d rows despite an installed sink", n)
		}
	})
}

// TestTraceCacheRetryAfterError: a failed recording must not poison its
// cache key for the life of the process — a daemon serves many jobs, and
// a cancelled first job must leave the key retryable for the next.
func TestTraceCacheRetryAfterError(t *testing.T) {
	withTraceCache(t, true, func() {
		injected := errors.New("injected recording failure")
		spec := func(fail bool) cellSpec {
			return cellSpec{
				key:  "retry-after-error-test",
				opts: core.Options{Controller: core.Conventional},
				exec: func(s *core.System) (core.Row, error) {
					if fail {
						return core.Row{}, injected
					}
					res, err := workloads.RunDiagonal(s, 64, 2, false)
					return res.Row, err
				},
			}
		}
		tc := &TaskCtx{Ctx: context.Background()}
		if _, err := runCell(tc, spec(true)); !errors.Is(err, injected) {
			t.Fatalf("first attempt err = %v, want injected failure", err)
		}
		row, err := runCell(tc, spec(false))
		if err != nil {
			t.Fatalf("retry after failed recording: %v", err)
		}
		if row.Cycles == 0 {
			t.Error("retry produced an empty row")
		}
	})
}
