package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"impulse/internal/workloads"
)

func TestWriteJSON(t *testing.T) {
	g, err := Table2(context.Background(), workloads.MMPTiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out JSONGrid
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Title == "" || len(out.Cells) != 12 {
		t.Fatalf("grid shape: title=%q cells=%d", out.Title, len(out.Cells))
	}
	sections := map[string]int{}
	for _, c := range out.Cells {
		sections[c.Section]++
		if c.Cycles == 0 || c.Speedup <= 0 || c.Loads == 0 {
			t.Errorf("empty cell: %+v", c)
		}
		if c.L1Ratio < 0 || c.L1Ratio > 1 {
			t.Errorf("ratio out of range: %+v", c)
		}
	}
	if len(sections) != 3 {
		t.Errorf("sections: %v", sections)
	}
	// Baseline cell has speedup exactly 1.
	if out.Cells[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v", out.Cells[0].Speedup)
	}
}

func TestSpeedupChart(t *testing.T) {
	g, err := Table2(context.Background(), workloads.MMPTiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SpeedupChart(g, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "speedup vs conventional", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 12 bars + 4 legend swatches = 16 rects.
	if got := strings.Count(out, "<rect"); got != 16 {
		t.Errorf("rect count = %d, want 16", got)
	}
}
