package harness

import (
	"context"
	"os"
	"strings"
	"testing"
)

// withTraceCache runs f with the cache forced on or off and the global
// state (enable flag, cached entries, persistence dirs) restored after.
func withTraceCache(t *testing.T, on bool, f func()) {
	t.Helper()
	was := TraceCacheEnabled()
	t.Cleanup(func() {
		SetTraceCache(was)
		SetTraceRecordDir("")
		SetTraceReplayDir("")
		ResetTraceCache()
	})
	SetTraceCache(on)
	ResetTraceCache()
	f()
}

func renderTable1(t *testing.T) string {
	t.Helper()
	g, err := Table1(context.Background(), smallCG(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceCacheTable1Identity is the harness-level contract: the full
// Table 1 family renders byte-identically whether every cell executes or
// nine of twelve replay a recorded stream.
func TestTraceCacheTable1Identity(t *testing.T) {
	var off, on string
	withTraceCache(t, false, func() { off = renderTable1(t) })
	withTraceCache(t, true, func() { on = renderTable1(t) })
	if on != off {
		t.Errorf("Table 1 differs with trace cache on\n--- off ---\n%s--- on ---\n%s", off, on)
	}
}

// TestTraceCacheSweepIdentity checks the same for an inline-workload
// family (the SRAM sweep: one stream, k cells differing only in
// controller SRAM size).
func TestTraceCacheSweepIdentity(t *testing.T) {
	run := func() string {
		var b strings.Builder
		if err := PrefetchBufferSweep(context.Background(), []uint64{256, 1024, 4096}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	var off, on string
	withTraceCache(t, false, func() { off = run() })
	withTraceCache(t, true, func() { on = run() })
	if on != off {
		t.Errorf("SRAM sweep differs with trace cache on\n--- off ---\n%s--- on ---\n%s", off, on)
	}
}

// TestTraceCacheDiskRoundTrip records a family's traces to disk, then
// reruns the family replaying from that directory — no cell executes the
// workload — and requires identical output.
func TestTraceCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var first, second string
	withTraceCache(t, true, func() {
		SetTraceRecordDir(dir)
		first = renderTable1(t)
		SetTraceRecordDir("")

		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 3 {
			t.Fatalf("persisted %d traces, want 3 (one per Table 1 stream)", len(ents))
		}

		SetTraceReplayDir(dir)
		ResetTraceCache()
		second = renderTable1(t)
	})
	if first != second {
		t.Errorf("disk replay differs from recording run\n--- record ---\n%s--- replay ---\n%s", first, second)
	}
}
