// Parallel experiment engine. Every table and sweep in this package is a
// set of independent simulator configurations — separate *sim.Machine
// instances that share nothing but read-only inputs (a sparse matrix, a
// captured trace). The pool fans those rows across worker goroutines and
// re-serializes everything that must stay deterministic:
//
//   - results are returned in submission order, so rendered tables are
//     byte-identical to a serial run regardless of worker count;
//   - rows observed through core's row-observer mechanism are buffered
//     per task and replayed through core.EmitRow in submission order, so
//     registry dumps (-counters) are byte-identical too;
//   - on error, the surfaced error is the one from the lowest-index
//     failing task — never a scheduling-dependent "first past the post".
//
// Determinism is the property that makes a simulator useful as a sweep
// platform: `-j 8` must be a faster spelling of `-j 1`, nothing more.
package harness

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"impulse/internal/core"
)

// workers is the pool width used by Run. Set once at startup (flag
// parsing) via SetWorkers; not safe to change while a Run is in flight.
var workers = runtime.GOMAXPROCS(0)

// SetWorkers sets the number of worker goroutines experiment rows fan
// across. n < 1 means 1 (serial). Call it during setup, before any
// experiment runs.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workers = n
}

// Workers returns the configured pool width.
func Workers() int { return workers }

// rowSinkKey carries a per-invocation row sink in a context. See
// WithRowSink.
type rowSinkKey struct{}

// WithRowSink returns a context that routes the rows RunCtx replays
// after a parallel phase to sink instead of the process-global observer
// (core.EmitRow). This is what lets several experiment runs execute
// concurrently in one process — the impulsed service gives every job
// its own sink collecting into a per-job registry — where a shared
// core.SetRowObserver would race. Rows still arrive in submission
// order, on the goroutine that called RunCtx.
func WithRowSink(ctx context.Context, sink func(core.Row)) context.Context {
	return context.WithValue(ctx, rowSinkKey{}, sink)
}

// rowSink extracts the sink installed by WithRowSink, or nil.
func rowSink(ctx context.Context) func(core.Row) {
	sink, _ := ctx.Value(rowSinkKey{}).(func(core.Row))
	return sink
}

// CellEvent describes one grid cell's passage through the trace cache:
// which reference stream it belongs to (the cell's stream-identity key),
// how it ran, and its host wall-clock interval. The impulsed service
// installs an observer per job (WithCellObserver) and turns these into
// the job's Perfetto timeline and provenance manifest.
type CellEvent struct {
	// Key is the cell's reference-stream identity (cellSpec.key).
	Key string
	// Mode is how the cell ran: "record" (executed the workload under
	// the trace recorder), "replay" (replayed a recorded stream
	// scalar), "replayed-vectorized" (replayed as one lane of a
	// vectorized batch), or "execute" (plain execution: trace cache off
	// or recording failed over to direct execution).
	Mode string
	// Start and End bound the cell's host wall-clock run.
	Start, End time.Time
	// Batch identifies the vectorized replay batch this cell belonged
	// to ("v-" + hash of the stream key); empty for scalar cells.
	// BatchSize is the number of cells in the batch (including the
	// recording cell) and BatchIndex this cell's lane position.
	Batch      string
	BatchSize  int
	BatchIndex int
	// Decode is the batch's shared trace-decode wall-clock, reported on
	// the first lane only (the decode runs once per batch). Apply is
	// this lane's own apply wall-clock. Both zero for scalar cells.
	Decode time.Duration
	Apply  time.Duration
}

// cellObsKey carries a per-invocation cell observer in a context.
type cellObsKey struct{}

// WithCellObserver returns a context that reports every trace-cache cell
// run under it to fn. Cells run on pool worker goroutines, concurrently
// and in no particular order; fn must be safe for that. A nil observer
// (the CLIs) costs one context lookup per cell — nothing on the
// simulator's per-access hot path, which never sees contexts.
func WithCellObserver(ctx context.Context, fn func(CellEvent)) context.Context {
	return context.WithValue(ctx, cellObsKey{}, fn)
}

// cellObserver extracts the observer installed by WithCellObserver, or nil.
func cellObserver(ctx context.Context) func(CellEvent) {
	fn, _ := ctx.Value(cellObsKey{}).(func(CellEvent))
	return fn
}

// TaskCtx is the per-task context handed to every pool task. Systems
// built through it buffer their observed rows locally; the pool replays
// them in submission order after the parallel phase, keeping the global
// row observer (and therefore -counters output) deterministic.
//
// Ctx is the run's context: tasks that block (or loop for a long time)
// should watch Ctx.Done() so a cancelled run stops promptly instead of
// running to completion.
type TaskCtx struct {
	Ctx  context.Context
	rows []core.Row
}

// NewSystem builds a core.System whose rows are captured by this task.
// Pool tasks must create systems through this method (not core.NewSystem
// directly), or their rows would race on the global observer.
func (tc *TaskCtx) NewSystem(opts core.Options) (*core.System, error) {
	return buildSystem(opts, func(r core.Row) { tc.rows = append(tc.rows, r) })
}

// fastPathOff forces DisableFastPath on every system built through a
// TaskCtx. The differential tests flip it to prove the fast-path access
// engine is cycle- and counter-invisible at the experiment level.
var fastPathOff bool

// SetFastPath enables or disables the simulator's fast-path access
// engine for every system subsequently built through a TaskCtx. On by
// default. Call during setup, not while an experiment runs; results are
// identical either way (only host time differs).
func SetFastPath(on bool) { fastPathOff = !on }

// FastPathEnabled reports whether systems built through a TaskCtx use
// the fast-path access engine (recorded in job provenance manifests).
func FastPathEnabled() bool { return !fastPathOff }

// Observe adds a row to the task's buffered row log directly (for tasks
// that synthesize rows without a System, e.g. trace replays).
func (tc *TaskCtx) Observe(r core.Row) { tc.rows = append(tc.rows, r) }

// Run executes n independent tasks across the configured worker count
// and returns their results in submission order. It is RunCtx with a
// background context; see RunCtx for semantics.
func Run[T any](n int, task func(i int, tc *TaskCtx) (T, error)) ([]T, error) {
	return RunCtx(context.Background(), n, task)
}

// RunCtx executes n independent tasks across the configured worker
// count and returns their results in submission order. task is called
// with the task index and a fresh TaskCtx; it must not share mutable
// state with other tasks.
//
// Error semantics: if any task fails, RunCtx returns the error of the
// lowest-index failing task and cancels tasks with higher indices that
// have not started yet. This is deterministic regardless of scheduling:
// a task is skipped only when a lower-index task has already failed, so
// the lowest-index task that would fail always runs, and its error
// always wins.
//
// Cancellation: when ctx is cancelled, no new tasks start, and RunCtx
// returns ctx.Err() after in-flight tasks finish. Tasks see the context
// as TaskCtx.Ctx, so a task that blocks can unblock itself on
// Ctx.Done(). Cancellation wins over task errors — the caller asked the
// whole run to stop, so which tasks happened to complete (or fail)
// first is scheduling noise the result must not depend on.
func RunCtx[T any](ctx context.Context, n int, task func(i int, tc *TaskCtx) (T, error)) ([]T, error) {
	results := make([]T, n)
	ctxs := make([]*TaskCtx, n)
	errs := make([]error, n)

	var (
		mu       sync.Mutex
		firstErr = n // lowest failing index so far; n = none
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	next.Store(-1)

	w := workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1))
			if i >= n {
				return
			}
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			cancelled := firstErr < i
			mu.Unlock()
			if cancelled {
				continue
			}
			tc := &TaskCtx{Ctx: ctx}
			res, err := task(i, tc)
			if err != nil {
				errs[i] = err // only worker i writes slot i
				mu.Lock()
				if i < firstErr {
					firstErr = i
				}
				mu.Unlock()
				continue
			}
			results[i] = res
			ctxs[i] = tc
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go worker()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr < n {
		return nil, errs[firstErr]
	}
	// Replay buffered rows in submission order on the caller's
	// goroutine: to the context's sink if one is installed (concurrent
	// service jobs), else to the process-global observer (the CLIs).
	emit := rowSink(ctx)
	if emit == nil {
		emit = core.EmitRow
	}
	for _, tc := range ctxs {
		for _, r := range tc.rows {
			emit(r)
		}
	}
	return results, nil
}
