package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"impulse/internal/core"
	"impulse/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenGrid is a handcrafted grid with fully pinned values, so the
// golden file exercises the encoder alone (no simulation).
func goldenGrid() *Grid {
	row := func(label string, cycles uint64, l1 float64) core.Row {
		var st stats.MemStats
		st.Instructions = cycles / 2
		st.Loads = 100
		st.Stores = 40
		st.BusBytes = 4096
		st.L1LoadHits = uint64(l1 * 100)
		st.MemLoads = 100 - st.L1LoadHits
		for i := 0; i < 90; i++ {
			st.LoadLatency.Observe(1)
		}
		for i := 0; i < 10; i++ {
			st.LoadLatency.Observe(100)
		}
		return core.Row{
			Label: label, Cycles: cycles,
			L1Ratio: l1, L2Ratio: 0.0625, MemRatio: 1 - l1 - 0.0625,
			AvgLoad: 10.5, Stats: st,
		}
	}
	return &Grid{
		Title:    "golden grid",
		Sections: []string{"alpha", "beta"},
		Cells: [][]Cell{
			{
				{Row: row("alpha/none", 1000, 0.75), Speedup: 1},
				{Row: row("alpha/mc", 800, 0.80), Speedup: 1.25},
			},
			{
				{Row: row("beta/none", 500, 0.90), Speedup: 2},
				{Row: row("beta/mc", 400, 0.9375), Speedup: 2.5},
			},
		},
	}
}

// TestGridJSONGolden pins the Grid wire format byte-for-byte: field
// names, field order, indentation, and derived values (percentiles) must
// not drift, because the service's result cache and external plotting
// pipelines both treat this encoding as stable. Regenerate deliberately
// with: go test ./internal/harness -run TestGridJSONGolden -update
func TestGridJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenGrid().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "grid_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Grid JSON drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestGridJSONDeterministic: two encodings of the same grid are
// byte-identical (the single-flight result cache depends on it).
func TestGridJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	g := goldenGrid()
	if err := g.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same grid encoded differently on consecutive calls")
	}
}
