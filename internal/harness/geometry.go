package harness

import (
	"context"
	"fmt"
	"io"

	"impulse/internal/core"
	"impulse/internal/sim"
	"impulse/internal/stats"
	"impulse/internal/workloads"
)

// CacheGeometrySweep is a classic trace-driven sensitivity study: the
// conventional CG reference stream is recorded once and replayed across
// L2 capacities, reporting how the paper's conventional-system hit-ratio
// profile depends on cache geometry. It locates the paper's operating
// point (multiplicand bigger than L1, smaller than L2) on the capacity
// curve. L2 capacity is pure timing, so every size shares one trace —
// and, unlike the v1 flat load/store replay this sweep used to run,
// v2 replay reproduces the exact cycle counts execution would have
// produced at each size.
func CacheGeometrySweep(ctx context.Context, par workloads.CGParams, l2Sizes []uint64, w io.Writer) error {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	wantZeta, wantRNorm := workloads.RefCG(m, par)

	cols := make([]string, len(l2Sizes))
	for i, size := range l2Sizes {
		cols[i] = fmt.Sprintf("L2=%dK", size>>10)
	}
	rows, err := runCells(ctx, len(l2Sizes), func(i int) cellSpec {
		cfg := sim.DefaultConfig()
		cfg.L2.Bytes = l2Sizes[i]
		return cellSpec{
			key:     cgKey(par, workloads.CGConventional, &cfg),
			opts:    core.Options{Controller: core.Conventional, Config: &cfg},
			relabel: relabelPf(core.PrefetchNone),
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, workloads.CGConventional, m)
				if err != nil {
					return core.Row{}, err
				}
				if res.Zeta != wantZeta || res.RNorm != wantRNorm {
					return core.Row{}, fmt.Errorf("harness: geometry sweep computed zeta=%v rnorm=%v, reference %v/%v",
						res.Zeta, res.RNorm, wantZeta, wantRNorm)
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return err
	}
	l1r := make([]float64, len(l2Sizes))
	l2r := make([]float64, len(l2Sizes))
	memr := make([]float64, len(l2Sizes))
	avg := make([]interface{}, len(l2Sizes))
	for i, row := range rows {
		l1r[i], l2r[i], memr[i] = row.L1Ratio, row.L2Ratio, row.MemRatio
		avg[i] = row.AvgLoad
	}
	t := stats.NewTable(
		fmt.Sprintf("L2-capacity sensitivity (trace-driven replay of conventional CG, n=%d)", par.N),
		cols...)
	t.AddPercentRow("L1 hit ratio", l1r...)
	t.AddPercentRow("L2 hit ratio", l2r...)
	t.AddPercentRow("mem hit ratio", memr...)
	t.AddRow("avg load time", avg...)
	_, err = io.WriteString(w, t.Render())
	return err
}
