package harness

import (
	"bytes"
	"fmt"
	"io"

	"impulse/internal/core"
	"impulse/internal/sim"
	"impulse/internal/stats"
	"impulse/internal/tracefile"
	"impulse/internal/workloads"
)

// CacheGeometrySweep is a classic trace-driven sensitivity study: the
// conventional CG access trace is captured once and replayed across L2
// capacities, reporting how the paper's conventional-system hit-ratio
// profile depends on cache geometry. It demonstrates the record/replay
// mode and locates the paper's operating point (multiplicand bigger
// than L1, smaller than L2) on the capacity curve.
func CacheGeometrySweep(par workloads.CGParams, l2Sizes []uint64, w io.Writer) error {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)

	// Capture the conventional trace once.
	capSys, err := core.NewSystem(core.Options{Controller: core.Conventional})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	tw, err := tracefile.NewWriter(&buf)
	if err != nil {
		return err
	}
	capSys.SetTracer(tw.Attach())
	if _, err := workloads.RunCG(capSys, par, workloads.CGConventional, m); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	recs, err := tracefile.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}

	cols := make([]string, len(l2Sizes))
	for i, size := range l2Sizes {
		cols[i] = fmt.Sprintf("L2=%dK", size>>10)
	}
	// The captured trace is shared read-only; each replay gets its own
	// machine at the configured L2 capacity.
	rows, err := Run(len(l2Sizes), func(i int, tc *TaskCtx) (core.Row, error) {
		cfg := sim.DefaultConfig()
		cfg.L2.Bytes = l2Sizes[i]
		s, err := tc.NewSystem(core.Options{Controller: core.Conventional, Config: &cfg})
		if err != nil {
			return core.Row{}, err
		}
		return tracefile.Replay(s, recs, 2)
	})
	if err != nil {
		return err
	}
	l1r := make([]float64, len(l2Sizes))
	l2r := make([]float64, len(l2Sizes))
	memr := make([]float64, len(l2Sizes))
	avg := make([]interface{}, len(l2Sizes))
	for i, row := range rows {
		l1r[i], l2r[i], memr[i] = row.L1Ratio, row.L2Ratio, row.MemRatio
		avg[i] = row.AvgLoad
	}
	t := stats.NewTable(
		fmt.Sprintf("L2-capacity sensitivity (trace-driven replay of conventional CG, n=%d, %d accesses)",
			par.N, len(recs)), cols...)
	t.AddPercentRow("L1 hit ratio", l1r...)
	t.AddPercentRow("L2 hit ratio", l2r...)
	t.AddPercentRow("mem hit ratio", memr...)
	t.AddRow("avg load time", avg...)
	_, err = io.WriteString(w, t.Render())
	return err
}
