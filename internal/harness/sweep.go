package harness

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"impulse/internal/addr"
	"impulse/internal/core"
	"impulse/internal/dram"
	"impulse/internal/sim"
	"impulse/internal/stats"
	"impulse/internal/workloads"
)

// SchedulerAblation compares the paper's evaluated in-order DRAM
// scheduler against the reordering scheduler sketched as future work in
// §2.2 ("reorder word-grained requests to exploit DRAM page locality ...
// schedule requests to exploit bank-level parallelism"), on the
// gather-dominated scatter/gather CG configuration where the scheduler
// sees the most irregular address streams ("the set of physical addresses
// that is generated for scatter/gather is much more irregular than
// strided vector accesses", §5).
func SchedulerAblation(ctx context.Context, par workloads.CGParams, w io.Writer) error {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	orders := []dram.Order{dram.InOrder, dram.RowMajor}
	// The scheduler is pure timing: both orders share one reference
	// stream (and share it with any other sweep at these CG parameters).
	rows, err := runCells(ctx, len(orders), func(i int) cellSpec {
		cfg := sim.DefaultConfig()
		cfg.MC.Order = orders[i]
		return cellSpec{
			key: cgKey(par, workloads.CGScatterGather, &cfg),
			opts: core.Options{
				Controller: core.Impulse,
				Prefetch:   core.PrefetchMC,
				Config:     &cfg,
			},
			relabel: relabelPf(core.PrefetchMC),
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, workloads.CGScatterGather, m)
				if err != nil {
					return core.Row{}, err
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return err
	}
	inOrder, rowMajor := rows[0], rows[1]
	t := stats.NewTable("DRAM scheduler ablation (scatter/gather CG, controller prefetch)",
		"in-order (paper)", "row-major (future work)")
	t.AddRow("cycles", stats.FormatCycles(inOrder.Cycles), stats.FormatCycles(rowMajor.Cycles))
	t.AddRow("DRAM row hits", inOrder.Stats.DRAMRowHits, rowMajor.Stats.DRAMRowHits)
	t.AddRow("DRAM row misses", inOrder.Stats.DRAMRowMisses, rowMajor.Stats.DRAMRowMisses)
	t.AddRow("avg load time", inOrder.AvgLoad, rowMajor.AvgLoad)
	t.AddRow("speedup", "—", fmt.Sprintf("%.3f", core.Speedup(inOrder, rowMajor)))
	if _, err = io.WriteString(w, t.Render()); err != nil {
		return err
	}
	if _, err = io.WriteString(w, "\n"); err != nil {
		return err
	}
	return schedulerAdversarial(ctx, w)
}

// schedulerAdversarial drives the scheduler comparison with the access
// pattern reordering is built for: a gather whose consecutive elements
// alternate between two distant rows of the same banks, so in-order issue
// thrashes every row buffer while row-major grouping keeps rows open.
func schedulerAdversarial(ctx context.Context, w io.Writer) error {
	const elems = 8192
	orders := []dram.Order{dram.InOrder, dram.RowMajor}
	rows, err := runCells(ctx, len(orders), func(i int) cellSpec {
		order := orders[i]
		cfg := sim.DefaultConfig()
		cfg.MC.Order = order
		// The gather's index pattern is computed from the DRAM geometry,
		// so the geometry belongs in the stream key; the scheduler order
		// itself is pure timing and both cells share one trace.
		key := fmt.Sprintf("sched-adv-e%d-line%d-banks%d-row%d-%s",
			elems, cfg.DRAM.LineBytes, cfg.DRAM.Banks, cfg.DRAM.RowBytes, streamSig(&cfg))
		return cellSpec{
			key:     key,
			opts:    core.Options{Controller: core.Impulse, Config: &cfg},
			relabel: constLabel(order.String()),
			exec: func(s *core.System) (core.Row, error) {
				// Consecutive elements alternate between two rows of the same
				// bank: even elements walk one row region in same-bank line
				// steps (banks x lineBytes apart), odd elements walk a region a
				// full row-span away. In-order issue ping-pongs each row buffer
				// 16 times per gathered cache line; row-major grouping opens
				// each row once.
				lineElems := cfg.DRAM.LineBytes / 8
				bankStep := cfg.DRAM.Banks * lineElems            // same bank, next line
				rowSpan := cfg.DRAM.RowBytes * cfg.DRAM.Banks / 8 // same bank, next row region
				const walk = 128                                  // lines walked per region
				xN := rowSpan + walk*bankStep + lineElems
				x, err := s.Alloc(xN*8, 0)
				if err != nil {
					return core.Row{}, err
				}
				vec, err := s.Alloc(elems*4, 0)
				if err != nil {
					return core.Row{}, err
				}
				for k := uint64(0); k < elems; k++ {
					idx := (k%2)*rowSpan + ((k/2)%walk)*bankStep
					s.Store32(vec+addr.VAddr(4*k), uint32(idx))
				}
				alias, err := s.MapScatterGather(x, xN*8, 8, vec, elems, 0)
				if err != nil {
					return core.Row{}, err
				}
				sec := s.BeginSection()
				for k := uint64(0); k < elems; k++ {
					s.LoadF64(alias + addr.VAddr(8*k))
					s.Tick(1)
				}
				return sec.End(order.String())
			},
		}
	})
	if err != nil {
		return err
	}
	inOrder, rowMajor := rows[0], rows[1]
	t := stats.NewTable("DRAM scheduler ablation (adversarial row-alternating gather)",
		"in-order (paper)", "row-major (future work)")
	t.AddRow("cycles", stats.FormatCycles(inOrder.Cycles), stats.FormatCycles(rowMajor.Cycles))
	t.AddRow("DRAM row hits", inOrder.Stats.DRAMRowHits, rowMajor.Stats.DRAMRowHits)
	t.AddRow("DRAM row misses", inOrder.Stats.DRAMRowMisses, rowMajor.Stats.DRAMRowMisses)
	t.AddRow("avg load time", inOrder.AvgLoad, rowMajor.AvgLoad)
	t.AddRow("speedup", "—", fmt.Sprintf("%.3f", core.Speedup(inOrder, rowMajor)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// SuperpageExperiment measures the TLB benefit of building superpages
// from non-contiguous physical pages via Impulse direct mappings — the
// companion-paper extension ([21], §6) that reported 5-20% improvements
// on SPECint95. The workload is a page-strided walk over a region far
// beyond TLB reach.
func SuperpageExperiment(ctx context.Context, pages, sweeps int, w io.Writer) error {
	noteIneligible(ctx, "superpage")
	run := func(super bool, tc *TaskCtx) (core.Row, error) {
		s, err := tc.NewSystem(core.Options{Controller: core.Impulse})
		if err != nil {
			return core.Row{}, err
		}
		bytes := uint64(pages) * addr.PageSize
		x, err := s.Alloc(bytes, 0)
		if err != nil {
			return core.Row{}, err
		}
		if super {
			if err := s.MapSuperpage(x, bytes); err != nil {
				return core.Row{}, err
			}
		}
		sec := s.BeginSection()
		var sum uint64
		for sweep := 0; sweep < sweeps; sweep++ {
			for off := uint64(0); off < bytes; off += addr.PageSize {
				sum += s.Load64(x + addr.VAddr(off))
				s.Tick(2)
			}
		}
		label := "4K pages"
		if super {
			label = "superpage"
		}
		return sec.End(label)
	}
	rows, err := RunCtx(ctx, 2, func(i int, tc *TaskCtx) (core.Row, error) {
		return run(i == 1, tc)
	})
	if err != nil {
		return err
	}
	base, sp := rows[0], rows[1]
	t := stats.NewTable(
		fmt.Sprintf("Superpages from non-contiguous pages ([21]): %d-page strided walk, %d sweeps", pages, sweeps),
		"4K pages", "Impulse superpage")
	t.AddRow("cycles", stats.FormatCycles(base.Cycles), stats.FormatCycles(sp.Cycles))
	t.AddRow("TLB misses", base.Stats.TLBMisses, sp.Stats.TLBMisses)
	t.AddRow("TLB walk cycles", base.Stats.TLBWalkCost, sp.Stats.TLBWalkCost)
	t.AddRow("speedup", "—", fmt.Sprintf("%.2f", core.Speedup(base, sp)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// IPCExperiment quantifies §6's no-copy message gather.
func IPCExperiment(ctx context.Context, bufCount, wordsPerBuf, messages int, w io.Writer) error {
	noteIneligible(ctx, "ipc")
	want := workloads.RefIPC(bufCount, wordsPerBuf, messages)
	kinds := []core.ControllerKind{core.Conventional, core.Impulse}
	rows, err := RunCtx(ctx, len(kinds), func(i int, tc *TaskCtx) (workloads.IPCResult, error) {
		s, err := tc.NewSystem(core.Options{Controller: kinds[i]})
		if err != nil {
			return workloads.IPCResult{}, err
		}
		return workloads.RunIPC(s, bufCount, wordsPerBuf, messages, kinds[i] == core.Impulse)
	})
	if err != nil {
		return err
	}
	rc, ri := rows[0], rows[1]
	if rc.Checksum != want || ri.Checksum != want {
		return fmt.Errorf("harness: IPC checksums %v/%v != %v", rc.Checksum, ri.Checksum, want)
	}
	t := stats.NewTable(
		fmt.Sprintf("IPC message gather (§6): %d buffers x %d words, %d messages", bufCount, wordsPerBuf, messages),
		"software gather", "Impulse gather")
	t.AddRow("cycles", stats.FormatCycles(rc.Row.Cycles), stats.FormatCycles(ri.Row.Cycles))
	t.AddRow("loads issued", rc.Row.Stats.Loads, ri.Row.Stats.Loads)
	t.AddRow("stores issued", rc.Row.Stats.Stores, ri.Row.Stats.Stores)
	t.AddRow("bus bytes", rc.Row.Stats.BusBytes, ri.Row.Stats.BusBytes)
	t.AddRow("speedup", "—", fmt.Sprintf("%.2f", core.Speedup(rc.Row, ri.Row)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// PrefetchBufferSweep varies the controller's non-remapped prefetch SRAM
// (the paper fixes it at 2 KB = 16 lines) and reports performance on a
// multi-stream workload — the ablation behind §2.2's sizing choice. A
// single stream needs only one lookahead line; capacity matters when
// several streams interleave (SMVP reads DATA, COLUMN, ROWS, and writes
// the product vector concurrently), because each live stream needs its
// own buffered line to survive until its next use.
func PrefetchBufferSweep(ctx context.Context, sizes []uint64, w io.Writer) error {
	streams, perStream := SRAMWorkload()
	cols := make([]string, len(sizes))
	for i, size := range sizes {
		cols[i] = fmt.Sprintf("%dB", size)
	}
	// SRAM capacity is pure timing: every size shares one stream.
	rows, err := runCells(ctx, len(sizes), func(i int) cellSpec {
		cfg := sim.DefaultConfig()
		cfg.MC.SRAMBytes = sizes[i]
		key := fmt.Sprintf("sramsweep-streams%d-per%d-%s", streams, perStream, streamSig(&cfg))
		return cellSpec{
			key: key,
			opts: core.Options{
				Controller: core.Impulse,
				Prefetch:   core.PrefetchMC,
				Config:     &cfg,
			},
			relabel: constLabel(cols[i]),
			exec: func(s *core.System) (core.Row, error) {
				bases := make([]addr.VAddr, streams)
				for j := range bases {
					var err error
					if bases[j], err = s.Alloc(perStream, 0); err != nil {
						return core.Row{}, err
					}
				}
				sec := s.BeginSection()
				for off := uint64(0); off < perStream; off += 8 {
					for j := range bases {
						s.Load64(bases[j] + addr.VAddr(off))
						s.Tick(1)
					}
				}
				return sec.End(cols[i])
			},
		}
	})
	if err != nil {
		return err
	}
	cycles := make([]interface{}, len(sizes))
	hits := make([]interface{}, len(sizes))
	for i, row := range rows {
		cycles[i] = stats.FormatCycles(row.Cycles)
		hits[i] = row.Stats.MCPrefetchHits
	}
	t := stats.NewTable(
		fmt.Sprintf("Controller prefetch SRAM sweep (%d interleaved streams)", streams), cols...)
	t.AddRow("cycles", cycles...)
	t.AddRow("SRAM hits", hits...)
	_, err = io.WriteString(w, t.Render())
	return err
}

// GatherStrideSweep reports gather cost as a function of access
// irregularity: a gather alias over indices at increasing strides shows
// how DRAM page locality decays and controller prefetching compensates —
// the behaviour behind §2.2's per-descriptor prefetch buffers.
func GatherStrideSweep(ctx context.Context, strides []int, elems int, w io.Writer) error {
	cols := make([]string, len(strides))
	for i, stride := range strides {
		cols[i] = fmt.Sprintf("stride %d", stride)
	}
	// Task order matches the serial loop: stride-major, no-prefetch first.
	// The stride shapes the indirection vector (the reference stream);
	// the prefetch pair at each stride shares one trace.
	rows, err := runCells(ctx, 2*len(strides), func(idx int) cellSpec {
		i, pf := idx/2, idx%2 == 1
		stride := strides[i]
		opt := core.Options{Controller: core.Impulse}
		if pf {
			opt.Prefetch = core.PrefetchMC
		}
		key := fmt.Sprintf("gstride-s%d-e%d-%s", stride, elems, streamSig(nil))
		return cellSpec{
			key:  key,
			opts: opt,
			exec: func(s *core.System) (core.Row, error) {
				xN := uint64(elems * stride)
				x, err := s.Alloc(xN*8, 0)
				if err != nil {
					return core.Row{}, err
				}
				vec, err := s.Alloc(uint64(elems)*4, 0)
				if err != nil {
					return core.Row{}, err
				}
				for k := 0; k < elems; k++ {
					s.Store32(vec+addr.VAddr(4*k), uint32(k*stride))
				}
				alias, err := s.MapScatterGather(x, xN*8, 8, vec, uint64(elems), 0)
				if err != nil {
					return core.Row{}, err
				}
				sec := s.BeginSection()
				for k := 0; k < elems; k++ {
					s.LoadF64(alias + addr.VAddr(8*k))
					s.Tick(1)
				}
				return sec.End(cols[i])
			},
		}
	})
	if err != nil {
		return err
	}
	noPF := make([]interface{}, len(strides))
	withPF := make([]interface{}, len(strides))
	for i := range strides {
		noPF[i] = rows[2*i].AvgLoad
		withPF[i] = rows[2*i+1].AvgLoad
	}
	t := stats.NewTable(fmt.Sprintf("Gather avg load time vs indirection stride (%d elements)", elems), cols...)
	t.AddRow("no prefetch", noPF...)
	t.AddRow("controller prefetch", withPF...)
	_, err = io.WriteString(w, t.Render())
	return err
}

// CholeskyExperiment extends Table 2's comparison to tiled Cholesky
// factorization, the other dense kernel §3.2 names. Checksums are
// verified against the host reference.
func CholeskyExperiment(ctx context.Context, n, tile int, w io.Writer) error {
	noteIneligible(ctx, "cholesky")
	want := workloads.RefCholesky(n, tile)
	configs := []struct {
		kind core.ControllerKind
		mode workloads.CholeskyMode
	}{
		{core.Conventional, workloads.CholNoCopy},
		{core.Conventional, workloads.CholCopy},
		{core.Impulse, workloads.CholRemap},
	}
	rows, err := RunCtx(ctx, len(configs), func(i int, tc *TaskCtx) (core.Row, error) {
		s, err := tc.NewSystem(core.Options{Controller: configs[i].kind})
		if err != nil {
			return core.Row{}, err
		}
		res, err := workloads.RunCholesky(s, n, tile, configs[i].mode)
		if err != nil {
			return core.Row{}, err
		}
		if res.Checksum != want {
			return core.Row{}, fmt.Errorf("harness: cholesky %v checksum %v != reference %v", configs[i].mode, res.Checksum, want)
		}
		return res.Row, nil
	})
	if err != nil {
		return err
	}
	nocopy, cp, remap := rows[0], rows[1], rows[2]
	t := stats.NewTable(
		fmt.Sprintf("Tiled Cholesky factorization (§3.2 extension): %dx%d, %dx%d tiles", n, n, tile, tile),
		"no-copy", "tile copy", "Impulse remap")
	t.AddRow("cycles", stats.FormatCycles(nocopy.Cycles), stats.FormatCycles(cp.Cycles), stats.FormatCycles(remap.Cycles))
	t.AddPercentRow("L1 hit ratio", nocopy.L1Ratio, cp.L1Ratio, remap.L1Ratio)
	t.AddRow("avg load time", nocopy.AvgLoad, cp.AvgLoad, remap.AvgLoad)
	t.AddRow("speedup", "—",
		fmt.Sprintf("%.2f", core.Speedup(nocopy, cp)),
		fmt.Sprintf("%.2f", core.Speedup(nocopy, remap)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// SparkExperiment runs the Spark98-style symmetric SMVP (§3.1's other
// motivating application [17]): the gather of x[COLUMN[k]] moves to the
// controller while the scatter-accumulate into y stays on the CPU, so
// the load count is unchanged and only locality improves — a harder
// target than CG, reported as such.
func SparkExperiment(ctx context.Context, nodesX, nodesY, iters int, w io.Writer) error {
	mesh := workloads.MakeSparkMesh(nodesX, nodesY)
	want := workloads.RefSpark(mesh, iters)
	configs := []struct {
		kind   core.ControllerKind
		pf     core.PrefetchPolicy
		gather bool
	}{
		{core.Conventional, core.PrefetchNone, false},
		{core.Impulse, core.PrefetchNone, true},
		{core.Impulse, core.PrefetchMC, true},
	}
	// The conventional cell and the two gather cells issue different
	// streams; the gather pair (with and without prefetch) shares one.
	rows, err := runCells(ctx, len(configs), func(i int) cellSpec {
		gather := configs[i].gather
		key := fmt.Sprintf("spark-x%d-y%d-it%d-g%v-%s", nodesX, nodesY, iters, gather, streamSig(nil))
		return cellSpec{
			key:  key,
			opts: core.Options{Controller: configs[i].kind, Prefetch: configs[i].pf},
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunSpark(s, mesh, iters, gather)
				if err != nil {
					return core.Row{}, err
				}
				if res.Checksum != want {
					return core.Row{}, fmt.Errorf("harness: spark checksum %v != reference %v", res.Checksum, want)
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return err
	}
	conv, sg, sgPF := rows[0], rows[1], rows[2]
	t := stats.NewTable(
		fmt.Sprintf("Spark98-style symmetric SMVP (§3.1 [17]): %s, %d iterations", mesh, iters),
		"conventional", "scatter/gather", "s/g + prefetch")
	t.AddRow("cycles", stats.FormatCycles(conv.Cycles), stats.FormatCycles(sg.Cycles), stats.FormatCycles(sgPF.Cycles))
	t.AddPercentRow("L1 hit ratio", conv.L1Ratio, sg.L1Ratio, sgPF.L1Ratio)
	t.AddRow("avg load time", conv.AvgLoad, sg.AvgLoad, sgPF.AvgLoad)
	t.AddRow("speedup", "—",
		fmt.Sprintf("%.2f", core.Speedup(conv, sg)),
		fmt.Sprintf("%.2f", core.Speedup(conv, sgPF)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// SuperscalarExperiment tests the paper's concluding prediction:
// "Speedups should be greater on superscalar machines (our simulation
// model was single-issue), because non-memory instructions will be
// effectively cheaper. That is, on superscalars, memory will be even
// more of a bottleneck, and Impulse will therefore be able to improve
// performance even more." The issue width scales non-memory instruction
// throughput; the scatter/gather speedup over conventional is reported
// per width.
func SuperscalarExperiment(ctx context.Context, par workloads.CGParams, widths []uint64, w io.Writer) error {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	cols := make([]string, len(widths))
	for i, width := range widths {
		cols[i] = fmt.Sprintf("width %d", width)
	}
	// Task order matches the serial loop: width-major, conventional first.
	// Issue width only rescales Tick batches (replay divides by its own
	// width), so every width of a mode shares that mode's stream.
	rows, err := runCells(ctx, 2*len(widths), func(idx int) cellSpec {
		width, impulse := widths[idx/2], idx%2 == 1
		cfg := sim.DefaultConfig()
		cfg.IssueWidth = width
		opt := core.Options{Controller: core.Conventional, Config: &cfg}
		mode := workloads.CGConventional
		if impulse {
			opt.Controller, opt.Prefetch = core.Impulse, core.PrefetchMC
			mode = workloads.CGScatterGather
		}
		return cellSpec{
			key:     cgKey(par, mode, &cfg),
			opts:    opt,
			relabel: relabelPf(opt.Prefetch),
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, mode, m)
				if err != nil {
					return core.Row{}, err
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return err
	}
	convRow := make([]interface{}, len(widths))
	sgRow := make([]interface{}, len(widths))
	speedups := make([]interface{}, len(widths))
	for i := range widths {
		conv, sg := rows[2*i], rows[2*i+1]
		convRow[i] = stats.FormatCycles(conv.Cycles)
		sgRow[i] = stats.FormatCycles(sg.Cycles)
		speedups[i] = fmt.Sprintf("%.2f", core.Speedup(conv, sg))
	}
	t := stats.NewTable(
		"Superscalar prediction (§6): scatter/gather+prefetch speedup vs issue width", cols...)
	t.AddRow("conventional", convRow...)
	t.AddRow("impulse s/g+pf", sgRow...)
	t.AddRow("speedup", speedups...)
	_, err = io.WriteString(w, t.Render())
	return err
}

// PagePolicyAblation compares open-page (the reproduction's calibrated
// default, matching paper-era controllers) against closed-page row
// management, on a stream (favors open rows) and on scatter/gather CG
// (mixed locality).
func PagePolicyAblation(ctx context.Context, par workloads.CGParams, w io.Writer) error {
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	policies := []dram.PagePolicy{dram.OpenPage, dram.ClosedPage}
	// Row management is pure timing: both policies share one stream.
	rows, err := runCells(ctx, len(policies), func(i int) cellSpec {
		cfg := sim.DefaultConfig()
		cfg.DRAM.Policy = policies[i]
		return cellSpec{
			key:     cgKey(par, workloads.CGScatterGather, &cfg),
			opts:    core.Options{Controller: core.Impulse, Prefetch: core.PrefetchMC, Config: &cfg},
			relabel: relabelPf(core.PrefetchMC),
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, workloads.CGScatterGather, m)
				if err != nil {
					return core.Row{}, err
				}
				return res.Row, nil
			},
		}
	})
	if err != nil {
		return err
	}
	open_, closed := rows[0], rows[1]
	t := stats.NewTable("DRAM page-policy ablation (scatter/gather CG, controller prefetch)",
		"open-page (default)", "closed-page")
	t.AddRow("cycles", stats.FormatCycles(open_.Cycles), stats.FormatCycles(closed.Cycles))
	t.AddRow("DRAM row hits", open_.Stats.DRAMRowHits, closed.Stats.DRAMRowHits)
	t.AddRow("avg load time", open_.AvgLoad, closed.AvgLoad)
	t.AddRow("speedup", "—", fmt.Sprintf("%.3f", core.Speedup(open_, closed)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// DBExperiment runs the database scans (abstract: "regularly strided,
// memory-bound applications of commercial importance, such as database
// and multimedia programs").
func DBExperiment(ctx context.Context, p workloads.DBParams, selectivity int, w io.Writer) error {
	noteIneligible(ctx, "db")
	wantProj := workloads.RefDBProjection(p)
	wantIdx := workloads.RefDBIndexScan(p, selectivity)
	// Task order matches the serial loop: projection conv/imp, index conv/imp.
	rows, err := RunCtx(ctx, 4, func(i int, tc *TaskCtx) (core.Row, error) {
		idx, impulse := i/2 == 1, i%2 == 1
		opt := core.Options{Controller: core.Conventional}
		if impulse {
			opt.Controller, opt.Prefetch = core.Impulse, core.PrefetchMC
		}
		s, err := tc.NewSystem(opt)
		if err != nil {
			return core.Row{}, err
		}
		if idx {
			r, err := workloads.RunDBIndexScan(s, p, selectivity, impulse)
			if err != nil {
				return core.Row{}, err
			}
			if r.Sum != wantIdx {
				return core.Row{}, fmt.Errorf("harness: db index sum %v != %v", r.Sum, wantIdx)
			}
			return r.Row, nil
		}
		r, err := workloads.RunDBProjection(s, p, impulse)
		if err != nil {
			return core.Row{}, err
		}
		if r.Sum != wantProj {
			return core.Row{}, fmt.Errorf("harness: db projection sum %v != %v", r.Sum, wantProj)
		}
		return r.Row, nil
	})
	if err != nil {
		return err
	}
	type cell struct{ conv, imp core.Row }
	proj := cell{conv: rows[0], imp: rows[1]}
	idx := cell{conv: rows[2], imp: rows[3]}
	t := stats.NewTable(
		fmt.Sprintf("Database scans (abstract's 'commercial importance'): %d records x %dB, 1/%d selectivity",
			p.Records, p.RecordBytes, selectivity),
		"projection conv", "projection imp", "index conv", "index imp")
	t.AddRow("cycles",
		stats.FormatCycles(proj.conv.Cycles), stats.FormatCycles(proj.imp.Cycles),
		stats.FormatCycles(idx.conv.Cycles), stats.FormatCycles(idx.imp.Cycles))
	t.AddRow("bus bytes", proj.conv.Stats.BusBytes, proj.imp.Stats.BusBytes,
		idx.conv.Stats.BusBytes, idx.imp.Stats.BusBytes)
	t.AddRow("speedup", "—", fmt.Sprintf("%.2f", core.Speedup(proj.conv, proj.imp)),
		"—", fmt.Sprintf("%.2f", core.Speedup(idx.conv, idx.imp)))
	_, err = io.WriteString(w, t.Render())
	return err
}

// RandomGatherCheck is a randomized end-to-end verification pass: random
// gather mappings are created and read back through the full machine,
// comparing against direct memory contents. It returns the number of
// elements verified. Used by cmd/impulse-sim -selftest.
func RandomGatherCheck(seed int64, rounds int) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	verified := 0
	for r := 0; r < rounds; r++ {
		s, err := core.NewSystem(core.Options{
			Controller: core.Impulse,
			Prefetch:   core.PrefetchPolicy(rng.Intn(4)),
		})
		if err != nil {
			return verified, err
		}
		xN := uint64(rng.Intn(20000) + 100)
		n := uint64(rng.Intn(5000) + 10)
		x, err := s.Alloc(xN*8, 0)
		if err != nil {
			return verified, err
		}
		vec, err := s.Alloc(n*4, 0)
		if err != nil {
			return verified, err
		}
		idx := make([]uint32, n)
		for k := range idx {
			idx[k] = uint32(rng.Intn(int(xN)))
			s.Store32(vec+addr.VAddr(4*k), idx[k])
		}
		for j := uint64(0); j < xN; j++ {
			s.StoreF64(x+addr.VAddr(8*j), float64(j)*1.5+float64(r))
		}
		alias, err := s.MapScatterGather(x, xN*8, 8, vec, n, 0)
		if err != nil {
			return verified, err
		}
		for k := uint64(0); k < n; k++ {
			got := s.LoadF64(alias + addr.VAddr(8*k))
			want := float64(idx[k])*1.5 + float64(r)
			if got != want {
				return verified, fmt.Errorf("harness: round %d element %d: %v != %v", r, k, got, want)
			}
			verified++
		}
	}
	return verified, nil
}
