package harness

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"impulse/internal/core"
	"impulse/internal/sim"
	"impulse/internal/workloads"
)

// Vectorized batch replay must be invisible in everything an experiment
// can observe: rendered grids, JSON output, every counter, and the rows
// each cell reports. These tests run the same experiments with
// vectorized and scalar replay (trace cache on for both — scalar
// per-cell replay is the reference) and require byte identity, plus pin
// the batch error/cancellation semantics the scalar pool established.

// withVectorReplay runs f with vectorized replay forced on or off,
// restoring the previous setting afterwards.
func withVectorReplay(t *testing.T, on bool, f func()) {
	t.Helper()
	was := VectorReplayEnabled()
	t.Cleanup(func() { SetVectorReplay(was) })
	SetVectorReplay(on)
	f()
}

// diffVectorReplay captures the same experiment under vectorized and
// scalar replay (trace cache on) and requires identical output.
func diffVectorReplay(t *testing.T, capture func() string) {
	t.Helper()
	var vec, scalar string
	withTraceCache(t, true, func() {
		withVectorReplay(t, true, func() { vec = capture() })
		ResetTraceCache()
		withVectorReplay(t, false, func() { scalar = capture() })
	})
	if vec != scalar {
		t.Errorf("output differs with vectorized replay\n--- vectorized ---\n%s--- scalar ---\n%s", vec, scalar)
	}
}

// TestVectorReplayTable1Identity: the full Table 1 grid — render, JSON,
// and all row counters — is byte-identical whether the nine replay
// cells share three vectorized batches or replay one by one, with the
// fast path both on and off (the off case forces every vector lane
// through applyGeneric and the reference access path).
func TestVectorReplayTable1Identity(t *testing.T) {
	capture := func() string {
		return captureGrid(t, func() (*Grid, error) {
			return Table1(context.Background(), smallCG(), nil)
		})
	}
	diffVectorReplay(t, capture)
	withFastPath(t, false, func() { diffVectorReplay(t, capture) })
}

// TestVectorReplayTable2Identity: same contract for the tiled
// matrix-product grid, which exercises the store lanes heavily.
func TestVectorReplayTable2Identity(t *testing.T) {
	par := workloads.MMPParams{N: 64, Tile: 16}
	capture := func() string {
		return captureGrid(t, func() (*Grid, error) {
			return Table2(context.Background(), par, nil)
		})
	}
	diffVectorReplay(t, capture)
}

// TestVectorReplayFamiliesIdentity runs every sweep family's fast
// geometry under vectorized and scalar replay and requires identical
// rendered output — covering every runCells call site (scheduler,
// prefetch-buffer, gather-stride, spark, superscalar, page-policy,
// cache-geometry) plus the families that are trace-cache-ineligible and
// must be bit-for-bit unaffected by the flag.
func TestVectorReplayFamiliesIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("family sweep differentials are slow; run without -short")
	}
	for _, f := range Families() {
		t.Run(f.Name, func(t *testing.T) {
			capture := func() string {
				var b strings.Builder
				if err := f.Run(context.Background(), true, &b); err != nil {
					t.Fatal(err)
				}
				return b.String()
			}
			diffVectorReplay(t, capture)
		})
	}
}

// vectorTestSpecs builds n cells sharing one recorded CG stream. bad
// maps a cell index to a config mutation that makes its system
// construction fail; every other cell is valid.
func vectorTestSpecs(par workloads.CGParams, m *workloads.SparseMatrix, bad map[int]func(*sim.Config)) func(i int) cellSpec {
	return func(i int) cellSpec {
		opts := core.Options{Controller: core.Conventional}
		if mutate, ok := bad[i]; ok {
			cfg := sim.DefaultConfig()
			mutate(&cfg)
			opts.Config = &cfg
		}
		return cellSpec{
			key:  "vector-test:" + cgKey(par, workloads.CGConventional, nil),
			opts: opts,
			exec: func(s *core.System) (core.Row, error) {
				res, err := workloads.RunCG(s, par, workloads.CGConventional, m)
				if err != nil {
					return core.Row{}, err
				}
				return res.Row, nil
			},
		}
	}
}

// TestVectorReplayBatchErrorDeterminism: when several cells of one
// batch fail, the surfaced error is the lowest-index failing cell's —
// exactly the scalar pool's policy — and no partial rows leak out.
func TestVectorReplayBatchErrorDeterminism(t *testing.T) {
	par := smallCG()
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	withTraceCache(t, true, func() {
		withVectorReplay(t, true, func() {
			rows, err := runCells(context.Background(), 4, vectorTestSpecs(par, m, map[int]func(*sim.Config){
				1: func(c *sim.Config) { c.TLBEntries = 0 },
				3: func(c *sim.Config) { c.IssueWidth = 0 },
			}))
			if err == nil {
				t.Fatal("batch with failing cells returned no error")
			}
			if !strings.Contains(err.Error(), "TLBEntries") {
				t.Errorf("surfaced error is not cell 1's (lowest failing index): %v", err)
			}
			if rows != nil {
				t.Errorf("failed batch leaked %d rows, want none", len(rows))
			}
		})
	})
}

// TestVectorReplayCancelMidBatch cancels the context between the
// batch's record and its replay lanes: cancellation must win, surface
// as context.Canceled, and leak no rows.
func TestVectorReplayCancelMidBatch(t *testing.T) {
	par := smallCG()
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	withTraceCache(t, true, func() {
		withVectorReplay(t, true, func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ctx = WithCellObserver(ctx, func(ev CellEvent) {
				if ev.Mode == "record" {
					cancel() // fires after the record, before the lanes finish
				}
			})
			rows, err := runCells(ctx, 4, vectorTestSpecs(par, m, nil))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
			}
			if rows != nil {
				t.Errorf("cancelled batch leaked %d rows, want none", len(rows))
			}
		})
	})
}

// TestVectorReplayCellEvents pins the observability contract of a
// vectorized Table 1 run: three records and nine replayed-vectorized
// cells, each replay carrying its batch id, the batch size, a dense
// batch index, and the shared decode cost on exactly the first lane.
func TestVectorReplayCellEvents(t *testing.T) {
	var mu sync.Mutex
	var events []CellEvent
	ctx := WithCellObserver(context.Background(), func(ev CellEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	withTraceCache(t, true, func() {
		withVectorReplay(t, true, func() {
			if _, err := Table1(ctx, smallCG(), nil); err != nil {
				t.Fatal(err)
			}
		})
	})
	var records int
	batches := map[string][]CellEvent{}
	for _, ev := range events {
		switch ev.Mode {
		case "record":
			records++
			if ev.Batch == "" || ev.BatchSize != 4 {
				t.Errorf("record event missing batch identity: %+v", ev)
			}
		case "replayed-vectorized":
			batches[ev.Batch] = append(batches[ev.Batch], ev)
		default:
			t.Errorf("unexpected cell mode %q", ev.Mode)
		}
	}
	if records != 3 || len(batches) != 3 {
		t.Fatalf("got %d records and %d batches, want 3 and 3", records, len(batches))
	}
	for id, evs := range batches {
		if len(evs) != 3 {
			t.Errorf("batch %s has %d replay lanes, want 3", id, len(evs))
		}
		seen := map[int]bool{}
		decodes := 0
		for _, ev := range evs {
			if ev.BatchSize != 4 {
				t.Errorf("batch %s lane reports size %d, want 4", id, ev.BatchSize)
			}
			seen[ev.BatchIndex] = true
			if ev.Decode > 0 {
				decodes++
				if ev.BatchIndex != 0 {
					t.Errorf("batch %s reports decode on lane %d, want lane 0", id, ev.BatchIndex)
				}
			}
		}
		if !seen[0] || !seen[1] || !seen[2] {
			t.Errorf("batch %s lane indices not dense: %v", id, seen)
		}
		if decodes != 1 {
			t.Errorf("batch %s reports decode on %d lanes, want exactly 1", id, decodes)
		}
	}
}
