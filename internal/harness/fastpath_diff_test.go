package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/sim"
	"impulse/internal/tracefile"
	"impulse/internal/workloads"
)

// The fast-path access engine (internal/sim/fastpath.go) must be
// invisible in everything an experiment can observe: rendered grids,
// JSON output, every counter, and the recorded trace v2 byte stream.
// These tests run the same experiments with the engine on and off and
// require byte identity. They are the acceptance gate for the engine's
// cycle-exactness contract.

// withFastPath runs f with the fast path forced on or off, restoring the
// default (on) afterwards.
func withFastPath(t *testing.T, on bool, f func()) {
	t.Helper()
	t.Cleanup(func() { SetFastPath(true) })
	SetFastPath(on)
	f()
}

// captureGrid renders g's table, its JSON form, and a registry dump of
// every observed row into one comparable string.
func captureGrid(t *testing.T, run func() (*Grid, error)) string {
	t.Helper()
	var reg obs.Registry
	core.SetRowObserver(core.CollectRows(&reg))
	defer core.SetRowObserver(nil)
	g, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("\n--- json ---\n")
	if err := g.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("\n--- counters ---\n")
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// diffFastPath runs capture with the fast path on and off (under the
// given trace-cache setting) and requires identical output.
func diffFastPath(t *testing.T, traceCache bool, capture func() string) {
	t.Helper()
	var on, off string
	withTraceCache(t, traceCache, func() {
		withFastPath(t, true, func() { on = capture() })
		ResetTraceCache()
		withFastPath(t, false, func() { off = capture() })
	})
	if on != off {
		t.Errorf("output differs with fast path on (trace cache %v)\n--- fast on ---\n%s--- fast off ---\n%s",
			traceCache, on, off)
	}
}

// TestFastPathTable1Identity: the full Table 1 grid — render, JSON, and
// all row counters — is byte-identical with the fast path on and off,
// with the trace cache both off (every cell executes) and on (one cell
// per stream records, the rest replay).
func TestFastPathTable1Identity(t *testing.T) {
	capture := func() string {
		return captureGrid(t, func() (*Grid, error) {
			return Table1(context.Background(), smallCG(), nil)
		})
	}
	diffFastPath(t, false, capture)
	diffFastPath(t, true, capture)
}

// TestFastPathTable2Identity: same contract for the tiled matrix-product
// grid, which exercises the store fast path heavily (tile copying).
func TestFastPathTable2Identity(t *testing.T) {
	par := workloads.MMPParams{N: 64, Tile: 16}
	capture := func() string {
		return captureGrid(t, func() (*Grid, error) {
			return Table2(context.Background(), par, nil)
		})
	}
	diffFastPath(t, false, capture)
	diffFastPath(t, true, capture)
}

// TestFastPathTraceBytesIdentity records the trace v2 stream of one run
// per workload mode with the fast path on and off and requires the raw
// bytes to match. This is the strongest form of the contract: every
// recorded machine command, tick count, and PV image must agree, not
// just the end-of-run counters.
func TestFastPathTraceBytesIdentity(t *testing.T) {
	par := smallCG()
	m := workloads.MakeA(par.N, par.Nonzer, par.RCond, par.Shift)
	record := func(disable bool, kind core.ControllerKind, pf core.PrefetchPolicy,
		exec func(s *core.System) error) []byte {
		t.Helper()
		cfg := sim.DefaultConfig()
		cfg.DisableFastPath = disable
		s, err := core.NewSystem(core.Options{Controller: kind, Prefetch: pf, Config: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		rec := tracefile.RecordRun(s)
		if err := exec(s); err != nil {
			t.Fatal(err)
		}
		data, err := rec.Bytes()
		s.ReleaseBuffers()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		kind core.ControllerKind
		pf   core.PrefetchPolicy
		exec func(s *core.System) error
	}{
		{"cg-conventional", core.Conventional, core.PrefetchNone, func(s *core.System) error {
			_, err := workloads.RunCG(s, par, workloads.CGConventional, m)
			return err
		}},
		{"cg-scatter-gather", core.Impulse, core.PrefetchMC, func(s *core.System) error {
			_, err := workloads.RunCG(s, par, workloads.CGScatterGather, m)
			return err
		}},
		{"cg-recolor", core.Impulse, core.PrefetchL1, func(s *core.System) error {
			_, err := workloads.RunCG(s, par, workloads.CGRecolor, m)
			return err
		}},
		{"mmp-tile-remap", core.Impulse, core.PrefetchBoth, func(s *core.System) error {
			_, err := workloads.RunMMP(s, workloads.MMPParams{N: 48, Tile: 16}, workloads.MMPTileRemap)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			on := record(false, tc.kind, tc.pf, tc.exec)
			off := record(true, tc.kind, tc.pf, tc.exec)
			if !bytes.Equal(on, off) {
				t.Errorf("recorded trace bytes differ with fast path on (%d vs %d bytes)", len(on), len(off))
			}
		})
	}
}

// TestFastPathFamiliesIdentity runs every sweep family's fast geometry
// with the fast path on and off and requires identical rendered output.
// This covers the workloads the table grids do not reach (superpage,
// IPC gather, DB scans, strided gathers, multi-process scheduling).
func TestFastPathFamiliesIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("family sweep differentials are slow; run without -short")
	}
	for _, f := range Families() {
		t.Run(f.Name, func(t *testing.T) {
			capture := func() string {
				var b strings.Builder
				if err := f.Run(context.Background(), true, &b); err != nil {
					t.Fatal(err)
				}
				return b.String()
			}
			diffFastPath(t, true, capture)
		})
	}
}
