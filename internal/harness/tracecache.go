// Trace cache: sweep families whose cells differ only in *timing* knobs
// (cache geometry, DRAM policy, controller SRAM size, issue width,
// prefetch policy) issue the exact same machine-command stream, so the
// workload's functional execution — the CG arithmetic, the tiled
// multiply, the data movement of every load and store — needs to happen
// only once per distinct reference stream. The first cell of a family to
// need a given stream executes the workload under a tracefile v2
// recorder; every other cell (possibly on other pool workers,
// concurrently) replays the recorded command stream on its own machine
// with functional data movement disabled. Replay is cycle- and
// counter-identical to execution by construction (the differential tests
// in internal/tracefile pin this), including Impulse shadow runs, whose
// indirection vectors travel inside the trace as a memory image.
//
// Families whose cells change the reference stream itself (different
// workload variants per cell, multi-process runs) are ineligible; they
// execute every cell as before and say so once on stderr.
package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"impulse/internal/core"
	"impulse/internal/obs"
	"impulse/internal/sim"
	"impulse/internal/tracefile"
	"impulse/internal/workloads"
)

var (
	traceCacheOn   = true
	traceRecordDir string
	traceReplayDir string

	// traceCache maps cellSpec.key -> *traceEntry. Entries are recorded
	// once (sync.Once) and replayed by every other cell with the key.
	traceCache sync.Map
)

// SetTraceCache enables or disables the in-process trace cache (the
// -trace-cache flag). On by default. Call during setup, not while an
// experiment runs.
func SetTraceCache(on bool) { traceCacheOn = on }

// TraceCacheEnabled reports whether the trace cache is on.
func TraceCacheEnabled() bool { return traceCacheOn }

// SetTraceRecordDir makes every recorded trace also persist to dir as
// <key>.imptrc (the -trace-record flag). Empty disables persistence.
func SetTraceRecordDir(dir string) { traceRecordDir = dir }

// SetTraceReplayDir makes the cache try dir for a previously persisted
// trace before executing a workload (the -trace-replay flag). Empty
// disables. A missing or invalid file silently falls back to execution.
func SetTraceReplayDir(dir string) { traceReplayDir = dir }

// ResetTraceCache drops every cached trace. Benchmarks and tests use it
// to measure cold/warm behaviour; not safe while a Run is in flight.
func ResetTraceCache() {
	traceCache.Range(func(k, _ any) bool {
		traceCache.Delete(k)
		return true
	})
}

type traceEntry struct {
	once sync.Once
	data []byte
	err  error
}

// cellSpec describes one grid cell to runCell: the identity of its
// reference stream (key), the timing configuration to simulate it under
// (opts), how to rewrite recorded labels for this cell (relabel, nil =
// keep), and the workload to execute when this cell is the one that
// records (exec returns the cell's measured row).
type cellSpec struct {
	key     string
	opts    core.Options
	relabel func(string) string
	exec    func(s *core.System) (core.Row, error)
}

// runCell runs one grid cell through the trace cache: the first cell to
// claim the key executes exec (recording), every other cell replays the
// recorded stream under its own opts. With the cache off it simply
// executes. Each cell's mode and wall-clock interval are reported to the
// context's cell observer (WithCellObserver), if one is installed.
func runCell(tc *TaskCtx, spec cellSpec) (core.Row, error) {
	if observe := cellObserver(tc.Ctx); observe != nil {
		start := time.Now()
		row, mode, err := runCellInner(tc, spec)
		observe(CellEvent{Key: spec.key, Mode: mode, Start: start, End: time.Now()})
		return row, err
	}
	row, _, err := runCellInner(tc, spec)
	return row, err
}

func runCellInner(tc *TaskCtx, spec cellSpec) (core.Row, string, error) {
	if !traceCacheOn {
		s, err := tc.NewSystem(spec.opts)
		if err != nil {
			return core.Row{}, "execute", err
		}
		r, err := spec.exec(s)
		s.ReleaseBuffers()
		return r, "execute", err
	}
	v, _ := traceCache.LoadOrStore(spec.key, &traceEntry{})
	ent := v.(*traceEntry)
	var row core.Row
	recorded := false
	ent.once.Do(func() {
		if data := loadPersistedTrace(spec.key); data != nil {
			ent.data = data
			return
		}
		s, err := tc.NewSystem(spec.opts)
		if err != nil {
			ent.err = err
			return
		}
		rec := tracefile.RecordRun(s)
		r, err := spec.exec(s)
		if err != nil {
			s.ReleaseBuffers()
			ent.err = err
			return
		}
		data, err := rec.Bytes()
		s.ReleaseBuffers()
		if err != nil {
			ent.err = err
			return
		}
		ent.data = data
		row, recorded = r, true
		persistTrace(tc.Ctx, spec.key, data)
	})
	if ent.err != nil {
		// Drop the failed entry so a later run (a daemon serves many
		// jobs per process) re-attempts the recording instead of
		// replaying a permanently poisoned error — a cancelled job must
		// not break the key for every future job. CompareAndDelete only
		// removes this exact entry, never a fresh retry's.
		traceCache.CompareAndDelete(spec.key, v)
		// Return the recording cell's error verbatim so the surfaced
		// error text does not depend on which cell happened to record.
		return core.Row{}, "record", ent.err
	}
	if recorded {
		return row, "record", nil
	}
	s, err := tc.NewSystem(spec.opts)
	if err != nil {
		return core.Row{}, "replay", err
	}
	rows, err := tracefile.ReplayV2(s, ent.data, tracefile.ReplayOpts{MapLabel: spec.relabel})
	s.ReleaseBuffers()
	if err != nil {
		return core.Row{}, "replay", fmt.Errorf("harness: trace replay (%s): %w", spec.key, err)
	}
	if len(rows) == 0 {
		return core.Row{}, "replay", fmt.Errorf("harness: trace replay (%s): no measured rows", spec.key)
	}
	return rows[len(rows)-1], "replay", nil
}

// noteIneligible reports (once per process per family, via the shared
// obs.WarnOnce helper) that a sweep family executes every cell because
// its cells vary the reference stream, not just timing. The reason
// comes from the family registry's Eligibility record — the same source
// the service's twin tier reads — so advisory text cannot drift from
// the registry. A daemon serving many jobs logs each note once, not
// once per job — attributed to the job that first triggered it when ctx
// carries a job id.
func noteIneligible(ctx context.Context, family string) {
	if !traceCacheOn {
		return
	}
	elig, ok := FamilyEligibility(family)
	if !ok || elig.TraceCache == "" {
		return
	}
	obs.WarnOnceCtx(ctx, "trace-cache-ineligible:"+family,
		"trace-cache: %s: ineligible (%s); executing every cell", family, elig.TraceCache)
}

// streamSig captures the configuration knobs that change the *reference
// stream* a workload issues (as opposed to its timing): the L1 size
// feeds scatter/gather target placement, and the page-color count feeds
// recoloring and the frame allocator. Cells that differ here must not
// share a trace.
func streamSig(cfg *sim.Config) string {
	c := sim.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	return fmt.Sprintf("l1=%d,colors=%d", c.L1.Bytes, c.Kernel.PageColors)
}

// tracePath maps a cache key to a file name under dir: the key,
// sanitized, plus a hash to keep sanitized collisions apart.
func tracePath(dir, key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	san := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=', r == ',':
			return r
		default:
			return '_'
		}
	}, key)
	return filepath.Join(dir, fmt.Sprintf("%s-%08x.imptrc", san, h.Sum32()))
}

func loadPersistedTrace(key string) []byte {
	if traceReplayDir == "" {
		return nil
	}
	data, err := os.ReadFile(tracePath(traceReplayDir, key))
	if err != nil || tracefile.Validate(data) != nil {
		return nil
	}
	return data
}

// persistTrace writes via temp-file-plus-rename so a persisted trace is
// either complete or absent: fleet shards share one record dir, and a
// shard replaying concurrently with another shard's recording (or a
// daemon killed mid-write) must never see a torn .imptrc —
// loadPersistedTrace would reject it and fall back, but a same-name
// partial would shadow the good file a slower writer was producing.
func persistTrace(ctx context.Context, key string, data []byte) {
	if traceRecordDir == "" {
		return
	}
	if err := os.MkdirAll(traceRecordDir, 0o755); err != nil {
		obs.WarnOnceCtx(ctx, "trace-record-dir:"+traceRecordDir, "trace-cache: record dir: %v", err)
		return
	}
	dst := tracePath(traceRecordDir, key)
	tmp, err := os.CreateTemp(traceRecordDir, filepath.Base(dst)+".tmp-*")
	if err != nil {
		obs.WarnOnceCtx(ctx, "trace-persist:"+traceRecordDir, "trace-cache: persist %s: %v", key, err)
		return
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), dst)
	}
	if err != nil {
		os.Remove(tmp.Name())
		obs.WarnOnceCtx(ctx, "trace-persist:"+traceRecordDir, "trace-cache: persist %s: %v", key, err)
	}
}

// relabelPf rewrites the "<...>/<prefetch>" suffix the CG/MMP/Cholesky
// section labels carry to this cell's prefetch policy, so a row replayed
// from another column's recording renders (and registers counters)
// exactly as if this cell had executed.
func relabelPf(pf core.PrefetchPolicy) func(string) string {
	suffix := pf.String()
	return func(label string) string {
		if i := strings.LastIndexByte(label, '/'); i >= 0 {
			return label[:i+1] + suffix
		}
		return label
	}
}

// constLabel relabels every recorded row to a fixed label (families
// whose cells label rows by the knob being swept).
func constLabel(l string) func(string) string {
	return func(string) string { return l }
}

// cgKey identifies the reference stream of one CG cell: the problem, the
// remapping mode, and the stream-affecting config knobs. Prefetch policy,
// controller kind, and pure timing knobs are deliberately absent — cells
// differing only there share the stream (that is the cache's entire
// point), including across sweep families run at the same parameters.
func cgKey(par workloads.CGParams, mode workloads.CGMode, cfg *sim.Config) string {
	return fmt.Sprintf("cg-n%d-nz%d-ni%d-it%d-sh%g-rc%g-%v-%s",
		par.N, par.Nonzer, par.Niter, par.CGIts, par.Shift, par.RCond, mode, streamSig(cfg))
}

// mmpKey identifies the reference stream of one tiled matrix-product cell.
func mmpKey(par workloads.MMPParams, mode workloads.MMPMode, cfg *sim.Config) string {
	return fmt.Sprintf("mmp-n%d-t%d-%v-%s", par.N, par.Tile, mode, streamSig(cfg))
}
