package harness

import (
	"context"
	"testing"

	"impulse/internal/workloads"
)

// TestTable1Shape asserts the paper's qualitative claims about Table 1 on
// a geometry where the multiplicand exceeds the L1 (as at Class A). Grid
// indices: sections {0: conventional, 1: scatter/gather, 2: recoloring},
// columns {0: standard, 1: controller prefetch, 2: L1 prefetch, 3: both}.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute grid")
	}
	par := workloads.CGParams{N: 8192, Nonzer: 6, Niter: 1, CGIts: 3, Shift: 10, RCond: 0.1}
	g, err := Table1(context.Background(), par, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(s, c int) uint64 { return g.Cells[s][c].Row.Cycles }

	// Scatter/gather beats conventional in every prefetch column.
	for c := 0; c < 4; c++ {
		if cell(1, c) >= cell(0, c) {
			t.Errorf("column %d: scatter/gather (%d) not faster than conventional (%d)",
				c, cell(1, c), cell(0, c))
		}
	}
	// Prefetching helps scatter/gather: both < mc < standard.
	if !(cell(1, 3) < cell(1, 1) && cell(1, 1) < cell(1, 0)) {
		t.Errorf("scatter/gather prefetch progression broken: %d / %d / %d",
			cell(1, 0), cell(1, 1), cell(1, 3))
	}
	// On the conventional system every prefetch flavor helps, and L1
	// prefetching beats controller prefetching (paper: 12% vs 4%).
	for c := 1; c < 4; c++ {
		if cell(0, c) >= cell(0, 0) {
			t.Errorf("conventional prefetch column %d did not help: %d vs %d",
				c, cell(0, c), cell(0, 0))
		}
	}
	if cell(0, 2) >= cell(0, 1) {
		t.Errorf("L1 prefetch (%d) not better than controller prefetch (%d) on conventional",
			cell(0, 2), cell(0, 1))
	}
	// Recoloring helps, but less than scatter/gather (paper: 1.04 vs 1.33).
	if cell(2, 0) >= cell(0, 0) {
		t.Errorf("recoloring (%d) not faster than conventional (%d)", cell(2, 0), cell(0, 0))
	}
	if cell(1, 0) >= cell(2, 0) {
		t.Errorf("scatter/gather (%d) not faster than recoloring (%d)", cell(1, 0), cell(2, 0))
	}

	// Hit-ratio structure: scatter/gather raises L1 and lowers L2
	// temporal locality ("the remapped elements of x' cannot be reused").
	if g.Cells[1][0].Row.L1Ratio <= g.Cells[0][0].Row.L1Ratio {
		t.Error("scatter/gather did not raise L1 hit ratio")
	}
	if g.Cells[1][0].Row.L2Ratio >= g.Cells[0][0].Row.L2Ratio {
		t.Error("scatter/gather did not lower L2 hit ratio")
	}
	// Scatter/gather: fewer loads, each more expensive on average.
	if g.Cells[1][0].Row.Stats.Loads >= g.Cells[0][0].Row.Stats.Loads {
		t.Error("scatter/gather did not reduce loads issued")
	}
	if g.Cells[1][0].Row.AvgLoad <= g.Cells[0][0].Row.AvgLoad {
		t.Error("scatter/gather should raise average load time (fewer, costlier loads)")
	}
	// Recoloring moves misses from memory into the L2.
	if g.Cells[2][0].Row.MemRatio >= g.Cells[0][0].Row.MemRatio {
		t.Error("recoloring did not reduce memory hit ratio")
	}
}

// TestTable2Shape asserts the paper's qualitative claims about Table 2.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute grid")
	}
	g, err := Table2(context.Background(), workloads.MMPParams{N: 128, Tile: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(s, c int) uint64 { return g.Cells[s][c].Row.Cycles }
	for c := 0; c < 4; c++ {
		// Copying and remapping both beat no-copy tiling...
		if cell(1, c) >= cell(0, c) || cell(2, c) >= cell(0, c) {
			t.Errorf("column %d: copy/remap not faster than no-copy: %d / %d / %d",
				c, cell(0, c), cell(1, c), cell(2, c))
		}
		// ...and remapping at least matches copying (paper: slightly faster).
		if cell(2, c) > cell(1, c) {
			t.Errorf("column %d: remapping (%d) slower than copying (%d)", c, cell(2, c), cell(1, c))
		}
	}
	// Both optimized variants more than double the L1 hit ratio.
	if g.Cells[1][0].Row.L1Ratio < 2*g.Cells[0][0].Row.L1Ratio && g.Cells[0][0].Row.L1Ratio < 0.5 {
		t.Error("copying did not transform L1 behaviour")
	}
	// Prefetching makes almost no difference for the optimized variants
	// (within 5%).
	for s := 1; s < 3; s++ {
		base := float64(cell(s, 0))
		for c := 1; c < 4; c++ {
			if d := float64(cell(s, c)) / base; d < 0.95 || d > 1.05 {
				t.Errorf("section %d column %d: prefetch changed optimized time by %.2fx", s, c, d)
			}
		}
	}
}
