package harness

import (
	"io"

	"impulse/internal/colres"
)

// JSONCell and JSONGrid are the machine-readable grid forms. They live
// in internal/colres now — the columnar schema is the single source of
// truth for every rendering — and stay aliased here for the plotting
// and test code that grew up against the harness names.
type (
	JSONCell = colres.JSONCell
	JSONGrid = colres.JSONGrid
)

// Doc lowers the grid into the columnar result schema: coordinates as
// string-table indices, counters and derived stats (including the
// latency percentiles every view shows) as fixed-width columns. Every
// rendering of a grid — JSON, text, SVG, the service's archive blob —
// is a view over this one document.
func (g *Grid) Doc() *colres.Doc {
	d := &colres.Doc{
		Title:    g.Title,
		Sections: g.Sections,
		Columns:  columnNames,
	}
	for si := range g.Cells {
		for ci := range g.Cells[si] {
			cell := &g.Cells[si][ci]
			h := &cell.Row.Stats.LoadLatency
			d.Cells = append(d.Cells, colres.Cell{
				Section:  uint32(si),
				Column:   uint32(ci),
				Cycles:   cell.Row.Cycles,
				Loads:    cell.Row.Stats.Loads,
				Stores:   cell.Row.Stats.Stores,
				BusBytes: cell.Row.Stats.BusBytes,
				P50:      h.Percentile(50),
				P95:      h.Percentile(95),
				P99:      h.Percentile(99),
				L1:       cell.Row.L1Ratio,
				L2:       cell.Row.L2Ratio,
				Mem:      cell.Row.MemRatio,
				AvgLoad:  cell.Row.AvgLoad,
				Speedup:  cell.Speedup,
			})
		}
	}
	return d
}

// Columnar encodes the grid as a columnar result blob (the archive /
// wire form; see docs/RESULTS.md).
func (g *Grid) Columnar() []byte { return colres.Encode(g.Doc()) }

// WriteJSON emits the grid as indented JSON, for plotting pipelines and
// regression comparisons (the text Render is for humans). It is the
// JSON view over the columnar document; the byte format is pinned by
// testdata/grid_golden.json.
func (g *Grid) WriteJSON(w io.Writer) error {
	return colres.WriteGridJSON(g.Doc(), w)
}
