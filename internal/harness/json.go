package harness

import (
	"encoding/json"
	"io"
)

// JSONCell is the machine-readable form of one table cell.
type JSONCell struct {
	Section  string  `json:"section"`
	Prefetch string  `json:"prefetch"`
	Cycles   uint64  `json:"cycles"`
	L1Ratio  float64 `json:"l1_hit_ratio"`
	L2Ratio  float64 `json:"l2_hit_ratio"`
	MemRatio float64 `json:"mem_hit_ratio"`
	AvgLoad  float64 `json:"avg_load_time"`
	P50Load  uint64  `json:"p50_load_time"`
	P95Load  uint64  `json:"p95_load_time"`
	P99Load  uint64  `json:"p99_load_time"`
	Speedup  float64 `json:"speedup"`
	Loads    uint64  `json:"loads"`
	Stores   uint64  `json:"stores"`
	BusBytes uint64  `json:"bus_bytes"`
}

// JSONGrid is the machine-readable form of a whole table.
type JSONGrid struct {
	Title string     `json:"title"`
	Cells []JSONCell `json:"cells"`
}

// WriteJSON emits the grid as indented JSON, for plotting pipelines and
// regression comparisons (the text Render is for humans).
func (g *Grid) WriteJSON(w io.Writer) error {
	out := JSONGrid{Title: g.Title}
	for si, name := range g.Sections {
		for ci, cell := range g.Cells[si] {
			out.Cells = append(out.Cells, JSONCell{
				Section:  name,
				Prefetch: columnNames[ci],
				Cycles:   cell.Row.Cycles,
				L1Ratio:  cell.Row.L1Ratio,
				L2Ratio:  cell.Row.L2Ratio,
				MemRatio: cell.Row.MemRatio,
				AvgLoad:  cell.Row.AvgLoad,
				P50Load:  cell.Row.Stats.LoadLatency.Percentile(50),
				P95Load:  cell.Row.Stats.LoadLatency.Percentile(95),
				P99Load:  cell.Row.Stats.LoadLatency.Percentile(99),
				Speedup:  cell.Speedup,
				Loads:    cell.Row.Stats.Loads,
				Stores:   cell.Row.Stats.Stores,
				BusBytes: cell.Row.Stats.BusBytes,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
