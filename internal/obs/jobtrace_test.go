package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedTrace builds a deterministic timeline: two lifecycle phases, two
// marks, and three cells of which two overlap (forcing a second lane).
func fixedTrace() *JobTrace {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	t := NewJobTrace(base)
	t.Mark("submitted", at(0))
	t.Phase("queued", at(0), at(100))
	t.Phase("running", at(100), at(900))
	// Deliberately out of order and overlapping: lanes are assigned at
	// export, not at record time.
	t.Cell("cg/sg replay", at(400), at(600))
	t.Cell("cg/conv record", at(150), at(500))
	t.Cell("cg/recolor replay", at(600), at(800))
	t.Mark("archived", at(900))
	return t
}

func TestJobTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"displayTimeUnit":"ms","traceEvents":[`,
		`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"impulse job"}},`,
		`{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"job"}},`,
		`{"ph":"M","pid":1,"tid":1,"name":"thread_sort_index","args":{"sort_index":0}},`,
		`{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"cells #1"}},`,
		`{"ph":"M","pid":1,"tid":2,"name":"thread_sort_index","args":{"sort_index":1}},`,
		`{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"cells #2"}},`,
		`{"ph":"M","pid":1,"tid":3,"name":"thread_sort_index","args":{"sort_index":2}},`,
		`{"ph":"i","pid":1,"tid":1,"ts":0,"s":"t","cat":"job","name":"submitted"},`,
		`{"ph":"X","pid":1,"tid":1,"ts":0,"dur":100,"cat":"job","name":"queued"},`,
		`{"ph":"X","pid":1,"tid":1,"ts":100,"dur":800,"cat":"job","name":"running"},`,
		`{"ph":"i","pid":1,"tid":1,"ts":900,"s":"t","cat":"job","name":"archived"},`,
		`{"ph":"X","pid":1,"tid":2,"ts":150,"dur":350,"cat":"cell","name":"cg/conv record"},`,
		`{"ph":"X","pid":1,"tid":3,"ts":400,"dur":200,"cat":"cell","name":"cg/sg replay"},`,
		`{"ph":"X","pid":1,"tid":2,"ts":600,"dur":200,"cat":"cell","name":"cg/recolor replay"}`,
		`]}`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("job trace JSON:\n%s\nwant:\n%s", buf.String(), want)
	}

	// Round-trips through encoding/json (valid Perfetto/Chrome input).
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("job trace JSON invalid: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 14 {
		t.Fatalf("decoded %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}

	// Deterministic regardless of recording interleaving: same spans,
	// different insertion order, identical bytes.
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	tr := NewJobTrace(base)
	tr.Mark("submitted", at(0))
	tr.Cell("cg/recolor replay", at(600), at(800))
	tr.Cell("cg/conv record", at(150), at(500))
	tr.Cell("cg/sg replay", at(400), at(600))
	tr.Phase("running", at(100), at(900))
	tr.Phase("queued", at(0), at(100))
	tr.Mark("archived", at(900))
	var again bytes.Buffer
	if err := tr.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Errorf("job trace depends on recording order:\n%s\nvs:\n%s", again.String(), buf.String())
	}
}

func TestJobTraceNilSafe(t *testing.T) {
	var tr *JobTrace
	tr.Mark("x", time.Now())
	tr.Phase("x", time.Now(), time.Now())
	tr.Cell("x", time.Now(), time.Now())
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil JobTrace WriteJSON should error")
	}
}

func TestJobTraceClampsPreBaseTimes(t *testing.T) {
	base := time.Now()
	tr := NewJobTrace(base)
	tr.Phase("weird", base.Add(-time.Second), base.Add(time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ts":-`) {
		t.Errorf("negative timestamp leaked:\n%s", buf.String())
	}
}
