package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// JobTrace is the service-level counterpart of the Hub's simulated-cycle
// span tracing: a goroutine-safe wall-clock timeline for one experiment
// job, exported as the same Chrome trace-event / Perfetto JSON the sim
// traces use, so a slow sweep can be opened in ui.perfetto.dev and
// diagnosed cell by cell. Times are microseconds relative to the job's
// submission.
//
// Three kinds of events:
//
//   - Mark: a lifecycle instant on the "job" track (submitted, archived);
//   - Phase: a lifecycle span on the "job" track (queued, running, render);
//   - Cell: a per-cell span (one grid cell's record/replay/execute).
//     Cells run concurrently on the harness pool, so at export time they
//     are packed onto as few non-overlapping "cells #N" lanes as fit —
//     the lane layout shows the pool's actual parallelism.
//
// All methods are nil-safe: an untraced job costs one pointer compare
// per instrumentation site, preserving the obs layer's
// pay-for-what-you-use design.
type JobTrace struct {
	mu     sync.Mutex
	base   time.Time
	marks  []jobSpan
	phases []jobSpan
	cells  []jobSpan
}

// jobSpan is one recorded event: start/end in µs since base.
type jobSpan struct {
	name       string
	start, end int64
}

// NewJobTrace starts a timeline whose time zero is base (the job's
// submission time).
func NewJobTrace(base time.Time) *JobTrace {
	return &JobTrace{base: base}
}

func (t *JobTrace) us(at time.Time) int64 {
	us := at.Sub(t.base).Microseconds()
	if us < 0 {
		us = 0
	}
	return us
}

// Mark records a lifecycle instant on the job track.
func (t *JobTrace) Mark(name string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.us(at)
	t.marks = append(t.marks, jobSpan{name: name, start: u, end: u})
}

// Phase records a lifecycle span on the job track.
func (t *JobTrace) Phase(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.phases = append(t.phases, jobSpan{name: name, start: t.us(start), end: t.us(end)})
}

// Cell records one grid cell's span. Safe to call from concurrent pool
// workers.
func (t *JobTrace) Cell(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cells = append(t.cells, jobSpan{name: name, start: t.us(start), end: t.us(end)})
}

// assignLanes packs spans onto the fewest non-overlapping lanes,
// first-fit in (start, end, name) order. Deterministic for a given span
// set regardless of the order Cell was called in.
func assignLanes(spans []jobSpan) (ordered []jobSpan, lane []int, lanes int) {
	ordered = append([]jobSpan(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end < b.end
		}
		return a.name < b.name
	})
	lane = make([]int, len(ordered))
	var laneEnd []int64
	for i, s := range ordered {
		placed := false
		for l, end := range laneEnd {
			if end <= s.start {
				lane[i], laneEnd[l] = l, s.end
				placed = true
				break
			}
		}
		if !placed {
			lane[i] = len(laneEnd)
			laneEnd = append(laneEnd, s.end)
		}
	}
	return ordered, lane, len(laneEnd)
}

// WriteJSON emits the timeline as Chrome trace-event JSON. Track 1 is
// the job lifecycle; tracks 2..N are cell lanes. Field order and event
// order are fixed (metadata, then job marks and phases sorted by start,
// then cells lane-packed in sorted order), so equal timelines render
// byte-identically — the golden test pins the layout.
func (t *JobTrace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: no job trace recorded")
	}
	t.mu.Lock()
	marks := append([]jobSpan(nil), t.marks...)
	phases := append([]jobSpan(nil), t.phases...)
	cells := append([]jobSpan(nil), t.cells...)
	t.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"impulse job"}}`)

	cellsOrdered, lane, lanes := assignLanes(cells)
	thread := func(tid int, name string) {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid, strconv.Quote(name)))
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			tid, tid-1))
	}
	thread(1, "job")
	for l := 0; l < lanes; l++ {
		thread(2+l, fmt.Sprintf("cells #%d", l+1))
	}

	// Job track: marks and phases merged, sorted by start (ties: marks
	// first, then name) for a stable layout.
	type jobEv struct {
		jobSpan
		instant bool
	}
	evs := make([]jobEv, 0, len(marks)+len(phases))
	for _, m := range marks {
		evs = append(evs, jobEv{m, true})
	}
	for _, p := range phases {
		evs = append(evs, jobEv{p, false})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].start != evs[j].start {
			return evs[i].start < evs[j].start
		}
		if evs[i].instant != evs[j].instant {
			return evs[i].instant
		}
		return evs[i].name < evs[j].name
	})
	for _, e := range evs {
		if e.instant {
			emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":1,"ts":%d,"s":"t","cat":"job","name":%s}`,
				e.start, strconv.Quote(e.name)))
			continue
		}
		dur := int64(1)
		if e.end > e.start {
			dur = e.end - e.start
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":1,"ts":%d,"dur":%d,"cat":"job","name":%s}`,
			e.start, dur, strconv.Quote(e.name)))
	}
	for i, c := range cellsOrdered {
		dur := int64(1)
		if c.end > c.start {
			dur = c.end - c.start
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"cat":"cell","name":%s}`,
			2+lane[i], c.start, dur, strconv.Quote(c.name)))
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
