package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestWarnOnce(t *testing.T) {
	var buf bytes.Buffer
	SetWarnOutput(&buf)
	defer SetWarnOutput(nil)
	ResetWarnings()
	defer ResetWarnings()

	WarnOnce("k1", "note %d", 1)
	WarnOnce("k1", "note %d", 2) // dropped: same key
	WarnOnce("k2", "other note")

	got := buf.String()
	if want := "note 1\nother note\n"; got != want {
		t.Errorf("warnings = %q, want %q", got, want)
	}

	// Reset forgets keys: the same key warns again.
	ResetWarnings()
	WarnOnce("k1", "again")
	if !strings.HasSuffix(buf.String(), "again\n") {
		t.Errorf("after reset, warning not re-emitted: %q", buf.String())
	}
}

func TestWarnOnceCtxTagsJobID(t *testing.T) {
	var buf bytes.Buffer
	SetWarnOutput(&buf)
	defer SetWarnOutput(nil)
	ResetWarnings()
	defer ResetWarnings()

	// Inside a service job: the message carries the job id.
	ctx := WithJobID(context.Background(), "j-000042")
	WarnOnceCtx(ctx, "ka", "family %s ineligible", "ipc")
	// Outside a job: plain message, no suffix.
	WarnOnceCtx(context.Background(), "kb", "plain note")
	// Same key from another job: still deduplicated (once per process).
	WarnOnceCtx(WithJobID(context.Background(), "j-000043"), "ka", "family %s ineligible", "ipc")

	got := buf.String()
	want := "family ipc ineligible [job j-000042]\nplain note\n"
	if got != want {
		t.Errorf("warnings = %q, want %q", got, want)
	}
	if JobID(ctx) != "j-000042" || JobID(context.Background()) != "" {
		t.Error("JobID extraction wrong")
	}
}

func TestWarnOnceConcurrent(t *testing.T) {
	var buf bytes.Buffer
	SetWarnOutput(&buf)
	defer SetWarnOutput(nil)
	ResetWarnings()
	defer ResetWarnings()

	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				WarnOnce("shared", "only once")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := strings.Count(buf.String(), "only once"); got != 1 {
		t.Errorf("warning emitted %d times, want 1", got)
	}
}
