package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// HistBuckets is the number of power-of-two histogram buckets. Bucket i
// holds observations in [2^i, 2^(i+1)) — the same scheme
// internal/stats.LatencyHist uses for simulated load latencies (it calls
// BucketIndex below) — but with enough buckets that a value in
// microseconds spans one host microsecond to ~35 host minutes, which
// covers everything the service measures, from a cache-hit HTTP round
// trip to a full-geometry Table 1 run.
const HistBuckets = 32

// BucketIndex returns the power-of-two bucket for v among n buckets:
// bucket i holds [2^i, 2^(i+1)), bucket 0 also holds 0, and the last
// bucket is open-ended.
func BucketIndex(v uint64, n int) int {
	i := 0
	if v > 0 {
		i = bits.Len64(v) - 1
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i (2^(i+1)-1),
// i.e. the Prometheus `le` value for the bucket.
func BucketBound(i int) uint64 { return 1<<(i+1) - 1 }

// Histogram is a concurrency-safe power-of-two-bucketed histogram for
// service-side latencies (the simulator core keeps using
// stats.LatencyHist, which is single-threaded like the machine it
// measures). All methods are nil-safe. Units are whatever the caller
// observes; the service observes microseconds and says so in the metric
// name.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[BucketIndex(v, HistBuckets)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistSnapshot is a point-in-time copy of a Histogram. Buckets, Count,
// and Sum are read individually (not atomically as a set), which is fine
// for monitoring: a scrape races with observations by design.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns an upper bound for the p-th percentile (0 < p <=
// 100): the top of the bucket containing that rank, mirroring
// stats.LatencyHist.Percentile.
func (s HistSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// HistVec is a family of Histograms sharing one name and differing in
// the value of a single label (the service labels job histograms by spec
// kind and HTTP histograms by endpoint). Children are created lazily on
// first With and registered with the owning Registry, so only label
// values that actually occur appear in the exposition.
type HistVec struct {
	reg   *Registry
	name  string
	help  string
	label string

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value, creating
// and registering it on first use. Nil-safe: a nil vec returns nil,
// whose Observe is itself a no-op.
func (v *HistVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[value]; h != nil {
		return h
	}
	if v.children == nil {
		v.children = make(map[string]*Histogram)
	}
	h := &Histogram{}
	v.children[value] = h
	v.reg.register(entry{
		name: v.name, help: v.help, kind: kindHistogram,
		labelKey: v.label, labelVal: value, hist: h,
	})
	return h
}
