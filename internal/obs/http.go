package obs

import "net/http"

// MetricsHandler exposes a Registry over HTTP in the same expvar-style
// "name value" text format WriteText produces — the impulsed service
// mounts this at /metrics so a daemon's live counters are scrapable
// with curl (or anything that speaks Prometheus' text exposition
// enough to read unlabelled gauges).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
