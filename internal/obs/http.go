package obs

import "net/http"

// MetricsHandler exposes a Registry over HTTP — the impulsed service
// mounts this at /metrics. The default rendering is Prometheus text
// exposition format v0.0.4 (typed # TYPE/# HELP metadata,
// _bucket/_sum/_count histogram series, deterministic sorted output);
// ?format=plain selects the legacy expvar-style "name value" dump that
// the first-generation scrapers and impulsectl's single-metric reads
// parse.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "plain" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := r.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
