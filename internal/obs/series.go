package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Metric indexes one column of the windowed time-series. The set is fixed
// (an array per window, no map lookups on the hot path): the quantities
// §4 of the paper uses to explain where cycles go.
type Metric int

const (
	// BusBusy is bus-occupied cycles (request + data phases).
	BusBusy Metric = iota
	// DRAMBusy is bank-occupied cycles summed over all banks.
	DRAMBusy
	// L1Hit / L1Miss classify each load at the L1.
	L1Hit
	L1Miss
	// L2Hit / L2Miss classify each load that reached the L2.
	L2Hit
	L2Miss
	// SDescHit / SDescMiss classify each shadow-line fill by whether a
	// descriptor prefetch buffer supplied it.
	SDescHit
	SDescMiss
	numMetrics
)

var metricNames = [numMetrics]string{
	"bus_busy", "dram_busy",
	"l1_hits", "l1_misses", "l2_hits", "l2_misses",
	"sdesc_hits", "sdesc_misses",
}

// String returns the metric's export column name.
func (m Metric) String() string {
	if m >= 0 && m < numMetrics {
		return metricNames[m]
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

type windowCounts [numMetrics]uint64

// Series buckets busy-cycles and event counts into fixed-width cycle
// windows, making phase behaviour visible that end-of-run aggregates
// average away. Samples may arrive out of time order (background
// activity completes in the future); windows grow on demand.
type Series struct {
	window uint64
	banks  uint64 // DRAM bank count, for utilization normalization
	wins   []windowCounts
}

// Window returns the bucket width in cycles.
func (s *Series) Window() uint64 { return s.window }

// SetBanks records the DRAM bank count used to normalize DRAMBusy into a
// utilization. Nil-safe (called from attach paths that may lack a series).
func (s *Series) SetBanks(n uint64) {
	if s != nil {
		s.banks = n
	}
}

// Len returns the number of windows touched so far.
func (s *Series) Len() int { return len(s.wins) }

func (s *Series) grow(win int) {
	for len(s.wins) <= win {
		s.wins = append(s.wins, windowCounts{})
	}
}

// AddBusy attributes the cycles of [start, end) to metric m, split across
// the overlapped windows.
func (s *Series) AddBusy(m Metric, start, end Cycle) {
	if end <= start {
		return
	}
	w := s.window
	first := int(start / w)
	last := int((end - 1) / w)
	s.grow(last)
	if first == last {
		s.wins[first][m] += end - start
		return
	}
	s.wins[first][m] += uint64(first+1)*w - start
	for i := first + 1; i < last; i++ {
		s.wins[i][m] += w
	}
	s.wins[last][m] += end - uint64(last)*w
}

// AddEvent counts one occurrence of m in the window holding at.
func (s *Series) AddEvent(m Metric, at Cycle) {
	win := int(at / s.window)
	s.grow(win)
	s.wins[win][m]++
}

// Values returns one metric's per-window values (shared backing removed:
// the slice is freshly allocated).
func (s *Series) Values(m Metric) []uint64 {
	out := make([]uint64, len(s.wins))
	for i := range s.wins {
		out[i] = s.wins[i][m]
	}
	return out
}

func rate(hit, miss uint64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

// WriteCSV emits the series as one row per window: the window's starting
// cycle, raw counts for every metric, and derived utilizations/rates.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "window_start,%s,%s,%s,%s,%s,%s,%s,%s,bus_util,dram_util,l1_hit_rate,l2_hit_rate,sdesc_hit_rate\n",
		metricNames[0], metricNames[1], metricNames[2], metricNames[3],
		metricNames[4], metricNames[5], metricNames[6], metricNames[7]); err != nil {
		return err
	}
	for i, win := range s.wins {
		busUtil := float64(win[BusBusy]) / float64(s.window)
		dramUtil := 0.0
		if s.banks > 0 {
			dramUtil = float64(win[DRAMBusy]) / float64(s.window*s.banks)
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			uint64(i)*s.window,
			win[BusBusy], win[DRAMBusy],
			win[L1Hit], win[L1Miss], win[L2Hit], win[L2Miss],
			win[SDescHit], win[SDescMiss],
			busUtil, dramUtil,
			rate(win[L1Hit], win[L1Miss]),
			rate(win[L2Hit], win[L2Miss]),
			rate(win[SDescHit], win[SDescMiss])); err != nil {
			return err
		}
	}
	return nil
}

// seriesJSON is the machine-readable envelope for WriteJSON.
type seriesJSON struct {
	Window  uint64              `json:"window_cycles"`
	Banks   uint64              `json:"dram_banks"`
	Windows int                 `json:"windows"`
	Metrics map[string][]uint64 `json:"metrics"`
}

// WriteJSON emits the raw per-window counts keyed by metric name.
func (s *Series) WriteJSON(w io.Writer) error {
	out := seriesJSON{
		Window:  s.window,
		Banks:   s.banks,
		Windows: len(s.wins),
		Metrics: make(map[string][]uint64, numMetrics),
	}
	for m := Metric(0); m < numMetrics; m++ {
		out.Metrics[metricNames[m]] = s.Values(m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
