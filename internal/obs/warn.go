package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
)

// Process-wide deduplicated warning sink. Components that would
// otherwise repeat the same advisory note on every experiment run — a
// long-lived daemon serves many jobs per process — route it through
// WarnOnce so it appears exactly once per process per key. The default
// destination is stderr; a daemon can redirect every warning into its
// own log with SetWarnOutput.
var (
	warnMu   sync.Mutex
	warnSeen           = make(map[string]bool)
	warnOut  io.Writer = os.Stderr
)

// SetWarnOutput redirects WarnOnce output (nil restores stderr). Call
// during setup; it applies to warnings emitted after the call.
func SetWarnOutput(w io.Writer) {
	warnMu.Lock()
	defer warnMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	warnOut = w
}

// WarnOnce writes the formatted message to the warning output the first
// time key is seen in this process; later calls with the same key are
// dropped. A trailing newline is added.
func WarnOnce(key, format string, args ...any) {
	warnMu.Lock()
	defer warnMu.Unlock()
	if warnSeen[key] {
		return
	}
	warnSeen[key] = true
	fmt.Fprintf(warnOut, format+"\n", args...)
}

// ResetWarnings forgets every seen warning key (tests).
func ResetWarnings() {
	warnMu.Lock()
	defer warnMu.Unlock()
	warnSeen = make(map[string]bool)
}

// jobIDKey carries the owning service job's id in a context, so
// advisories fired deep inside the harness while a daemon job runs can
// be attributed to that job in fleet logs.
type jobIDKey struct{}

// WithJobID tags ctx with a service job id. The impulsed service tags
// every job's execution context; WarnOnceCtx (and anything else that
// calls JobID) picks it up.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobID returns the service job id carried by ctx, or "" outside a
// service job.
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// WarnOnceCtx is WarnOnce with job attribution: when ctx carries a job
// id (WithJobID), the message is suffixed with " [job <id>]". The
// dedup key is unchanged — an advisory still fires once per process,
// attributed to the first job that triggered it.
func WarnOnceCtx(ctx context.Context, key, format string, args ...any) {
	if id := JobID(ctx); id != "" {
		format += " [job " + id + "]"
	}
	WarnOnce(key, format, args...)
}
