// Package obs is the simulator's cycle-attributed observability layer:
// span tracing (exported as Chrome trace-event / Perfetto JSON), windowed
// utilization time-series (exported as CSV or JSON), and a named-counter
// registry with expvar-style text exposition.
//
// The design is pay-for-what-you-use. Components hold a *Hub pointer that
// may be nil; every method is nil-safe, so an unattached machine does one
// pointer comparison per instrumentation site and nothing else. Within a
// Hub, each facility is independently enabled by Config: a Hub created
// with a zero Config still carries a Registry (registration is one-time
// setup cost, reads happen only at dump time) but records no spans and no
// series samples.
//
// Observers never advance the simulated clock or touch any timeline
// resource: attaching a Hub must not change a single simulated cycle.
// The machine-level differential tests enforce this.
//
// Like the rest of the simulator, a Hub is single-threaded; it models the
// paper's single-issue machine and carries no locks.
package obs

// Cycle is a simulated cycle count. It mirrors timeline.Time without
// importing it, keeping obs a leaf package usable from every layer.
type Cycle = uint64

// TrackID names one hardware resource's timeline ("track" in the Perfetto
// UI): the bus, the memory controller, one DRAM bank, the L2 port, the
// CPU's memory pipeline. Track 0 is the zero value handed out by a nil
// Hub; real tracks start at 1.
type TrackID int

// Config selects which facilities a Hub records.
type Config struct {
	// TraceLimit is the maximum number of span/instant events retained
	// (0 disables span tracing). Past the limit events are counted as
	// dropped but not stored, bounding memory on long runs.
	TraceLimit int
	// Window is the time-series bucket width in cycles (0 disables the
	// series sampler).
	Window uint64
}

// Hub is the per-machine observability sink.
type Hub struct {
	trace  *Trace
	series *Series
	reg    Registry
	tracks []string // index = TrackID-1
}

// New builds a Hub. See Config for what each field enables.
func New(cfg Config) *Hub {
	h := &Hub{}
	if cfg.TraceLimit > 0 {
		h.trace = &Trace{limit: cfg.TraceLimit}
	}
	if cfg.Window > 0 {
		h.series = &Series{window: cfg.Window}
	}
	return h
}

// Track registers a named track and returns its ID. A nil Hub returns 0.
// Names are not deduplicated: attaching two machines to one Hub yields
// two same-named tracks, which the trace viewer displays separately.
func (h *Hub) Track(name string) TrackID {
	if h == nil {
		return 0
	}
	h.tracks = append(h.tracks, name)
	return TrackID(len(h.tracks))
}

// Span records a named interval [start, end) on a track.
func (h *Hub) Span(t TrackID, name string, start, end Cycle) {
	if h == nil || h.trace == nil {
		return
	}
	h.trace.add(traceEvent{track: t, name: name, start: start, end: end})
}

// Instant records a point event on a track.
func (h *Hub) Instant(t TrackID, name string, at Cycle) {
	if h == nil || h.trace == nil {
		return
	}
	h.trace.add(traceEvent{track: t, name: name, start: at, end: at, instant: true})
}

// Busy attributes the cycles of [start, end) to a busy-cycle metric,
// split across the windows the interval overlaps.
func (h *Hub) Busy(m Metric, start, end Cycle) {
	if h == nil || h.series == nil {
		return
	}
	h.series.AddBusy(m, start, end)
}

// Event counts one occurrence of a count metric in the window holding at.
func (h *Hub) Event(m Metric, at Cycle) {
	if h == nil || h.series == nil {
		return
	}
	h.series.AddEvent(m, at)
}

// Reg returns the Hub's counter registry (nil for a nil Hub; Registry
// methods are themselves nil-safe).
func (h *Hub) Reg() *Registry {
	if h == nil {
		return nil
	}
	return &h.reg
}

// Series returns the windowed sampler, or nil when disabled.
func (h *Hub) Series() *Series {
	if h == nil {
		return nil
	}
	return h.series
}

// Trace returns the span buffer, or nil when disabled.
func (h *Hub) Trace() *Trace {
	if h == nil {
		return nil
	}
	return h.trace
}
