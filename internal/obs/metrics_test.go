package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of every metric type and
// deterministic values, shared by the format golden tests.
func goldenRegistry() *Registry {
	var r Registry
	c := uint64(3)
	r.Counter("mem.Loads", &c)
	r.GaugeFunc("service.queue_depth", "Jobs waiting to run.", func() uint64 { return 2 })
	r.CounterFunc("service.jobs_done", "Jobs finished successfully.", func() uint64 { return 5 })
	h := r.Histogram("service.render_us", "Render time in microseconds.")
	h.Observe(0)
	h.Observe(3)
	h.Observe(5)
	v := r.HistogramVec("service.job_run_duration_us", "Job execution time by spec kind.", "kind")
	v.With("table1").Observe(100)
	v.With("sim").Observe(7)
	v.With("table1").Observe(130)
	return &r
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`mem.Loads 3`,
		`service.job_run_duration_us_count{kind="sim"} 1`,
		`service.job_run_duration_us_count{kind="table1"} 2`,
		`service.job_run_duration_us_sum{kind="sim"} 7`,
		`service.job_run_duration_us_sum{kind="table1"} 230`,
		`service.jobs_done 5`,
		`service.queue_depth 2`,
		`service.render_us_count 3`,
		`service.render_us_sum 8`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("plain dump:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	goldenRegistry().WriteText(&again)
	if again.String() != buf.String() {
		t.Error("plain dump is not deterministic")
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	// Structural golden: metadata lines, sanitized names, and the exact
	// scalar series.
	for _, want := range []string{
		"# TYPE mem_Loads counter\nmem_Loads 3\n",
		"# HELP service_jobs_done Jobs finished successfully.\n# TYPE service_jobs_done counter\nservice_jobs_done 5\n",
		"# HELP service_queue_depth Jobs waiting to run.\n# TYPE service_queue_depth gauge\nservice_queue_depth 2\n",
		"# TYPE service_render_us histogram\n",
		"# TYPE service_job_run_duration_us histogram\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}

	// Histogram series: cumulative buckets with power-of-two le bounds,
	// +Inf equals _count, label pairs preserved and sorted.
	for _, want := range []string{
		`service_render_us_bucket{le="1"} 1`, // the 0 observation
		`service_render_us_bucket{le="3"} 2`, // cumulative: 0 and 3
		`service_render_us_bucket{le="7"} 3`, // 5 lands in [4,8)
		`service_render_us_bucket{le="+Inf"} 3`,
		`service_render_us_sum 8`,
		`service_render_us_count 3`,
		`service_job_run_duration_us_bucket{kind="table1",le="127"} 1`,
		`service_job_run_duration_us_bucket{kind="table1",le="255"} 2`,
		`service_job_run_duration_us_bucket{kind="table1",le="+Inf"} 2`,
		`service_job_run_duration_us_count{kind="table1"} 2`,
		`service_job_run_duration_us_bucket{kind="sim",le="7"} 1`,
		`service_job_run_duration_us_count{kind="sim"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}

	// label series of one family sort by label value: sim before table1.
	if i, j := strings.Index(got, `{kind="sim",le="1"}`), strings.Index(got, `{kind="table1",le="1"}`); i < 0 || j < 0 || i > j {
		t.Errorf("label series out of order (sim at %d, table1 at %d)", i, j)
	}

	// TYPE appears exactly once per family even with several label series.
	if n := strings.Count(got, "# TYPE service_job_run_duration_us histogram"); n != 1 {
		t.Errorf("TYPE line for labeled family appears %d times, want 1", n)
	}

	var again bytes.Buffer
	goldenRegistry().WritePrometheus(&again)
	if again.String() != got {
		t.Error("prometheus dump is not deterministic")
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	r := goldenRegistry()
	h := MetricsHandler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE service_jobs_done counter") {
		t.Errorf("default format is not prometheus:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=plain", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("plain Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "service.jobs_done 5\n") {
		t.Errorf("plain format missing legacy line:\n%s", rec.Body.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket le=3
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket le=1023
	}
	s := h.Snapshot()
	if q := s.Quantile(50); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(95); q != 1023 {
		t.Errorf("p95 = %d, want 1023", q)
	}
	if q := s.Quantile(99); q != 1023 {
		t.Errorf("p99 = %d, want 1023", q)
	}
	if (HistSnapshot{}).Quantile(50) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var r *Registry
	r.GaugeFunc("x", "", func() uint64 { return 1 })
	r.CounterFunc("x", "", func() uint64 { return 1 })
	if h := r.Histogram("h", ""); h != nil {
		t.Error("nil registry returned non-nil histogram")
	}
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram nonzero")
	}
	var v *HistVec
	v.With("a").Observe(1) // nil vec -> nil child -> no-op
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMirrorsStats(t *testing.T) {
	// The shared bucketing contract: bucket i holds [2^i, 2^(i+1)),
	// bucket 0 also holds zero, last bucket open-ended.
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1 << 40, 31}}
	for _, c := range cases {
		if got := BucketIndex(c.v, 32); got != c.want {
			t.Errorf("BucketIndex(%d, 32) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BucketIndex(1<<20, 16); got != 15 {
		t.Errorf("16-bucket clamp: got %d, want 15", got)
	}
	if BucketBound(3) != 15 {
		t.Errorf("BucketBound(3) = %d, want 15", BucketBound(3))
	}
}
