package obs

import (
	"fmt"
	"io"
	"sort"
)

// Registry is a named counter/gauge registry with expvar-style text
// exposition: one "name value" line per entry, sorted by name. Counters
// are registered as *uint64 and read at dump time, so live simulator
// counters (MemStats fields, timeline.Resource accounting, controller
// descriptor activity) cost nothing between dumps. The zero value is
// ready to use; all methods are nil-safe so unobserved components can
// register unconditionally.
type Registry struct {
	names []string
	fns   map[string]func() uint64
}

// Counter registers a live counter by pointer. Registering a name twice
// replaces the earlier entry (the newest machine wins).
func (r *Registry) Counter(name string, p *uint64) {
	r.Gauge(name, func() uint64 { return *p })
}

// Gauge registers a computed value.
func (r *Registry) Gauge(name string, fn func() uint64) {
	if r == nil {
		return
	}
	if r.fns == nil {
		r.fns = make(map[string]func() uint64)
	}
	if _, seen := r.fns[name]; !seen {
		r.names = append(r.names, name)
	}
	r.fns[name] = fn
}

// Value reads one entry.
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil || r.fns[name] == nil {
		return 0, false
	}
	return r.fns[name](), true
}

// Len returns the number of registered entries.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.names)
}

// WriteText dumps every entry as "name value\n", sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, r.fns[n]()); err != nil {
			return err
		}
	}
	return nil
}
